// Ablation: is direct store's benefit an artefact of the Hammer baseline?
//
// Hammer broadcasts snoops and reads DRAM speculatively on every miss; a
// precise directory avoids both. If direct store only beat CCSM because
// Hammer wastes bandwidth, its win should vanish against the directory —
// it does not: the pull still pays the ownership round trip and the CPU's
// data-supply port, which the push avoids entirely.
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

int main()
{
    std::printf("=== Ablation: baseline protocol (Hammer vs directory) ===\n");
    const std::vector<std::string> codes{"VA", "NN", "BL", "HT", "MM", "SR"};

    std::printf("%-5s | %12s %12s %9s | %12s %12s %9s\n", "Name",
                "hammerCCSM", "hammerDS", "speedup", "dirCCSM", "dirDS",
                "speedup");
    for (const auto& code : codes) {
        const Workload& w = WorkloadRegistry::instance().get(code);

        SystemConfig hammer;
        const auto hc = runWorkload(w, InputSize::kSmall,
                                    CoherenceMode::kCcsm, hammer);
        const auto hd = runWorkload(w, InputSize::kSmall,
                                    CoherenceMode::kDirectStore, hammer);

        SystemConfig dir;
        dir.directoryHome = true;
        const auto dc =
            runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm, dir);
        const auto dd = runWorkload(w, InputSize::kSmall,
                                    CoherenceMode::kDirectStore, dir);

        const auto pct = [](const WorkloadRunResult& base,
                            const WorkloadRunResult& ds) {
            return (static_cast<double>(base.metrics.ticks) /
                        static_cast<double>(ds.metrics.ticks) -
                    1.0) *
                   100.0;
        };
        std::printf("%-5s | %12llu %12llu %8.1f%% | %12llu %12llu %8.1f%%\n",
                    code.c_str(),
                    static_cast<unsigned long long>(hc.metrics.ticks),
                    static_cast<unsigned long long>(hd.metrics.ticks),
                    pct(hc, hd),
                    static_cast<unsigned long long>(dc.metrics.ticks),
                    static_cast<unsigned long long>(dd.metrics.ticks),
                    pct(dc, dd));
    }
    std::printf("\nReading the table: the directory strengthens the CCSM "
                "baseline (fewer snoops,\nno speculative DRAM reads), yet the "
                "push keeps a clear advantage on the\nstreaming group — the "
                "win is the data movement, not the baseline's waste.\n");
    return 0;
}
