// Ablation: is direct store's benefit an artefact of the Hammer baseline?
//
// Hammer broadcasts snoops and reads DRAM speculatively on every miss; a
// precise directory avoids both. If direct store only beat CCSM because
// Hammer wastes bandwidth, its win should vanish against the directory —
// it does not: the pull still pays the ownership round trip and the CPU's
// data-supply port, which the push avoids entirely.
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

int main(int argc, char** argv)
{
    unsigned workers = 0;
    int exitCode = 0;
    if (!parseBenchArgs(argc, argv, "ablation_protocol", workers, &exitCode))
        return exitCode;

    std::printf("=== Ablation: baseline protocol (Hammer vs directory) ===\n");
    const std::vector<std::string> codes{"VA", "NN", "BL", "HT", "MM", "SR"};

    SystemConfig hammer;
    SystemConfig dir;
    dir.directoryHome = true;
    std::vector<ExperimentJob> jobs = makeSweepJobs(
        codes, {InputSize::kSmall},
        {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}, hammer);
    for (const auto& job : makeSweepJobs(
             codes, {InputSize::kSmall},
             {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}, dir))
        jobs.push_back(job);
    const std::vector<WorkloadRunResult> runs = runBatch(jobs, workers);

    const auto pct = [](const WorkloadRunResult& base,
                        const WorkloadRunResult& ds) {
        return (static_cast<double>(base.metrics.ticks) /
                    static_cast<double>(ds.metrics.ticks) -
                1.0) *
               100.0;
    };
    std::printf("%-5s | %12s %12s %9s | %12s %12s %9s\n", "Name",
                "hammerCCSM", "hammerDS", "speedup", "dirCCSM", "dirDS",
                "speedup");
    const std::size_t dirBase = codes.size() * 2;
    for (std::size_t c = 0; c < codes.size(); ++c) {
        const auto& hc = runs[c * 2];
        const auto& hd = runs[c * 2 + 1];
        const auto& dc = runs[dirBase + c * 2];
        const auto& dd = runs[dirBase + c * 2 + 1];
        std::printf("%-5s | %12llu %12llu %8.1f%% | %12llu %12llu %8.1f%%\n",
                    codes[c].c_str(),
                    static_cast<unsigned long long>(hc.metrics.ticks),
                    static_cast<unsigned long long>(hd.metrics.ticks),
                    pct(hc, hd),
                    static_cast<unsigned long long>(dc.metrics.ticks),
                    static_cast<unsigned long long>(dd.metrics.ticks),
                    pct(dc, dd));
    }
    std::printf("\nReading the table: the directory strengthens the CCSM "
                "baseline (fewer snoops,\nno speculative DRAM reads), yet the "
                "push keeps a clear advantage on the\nstreaming group — the "
                "win is the data movement, not the baseline's waste.\n");
    return 0;
}
