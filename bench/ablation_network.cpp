// Ablation (SIII-G): how sensitive is direct store to the dedicated
// network's latency? The paper argues the added network "will have exactly
// the same characteristics as the network used in many cache coherence
// systems"; this sweep shows the scheme keeps its benefit even with a much
// slower link, because pushes are pipelined and off the critical path.
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

int main()
{
    std::printf("=== Ablation: dedicated-network hop latency sweep ===\n");
    const std::vector<std::string> codes{"VA", "NN", "HT", "BL", "MM"};
    const std::vector<Tick> latencies{10, 20, 40, 80, 160, 320};

    std::printf("%-8s", "DS hop");
    for (const auto& code : codes)
        std::printf(" %9s", code.c_str());
    std::printf("   (speedup%% over CCSM, small inputs)\n");

    // CCSM baselines are independent of the DS network.
    std::vector<Tick> baselines;
    for (const auto& code : codes) {
        const auto r = runWorkload(WorkloadRegistry::instance().get(code),
                                   InputSize::kSmall, CoherenceMode::kCcsm);
        baselines.push_back(r.metrics.ticks);
    }

    for (const Tick hop : latencies) {
        SystemConfig cfg;
        cfg.dsNet.hopLatency = hop;
        std::printf("%-8llu", static_cast<unsigned long long>(hop));
        for (std::size_t i = 0; i < codes.size(); ++i) {
            const auto r = runWorkload(WorkloadRegistry::instance().get(codes[i]),
                                       InputSize::kSmall,
                                       CoherenceMode::kDirectStore, cfg);
            const double speedup = (static_cast<double>(baselines[i]) /
                                        static_cast<double>(r.metrics.ticks) -
                                    1.0) *
                                   100.0;
            std::printf(" %8.1f%%", speedup);
        }
        std::printf("\n");
    }
    std::printf("\nExpectation: the benefit degrades gracefully with hop "
                "latency because the\nwrite-combined pushes overlap the CPU's "
                "produce loop; only extreme latencies\neat the gain.\n");
    return 0;
}
