// Ablation (SIII-G): how sensitive is direct store to the dedicated
// network's latency? The paper argues the added network "will have exactly
// the same characteristics as the network used in many cache coherence
// systems"; this sweep shows the scheme keeps its benefit even with a much
// slower link, because pushes are pipelined and off the critical path.
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

int main(int argc, char** argv)
{
    unsigned workers = 0;
    int exitCode = 0;
    if (!parseBenchArgs(argc, argv, "ablation_network", workers, &exitCode))
        return exitCode;

    std::printf("=== Ablation: dedicated-network hop latency sweep ===\n");
    const std::vector<std::string> codes{"VA", "NN", "HT", "BL", "MM"};
    const std::vector<Tick> latencies{10, 20, 40, 80, 160, 320};

    std::printf("%-8s", "DS hop");
    for (const auto& code : codes)
        std::printf(" %9s", code.c_str());
    std::printf("   (speedup%% over CCSM, small inputs)\n");

    // CCSM baselines are independent of the DS network; run them and every
    // latency point's DS runs as one flat batch so the pool stays full.
    std::vector<ExperimentJob> jobs =
        makeSweepJobs(codes, {InputSize::kSmall}, {CoherenceMode::kCcsm});
    for (const Tick hop : latencies) {
        SystemConfig cfg;
        cfg.dsNet.hopLatency = hop;
        for (const auto& job :
             makeSweepJobs(codes, {InputSize::kSmall},
                           {CoherenceMode::kDirectStore}, cfg))
            jobs.push_back(job);
    }
    const std::vector<WorkloadRunResult> runs = runBatch(jobs, workers);

    std::size_t i = codes.size(); // DS runs start after the baselines
    for (const Tick hop : latencies) {
        std::printf("%-8llu", static_cast<unsigned long long>(hop));
        for (std::size_t c = 0; c < codes.size(); ++c, ++i) {
            const double speedup =
                (static_cast<double>(runs[c].metrics.ticks) /
                     static_cast<double>(runs[i].metrics.ticks) -
                 1.0) *
                100.0;
            std::printf(" %8.1f%%", speedup);
        }
        std::printf("\n");
    }
    std::printf("\nExpectation: the benefit degrades gracefully with hop "
                "latency because the\nwrite-combined pushes overlap the CPU's "
                "produce loop; only extreme latencies\neat the gain.\n");
    return 0;
}
