// Ablation (SIV-C note): "we have also compared direct stores to
// prefetching and find that direct store's performance improvements there
// are even higher."
//
// We give the CCSM baseline a sequential next-line prefetcher at the GPU L2
// and compare: pull-based prefetching still pays the coherence round trip
// per line and can only hide latency after the first miss of a stream,
// while the push places the data before the first access.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

int main(int argc, char** argv)
{
    unsigned workers = 0;
    int exitCode = 0;
    if (!parseBenchArgs(argc, argv, "ablation_prefetch", workers, &exitCode))
        return exitCode;

    std::printf("=== Ablation: direct store vs GPU-L2 prefetching ===\n");
    const std::vector<std::string> codes{"NN", "BL", "VA", "MM", "MT", "BF"};

    // Four configurations per code: CCSM, CCSM+pf2, CCSM+pf4, DS — all
    // independent, all submitted as one flat batch.
    SystemConfig pf2;
    pf2.gpuL2PrefetchDepth = 2;
    SystemConfig pf4;
    pf4.gpuL2PrefetchDepth = 4;
    std::vector<ExperimentJob> jobs;
    for (const auto& code : codes) {
        ExperimentJob job;
        job.code = code;
        job.size = InputSize::kSmall;
        job.mode = CoherenceMode::kCcsm;
        jobs.push_back(job);
        job.config = pf2;
        jobs.push_back(job);
        job.config = pf4;
        jobs.push_back(job);
        job.config = SystemConfig{};
        job.mode = CoherenceMode::kDirectStore;
        jobs.push_back(job);
    }
    const std::vector<WorkloadRunResult> runs = runBatch(jobs, workers);

    std::printf("%-5s %12s %12s %12s %12s %12s\n", "Name", "CCSM", "CCSM+pf2",
                "CCSM+pf4", "DS", "DS win vs best pf");
    for (std::size_t c = 0; c < codes.size(); ++c) {
        const auto& base = runs[c * 4];
        const auto& withPf2 = runs[c * 4 + 1];
        const auto& withPf4 = runs[c * 4 + 2];
        const auto& ds = runs[c * 4 + 3];

        const Tick bestPf =
            std::min(withPf2.metrics.ticks, withPf4.metrics.ticks);
        const double winVsPf = (static_cast<double>(bestPf) /
                                    static_cast<double>(ds.metrics.ticks) -
                                1.0) *
                               100.0;
        std::printf("%-5s %12llu %12llu %12llu %12llu %11.1f%%\n",
                    codes[c].c_str(),
                    static_cast<unsigned long long>(base.metrics.ticks),
                    static_cast<unsigned long long>(withPf2.metrics.ticks),
                    static_cast<unsigned long long>(withPf4.metrics.ticks),
                    static_cast<unsigned long long>(ds.metrics.ticks),
                    winVsPf);
    }
    std::printf("\nExpectation (paper): direct store beats prefetching on "
                "these streaming\nproducer-consumer benchmarks.\n");
    return 0;
}
