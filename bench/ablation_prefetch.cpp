// Ablation (SIV-C note): "we have also compared direct stores to
// prefetching and find that direct store's performance improvements there
// are even higher."
//
// We give the CCSM baseline a sequential next-line prefetcher at the GPU L2
// and compare: pull-based prefetching still pays the coherence round trip
// per line and can only hide latency after the first miss of a stream,
// while the push places the data before the first access.
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

int main()
{
    std::printf("=== Ablation: direct store vs GPU-L2 prefetching ===\n");
    const std::vector<std::string> codes{"NN", "BL", "VA", "MM", "MT", "BF"};

    std::printf("%-5s %12s %12s %12s %12s %12s\n", "Name", "CCSM", "CCSM+pf2",
                "CCSM+pf4", "DS", "DS win vs best pf");
    for (const auto& code : codes) {
        const Workload& w = WorkloadRegistry::instance().get(code);

        const auto base =
            runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm);

        SystemConfig pf2;
        pf2.gpuL2PrefetchDepth = 2;
        const auto withPf2 =
            runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm, pf2);

        SystemConfig pf4;
        pf4.gpuL2PrefetchDepth = 4;
        const auto withPf4 =
            runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm, pf4);

        const auto ds =
            runWorkload(w, InputSize::kSmall, CoherenceMode::kDirectStore);

        const Tick bestPf =
            std::min(withPf2.metrics.ticks, withPf4.metrics.ticks);
        const double winVsPf = (static_cast<double>(bestPf) /
                                    static_cast<double>(ds.metrics.ticks) -
                                1.0) *
                               100.0;
        std::printf("%-5s %12llu %12llu %12llu %12llu %11.1f%%\n",
                    code.c_str(),
                    static_cast<unsigned long long>(base.metrics.ticks),
                    static_cast<unsigned long long>(withPf2.metrics.ticks),
                    static_cast<unsigned long long>(withPf4.metrics.ticks),
                    static_cast<unsigned long long>(ds.metrics.ticks),
                    winVsPf);
    }
    std::printf("\nExpectation (paper): direct store beats prefetching on "
                "these streaming\nproducer-consumer benchmarks.\n");
    return 0;
}
