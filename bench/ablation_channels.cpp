// Ablation: memory-bandwidth sensitivity. Several CCSM costs are
// DRAM-bandwidth bound (Hammer's speculative reads double the memory
// traffic); this sweep shows how much of direct store's win survives when
// the memory system is widened beyond Table I's single channel.
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

int main(int argc, char** argv)
{
    unsigned workers = 0;
    int exitCode = 0;
    if (!parseBenchArgs(argc, argv, "ablation_channels", workers, &exitCode))
        return exitCode;

    std::printf("=== Ablation: DRAM channel count (Table I: 1 channel) ===\n");
    const std::vector<std::string> codes{"VA", "NN", "ST", "HT", "MM"};
    const std::vector<std::uint32_t> channelCounts{1, 2, 4};
    std::printf("%-9s", "channels");
    for (const auto& code : codes)
        std::printf(" %9s", code.c_str());
    std::printf("   (speedup%% over same-channel CCSM, small inputs)\n");

    // One flat batch across the whole table so the pool stays saturated.
    std::vector<ExperimentJob> jobs;
    for (const std::uint32_t channels : channelCounts) {
        SystemConfig cfg;
        cfg.memChannels = channels;
        for (const auto& batch : makeSweepJobs(
                 codes, {InputSize::kSmall},
                 {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}, cfg))
            jobs.push_back(batch);
    }
    const std::vector<WorkloadRunResult> runs = runBatch(jobs, workers);

    std::size_t i = 0;
    for (const std::uint32_t channels : channelCounts) {
        std::printf("%-9u", channels);
        for (std::size_t c = 0; c < codes.size(); ++c, i += 2) {
            const auto& ccsm = runs[i];
            const auto& ds = runs[i + 1];
            std::printf(" %8.1f%%",
                        (static_cast<double>(ccsm.metrics.ticks) /
                             static_cast<double>(ds.metrics.ticks) -
                         1.0) *
                            100.0);
        }
        std::printf("\n");
    }
    std::printf("\nObservation: extra bandwidth helps the push scheme even "
                "more than the baseline --\nthe write-through pushes stop "
                "queueing behind demand traffic, while CCSM's\ncost is "
                "dominated by protocol latency and the CPU's supply port, "
                "which channels\ndo not fix.\n");
    return 0;
}
