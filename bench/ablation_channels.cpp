// Ablation: memory-bandwidth sensitivity. Several CCSM costs are
// DRAM-bandwidth bound (Hammer's speculative reads double the memory
// traffic); this sweep shows how much of direct store's win survives when
// the memory system is widened beyond Table I's single channel.
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

int main()
{
    std::printf("=== Ablation: DRAM channel count (Table I: 1 channel) ===\n");
    const std::vector<std::string> codes{"VA", "NN", "ST", "HT", "MM"};
    std::printf("%-9s", "channels");
    for (const auto& code : codes)
        std::printf(" %9s", code.c_str());
    std::printf("   (speedup%% over same-channel CCSM, small inputs)\n");

    for (const std::uint32_t channels : {1u, 2u, 4u}) {
        SystemConfig cfg;
        cfg.memChannels = channels;
        std::printf("%-9u", channels);
        for (const auto& code : codes) {
            const Workload& w = WorkloadRegistry::instance().get(code);
            const auto ccsm =
                runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm, cfg);
            const auto ds = runWorkload(w, InputSize::kSmall,
                                        CoherenceMode::kDirectStore, cfg);
            std::printf(" %8.1f%%",
                        (static_cast<double>(ccsm.metrics.ticks) /
                             static_cast<double>(ds.metrics.ticks) -
                         1.0) *
                            100.0);
        }
        std::printf("\n");
    }
    std::printf("\nObservation: extra bandwidth helps the push scheme even "
                "more than the baseline --\nthe write-through pushes stop "
                "queueing behind demand traffic, while CCSM's\ncost is "
                "dominated by protocol latency and the CPU's supply port, "
                "which channels\ndo not fix.\n");
    return 0;
}
