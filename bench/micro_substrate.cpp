// google-benchmark microbenchmarks of the hot substrate paths: event queue,
// cache-array lookup/victim selection, network delivery, DRAM scheduling,
// the protocol round trip, and the translator. These guard the simulator's
// own performance (a slow simulator caps how much of the paper we can
// regenerate per run).
#include <benchmark/benchmark.h>

#include <memory>

#include "coherence/cache_agent.h"
#include "coherence/home_controller.h"
#include "mem/cache_array.h"
#include "mem/dram.h"
#include "net/network.h"
#include "sim/sim_context.h"
#include "sim/rng.h"
#include "translate/translator.h"

namespace {

using namespace dscoh;

void BM_EventQueueScheduleRun(benchmark::State& state)
{
    const int events = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue q;
        int sink = 0;
        for (int i = 0; i < events; ++i)
            q.schedule(static_cast<Tick>(i % 97), [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_CacheArrayLookup(benchmark::State& state)
{
    CacheGeometry geom;
    geom.sizeBytes = 512 * 1024;
    geom.ways = 16;
    CacheArray<CohMeta> array(geom);
    Rng rng(7);
    // Pre-fill half the lines.
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.below(4096) * kLineSize;
        if (array.find(a) == nullptr) {
            if (auto* way = array.findFreeWay(a))
                array.install(*way, a);
        }
    }
    for (auto _ : state) {
        const Addr a = rng.below(4096) * kLineSize;
        benchmark::DoNotOptimize(array.find(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void BM_CacheArrayVictimSelection(benchmark::State& state)
{
    CacheGeometry geom;
    geom.sizeBytes = 512 * 1024;
    geom.ways = 16;
    CacheArray<CohMeta> array(geom);
    for (Addr line = 0; line < 4096; ++line) {
        const Addr a = line * kLineSize;
        if (auto* way = array.findFreeWay(a))
            array.install(*way, a);
    }
    Rng rng(13);
    for (auto _ : state) {
        const Addr a = rng.below(1 << 20) * kLineSize;
        benchmark::DoNotOptimize(array.selectVictim(
            a, [](const CacheArray<CohMeta>::Line&) { return true; }));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayVictimSelection);

void BM_NetworkSendDeliver(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        SimContext ctx;
        EventQueue& q = ctx.queue;
        Network net("n", ctx, NetworkParams{10, 32});
        std::uint64_t delivered = 0;
        net.connect(0, [](const Message&) {});
        net.connect(1, [&delivered](const Message&) { ++delivered; });
        state.ResumeTiming();
        for (int i = 0; i < 1000; ++i) {
            Message m;
            m.type = MsgType::kData;
            m.src = 0;
            m.dst = 1;
            m.addr = static_cast<Addr>(i) * kLineSize;
            net.send(m);
        }
        q.run();
        benchmark::DoNotOptimize(delivered);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_DramReadStream(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        SimContext ctx;
        EventQueue& q = ctx.queue;
        BackingStore store(64ull << 20);
        Dram dram("d", ctx, store);
        int done = 0;
        state.ResumeTiming();
        for (int i = 0; i < 1000; ++i)
            dram.read(static_cast<Addr>(i) * kLineSize, [&done] { ++done; });
        q.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DramReadStream);

void BM_ProtocolReadMissRoundTrip(benchmark::State& state)
{
    for (auto _ : state) {
        state.PauseTiming();
        SimContext ctx;
        EventQueue& q = ctx.queue;
        BackingStore store(16ull << 20);
        Dram dram("d", ctx, store);
        Network req("req", ctx, NetworkParams{10, 32});
        Network fwd("fwd", ctx, NetworkParams{10, 32});
        Network resp("resp", ctx, NetworkParams{10, 32});
        HomeController::Params hp;
        hp.self = 2;
        hp.requestNet = &req;
        hp.forwardNet = &fwd;
        hp.responseNet = &resp;
        hp.dram = &dram;
        hp.store = &store;
        hp.peersOf = [](Addr) { return std::vector<NodeId>{0, 1}; };
        HomeController home("home", ctx, std::move(hp));
        CacheAgent::Params ap;
        ap.geometry.sizeBytes = 64 * 1024;
        ap.geometry.ways = 4;
        ap.self = 0;
        ap.home = 2;
        ap.requestNet = &req;
        ap.forwardNet = &fwd;
        ap.responseNet = &resp;
        CacheAgent a("a", ctx, ap);
        ap.self = 1;
        CacheAgent b("b", ctx, ap);
        req.connect(2, [&home](const Message& m) { home.handleRequest(m); });
        resp.connect(2, [&home](const Message& m) { home.handleResponse(m); });
        fwd.connect(0, [&a](const Message& m) { a.handleForward(m); });
        resp.connect(0, [&a](const Message& m) { a.handleResponse(m); });
        fwd.connect(1, [&b](const Message& m) { b.handleForward(m); });
        resp.connect(1, [&b](const Message& m) { b.handleResponse(m); });
        int done = 0;
        state.ResumeTiming();
        for (int i = 0; i < 200; ++i)
            a.access(static_cast<Addr>(i) * kLineSize, false,
                     [&done](CacheAgent::Line&) { ++done; });
        q.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_ProtocolReadMissRoundTrip);

void BM_TranslatorVectorAdd(benchmark::State& state)
{
    const std::string source = R"cuda(
#define N 50000
__global__ void vadd(float* a, float* b, float* c, int n);
int main() {
    float *a, *b, *c;
    a = (float*)malloc(N * sizeof(float));
    b = (float*)malloc(N * sizeof(float));
    c = (float*)malloc(N * sizeof(float));
    vadd<<<196, 256>>>(a, b, c, N);
    return 0;
}
)cuda";
    xlate::SourceTranslator translator;
    for (auto _ : state) {
        benchmark::DoNotOptimize(translator.translateSource(source));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslatorVectorAdd);

} // namespace

BENCHMARK_MAIN();
