// Reproduces Fig. 4: direct-store speedup over CCSM for small (top) and big
// (bottom) inputs, with the geometric mean of the non-zero speedups.
//
// Paper reference points: speedups up to 37%, typically 5-7%; NN, BL, VA,
// MM, MT above 10% for small inputs; GA, KM, LV, PT, SR, ST, MS at zero;
// geomean of non-zero speedups 7.8% (small) and 5.7% (big); direct store
// never hurts.
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

namespace {

void report(const char* title, const std::vector<BenchmarkRow>& rows,
            double paperGeomean)
{
    std::printf("\n--- Fig. 4 (%s inputs): direct store speedup over CCSM ---\n",
                title);
    std::printf("%-5s %14s %14s %10s\n", "Name", "CCSM ticks", "DS ticks",
                "speedup%");
    std::vector<double> speedups;
    for (const auto& row : rows) {
        std::printf("%-5s %14llu %14llu %9.1f%%\n", row.code.c_str(),
                    static_cast<unsigned long long>(row.ccsm.metrics.ticks),
                    static_cast<unsigned long long>(row.ds.metrics.ticks),
                    row.speedupPercent());
        speedups.push_back(row.speedupPercent());
    }
    std::printf("%-5s %40.1f%%  (paper: %.1f%%)\n", "GEO*",
                geomeanNonZero(speedups), paperGeomean);
    std::printf("  GEO* = geometric mean of non-zero speedups, as in the "
                "paper\n");
}

} // namespace

int main(int argc, char** argv)
{
    unsigned jobs = 0;
    int exitCode = 0;
    if (!parseBenchArgs(argc, argv, "fig4_speedup", jobs, &exitCode))
        return exitCode;

    std::printf("=== Fig. 4: Direct store speedup over CCSM ===\n");
    std::printf("(22 benchmarks x 2 schemes per input size; every run is "
                "functionally\n verified -- any produced-value mismatch "
                "aborts the bench)\n");

    const auto small = runAll(InputSize::kSmall, SystemConfig{}, true, jobs);
    report("small", small, 7.8);

    const auto big = runAll(InputSize::kBig, SystemConfig{}, true, jobs);
    report("big", big, 5.7);

    // The paper's qualitative claims, checked mechanically.
    int regressions = 0;
    for (const auto* rows : {&small, &big})
        for (const auto& row : *rows)
            if (row.speedupPercent() < -1.0)
                ++regressions;
    std::printf("\nClaim checks:\n");
    std::printf("  'never decreases performance' (within 1%% noise): %s\n",
                regressions == 0 ? "HOLDS" : "VIOLATED");

    int smallAbove10 = 0;
    for (const auto& row : small)
        if (row.speedupPercent() > 10.0)
            ++smallAbove10;
    std::printf("  benchmarks above 10%% for small inputs: %d (paper: 5)\n",
                smallAbove10);
    return 0;
}
