// Ablation (SIII-H): "The proposed scheme could also replace the entire
// CCSM system and thus gains a simpler design with better performance."
//
// kDirectStoreOnly removes CPU<->GPU snooping entirely: the CPU caches only
// private data, shared data is homed on the GPU, and every home transaction
// becomes a plain memory fetch. This bench quantifies both halves of the
// claim: performance versus CCSM and versus DS-atop-CCSM, and protocol
// message counts (the "simpler" part).
//
// It also exercises the hybrid policy the same section describes ("set
// large variables to use this approach ... remaining small-sized data to
// use CCSM"): a ds-threshold sweep on BP, whose arrays span 6 KB to 2.5 MB.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

int main(int argc, char** argv)
{
    unsigned workers = 0;
    int exitCode = 0;
    if (!parseBenchArgs(argc, argv, "ablation_replacement", workers,
                        &exitCode))
        return exitCode;

    std::printf("=== Ablation: direct store as a full CCSM replacement "
                "(SIII-H) ===\n\n");

    const std::vector<std::string> codes = WorkloadRegistry::instance().codes();
    const std::vector<std::uint64_t> thresholds{0, 8ull * 1024, 64ull * 1024,
                                                512ull * 1024, 8ull << 20};

    // One flat batch: 3 modes per code, plus the BP hybrid-threshold runs.
    std::vector<ExperimentJob> jobs = makeSweepJobs(
        codes, {InputSize::kSmall},
        {CoherenceMode::kCcsm, CoherenceMode::kDirectStore,
         CoherenceMode::kDirectStoreOnly});
    const std::size_t hybridBase = jobs.size();
    for (const std::uint64_t threshold : thresholds) {
        ExperimentJob job;
        job.code = "BP";
        job.size = InputSize::kSmall;
        job.mode = CoherenceMode::kDirectStore;
        job.config.dsMinBytes = threshold;
        jobs.push_back(std::move(job));
    }
    const std::vector<WorkloadRunResult> runs = runBatch(jobs, workers);

    std::printf("%-5s | %12s %12s %12s | %10s %10s %10s\n", "Name",
                "CCSM ticks", "DS ticks", "DSonly tick", "CCSM msgs",
                "DS msgs", "DSonly msg");

    double worstRegression = 0.0;
    std::uint64_t msgsCcsm = 0;
    std::uint64_t msgsOnly = 0;
    std::uint64_t bpCcsmTicks = 0;
    for (std::size_t c = 0; c < codes.size(); ++c) {
        const auto& ccsm = runs[c * 3];
        const auto& ds = runs[c * 3 + 1];
        const auto& only = runs[c * 3 + 2];
        if (codes[c] == "BP")
            bpCcsmTicks = ccsm.metrics.ticks;
        std::printf("%-5s | %12llu %12llu %12llu | %10llu %10llu %10llu\n",
                    codes[c].c_str(),
                    static_cast<unsigned long long>(ccsm.metrics.ticks),
                    static_cast<unsigned long long>(ds.metrics.ticks),
                    static_cast<unsigned long long>(only.metrics.ticks),
                    static_cast<unsigned long long>(
                        ccsm.metrics.coherenceMessages),
                    static_cast<unsigned long long>(ds.metrics.coherenceMessages),
                    static_cast<unsigned long long>(
                        only.metrics.coherenceMessages));
        msgsCcsm += ccsm.metrics.coherenceMessages;
        msgsOnly += only.metrics.coherenceMessages +
                    only.metrics.dsNetworkMessages;
        const double reg = static_cast<double>(only.metrics.ticks) /
                               static_cast<double>(ccsm.metrics.ticks) -
                           1.0;
        worstRegression = std::max(worstRegression, reg);
    }
    std::printf("\nReplacement-mode coherence+DS messages vs CCSM messages: "
                "%.1f%% of baseline\n",
                100.0 * static_cast<double>(msgsOnly) /
                    static_cast<double>(msgsCcsm));
    std::printf("Worst replacement-mode slowdown vs CCSM: %.1f%% (paper: "
                "\"better performance\")\n\n",
                worstRegression * 100.0);

    // --- hybrid threshold sweep -------------------------------------------
    std::printf("--- Hybrid policy: DS only for arrays >= threshold (BP "
                "small) ---\n");
    std::printf("%-12s %14s %10s\n", "threshold", "ticks", "speedup%");
    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        const auto& r = runs[hybridBase + t];
        std::printf("%-12llu %14llu %9.1f%%\n",
                    static_cast<unsigned long long>(thresholds[t]),
                    static_cast<unsigned long long>(r.metrics.ticks),
                    (static_cast<double>(bpCcsmTicks) /
                         static_cast<double>(r.metrics.ticks) -
                     1.0) *
                        100.0);
    }
    std::printf("\nExpectation: pushing only the big weight matrix keeps most "
                "of the benefit\n(the paper's suggested programmer policy); an "
                "oversized threshold degrades to CCSM.\n");
    return 0;
}
