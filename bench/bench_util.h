// Shared helpers for the reproduction benches: run workloads under both
// schemes through the parallel ExperimentEngine, format per-benchmark
// tables, and compute the paper's geometric means.
//
// Every bench accepts --jobs N (default: all hardware threads, or the
// DSCOH_JOBS environment variable). Runs are fully independent simulations,
// so results are bit-identical for any worker count.
#pragma once

#include <cmath>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli/options.h"
#include "exp/experiment_engine.h"
#include "workloads/runner.h"

namespace dscoh::bench {

/// Parses a bench's argv (--jobs N plus --help). Returns false when the
/// process should exit; *exitCode then holds its status.
inline bool parseBenchArgs(int argc, char** argv, const char* name,
                           unsigned& jobsOut, int* exitCode)
{
    std::string jobsText;
    cli::OptionParser parser(name, "paper-reproduction bench");
    parser.addString("jobs", "worker threads (default: hardware threads, or "
                             "DSCOH_JOBS)", &jobsText);
    if (!parser.parse(argc, argv, std::cerr)) {
        *exitCode = 2;
        return false;
    }
    std::string error;
    if (!cli::resolveJobs(jobsText, jobsOut, error)) {
        std::cerr << name << ": " << error << "\n";
        *exitCode = 2;
        return false;
    }
    return true;
}

/// Runs a job batch through the engine; any failed run aborts the bench
/// (same contract as calling runWorkload directly had).
inline std::vector<WorkloadRunResult>
runBatch(const std::vector<ExperimentJob>& jobs, unsigned workers)
{
    ExperimentEngine engine(workers);
    const std::vector<ExperimentResult> results = engine.run(jobs);
    std::vector<WorkloadRunResult> runs;
    runs.reserve(results.size());
    for (const ExperimentResult& r : results) {
        if (!r.ok)
            throw std::runtime_error(r.job.code + " (" +
                                     to_string(r.job.size) + ", " +
                                     to_string(r.job.mode) + "): " + r.error);
        runs.push_back(r.run);
    }
    return runs;
}

struct BenchmarkRow {
    std::string code;
    WorkloadRunResult ccsm;
    WorkloadRunResult ds;

    double speedupPercent() const
    {
        if (ds.metrics.ticks == 0)
            return 0.0;
        return (static_cast<double>(ccsm.metrics.ticks) /
                    static_cast<double>(ds.metrics.ticks) -
                1.0) *
               100.0;
    }
};

/// Runs every Table II workload at @p size under both schemes, sharded
/// across @p workers threads (0 = hardware concurrency).
inline std::vector<BenchmarkRow> runAll(InputSize size,
                                        const SystemConfig& base = SystemConfig{},
                                        bool verbose = true,
                                        unsigned workers = 0)
{
    const std::vector<std::string> codes = WorkloadRegistry::instance().codes();
    const std::vector<ExperimentJob> jobs = makeSweepJobs(
        codes, {size}, {CoherenceMode::kCcsm, CoherenceMode::kDirectStore},
        base);
    ExperimentEngine engine(workers);
    if (verbose) {
        engine.onProgress([](const ExperimentResult& r, std::size_t done,
                             std::size_t total) {
            std::fprintf(stderr, "  [%zu/%zu] ran %s (%s, %s)%s\n", done,
                         total, r.job.code.c_str(), to_string(r.job.size),
                         to_string(r.job.mode), r.ok ? "" : " FAILED");
        });
    }
    const std::vector<ExperimentResult> results = engine.run(jobs);

    std::vector<BenchmarkRow> rows;
    rows.reserve(codes.size());
    for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
        if (!results[i].ok)
            throw std::runtime_error(results[i].job.code + ": " +
                                     results[i].error);
        if (!results[i + 1].ok)
            throw std::runtime_error(results[i + 1].job.code + ": " +
                                     results[i + 1].error);
        BenchmarkRow row;
        row.code = results[i].job.code;
        row.ccsm = results[i].run;
        row.ds = results[i + 1].run;
        rows.push_back(std::move(row));
    }
    return rows;
}

/// Geometric mean of the positive entries of @p percents, mirroring the
/// paper's "geometric means of all non-zero speedups". Values below the
/// threshold count as "zero" and are excluded.
inline double geomeanNonZero(const std::vector<double>& percents,
                             double thresholdPercent = 0.05)
{
    double logSum = 0.0;
    int n = 0;
    for (const double p : percents) {
        if (p > thresholdPercent) {
            logSum += std::log(p);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(logSum / n);
}

/// Geometric mean of (strictly positive) values.
inline double geomean(const std::vector<double>& values)
{
    double logSum = 0.0;
    int n = 0;
    for (const double v : values) {
        if (v > 0.0) {
            logSum += std::log(v);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(logSum / n);
}

} // namespace dscoh::bench
