// Shared helpers for the reproduction benches: run workloads under both
// schemes, format per-benchmark tables, and compute the paper's geometric
// means.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "workloads/runner.h"

namespace dscoh::bench {

struct BenchmarkRow {
    std::string code;
    WorkloadRunResult ccsm;
    WorkloadRunResult ds;

    double speedupPercent() const
    {
        if (ds.metrics.ticks == 0)
            return 0.0;
        return (static_cast<double>(ccsm.metrics.ticks) /
                    static_cast<double>(ds.metrics.ticks) -
                1.0) *
               100.0;
    }
};

/// Runs every Table II workload at @p size under both schemes.
inline std::vector<BenchmarkRow> runAll(InputSize size,
                                        const SystemConfig& base = SystemConfig{},
                                        bool verbose = true)
{
    std::vector<BenchmarkRow> rows;
    const auto& registry = WorkloadRegistry::instance();
    for (const auto& code : registry.codes()) {
        const Workload& w = registry.get(code);
        BenchmarkRow row;
        row.code = code;
        row.ccsm = runWorkload(w, size, CoherenceMode::kCcsm, base);
        row.ds = runWorkload(w, size, CoherenceMode::kDirectStore, base);
        if (verbose) {
            std::fprintf(stderr, "  ran %s (%s)\n", code.c_str(),
                         to_string(size));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

/// Geometric mean of the positive entries of @p percents, mirroring the
/// paper's "geometric means of all non-zero speedups". Values below the
/// threshold count as "zero" and are excluded.
inline double geomeanNonZero(const std::vector<double>& percents,
                             double thresholdPercent = 0.05)
{
    double logSum = 0.0;
    int n = 0;
    for (const double p : percents) {
        if (p > thresholdPercent) {
            logSum += std::log(p);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(logSum / n);
}

/// Geometric mean of (strictly positive) values.
inline double geomean(const std::vector<double>& values)
{
    double logSum = 0.0;
    int n = 0;
    for (const double v : values) {
        if (v > 0.0) {
            logSum += std::log(v);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(logSum / n);
}

} // namespace dscoh::bench
