// Reproduces the compulsory-miss measurement (SIV intro): "we believe the
// proposed approach should specifically reduce compulsory misses, so we
// measure those for both approaches."
//
// A GPU L2 miss is compulsory when the line has never before been present
// in the slice; a direct-store push pre-fills the line, so the first GPU
// access is not even a miss.
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

namespace {

void report(const char* title, const std::vector<BenchmarkRow>& rows)
{
    std::printf("\n--- Compulsory GPU L2 misses (%s inputs) ---\n", title);
    std::printf("%-5s %12s %12s %12s %14s\n", "Name", "CCSM comp", "DS comp",
                "eliminated", "DS pre-fills");
    std::uint64_t totalCcsm = 0;
    std::uint64_t totalDs = 0;
    for (const auto& row : rows) {
        const std::uint64_t c = row.ccsm.metrics.gpuL2Compulsory;
        const std::uint64_t d = row.ds.metrics.gpuL2Compulsory;
        totalCcsm += c;
        totalDs += d;
        const double eliminated =
            c == 0 ? 0.0
                   : (1.0 - static_cast<double>(d) / static_cast<double>(c)) *
                         100.0;
        std::printf("%-5s %12llu %12llu %11.1f%% %14llu\n", row.code.c_str(),
                    static_cast<unsigned long long>(c),
                    static_cast<unsigned long long>(d), eliminated,
                    static_cast<unsigned long long>(row.ds.metrics.dsFills));
    }
    std::printf("%-5s %12llu %12llu %11.1f%%\n", "TOTAL",
                static_cast<unsigned long long>(totalCcsm),
                static_cast<unsigned long long>(totalDs),
                totalCcsm == 0
                    ? 0.0
                    : (1.0 - static_cast<double>(totalDs) /
                                 static_cast<double>(totalCcsm)) *
                          100.0);
}

} // namespace

int main(int argc, char** argv)
{
    unsigned workers = 0;
    int exitCode = 0;
    if (!parseBenchArgs(argc, argv, "compulsory_misses", workers, &exitCode))
        return exitCode;

    std::printf("=== Compulsory-miss reduction under direct store ===\n");
    report("small", runAll(InputSize::kSmall, SystemConfig{}, true, workers));
    report("big", runAll(InputSize::kBig, SystemConfig{}, true, workers));
    return 0;
}
