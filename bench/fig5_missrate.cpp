// Reproduces Fig. 5: GPU L2 miss rate under CCSM vs direct store, small
// (top) and big (bottom) inputs.
//
// Paper reference points: miss rate reduced for most benchmarks; geometric
// means 9.3% (CCSM) vs 7.3% (DS) for small inputs and 12.5% vs 11.1% for
// big inputs (computed here over benchmarks with non-negligible miss rate,
// as near-zero entries would drive a raw geomean to zero).
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

namespace {

void report(const char* title, const std::vector<BenchmarkRow>& rows,
            double paperCcsm, double paperDs)
{
    std::printf("\n--- Fig. 5 (%s inputs): GPU L2 miss rate ---\n", title);
    std::printf("%-5s %12s %12s %12s %12s %12s\n", "Name", "CCSM acc",
                "CCSM miss", "CCSM rate", "DS rate", "reduced?");
    std::vector<double> ccsmRates;
    std::vector<double> dsRates;
    for (const auto& row : rows) {
        const double mc = row.ccsm.metrics.gpuL2MissRate * 100.0;
        const double md = row.ds.metrics.gpuL2MissRate * 100.0;
        std::printf("%-5s %12llu %12llu %11.2f%% %11.2f%% %12s\n",
                    row.code.c_str(),
                    static_cast<unsigned long long>(row.ccsm.metrics.gpuL2Accesses),
                    static_cast<unsigned long long>(row.ccsm.metrics.gpuL2Misses),
                    mc, md,
                    md < mc - 0.01 ? "yes" : (md > mc + 0.01 ? "HIGHER" : "same"));
        if (mc > 0.5) { // ignore the near-zero rows, as the paper's plot does
            ccsmRates.push_back(mc);
            dsRates.push_back(md > 0.01 ? md : 0.01);
        }
    }
    std::printf("%-5s geomean CCSM %.1f%% vs DS %.1f%%   (paper: %.1f%% vs "
                "%.1f%%)\n",
                "GEO", geomean(ccsmRates), geomean(dsRates), paperCcsm,
                paperDs);
}

} // namespace

int main(int argc, char** argv)
{
    unsigned jobs = 0;
    int exitCode = 0;
    if (!parseBenchArgs(argc, argv, "fig5_missrate", jobs, &exitCode))
        return exitCode;

    std::printf("=== Fig. 5: GPU L2 miss rate, CCSM vs direct store ===\n");

    const auto small = runAll(InputSize::kSmall, SystemConfig{}, true, jobs);
    report("small", small, 9.3, 7.3);

    const auto big = runAll(InputSize::kBig, SystemConfig{}, true, jobs);
    report("big", big, 12.5, 11.1);

    int increased = 0;
    int reduced = 0;
    for (const auto* rows : {&small, &big}) {
        for (const auto& row : *rows) {
            const double diff = row.ds.metrics.gpuL2MissRate -
                                row.ccsm.metrics.gpuL2MissRate;
            if (diff < -0.001)
                ++reduced;
            if (diff > 0.001)
                ++increased;
        }
    }
    std::printf("\nClaim checks:\n");
    std::printf("  runs with reduced miss rate under DS:   %d / 44\n", reduced);
    std::printf("  runs with increased miss rate under DS: %d (the paper "
                "also reports increases, e.g. MM/MT)\n",
                increased);
    return 0;
}
