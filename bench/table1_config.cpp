// Reproduces Table I: the simulated system configuration.
#include <iostream>

#include "core/system.h"

int main()
{
    using namespace dscoh;
    std::cout << "=== Table I: System Configuration ===\n\n";
    SystemConfig::paper(CoherenceMode::kCcsm).printTable(std::cout);

    std::cout << "\nAdditional model parameters (not in Table I):\n";
    const SystemConfig cfg;
    std::cout << "  coherence network hop   " << cfg.coherenceNet.hopLatency
              << " ticks\n"
              << "  dedicated DS network    " << cfg.dsNet.hopLatency
              << " ticks (\"same characteristics\", SIII-G)\n"
              << "  GPU-internal network    " << cfg.gpuNet.hopLatency
              << " ticks\n"
              << "  CPU data-supply latency " << cfg.cpuDataSupplyLatency
              << " ticks (+" << cfg.cpuDataSupplyInterval
              << "/supply port interval)\n"
              << "  kernel launch overhead  " << cfg.kernelLaunchLatency
              << " ticks\n"
              << "  remote-store buffer     " << cfg.rsbEntries
              << " write-combining entries\n";
    return 0;
}
