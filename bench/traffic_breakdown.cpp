// Quantifies Fig. 1 / SIII-H: direct store's data movement takes fewer
// steps and fewer coherence messages than the CCSM pull path, supporting
// the paper's "simpler replacement" argument.
#include <cstdio>

#include "bench_util.h"

using namespace dscoh;
using namespace dscoh::bench;

int main(int argc, char** argv)
{
    unsigned workers = 0;
    int exitCode = 0;
    if (!parseBenchArgs(argc, argv, "traffic_breakdown", workers, &exitCode))
        return exitCode;

    std::printf("=== Coherence-traffic breakdown (Fig. 1 / SIII-H) ===\n");
    std::printf("Messages on the three coherence virtual networks "
                "(request/forward/response)\nversus the dedicated direct-store "
                "network, small inputs.\n\n");
    std::printf("%-5s %12s %12s %10s %12s %14s\n", "Name", "CCSM msgs",
                "DS msgs", "saved", "DS-net msgs", "CCSM KB on wire");

    const auto rows = runAll(InputSize::kSmall, SystemConfig{}, true, workers);
    std::uint64_t ccsmTotal = 0;
    std::uint64_t dsTotal = 0;
    std::uint64_t dsNetTotal = 0;
    for (const auto& row : rows) {
        const std::uint64_t c = row.ccsm.metrics.coherenceMessages;
        const std::uint64_t d = row.ds.metrics.coherenceMessages;
        ccsmTotal += c;
        dsTotal += d;
        dsNetTotal += row.ds.metrics.dsNetworkMessages;
        std::printf("%-5s %12llu %12llu %9.1f%% %12llu %14llu\n",
                    row.code.c_str(), static_cast<unsigned long long>(c),
                    static_cast<unsigned long long>(d),
                    c == 0 ? 0.0
                           : (1.0 - static_cast<double>(d) /
                                        static_cast<double>(c)) *
                                 100.0,
                    static_cast<unsigned long long>(
                        row.ds.metrics.dsNetworkMessages),
                    static_cast<unsigned long long>(
                        row.ccsm.metrics.coherenceBytes / 1024));
    }
    std::printf("\nTotals: CCSM %llu coherence msgs; DS %llu coherence + %llu "
                "DS-network msgs\n",
                static_cast<unsigned long long>(ccsmTotal),
                static_cast<unsigned long long>(dsTotal),
                static_cast<unsigned long long>(dsNetTotal));
    const double saving =
        (1.0 - static_cast<double>(dsTotal + dsNetTotal) /
                   static_cast<double>(ccsmTotal)) *
        100.0;
    std::printf("Net message saving including the dedicated network: %.1f%%\n",
                saving);
    std::printf("\nFig. 1 shape check: a CCSM pull is GetS + snoop + data + "
                "unblock (4+ messages\nper line); a direct-store push is one "
                "DsPutX + one ack on a dedicated network.\n");

    // Per-message-type breakdown on the purest producer-consumer benchmark,
    // which is Fig. 1 rendered as numbers.
    std::printf("\n--- Message types, VA small ---\n");
    const auto countTypes = [](CoherenceMode mode) {
        SystemConfig cfg;
        cfg.mode = mode;
        System sys(cfg);
        const Workload& w = WorkloadRegistry::instance().get("VA");
        Workload::ArrayMap mem;
        for (const auto& a : w.arrays(InputSize::kSmall))
            mem[a.name] = sys.allocateArray(a.bytes, a.gpuShared);
        const CpuProgram produce = w.cpuProduce(InputSize::kSmall, mem);
        const auto kernels = w.kernels(InputSize::kSmall, mem);
        std::size_t next = 0;
        std::function<void()> launchNext = [&] {
            if (next < kernels.size())
                sys.launchKernel(kernels[next++], [&] { launchNext(); });
        };
        sys.runCpuProgram(produce, [&] { launchNext(); });
        sys.simulate();
        std::map<std::string, std::uint64_t> counts;
        for (const MsgType t :
             {MsgType::kGetS, MsgType::kGetX, MsgType::kPut, MsgType::kUnblock,
              MsgType::kSnpGetS, MsgType::kSnpGetX, MsgType::kSnpResp,
              MsgType::kData, MsgType::kWbAck}) {
            const std::uint64_t n = sys.stats().counter(
                std::string("net.request.msg.") + to_string(t)) +
                sys.stats().counter(std::string("net.forward.msg.") +
                                    to_string(t)) +
                sys.stats().counter(std::string("net.response.msg.") +
                                    to_string(t));
            counts[to_string(t)] = n;
        }
        counts["DsPutX"] =
            sys.stats().counter("net.ds.msg.DsPutX");
        counts["DsAck"] = sys.stats().counter("net.ds.msg.DsAck");
        return counts;
    };

    const auto ccsmTypes = countTypes(CoherenceMode::kCcsm);
    const auto dsTypes = countTypes(CoherenceMode::kDirectStore);
    std::printf("%-10s %10s %10s\n", "type", "CCSM", "DS");
    for (const auto& [type, n] : ccsmTypes)
        std::printf("%-10s %10llu %10llu\n", type.c_str(),
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(dsTypes.at(type)));
    return 0;
}
