// Reproduces Table II: the 22 benchmarks, their input sizes, suites, and
// shared-memory usage, plus each model's footprint and scaling note.
#include <cstdio>

#include "workloads/workload.h"

int main()
{
    using namespace dscoh;
    std::printf("=== Table II: Benchmarks ===\n\n");
    std::printf("%-5s %-28s %-15s %-15s %-12s %-7s %10s %10s\n", "Name",
                "Benchmark", "Small input", "Big input", "Suite", "Shared",
                "small KB", "big KB");
    const auto& registry = WorkloadRegistry::instance();
    for (const auto& code : registry.codes()) {
        const Workload& w = registry.get(code);
        const WorkloadInfo info = w.info();
        std::uint64_t small = 0;
        std::uint64_t big = 0;
        for (const auto& a : w.arrays(InputSize::kSmall))
            small += a.bytes;
        for (const auto& a : w.arrays(InputSize::kBig))
            big += a.bytes;
        std::printf("%-5s %-28s %-15s %-15s %-12s %-7s %10llu %10llu\n",
                    info.code.c_str(), info.fullName.c_str(),
                    info.smallInput.c_str(), info.bigInput.c_str(),
                    info.suite.c_str(), info.usesSharedMemory ? "Yes" : "No",
                    static_cast<unsigned long long>(small / 1024),
                    static_cast<unsigned long long>(big / 1024));
    }
    std::printf("\nModel scaling notes (how each benchmark was scaled down "
                "versus the real program):\n");
    for (const auto& code : registry.codes())
        std::printf("  %-4s %s\n", code.c_str(),
                    registry.get(code).info().scalingNote.c_str());
    return 0;
}
