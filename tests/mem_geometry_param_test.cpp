// Parameterized property sweeps over cache geometries and replacement
// policies: the array must preserve basic invariants (lookup consistency,
// bounded occupancy, victim legality) at any legal configuration.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mem/cache_array.h"
#include "mem/dram.h"
#include "sim/sim_context.h"
#include "sim/rng.h"

namespace dscoh {
namespace {

struct GeomParam {
    std::uint64_t sizeBytes;
    std::uint32_t ways;
    ReplacementKind repl;
};

std::string geomName(const ::testing::TestParamInfo<GeomParam>& pinfo)
{
    return std::to_string(pinfo.param.sizeBytes / 1024) + "k_w" +
           std::to_string(pinfo.param.ways) + "_" +
           (pinfo.param.repl == ReplacementKind::kLru
                ? "lru"
                : (pinfo.param.repl == ReplacementKind::kTreePlru ? "plru"
                                                                  : "rand"));
}

class GeometrySweep : public ::testing::TestWithParam<GeomParam> {
protected:
    CacheGeometry geometry() const
    {
        CacheGeometry g;
        g.sizeBytes = GetParam().sizeBytes;
        g.ways = GetParam().ways;
        g.replacement = GetParam().repl;
        g.replacementSeed = 99;
        return g;
    }
};

TEST_P(GeometrySweep, RandomFillLookupInvariants)
{
    struct Meta {
        std::uint32_t stamp = 0;
    };
    CacheArray<Meta> array(geometry());
    Rng rng(42);
    std::map<Addr, std::uint32_t> shadow; // lines we believe are resident
    std::uint32_t stamp = 0;

    for (int i = 0; i < 4000; ++i) {
        const Addr base = rng.below(4 * array.sets() * array.ways()) * kLineSize;
        auto* line = array.find(base);
        if (line != nullptr) {
            // Lookup must agree with the shadow model.
            ASSERT_TRUE(shadow.count(base)) << "ghost line";
            ASSERT_EQ(line->meta.stamp, shadow[base]) << "metadata clobbered";
            array.touch(base);
            continue;
        }
        ASSERT_FALSE(shadow.count(base) != 0 && line != nullptr);
        auto* way = array.findFreeWay(base);
        if (way == nullptr) {
            way = array.selectVictim(
                base, [](const CacheArray<Meta>::Line&) { return true; });
            ASSERT_NE(way, nullptr);
            // Victim must be a valid line from the same set.
            ASSERT_TRUE(way->valid);
            ASSERT_EQ(array.setIndex(way->base), array.setIndex(base));
            shadow.erase(way->base);
            array.invalidate(*way);
        }
        auto& installed = array.install(*way, base);
        installed.meta.stamp = ++stamp;
        shadow[base] = stamp;
        ASSERT_LE(shadow.size(),
                  static_cast<std::size_t>(array.sets()) * array.ways());
    }

    // Full cross-check at the end.
    std::size_t found = 0;
    array.forEachValid([&](CacheArray<Meta>::Line& line) {
        ++found;
        ASSERT_TRUE(shadow.count(line.base));
        ASSERT_EQ(shadow[line.base], line.meta.stamp);
    });
    ASSERT_EQ(found, shadow.size());
}

TEST_P(GeometrySweep, SetsNeverOverflow)
{
    struct Meta {};
    CacheArray<Meta> array(geometry());
    // Hammer one set far beyond associativity.
    const Addr stride = static_cast<Addr>(array.sets()) * kLineSize;
    for (std::uint32_t i = 0; i < array.ways() * 3; ++i) {
        const Addr base = static_cast<Addr>(i) * stride;
        if (array.find(base) != nullptr)
            continue;
        auto* way = array.findFreeWay(base);
        if (way == nullptr) {
            way = array.selectVictim(
                base, [](const CacheArray<Meta>::Line&) { return true; });
            ASSERT_NE(way, nullptr);
            array.invalidate(*way);
        }
        array.install(*way, base);
    }
    std::size_t inSet = 0;
    array.forEachValid([&](CacheArray<Meta>::Line& line) {
        if (array.setIndex(line.base) == array.setIndex(0))
            ++inSet;
    });
    EXPECT_LE(inSet, array.ways());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(GeomParam{2 * 1024, 2, ReplacementKind::kLru},
                      GeomParam{4 * 1024, 4, ReplacementKind::kLru},
                      GeomParam{16 * 1024, 4, ReplacementKind::kTreePlru},
                      GeomParam{64 * 1024, 2, ReplacementKind::kTreePlru},
                      GeomParam{64 * 1024, 16, ReplacementKind::kLru},
                      GeomParam{512 * 1024, 16, ReplacementKind::kRandom},
                      GeomParam{2 * 1024 * 1024, 8, ReplacementKind::kRandom},
                      GeomParam{1024, 8, ReplacementKind::kTreePlru}),
    geomName);

// --------------------------------------------------------------------------
// DRAM across bank configurations: completion order sanity and bandwidth
// monotonicity.
// --------------------------------------------------------------------------

struct DramParam {
    std::uint32_t ranks;
    std::uint32_t banks;
};

class DramSweep : public ::testing::TestWithParam<DramParam> {};

TEST_P(DramSweep, StreamCompletesAndBankCountHelps)
{
    auto runStream = [](std::uint32_t ranks, std::uint32_t banks) {
        SimContext ctx;
        EventQueue& q = ctx.queue;
        BackingStore store(64ull << 20);
        DramTiming t;
        t.ranks = ranks;
        t.banksPerRank = banks;
        Dram dram("d", ctx, store, t);
        int done = 0;
        for (int i = 0; i < 512; ++i)
            dram.read(static_cast<Addr>(i) * kLineSize, [&done] { ++done; });
        const Tick end = q.run();
        EXPECT_EQ(done, 512);
        return end;
    };
    const Tick with = runStream(GetParam().ranks, GetParam().banks);
    const Tick single = runStream(1, 1);
    EXPECT_LE(with, single) << "more banks must never be slower";
}

INSTANTIATE_TEST_SUITE_P(Banks, DramSweep,
                         ::testing::Values(DramParam{1, 2}, DramParam{1, 8},
                                           DramParam{2, 8}, DramParam{4, 8}),
                         [](const ::testing::TestParamInfo<DramParam>& pinfo) {
                             std::string n = "r";
                             n += std::to_string(pinfo.param.ranks);
                             n += 'b';
                             n += std::to_string(pinfo.param.banks);
                             return n;
                         });

} // namespace
} // namespace dscoh
