// ExperimentEngine: parallel runs must be bit-identical to serial ones, and
// a failing job must not poison the pool. These tests are the determinism
// guarantee behind every engine-backed bench and tool.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "coherence/transition_coverage.h"
#include "core/config_io.h"
#include "exp/experiment_engine.h"
#include "sim/errors.h"

namespace dscoh {
namespace {

const std::vector<std::string> kCodes{"VA", "NN", "BP"};

void expectSameMetrics(const RunMetrics& a, const RunMetrics& b,
                       const std::string& what)
{
    EXPECT_EQ(a.ticks, b.ticks) << what;
    EXPECT_EQ(a.gpuL2Accesses, b.gpuL2Accesses) << what;
    EXPECT_EQ(a.gpuL2Misses, b.gpuL2Misses) << what;
    EXPECT_EQ(a.gpuL2Compulsory, b.gpuL2Compulsory) << what;
    EXPECT_EQ(a.dsFills, b.dsFills) << what;
    EXPECT_EQ(a.dsBypasses, b.dsBypasses) << what;
    EXPECT_EQ(a.coherenceMessages, b.coherenceMessages) << what;
    EXPECT_EQ(a.coherenceBytes, b.coherenceBytes) << what;
    EXPECT_EQ(a.dsNetworkMessages, b.dsNetworkMessages) << what;
    EXPECT_EQ(a.dramReads, b.dramReads) << what;
    EXPECT_EQ(a.dramWrites, b.dramWrites) << what;
    EXPECT_EQ(a.checkFailures, b.checkFailures) << what;
}

std::vector<ExperimentJob> smallBatch()
{
    return makeSweepJobs(kCodes, {InputSize::kSmall},
                         {CoherenceMode::kCcsm,
                          CoherenceMode::kDirectStore});
}

TEST(ExperimentEngine, ParallelMatchesDirectSerialRuns)
{
    const std::vector<ExperimentJob> jobs = smallBatch();
    ExperimentEngine engine(4);
    const std::vector<ExperimentResult> results = engine.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << results[i].error;
        const WorkloadRunResult serial = runWorkload(
            WorkloadRegistry::instance().get(jobs[i].code), jobs[i].size,
            jobs[i].mode, jobs[i].config);
        const std::string what = jobs[i].code + std::string("/") +
                                 to_string(jobs[i].mode);
        expectSameMetrics(results[i].run.metrics, serial.metrics, what);
        EXPECT_EQ(results[i].run.produceDoneAt, serial.produceDoneAt) << what;
        EXPECT_EQ(results[i].run.kernelDoneAt, serial.kernelDoneAt) << what;
        EXPECT_EQ(results[i].run.footprintBytes, serial.footprintBytes)
            << what;
    }
}

TEST(ExperimentEngine, OneThreadMatchesManyThreads)
{
    const std::vector<ExperimentJob> jobs = smallBatch();
    const std::vector<ExperimentResult> one =
        ExperimentEngine(1).run(jobs);
    const std::vector<ExperimentResult> many =
        ExperimentEngine(8).run(jobs);
    ASSERT_EQ(one.size(), many.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        ASSERT_TRUE(one[i].ok) << one[i].error;
        ASSERT_TRUE(many[i].ok) << many[i].error;
        expectSameMetrics(one[i].run.metrics, many[i].run.metrics,
                          one[i].job.code);
    }
}

/// A workload whose setup throws: the engine must fail this job alone.
class ExplodingWorkload final : public Workload {
public:
    WorkloadInfo info() const override
    {
        WorkloadInfo i;
        i.code = "XX";
        i.fullName = "Exploding test workload";
        return i;
    }
    std::vector<ArraySpec> arrays(InputSize) const override
    {
        throw std::runtime_error("intentional test explosion");
    }
    CpuProgram cpuProduce(InputSize, const ArrayMap&) const override
    {
        return CpuProgram{};
    }
    std::vector<KernelDesc> kernels(InputSize, const ArrayMap&) const override
    {
        return {};
    }
};

TEST(ExperimentEngine, ThrowingJobFailsWithoutPoisoningThePool)
{
    const ExplodingWorkload bad;
    std::vector<ExperimentJob> jobs;
    ExperimentJob good;
    good.code = "VA";
    jobs.push_back(good);
    ExperimentJob boom;
    boom.code = "XX";
    boom.workload = &bad;
    jobs.push_back(boom);
    good.code = "NN";
    good.mode = CoherenceMode::kDirectStore;
    jobs.push_back(good);

    const std::vector<ExperimentResult> results =
        ExperimentEngine(3).run(jobs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("intentional test explosion"),
              std::string::npos);
    EXPECT_TRUE(results[2].ok) << results[2].error;
    EXPECT_GT(results[0].run.metrics.ticks, 0u);
    EXPECT_GT(results[2].run.metrics.ticks, 0u);
}

TEST(ExperimentEngine, UnknownCodeFailsItsJobOnly)
{
    std::vector<ExperimentJob> jobs;
    ExperimentJob bogus;
    bogus.code = "NOPE";
    jobs.push_back(bogus);
    ExperimentJob good;
    good.code = "VA";
    jobs.push_back(good);
    const std::vector<ExperimentResult> results =
        ExperimentEngine(2).run(jobs);
    EXPECT_FALSE(results[0].ok);
    EXPECT_FALSE(results[0].error.empty());
    EXPECT_TRUE(results[1].ok) << results[1].error;
}

TEST(ExperimentEngine, MakeSweepJobsOrderIsCodeMajor)
{
    const auto jobs =
        makeSweepJobs({"A", "B"}, {InputSize::kSmall, InputSize::kBig},
                      {CoherenceMode::kCcsm, CoherenceMode::kDirectStore});
    ASSERT_EQ(jobs.size(), 8u);
    EXPECT_EQ(jobs[0].code, "A");
    EXPECT_EQ(jobs[0].size, InputSize::kSmall);
    EXPECT_EQ(jobs[0].mode, CoherenceMode::kCcsm);
    EXPECT_EQ(jobs[1].mode, CoherenceMode::kDirectStore);
    EXPECT_EQ(jobs[2].size, InputSize::kBig);
    EXPECT_EQ(jobs[4].code, "B");
}

TEST(ExperimentEngine, ProgressReportsEveryJobOnce)
{
    std::vector<ExperimentJob> jobs = smallBatch();
    ExperimentEngine engine(4);
    std::size_t calls = 0;
    std::size_t lastTotal = 0;
    engine.onProgress([&](const ExperimentResult&, std::size_t done,
                          std::size_t total) {
        ++calls;
        EXPECT_EQ(done, calls); // done counts are serialized and monotonic
        lastTotal = total;
    });
    engine.run(jobs);
    EXPECT_EQ(calls, jobs.size());
    EXPECT_EQ(lastTotal, jobs.size());
}

TEST(ExperimentEngine, JsonContainsEveryRunAndParses)
{
    std::vector<ExperimentJob> jobs;
    ExperimentJob good;
    good.code = "VA";
    jobs.push_back(good);
    ExperimentJob bogus;
    bogus.code = "NOPE";
    jobs.push_back(bogus);
    const auto results = ExperimentEngine(2).run(jobs);
    std::ostringstream os;
    writeResultsJson(os, results);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"dscoh-results-v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schemaVersion\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"code\": \"VA\""), std::string::npos);
    EXPECT_NE(json.find("\"ticks\": "), std::string::npos);
    EXPECT_NE(json.find("\"code\": \"NOPE\""), std::string::npos);
    EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(json.find("\"error\": "), std::string::npos);
    // v2: the per-job stat snapshot rides along with the metrics.
    EXPECT_NE(json.find("\"stats\": {"), std::string::npos);
    EXPECT_NE(json.find("\"dram.ch0.reads\": "), std::string::npos);
}

TEST(ExperimentEngine, ThreadLocalCoverageIsInvisibleToWorkers)
{
    // Documented pitfall: enable() only arms the calling thread's recorder,
    // so a --jobs > 1 sweep records nothing into it. This test pins that
    // behaviour down so the docs stay honest.
    TransitionCoverage::instance().reset();
    TransitionCoverage::instance().enable();
    ExperimentEngine engine(3);
    engine.run(smallBatch());
    EXPECT_EQ(TransitionCoverage::instance().distinctTransitions(), 0u);
    TransitionCoverage::instance().disable();
    TransitionCoverage::instance().reset();
}

TEST(ExperimentEngine, ProcessWideCoverageMergesAcrossWorkers)
{
    // enableProcessWide() is the supported way to collect coverage from a
    // parallel sweep: workers record into their own thread_local instances
    // and flush into the process aggregate when run() joins them.
    TransitionCoverage::resetAggregate();
    TransitionCoverage::instance().reset();
    TransitionCoverage::enableProcessWide();
    ExperimentEngine engine(3);
    const auto results = engine.run(smallBatch());
    TransitionCoverage::disableProcessWide();
    for (const ExperimentResult& r : results)
        ASSERT_TRUE(r.ok) << r.error;

    const TransitionCoverage::Counts merged =
        TransitionCoverage::aggregateSnapshot();
    EXPECT_GT(merged.size(), 5u);
    const auto storeMiss = merged.find(std::make_tuple(
        CohState::kI, CohEvent::kStore, CohState::kIM_D));
    ASSERT_NE(storeMiss, merged.end());
    EXPECT_GT(storeMiss->second, 0u);

    // Serial (run-on-caller) sweeps land in the same snapshot: the caller's
    // live counts merge in without waiting for a thread exit.
    TransitionCoverage::resetAggregate();
    TransitionCoverage::instance().reset();
    TransitionCoverage::enableProcessWide();
    ExperimentEngine(1).run(smallBatch());
    TransitionCoverage::disableProcessWide();
    EXPECT_EQ(TransitionCoverage::aggregateSnapshot(), merged);
    TransitionCoverage::instance().reset();
    TransitionCoverage::resetAggregate();
}

TEST(ExperimentEngine, PreCancelledJobFailsAsCancelledNotCrashed)
{
    // The service's deadline path: a cancel flag that is already set when
    // the job starts. The job must come back as an ordinary failed result
    // (never an exception out of the pool) whose error names the
    // cancellation, classed as an unclassified failure — not IO, not a
    // model bug.
    ExperimentJob job;
    job.code = "VA";
    std::atomic<bool> cancel{true};
    JobRunOptions options;
    options.cancel = &cancel;
    const ExperimentResult r =
        runExperimentJob(job, configHashOf(job.config), options);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("cancelled"), std::string::npos) << r.error;
    EXPECT_EQ(r.errorClass, kExitFailure);
}

TEST(ExperimentEngine, ResultCarriesStatSnapshot)
{
    ExperimentJob job;
    job.code = "VA";
    const auto results = ExperimentEngine(1).run({job});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    const auto& stats = results[0].run.statCounters;
    EXPECT_FALSE(stats.empty());
    const auto reads = stats.find("dram.ch0.reads");
    ASSERT_NE(reads, stats.end());
    EXPECT_EQ(reads->second, results[0].run.metrics.dramReads);
}

} // namespace
} // namespace dscoh
