// Engine journal/resume: a replayed job must be bit-identical to a
// simulated one all the way into results.json; torn journal lines (a
// killed writer) are skipped; the atomic results writer publishes exactly
// the stream writer's bytes.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.h"
#include "exp/experiment_engine.h"

namespace dscoh {
namespace {

namespace fs = std::filesystem;

std::string resultsJson(const std::vector<ExperimentResult>& results)
{
    std::ostringstream os;
    writeResultsJson(os, results);
    return os.str();
}

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::vector<ExperimentJob> smallBatch()
{
    return makeSweepJobs({"VA", "BP"}, {InputSize::kSmall},
                         {CoherenceMode::kCcsm,
                          CoherenceMode::kDirectStore});
}

TEST(EngineResume, JournalLineRoundTripsIntoIdenticalResults)
{
    const std::vector<ExperimentJob> jobs = smallBatch();
    const std::vector<ExperimentResult> ran = ExperimentEngine(2).run(jobs);
    ASSERT_EQ(ran.size(), jobs.size());

    const std::string path = testing::TempDir() + "roundtrip.journal";
    {
        std::ofstream out(path, std::ios::trunc);
        for (std::size_t i = 0; i < ran.size(); ++i) {
            ASSERT_TRUE(ran[i].ok) << ran[i].error;
            out << journalLine(ran[i], configHashOf(jobs[i].config));
        }
    }

    const std::vector<JournalEntry> replayed = readJournal(path);
    ASSERT_EQ(replayed.size(), ran.size());
    std::vector<ExperimentResult> rebuilt;
    for (std::size_t i = 0; i < replayed.size(); ++i) {
        EXPECT_EQ(replayed[i].configHash, configHashOf(jobs[i].config));
        EXPECT_EQ(replayed[i].result.job.code, jobs[i].code);
        EXPECT_EQ(replayed[i].result.job.mode, jobs[i].mode);
        EXPECT_EQ(replayed[i].result.run.produceDoneAt,
                  ran[i].run.produceDoneAt);
        EXPECT_EQ(replayed[i].result.run.kernelDoneAt,
                  ran[i].run.kernelDoneAt);
        EXPECT_EQ(replayed[i].result.run.statCounters,
                  ran[i].run.statCounters);
        rebuilt.push_back(replayed[i].result);
    }
    // The strong property: results.json built from the journal is byte-
    // identical to results.json built from the live runs.
    EXPECT_EQ(resultsJson(rebuilt), resultsJson(ran));
    std::remove(path.c_str());
}

TEST(EngineResume, TornFinalJournalLineIsSkipped)
{
    const std::vector<ExperimentJob> jobs = smallBatch();
    const std::vector<ExperimentResult> ran = ExperimentEngine(2).run(jobs);

    const std::string path = testing::TempDir() + "torn.journal";
    {
        std::ofstream out(path, std::ios::trunc);
        out << journalLine(ran[0], configHashOf(jobs[0].config));
        out << journalLine(ran[1], configHashOf(jobs[1].config));
        const std::string full =
            journalLine(ran[2], configHashOf(jobs[2].config));
        out << full.substr(0, full.size() / 2); // killed mid-write
    }
    const std::vector<JournalEntry> entries = readJournal(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].result.job.code, ran[0].job.code);
    EXPECT_EQ(entries[1].result.job.code, ran[1].job.code);
    std::remove(path.c_str());
}

TEST(EngineResume, MissingJournalYieldsEmpty)
{
    EXPECT_TRUE(readJournal(testing::TempDir() + "nope.journal").empty());
}

TEST(EngineResume, ResumedSweepReproducesResultsExactly)
{
    const std::vector<ExperimentJob> jobs = smallBatch();
    const std::vector<ExperimentResult> reference =
        ExperimentEngine(2).run(jobs);

    const std::string dir = testing::TempDir() + "resume_snapdir";
    fs::create_directories(dir);
    EngineRunOptions opts;
    opts.journalPath = testing::TempDir() + "resume.journal";
    opts.snapDir = dir;
    opts.jobCheckpoints = true;
    std::remove(opts.journalPath.c_str());

    // "Interrupted" sweep: journal all four jobs, then keep only the first
    // two lines, as if the process died after job 2.
    ExperimentEngine(2).run(jobs, opts);
    {
        std::ifstream in(opts.journalPath);
        std::string l1, l2;
        ASSERT_TRUE(std::getline(in, l1));
        ASSERT_TRUE(std::getline(in, l2));
        in.close();
        std::ofstream out(opts.journalPath, std::ios::trunc);
        out << l1 << "\n" << l2 << "\n";
    }

    opts.resume = true;
    const std::vector<ExperimentResult> resumed =
        ExperimentEngine(2).run(jobs, opts);
    ASSERT_EQ(resumed.size(), jobs.size());
    std::size_t replayed = 0;
    for (const ExperimentResult& r : resumed) {
        ASSERT_TRUE(r.ok) << r.error;
        replayed += r.fromJournal ? 1 : 0;
    }
    EXPECT_EQ(replayed, 2u);
    EXPECT_EQ(resultsJson(resumed), resultsJson(reference));

    std::remove(opts.journalPath.c_str());
    fs::remove_all(dir);
}

TEST(EngineResume, AtomicResultsWriterMatchesStreamWriter)
{
    const std::vector<ExperimentJob> jobs =
        makeSweepJobs({"VA"}, {InputSize::kSmall}, {CoherenceMode::kCcsm});
    const std::vector<ExperimentResult> results =
        ExperimentEngine(1).run(jobs);
    const std::string path = testing::TempDir() + "atomic_results.json";
    writeResultsJsonAtomic(path, results);
    EXPECT_EQ(slurp(path), resultsJson(results));
    std::remove(path.c_str());
}

TEST(EngineResume, ReplayJournalReportsExactlyTheOwedJobs)
{
    const std::vector<ExperimentJob> jobs = smallBatch();
    const std::vector<ExperimentResult> ran = ExperimentEngine(2).run(jobs);
    std::vector<std::uint64_t> hashes;
    for (const ExperimentJob& j : jobs)
        hashes.push_back(configHashOf(j.config));

    // Journal jobs 0 and 2 only; replay must fill exactly those slots and
    // return {1, 3} as still owed.
    const std::string path = testing::TempDir() + "replay_partial.journal";
    {
        std::ofstream out(path, std::ios::trunc);
        out << journalLine(ran[0], hashes[0]);
        out << journalLine(ran[2], hashes[2]);
    }
    std::vector<ExperimentResult> results(jobs.size());
    const std::vector<std::size_t> pending =
        replayJournal(jobs, hashes, path, &results);
    EXPECT_EQ(pending, (std::vector<std::size_t>{1, 3}));
    EXPECT_TRUE(results[0].fromJournal);
    EXPECT_FALSE(results[1].fromJournal);
    EXPECT_TRUE(results[2].fromJournal);
    EXPECT_EQ(results[2].job.code, jobs[2].code);
    std::remove(path.c_str());

    // No journal at all: everything is owed.
    std::vector<ExperimentResult> fresh(jobs.size());
    EXPECT_EQ(replayJournal(jobs, hashes,
                            testing::TempDir() + "replay_none.journal",
                            &fresh)
                  .size(),
              jobs.size());
}

TEST(EngineResume, FinalizeJournalKeepsFailedSweepsReplayable)
{
    const std::string path = testing::TempDir() + "finalize.journal";

    // Failure: the journal survives, renamed .failed (regression: it used
    // to be deleted unconditionally, losing the failure set with it).
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"code\": \"VA\"}\n";
    }
    finalizeJournal(path, /*hadFailures=*/true);
    EXPECT_FALSE(fs::exists(path));
    ASSERT_TRUE(fs::exists(path + ".failed"));
    EXPECT_EQ(slurp(path + ".failed"), "{\"code\": \"VA\"}\n");

    // A later failed sweep replaces the kept journal atomically.
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"code\": \"NN\"}\n";
    }
    finalizeJournal(path, true);
    EXPECT_EQ(slurp(path + ".failed"), "{\"code\": \"NN\"}\n");

    // Success: the journal is simply deleted.
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"code\": \"BP\"}\n";
    }
    finalizeJournal(path, /*hadFailures=*/false);
    EXPECT_FALSE(fs::exists(path));

    // Missing file and empty path are no-ops, not errors.
    finalizeJournal(path, false);
    finalizeJournal(path, true);
    finalizeJournal("", false);
    std::remove((path + ".failed").c_str());
}

TEST(EngineResume, ResidentEngineDrainsASourceAndRetires)
{
    // The service's execution substrate: a pool pulling from a blocking
    // source must run every admitted job exactly once, report through the
    // per-job callback, and retire cleanly when the source dries up.
    const std::vector<ExperimentJob> jobs = smallBatch();
    std::vector<std::uint64_t> hashes;
    for (const ExperimentJob& j : jobs)
        hashes.push_back(configHashOf(j.config));

    std::mutex mu;
    std::size_t nextJob = 0;
    std::vector<ExperimentResult> results(jobs.size());
    std::size_t doneCount = 0;
    std::condition_variable cv;
    {
        ResidentEngine engine(
            2, [&]() -> std::optional<ResidentEngine::Admitted> {
                const std::lock_guard<std::mutex> lock(mu);
                if (nextJob >= jobs.size())
                    return std::nullopt; // retire the worker
                const std::size_t i = nextJob++;
                ResidentEngine::Admitted a;
                a.job = jobs[i];
                a.configHash = hashes[i];
                a.done = [&, i](ExperimentResult&& r) {
                    const std::lock_guard<std::mutex> lock2(mu);
                    results[i] = std::move(r);
                    ++doneCount;
                    cv.notify_all();
                };
                return a;
            });
        EXPECT_EQ(engine.threads(), 2u);
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return doneCount == jobs.size(); });
    } // ~ResidentEngine joins against the dried-up source

    const std::vector<ExperimentResult> reference =
        ExperimentEngine(2).run(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(results[i].run.metrics.ticks,
                  reference[i].run.metrics.ticks);
    }
}

TEST(EngineResume, ForkProduceSecondSweepSkipsProduceTicks)
{
    const std::vector<ExperimentJob> jobs =
        makeSweepJobs({"BP"}, {InputSize::kSmall},
                      {CoherenceMode::kCcsm, CoherenceMode::kDirectStore});
    const std::vector<ExperimentResult> reference =
        ExperimentEngine(2).run(jobs);

    const std::string dir = testing::TempDir() + "fork_snapdir";
    fs::create_directories(dir);
    EngineRunOptions opts;
    opts.snapDir = dir;
    opts.forkProduce = true;

    const std::vector<ExperimentResult> cold =
        ExperimentEngine(2).run(jobs, opts);
    const std::vector<ExperimentResult> warm =
        ExperimentEngine(2).run(jobs, opts);
    ASSERT_EQ(warm.size(), jobs.size());
    Tick saved = 0;
    for (const ExperimentResult& r : warm) {
        ASSERT_TRUE(r.ok) << r.error;
        saved += r.produceTicksSaved;
    }
    EXPECT_GT(saved, 0u);
    // Shared produce phase, bit-identical results.
    EXPECT_EQ(resultsJson(cold), resultsJson(reference));
    EXPECT_EQ(resultsJson(warm), resultsJson(reference));
    fs::remove_all(dir);
}

} // namespace
} // namespace dscoh
