// Engine journal/resume: a replayed job must be bit-identical to a
// simulated one all the way into results.json; torn journal lines (a
// killed writer) are skipped; the atomic results writer publishes exactly
// the stream writer's bytes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.h"
#include "exp/experiment_engine.h"

namespace dscoh {
namespace {

namespace fs = std::filesystem;

std::string resultsJson(const std::vector<ExperimentResult>& results)
{
    std::ostringstream os;
    writeResultsJson(os, results);
    return os.str();
}

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::vector<ExperimentJob> smallBatch()
{
    return makeSweepJobs({"VA", "BP"}, {InputSize::kSmall},
                         {CoherenceMode::kCcsm,
                          CoherenceMode::kDirectStore});
}

TEST(EngineResume, JournalLineRoundTripsIntoIdenticalResults)
{
    const std::vector<ExperimentJob> jobs = smallBatch();
    const std::vector<ExperimentResult> ran = ExperimentEngine(2).run(jobs);
    ASSERT_EQ(ran.size(), jobs.size());

    const std::string path = testing::TempDir() + "roundtrip.journal";
    {
        std::ofstream out(path, std::ios::trunc);
        for (std::size_t i = 0; i < ran.size(); ++i) {
            ASSERT_TRUE(ran[i].ok) << ran[i].error;
            out << journalLine(ran[i], configHashOf(jobs[i].config));
        }
    }

    const std::vector<JournalEntry> replayed = readJournal(path);
    ASSERT_EQ(replayed.size(), ran.size());
    std::vector<ExperimentResult> rebuilt;
    for (std::size_t i = 0; i < replayed.size(); ++i) {
        EXPECT_EQ(replayed[i].configHash, configHashOf(jobs[i].config));
        EXPECT_EQ(replayed[i].result.job.code, jobs[i].code);
        EXPECT_EQ(replayed[i].result.job.mode, jobs[i].mode);
        EXPECT_EQ(replayed[i].result.run.produceDoneAt,
                  ran[i].run.produceDoneAt);
        EXPECT_EQ(replayed[i].result.run.kernelDoneAt,
                  ran[i].run.kernelDoneAt);
        EXPECT_EQ(replayed[i].result.run.statCounters,
                  ran[i].run.statCounters);
        rebuilt.push_back(replayed[i].result);
    }
    // The strong property: results.json built from the journal is byte-
    // identical to results.json built from the live runs.
    EXPECT_EQ(resultsJson(rebuilt), resultsJson(ran));
    std::remove(path.c_str());
}

TEST(EngineResume, TornFinalJournalLineIsSkipped)
{
    const std::vector<ExperimentJob> jobs = smallBatch();
    const std::vector<ExperimentResult> ran = ExperimentEngine(2).run(jobs);

    const std::string path = testing::TempDir() + "torn.journal";
    {
        std::ofstream out(path, std::ios::trunc);
        out << journalLine(ran[0], configHashOf(jobs[0].config));
        out << journalLine(ran[1], configHashOf(jobs[1].config));
        const std::string full =
            journalLine(ran[2], configHashOf(jobs[2].config));
        out << full.substr(0, full.size() / 2); // killed mid-write
    }
    const std::vector<JournalEntry> entries = readJournal(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].result.job.code, ran[0].job.code);
    EXPECT_EQ(entries[1].result.job.code, ran[1].job.code);
    std::remove(path.c_str());
}

TEST(EngineResume, MissingJournalYieldsEmpty)
{
    EXPECT_TRUE(readJournal(testing::TempDir() + "nope.journal").empty());
}

TEST(EngineResume, ResumedSweepReproducesResultsExactly)
{
    const std::vector<ExperimentJob> jobs = smallBatch();
    const std::vector<ExperimentResult> reference =
        ExperimentEngine(2).run(jobs);

    const std::string dir = testing::TempDir() + "resume_snapdir";
    fs::create_directories(dir);
    EngineRunOptions opts;
    opts.journalPath = testing::TempDir() + "resume.journal";
    opts.snapDir = dir;
    opts.jobCheckpoints = true;
    std::remove(opts.journalPath.c_str());

    // "Interrupted" sweep: journal all four jobs, then keep only the first
    // two lines, as if the process died after job 2.
    ExperimentEngine(2).run(jobs, opts);
    {
        std::ifstream in(opts.journalPath);
        std::string l1, l2;
        ASSERT_TRUE(std::getline(in, l1));
        ASSERT_TRUE(std::getline(in, l2));
        in.close();
        std::ofstream out(opts.journalPath, std::ios::trunc);
        out << l1 << "\n" << l2 << "\n";
    }

    opts.resume = true;
    const std::vector<ExperimentResult> resumed =
        ExperimentEngine(2).run(jobs, opts);
    ASSERT_EQ(resumed.size(), jobs.size());
    std::size_t replayed = 0;
    for (const ExperimentResult& r : resumed) {
        ASSERT_TRUE(r.ok) << r.error;
        replayed += r.fromJournal ? 1 : 0;
    }
    EXPECT_EQ(replayed, 2u);
    EXPECT_EQ(resultsJson(resumed), resultsJson(reference));

    std::remove(opts.journalPath.c_str());
    fs::remove_all(dir);
}

TEST(EngineResume, AtomicResultsWriterMatchesStreamWriter)
{
    const std::vector<ExperimentJob> jobs =
        makeSweepJobs({"VA"}, {InputSize::kSmall}, {CoherenceMode::kCcsm});
    const std::vector<ExperimentResult> results =
        ExperimentEngine(1).run(jobs);
    const std::string path = testing::TempDir() + "atomic_results.json";
    writeResultsJsonAtomic(path, results);
    EXPECT_EQ(slurp(path), resultsJson(results));
    std::remove(path.c_str());
}

TEST(EngineResume, ForkProduceSecondSweepSkipsProduceTicks)
{
    const std::vector<ExperimentJob> jobs =
        makeSweepJobs({"BP"}, {InputSize::kSmall},
                      {CoherenceMode::kCcsm, CoherenceMode::kDirectStore});
    const std::vector<ExperimentResult> reference =
        ExperimentEngine(2).run(jobs);

    const std::string dir = testing::TempDir() + "fork_snapdir";
    fs::create_directories(dir);
    EngineRunOptions opts;
    opts.snapDir = dir;
    opts.forkProduce = true;

    const std::vector<ExperimentResult> cold =
        ExperimentEngine(2).run(jobs, opts);
    const std::vector<ExperimentResult> warm =
        ExperimentEngine(2).run(jobs, opts);
    ASSERT_EQ(warm.size(), jobs.size());
    Tick saved = 0;
    for (const ExperimentResult& r : warm) {
        ASSERT_TRUE(r.ok) << r.error;
        saved += r.produceTicksSaved;
    }
    EXPECT_GT(saved, 0u);
    // Shared produce phase, bit-identical results.
    EXPECT_EQ(resultsJson(cold), resultsJson(reference));
    EXPECT_EQ(resultsJson(warm), resultsJson(reference));
    fs::remove_all(dir);
}

} // namespace
} // namespace dscoh
