// SnapshotCache: the shared, size-bounded store under the produce-phase
// cache. Pins the budget/eviction/LRU semantics the sweep service depends
// on when many tenants pound one directory.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "snap/snap_cache.h"

namespace dscoh::snap {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
public:
    explicit ScratchDir(const std::string& name)
        : path_(testing::TempDir() + name)
    {
        fs::remove_all(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

/// Backdates an entry's LRU stamp so eviction order is deterministic
/// without sleeping.
void ageEntry(const SnapshotCache& cache, const std::string& file,
              int seconds)
{
    const fs::path p = cache.pathFor(file);
    fs::last_write_time(p, fs::last_write_time(p) -
                               std::chrono::seconds(seconds));
}

TEST(SnapshotCache, InsertThenTouchIsAHit)
{
    ScratchDir dir("snap_cache_hit");
    SnapshotCache cache(dir.path());
    EXPECT_FALSE(cache.touch("a.snap"));
    cache.insert("a.snap", "payload");
    EXPECT_TRUE(cache.touch("a.snap"));
    EXPECT_EQ(cache.counters().hits, 1u);
    EXPECT_EQ(cache.counters().misses, 1u);
    EXPECT_EQ(cache.counters().inserts, 1u);
    std::ifstream in(cache.pathFor("a.snap"));
    std::string contents;
    std::getline(in, contents);
    EXPECT_EQ(contents, "payload");
}

TEST(SnapshotCache, UnboundedStoreNeverEvicts)
{
    ScratchDir dir("snap_cache_unbounded");
    SnapshotCache cache(dir.path(), 0);
    cache.insert("a.snap", std::string(4096, 'a'));
    cache.insert("b.snap", std::string(4096, 'b'));
    EXPECT_EQ(cache.evictToBudget(), 0u);
    EXPECT_EQ(cache.totalBytes(), 8192u);
}

TEST(SnapshotCache, EvictsOldestStampFirstDownToBudget)
{
    ScratchDir dir("snap_cache_lru");
    SnapshotCache cache(dir.path(), 10000);
    cache.insert("old.snap", std::string(4096, 'o'));
    cache.insert("mid.snap", std::string(4096, 'm'));
    ageEntry(cache, "old.snap", 200);
    ageEntry(cache, "mid.snap", 100);
    // Third insert overflows the 10000-byte budget; the oldest entry goes.
    cache.insert("new.snap", std::string(4096, 'n'));
    EXPECT_FALSE(cache.touch("old.snap"));
    EXPECT_TRUE(cache.touch("mid.snap"));
    EXPECT_TRUE(cache.touch("new.snap"));
    EXPECT_LE(cache.totalBytes(), 10000u);
    EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(SnapshotCache, TouchRefreshesTheLruStamp)
{
    ScratchDir dir("snap_cache_refresh");
    SnapshotCache cache(dir.path(), 10000);
    cache.insert("a.snap", std::string(4096, 'a'));
    cache.insert("b.snap", std::string(4096, 'b'));
    ageEntry(cache, "a.snap", 200);
    ageEntry(cache, "b.snap", 100);
    // A hit on the older entry makes it the newest...
    EXPECT_TRUE(cache.touch("a.snap"));
    // ...so the overflow evicts b, not a.
    cache.insert("c.snap", std::string(4096, 'c'));
    EXPECT_TRUE(cache.touch("a.snap"));
    EXPECT_FALSE(cache.touch("b.snap"));
}

TEST(SnapshotCache, KeepExemptsTheTriggeringEntry)
{
    ScratchDir dir("snap_cache_keep");
    // Budget below a single entry: without the exemption the just-written
    // entry would evict itself and every insert would be wasted.
    SnapshotCache cache(dir.path(), 1000);
    cache.insert("only.snap", std::string(4096, 'x'));
    EXPECT_TRUE(cache.touch("only.snap"));
    // An explicit pass with no exemption is allowed to drop it.
    EXPECT_EQ(cache.evictToBudget(), 1u);
    EXPECT_FALSE(cache.touch("only.snap"));
}

TEST(SnapshotCache, LockAndTempFilesAreNotEntries)
{
    ScratchDir dir("snap_cache_skip");
    SnapshotCache cache(dir.path(), 100);
    cache.insert("a.snap", "tiny");
    {
        std::ofstream tmp(dir.path() + "/b.snap.tmp");
        tmp << std::string(4096, 't');
    }
    // Neither the lock file nor the temp file counts toward the budget or
    // gets evicted.
    EXPECT_EQ(cache.totalBytes(), 4u);
    EXPECT_EQ(cache.evictToBudget(), 0u);
    EXPECT_TRUE(fs::exists(dir.path() + "/b.snap.tmp"));
}

TEST(SnapshotCache, ConcurrentInsertersConvergeUnderTheLock)
{
    ScratchDir dir("snap_cache_race");
    const std::uint64_t budget = 3 * 4096;
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t)
        writers.emplace_back([&, t] {
            SnapshotCache cache(dir.path(), budget);
            for (int i = 0; i < 8; ++i) {
                std::string name = "t";
                name += std::to_string(t);
                name += "-";
                name += std::to_string(i);
                name += ".snap";
                cache.insert(name, std::string(4096, 'x'));
            }
        });
    for (std::thread& w : writers)
        w.join();
    SnapshotCache check(dir.path(), budget);
    EXPECT_LE(check.totalBytes(), budget);
}

} // namespace
} // namespace dscoh::snap
