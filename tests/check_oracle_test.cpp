// CoherenceChecker oracle: catches planted protocol bugs, stays silent on
// the correct protocol, and the fuzzer shrinks failing scenarios to small
// reproducers (the ISSUE acceptance case: a skipped remote-store
// invalidation must shrink to a <= 2-array reproducer).
#include <gtest/gtest.h>

#include <sstream>

#include "check/coherence_checker.h"
#include "check/fuzz.h"
#include "core/system.h"

namespace dscoh {
namespace {

// The single-GPU bug-catching tests exercise the unsharded blind-push /
// broadcast-snoop paths; a multi-GPU expansion of the seed would route
// pushes through the home fetch-merge, which legitimately masks (or, for
// planted bugs, differently breaks) those exact paths.
void pinSingleGpu(FuzzScenario& sc)
{
    sc.gpus = 1;
    sc.shardPolicy = 0;
    sc.tsLeaseTicks = 0;
    sc.dsTopology = 0;
}

FuzzScenario smallScenario(std::uint64_t seed)
{
    FuzzScenario sc = generateScenario(seed);
    sc.phases = 1;
    sc.blocks = 2;
    sc.threadsPerBlock = 32;
    pinSingleGpu(sc);
    return sc;
}

TEST(CoherenceOracle, CleanRunReportsNoViolations)
{
    System sys(SystemConfig::paper(CoherenceMode::kCcsm));
    CoherenceChecker& checker = sys.enableChecker();
    const Addr a = sys.allocateArray(4 * kLineSize, true);
    CpuProgram prog;
    for (std::uint32_t i = 0; i < 4; ++i)
        prog.push_back(cpuStore(a + static_cast<Addr>(i) * kLineSize, i, 4));
    prog.push_back(cpuFence());
    KernelDesc k;
    k.name = "touch";
    k.blocks = 1;
    k.threadsPerBlock = 32;
    k.body = [a](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        if (tid < 4)
            t.ldCheck(a + static_cast<Addr>(tid) * kLineSize, tid, 4);
    };
    sys.runCpuProgram(prog, [&] { sys.launchKernel(k, [] {}); });
    sys.simulate();
    checker.finalize(sys.context().queue.curTick());
    EXPECT_TRUE(checker.clean()) << [&] {
        std::ostringstream os;
        checker.dump(os);
        return os.str();
    }();
    EXPECT_GT(checker.transitionsChecked(), 0u);
    EXPECT_GT(checker.storesMirrored(), 0u);
}

TEST(CoherenceOracle, CatchesSkippedRemoteStoreInvalidation)
{
    // The acceptance bug: a remote store that leaves the CPU's stale copy
    // alive. The single-writer / data-value invariants must fire.
    FuzzScenario sc = smallScenario(1);
    sc.bug = InjectedBug::kSkipRemoteStoreInval;
    bool anyPretouch = false;
    for (FuzzArray& arr : sc.arrays) {
        arr.gpuShared = true;
        arr.cpuPretouch = true;
        anyPretouch = true;
    }
    ASSERT_TRUE(anyPretouch);
    const FuzzReport r = runScenario(sc, CoherenceMode::kDirectStore);
    EXPECT_TRUE(r.failed());
    EXPECT_FALSE(r.violations.empty());
}

TEST(CoherenceOracle, CatchesSkippedSnoopInvalidation)
{
    bool caught = false;
    for (std::uint64_t seed = 0; seed < 30 && !caught; ++seed) {
        FuzzScenario sc = generateScenario(seed);
        pinSingleGpu(sc);
        sc.bug = InjectedBug::kSkipSnoopInvalidate;
        caught = runDifferential(sc).failed();
    }
    EXPECT_TRUE(caught);
}

TEST(CoherenceOracle, CatchesDroppedWritebackAck)
{
    // A dropped WbAck wedges the writeback buffer; the finalize sweep (or
    // the watchdog) must flag the run.
    bool caught = false;
    for (std::uint64_t seed = 0; seed < 30 && !caught; ++seed) {
        FuzzScenario sc = generateScenario(seed);
        sc.bug = InjectedBug::kDropWbAck;
        caught = runDifferential(sc).failed();
    }
    EXPECT_TRUE(caught);
}

TEST(CoherenceOracle, MshrHooksCatchLeaks)
{
    CoherenceChecker checker;
    checker.onMshrAllocate("cpu", 0x1000, 10);
    checker.onMshrAllocate("cpu", 0x1000, 20); // double allocation
    checker.onMshrRelease("cpu", 0x2000, 30);  // never allocated
    checker.finalize(40);                      // 0x1000 still live -> leak
    ASSERT_EQ(checker.violations().size(), 3u);
    EXPECT_NE(checker.violations()[0].find("double-allocated"),
              std::string::npos);
    EXPECT_NE(checker.violations()[1].find("never allocated"),
              std::string::npos);
    EXPECT_NE(checker.violations()[2].find("never released"),
              std::string::npos);
}

TEST(CoherenceOracle, ProgressWatchdogFiresOnSilence)
{
    CoherenceChecker checker;
    CoherenceChecker::AgentView view;
    view.name = "cpu";
    view.stateOf = [](Addr) { return CohState::kI; };
    view.dataOf = [](Addr) -> const DataBlock* { return nullptr; };
    view.mshrInFlight = [] { return std::size_t{1}; }; // forever outstanding
    view.writebackEntries = [] { return std::size_t{0}; };
    view.blockedThunks = [] { return std::size_t{0}; };
    view.forEachLine = [](const CoherenceChecker::LineFn&) {};
    checker.addAgent(std::move(view));

    EXPECT_TRUE(checker.checkProgress(100)); // arms the watchdog
    EXPECT_FALSE(checker.checkProgress(200)); // no activity since -> stalled
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_NE(checker.violations()[0].find("[deadlock]"), std::string::npos);
}

TEST(CoherenceOracle, InjectedBugShrinksToTinyReproducer)
{
    // End-to-end acceptance: fuzz with the planted remote-store bug, then
    // shrink — the reproducer must be at most 2 arrays and 1 phase.
    FuzzScenario failing;
    bool found = false;
    for (std::uint64_t seed = 0; seed < 40 && !found; ++seed) {
        FuzzScenario sc = generateScenario(seed);
        sc.bug = InjectedBug::kSkipRemoteStoreInval;
        if (runDifferential(sc).failed()) {
            failing = sc;
            found = true;
        }
    }
    ASSERT_TRUE(found) << "no seed in 0:40 triggered the planted bug";

    const auto stillFails = [](const FuzzScenario& c) {
        return runDifferential(c).failed();
    };
    const FuzzScenario minimal = shrinkScenario(failing, stillFails, 96);
    EXPECT_TRUE(stillFails(minimal));
    EXPECT_LE(minimal.arrays.size(), 2u);
    EXPECT_EQ(minimal.phases, 1u);
    EXPECT_LE(minimal.blocks * minimal.threadsPerBlock, 64u);
}

TEST(CoherenceOracle, MultiGpuCrossSharingRunsClean)
{
    // 4 GPUs / 2 CPU cores, page sharding, timestamp fast path armed: the
    // CPU pushes one page homed at each GPU, every GPU then reads every
    // other GPU's page (leases + fallbacks) and writes one remote line
    // (cross-shard GetX). The oracle must stay silent throughout.
    SystemConfig cfg = SystemConfig::paper(CoherenceMode::kDirectStore);
    cfg.numGpus = 4;
    cfg.cpuCores = 2;
    cfg.shardPolicy = ShardPolicy::kPage;
    cfg.tsLeaseTicks = 20'000;
    System sys(cfg);
    CoherenceChecker& checker = sys.enableChecker();

    Addr page[4];
    for (std::uint32_t g = 0; g < 4; ++g)
        page[g] = sys.allocateArrayHomed(kPageSize, g);

    CpuProgram produce; // two full lines per page, value = g * 1000 + word
    for (std::uint32_t g = 0; g < 4; ++g)
        for (std::uint32_t i = 0; i < 2 * kLineSize / 4; ++i)
            produce.push_back(
                cpuStore(page[g] + i * 4ull, g * 1000 + i, 4));
    produce.push_back(cpuFence());

    KernelDesc k[4];
    for (std::uint32_t g = 0; g < 4; ++g) {
        k[g].name = "xshare" + std::to_string(g);
        k[g].blocks = 1;
        k[g].threadsPerBlock = 32;
        k[g].gpu = g;
        const Addr* pages = page;
        k[g].body = [pages, g](ThreadBuilder& t, std::uint32_t,
                               std::uint32_t tid) {
            if (tid < 4)
                t.ldCheck(pages[tid], tid * 1000, 4); // every page's line 0
            else if (tid == 4)
                t.st(pages[(g + 1) % 4] + (8ull + g) * kLineSize, 7000 + g,
                     4); // distinct remote line per writer
            else
                t.nop();
        };
    }

    CpuProgram readback; // core 1 re-checks the pushed values
    for (std::uint32_t g = 0; g < 4; ++g)
        readback.push_back(cpuLoadCheck(page[g], g * 1000, 4));

    sys.runCpuProgramOn(0, produce, [&] {
        sys.launchKernel(k[0], [&] {
            sys.launchKernel(k[1], [&] {
                sys.launchKernel(k[2], [&] {
                    sys.launchKernel(k[3], [&] {
                        sys.runCpuProgramOn(1, readback, [] {});
                    });
                });
            });
        });
    });
    sys.simulate();
    checker.finalize(sys.context().queue.curTick());
    EXPECT_TRUE(checker.clean()) << [&] {
        std::ostringstream os;
        checker.dump(os);
        return os.str();
    }();
    EXPECT_EQ(sys.metrics().checkFailures, 0u);
    EXPECT_TRUE(sys.checkCoherenceInvariants().empty());
    std::uint64_t grants = 0;
    for (std::size_t s = 0; s < sys.sliceCount(); ++s)
        grants += sys.slice(s).tsGrantsIssued();
    EXPECT_GT(grants, 0u) << "timestamp fast path never engaged";
}

TEST(CoherenceOracle, CatchesCrossShardOrderingBug)
{
    // The planted multi-GPU bug: lease holds are skipped, so a push lands
    // mid-lease and the leasing GPU later serves stale data. The same
    // directed sequence must be clean without the bug (the push is then
    // held until the lease expires).
    const auto run = [](InjectedBug bug, std::uint64_t* failures) {
        SystemConfig cfg = SystemConfig::paper(CoherenceMode::kDirectStore);
        cfg.numGpus = 2;
        cfg.shardPolicy = ShardPolicy::kPage;
        cfg.tsLeaseTicks = 1'000'000;
        cfg.injectBug = bug;
        System sys(cfg);
        CoherenceChecker& checker = sys.enableChecker();
        const Addr arr = sys.allocateArrayHomed(kPageSize, 0);

        CpuProgram produce1;
        for (std::uint32_t i = 0; i < kLineSize / 4; ++i)
            produce1.push_back(cpuStore(arr + i * 4ull, 100 + i, 4));
        produce1.push_back(cpuFence());
        CpuProgram produce2;
        for (std::uint32_t i = 0; i < kLineSize / 4; ++i)
            produce2.push_back(cpuStore(arr + i * 4ull, 200 + i, 4));
        produce2.push_back(cpuFence());

        KernelDesc leaseK;
        leaseK.name = "leaseK";
        leaseK.blocks = 1;
        leaseK.threadsPerBlock = 32;
        leaseK.gpu = 1;
        leaseK.body = [arr](ThreadBuilder& t, std::uint32_t,
                            std::uint32_t tid) {
            if (tid == 0)
                t.ldCheck(arr, 100, 4);
            else
                t.nop();
        };
        KernelDesc staleK = leaseK;
        staleK.name = "staleK";
        staleK.body = [arr](ThreadBuilder& t, std::uint32_t,
                            std::uint32_t tid) {
            if (tid == 0)
                t.ldCheck(arr, 200, 4); // must see produce2's value
            else
                t.nop();
        };

        sys.runCpuProgram(produce1, [&] {
            sys.launchKernel(leaseK, [&] {
                sys.runCpuProgram(produce2, [&] {
                    sys.launchKernel(staleK, [] {});
                });
            });
        });
        sys.simulate();
        checker.finalize(sys.context().queue.curTick());
        *failures = sys.metrics().checkFailures;
        return checker.clean();
    };

    std::uint64_t failures = 0;
    EXPECT_FALSE(run(InjectedBug::kCrossShardOrder, &failures));
    EXPECT_GT(failures, 0u) << "stale lease read went unnoticed";
    failures = 0;
    EXPECT_TRUE(run(InjectedBug::kNone, &failures));
    EXPECT_EQ(failures, 0u);
}

TEST(CoherenceOracle, LeaseHooksFlagBadGrantsAndServes)
{
    // Unit-level: the sharded-directory hooks must record violations for an
    // expired grant, a grant from a non-owner, an expired serve, and an
    // externally reported shard misroute.
    SystemConfig cfg = SystemConfig::paper(CoherenceMode::kDirectStore);
    cfg.numGpus = 2;
    System sys(cfg);
    CoherenceChecker& checker = sys.enableChecker();

    checker.onLeaseGrant("slice0", 0x1000, /*expiry=*/5, /*now=*/10);
    const std::size_t afterGrant = checker.violations().size();
    EXPECT_GE(afterGrant, 1u); // expired grant (and a non-owner grant)

    DataBlock block;
    checker.onLeaseServe("gpu1.slice0", 0x1000, block, /*expiry=*/5,
                         /*now=*/10);
    EXPECT_GT(checker.violations().size(), afterGrant);

    const std::size_t beforeShard = checker.violations().size();
    checker.reportExternal("home1", "request GetS for a line this shard "
                           "does not order (shard 1)", 3);
    EXPECT_GT(checker.violations().size(), beforeShard);
    EXPECT_FALSE(checker.clean());
}

TEST(CoherenceOracle, CheckerOffRunsAreUndisturbed)
{
    // The oracle must be an observer: the same scenario with and without
    // the checker produces identical final output words and tick counts.
    const FuzzScenario sc = generateScenario(3);
    FuzzOptions on;
    on.oracle = true;
    FuzzOptions off;
    off.oracle = false;
    for (const CoherenceMode mode :
         {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}) {
        const FuzzReport a = runScenario(sc, mode, on);
        const FuzzReport b = runScenario(sc, mode, off);
        EXPECT_TRUE(a.completed);
        EXPECT_TRUE(b.completed);
        EXPECT_EQ(a.ticks, b.ticks);
        EXPECT_EQ(a.outWords, b.outWords);
    }
}

} // namespace
} // namespace dscoh
