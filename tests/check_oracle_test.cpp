// CoherenceChecker oracle: catches planted protocol bugs, stays silent on
// the correct protocol, and the fuzzer shrinks failing scenarios to small
// reproducers (the ISSUE acceptance case: a skipped remote-store
// invalidation must shrink to a <= 2-array reproducer).
#include <gtest/gtest.h>

#include <sstream>

#include "check/coherence_checker.h"
#include "check/fuzz.h"
#include "core/system.h"

namespace dscoh {
namespace {

FuzzScenario smallScenario(std::uint64_t seed)
{
    FuzzScenario sc = generateScenario(seed);
    sc.phases = 1;
    sc.blocks = 2;
    sc.threadsPerBlock = 32;
    return sc;
}

TEST(CoherenceOracle, CleanRunReportsNoViolations)
{
    System sys(SystemConfig::paper(CoherenceMode::kCcsm));
    CoherenceChecker& checker = sys.enableChecker();
    const Addr a = sys.allocateArray(4 * kLineSize, true);
    CpuProgram prog;
    for (std::uint32_t i = 0; i < 4; ++i)
        prog.push_back(cpuStore(a + static_cast<Addr>(i) * kLineSize, i, 4));
    prog.push_back(cpuFence());
    KernelDesc k;
    k.name = "touch";
    k.blocks = 1;
    k.threadsPerBlock = 32;
    k.body = [a](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        if (tid < 4)
            t.ldCheck(a + static_cast<Addr>(tid) * kLineSize, tid, 4);
    };
    sys.runCpuProgram(prog, [&] { sys.launchKernel(k, [] {}); });
    sys.simulate();
    checker.finalize(sys.context().queue.curTick());
    EXPECT_TRUE(checker.clean()) << [&] {
        std::ostringstream os;
        checker.dump(os);
        return os.str();
    }();
    EXPECT_GT(checker.transitionsChecked(), 0u);
    EXPECT_GT(checker.storesMirrored(), 0u);
}

TEST(CoherenceOracle, CatchesSkippedRemoteStoreInvalidation)
{
    // The acceptance bug: a remote store that leaves the CPU's stale copy
    // alive. The single-writer / data-value invariants must fire.
    FuzzScenario sc = smallScenario(1);
    sc.bug = InjectedBug::kSkipRemoteStoreInval;
    bool anyPretouch = false;
    for (FuzzArray& arr : sc.arrays) {
        arr.gpuShared = true;
        arr.cpuPretouch = true;
        anyPretouch = true;
    }
    ASSERT_TRUE(anyPretouch);
    const FuzzReport r = runScenario(sc, CoherenceMode::kDirectStore);
    EXPECT_TRUE(r.failed());
    EXPECT_FALSE(r.violations.empty());
}

TEST(CoherenceOracle, CatchesSkippedSnoopInvalidation)
{
    bool caught = false;
    for (std::uint64_t seed = 0; seed < 30 && !caught; ++seed) {
        FuzzScenario sc = generateScenario(seed);
        sc.bug = InjectedBug::kSkipSnoopInvalidate;
        caught = runDifferential(sc).failed();
    }
    EXPECT_TRUE(caught);
}

TEST(CoherenceOracle, CatchesDroppedWritebackAck)
{
    // A dropped WbAck wedges the writeback buffer; the finalize sweep (or
    // the watchdog) must flag the run.
    bool caught = false;
    for (std::uint64_t seed = 0; seed < 30 && !caught; ++seed) {
        FuzzScenario sc = generateScenario(seed);
        sc.bug = InjectedBug::kDropWbAck;
        caught = runDifferential(sc).failed();
    }
    EXPECT_TRUE(caught);
}

TEST(CoherenceOracle, MshrHooksCatchLeaks)
{
    CoherenceChecker checker;
    checker.onMshrAllocate("cpu", 0x1000, 10);
    checker.onMshrAllocate("cpu", 0x1000, 20); // double allocation
    checker.onMshrRelease("cpu", 0x2000, 30);  // never allocated
    checker.finalize(40);                      // 0x1000 still live -> leak
    ASSERT_EQ(checker.violations().size(), 3u);
    EXPECT_NE(checker.violations()[0].find("double-allocated"),
              std::string::npos);
    EXPECT_NE(checker.violations()[1].find("never allocated"),
              std::string::npos);
    EXPECT_NE(checker.violations()[2].find("never released"),
              std::string::npos);
}

TEST(CoherenceOracle, ProgressWatchdogFiresOnSilence)
{
    CoherenceChecker checker;
    CoherenceChecker::AgentView view;
    view.name = "cpu";
    view.stateOf = [](Addr) { return CohState::kI; };
    view.dataOf = [](Addr) -> const DataBlock* { return nullptr; };
    view.mshrInFlight = [] { return std::size_t{1}; }; // forever outstanding
    view.writebackEntries = [] { return std::size_t{0}; };
    view.blockedThunks = [] { return std::size_t{0}; };
    view.forEachLine = [](const CoherenceChecker::LineFn&) {};
    checker.addAgent(std::move(view));

    EXPECT_TRUE(checker.checkProgress(100)); // arms the watchdog
    EXPECT_FALSE(checker.checkProgress(200)); // no activity since -> stalled
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_NE(checker.violations()[0].find("[deadlock]"), std::string::npos);
}

TEST(CoherenceOracle, InjectedBugShrinksToTinyReproducer)
{
    // End-to-end acceptance: fuzz with the planted remote-store bug, then
    // shrink — the reproducer must be at most 2 arrays and 1 phase.
    FuzzScenario failing;
    bool found = false;
    for (std::uint64_t seed = 0; seed < 40 && !found; ++seed) {
        FuzzScenario sc = generateScenario(seed);
        sc.bug = InjectedBug::kSkipRemoteStoreInval;
        if (runDifferential(sc).failed()) {
            failing = sc;
            found = true;
        }
    }
    ASSERT_TRUE(found) << "no seed in 0:40 triggered the planted bug";

    const auto stillFails = [](const FuzzScenario& c) {
        return runDifferential(c).failed();
    };
    const FuzzScenario minimal = shrinkScenario(failing, stillFails, 96);
    EXPECT_TRUE(stillFails(minimal));
    EXPECT_LE(minimal.arrays.size(), 2u);
    EXPECT_EQ(minimal.phases, 1u);
    EXPECT_LE(minimal.blocks * minimal.threadsPerBlock, 64u);
}

TEST(CoherenceOracle, CheckerOffRunsAreUndisturbed)
{
    // The oracle must be an observer: the same scenario with and without
    // the checker produces identical final output words and tick counts.
    const FuzzScenario sc = generateScenario(3);
    FuzzOptions on;
    on.oracle = true;
    FuzzOptions off;
    off.oracle = false;
    for (const CoherenceMode mode :
         {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}) {
        const FuzzReport a = runScenario(sc, mode, on);
        const FuzzReport b = runScenario(sc, mode, off);
        EXPECT_TRUE(a.completed);
        EXPECT_TRUE(b.completed);
        EXPECT_EQ(a.ticks, b.ticks);
        EXPECT_EQ(a.outWords, b.outWords);
    }
}

} // namespace
} // namespace dscoh
