#include <gtest/gtest.h>

#include "mem/backing_store.h"
#include "mem/data_block.h"

namespace dscoh {
namespace {

TEST(DataBlock, ZeroInitialized)
{
    DataBlock b;
    for (std::uint32_t off = 0; off < kLineSize; off += 8)
        EXPECT_EQ(b.read(off, 8), 0u);
}

TEST(DataBlock, WriteReadRoundTrip)
{
    DataBlock b;
    b.write(16, 0xdeadbeefcafef00dull, 8);
    EXPECT_EQ(b.read(16, 8), 0xdeadbeefcafef00dull);
    EXPECT_EQ(b.read(16, 4), 0xcafef00dull); // little-endian low half
}

TEST(DataBlock, PartialSizesDoNotClobberNeighbors)
{
    DataBlock b;
    b.write(0, 0x1111111111111111ull, 8);
    b.write(8, 0x2222222222222222ull, 8);
    b.write(4, 0xab, 1);
    EXPECT_EQ(b.read(0, 4), 0x11111111u);
    EXPECT_EQ(b.read(4, 1), 0xabu);
    EXPECT_EQ(b.read(8, 8), 0x2222222222222222ull);
}

TEST(DataBlock, EqualityComparesBytes)
{
    DataBlock a;
    DataBlock b;
    EXPECT_TRUE(a == b);
    a.write(100, 7, 1);
    EXPECT_FALSE(a == b);
    b.write(100, 7, 1);
    EXPECT_TRUE(a == b);
}

TEST(ByteMask, FullAndEmpty)
{
    ByteMask m;
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(m.full());
    m.set(0, kLineSize);
    EXPECT_TRUE(m.full());
    EXPECT_FALSE(m.empty());
    EXPECT_EQ(m.count(), kLineSize);
}

TEST(ByteMask, PartialCoverage)
{
    ByteMask m;
    m.set(4, 8);
    EXPECT_FALSE(m.full());
    EXPECT_TRUE(m.test(4));
    EXPECT_TRUE(m.test(11));
    EXPECT_FALSE(m.test(3));
    EXPECT_FALSE(m.test(12));
    EXPECT_EQ(m.count(), 8u);
}

TEST(ByteMask, ApplyMergesOnlyMaskedBytes)
{
    DataBlock dst;
    DataBlock src;
    dst.write(0, 0x1111, 2);
    dst.write(2, 0x2222, 2);
    src.write(0, 0xaaaa, 2);
    src.write(2, 0xbbbb, 2);
    ByteMask m;
    m.set(0, 2);
    m.apply(dst, src);
    EXPECT_EQ(dst.read(0, 2), 0xaaaau);
    EXPECT_EQ(dst.read(2, 2), 0x2222u);
}

TEST(BackingStore, ReadOfUntouchedLineIsZero)
{
    BackingStore store(1 << 20);
    EXPECT_EQ(store.readLine(0x1000).read(0, 8), 0u);
    EXPECT_EQ(store.touchedLines(), 0u);
}

TEST(BackingStore, WriteLinePersists)
{
    BackingStore store(1 << 20);
    DataBlock d;
    d.write(8, 99, 8);
    store.writeLine(0x2040, d); // unaligned addr targets its line
    EXPECT_EQ(store.readLine(0x2000).read(8, 8), 99u);
    EXPECT_EQ(store.touchedLines(), 1u);
}

TEST(BackingStore, MaskedWriteLeavesOtherBytes)
{
    BackingStore store(1 << 20);
    DataBlock base;
    base.write(0, 0x1234, 2);
    base.write(64, 0x5678, 2);
    store.writeLine(0, base);

    DataBlock update;
    update.write(0, 0xffff, 2);
    update.write(64, 0xeeee, 2);
    ByteMask mask;
    mask.set(64, 2);
    store.writeMasked(0, update, mask);

    EXPECT_EQ(store.readLine(0).read(0, 2), 0x1234u);
    EXPECT_EQ(store.readLine(0).read(64, 2), 0xeeeeu);
}

TEST(BackingStore, LineHelperGivesWritableRef)
{
    BackingStore store(1 << 20);
    store.line(0x80).write(0, 42, 1);
    EXPECT_EQ(store.readLine(0x80).read(0, 1), 42u);
}

} // namespace
} // namespace dscoh
