// Small-unit coverage: the helpers that everything else leans on.
#include <gtest/gtest.h>

#include "gpu/sm.h"
#include "mem/interleave.h"
#include "net/message.h"
#include "sim/sim_context.h"
#include "sim/sim_object.h"

namespace dscoh {
namespace {

// ------------------------------------------------------------- GpuClock --

TEST(GpuClock, TenSeventhsTicksPerCycleOnAverage)
{
    GpuClock clock;
    Tick total = 0;
    for (int i = 0; i < 700; ++i)
        total += clock.ticksFor(1);
    // 700 GPU cycles at 1.4 GHz == 1000 CPU ticks at 2 GHz, exactly.
    EXPECT_EQ(total, 1000u);
}

TEST(GpuClock, BulkAndIncrementalAgree)
{
    GpuClock a;
    GpuClock b;
    Tick incremental = 0;
    for (int i = 0; i < 123; ++i)
        incremental += a.ticksFor(1);
    const Tick bulk = b.ticksFor(123);
    EXPECT_EQ(incremental, bulk);
}

// ------------------------------------------------------ SliceInterleave --

TEST(SliceInterleave, MapsLinesRoundRobin)
{
    SliceInterleave il(4);
    EXPECT_EQ(il.bits(), 2u);
    for (Addr line = 0; line < 16; ++line)
        EXPECT_EQ(il.sliceOf(line * kLineSize), line % 4);
    // Offsets within a line never change the slice.
    EXPECT_EQ(il.sliceOf(5 * kLineSize + 127), il.sliceOf(5 * kLineSize));
}

TEST(SliceInterleave, RejectsBadCounts)
{
    EXPECT_THROW(SliceInterleave il(3), std::invalid_argument);
    EXPECT_THROW(SliceInterleave il(0), std::invalid_argument);
    EXPECT_NO_THROW(SliceInterleave il(1));
    EXPECT_EQ(SliceInterleave(1).bits(), 0u);
}

// --------------------------------------------------------------- Message --

TEST(Message, WireBytesReflectPayload)
{
    Message control;
    control.type = MsgType::kGetS;
    EXPECT_EQ(control.wireBytes(), 8u);

    Message data;
    data.type = MsgType::kData;
    EXPECT_EQ(data.wireBytes(), 8u + kLineSize);

    EXPECT_TRUE(carriesData(MsgType::kDsPutX));
    EXPECT_TRUE(carriesData(MsgType::kL1LoadResp));
    EXPECT_FALSE(carriesData(MsgType::kSnpGetS));
    EXPECT_FALSE(carriesData(MsgType::kDsAck));
}

// ------------------------------------------------------------- SimObject --

TEST(SimObject, StatNamesAreHierarchical)
{
    struct Probe : SimObject {
        using SimObject::SimObject;
        std::string leaf(const std::string& l) const { return statName(l); }
    };
    SimContext ctx;
    Probe p("gpu.l2.slice0", ctx);
    EXPECT_EQ(p.leaf("misses"), "gpu.l2.slice0.misses");
    EXPECT_EQ(p.name(), "gpu.l2.slice0");
    EXPECT_EQ(&p.queue(), &ctx.queue);
    EXPECT_EQ(&p.log(), &ctx.log);
}

// ---------------------------------------------------------- line helpers --

TEST(AddressHelpers, AlignOffsetNumber)
{
    EXPECT_EQ(lineAlign(0x1234), 0x1200u + 0x00u); // 0x1234 & ~127
    EXPECT_EQ(lineAlign(0x1280), 0x1280u);
    EXPECT_EQ(lineOffset(0x1234), 0x34u);
    EXPECT_EQ(lineNumber(0x1280), 0x25u);
    EXPECT_EQ(pageAlign(0x12345), 0x12000u);
}

// --------------------------------------------------------- CacheGeometry --

TEST(CacheGeometry, SetMathAndErrors)
{
    CacheGeometry g;
    g.sizeBytes = 2 * 1024 * 1024;
    g.ways = 16;
    EXPECT_EQ(g.sets(), 1024u);

    CacheGeometry bad;
    bad.sizeBytes = 100; // not divisible into lines/ways
    bad.ways = 3;
    EXPECT_THROW(bad.sets(), std::invalid_argument);
}

} // namespace
} // namespace dscoh
