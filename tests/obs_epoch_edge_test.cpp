// EpochSampler edge cases: a zero period must disable sampling entirely, a
// period longer than the whole run must degenerate to bookend samples and
// still terminate, and a sampled run that snapshots and restores must
// reproduce the uninterrupted run's time series byte for byte. The
// sampler's event dies at the first full queue drain (it only re-arms
// while other work is pending), so in a phased run the series is complete
// before any checkpoint safe point — it travels whole inside the
// snapshot, and frozen start() must not let a restored run resample
// epochs the uninterrupted run never saw.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "obs/epoch_sampler.h"
#include "snap/serializer.h"
#include "workloads/runner.h"

namespace dscoh {
namespace {

std::string epochJson(System& sys)
{
    std::ostringstream os;
    sys.epochSampler()->writeJson(os);
    return os.str();
}

/// A VA run with a sampler of period @p epochTicks attached, started at
/// the first phase boundary (the dscoh_run --epoch-ticks wiring).
std::unique_ptr<WorkloadRun> runSampled(CoherenceMode mode, Tick epochTicks,
                                        WorkloadRunOptions opts = {})
{
    const Workload& w = WorkloadRegistry::instance().get("VA");
    auto run = std::make_unique<WorkloadRun>(w, InputSize::kSmall, mode,
                                             SystemConfig{}, opts);
    EpochSampler::Params params;
    params.epochTicks = epochTicks;
    run->system().enableEpochSampler(std::move(params));
    run->options().beforeFirstPhase = [](System& s) {
        s.epochSampler()->start();
    };
    run->run();
    return run;
}

TEST(EpochSamplerEdge, ZeroPeriodDisablesSamplingWithoutPerturbingTheRun)
{
    const Workload& w = WorkloadRegistry::instance().get("VA");
    WorkloadRun plain(w, InputSize::kSmall, CoherenceMode::kCcsm);
    const WorkloadRunResult ref = plain.run();

    auto run = runSampled(CoherenceMode::kCcsm, 0);
    EXPECT_TRUE(run->system().epochSampler()->samples().empty());
    EXPECT_EQ(run->system().queue().curTick(), ref.metrics.ticks);
}

TEST(EpochSamplerEdge, HugePeriodDegeneratesToBookendSamplesAndTerminates)
{
    // Period far beyond the run: the epoch-0 sample lands at start() and
    // the one armed event fires during the final drain (the queue has no
    // cancellation, so it coasts to the armed tick — cheaply, the timing
    // wheel skips empty ranges), finds nothing pending, samples the final
    // totals and dies instead of re-arming forever.
    const Tick huge = 1'000'000'000'000ull;
    auto run = runSampled(CoherenceMode::kCcsm, huge);
    const EpochSampler* sampler = run->system().epochSampler();
    ASSERT_EQ(sampler->samples().size(), 2u);
    EXPECT_LT(sampler->samples()[0].tick, huge);
    EXPECT_GE(sampler->samples()[1].tick, huge);
    // Monotone, and the terminal sample holds the end-of-run counter
    // totals — every value at least its epoch-0 counterpart.
    const EpochSampler::Sample& first = sampler->samples().front();
    const EpochSampler::Sample& last = sampler->samples().back();
    ASSERT_EQ(first.values.size(), last.values.size());
    for (std::size_t i = 0; i < first.values.size(); ++i)
        EXPECT_GE(last.values[i], first.values[i]);
}

TEST(EpochSamplerEdge, SnapshotRestoreReproducesTheSeriesByteForByte)
{
    const CoherenceMode mode = CoherenceMode::kDirectStore;
    const Tick period = 10'000;

    auto ref = runSampled(mode, period);
    const std::string refJson = epochJson(ref->system());
    ASSERT_GT(ref->system().epochSampler()->samples().size(), 2u)
        << "period too long to build a real series before the safe point";

    const std::string path = testing::TempDir() + "epoch_edge.snap";
    WorkloadRunOptions saveOpts;
    saveOpts.checkpointOut = path;
    saveOpts.checkpointAtPhase = 0;
    auto save = runSampled(mode, period, saveOpts);
    EXPECT_EQ(epochJson(save->system()), refJson)
        << "checkpointing must not perturb the series";
    const Tick savedAt = snap::readSnapshotHeader(path).tick;

    WorkloadRunOptions restoreOpts;
    restoreOpts.restoreFrom = path;
    auto restored = runSampled(mode, period, restoreOpts);
    const EpochSampler* sampler = restored->system().epochSampler();
    EXPECT_TRUE(sampler->restored());

    // The whole series travels in the snapshot: samples from well before
    // the checkpoint tick are present, monotone, and none postdate the
    // safe point (the sampling event died in the drain that preceded it,
    // so there is nothing left to resume — see EpochSampler::start()).
    ASSERT_FALSE(sampler->samples().empty());
    Tick prev = 0;
    for (const EpochSampler::Sample& s : sampler->samples()) {
        EXPECT_LE(prev, s.tick);
        EXPECT_LE(s.tick, savedAt);
        prev = s.tick;
    }
    EXPECT_LT(sampler->samples().front().tick, savedAt);
    EXPECT_EQ(epochJson(restored->system()), refJson);

    // Frozen start(): restarting a restored sampler must not inject
    // samples the uninterrupted run never took.
    const std::size_t n = sampler->samples().size();
    restored->system().epochSampler()->start();
    EXPECT_EQ(sampler->samples().size(), n);
    std::remove(path.c_str());
}

} // namespace
} // namespace dscoh
