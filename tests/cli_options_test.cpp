#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "cli/options.h"

namespace dscoh::cli {
namespace {

struct Parsed {
    bool ok;
    std::string err;
};

template <typename Setup>
Parsed tryParse(std::vector<const char*> args, Setup setup)
{
    OptionParser parser("test", "test tool");
    setup(parser);
    std::ostringstream err;
    args.insert(args.begin(), "test");
    const bool ok = parser.parse(static_cast<int>(args.size()), args.data(), err);
    return {ok, err.str()};
}

TEST(Options, ParsesFlagsAndValues)
{
    bool flag = false;
    std::uint64_t n = 0;
    std::string s;
    OptionParser parser("t", "d");
    parser.addFlag("verbose", "v", &flag);
    parser.addUint("count", "c", &n);
    parser.addString("name", "n", &s);
    const char* argv[] = {"t", "--verbose", "--count", "42", "--name=abc",
                          "positional"};
    std::ostringstream err;
    ASSERT_TRUE(parser.parse(6, argv, err)) << err.str();
    EXPECT_TRUE(flag);
    EXPECT_EQ(n, 42u);
    EXPECT_EQ(s, "abc");
    ASSERT_EQ(parser.positional().size(), 1u);
    EXPECT_EQ(parser.positional()[0], "positional");
}

TEST(Options, EqualsSyntaxForNumbers)
{
    std::uint64_t n = 0;
    const auto r = tryParse({"--count=0x10"}, [&](OptionParser& p) {
        p.addUint("count", "c", &n);
    });
    EXPECT_TRUE(r.ok) << r.err;
    EXPECT_EQ(n, 16u);
}

TEST(Options, RejectsUnknownOption)
{
    const auto r = tryParse({"--nope"}, [](OptionParser&) {});
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.err.find("unknown option"), std::string::npos);
}

TEST(Options, RejectsMissingValue)
{
    std::uint64_t n = 0;
    const auto r = tryParse({"--count"}, [&](OptionParser& p) {
        p.addUint("count", "c", &n);
    });
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.err.find("needs a value"), std::string::npos);
}

TEST(Options, RejectsBadNumber)
{
    std::uint64_t n = 0;
    const auto r = tryParse({"--count", "12abc"}, [&](OptionParser& p) {
        p.addUint("count", "c", &n);
    });
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.err.find("bad value"), std::string::npos);
}

TEST(Options, RejectsValueOnFlag)
{
    bool flag = false;
    const auto r = tryParse({"--verbose=yes"}, [&](OptionParser& p) {
        p.addFlag("verbose", "v", &flag);
    });
    EXPECT_FALSE(r.ok);
}

TEST(JobCount, ParsesPositiveIntegers)
{
    unsigned n = 0;
    std::string err;
    EXPECT_TRUE(parseJobCount("1", n, err)) << err;
    EXPECT_EQ(n, 1u);
    EXPECT_TRUE(parseJobCount("64", n, err)) << err;
    EXPECT_EQ(n, 64u);
}

TEST(JobCount, RejectsZero)
{
    unsigned n = 0;
    std::string err;
    EXPECT_FALSE(parseJobCount("0", n, err));
    EXPECT_FALSE(err.empty());
}

TEST(JobCount, RejectsNegative)
{
    unsigned n = 0;
    std::string err;
    EXPECT_FALSE(parseJobCount("-4", n, err));
    EXPECT_FALSE(err.empty());
}

TEST(JobCount, RejectsGarbage)
{
    unsigned n = 0;
    std::string err;
    EXPECT_FALSE(parseJobCount("", n, err));
    EXPECT_FALSE(parseJobCount("abc", n, err));
    EXPECT_FALSE(parseJobCount("4x", n, err));
    EXPECT_FALSE(parseJobCount(" 4", n, err));
    EXPECT_FALSE(parseJobCount("999999999999", n, err));
}

TEST(ResolveJobs, ExplicitFlagWinsOverEnvironment)
{
    ASSERT_EQ(setenv("DSCOH_JOBS", "7", 1), 0);
    unsigned n = 0;
    std::string err;
    EXPECT_TRUE(resolveJobs("3", n, err)) << err;
    EXPECT_EQ(n, 3u);
    ASSERT_EQ(unsetenv("DSCOH_JOBS"), 0);
}

TEST(ResolveJobs, FallsBackToEnvironmentThenHardware)
{
    ASSERT_EQ(setenv("DSCOH_JOBS", "5", 1), 0);
    unsigned n = 0;
    std::string err;
    EXPECT_TRUE(resolveJobs("", n, err)) << err;
    EXPECT_EQ(n, 5u);
    ASSERT_EQ(unsetenv("DSCOH_JOBS"), 0);
    EXPECT_TRUE(resolveJobs("", n, err)) << err;
    EXPECT_GE(n, 1u);
}

TEST(ResolveJobs, BadEnvironmentValueIsAnError)
{
    ASSERT_EQ(setenv("DSCOH_JOBS", "0", 1), 0);
    unsigned n = 0;
    std::string err;
    EXPECT_FALSE(resolveJobs("", n, err));
    EXPECT_NE(err.find("DSCOH_JOBS"), std::string::npos);
    ASSERT_EQ(unsetenv("DSCOH_JOBS"), 0);
}

TEST(LogLevelFlag, ParsesEveryLevelExactly)
{
    LogLevel lvl = LogLevel::kInfo;
    std::string err;
    EXPECT_TRUE(parseLogLevel("error", lvl, err)) << err;
    EXPECT_EQ(lvl, LogLevel::kError);
    EXPECT_TRUE(parseLogLevel("warn", lvl, err)) << err;
    EXPECT_EQ(lvl, LogLevel::kWarn);
    EXPECT_TRUE(parseLogLevel("info", lvl, err)) << err;
    EXPECT_EQ(lvl, LogLevel::kInfo);
    EXPECT_TRUE(parseLogLevel("debug", lvl, err)) << err;
    EXPECT_EQ(lvl, LogLevel::kDebug);
}

TEST(LogLevelFlag, RejectsGarbage)
{
    LogLevel lvl = LogLevel::kInfo;
    std::string err;
    EXPECT_FALSE(parseLogLevel("", lvl, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parseLogLevel("INFO", lvl, err)); // names are exact
    EXPECT_FALSE(parseLogLevel("verbose", lvl, err));
    EXPECT_FALSE(parseLogLevel("info ", lvl, err));
    EXPECT_FALSE(parseLogLevel("2", lvl, err));
}

TEST(ResolveLogLevel, ExplicitFlagWinsOverEnvironment)
{
    ASSERT_EQ(setenv("DSCOH_LOG_LEVEL", "debug", 1), 0);
    LogLevel lvl = LogLevel::kInfo;
    std::string err;
    EXPECT_TRUE(resolveLogLevel("warn", lvl, err)) << err;
    EXPECT_EQ(lvl, LogLevel::kWarn);
    ASSERT_EQ(unsetenv("DSCOH_LOG_LEVEL"), 0);
}

TEST(ResolveLogLevel, FallsBackToEnvironmentThenInfo)
{
    ASSERT_EQ(setenv("DSCOH_LOG_LEVEL", "error", 1), 0);
    LogLevel lvl = LogLevel::kInfo;
    std::string err;
    EXPECT_TRUE(resolveLogLevel("", lvl, err)) << err;
    EXPECT_EQ(lvl, LogLevel::kError);
    ASSERT_EQ(unsetenv("DSCOH_LOG_LEVEL"), 0);
    EXPECT_TRUE(resolveLogLevel("", lvl, err)) << err;
    EXPECT_EQ(lvl, LogLevel::kInfo);
}

TEST(ResolveLogLevel, BadEnvironmentValueIsAnError)
{
    ASSERT_EQ(setenv("DSCOH_LOG_LEVEL", "loud", 1), 0);
    LogLevel lvl = LogLevel::kInfo;
    std::string err;
    EXPECT_FALSE(resolveLogLevel("", lvl, err));
    EXPECT_NE(err.find("DSCOH_LOG_LEVEL"), std::string::npos);
    ASSERT_EQ(unsetenv("DSCOH_LOG_LEVEL"), 0);
}

TEST(Options, HelpPrintsEveryOption)
{
    bool flag = false;
    const auto r = tryParse({"--help"}, [&](OptionParser& p) {
        p.addFlag("verbose", "enable verbosity", &flag);
    });
    EXPECT_FALSE(r.ok); // --help short-circuits
    EXPECT_NE(r.err.find("--verbose"), std::string::npos);
    EXPECT_NE(r.err.find("enable verbosity"), std::string::npos);
}

} // namespace
} // namespace dscoh::cli
