#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/sim_context.h"
#include "snap/serializer.h"

namespace dscoh {
namespace {

struct NetFixture : ::testing::Test {
    SimContext ctx;
    EventQueue& queue = ctx.queue;
    NetworkParams params{20, 32};
    Network net{"net", ctx, params};

    std::vector<Message> receivedAt1;
    std::vector<Tick> arrivalTicks;

    void SetUp() override
    {
        net.connect(0, [](const Message&) {});
        net.connect(1, [this](const Message& m) {
            receivedAt1.push_back(m);
            arrivalTicks.push_back(queue.curTick());
        });
    }

    Message mkMsg(MsgType t, NodeId src, NodeId dst, Addr addr = 0x80)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        m.addr = addr;
        return m;
    }
};

TEST_F(NetFixture, DeliversAfterHopPlusSerialization)
{
    net.send(mkMsg(MsgType::kGetS, 0, 1));
    queue.run();
    ASSERT_EQ(receivedAt1.size(), 1u);
    // Control message: 8 bytes -> ceil(8/32) = 1 tick serialization.
    EXPECT_EQ(arrivalTicks[0], params.hopLatency + 1);
}

TEST_F(NetFixture, DataMessagesTakeLongerOnTheWire)
{
    net.send(mkMsg(MsgType::kData, 0, 1));
    queue.run();
    // 8 + 128 = 136 bytes -> ceil(136/32) = 5 ticks.
    EXPECT_EQ(arrivalTicks[0], params.hopLatency + 5);
}

TEST_F(NetFixture, PortSerializesBackToBackMessages)
{
    net.send(mkMsg(MsgType::kData, 0, 1));
    net.send(mkMsg(MsgType::kData, 0, 1));
    queue.run();
    ASSERT_EQ(arrivalTicks.size(), 2u);
    EXPECT_EQ(arrivalTicks[1] - arrivalTicks[0], 5u);
}

TEST_F(NetFixture, SameSrcDstPairNeverReorders)
{
    for (int i = 0; i < 10; ++i) {
        Message m = mkMsg(MsgType::kAck, 0, 1);
        m.txn = static_cast<std::uint64_t>(i);
        net.send(m);
    }
    queue.run();
    ASSERT_EQ(receivedAt1.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(receivedAt1[static_cast<std::size_t>(i)].txn,
                  static_cast<std::uint64_t>(i));
}

TEST_F(NetFixture, PayloadSurvivesTransit)
{
    Message m = mkMsg(MsgType::kData, 0, 1, 0x1240);
    m.data.write(16, 0xfeedface, 4);
    m.mask.set(16, 4);
    m.hasData = true;
    net.send(m);
    queue.run();
    ASSERT_EQ(receivedAt1.size(), 1u);
    EXPECT_EQ(receivedAt1[0].data.read(16, 4), 0xfeedfaceu);
    EXPECT_TRUE(receivedAt1[0].mask.test(16));
    EXPECT_EQ(receivedAt1[0].addr, 0x1240u);
}

TEST_F(NetFixture, DoubleConnectThrows)
{
    EXPECT_THROW(net.connect(1, [](const Message&) {}), std::logic_error);
}

TEST_F(NetFixture, StatsCountMessagesAndBytes)
{
    StatRegistry reg;
    net.regStats(reg);
    net.send(mkMsg(MsgType::kGetS, 0, 1));
    net.send(mkMsg(MsgType::kData, 0, 1));
    queue.run();
    EXPECT_EQ(reg.counter("net.messages"), 2u);
    EXPECT_EQ(reg.counter("net.bytes"), 8u + 136u);
    EXPECT_EQ(reg.counter("net.data_messages"), 1u);
}

TEST(NetworkLatency, HopLatencyIsConfigurable)
{
    SimContext ctx;
    EventQueue& queue = ctx.queue;
    Network fast("fast", ctx, NetworkParams{5, 64});
    Tick arrival = 0;
    fast.connect(0, [](const Message&) {});
    fast.connect(1, [&](const Message&) { arrival = queue.curTick(); });
    Message m;
    m.type = MsgType::kAck;
    m.src = 0;
    m.dst = 1;
    fast.send(m);
    queue.run();
    EXPECT_EQ(arrival, 5u + 1u);
}

TEST_F(NetFixture, MultiSourceContentionKeepsPerPairFifo)
{
    // Three sources hammer node 1's port with interleaved data messages.
    // The port serializes them, but each (src,dst) stream must stay in
    // order and arrivals at the contended port must be strictly spaced.
    net.connect(2, [](const Message&) {});
    net.connect(3, [](const Message&) {});
    const NodeId srcs[] = {0, 2, 3};
    std::uint64_t nextTxn[4] = {0, 0, 0, 0};
    for (int round = 0; round < 6; ++round) {
        for (const NodeId src : srcs) {
            Message m = mkMsg(MsgType::kData, src, 1);
            m.txn = nextTxn[src]++;
            net.send(m);
        }
    }
    queue.run();

    ASSERT_EQ(receivedAt1.size(), 18u);
    std::uint64_t seen[4] = {0, 0, 0, 0};
    for (const Message& m : receivedAt1)
        EXPECT_EQ(m.txn, seen[m.src]++) << "per-(src,dst) FIFO broken";
    for (std::size_t i = 1; i < arrivalTicks.size(); ++i)
        EXPECT_GE(arrivalTicks[i] - arrivalTicks[i - 1], 5u)
            << "port serialization must space back-to-back data messages";
}

TEST_F(NetFixture, PortReservationSurvivesSnapshotMidBurst)
{
    // Burst enough data at node 1 that its port reservation extends well
    // past the queue drain, snapshot, and check a post-restore send waits
    // for the restored reservation instead of arriving at hop + serialize.
    for (int i = 0; i < 10; ++i)
        net.send(mkMsg(MsgType::kData, 0, 1));
    queue.run();
    ASSERT_EQ(receivedAt1.size(), 10u);
    const Tick lastArrival = arrivalTicks.back();

    const std::string path = testing::TempDir() + "net_port.snap";
    {
        snap::SnapWriter w(queue.curTick(), /*configHash=*/0);
        w.beginSection("net");
        net.snapSave(w);
        w.endSection();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << w.finish();
    }

    // A fresh network at tick 0 with the reservations restored: the port
    // is still booked until the old burst's last slot.
    SimContext ctx2;
    Network net2("net", ctx2, params);
    Tick restoredArrival = 0;
    net2.connect(0, [](const Message&) {});
    net2.connect(1, [&](const Message&) {
        restoredArrival = ctx2.queue.curTick();
    });
    {
        snap::SnapReader r(path);
        r.openSection("net");
        net2.snapRestore(r);
        r.closeSection();
    }
    Message m;
    m.type = MsgType::kData;
    m.src = 0;
    m.dst = 1;
    net2.send(m);
    ctx2.queue.run();
    EXPECT_EQ(restoredArrival, lastArrival + 5)
        << "restored reservation must defer the send";
    EXPECT_GT(restoredArrival, params.hopLatency + 5);
    std::remove(path.c_str());
}

TEST(MsgTypeNames, AllNamed)
{
    EXPECT_STREQ(to_string(MsgType::kGetS), "GetS");
    EXPECT_STREQ(to_string(MsgType::kDsPutX), "DsPutX");
    EXPECT_STREQ(to_string(MsgType::kL1StoreAck), "L1StoreAck");
}

TEST(RingTopology, LatencyGrowsWithRingDistance)
{
    SimContext ctx;
    NetworkParams params{20, 32};
    Network net("ring", ctx, params);
    std::vector<Tick> arrival(4, 0);
    for (NodeId n = 0; n < 4; ++n)
        net.connect(n, [&arrival, n, &ctx](const Message&) {
            arrival[n] = ctx.queue.curTick();
        });
    net.setRing({0, 1, 2, 3});

    const auto sendFrom0 = [&net](NodeId dst) {
        Message m;
        m.type = MsgType::kGetS; // 8 bytes -> 1 serialization tick
        m.src = 0;
        m.dst = dst;
        net.send(m);
    };
    sendFrom0(1); // adjacent: same cost as the crossbar
    sendFrom0(2); // opposite side: one extra hop
    sendFrom0(3); // adjacent the short way round (wrap)
    ctx.queue.run();

    EXPECT_EQ(arrival[1], params.hopLatency + 1);
    EXPECT_EQ(arrival[2], 2 * params.hopLatency + 1);
    EXPECT_EQ(arrival[3], params.hopLatency + 1)
        << "ring distance is the shorter way around";
}

TEST(RingTopology, OffRingNodesKeepCrossbarLatency)
{
    SimContext ctx;
    NetworkParams params{20, 32};
    Network net("ring", ctx, params);
    Tick arrival = 0;
    net.connect(0, [](const Message&) {});
    net.connect(5, [&](const Message&) { arrival = ctx.queue.curTick(); });
    net.connect(6, [](const Message&) {});
    net.setRing({0, 6}); // 5 is not part of the ring
    Message m;
    m.type = MsgType::kGetS;
    m.src = 0;
    m.dst = 5;
    net.send(m);
    ctx.queue.run();
    EXPECT_EQ(arrival, params.hopLatency + 1);
}

TEST(RingTopology, ParseDsTopologyRoundTrips)
{
    DsTopology t = DsTopology::kCrossbar;
    EXPECT_TRUE(parseDsTopology("ring", t));
    EXPECT_EQ(t, DsTopology::kRing);
    EXPECT_TRUE(parseDsTopology(to_string(DsTopology::kCrossbar), t));
    EXPECT_EQ(t, DsTopology::kCrossbar);
    EXPECT_FALSE(parseDsTopology("mesh", t));
    EXPECT_EQ(t, DsTopology::kCrossbar) << "failed parse must not write";
}

} // namespace
} // namespace dscoh
