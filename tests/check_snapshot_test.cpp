// Snapshots under the verification subsystem: phased fuzz-corpus runs must
// be restore-deterministic (snapshot after round 1, restore, finish —
// identical report), and the CoherenceChecker's shadow state (owner map,
// mirrored memory, hook counters) must travel with the snapshot so a
// restored run keeps full oracle checking history.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "check/coherence_checker.h"
#include "check/fuzz.h"
#include "core/system.h"
#include "snap/serializer.h"

namespace dscoh {
namespace {

FuzzScenario loadScenario(const std::string& name)
{
    std::ifstream in(std::string(DSCOH_CORPUS_DIR) + "/" + name);
    EXPECT_TRUE(in) << name;
    std::ostringstream text;
    text << in.rdbuf();
    FuzzScenario sc;
    std::string error;
    EXPECT_TRUE(parseScenario(text.str(), sc, error)) << name << ": " << error;
    return sc;
}

void expectSameReport(const FuzzReport& a, const FuzzReport& b,
                      const std::string& what)
{
    EXPECT_EQ(a.completed, b.completed) << what;
    EXPECT_EQ(a.ticks, b.ticks) << what;
    EXPECT_EQ(a.checkFailures, b.checkFailures) << what;
    EXPECT_EQ(a.violations, b.violations) << what;
    EXPECT_EQ(a.outWords, b.outWords) << what;
}

// Multi-round corpus scenarios: round boundaries are the safe points.
const char* const kScenarios[] = {"directory_tiebreak.scn",
                                  "hybrid_threshold.scn",
                                  "multi_slice_contention.scn"};

TEST(FuzzSnapshot, CorpusRestoreMatchesPhasedReference)
{
    for (const char* name : kScenarios) {
        const FuzzScenario sc = loadScenario(name);
        ASSERT_GE(sc.phases, 2u) << name << ": need a mid-run safe point";
        for (const CoherenceMode mode :
             {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}) {
            const std::string what =
                std::string(name) + "/" + to_string(mode);

            FuzzOptions phased;
            phased.phased = true;
            const FuzzReport ref = runScenario(sc, mode, phased);
            EXPECT_FALSE(ref.failed()) << what;

            // Taking the snapshot must not perturb the run.
            const std::string path = testing::TempDir() + "fuzz_" +
                                     std::string(name) + "_" +
                                     to_string(mode) + ".snap";
            FuzzOptions save = phased;
            save.snapshotAfterRound = 1;
            save.snapshotPath = path;
            const FuzzReport saved = runScenario(sc, mode, save);
            expectSameReport(saved, ref, what + " (saving)");

            // Restore round 1's boundary and run the remaining rounds:
            // identical ticks, output words, and a clean oracle.
            FuzzOptions restore = phased;
            restore.restorePath = path;
            const FuzzReport resumed = runScenario(sc, mode, restore);
            expectSameReport(resumed, ref, what + " (restored)");
            std::remove(path.c_str());
        }
    }
}

TEST(OracleSnapshot, ShadowStateSurvivesRoundTrip)
{
    const SystemConfig cfg = SystemConfig::paper(CoherenceMode::kCcsm);
    const std::string path = testing::TempDir() + "oracle_roundtrip.snap";

    // Run a produce phase under the oracle, snapshot at the drained queue.
    System sys(cfg);
    CoherenceChecker& checker = sys.enableChecker();
    const Addr a = sys.allocateArray(4 * kLineSize, true);
    CpuProgram prog;
    for (std::uint32_t i = 0; i < 4; ++i)
        prog.push_back(cpuStore(a + static_cast<Addr>(i) * kLineSize, i, 4));
    prog.push_back(cpuFence());
    sys.runCpuProgram(prog, [] {});
    sys.simulate();
    const std::uint64_t transitions = checker.transitionsChecked();
    const std::uint64_t stores = checker.storesMirrored();
    EXPECT_GT(stores, 0u);
    sys.snapshotSave(path);

    // Restore into a fresh checker-attached system: the counters (and the
    // shadow state behind them) must come back exactly.
    System restored(cfg);
    CoherenceChecker& checker2 = restored.enableChecker();
    const Addr a2 = restored.allocateArray(4 * kLineSize, true);
    ASSERT_EQ(a2, a);
    restored.snapshotRestore(path);
    EXPECT_EQ(checker2.transitionsChecked(), transitions);
    EXPECT_EQ(checker2.storesMirrored(), stores);
    EXPECT_TRUE(checker2.clean());

    // Finish the run on both systems; the oracle must keep checking after
    // restore and both must converge to the same clean final state.
    KernelDesc k;
    k.name = "touch";
    k.blocks = 1;
    k.threadsPerBlock = 32;
    k.body = [a](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        if (tid < 4)
            t.ldCheck(a + static_cast<Addr>(tid) * kLineSize, tid, 4);
    };
    sys.launchKernel(k, [] {});
    sys.simulate();
    checker.finalize(sys.queue().curTick());
    restored.launchKernel(k, [] {});
    restored.simulate();
    checker2.finalize(restored.queue().curTick());

    EXPECT_EQ(restored.queue().curTick(), sys.queue().curTick());
    EXPECT_TRUE(checker.clean());
    EXPECT_TRUE(checker2.clean());
    EXPECT_EQ(checker2.transitionsChecked(), checker.transitionsChecked());
    EXPECT_GT(checker2.transitionsChecked(), transitions);
    std::remove(path.c_str());
}

TEST(OracleSnapshot, CheckerlessSnapshotRejectedByCheckedSystem)
{
    const SystemConfig cfg = SystemConfig::paper(CoherenceMode::kCcsm);
    const std::string path = testing::TempDir() + "oracle_absent.snap";

    System plain(cfg);
    const Addr a = plain.allocateArray(kLineSize, true);
    CpuProgram prog;
    prog.push_back(cpuStore(a, 7, 4));
    prog.push_back(cpuFence());
    plain.runCpuProgram(prog, [] {});
    plain.simulate();
    plain.snapshotSave(path);

    // A checker-attached system cannot adopt a snapshot with no oracle
    // shadow state — that would silently drop checking history.
    System checked(cfg);
    checked.enableChecker();
    checked.allocateArray(kLineSize, true);
    EXPECT_THROW(checked.snapshotRestore(path), snap::SnapError);
    std::remove(path.c_str());
}

} // namespace
} // namespace dscoh
