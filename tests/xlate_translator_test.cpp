// Source-to-source translator tests: the §III-C pipeline on CUDA-like
// sources — kernel-argument capture, size evaluation, allocation rewriting,
// non-overlapping fixed addresses, and the multi-file project flow.
#include <gtest/gtest.h>

#include "translate/lexer.h"
#include "translate/translator.h"

namespace dscoh::xlate {
namespace {

// ---------------------------------------------------------------- lexer --

TEST(Lexer, TokenizesIdentifiersNumbersPunct)
{
    const auto r = lex("int x = 42 + 0x1f;");
    ASSERT_GE(r.tokens.size(), 8u);
    EXPECT_EQ(r.tokens[0].text, "int");
    EXPECT_EQ(r.tokens[1].text, "x");
    EXPECT_EQ(r.tokens[2].text, "=");
    EXPECT_EQ(r.tokens[3].kind, TokKind::kNumber);
    EXPECT_EQ(r.tokens[5].text, "0x1f");
    EXPECT_EQ(r.tokens.back().kind, TokKind::kEof);
}

TEST(Lexer, SkipsCommentsAndStrings)
{
    const auto r = lex("a /* b c */ // d\n e \"f g\" 'h'");
    std::vector<std::string> idents;
    for (const auto& t : r.tokens)
        if (t.kind == TokKind::kIdent)
            idents.push_back(t.text);
    EXPECT_EQ(idents, (std::vector<std::string>{"a", "e"}));
}

TEST(Lexer, RecordsObjectLikeDefines)
{
    const auto r = lex("#define N 1024\n#define SZ (N * 4)\n#define F(x) x\n");
    ASSERT_EQ(r.defines.size(), 2u);
    EXPECT_EQ(r.defines[0].first, "N");
    EXPECT_EQ(r.defines[0].second, "1024");
    EXPECT_EQ(r.defines[1].first, "SZ");
    EXPECT_EQ(r.defines[1].second, "(N * 4)");
}

TEST(Lexer, OffsetsPointIntoSource)
{
    const std::string src = "foo bar";
    const auto r = lex(src);
    EXPECT_EQ(src.substr(r.tokens[1].offset, r.tokens[1].length), "bar");
}

// ------------------------------------------------------- size evaluation --

struct EvalCase {
    const char* expr;
    std::uint64_t expected;
};

class SizeEval : public ::testing::TestWithParam<EvalCase> {};

TEST_P(SizeEval, Evaluates)
{
    SourceTranslator tr;
    std::uint64_t out = 0;
    const std::map<std::string, std::string> defines{{"N", "100"},
                                                     {"DIM", "N * 2"}};
    ASSERT_TRUE(tr.evaluateSize(GetParam().expr, defines, &out))
        << GetParam().expr;
    EXPECT_EQ(out, GetParam().expected) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, SizeEval,
    ::testing::Values(EvalCase{"4096", 4096}, EvalCase{"4 * 1024", 4096},
                      EvalCase{"sizeof(float) * 100", 400},
                      EvalCase{"100 * sizeof(double)", 800},
                      EvalCase{"sizeof(int)", 4},
                      EvalCase{"sizeof(unsigned long long)", 8},
                      EvalCase{"sizeof(char)", 1},
                      EvalCase{"sizeof(float *)", 8},
                      EvalCase{"N * sizeof(float)", 400},
                      EvalCase{"DIM * DIM", 40000},
                      EvalCase{"(N + 1) * 8", 808},
                      EvalCase{"1 << 20", 1u << 20},
                      EvalCase{"1024UL", 1024},
                      EvalCase{"0x100", 256},
                      EvalCase{"100 / 4", 25}, EvalCase{"10 % 3", 1}));

TEST(SizeEvalNegative, RejectsUnknowns)
{
    SourceTranslator tr;
    std::uint64_t out = 0;
    const std::map<std::string, std::string> none;
    EXPECT_FALSE(tr.evaluateSize("n * sizeof(float)", none, &out));
    EXPECT_FALSE(tr.evaluateSize("sizeof(MyStruct)", none, &out));
    EXPECT_FALSE(tr.evaluateSize("3.5 * 2", none, &out));
    EXPECT_FALSE(tr.evaluateSize("4 / 0", none, &out));
    EXPECT_FALSE(tr.evaluateSize("", none, &out));
}

TEST(SizeEvalExtra, UserTypesViaOptions)
{
    TranslateOptions opts;
    opts.extraSizeof["Particle"] = 48;
    SourceTranslator tr(opts);
    std::uint64_t out = 0;
    const std::map<std::string, std::string> none;
    ASSERT_TRUE(tr.evaluateSize("10 * sizeof(Particle)", none, &out));
    EXPECT_EQ(out, 480u);
}

// ----------------------------------------------------------- translation --

const char* kVectorAdd = R"cuda(
#define N 50000
__global__ void vadd(float* a, float* b, float* c, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) c[i] = a[i] + b[i];
}
int main() {
    float *a, *b, *c;
    a = (float*)malloc(N * sizeof(float));
    b = (float*)malloc(N * sizeof(float));
    c = (float*)malloc(N * sizeof(float));
    vadd<<<196, 256>>>(a, b, c, N);
    return 0;
}
)cuda";

TEST(Translator, CapturesKernelArguments)
{
    SourceTranslator tr;
    const auto r = tr.translateSource(kVectorAdd);
    ASSERT_EQ(r.launches.size(), 1u);
    EXPECT_EQ(r.launches[0].kernel, "vadd");
    EXPECT_EQ(r.launches[0].arguments,
              (std::vector<std::string>{"a", "b", "c", "N"}));
    EXPECT_EQ(r.kernelVariables, (std::vector<std::string>{"a", "b", "c", "N"}));
}

TEST(Translator, RewritesMallocsOfKernelVariables)
{
    SourceTranslator tr;
    const auto r = tr.translateSource(kVectorAdd);
    ASSERT_EQ(r.allocations.size(), 3u);
    const std::string& out = r.outputs.at("input.cu");
    EXPECT_EQ(out.find("malloc("), std::string::npos)
        << "all kernel-array mallocs must be rewritten";
    EXPECT_NE(out.find("ds_mmap(0x400000000000ull, N * sizeof(float))"),
              std::string::npos);
    EXPECT_NE(out.find("#include \"ds_runtime.h\""), std::string::npos);
}

TEST(Translator, AssignedAddressesDoNotOverlap)
{
    SourceTranslator tr;
    const auto r = tr.translateSource(kVectorAdd);
    ASSERT_EQ(r.allocations.size(), 3u);
    for (std::size_t i = 0; i + 1 < r.allocations.size(); ++i) {
        const auto& cur = r.allocations[i];
        const auto& next = r.allocations[i + 1];
        EXPECT_TRUE(cur.sizeKnown);
        EXPECT_EQ(cur.bytes, 50000u * 4);
        EXPECT_GE(next.address, cur.address + cur.bytes)
            << "regions must not overlap";
    }
}

TEST(Translator, OutputIsAcceptedByTheSimulatedAllocator)
{
    // The contract: every rewritten allocation can be mmapped MAP_FIXED in
    // the simulator without overlap.
    SourceTranslator tr;
    const auto r = tr.translateSource(kVectorAdd);
    AddressSpace space(1ull << 30);
    for (const auto& alloc : r.allocations)
        EXPECT_NO_THROW(space.dsMmapFixed(alloc.address, alloc.bytes));
}

TEST(Translator, CudaMallocRewrittenInsideCheckMacro)
{
    const char* src = R"cuda(
__global__ void k(double* d);
void run() {
    double* d;
    CUDA_CHECK(cudaMalloc((void**)&d, 1024 * sizeof(double)));
    k<<<1, 32>>>(d);
}
)cuda";
    SourceTranslator tr;
    const auto r = tr.translateSource(src);
    ASSERT_EQ(r.allocations.size(), 1u);
    EXPECT_EQ(r.allocations[0].variable, "d");
    EXPECT_TRUE(r.allocations[0].sizeKnown);
    EXPECT_EQ(r.allocations[0].bytes, 8192u);
    const std::string& out = r.outputs.at("input.cu");
    EXPECT_NE(out.find("(d = (decltype(d))ds_mmap(0x400000000000ull, "
                       "1024 * sizeof(double)), cudaSuccess)"),
              std::string::npos);
}

TEST(Translator, CallocUsesProductOfArguments)
{
    const char* src = R"cuda(
__global__ void k(int* v);
int main() {
    int* v;
    v = (int*)calloc(256, sizeof(int));
    k<<<1, 1>>>(v);
}
)cuda";
    SourceTranslator tr;
    const auto r = tr.translateSource(src);
    ASSERT_EQ(r.allocations.size(), 1u);
    EXPECT_TRUE(r.allocations[0].sizeKnown);
    EXPECT_EQ(r.allocations[0].bytes, 1024u);
}

TEST(Translator, NonKernelAllocationsLeftAlone)
{
    const char* src = R"cuda(
__global__ void k(float* used);
int main() {
    float* used; float* unused;
    used = (float*)malloc(64);
    unused = (float*)malloc(64);
    k<<<1, 1>>>(used);
}
)cuda";
    SourceTranslator tr;
    const auto r = tr.translateSource(src);
    ASSERT_EQ(r.allocations.size(), 1u);
    EXPECT_EQ(r.allocations[0].variable, "used");
    const std::string& out = r.outputs.at("input.cu");
    EXPECT_NE(out.find("unused = (float*)malloc(64)"), std::string::npos);
}

TEST(Translator, UnevaluableSizeFallsBackWithDiagnostic)
{
    const char* src = R"cuda(
__global__ void k(float* a);
void run(int n) {
    float* a;
    a = (float*)malloc(n * sizeof(float));
    k<<<1, 1>>>(a);
}
)cuda";
    SourceTranslator tr;
    const auto r = tr.translateSource(src);
    ASSERT_EQ(r.allocations.size(), 1u);
    EXPECT_FALSE(r.allocations[0].sizeKnown);
    EXPECT_EQ(r.allocations[0].bytes, TranslateOptions{}.fallbackBytes);
    ASSERT_FALSE(r.diagnostics.empty());
    EXPECT_NE(r.diagnostics[0].find("not statically evaluable"),
              std::string::npos);
}

TEST(Translator, MultiFileProjectSharesKernelCapture)
{
    // Allocation in one file, kernel launch in another: the project pass
    // must still rewrite it.
    const std::map<std::string, std::string> files{
        {"alloc.cu", R"(float* g;
void setup() { g = (float*)malloc(4096); })"},
        {"launch.cu", R"(__global__ void k(float* g);
void go() { k<<<2, 64>>>(g); })"},
    };
    SourceTranslator tr;
    const auto r = tr.translateProject(files);
    ASSERT_EQ(r.allocations.size(), 1u);
    EXPECT_EQ(r.allocations[0].file, "alloc.cu");
    EXPECT_TRUE(r.changed("alloc.cu", files));
    EXPECT_FALSE(r.changed("launch.cu", files));
}

TEST(Translator, ReportsKernelArgsWithoutAllocation)
{
    const char* src = R"cuda(
__global__ void k(int n);
void go() { k<<<1, 1>>>(count); }
)cuda";
    SourceTranslator tr;
    const auto r = tr.translateSource(src);
    ASSERT_FALSE(r.diagnostics.empty());
    EXPECT_NE(r.diagnostics[0].find("no heap allocation found"),
              std::string::npos);
}

TEST(Translator, FourArgLaunchConfigParsed)
{
    const char* src = R"cuda(
__global__ void k(float* a);
void go(cudaStream_t s) {
    float* a;
    a = (float*)malloc(128);
    k<<<dim3(2,2), dim3(8,8), 1024, s>>>(a);
}
)cuda";
    SourceTranslator tr;
    const auto r = tr.translateSource(src);
    ASSERT_EQ(r.launches.size(), 1u);
    EXPECT_EQ(r.launches[0].arguments, std::vector<std::string>{"a"});
    EXPECT_EQ(r.allocations.size(), 1u);
}

TEST(Translator, CastlessMallocGetsDecltypeCast)
{
    const char* src = R"cuda(
__global__ void k(void* p);
void go() {
    void* p;
    p = malloc(256);
    k<<<1, 1>>>(p);
}
)cuda";
    SourceTranslator tr;
    const auto r = tr.translateSource(src);
    ASSERT_EQ(r.allocations.size(), 1u);
    EXPECT_NE(r.outputs.at("input.cu").find("p = (decltype(p))ds_mmap("),
              std::string::npos);
}

TEST(Translator, IdempotentOnAlreadyTranslatedSource)
{
    SourceTranslator tr;
    const auto first = tr.translateSource(kVectorAdd);
    const auto second = tr.translateSource(first.outputs.at("input.cu"));
    EXPECT_TRUE(second.allocations.empty())
        << "ds_mmap output must not be re-rewritten";
}

TEST(Translator, CustomBaseAddressRespected)
{
    TranslateOptions opts;
    opts.dsBase = kDsRegionBase + 0x10000000;
    SourceTranslator tr(opts);
    const auto r = tr.translateSource(kVectorAdd);
    ASSERT_FALSE(r.allocations.empty());
    EXPECT_EQ(r.allocations[0].address, kDsRegionBase + 0x10000000);
}

} // namespace
} // namespace dscoh::xlate

namespace dscoh::xlate {
namespace {

TEST(TranslatorNew, RewritesNewArrayExpressions)
{
    const char* src = R"cuda(
__global__ void k(float* a, double* b);
void go() {
    float* a; double* b;
    a = new float[1024];
    b = new double[256 + 4];
    k<<<4, 64>>>(a, b);
}
)cuda";
    SourceTranslator tr;
    const auto r = tr.translateSource(src);
    ASSERT_EQ(r.allocations.size(), 2u);
    EXPECT_TRUE(r.allocations[0].sizeKnown);
    EXPECT_EQ(r.allocations[0].bytes, 4096u);
    EXPECT_EQ(r.allocations[1].bytes, 260u * 8);
    const std::string& out = r.outputs.at("input.cu");
    EXPECT_NE(out.find("a = (float*)ds_mmap(0x400000000000ull, (1024) * "
                       "sizeof(float))"),
              std::string::npos);
    EXPECT_EQ(out.find("new float"), std::string::npos);
}

TEST(TranslatorNew, LeavesScalarNewAndNonKernelNewAlone)
{
    const char* src = R"cuda(
__global__ void k(int* used);
void go() {
    int* used; int* unused; int* scalar;
    used = new int[8];
    unused = new int[8];
    scalar = new int;
    k<<<1, 32>>>(used);
}
)cuda";
    SourceTranslator tr;
    const auto r = tr.translateSource(src);
    ASSERT_EQ(r.allocations.size(), 1u);
    EXPECT_EQ(r.allocations[0].variable, "used");
    const std::string& out = r.outputs.at("input.cu");
    EXPECT_NE(out.find("unused = new int[8]"), std::string::npos);
    EXPECT_NE(out.find("scalar = new int;"), std::string::npos);
}

TEST(TranslatorNew, UnevaluableCountFallsBack)
{
    const char* src = R"cuda(
__global__ void k(float* a);
void go(int n) {
    float* a;
    a = new float[n];
    k<<<1, 32>>>(a);
}
)cuda";
    SourceTranslator tr;
    const auto r = tr.translateSource(src);
    ASSERT_EQ(r.allocations.size(), 1u);
    EXPECT_FALSE(r.allocations[0].sizeKnown);
    EXPECT_EQ(r.allocations[0].bytes, TranslateOptions{}.fallbackBytes);
}

} // namespace
} // namespace dscoh::xlate
