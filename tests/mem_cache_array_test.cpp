#include <gtest/gtest.h>

#include "mem/cache_array.h"

namespace dscoh {
namespace {

struct Meta {
    int tag = 0;
    bool pinned = false;
};

CacheGeometry smallGeom()
{
    CacheGeometry g;
    g.sizeBytes = 4 * 1024; // 32 lines
    g.ways = 4;             // 8 sets
    return g;
}

TEST(CacheArray, GeometryMath)
{
    CacheArray<Meta> array(smallGeom());
    EXPECT_EQ(array.sets(), 8u);
    EXPECT_EQ(array.ways(), 4u);
}

TEST(CacheArray, RejectsNonPowerOfTwoSets)
{
    CacheGeometry g;
    g.sizeBytes = 3 * kLineSize;
    g.ways = 1;
    EXPECT_THROW(CacheArray<Meta> a(g), std::invalid_argument);
}

TEST(CacheArray, InstallThenFind)
{
    CacheArray<Meta> array(smallGeom());
    EXPECT_EQ(array.find(0x1000), nullptr);
    auto* way = array.findFreeWay(0x1000);
    ASSERT_NE(way, nullptr);
    auto& line = array.install(*way, 0x1000 + 5); // unaligned install address
    EXPECT_EQ(line.base, 0x1000u);
    auto* found = array.find(0x1000 + 100); // same line
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &line);
}

TEST(CacheArray, SetShiftSkipsInterleaveBits)
{
    CacheGeometry g = smallGeom();
    g.setShift = 2;
    CacheArray<Meta> a(g);
    // With setShift=2, lines 0..3 (differing only in the low two line bits,
    // the slice-interleave bits) all map to set 0; line 4 maps to set 1.
    EXPECT_EQ(a.setIndex(0x0), 0u);
    EXPECT_EQ(a.setIndex(1ull * kLineSize), 0u);
    EXPECT_EQ(a.setIndex(3ull * kLineSize), 0u);
    EXPECT_EQ(a.setIndex(4ull * kLineSize), 1u);
    EXPECT_EQ(a.setIndex(8ull * kLineSize), 2u);
}

TEST(CacheArray, SetFillsAllWaysThenNoFreeWay)
{
    CacheArray<Meta> array(smallGeom());
    const Addr stride = static_cast<Addr>(array.sets()) * kLineSize;
    for (std::uint32_t w = 0; w < array.ways(); ++w) {
        auto* way = array.findFreeWay(w * stride);
        ASSERT_NE(way, nullptr);
        array.install(*way, w * stride);
    }
    EXPECT_EQ(array.findFreeWay(array.ways() * stride), nullptr);
    EXPECT_EQ(array.validLines(), array.ways());
}

TEST(CacheArray, LruVictimIsLeastRecentlyTouched)
{
    CacheArray<Meta> array(smallGeom());
    const Addr stride = static_cast<Addr>(array.sets()) * kLineSize;
    for (std::uint32_t w = 0; w < array.ways(); ++w) {
        auto* way = array.findFreeWay(w * stride);
        array.install(*way, w * stride);
    }
    // Touch all but line 2*stride, so that one is the LRU victim.
    array.touch(0 * stride);
    array.touch(1 * stride);
    array.touch(3 * stride);
    auto* victim = array.selectVictim(
        9 * stride, [](const CacheArray<Meta>::Line&) { return true; });
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->base, 2 * stride);
}

TEST(CacheArray, VictimRespectsPinPredicate)
{
    CacheArray<Meta> array(smallGeom());
    const Addr stride = static_cast<Addr>(array.sets()) * kLineSize;
    for (std::uint32_t w = 0; w < array.ways(); ++w) {
        auto* way = array.findFreeWay(w * stride);
        auto& line = array.install(*way, w * stride);
        line.meta.pinned = w != 3;
    }
    auto* victim =
        array.selectVictim(9 * stride, [](const CacheArray<Meta>::Line& l) {
            return !l.meta.pinned;
        });
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->base, 3 * stride);

    auto* none = array.selectVictim(
        9 * stride, [](const CacheArray<Meta>::Line&) { return false; });
    EXPECT_EQ(none, nullptr);
}

TEST(CacheArray, InvalidateFreesWay)
{
    CacheArray<Meta> array(smallGeom());
    auto* way = array.findFreeWay(0);
    auto& line = array.install(*way, 0);
    line.meta.tag = 99;
    array.invalidate(line);
    EXPECT_EQ(array.find(0), nullptr);
    auto* again = array.findFreeWay(0);
    ASSERT_NE(again, nullptr);
    auto& fresh = array.install(*again, 0);
    EXPECT_EQ(fresh.meta.tag, 0) << "metadata must reset on reinstall";
}

TEST(CacheArray, ForEachValidVisitsExactlyValidLines)
{
    CacheArray<Meta> array(smallGeom());
    for (int i = 0; i < 5; ++i) {
        auto* way = array.findFreeWay(static_cast<Addr>(i) * kLineSize);
        array.install(*way, static_cast<Addr>(i) * kLineSize);
    }
    int visited = 0;
    array.forEachValid([&](CacheArray<Meta>::Line&) { ++visited; });
    EXPECT_EQ(visited, 5);
}

} // namespace
} // namespace dscoh
