// The dscoh-svc-v1 request schema and protocol handler, exercised without
// sockets: handleRequestLine() is a pure function of (service, line), so
// the whole wire surface pins down to string-in/string-out assertions.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/json_lite.h"
#include "svc/protocol.h"
#include "svc/request.h"
#include "svc/service.h"

namespace dscoh::svc {
namespace {

jsonlite::ValuePtr parseOrDie(const std::string& text)
{
    std::string error;
    jsonlite::ValuePtr v = jsonlite::parse(text, error);
    EXPECT_NE(v, nullptr) << error << " in: " << text;
    return v;
}

bool okOf(const jsonlite::ValuePtr& v)
{
    const jsonlite::Value* ok = v->get("ok");
    return ok != nullptr && ok->kind == jsonlite::Kind::kBool && ok->boolean;
}

class ScratchDir {
public:
    explicit ScratchDir(const std::string& name)
        : path_(testing::TempDir() + name)
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~ScratchDir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

TEST(SweepRequestJson, RoundTripsEveryField)
{
    SweepRequest r;
    r.id = "r000042";
    r.tenant = "alice";
    r.priority = -3;
    r.weight = 4;
    r.size = InputSize::kBig;
    r.codes = {"VA", "NN"};
    r.modes = {CoherenceMode::kDirectStore, CoherenceMode::kCcsm};
    r.configText = "numGpus = 2\n# comment\n";

    SweepRequest back;
    std::string error;
    ASSERT_TRUE(parseRequestJson(renderRequestJson(r), &back, &error))
        << error;
    EXPECT_EQ(back.id, r.id);
    EXPECT_EQ(back.tenant, r.tenant);
    EXPECT_EQ(back.priority, r.priority);
    EXPECT_EQ(back.weight, r.weight);
    EXPECT_EQ(back.size, r.size);
    EXPECT_EQ(back.codes, r.codes);
    EXPECT_EQ(back.modes, r.modes);
    EXPECT_EQ(back.configText, r.configText);
    // Render of the reparse is byte-identical (the WAL depends on this).
    EXPECT_EQ(renderRequestJson(back), renderRequestJson(r));
}

TEST(SweepRequestJson, DefaultsAndAliasesApply)
{
    SweepRequest r;
    std::string error;
    ASSERT_TRUE(parseRequestJson("{}", &r, &error)) << error;
    EXPECT_EQ(r.tenant, "default");
    EXPECT_EQ(r.weight, 1u);
    EXPECT_EQ(r.size, InputSize::kSmall);
    EXPECT_TRUE(r.codes.empty());

    ASSERT_TRUE(parseRequestJson("{\"modes\": [\"ccsm\", \"ds\"]}", &r,
                                 &error))
        << error;
    ASSERT_EQ(r.modes.size(), 2u);
    EXPECT_EQ(r.modes[0], CoherenceMode::kCcsm);
    EXPECT_EQ(r.modes[1], CoherenceMode::kDirectStore);
}

TEST(SweepRequestJson, RejectsMalformedFields)
{
    SweepRequest r;
    std::string error;
    EXPECT_FALSE(parseRequestJson("not json", &r, &error));
    EXPECT_FALSE(parseRequestJson("{\"size\": \"medium\"}", &r, &error));
    EXPECT_FALSE(parseRequestJson("{\"weight\": 0}", &r, &error));
    EXPECT_FALSE(parseRequestJson("{\"modes\": [\"warp\"]}", &r, &error));
    EXPECT_FALSE(parseRequestJson("{\"tenant\": \"\"}", &r, &error));
}

TEST(SweepRequestJson, ExpandJobsMatchesMakeSweepJobs)
{
    SweepRequest r;
    r.codes = {"VA", "NN"};
    r.size = InputSize::kSmall;
    std::vector<ExperimentJob> jobs;
    std::string error;
    ASSERT_TRUE(expandJobs(r, &jobs, &error)) << error;
    const std::vector<ExperimentJob> expect = makeSweepJobs(
        {"VA", "NN"}, {InputSize::kSmall},
        {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}, SystemConfig{});
    ASSERT_EQ(jobs.size(), expect.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].code, expect[i].code);
        EXPECT_EQ(jobs[i].mode, expect[i].mode);
    }

    r.codes = {"NOPE"};
    EXPECT_FALSE(expandJobs(r, &jobs, &error));
    EXPECT_NE(error.find("NOPE"), std::string::npos);

    r.codes = {"VA"};
    r.configText = "notAKey = 7\n";
    EXPECT_FALSE(expandJobs(r, &jobs, &error));
}

TEST(Protocol, PingReportsSchemaAndWorkers)
{
    ScratchDir dir("svc_proto_ping");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    SweepService svc(opts);
    const jsonlite::ValuePtr v =
        parseOrDie(handleRequestLine(svc, "{\"op\": \"ping\"}", nullptr));
    EXPECT_TRUE(okOf(v));
    EXPECT_EQ(v->get("schema")->string, kProtocolSchema);
    EXPECT_EQ(v->get("workers")->asUint(), 1u);
}

TEST(Protocol, MalformedLinesFailWithoutThrowing)
{
    ScratchDir dir("svc_proto_bad");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    SweepService svc(opts);
    EXPECT_FALSE(okOf(parseOrDie(handleRequestLine(svc, "garbage", nullptr))));
    EXPECT_FALSE(okOf(parseOrDie(handleRequestLine(svc, "{}", nullptr))));
    EXPECT_FALSE(okOf(parseOrDie(
        handleRequestLine(svc, "{\"op\": \"frobnicate\"}", nullptr))));
    EXPECT_FALSE(okOf(parseOrDie(
        handleRequestLine(svc, "{\"op\": \"status\"}", nullptr))));
    EXPECT_FALSE(okOf(parseOrDie(handleRequestLine(
        svc, "{\"op\": \"status\", \"id\": \"r999999\"}", nullptr))));
}

TEST(Protocol, SubmitStatusListLifecycle)
{
    ScratchDir dir("svc_proto_lifecycle");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 2;
    SweepService svc(opts);

    SweepRequest req;
    req.tenant = "alice";
    req.codes = {"VA"};
    const jsonlite::ValuePtr submitted = parseOrDie(handleRequestLine(
        svc,
        "{\"op\": \"submit\", \"request\": \"" +
            jsonEscape(renderRequestJson(req)) + "\"}",
        nullptr));
    ASSERT_TRUE(okOf(submitted));
    const std::string id = submitted->get("id")->string;
    EXPECT_EQ(id, "r000001");
    EXPECT_EQ(submitted->get("dir")->string, svc.requestDir(id));

    const jsonlite::ValuePtr status = parseOrDie(handleRequestLine(
        svc, "{\"op\": \"status\", \"id\": \"" + id + "\"}", nullptr));
    ASSERT_TRUE(okOf(status));
    const jsonlite::Value* st = status->get("status");
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->get("id")->string, id);
    EXPECT_EQ(st->get("tenant")->string, "alice");
    EXPECT_EQ(st->get("jobsTotal")->asUint(), 2u);

    const jsonlite::ValuePtr list = parseOrDie(
        handleRequestLine(svc, "{\"op\": \"list\"}", nullptr));
    ASSERT_TRUE(okOf(list));
    EXPECT_EQ(list->get("list")->get("requests")->array.size(), 1u);

    // Drain instead of sleeping: returns once the request is terminal.
    EXPECT_TRUE(okOf(
        parseOrDie(handleRequestLine(svc, "{\"op\": \"drain\"}", nullptr))));
    const jsonlite::ValuePtr after = parseOrDie(handleRequestLine(
        svc, "{\"op\": \"status\", \"id\": \"" + id + "\"}", nullptr));
    EXPECT_EQ(after->get("status")->get("state")->string, "done");
    EXPECT_TRUE(std::ifstream(svc.requestDir(id) + "/results.json").good());

    // Terminal requests cannot be cancelled.
    EXPECT_FALSE(okOf(parseOrDie(handleRequestLine(
        svc, "{\"op\": \"cancel\", \"id\": \"" + id + "\"}", nullptr))));

    const jsonlite::ValuePtr stats = parseOrDie(
        handleRequestLine(svc, "{\"op\": \"stats\"}", nullptr));
    ASSERT_TRUE(okOf(stats));
    EXPECT_EQ(stats->get("stats")->get("schema")->string,
              "dscoh-svc-stats-v1");
    EXPECT_EQ(stats->get("stats")->get("requests")->get("done")->asUint(),
              1u);

    bool shutdown = false;
    EXPECT_TRUE(okOf(parseOrDie(
        handleRequestLine(svc, "{\"op\": \"shutdown\"}", &shutdown))));
    EXPECT_TRUE(shutdown);
}

TEST(Protocol, SpoolScanAdmitsAndRejectsFiles)
{
    ScratchDir dir("svc_proto_spool");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 2;
    SweepService svc(opts);

    SweepRequest good;
    good.tenant = "spooler";
    good.codes = {"VA"};
    {
        std::ofstream out(dir.path() + "/spool/aa-good.json");
        out << renderRequestJson(good) << "\n";
    }
    {
        std::ofstream out(dir.path() + "/spool/bb-bad.json");
        out << "{\"codes\": [\"NOPE\"]}\n";
    }
    EXPECT_EQ(svc.scanSpool(), 1u);
    // The good file is consumed; the bad one is renamed with a reason.
    EXPECT_FALSE(std::ifstream(dir.path() + "/spool/aa-good.json").good());
    EXPECT_TRUE(
        std::ifstream(dir.path() + "/spool/bb-bad.json.rejected").good());
    EXPECT_TRUE(
        std::ifstream(dir.path() + "/spool/bb-bad.json.error").good());
    svc.drain();
    std::string status, error;
    ASSERT_TRUE(svc.statusJson("r000001", &status, &error)) << error;
    EXPECT_NE(status.find("spooler"), std::string::npos);
}

TEST(Protocol, OversizedLineIsRejectedWithAnError)
{
    ScratchDir dir("svc_proto_oversize");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    SweepService svc(opts);

    bool shutdown = false;
    const std::string reply = handleRequestLine(
        svc, std::string(kMaxProtocolLineBytes + 1, 'a'), &shutdown);
    const jsonlite::ValuePtr v = parseOrDie(reply);
    EXPECT_FALSE(okOf(v));
    EXPECT_NE(v->get("error")->string.find("exceeds"), std::string::npos);
    EXPECT_FALSE(shutdown);
}

TEST(Protocol, ControlBytesAreRejectedWithAnError)
{
    ScratchDir dir("svc_proto_ctrl");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    SweepService svc(opts);

    bool shutdown = false;
    const std::string reply =
        handleRequestLine(svc, std::string("{\"op\": \"p\x01ing\"}"),
                          &shutdown);
    const jsonlite::ValuePtr v = parseOrDie(reply);
    EXPECT_FALSE(okOf(v));
    EXPECT_NE(v->get("error")->string.find("control byte"),
              std::string::npos);
}

TEST(Protocol, ShedSubmitReplyCarriesRetryAfter)
{
    ScratchDir dir("svc_proto_shed");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    opts.maxQueuedJobs = 1; // a two-job request is over the queue budget
    SweepService svc(opts);

    SweepRequest r;
    r.codes = {"VA", "BL"};
    r.modes = {CoherenceMode::kCcsm};
    bool shutdown = false;
    const std::string reply = handleRequestLine(
        svc,
        "{\"op\": \"submit\", \"request\": \"" +
            jsonEscape(renderRequestJson(r)) + "\"}",
        &shutdown);
    const jsonlite::ValuePtr v = parseOrDie(reply);
    EXPECT_FALSE(okOf(v));
    // Machine-readable overload marker: shed flag plus a backoff hint, so
    // shell clients can retry without parsing the error text.
    ASSERT_NE(v->get("shed"), nullptr);
    EXPECT_TRUE(v->get("shed")->boolean);
    ASSERT_NE(v->get("retryAfterMs"), nullptr);
    EXPECT_GE(v->get("retryAfterMs")->asUint(), 250u);
}

TEST(LineFramer, FramesLinesAndStripsCrlf)
{
    LineFramer f;
    std::string line;
    for (const char c : std::string("{\"op\":\t\"ping\"}\r"))
        EXPECT_EQ(f.push(c, &line), LineFramer::Result::kNeedMore);
    EXPECT_EQ(f.push('\n', &line), LineFramer::Result::kLine);
    EXPECT_EQ(line, "{\"op\":\t\"ping\"}"); // tab kept, CR stripped
    EXPECT_EQ(f.pending(), 0u);
}

TEST(LineFramer, RejectsControlBytesAndResets)
{
    LineFramer f;
    std::string line;
    EXPECT_EQ(f.push('a', &line), LineFramer::Result::kNeedMore);
    EXPECT_EQ(f.push('\0', &line), LineFramer::Result::kBadByte);
    EXPECT_EQ(f.pending(), 0u); // poisoned buffer discarded
    EXPECT_EQ(f.push('\x02', &line), LineFramer::Result::kBadByte);
    // The framer is reusable after a violation.
    EXPECT_EQ(f.push('b', &line), LineFramer::Result::kNeedMore);
    EXPECT_EQ(f.push('\n', &line), LineFramer::Result::kLine);
    EXPECT_EQ(line, "b");
}

TEST(LineFramer, EnforcesTheLengthCap)
{
    LineFramer f(8);
    std::string line;
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(f.push('x', &line), LineFramer::Result::kNeedMore);
    EXPECT_EQ(f.push('x', &line), LineFramer::Result::kTooLong);
    EXPECT_EQ(f.pending(), 0u);
}

} // namespace
} // namespace dscoh::svc
