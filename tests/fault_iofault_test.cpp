// Storage-fault injection: the IoFaultInjector's decision engine (spec
// parsing, determinism, op windows, fault caps, path filters) and the
// hardened durable-write primitives under injected faults — transient
// failures retried without duplication, ENOSPC failing fast, crash faults
// observable in-process through the test crash handler, and the config
// hash gating so a disabled injector leaves hashes untouched.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/config_io.h"
#include "fault/io_fault.h"
#include "snap/serializer.h"

namespace dscoh::fault {
namespace {

namespace fs = std::filesystem;

/// Uninstalls the process-level injector and crash handler on scope exit —
/// both are global, and a leak would poison every later test in the binary.
struct FaultScope {
    ~FaultScope()
    {
        clearIoFaults();
        setIoFaultCrashHandler(nullptr);
    }
};

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string tempPath(const std::string& name)
{
    const std::string p = testing::TempDir() + name;
    std::error_code ec;
    fs::remove(p, ec);
    fs::remove(p + ".tmp", ec);
    return p;
}

TEST(IoFaultSpec, ParsesEveryKeyAndRoundTrips)
{
    IoFaultConfig cfg;
    std::string error;
    ASSERT_TRUE(parseIoFaultSpec(
        "short-write-ppm=1,torn-write-ppm=2,enospc-ppm=3,eio-ppm=4,"
        "fsync-fail-ppm=5,crash-before-rename-ppm=6,"
        "crash-after-rename-ppm=7,torn-offset-pct=25,op-start=10,"
        "op-end=20,max-faults=30,seed=40,path=svc.journal",
        &cfg, &error))
        << error;
    EXPECT_EQ(cfg.shortWritePpm, 1u);
    EXPECT_EQ(cfg.tornWritePpm, 2u);
    EXPECT_EQ(cfg.enospcPpm, 3u);
    EXPECT_EQ(cfg.eioPpm, 4u);
    EXPECT_EQ(cfg.fsyncFailPpm, 5u);
    EXPECT_EQ(cfg.crashBeforeRenamePpm, 6u);
    EXPECT_EQ(cfg.crashAfterRenamePpm, 7u);
    EXPECT_EQ(cfg.tornOffsetPct, 25u);
    EXPECT_EQ(cfg.opStart, 10u);
    EXPECT_EQ(cfg.opEnd, 20u);
    EXPECT_EQ(cfg.maxFaults, 30u);
    EXPECT_EQ(cfg.seed, 40u);
    EXPECT_EQ(cfg.pathFilter, "svc.journal");
    EXPECT_TRUE(cfg.enabled());

    // render -> parse is the identity on every non-default field.
    IoFaultConfig back;
    ASSERT_TRUE(parseIoFaultSpec(renderIoFaultSpec(cfg), &back, &error))
        << error;
    EXPECT_EQ(renderIoFaultSpec(back), renderIoFaultSpec(cfg));
}

TEST(IoFaultSpec, RejectsMalformedItems)
{
    IoFaultConfig cfg;
    std::string error;
    EXPECT_FALSE(parseIoFaultSpec("torn-write-ppm", &cfg, &error));
    EXPECT_NE(error.find("key=value"), std::string::npos);
    EXPECT_FALSE(parseIoFaultSpec("eio-ppm=lots", &cfg, &error));
    EXPECT_NE(error.find("unsigned number"), std::string::npos);
    EXPECT_FALSE(parseIoFaultSpec("bogus-knob=1", &cfg, &error));
    EXPECT_NE(error.find("unknown key"), std::string::npos);
}

TEST(IoFaultInjector, SameSeedReplaysTheSameSchedule)
{
    IoFaultConfig cfg;
    cfg.eioPpm = 300'000;
    cfg.fsyncFailPpm = 200'000;
    cfg.seed = 7;
    IoFaultInjector a(cfg), b(cfg);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.onWrite("x", 100).kind == IoFaultInjector::WriteDecision::Kind::kEio,
                  b.onWrite("x", 100).kind == IoFaultInjector::WriteDecision::Kind::kEio)
            << "diverged at op " << i;
        EXPECT_EQ(a.onFsync("x"), b.onFsync("x")) << "diverged at op " << i;
    }
    EXPECT_EQ(a.stats().injected(), b.stats().injected());
    EXPECT_GT(a.stats().injected(), 0u);
}

TEST(IoFaultInjector, WindowCapAndPathFilterGateInjection)
{
    IoFaultConfig cfg;
    cfg.eioPpm = 1'000'000; // every eligible write faults
    cfg.opStart = 2;
    cfg.opEnd = 6;
    cfg.maxFaults = 3;
    cfg.pathFilter = "journal";
    IoFaultInjector inj(cfg);

    using Kind = IoFaultInjector::WriteDecision::Kind;
    // Filtered paths never count as ops, let alone fault.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(inj.onWrite("results.json", 10).kind, Kind::kNone);
    EXPECT_EQ(inj.stats().ops, 0u);

    // Ops 0,1 are before the window; 2,3,4 fault; the cap (3) stops op 5
    // even though it is inside the window.
    std::vector<Kind> kinds;
    for (int i = 0; i < 8; ++i)
        kinds.push_back(inj.onWrite("svc.journal", 10).kind);
    EXPECT_EQ(kinds, (std::vector<Kind>{
                         Kind::kNone, Kind::kNone, Kind::kEio, Kind::kEio,
                         Kind::kEio, Kind::kNone, Kind::kNone, Kind::kNone}));
    EXPECT_EQ(inj.stats().eio, 3u);
}

TEST(DurableWrites, AtomicWriteRetriesTransientEio)
{
    FaultScope scope;
    IoFaultConfig cfg;
    cfg.eioPpm = 1'000'000;
    cfg.maxFaults = 2; // two injected failures, then the third try lands
    installIoFaults(cfg);

    const std::string path = tempPath("iofault_eio_retry");
    snap::atomicWriteFile(path, "survived\n");
    EXPECT_EQ(slurp(path), "survived\n");
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(DurableWrites, AtomicWriteFailsFastOnEnospc)
{
    FaultScope scope;
    IoFaultConfig cfg;
    cfg.enospcPpm = 1'000'000;
    installIoFaults(cfg);

    const std::string path = tempPath("iofault_enospc");
    try {
        snap::atomicWriteFile(path, "doomed\n");
        FAIL() << "expected SnapError";
    } catch (const snap::SnapError& e) {
        EXPECT_NE(std::string(e.what()).find("ENOSPC"), std::string::npos);
    }
    // Nothing published, nothing leaked.
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(DurableWrites, AtomicWriteRetriesFsyncFailure)
{
    FaultScope scope;
    IoFaultConfig cfg;
    cfg.fsyncFailPpm = 1'000'000;
    cfg.maxFaults = 2;
    installIoFaults(cfg);

    const std::string path = tempPath("iofault_fsync_retry");
    snap::atomicWriteFile(path, "synced\n");
    EXPECT_EQ(slurp(path), "synced\n");
}

TEST(DurableWrites, AppendRetriesShortWriteWithoutDuplication)
{
    FaultScope scope;
    const std::string path = tempPath("iofault_append_short");
    snap::durableAppendLine(path, "first line\n"); // no faults yet

    IoFaultConfig cfg;
    cfg.shortWritePpm = 1'000'000;
    cfg.tornOffsetPct = 50; // half the record lands before the failure
    cfg.maxFaults = 1;
    installIoFaults(cfg);
    snap::durableAppendLine(path, "second line\n");

    // The failed attempt's prefix was rolled back (ftruncate to the
    // pre-append size) before the retry — exactly one copy of each line.
    EXPECT_EQ(slurp(path), "first line\nsecond line\n");
}

TEST(DurableWrites, CrashBeforeRenameNeverPublishes)
{
    FaultScope scope;
    const std::string path = tempPath("iofault_crash_before");
    snap::atomicWriteFile(path, "old\n");

    std::string crashedAt;
    setIoFaultCrashHandler(
        [&crashedAt](const std::string& where) { crashedAt = where; });
    IoFaultConfig cfg;
    cfg.crashBeforeRenamePpm = 1'000'000;
    cfg.maxFaults = 1;
    installIoFaults(cfg);

    // The handler returns, so the in-process contract applies: the
    // publication is reported failed, the old file survives untouched.
    EXPECT_THROW(snap::atomicWriteFile(path, "new\n"), snap::SnapError);
    EXPECT_NE(crashedAt.find("before rename"), std::string::npos);
    EXPECT_EQ(slurp(path), "old\n");
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(DurableWrites, CrashAfterRenameHasPublished)
{
    FaultScope scope;
    const std::string path = tempPath("iofault_crash_after");
    snap::atomicWriteFile(path, "old\n");

    setIoFaultCrashHandler([](const std::string&) {});
    IoFaultConfig cfg;
    cfg.crashAfterRenamePpm = 1'000'000;
    cfg.maxFaults = 1;
    installIoFaults(cfg);

    // Crash-after-rename is on the published side of the commit point:
    // with the handler returning, the write completes and the new bytes
    // are what a post-crash reader would find.
    snap::atomicWriteFile(path, "new\n");
    EXPECT_EQ(slurp(path), "new\n");
}

TEST(DurableWrites, TornCrashLeavesAPrefixWhenTheHandlerThrows)
{
    FaultScope scope;
    struct InjectedCrash {};
    setIoFaultCrashHandler(
        [](const std::string&) -> void { throw InjectedCrash{}; });
    IoFaultConfig cfg;
    cfg.tornWritePpm = 1'000'000;
    cfg.tornOffsetPct = 50;
    cfg.maxFaults = 1;
    installIoFaults(cfg);

    const std::string path = tempPath("iofault_torn_append");
    const std::string line = "0123456789abcdef\n";
    EXPECT_THROW(snap::durableAppendLine(path, line), InjectedCrash);
    // The crash interrupted the append mid-record: what is on disk is a
    // strict prefix — the torn tail CRC framing exists to catch.
    const std::string contents = slurp(path);
    EXPECT_LT(contents.size(), line.size());
    EXPECT_EQ(contents, line.substr(0, contents.size()));
}

TEST(ConfigHash, DisabledIoFaultsLeaveTheHashAlone)
{
    const SystemConfig base;
    SystemConfig tweaked;
    tweaked.ioFaults.seed = 99;           // changed, but still disabled
    tweaked.ioFaults.tornOffsetPct = 10;  // ditto
    EXPECT_EQ(configHashOf(base), configHashOf(tweaked));

    SystemConfig armed;
    armed.ioFaults.eioPpm = 1;
    EXPECT_NE(configHashOf(base), configHashOf(armed));

    SystemConfig armedOther = armed;
    armedOther.ioFaults.seed = 99;
    EXPECT_NE(configHashOf(armed), configHashOf(armedOther));
}

} // namespace
} // namespace dscoh::fault
