// End-to-end producer/consumer runs: the CPU produces an array, the GPU
// consumes it, under both coherence schemes. These tests pin down the
// paper's headline mechanism: data correctness in both modes, the GPU L2
// miss-rate reduction, the compulsory-miss elimination, and the
// DS-never-hurts property on the execution time.
#include <gtest/gtest.h>

#include "core/system.h"

namespace dscoh {
namespace {

SystemConfig testConfig(CoherenceMode mode)
{
    SystemConfig cfg = SystemConfig::paper(mode);
    cfg.numSms = 4; // keep tests quick; benches use the full 16
    return cfg;
}

struct ProducerConsumerResult {
    RunMetrics metrics;
    std::vector<std::string> violations;
};

/// CPU stores kWords 8-byte values into a shared array, then a GPU kernel
/// loads and checks every one of them.
ProducerConsumerResult runProducerConsumer(CoherenceMode mode,
                                           std::uint32_t words,
                                           std::uint32_t blocks,
                                           std::uint32_t threadsPerBlock)
{
    System sys(testConfig(mode));
    const Addr array = sys.allocateArray(words * 8ull, /*gpuShared=*/true);

    CpuProgram produce;
    for (std::uint32_t i = 0; i < words; ++i)
        produce.push_back(cpuStore(array + i * 8ull, 0xd00d0000ull + i, 8));
    produce.push_back(cpuFence());

    KernelDesc kernel;
    kernel.name = "consume";
    kernel.blocks = blocks;
    kernel.threadsPerBlock = threadsPerBlock;
    const std::uint32_t totalThreads = blocks * threadsPerBlock;
    kernel.body = [array, words, totalThreads, threadsPerBlock](
                      ThreadBuilder& t, std::uint32_t block,
                      std::uint32_t thread) {
        // Grid-stride loop over the array, each thread checks its words.
        for (std::uint32_t i = block * threadsPerBlock + thread; i < words;
             i += totalThreads) {
            t.ldCheck(array + i * 8ull, 0xd00d0000ull + i, 8);
            t.compute(4);
        }
    };

    sys.runCpuProgram(produce, [&sys, &kernel] {
        sys.launchKernel(kernel, [] {});
    });
    sys.simulate();

    ProducerConsumerResult result;
    result.metrics = sys.metrics();
    result.violations = sys.checkCoherenceInvariants();
    return result;
}

TEST(DirectStoreEndToEnd, GpuSeesCpuDataUnderCcsm)
{
    const auto r = runProducerConsumer(CoherenceMode::kCcsm, 2048, 8, 128);
    EXPECT_EQ(r.metrics.checkFailures, 0u);
    EXPECT_TRUE(r.violations.empty()) << r.violations.front();
    EXPECT_GT(r.metrics.gpuL2Accesses, 0u);
}

TEST(DirectStoreEndToEnd, GpuSeesCpuDataUnderDirectStore)
{
    const auto r = runProducerConsumer(CoherenceMode::kDirectStore, 2048, 8, 128);
    EXPECT_EQ(r.metrics.checkFailures, 0u);
    EXPECT_TRUE(r.violations.empty()) << r.violations.front();
    EXPECT_GT(r.metrics.dsFills, 0u);
}

TEST(DirectStoreEndToEnd, DirectStoreReducesGpuL2Misses)
{
    const auto ccsm = runProducerConsumer(CoherenceMode::kCcsm, 4096, 8, 128);
    const auto ds = runProducerConsumer(CoherenceMode::kDirectStore, 4096, 8, 128);
    EXPECT_LT(ds.metrics.gpuL2Misses, ccsm.metrics.gpuL2Misses)
        << "pushed data must pre-fill the GPU L2";
    EXPECT_LT(ds.metrics.gpuL2MissRate, ccsm.metrics.gpuL2MissRate);
}

TEST(DirectStoreEndToEnd, DirectStoreEliminatesCompulsoryMisses)
{
    const auto ccsm = runProducerConsumer(CoherenceMode::kCcsm, 4096, 8, 128);
    const auto ds = runProducerConsumer(CoherenceMode::kDirectStore, 4096, 8, 128);
    EXPECT_GT(ccsm.metrics.gpuL2Compulsory, 0u);
    EXPECT_LT(ds.metrics.gpuL2Compulsory, ccsm.metrics.gpuL2Compulsory / 4)
        << "first GPU touches should hit pre-pushed lines";
}

TEST(DirectStoreEndToEnd, DirectStoreIsFasterOnProducerConsumer)
{
    const auto ccsm = runProducerConsumer(CoherenceMode::kCcsm, 4096, 8, 128);
    const auto ds = runProducerConsumer(CoherenceMode::kDirectStore, 4096, 8, 128);
    EXPECT_LT(ds.metrics.ticks, ccsm.metrics.ticks)
        << "the paper's mechanism must win on its motivating pattern";
}

TEST(DirectStoreEndToEnd, GpuStoresVisibleToCpuAfterKernel)
{
    // Reverse direction: GPU writes, CPU reads back (result arrays).
    for (const CoherenceMode mode :
         {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}) {
        System sys(testConfig(mode));
        constexpr std::uint32_t kWords = 512;
        const Addr out = sys.allocateArray(kWords * 8ull, true);

        KernelDesc kernel;
        kernel.name = "produce_gpu";
        kernel.blocks = 4;
        kernel.threadsPerBlock = 128;
        kernel.body = [out](ThreadBuilder& t, std::uint32_t block,
                            std::uint32_t thread) {
            const std::uint32_t i = block * 128 + thread;
            if (i < kWords)
                t.st(out + i * 8ull, 0xcafe0000ull + i, 8);
        };

        CpuProgram readBack;
        for (std::uint32_t i = 0; i < kWords; ++i)
            readBack.push_back(cpuLoadCheck(out + i * 8ull, 0xcafe0000ull + i, 8));

        bool kernelDone = false;
        sys.launchKernel(kernel, [&] {
            kernelDone = true;
            sys.runCpuProgram(readBack, [] {});
        });
        sys.simulate();
        EXPECT_TRUE(kernelDone);
        EXPECT_EQ(sys.metrics().checkFailures, 0u)
            << "mode " << to_string(mode);
        const auto violations = sys.checkCoherenceInvariants();
        EXPECT_TRUE(violations.empty())
            << to_string(mode) << ": " << violations.front();
    }
}

TEST(DirectStoreEndToEnd, RepeatedRunsAreDeterministic)
{
    const auto a = runProducerConsumer(CoherenceMode::kDirectStore, 1024, 4, 64);
    const auto b = runProducerConsumer(CoherenceMode::kDirectStore, 1024, 4, 64);
    EXPECT_EQ(a.metrics.ticks, b.metrics.ticks);
    EXPECT_EQ(a.metrics.gpuL2Misses, b.metrics.gpuL2Misses);
    EXPECT_EQ(a.metrics.coherenceMessages, b.metrics.coherenceMessages);
}

TEST(DirectStoreEndToEnd, DsReducesCoherenceTraffic)
{
    const auto ccsm = runProducerConsumer(CoherenceMode::kCcsm, 4096, 8, 128);
    const auto ds = runProducerConsumer(CoherenceMode::kDirectStore, 4096, 8, 128);
    EXPECT_LT(ds.metrics.coherenceMessages, ccsm.metrics.coherenceMessages)
        << "direct pushes bypass most of the coherence message exchange";
}

} // namespace
} // namespace dscoh
