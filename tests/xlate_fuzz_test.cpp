// Robustness: the lexer and translator must never crash, hang, or produce
// out-of-bounds token offsets on arbitrary byte soup — they run on
// user-supplied sources.
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "translate/lexer.h"
#include "translate/translator.h"

namespace dscoh::xlate {
namespace {

std::string randomBytes(Rng& rng, std::size_t n)
{
    // Mix of printable C-ish characters and arbitrary bytes, weighted
    // toward the characters that drive the scanner's state machine.
    static const std::string kSpicy = "<<<>>>()[]{};,=*&#\"'/\\\n\t $";
    std::string s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto roll = rng.below(10);
        if (roll < 4)
            s.push_back(static_cast<char>('a' + rng.below(26)));
        else if (roll < 6)
            s.push_back(static_cast<char>('0' + rng.below(10)));
        else if (roll < 9)
            s.push_back(kSpicy[rng.below(kSpicy.size())]);
        else
            s.push_back(static_cast<char>(rng.below(256)));
    }
    return s;
}

TEST(LexerFuzz, NeverCrashesAndOffsetsStayInBounds)
{
    Rng rng(0xfeed);
    for (int round = 0; round < 200; ++round) {
        const std::string src = randomBytes(rng, 64 + rng.below(512));
        const LexResult r = lex(src);
        ASSERT_FALSE(r.tokens.empty());
        EXPECT_EQ(r.tokens.back().kind, TokKind::kEof);
        for (const Token& t : r.tokens) {
            EXPECT_LE(t.offset, src.size());
            EXPECT_LE(t.offset + t.length, src.size());
        }
    }
}

TEST(TranslatorFuzz, NeverCrashesOnByteSoup)
{
    Rng rng(0xbeef);
    SourceTranslator translator;
    for (int round = 0; round < 100; ++round) {
        const std::string src = randomBytes(rng, 64 + rng.below(768));
        const TranslateResult r = translator.translateSource(src);
        // Output must exist and addresses (if any) must be ordered and in
        // the DS region.
        ASSERT_EQ(r.outputs.size(), 1u);
        Addr prevEnd = 0;
        for (const auto& alloc : r.allocations) {
            EXPECT_TRUE(inDsRegion(alloc.address));
            EXPECT_GE(alloc.address, prevEnd);
            prevEnd = alloc.address + alloc.bytes;
        }
    }
}

TEST(TranslatorFuzz, MutatedRealSourceSurvives)
{
    // Take a real program and randomly mutate single bytes: the translator
    // must stay well-defined through every mutation.
    const std::string base = R"cuda(
#define N 2048
__global__ void k(float* a, float* b);
int main() {
    float *a, *b;
    a = (float*)malloc(N * sizeof(float));
    cudaMalloc((void**)&b, N * sizeof(float));
    k<<<N / 128, 128>>>(a, b);
}
)cuda";
    Rng rng(0xabcd);
    SourceTranslator translator;
    for (int round = 0; round < 150; ++round) {
        std::string mutated = base;
        const std::size_t flips = 1 + rng.below(4);
        for (std::size_t f = 0; f < flips; ++f)
            mutated[rng.below(mutated.size())] =
                static_cast<char>(rng.below(128));
        const TranslateResult r = translator.translateSource(mutated);
        static_cast<void>(r);
    }
    SUCCEED();
}

} // namespace
} // namespace dscoh::xlate
