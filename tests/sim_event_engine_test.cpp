// Event-engine internals: InlineCallback storage/relocation, ObjectPool
// recycling, and the EventQueue features the hot-path refactor leans on —
// far-heap scheduling beyond the wheel window, tie-break shuffle, the
// queue's own counters, and checkpointing the (seq, tie-RNG) identity so a
// restored run orders same-tick events exactly like an uninterrupted one.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/inline_callback.h"
#include "sim/object_pool.h"
#include "sim/stats.h"
#include "snap/serializer.h"

namespace dscoh {
namespace {

// --- InlineCallback -------------------------------------------------------

TEST(InlineCallback, SmallCaptureStaysInline)
{
    int hits = 0;
    int* p = &hits;
    InlineCallback cb([p] { ++*p; });
    EXPECT_FALSE(cb.onHeap());
    cb();
    EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, OversizedCaptureSpillsToHeapAndStillRuns)
{
    struct Big {
        std::uint64_t pad[12]; // 96 bytes > kInlineSize
    };
    static_assert(sizeof(Big) > InlineCallback::kInlineSize);
    Big big{};
    big.pad[11] = 42;
    std::uint64_t seen = 0;
    InlineCallback cb([big, &seen] { seen = big.pad[11]; });
    EXPECT_TRUE(cb.onHeap());
    cb();
    EXPECT_EQ(seen, 42u);
}

TEST(InlineCallback, FitsInlineMatchesCaptureSize)
{
    int* p = nullptr;
    auto small = [p] { (void)p; };
    struct Big {
        unsigned char pad[InlineCallback::kInlineSize + 1];
    };
    Big b{};
    auto big = [b] { (void)b; };
    static_assert(InlineCallback::fitsInline<decltype(small)>());
    static_assert(!InlineCallback::fitsInline<decltype(big)>());
    SUCCEED();
}

TEST(InlineCallback, MoveTransfersOwnership)
{
    int hits = 0;
    int* p = &hits;
    InlineCallback a([p] { ++*p; });
    InlineCallback b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT: probing moved-from state
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    InlineCallback c;
    c = std::move(b);
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, NonTrivialCaptureDestroyedExactlyOnce)
{
    // shared_ptr capture exercises the non-trivial relocate/destroy path:
    // the refcount must survive moves and drop exactly once at the end.
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    {
        InlineCallback a([token] { (void)*token; });
        token.reset();
        InlineCallback b(std::move(a));
        b();
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

// --- ObjectPool -----------------------------------------------------------

TEST(ObjectPool, RecyclesReleasedSlots)
{
    ObjectPool<int> pool;
    int* a = pool.acquire();
    pool.release(a);
    int* b = pool.acquire();
    EXPECT_EQ(a, b);
    pool.release(b);
}

TEST(ObjectPool, GrowsInChunksWithStablePointers)
{
    ObjectPool<std::uint64_t> pool;
    std::vector<std::uint64_t*> slots;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t* s = pool.acquire();
        *s = static_cast<std::uint64_t>(i);
        slots.push_back(s);
    }
    // All slots distinct and contents intact across growth.
    std::set<std::uint64_t*> uniq(slots.begin(), slots.end());
    EXPECT_EQ(uniq.size(), slots.size());
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(*slots[static_cast<std::size_t>(i)],
                  static_cast<std::uint64_t>(i));
    EXPECT_GE(pool.capacity(), 1000u);
    for (std::uint64_t* s : slots)
        pool.release(s);
}

// --- EventQueue: far horizon ----------------------------------------------

TEST(EventQueue, FarFutureEventsBeyondWheelWindow)
{
    EventQueue q;
    std::vector<int> order;
    // Mix near (wheel) and far (heap) horizons, scheduled out of order.
    q.schedule(5000, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(700, [&] { order.push_back(2); });
    q.schedule(90000, [&] { order.push_back(4); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(q.curTick(), 90000u);
}

TEST(EventQueue, SameTickMixOfWheelAndFarOrdersByPriority)
{
    EventQueue q;
    std::vector<int> order;
    // Both land on tick 1000: one is scheduled far (>= 256 ticks out), the
    // other hops into the wheel via an intermediate event. Priority must
    // still decide the order, regardless of which container held them.
    q.schedule(1000, [&] { order.push_back(1); }, EventPriority::kCore);
    q.schedule(900, [&] {
        q.schedule(1000, [&] { order.push_back(0); },
                   EventPriority::kMessageDelivery);
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, ManyFarEventsOnOneTick)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 9; i >= 0; --i) {
        q.schedule(4096, [&order, i] { order.push_back(i); },
                   EventPriority::kDefault);
    }
    q.run();
    // Same tick, same priority: insertion order wins even through the heap.
    EXPECT_EQ(order, (std::vector<int>{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}));
}

// --- EventQueue: tie-break shuffle ----------------------------------------

std::vector<int> shuffledOrder(std::uint64_t seed)
{
    EventQueue q;
    q.setTieBreakShuffle(seed);
    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        q.schedule(10, [&order, i] { order.push_back(i); });
    q.run();
    return order;
}

TEST(EventQueue, TieBreakShuffleIsDeterministicPerSeed)
{
    EXPECT_EQ(shuffledOrder(1234), shuffledOrder(1234));
    EXPECT_EQ(shuffledOrder(99), shuffledOrder(99));
}

TEST(EventQueue, TieBreakShufflePermutesButKeepsEverything)
{
    const std::vector<int> base = shuffledOrder(0); // seed 0 = insertion
    std::vector<int> expect;
    for (int i = 0; i < 64; ++i)
        expect.push_back(i);
    EXPECT_EQ(base, expect);

    const std::vector<int> shuffled = shuffledOrder(7777);
    EXPECT_NE(shuffled, base);
    std::multiset<int> a(base.begin(), base.end());
    std::multiset<int> b(shuffled.begin(), shuffled.end());
    EXPECT_EQ(a, b);
}

TEST(EventQueue, TieBreakShuffleRespectsPriority)
{
    EventQueue q;
    q.setTieBreakShuffle(42);
    std::vector<int> order;
    q.schedule(3, [&] { order.push_back(2); }, EventPriority::kCore);
    q.schedule(3, [&] { order.push_back(1); }, EventPriority::kController);
    q.schedule(3, [&] { order.push_back(0); },
               EventPriority::kMessageDelivery);
    q.run();
    // Shuffle only perturbs ties *within* a priority class.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// --- EventQueue: counters -------------------------------------------------

TEST(EventQueue, CountsScheduleCallsAndPeakPending)
{
    EventQueue q;
    for (int i = 0; i < 8; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    EXPECT_EQ(q.scheduleCalls(), 8u);
    EXPECT_EQ(q.peakPending(), 8u);
    q.run();
    EXPECT_EQ(q.executedEvents(), 8u);
    EXPECT_EQ(q.peakPending(), 8u); // peak survives the drain
}

TEST(EventQueue, CountsHeapSpilledCallbacks)
{
    EventQueue q;
    struct Big {
        std::uint64_t pad[12];
    };
    Big big{};
    q.schedule(1, [] {});
    q.schedule(2, [big] { (void)big; });
    EXPECT_EQ(q.heapSpilledCallbacks(), 1u);
    q.run();
}

TEST(EventQueue, RegStatsExposesQueueCounters)
{
    EventQueue q;
    StatRegistry reg;
    q.regStats(reg);
    q.schedule(5, [] {});
    q.run();
    ASSERT_TRUE(reg.hasCounter("queue.schedule_calls"));
    EXPECT_EQ(reg.counter("queue.schedule_calls"), 1u);
    EXPECT_EQ(reg.counter("queue.executed_events"), 1u);
    EXPECT_EQ(reg.counter("queue.peak_pending"), 1u);
    EXPECT_EQ(reg.counter("queue.heap_spilled_callbacks"), 0u);
}

// --- EventQueue: exception safety -----------------------------------------

TEST(EventQueue, ThrowingCallbackLeavesRemainderRunnable)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(0); },
               EventPriority::kMessageDelivery);
    q.schedule(5, [] { throw std::runtime_error("boom"); },
               EventPriority::kController);
    q.schedule(5, [&] { order.push_back(2); }, EventPriority::kCore);
    q.schedule(9, [&] { order.push_back(3); });
    EXPECT_THROW(q.run(), std::runtime_error);
    EXPECT_EQ(order, (std::vector<int>{0}));
    // The unexecuted same-tick remainder and the later event both survive.
    EXPECT_EQ(q.pending(), 2u);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3}));
}

// --- EventQueue: snapshot round-trip --------------------------------------

std::string tempSnapPath(const std::string& tag)
{
    return testing::TempDir() + "event_engine_" + tag + ".snap";
}

void saveQueue(const EventQueue& q, const std::string& path)
{
    snap::SnapWriter w(q.curTick(), /*configHash=*/0);
    w.beginSection("queue");
    q.snapSave(w);
    w.endSection();
    w.writeFile(path);
}

void restoreQueue(EventQueue& q, const std::string& path)
{
    snap::SnapReader r(path);
    r.openSection("queue");
    q.snapRestore(r);
    r.closeSection();
}

TEST(EventQueue, SnapSaveRejectsPendingEvents)
{
    EventQueue q;
    q.schedule(10, [] {});
    snap::SnapWriter w(q.curTick(), 0);
    w.beginSection("queue");
    EXPECT_THROW(q.snapSave(w), snap::SnapError);
}

// Drives a queue through burst A, checkpoints at the drained safe point,
// then runs burst B either on the original queue or on a fresh restored
// one. The restored queue must order burst B's same-tick ties exactly like
// the uninterrupted run — that is the (seq, tie-RNG) identity the snapshot
// format freezes.
std::vector<int> burstBOrder(std::uint64_t shuffleSeed, bool viaSnapshot)
{
    EventQueue q;
    q.setTieBreakShuffle(shuffleSeed);
    for (int i = 0; i < 20; ++i)
        q.schedule(static_cast<Tick>(100 + i % 3), [] {});
    q.run();

    EventQueue* target = &q;
    EventQueue restored;
    const std::string path = tempSnapPath(
        "burst_" + std::to_string(shuffleSeed) +
        (viaSnapshot ? "_snap" : "_ref"));
    saveQueue(q, path);
    if (viaSnapshot) {
        restoreQueue(restored, path);
        target = &restored;
    }

    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        target->schedule(500, [&order, i] { order.push_back(i); });
    target->run();
    return order;
}

TEST(EventQueue, SnapshotRoundTripPreservesTieBreakIdentity)
{
    EXPECT_EQ(burstBOrder(0, false), burstBOrder(0, true));
    EXPECT_EQ(burstBOrder(31337, false), burstBOrder(31337, true));
    // Sanity: the shuffled continuation really differs from insertion order.
    EXPECT_NE(burstBOrder(31337, true), burstBOrder(0, true));
}

TEST(EventQueue, SnapshotRoundTripPreservesClockAndCounts)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(static_cast<Tick>(10 * i), [] {});
    q.run();
    const std::string path = tempSnapPath("clock");
    saveQueue(q, path);

    EventQueue fresh;
    restoreQueue(fresh, path);
    EXPECT_EQ(fresh.curTick(), q.curTick());
    EXPECT_EQ(fresh.executedEvents(), q.executedEvents());
}

} // namespace
} // namespace dscoh
