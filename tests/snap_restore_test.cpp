// Snapshot/restore keystone property: restoring a phase-boundary
// checkpoint and running to completion is byte-identical to the
// uninterrupted run — metrics, phase breakdown, the full stats-counter
// snapshot, the stats JSON dump, and the final memory image. One
// benchmark per suite (Rodinia, Parboil, Pannotia, NVIDIA SDK,
// standalone), both coherence modes, plus the failure paths: config-hash
// mismatch, missing snapshot, optional-restore fallback.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "snap/serializer.h"
#include "workloads/runner.h"

namespace dscoh {
namespace {

std::string statsJson(System& sys)
{
    std::ostringstream os;
    sys.stats().dumpJson(os);
    return os.str();
}

std::string tempSnap(const std::string& tag)
{
    return testing::TempDir() + "restore_" + tag + ".snap";
}

void expectSameRun(const WorkloadRunResult& restored,
                   const WorkloadRunResult& reference,
                   const std::string& what)
{
    EXPECT_EQ(restored.metrics.ticks, reference.metrics.ticks) << what;
    EXPECT_EQ(restored.metrics.gpuL2Accesses, reference.metrics.gpuL2Accesses)
        << what;
    EXPECT_EQ(restored.metrics.gpuL2Misses, reference.metrics.gpuL2Misses)
        << what;
    EXPECT_EQ(restored.metrics.dramReads, reference.metrics.dramReads)
        << what;
    EXPECT_EQ(restored.metrics.dramWrites, reference.metrics.dramWrites)
        << what;
    EXPECT_EQ(restored.produceDoneAt, reference.produceDoneAt) << what;
    EXPECT_EQ(restored.kernelDoneAt, reference.kernelDoneAt) << what;
    EXPECT_EQ(restored.footprintBytes, reference.footprintBytes) << what;
    EXPECT_EQ(restored.violations, reference.violations) << what;
    // The full counter registry, not just the headline metrics.
    EXPECT_EQ(restored.statCounters, reference.statCounters) << what;
}

// One representative per benchmark suite (Table II groups).
const char* const kFamilyCodes[] = {"BP", "ST", "GC", "VA", "MM"};

TEST(SnapRestore, RoundTripMatchesUninterruptedRunPerFamily)
{
    for (const char* code : kFamilyCodes) {
        for (const CoherenceMode mode :
             {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}) {
            const std::string what =
                std::string(code) + "_" + to_string(mode);
            const Workload& w = WorkloadRegistry::instance().get(code);

            WorkloadRun ref(w, InputSize::kSmall, mode);
            const WorkloadRunResult refResult = ref.run();
            EXPECT_EQ(refResult.restoredAt, 0u) << what;
            EXPECT_FALSE(refResult.fromCheckpoint) << what;

            // Checkpoint at the produce/kernel boundary; checkpointing must
            // not perturb the run it is taken from.
            const std::string path = tempSnap(what);
            WorkloadRunOptions saveOpts;
            saveOpts.checkpointOut = path;
            saveOpts.checkpointAtPhase = 0;
            WorkloadRun save(w, InputSize::kSmall, mode, SystemConfig{},
                             saveOpts);
            const WorkloadRunResult saveResult = save.run();
            expectSameRun(saveResult, refResult, what + " (checkpointing)");

            // Restore and finish: byte-identical to the uninterrupted run.
            WorkloadRunOptions restoreOpts;
            restoreOpts.restoreFrom = path;
            WorkloadRun restored(w, InputSize::kSmall, mode, SystemConfig{},
                                 restoreOpts);
            const WorkloadRunResult restoredResult = restored.run();
            EXPECT_TRUE(restoredResult.fromCheckpoint) << what;
            EXPECT_GT(restoredResult.restoredAt, 0u) << what;
            EXPECT_EQ(restoredResult.simulatedTicks,
                      restoredResult.metrics.ticks - restoredResult.restoredAt)
                << what;
            expectSameRun(restoredResult, refResult, what + " (restored)");
            EXPECT_EQ(statsJson(restored.system()), statsJson(ref.system()))
                << what;
            EXPECT_TRUE(restored.system().backingStore().sameImage(
                ref.system().backingStore()))
                << what;
            std::remove(path.c_str());
        }
    }
}

TEST(SnapRestore, MultiGpuRoundTripMatchesUninterruptedRun)
{
    // The sharded system has per-shard in-flight directory state, remote
    // slice groups and (with tsLeaseTicks) timestamp lease epochs; all of
    // it must survive a mid-flight checkpoint byte for bit. CCSM runs the
    // crossbar, direct store additionally the ring + timestamp fast path.
    for (const CoherenceMode mode :
         {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}) {
        SystemConfig cfg;
        cfg.numGpus = 4;
        cfg.cpuCores = 2;
        cfg.shardPolicy = ShardPolicy::kPage;
        if (mode == CoherenceMode::kDirectStore) {
            cfg.dsTopology = DsTopology::kRing;
            cfg.tsLeaseTicks = 50'000;
        }
        const std::string what = std::string("VA_4gpu_") + to_string(mode);
        const Workload& w = WorkloadRegistry::instance().get("VA");

        WorkloadRun ref(w, InputSize::kSmall, mode, cfg);
        const WorkloadRunResult refResult = ref.run();
        EXPECT_FALSE(refResult.fromCheckpoint) << what;

        const std::string path = tempSnap(what);
        WorkloadRunOptions saveOpts;
        saveOpts.checkpointOut = path;
        saveOpts.checkpointAtPhase = 0;
        WorkloadRun save(w, InputSize::kSmall, mode, cfg, saveOpts);
        expectSameRun(save.run(), refResult, what + " (checkpointing)");

        WorkloadRunOptions restoreOpts;
        restoreOpts.restoreFrom = path;
        WorkloadRun restored(w, InputSize::kSmall, mode, cfg, restoreOpts);
        const WorkloadRunResult restoredResult = restored.run();
        EXPECT_TRUE(restoredResult.fromCheckpoint) << what;
        expectSameRun(restoredResult, refResult, what + " (restored)");
        EXPECT_EQ(statsJson(restored.system()), statsJson(ref.system()))
            << what;
        EXPECT_TRUE(restored.system().backingStore().sameImage(
            ref.system().backingStore()))
            << what;
        std::remove(path.c_str());
    }
}

TEST(SnapRestore, TickTriggerCheckpointsFirstSafePointAfterTick)
{
    const Workload& w = WorkloadRegistry::instance().get("VA");
    const WorkloadRunResult ref =
        runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm);

    const std::string path = tempSnap("tick_trigger");
    WorkloadRunOptions saveOpts;
    saveOpts.checkpointOut = path;
    saveOpts.checkpointAtTick = 1; // first phase boundary qualifies
    WorkloadRun save(w, InputSize::kSmall, CoherenceMode::kCcsm,
                     SystemConfig{}, saveOpts);
    save.run();

    const snap::SnapshotHeader h = snap::readSnapshotHeader(path);
    EXPECT_GT(h.tick, 0u);
    EXPECT_LT(h.tick, ref.metrics.ticks);

    WorkloadRunOptions restoreOpts;
    restoreOpts.restoreFrom = path;
    WorkloadRun restored(w, InputSize::kSmall, CoherenceMode::kCcsm,
                         SystemConfig{}, restoreOpts);
    expectSameRun(restored.run(), ref, "VA tick-trigger");
    std::remove(path.c_str());
}

TEST(SnapRestore, ConfigHashMismatchFailsLoudly)
{
    const Workload& w = WorkloadRegistry::instance().get("VA");
    const std::string path = tempSnap("hash_mismatch");
    WorkloadRunOptions saveOpts;
    saveOpts.checkpointOut = path;
    saveOpts.checkpointAtPhase = 0;
    WorkloadRun save(w, InputSize::kSmall, CoherenceMode::kCcsm,
                     SystemConfig{}, saveOpts);
    save.run();

    SystemConfig other;
    other.gpuL2Size *= 2; // any behavior-relevant field flips the hash
    WorkloadRunOptions restoreOpts;
    restoreOpts.restoreFrom = path;
    WorkloadRun restored(w, InputSize::kSmall, CoherenceMode::kCcsm, other,
                         restoreOpts);
    EXPECT_THROW(restored.run(), snap::SnapError);

    // restoreOptional: same mismatch falls back to a bit-identical fresh
    // run under the new config instead of throwing.
    WorkloadRunOptions optionalOpts;
    optionalOpts.restoreFrom = path;
    optionalOpts.restoreOptional = true;
    WorkloadRun fallback(w, InputSize::kSmall, CoherenceMode::kCcsm, other,
                         optionalOpts);
    const WorkloadRunResult fell = fallback.run();
    EXPECT_FALSE(fell.fromCheckpoint);
    const WorkloadRunResult plain =
        runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm, other);
    expectSameRun(fell, plain, "VA optional fallback");
    std::remove(path.c_str());
}

TEST(SnapRestore, MissingSnapshotThrowsUnlessOptional)
{
    const Workload& w = WorkloadRegistry::instance().get("VA");
    const std::string path = tempSnap("never_written");
    std::remove(path.c_str());

    WorkloadRunOptions required;
    required.restoreFrom = path;
    WorkloadRun mustRestore(w, InputSize::kSmall, CoherenceMode::kCcsm,
                            SystemConfig{}, required);
    EXPECT_THROW(mustRestore.run(), snap::SnapError);

    WorkloadRunOptions optional;
    optional.restoreFrom = path;
    optional.restoreOptional = true;
    WorkloadRun fresh(w, InputSize::kSmall, CoherenceMode::kCcsm,
                      SystemConfig{}, optional);
    const WorkloadRunResult result = fresh.run();
    EXPECT_FALSE(result.fromCheckpoint);
    const WorkloadRunResult plain =
        runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm);
    expectSameRun(result, plain, "VA missing-snapshot fallback");
}

TEST(SnapRestore, ProduceCacheSharesProducePhase)
{
    namespace fs = std::filesystem;
    const std::string dir = testing::TempDir() + "produce_cache_dir";
    std::filesystem::create_directories(dir);
    const Workload& w = WorkloadRegistry::instance().get("BP");
    const WorkloadRunResult ref =
        runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm);

    WorkloadRunOptions opts;
    opts.produceCacheDir = dir;
    WorkloadRun cold(w, InputSize::kSmall, CoherenceMode::kCcsm,
                     SystemConfig{}, opts);
    const WorkloadRunResult coldResult = cold.run();
    EXPECT_EQ(cold.produceTicksSaved(), 0u);
    expectSameRun(coldResult, ref, "BP cold produce-cache");

    WorkloadRun warm(w, InputSize::kSmall, CoherenceMode::kCcsm,
                     SystemConfig{}, opts);
    const WorkloadRunResult warmResult = warm.run();
    EXPECT_GT(warm.produceTicksSaved(), 0u);
    EXPECT_TRUE(warmResult.fromCheckpoint);
    expectSameRun(warmResult, ref, "BP warm produce-cache");
    fs::remove_all(dir);
}

TEST(SnapRestore, IdleWatchdogIsHarmlessOnHealthyRuns)
{
    const Workload& w = WorkloadRegistry::instance().get("VA");
    const WorkloadRunResult ref =
        runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm);
    WorkloadRunOptions opts;
    opts.maxIdleTicks = 10'000'000;
    WorkloadRun guarded(w, InputSize::kSmall, CoherenceMode::kCcsm,
                        SystemConfig{}, opts);
    expectSameRun(guarded.run(), ref, "VA watchdog");
}

} // namespace
} // namespace dscoh
