// Live sweep progress: renderProgressJson is a pure function pinned here
// field by field, and ProgressPublisher must atomically publish exactly
// that document (and fail loudly on an unwritable path, so the sweep can
// reject a bad --progress-json at startup instead of silently dropping
// every update).
//
// The dscoh-progress-v2 schema is shared between batch sweeps and the
// sweep service, so this file also pins the unification contract: the new
// jobsTotal/jobsDone/jobsFailed names, the v1 total/done/failed aliases
// (kept for one release), the derived/explicit state field, and the
// optional id/tenant fields the service adds.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/progress.h"
#include "obs/json_lite.h"
#include "snap/serializer.h"

namespace dscoh {
namespace {

ProgressSnapshot counters(std::size_t total, std::size_t done,
                          std::size_t failed, double elapsedSeconds)
{
    ProgressSnapshot s;
    s.total = total;
    s.done = done;
    s.failed = failed;
    s.elapsedSeconds = elapsedSeconds;
    return s;
}

const jsonlite::ValuePtr parseOrDie(const std::string& text)
{
    std::string error;
    jsonlite::ValuePtr v = jsonlite::parse(text, error);
    EXPECT_NE(v, nullptr) << error;
    return v;
}

TEST(ProgressJson, RendersRateAndEtaFromTheCounters)
{
    const std::string json = renderProgressJson(counters(44, 11, 2, 22.0));
    const jsonlite::ValuePtr doc = parseOrDie(json);
    EXPECT_EQ(doc->get("schema")->string, "dscoh-progress-v2");
    EXPECT_EQ(doc->get("jobsTotal")->asUint(), 44u);
    EXPECT_EQ(doc->get("jobsDone")->asUint(), 11u);
    EXPECT_EQ(doc->get("jobsFailed")->asUint(), 2u);
    EXPECT_DOUBLE_EQ(doc->get("jobsPerSecond")->number, 0.5);
    EXPECT_DOUBLE_EQ(doc->get("etaSeconds")->number, 66.0);
}

TEST(ProgressJson, KeepsTheV1CounterAliases)
{
    // Dropped in v3; until then pollers written against v1 keep working.
    const jsonlite::ValuePtr doc =
        parseOrDie(renderProgressJson(counters(44, 11, 2, 22.0)));
    EXPECT_EQ(doc->get("total")->asUint(), 44u);
    EXPECT_EQ(doc->get("done")->asUint(), 11u);
    EXPECT_EQ(doc->get("failed")->asUint(), 2u);
}

TEST(ProgressJson, ZeroDoneAndFinishedBatchesHaveNoRateOrEta)
{
    const jsonlite::ValuePtr fresh =
        parseOrDie(renderProgressJson(counters(10, 0, 0, 5.0)));
    EXPECT_DOUBLE_EQ(fresh->get("jobsPerSecond")->number, 0.0);
    EXPECT_DOUBLE_EQ(fresh->get("etaSeconds")->number, 0.0);

    const jsonlite::ValuePtr finished =
        parseOrDie(renderProgressJson(counters(10, 10, 1, 5.0)));
    EXPECT_DOUBLE_EQ(finished->get("etaSeconds")->number, 0.0);
}

TEST(ProgressJson, ZeroElapsedAndZeroTotalAreWellFormed)
{
    // done > 0 with elapsed == 0 (clock granularity) must not divide by
    // zero; an empty batch must render as immediately done.
    const jsonlite::ValuePtr instant =
        parseOrDie(renderProgressJson(counters(4, 2, 0, 0.0)));
    EXPECT_DOUBLE_EQ(instant->get("jobsPerSecond")->number, 0.0);
    EXPECT_DOUBLE_EQ(instant->get("etaSeconds")->number, 0.0);

    const jsonlite::ValuePtr empty =
        parseOrDie(renderProgressJson(counters(0, 0, 0, 0.0)));
    EXPECT_EQ(empty->get("jobsTotal")->asUint(), 0u);
    EXPECT_EQ(empty->get("state")->string, "done");
}

TEST(ProgressJson, DerivesStateFromTheCounters)
{
    EXPECT_EQ(parseOrDie(renderProgressJson(counters(10, 3, 0, 1.0)))
                  ->get("state")
                  ->string,
              "running");
    EXPECT_EQ(parseOrDie(renderProgressJson(counters(10, 10, 0, 1.0)))
                  ->get("state")
                  ->string,
              "done");
    // An all-failed sweep is terminal and "failed", not "done".
    EXPECT_EQ(parseOrDie(renderProgressJson(counters(10, 10, 10, 1.0)))
                  ->get("state")
                  ->string,
              "failed");
}

TEST(ProgressJson, ServiceFieldsAppearOnlyWhenSet)
{
    const jsonlite::ValuePtr batch =
        parseOrDie(renderProgressJson(counters(2, 1, 0, 1.0)));
    EXPECT_EQ(batch->get("id"), nullptr);
    EXPECT_EQ(batch->get("tenant"), nullptr);

    ProgressSnapshot s = counters(2, 1, 0, 1.0);
    s.state = "queued";
    s.id = "r000007";
    s.tenant = "alice";
    const jsonlite::ValuePtr daemon = parseOrDie(renderProgressJson(s));
    EXPECT_EQ(daemon->get("state")->string, "queued");
    EXPECT_EQ(daemon->get("id")->string, "r000007");
    EXPECT_EQ(daemon->get("tenant")->string, "alice");
}

TEST(ProgressJson, IsDeterministicForIdenticalCounters)
{
    // ETA/rate derive from the counters alone — no hidden wall clock — so
    // --jobs 1 and --jobs N sweeps that reach the same (done, elapsed)
    // point publish byte-identical documents.
    const std::string a = renderProgressJson(counters(44, 17, 1, 9.5));
    const std::string b = renderProgressJson(counters(44, 17, 1, 9.5));
    EXPECT_EQ(a, b);
}

TEST(ProgressPublisher, PublishesTheRenderedDocumentAtomically)
{
    const std::string path = testing::TempDir() + "progress_test.json";
    const ProgressPublisher publisher(path);
    const ProgressSnapshot snap = counters(4, 1, 0, 2.0);
    publisher.publish(snap);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), renderProgressJson(snap));
    // Atomic publication leaves no temp file behind for pollers to trip
    // over (the temp + rename is the torn-read defence).
    EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());
    std::remove(path.c_str());
}

TEST(ProgressPublisher, RepublishingNeverExposesAPartialDocument)
{
    // Torn-read resilience: every publish() replaces the file whole, so a
    // reader between publishes always parses a complete document with
    // internally consistent counters.
    const std::string path = testing::TempDir() + "progress_torn_test.json";
    const ProgressPublisher publisher(path);
    for (std::size_t done = 0; done <= 20; ++done) {
        publisher.publish(
            counters(20, done, 0, 0.5 * static_cast<double>(done)));
        std::ifstream in(path);
        std::ostringstream buf;
        buf << in.rdbuf();
        const jsonlite::ValuePtr doc = parseOrDie(buf.str());
        EXPECT_EQ(doc->get("jobsDone")->asUint(), done);
        EXPECT_EQ(doc->get("jobsTotal")->asUint(), 20u);
    }
    std::remove(path.c_str());
}

TEST(ProgressPublisher, UnwritablePathThrows)
{
    const ProgressPublisher publisher("/nonexistent-dir/progress.json");
    EXPECT_THROW(publisher.publish(counters(1, 0, 0, 0.0)),
                 snap::SnapError);
}

} // namespace
} // namespace dscoh
