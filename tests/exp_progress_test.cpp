// Live sweep progress: renderProgressJson is a pure function pinned here
// field by field, and ProgressPublisher must atomically publish exactly
// that document (and fail loudly on an unwritable path, so the sweep can
// reject a bad --progress-json at startup instead of silently dropping
// every update).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/progress.h"
#include "obs/json_lite.h"
#include "snap/serializer.h"

namespace dscoh {
namespace {

const jsonlite::ValuePtr parseOrDie(const std::string& text)
{
    std::string error;
    jsonlite::ValuePtr v = jsonlite::parse(text, error);
    EXPECT_NE(v, nullptr) << error;
    return v;
}

TEST(ProgressJson, RendersRateAndEtaFromTheCounters)
{
    const std::string json =
        renderProgressJson({/*total=*/44, /*done=*/11, /*failed=*/2,
                            /*elapsedSeconds=*/22.0});
    const jsonlite::ValuePtr doc = parseOrDie(json);
    EXPECT_EQ(doc->get("schema")->string, "dscoh-progress-v1");
    EXPECT_EQ(doc->get("total")->asUint(), 44u);
    EXPECT_EQ(doc->get("done")->asUint(), 11u);
    EXPECT_EQ(doc->get("failed")->asUint(), 2u);
    EXPECT_DOUBLE_EQ(doc->get("jobsPerSecond")->number, 0.5);
    EXPECT_DOUBLE_EQ(doc->get("etaSeconds")->number, 66.0);
}

TEST(ProgressJson, ZeroDoneAndFinishedBatchesHaveNoRateOrEta)
{
    const jsonlite::ValuePtr fresh =
        parseOrDie(renderProgressJson({10, 0, 0, 5.0}));
    EXPECT_DOUBLE_EQ(fresh->get("jobsPerSecond")->number, 0.0);
    EXPECT_DOUBLE_EQ(fresh->get("etaSeconds")->number, 0.0);

    const jsonlite::ValuePtr finished =
        parseOrDie(renderProgressJson({10, 10, 1, 5.0}));
    EXPECT_DOUBLE_EQ(finished->get("etaSeconds")->number, 0.0);
}

TEST(ProgressPublisher, PublishesTheRenderedDocumentAtomically)
{
    const std::string path = testing::TempDir() + "progress_test.json";
    const ProgressPublisher publisher(path);
    const ProgressSnapshot snap{4, 1, 0, 2.0};
    publisher.publish(snap);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), renderProgressJson(snap));
    std::remove(path.c_str());
}

TEST(ProgressPublisher, UnwritablePathThrows)
{
    const ProgressPublisher publisher("/nonexistent-dir/progress.json");
    EXPECT_THROW(publisher.publish({1, 0, 0, 0.0}), snap::SnapError);
}

} // namespace
} // namespace dscoh
