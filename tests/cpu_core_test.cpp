// CPU-core behaviour on the full System: program execution, store buffer,
// forwarding, remote-store (RSB) coalescing and uncached DS loads.
#include <gtest/gtest.h>

#include "core/system.h"

namespace dscoh {
namespace {

SystemConfig smallConfig(CoherenceMode mode)
{
    SystemConfig cfg = SystemConfig::paper(mode);
    cfg.numSms = 2; // CPU-focused tests do not need the full GPU
    return cfg;
}

Tick runProgram(System& sys, const CpuProgram& prog)
{
    bool done = false;
    sys.runCpuProgram(prog, [&done] { done = true; });
    const Tick t = sys.simulate();
    EXPECT_TRUE(done);
    return t;
}

TEST(CpuCore, StoreThenLoadSameAddress)
{
    System sys(smallConfig(CoherenceMode::kCcsm));
    const Addr a = sys.allocateArray(4096, false);
    CpuProgram prog;
    prog.push_back(cpuStore(a + 16, 0xdead, 8));
    prog.push_back(cpuFence());
    prog.push_back(cpuLoadCheck(a + 16, 0xdead, 8));
    runProgram(sys, prog);
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
}

TEST(CpuCore, StoreForwardingBeforeDrain)
{
    System sys(smallConfig(CoherenceMode::kCcsm));
    const Addr a = sys.allocateArray(4096, false);
    CpuProgram prog;
    prog.push_back(cpuStore(a, 0x42, 8));
    prog.push_back(cpuLoadCheck(a, 0x42, 8)); // immediately after, no fence
    runProgram(sys, prog);
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
    EXPECT_GE(sys.stats().counter("cpu.core.store_forwards"), 0u);
}

TEST(CpuCore, ManyStoresAllLand)
{
    System sys(smallConfig(CoherenceMode::kCcsm));
    const Addr a = sys.allocateArray(64 * 1024, false);
    CpuProgram prog;
    constexpr int kN = 512;
    for (int i = 0; i < kN; ++i)
        prog.push_back(cpuStore(a + static_cast<Addr>(i) * 8,
                                0x1000 + static_cast<std::uint64_t>(i), 8));
    prog.push_back(cpuFence());
    for (int i = 0; i < kN; ++i)
        prog.push_back(cpuLoadCheck(a + static_cast<Addr>(i) * 8,
                                    0x1000 + static_cast<std::uint64_t>(i), 8));
    runProgram(sys, prog);
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
    EXPECT_EQ(sys.stats().counter("cpu.core.stores"), static_cast<std::uint64_t>(kN));
}

TEST(CpuCore, ComputeDelaysAdvanceTime)
{
    System sys(smallConfig(CoherenceMode::kCcsm));
    CpuProgram prog;
    prog.push_back(cpuCompute(10000));
    const Tick t = runProgram(sys, prog);
    EXPECT_GE(t, 10000u);
}

TEST(CpuCore, RemoteStoresGoToGpuL2NotCpuCache)
{
    System sys(smallConfig(CoherenceMode::kDirectStore));
    const Addr a = sys.allocateArray(4096, /*gpuShared=*/true);
    ASSERT_TRUE(inDsRegion(a));
    CpuProgram prog;
    // A full line of stores: the RSB coalesces them into one DsPutX.
    for (std::uint32_t i = 0; i < kLineSize / 8; ++i)
        prog.push_back(cpuStore(a + i * 8, i + 1, 8));
    prog.push_back(cpuFence());
    runProgram(sys, prog);

    EXPECT_EQ(sys.cpu().remoteStores(), kLineSize / 8);
    EXPECT_EQ(sys.stats().counter("cpu.core.ds_putx_sent"), 1u)
        << "write-combining must merge a full line into one push";
    // The line must be in some GPU L2 slice in MM, not in the CPU cache.
    const Addr pa = sys.addressSpace().translate(a).paddr;
    EXPECT_EQ(sys.cpuCache().stateOf(pa), CohState::kI);
    std::uint64_t dsFills = 0;
    for (std::size_t s = 0; s < sys.sliceCount(); ++s)
        dsFills += sys.slice(s).dsFills();
    EXPECT_EQ(dsFills, 1u);
    // Pushed lines install exclusive-clean (M): the push writes through to
    // DRAM, so memory stays current and evictions are silent.
    const NodeId owner = sys.sliceNodeOf(pa) - System::kFirstSliceNode;
    EXPECT_EQ(sys.slice(owner).stateOf(pa), CohState::kM);
}

TEST(CpuCore, UncachedLoadReadsBackRemoteStore)
{
    System sys(smallConfig(CoherenceMode::kDirectStore));
    const Addr a = sys.allocateArray(4096, true);
    CpuProgram prog;
    for (std::uint32_t i = 0; i < kLineSize / 8; ++i)
        prog.push_back(cpuStore(a + i * 8, 0xaa00 + i, 8));
    prog.push_back(cpuFence());
    prog.push_back(cpuLoadCheck(a + 24, 0xaa03, 8));
    runProgram(sys, prog);
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
    EXPECT_GE(sys.stats().counter("cpu.core.uc_reads"), 1u);
}

TEST(CpuCore, RsbForwardsToLoadWithoutFlush)
{
    System sys(smallConfig(CoherenceMode::kDirectStore));
    const Addr a = sys.allocateArray(4096, true);
    CpuProgram prog;
    prog.push_back(cpuStore(a, 0x77, 8));
    prog.push_back(cpuLoadCheck(a, 0x77, 8)); // value still in the RSB
    runProgram(sys, prog);
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
}

TEST(CpuCore, PartialLineRemoteStoreMergesWithMemory)
{
    System sys(smallConfig(CoherenceMode::kDirectStore));
    const Addr a = sys.allocateArray(4096, true);
    CpuProgram prog;
    prog.push_back(cpuStore(a + 8, 0x1111, 8)); // partial line only
    prog.push_back(cpuFence());
    prog.push_back(cpuLoadCheck(a + 8, 0x1111, 8));
    prog.push_back(cpuLoadCheck(a + 16, 0, 8)); // untouched bytes stay zero
    runProgram(sys, prog);
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
}

TEST(CpuCore, RsbEvictionFlushesOldestEntry)
{
    SystemConfig cfg = smallConfig(CoherenceMode::kDirectStore);
    cfg.rsbEntries = 2;
    System sys(cfg);
    const Addr a = sys.allocateArray(16 * kLineSize, true);
    CpuProgram prog;
    // Touch three different lines: the third forces the first out.
    prog.push_back(cpuStore(a + 0 * kLineSize, 1, 8));
    prog.push_back(cpuStore(a + 1 * kLineSize, 2, 8));
    prog.push_back(cpuStore(a + 2 * kLineSize, 3, 8));
    prog.push_back(cpuFence());
    prog.push_back(cpuLoadCheck(a + 0 * kLineSize, 1, 8));
    prog.push_back(cpuLoadCheck(a + 1 * kLineSize, 2, 8));
    prog.push_back(cpuLoadCheck(a + 2 * kLineSize, 3, 8));
    runProgram(sys, prog);
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
    EXPECT_EQ(sys.stats().counter("cpu.core.ds_putx_sent"), 3u);
}

TEST(CpuCore, CcsmModeNeverUsesDsNetwork)
{
    System sys(smallConfig(CoherenceMode::kCcsm));
    const Addr a = sys.allocateArray(4096, /*gpuShared=*/true); // heap under CCSM
    ASSERT_FALSE(inDsRegion(a));
    CpuProgram prog;
    prog.push_back(cpuStore(a, 5, 8));
    prog.push_back(cpuFence());
    prog.push_back(cpuLoadCheck(a, 5, 8));
    runProgram(sys, prog);
    EXPECT_EQ(sys.cpu().remoteStores(), 0u);
    EXPECT_EQ(sys.metrics().dsNetworkMessages, 0u);
}

TEST(CpuCore, InvariantsHoldAfterMixedProgram)
{
    System sys(smallConfig(CoherenceMode::kDirectStore));
    const Addr heap = sys.allocateArray(8 * 1024, false);
    const Addr ds = sys.allocateArray(8 * 1024, true);
    CpuProgram prog;
    for (int i = 0; i < 100; ++i) {
        prog.push_back(cpuStore(heap + static_cast<Addr>(i % 40) * 8,
                                static_cast<std::uint64_t>(i), 8));
        prog.push_back(cpuStore(ds + static_cast<Addr>(i % 64) * 8,
                                static_cast<std::uint64_t>(1000 + i), 8));
    }
    prog.push_back(cpuFence());
    runProgram(sys, prog);
    const auto violations = sys.checkCoherenceInvariants();
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations.front());
}

} // namespace
} // namespace dscoh
