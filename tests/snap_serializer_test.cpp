// snap serializer: primitive round-trips, section hygiene, and every
// rejection path a snapshot file can hit on disk — flipped bytes (CRC),
// truncation, bad magic, wrong format version, missing sections — plus the
// header inspection API and the atomic temp+rename publisher.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "snap/serializer.h"

namespace dscoh::snap {
namespace {

namespace fs = std::filesystem;

std::string tempPath(const std::string& name)
{
    return testing::TempDir() + name;
}

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void spit(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
}

/// A two-section file exercising every primitive.
std::string sampleImage()
{
    SnapWriter w(/*tick=*/12345, /*configHash=*/0xdeadbeefcafef00dULL);
    w.beginSection("alpha");
    w.u8(0x5a);
    w.u32(0x01020304u);
    w.u64(0x1122334455667788ULL);
    w.f64(-2.5);
    w.str("hello snapshot");
    w.endSection();
    w.beginSection("beta");
    const unsigned char blob[5] = {1, 2, 3, 4, 5};
    w.bytes(blob, sizeof blob);
    w.endSection();
    return w.finish();
}

TEST(SnapSerializer, Crc32KnownCheckValue)
{
    // The standard CRC-32 check value for the ASCII digits "123456789".
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    // Chaining partial blocks must equal one pass over the whole buffer.
    const std::uint32_t head = crc32("12345", 5);
    EXPECT_EQ(crc32("6789", 4, head), 0xcbf43926u);
}

TEST(SnapSerializer, PrimitivesRoundTrip)
{
    const std::string path = tempPath("prim.snap");
    spit(path, sampleImage());

    SnapReader r(path);
    EXPECT_EQ(r.formatVersion(), kFormatVersion);
    EXPECT_EQ(r.tick(), 12345u);
    EXPECT_EQ(r.configHash(), 0xdeadbeefcafef00dULL);
    ASSERT_EQ(r.sections().size(), 2u);
    EXPECT_EQ(r.sections()[0].name, "alpha");
    EXPECT_EQ(r.sections()[1].name, "beta");
    EXPECT_TRUE(r.hasSection("alpha"));
    EXPECT_FALSE(r.hasSection("gamma"));

    r.openSection("alpha");
    EXPECT_EQ(r.u8(), 0x5a);
    EXPECT_EQ(r.u32(), 0x01020304u);
    EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
    EXPECT_EQ(r.f64(), -2.5);
    EXPECT_EQ(r.str(), "hello snapshot");
    r.closeSection();

    r.openSection("beta");
    unsigned char blob[5] = {};
    r.bytes(blob, sizeof blob);
    EXPECT_EQ(blob[0], 1);
    EXPECT_EQ(blob[4], 5);
    r.closeSection();
    std::remove(path.c_str());
}

TEST(SnapSerializer, SectionsReadableInAnyOrder)
{
    const std::string path = tempPath("order.snap");
    spit(path, sampleImage());
    SnapReader r(path);
    r.openSection("beta");
    unsigned char blob[5] = {};
    r.bytes(blob, sizeof blob);
    r.closeSection();
    r.openSection("alpha");
    EXPECT_EQ(r.u8(), 0x5a);
    // Leaving the rest of "alpha" unconsumed must be caught at close.
    EXPECT_THROW(r.closeSection(), SnapError);
    std::remove(path.c_str());
}

TEST(SnapSerializer, OverreadPastSectionEndThrows)
{
    const std::string path = tempPath("overread.snap");
    spit(path, sampleImage());
    SnapReader r(path);
    r.openSection("beta"); // 5 payload bytes
    unsigned char blob[5] = {};
    r.bytes(blob, sizeof blob);
    EXPECT_THROW(r.u8(), SnapError);
    std::remove(path.c_str());
}

TEST(SnapSerializer, MissingSectionThrows)
{
    const std::string path = tempPath("missing.snap");
    spit(path, sampleImage());
    SnapReader r(path);
    EXPECT_THROW(r.openSection("gamma"), SnapError);
    std::remove(path.c_str());
}

TEST(SnapSerializer, FlippedPayloadByteFailsCrc)
{
    std::string image = sampleImage();
    image[image.size() / 2] = static_cast<char>(image[image.size() / 2] ^ 0x40);
    const std::string path = tempPath("corrupt.snap");
    spit(path, image);
    EXPECT_THROW(SnapReader r(path), SnapError);
    EXPECT_THROW(readSnapshotHeader(path), SnapError);
    std::remove(path.c_str());
}

TEST(SnapSerializer, TruncatedFileRejected)
{
    const std::string image = sampleImage();
    const std::string path = tempPath("trunc.snap");
    spit(path, image.substr(0, image.size() - 8));
    EXPECT_THROW(SnapReader r(path), SnapError);
    // Even losing a single trailing byte must fail the CRC/length check.
    spit(path, image.substr(0, image.size() - 1));
    EXPECT_THROW(SnapReader r(path), SnapError);
    std::remove(path.c_str());
}

TEST(SnapSerializer, BadMagicRejected)
{
    std::string image = sampleImage();
    image[0] = 'X';
    const std::string path = tempPath("magic.snap");
    spit(path, image);
    EXPECT_THROW(SnapReader r(path), SnapError);
    std::remove(path.c_str());
}

TEST(SnapSerializer, MissingFileRejected)
{
    EXPECT_THROW(SnapReader r(tempPath("does_not_exist.snap")), SnapError);
}

TEST(SnapSerializer, WrongFormatVersionRejected)
{
    // Patch the version field (the u32 after the 8-byte magic) and re-seal
    // the CRC, so the only defect is the version number itself.
    std::string image = sampleImage();
    const std::uint32_t bogus = kFormatVersion + 7;
    for (std::size_t i = 0; i < 4; ++i)
        image[8 + i] = static_cast<char>((bogus >> (8 * i)) & 0xff);
    const std::uint32_t crc = crc32(image.data(), image.size() - 4);
    for (std::size_t i = 0; i < 4; ++i)
        image[image.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
    const std::string path = tempPath("version.snap");
    spit(path, image);
    EXPECT_THROW(SnapReader r(path), SnapError);
    std::remove(path.c_str());
}

TEST(SnapSerializer, ReadSnapshotHeaderMatchesFile)
{
    const std::string image = sampleImage();
    const std::string path = tempPath("header.snap");
    spit(path, image);
    const SnapshotHeader h = readSnapshotHeader(path);
    EXPECT_EQ(h.formatVersion, kFormatVersion);
    EXPECT_EQ(h.tick, 12345u);
    EXPECT_EQ(h.configHash, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(h.fileBytes, image.size());
    ASSERT_EQ(h.sections.size(), 2u);
    EXPECT_EQ(h.sections[0].name, "alpha");
    EXPECT_EQ(h.sections[1].name, "beta");
    EXPECT_EQ(h.sections[1].bytes, 5u);
    std::remove(path.c_str());
}

TEST(SnapSerializer, AtomicWriteFilePublishesAndReplaces)
{
    const fs::path dir = fs::path(testing::TempDir()) / "snap_atomic_dir";
    fs::create_directories(dir);
    const std::string path = (dir / "out.bin").string();

    atomicWriteFile(path, "first");
    EXPECT_EQ(slurp(path), "first");
    atomicWriteFile(path, "second, longer contents");
    EXPECT_EQ(slurp(path), "second, longer contents");

    // No temporary files may survive a successful publish.
    std::size_t entries = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
    fs::remove_all(dir);
}

TEST(SnapSerializer, AtomicWriteFileToBadDirectoryThrows)
{
    EXPECT_THROW(
        atomicWriteFile(tempPath("no_such_dir/x/y/out.bin"), "data"),
        SnapError);
}

} // namespace
} // namespace dscoh::snap
