#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.h"

namespace dscoh {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, TracksMeanMinMax)
{
    Histogram h(10, 8);
    h.sample(5);
    h.sample(15);
    h.sample(100);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 40.0);
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 100u);
}

TEST(Histogram, OverflowBucketCatchesLargeSamples)
{
    Histogram h(1, 4); // buckets [0,1) [1,2) [2,3) [3,4) + overflow
    h.sample(0);
    h.sample(2);
    h.sample(1000000);
    const auto& buckets = h.buckets();
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_EQ(buckets.back(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), (0.0 + 2.0 + 1000000.0) / 3.0);
}

TEST(Histogram, ZeroWidthCoercedToOne)
{
    Histogram h(0, 4);
    h.sample(3);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(StatRegistry, LookupByName)
{
    StatRegistry reg;
    Counter a;
    Counter b;
    a.inc(7);
    b.inc(3);
    reg.registerCounter("x.a", &a);
    reg.registerCounter("x.b", &b);
    EXPECT_EQ(reg.counter("x.a"), 7u);
    EXPECT_EQ(reg.counter("x.b"), 3u);
    EXPECT_THROW(reg.counter("missing"), std::out_of_range);
    EXPECT_TRUE(reg.hasCounter("x.a"));
    EXPECT_FALSE(reg.hasCounter("x.c"));
}

TEST(StatRegistry, PrefixSum)
{
    StatRegistry reg;
    Counter s0;
    Counter s1;
    Counter other;
    s0.inc(5);
    s1.inc(6);
    other.inc(100);
    reg.registerCounter("gpu.l2.slice0.misses", &s0);
    reg.registerCounter("gpu.l2.slice1.misses", &s1);
    reg.registerCounter("zzz.misses", &other);
    EXPECT_EQ(reg.sumCounters("gpu.l2."), 11u);
    EXPECT_EQ(reg.sumCounters("gpu.l2.slice1"), 6u);
    EXPECT_EQ(reg.sumCounters("nope"), 0u);
}

TEST(StatRegistry, DumpContainsEveryStat)
{
    StatRegistry reg;
    Counter c;
    Scalar s;
    Histogram h;
    c.inc(1);
    s.set(2.5);
    h.sample(3);
    reg.registerCounter("a.counter", &c);
    reg.registerScalar("a.scalar", &s);
    reg.registerHistogram("a.hist", &h);
    std::ostringstream os;
    reg.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("a.counter"), std::string::npos);
    EXPECT_NE(text.find("a.scalar"), std::string::npos);
    EXPECT_NE(text.find("a.hist"), std::string::npos);
}

} // namespace
} // namespace dscoh
