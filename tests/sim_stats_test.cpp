#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "obs/json_lite.h"
#include "sim/stats.h"

namespace dscoh {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, TracksMeanMinMax)
{
    Histogram h(10, 8);
    h.sample(5);
    h.sample(15);
    h.sample(100);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 40.0);
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 100u);
}

TEST(Histogram, OverflowBucketCatchesLargeSamples)
{
    Histogram h(1, 4); // buckets [0,1) [1,2) [2,3) [3,4) + overflow
    h.sample(0);
    h.sample(2);
    h.sample(1000000);
    const auto& buckets = h.buckets();
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[2], 1u);
    EXPECT_EQ(buckets.back(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), (0.0 + 2.0 + 1000000.0) / 3.0);
}

TEST(Histogram, ZeroWidthCoercedToOne)
{
    Histogram h(0, 4);
    h.sample(3);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(StatRegistry, LookupByName)
{
    StatRegistry reg;
    Counter a;
    Counter b;
    a.inc(7);
    b.inc(3);
    reg.registerCounter("x.a", &a);
    reg.registerCounter("x.b", &b);
    EXPECT_EQ(reg.counter("x.a"), 7u);
    EXPECT_EQ(reg.counter("x.b"), 3u);
    EXPECT_THROW(reg.counter("missing"), std::out_of_range);
    EXPECT_TRUE(reg.hasCounter("x.a"));
    EXPECT_FALSE(reg.hasCounter("x.c"));
}

TEST(StatRegistry, PrefixSum)
{
    StatRegistry reg;
    Counter s0;
    Counter s1;
    Counter other;
    s0.inc(5);
    s1.inc(6);
    other.inc(100);
    reg.registerCounter("gpu.l2.slice0.misses", &s0);
    reg.registerCounter("gpu.l2.slice1.misses", &s1);
    reg.registerCounter("zzz.misses", &other);
    EXPECT_EQ(reg.sumCounters("gpu.l2."), 11u);
    EXPECT_EQ(reg.sumCounters("gpu.l2.slice1"), 6u);
    EXPECT_EQ(reg.sumCounters("nope"), 0u);
}

TEST(Histogram, PercentileEdgesAreExactMinMax)
{
    Histogram h(10, 8);
    h.sample(5);
    h.sample(15);
    h.sample(42);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 42.0);
}

TEST(Histogram, PercentileInterpolatesWithinBuckets)
{
    Histogram h(10, 10); // [0,10) [10,20) ... + overflow
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v); // uniform: percentile(p) ~ p
    EXPECT_NEAR(h.percentile(50.0), 50.0, 10.0);
    EXPECT_NEAR(h.percentile(90.0), 90.0, 10.0);
    EXPECT_LE(h.percentile(50.0), h.percentile(90.0));
    EXPECT_LE(h.percentile(90.0), h.percentile(99.0));
}

TEST(Histogram, PercentileOverflowBucketBoundedByMax)
{
    Histogram h(1, 4);
    h.sample(0);
    h.sample(1000000); // lands in the overflow bucket
    const double p99 = h.percentile(99.0);
    EXPECT_LE(p99, 1000000.0);
    EXPECT_GE(p99, 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000000.0);
}

TEST(Histogram, PercentileNoSamplesAndBadInput)
{
    Histogram h(10, 4);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    h.sample(7);
    EXPECT_THROW(h.percentile(-0.1), std::invalid_argument);
    EXPECT_THROW(h.percentile(100.1), std::invalid_argument);
}

TEST(Histogram, PercentileSingleSampleIsThatSample)
{
    Histogram h(16, 8);
    h.sample(23);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 23.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 23.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 23.0);
}

TEST(StatRegistry, DumpContainsEveryStat)
{
    StatRegistry reg;
    Counter c;
    Scalar s;
    Histogram h;
    c.inc(1);
    s.set(2.5);
    h.sample(3);
    reg.registerCounter("a.counter", &c);
    reg.registerScalar("a.scalar", &s);
    reg.registerHistogram("a.hist", &h);
    std::ostringstream os;
    reg.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("a.counter"), std::string::npos);
    EXPECT_NE(text.find("a.scalar"), std::string::npos);
    EXPECT_NE(text.find("a.hist"), std::string::npos);
}

TEST(StatRegistry, DumpJsonIsWellFormedAndMatchesValues)
{
    StatRegistry reg;
    Counter c;
    Scalar s;
    Histogram h(10, 8);
    c.inc(41);
    s.set(2.5);
    h.sample(5);
    h.sample(15);
    h.sample(95);
    reg.registerCounter("a.counter", &c);
    reg.registerScalar("a.scalar", &s);
    reg.registerHistogram("a.hist", &h);

    std::ostringstream os;
    reg.dumpJson(os);
    std::string error;
    const jsonlite::ValuePtr root = jsonlite::parse(os.str(), error);
    ASSERT_NE(root, nullptr) << error;

    const jsonlite::Value* schema = root->get("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, "dscoh-stats-v1");

    const jsonlite::Value* counters = root->get("counters");
    ASSERT_NE(counters, nullptr);
    const jsonlite::Value* counter = counters->get("a.counter");
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->asUint(), 41u);

    const jsonlite::Value* scalars = root->get("scalars");
    ASSERT_NE(scalars, nullptr);
    const jsonlite::Value* scalar = scalars->get("a.scalar");
    ASSERT_NE(scalar, nullptr);
    EXPECT_DOUBLE_EQ(scalar->number, 2.5);

    const jsonlite::Value* hists = root->get("histograms");
    ASSERT_NE(hists, nullptr);
    const jsonlite::Value* hist = hists->get("a.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->get("samples")->asUint(), 3u);
    EXPECT_EQ(hist->get("min")->asUint(), 5u);
    EXPECT_EQ(hist->get("max")->asUint(), 95u);
    ASSERT_NE(hist->get("p50"), nullptr);
    ASSERT_NE(hist->get("p90"), nullptr);
    ASSERT_NE(hist->get("p99"), nullptr);
    const jsonlite::Value* buckets = hist->get("buckets");
    ASSERT_NE(buckets, nullptr);
    EXPECT_EQ(buckets->array.size(), h.buckets().size());
}

TEST(StatRegistry, DumpJsonCountersMatchTextDumpExactly)
{
    StatRegistry reg;
    Counter a;
    Counter b;
    a.inc(7);
    b.inc(123456789);
    reg.registerCounter("x.a", &a);
    reg.registerCounter("x.b", &b);

    std::ostringstream js;
    reg.dumpJson(js);
    std::string error;
    const jsonlite::ValuePtr root = jsonlite::parse(js.str(), error);
    ASSERT_NE(root, nullptr) << error;
    const jsonlite::Value* counters = root->get("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_EQ(counters->object.size(), reg.counterNames().size());
    for (const std::string& name : reg.counterNames()) {
        const jsonlite::Value* v = counters->get(name);
        ASSERT_NE(v, nullptr) << name;
        EXPECT_EQ(v->asUint(), reg.counter(name)) << name;
    }
}

TEST(StatRegistry, DumpJsonEmbedsExtraMember)
{
    StatRegistry reg;
    Counter c;
    reg.registerCounter("a", &c);
    std::ostringstream os;
    reg.dumpJson(os, "\"epochs\": {\"epochTicks\": 5}");
    std::string error;
    const jsonlite::ValuePtr root = jsonlite::parse(os.str(), error);
    ASSERT_NE(root, nullptr) << error;
    const jsonlite::Value* epochs = root->get("epochs");
    ASSERT_NE(epochs, nullptr);
    EXPECT_EQ(epochs->get("epochTicks")->asUint(), 5u);
}

} // namespace
} // namespace dscoh
