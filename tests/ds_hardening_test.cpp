// Direct-store delivery hardening, end to end: under injected DS-network
// faults the ACK/timeout/retransmit machinery (and, past the retry budget,
// the pull-based fallback path) must keep producer/consumer runs correct —
// zero check failures, no invariant violations, a clean oracle — while the
// hardening counters prove the recovery actually exercised.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "check/coherence_checker.h"
#include "core/system.h"

namespace dscoh {
namespace {

struct HardenedResult {
    RunMetrics metrics;
    std::vector<std::string> violations;
    bool oracleClean = false;
    std::string oracleDump;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fallbackStores = 0;
    std::uint64_t fallbackLoads = 0;
    std::uint64_t dupSquashed = 0;
    std::uint64_t nacks = 0;
};

/// CPU produces @p words 8-byte values, a kernel checks them all, and with
/// @p readBack the CPU then uncached-loads every word back. The caller's
/// @p tweak arms the faults and the hardening.
HardenedResult runHardened(const std::function<void(SystemConfig&)>& tweak,
                           std::uint32_t words, bool readBack)
{
    SystemConfig cfg = SystemConfig::paper(CoherenceMode::kDirectStore);
    cfg.numSms = 4;
    tweak(cfg);
    System sys(cfg);
    CoherenceChecker& checker = sys.enableChecker();

    const Addr array = sys.allocateArray(words * 8ull, /*gpuShared=*/true);
    CpuProgram produce;
    for (std::uint32_t i = 0; i < words; ++i)
        produce.push_back(cpuStore(array + i * 8ull, 0xd00d0000ull + i, 8));
    produce.push_back(cpuFence());

    KernelDesc kernel;
    kernel.name = "consume";
    kernel.blocks = 4;
    kernel.threadsPerBlock = 64;
    constexpr std::uint32_t kTotalThreads = 4 * 64;
    kernel.body = [array, words](ThreadBuilder& t, std::uint32_t block,
                                 std::uint32_t thread) {
        for (std::uint32_t i = block * 64 + thread; i < words;
             i += kTotalThreads) {
            t.ldCheck(array + i * 8ull, 0xd00d0000ull + i, 8);
            t.compute(4);
        }
    };

    CpuProgram readback;
    for (std::uint32_t i = 0; i < words; ++i)
        readback.push_back(cpuLoadCheck(array + i * 8ull, 0xd00d0000ull + i, 8));

    sys.runCpuProgram(produce, [&] {
        sys.launchKernel(kernel, [&] {
            if (readBack)
                sys.runCpuProgram(readback, [] {});
        });
    });
    sys.simulate();
    checker.finalize(sys.context().queue.curTick());

    HardenedResult r;
    r.metrics = sys.metrics();
    r.violations = sys.checkCoherenceInvariants();
    r.oracleClean = checker.clean();
    if (!r.oracleClean) {
        std::ostringstream os;
        checker.dump(os);
        r.oracleDump = os.str();
    }
    const StatRegistry& stats = sys.stats();
    r.retries = stats.counter("cpu.core.ds_retries");
    r.timeouts = stats.counter("cpu.core.ds_timeouts");
    r.fallbackStores = stats.counter("cpu.core.ds_fallback_stores");
    r.fallbackLoads = stats.counter("cpu.core.ds_fallback_loads");
    for (std::uint32_t s = 0; s < cfg.gpuL2Slices; ++s) {
        const std::string p = "gpu.l2.slice" + std::to_string(s);
        r.dupSquashed += stats.counter(p + ".ds_duplicates_squashed");
        r.nacks += stats.counter(p + ".ds_nacks");
    }
    return r;
}

void expectClean(const HardenedResult& r)
{
    EXPECT_EQ(r.metrics.checkFailures, 0u);
    EXPECT_TRUE(r.violations.empty())
        << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_TRUE(r.oracleClean) << r.oracleDump;
}

TEST(DsHardening, RetransmitRecoversFromDrops)
{
    const HardenedResult r = runHardened(
        [](SystemConfig& cfg) {
            cfg.faults.dropPpm = 200'000; // every 5th DS message vanishes
            cfg.dsAckTimeout = 4000;
            // Pushes and acks drop alike (~36% loss per attempt), so give
            // the budget headroom: recovery must stay on the push path.
            cfg.dsMaxRetries = 10;
        },
        1024, /*readBack=*/false);
    expectClean(r);
    EXPECT_GT(r.timeouts, 0u);
    EXPECT_GT(r.retries, 0u);
    EXPECT_EQ(r.fallbackStores, 0u)
        << "20% drops must be absorbed within the retry budget";
}

TEST(DsHardening, LinkDownDegradesToFallback)
{
    const HardenedResult r = runHardened(
        [](SystemConfig& cfg) {
            // The DS network is down for the whole run: every push and every
            // uncached read must degrade to the pull-based coherence path.
            cfg.faults.linkDownFrom = 0;
            cfg.faults.linkDownUntil = 2'000'000'000;
            cfg.dsAckTimeout = 2000;
            cfg.dsMaxRetries = 2;
        },
        256, /*readBack=*/true);
    expectClean(r);
    EXPECT_GT(r.fallbackStores, 0u);
    EXPECT_GT(r.fallbackLoads, 0u);
}

TEST(DsHardening, DuplicatesAreSquashedIdempotently)
{
    const HardenedResult r = runHardened(
        [](SystemConfig& cfg) {
            cfg.faults.dupPpm = 1'000'000; // every DS message sent twice
            cfg.dsAckTimeout = 4000;
        },
        1024, /*readBack=*/false);
    expectClean(r);
    EXPECT_GT(r.dupSquashed, 0u);
}

TEST(DsHardening, CorruptionIsNackedAndRetransmitted)
{
    const HardenedResult r = runHardened(
        [](SystemConfig& cfg) {
            cfg.faults.corruptPpm = 300'000;
            cfg.dsAckTimeout = 6000;
        },
        1024, /*readBack=*/false);
    expectClean(r);
    EXPECT_GT(r.nacks, 0u);
    EXPECT_GT(r.retries, 0u);
}

TEST(DsHardening, FaultFreeHardenedRunMatchesBaselineResults)
{
    // Arming the hardening without faults must not change correctness (it
    // does add acks, so traffic differs — only the outcome is compared).
    const HardenedResult r = runHardened(
        [](SystemConfig& cfg) { cfg.dsAckTimeout = 4000; }, 1024,
        /*readBack=*/true);
    expectClean(r);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_EQ(r.timeouts, 0u);
    EXPECT_EQ(r.fallbackStores, 0u);
    EXPECT_EQ(r.fallbackLoads, 0u);
    EXPECT_EQ(r.nacks, 0u);
}

} // namespace
} // namespace dscoh
