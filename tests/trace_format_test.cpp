// Trace-DSL frontend tests: parsing, expression evaluation (via observable
// behaviour), semantic validation, and full runs through the runner.
#include <gtest/gtest.h>

#include <fstream>

#include "trace/trace_format.h"
#include "workloads/runner.h"

namespace dscoh::trace {
namespace {

const char* kVectorAddTrace = R"(
# vectorAdd in trace form
name va_trace
shared-memory no

array a 8192          shared produced
array b 8192          shared produced
array c 8192 16384    shared

cpu:
  produce a
  produce b
  fence
end

kernel add blocks 8 tpb 256
  ldc a ($gid * 4) 4
  ldc b ($gid * 4) 4
  compute 2
  st  c ($gid * 4) 4 ($gid + 1)
end
)";

TEST(TraceParse, AcceptsTheReferenceTrace)
{
    const auto w = parseTrace(kVectorAddTrace);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->info().code, "va_trace");
    EXPECT_FALSE(w->info().usesSharedMemory);

    const auto arrays = w->arrays(InputSize::kSmall);
    ASSERT_EQ(arrays.size(), 3u);
    EXPECT_EQ(arrays[0].name, "a");
    EXPECT_TRUE(arrays[0].cpuProduced);
    EXPECT_EQ(arrays[2].bytes, 8192u);
    EXPECT_EQ(w->arrays(InputSize::kBig)[2].bytes, 16384u);
    EXPECT_FALSE(arrays[2].cpuProduced);
}

TEST(TraceParse, CpuProgramExpands)
{
    const auto w = parseTrace(kVectorAddTrace);
    Workload::ArrayMap mem{{"a", 0x1000}, {"b", 0x10000}, {"c", 0x20000}};
    const CpuProgram prog = w->cpuProduce(InputSize::kSmall, mem);
    // 2 arrays x 2048 element stores + fence.
    EXPECT_EQ(prog.size(), 2u * 2048 + 1);
    EXPECT_EQ(prog.back().kind, CpuOp::Kind::kFence);
    EXPECT_EQ(prog.front().kind, CpuOp::Kind::kStore);
    EXPECT_EQ(prog.front().vaddr, 0x1000u);
}

TEST(TraceRun, VectorAddTraceRunsVerifiedBothModes)
{
    const auto w = parseTrace(kVectorAddTrace);
    const auto cmp = compareModes(*w, InputSize::kSmall);
    EXPECT_EQ(cmp.ccsm.metrics.checkFailures, 0u);
    EXPECT_EQ(cmp.directStore.metrics.checkFailures, 0u);
    EXPECT_GT(cmp.directStore.metrics.dsFills, 0u);
    EXPECT_GE(cmp.speedup(), 1.0) << "pushes must help this streaming trace";
}

TEST(TraceRun, PredicatesKeepLockstepAndSelectLanes)
{
    const char* source = R"(
name predicated
array data 4096 shared produced
array out  4096 shared
cpu:
  produce data
  fence
end
kernel half blocks 1 tpb 64
  ldc data ($gid * 4) 4
  when ($tid % 2 == 0) st out ($gid * 4) 4 ($gid)
  when ($tid % 2 == 1) compute 4
end
)";
    const auto w = parseTrace(source);
    const auto r = runWorkload(*w, InputSize::kSmall,
                               CoherenceMode::kDirectStore);
    EXPECT_EQ(r.metrics.checkFailures, 0u);
}

TEST(TraceRun, MultiKernelTraceChains)
{
    const char* source = R"(
name chain
array data 2048 shared produced
cpu:
  produce data
  fence
end
kernel first blocks 2 tpb 256
  ldc data (($gid % 512) * 4) 4
end
kernel second blocks 2 tpb 256
  ld data (($gid % 512) * 4) 4
  compute 3
end
)";
    const auto w = parseTrace(source);
    Workload::ArrayMap mem{{"data", 0x4000}};
    EXPECT_EQ(w->kernels(InputSize::kSmall, mem).size(), 2u);
    const auto r = runWorkload(*w, InputSize::kSmall, CoherenceMode::kCcsm);
    EXPECT_EQ(r.metrics.checkFailures, 0u);
}

// ------------------------------------------------------------- rejection --

TEST(TraceParse, RejectsUnknownDirective)
{
    EXPECT_THROW(parseTrace("array a 64 shared\nbogus directive\n"),
                 TraceError);
}

TEST(TraceParse, RejectsUnknownArrayReference)
{
    const char* source = R"(
array a 64 shared
kernel k blocks 1 tpb 32
  ld missing ($gid) 4
end
)";
    EXPECT_THROW(parseTrace(source), TraceError);
}

TEST(TraceParse, RejectsBadKernelHeader)
{
    EXPECT_THROW(parseTrace("array a 64 shared\nkernel k blocks 1 tpb 33\nend\n"),
                 TraceError);
    EXPECT_THROW(parseTrace("array a 64 shared\nkernel k\nend\n"), TraceError);
}

TEST(TraceParse, RejectsUnterminatedSection)
{
    EXPECT_THROW(parseTrace("array a 64 shared\ncpu:\n  fence\n"), TraceError);
}

TEST(TraceParse, RejectsDuplicateArray)
{
    EXPECT_THROW(parseTrace("array a 64 shared\narray a 64 shared\n"),
                 TraceError);
}

TEST(TraceParse, RejectsBadExpression)
{
    const char* source = R"(
array a 64 shared
kernel k blocks 1 tpb 32
  ld a ($unknownvar * 4) 4
end
)";
    // Parsing succeeds; the bad variable surfaces on first evaluation.
    const auto w = parseTrace(source);
    Workload::ArrayMap mem{{"a", 0x1000}};
    const auto kernels = w->kernels(InputSize::kSmall, mem);
    ThreadBuilder t;
    EXPECT_THROW(kernels[0].body(t, 0, 0), TraceError);
}

TEST(TraceParse, OutOfBoundsAccessIsCaughtAtBuildTime)
{
    const char* source = R"(
array a 64 shared
kernel k blocks 1 tpb 32
  ld a ($gid * 64) 4
end
)";
    const auto w = parseTrace(source);
    Workload::ArrayMap mem{{"a", 0x1000}};
    const auto kernels = w->kernels(InputSize::kSmall, mem);
    ThreadBuilder t;
    kernels[0].body(t, 0, 0); // offset 0: fine
    EXPECT_THROW(kernels[0].body(t, 0, 5), std::out_of_range); // offset 320
}

TEST(TraceParse, ErrorsCarryLineNumbers)
{
    try {
        parseTrace("name x\narray a 64 shared\nwat\n");
        FAIL() << "expected TraceError";
    } catch (const TraceError& e) {
        EXPECT_EQ(e.line(), 3u);
        EXPECT_NE(std::string(e.what()).find("trace:3"), std::string::npos);
    }
}

TEST(TraceFile, LoadsFromDisk)
{
    const std::string path = "/tmp/dscoh_test_trace.trace";
    {
        std::ofstream out(path);
        out << kVectorAddTrace;
    }
    const auto w = loadTraceFile(path);
    EXPECT_EQ(w->info().code, "va_trace");
    EXPECT_THROW(loadTraceFile("/nonexistent/file.trace"), std::runtime_error);
}

} // namespace
} // namespace dscoh::trace
