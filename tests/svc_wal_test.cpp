// CRC-framed WAL records: framing round-trips, torn tails are detected
// and cut at the last valid record, corruption stops replay instead of
// feeding garbage to recovery, and PR-9-era unframed logs still replay.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "svc/wal.h"

namespace dscoh::svc {
namespace {

namespace fs = std::filesystem;

std::string tempWal(const std::string& name)
{
    const std::string p = testing::TempDir() + name;
    std::error_code ec;
    fs::remove(p, ec);
    return p;
}

void spit(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
}

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(Wal, FramedRecordsRoundTrip)
{
    const std::string path = tempWal("wal_roundtrip");
    spit(path, walFrame("{\"event\": \"accepted\", \"id\": \"r1\"}") +
                   walFrame("{\"event\": \"done\", \"id\": \"r1\"}"));
    const WalReadResult r = readWal(path);
    EXPECT_FALSE(r.truncated);
    ASSERT_EQ(r.payloads.size(), 2u);
    EXPECT_EQ(r.payloads[0], "{\"event\": \"accepted\", \"id\": \"r1\"}");
    EXPECT_EQ(r.payloads[1], "{\"event\": \"done\", \"id\": \"r1\"}");
}

TEST(Wal, MissingFileIsCleanAndEmpty)
{
    const WalReadResult r = readWal(tempWal("wal_missing"));
    EXPECT_FALSE(r.truncated);
    EXPECT_TRUE(r.payloads.empty());
    EXPECT_EQ(r.validBytes, 0u);
}

TEST(Wal, TornFinalRecordIsDetectedAndCut)
{
    const std::string path = tempWal("wal_torn");
    const std::string good = walFrame("{\"a\": 1}") + walFrame("{\"b\": 2}");
    const std::string torn = walFrame("{\"c\": 3}");
    // Lose the tail of the final record, newline included — a torn append.
    spit(path, good + torn.substr(0, torn.size() - 4));

    WalReadResult r = readWal(path);
    EXPECT_TRUE(r.truncated);
    EXPECT_EQ(r.reason, "incomplete final record");
    ASSERT_EQ(r.payloads.size(), 2u);
    EXPECT_EQ(r.validBytes, good.size());

    std::string error;
    ASSERT_TRUE(truncateWal(path, r.validBytes, &error)) << error;
    EXPECT_EQ(slurp(path), good);
    r = readWal(path);
    EXPECT_FALSE(r.truncated);
    EXPECT_EQ(r.payloads.size(), 2u);
}

TEST(Wal, CrcMismatchStopsReplayAtTheBadRecord)
{
    const std::string path = tempWal("wal_crc");
    const std::string first = walFrame("{\"a\": 1}");
    std::string second = walFrame("{\"b\": 2}");
    second[second.size() - 3] ^= 0x20; // flip a payload byte, keep framing
    spit(path, first + second + walFrame("{\"c\": 3}"));

    const WalReadResult r = readWal(path);
    EXPECT_TRUE(r.truncated);
    EXPECT_EQ(r.reason, "record CRC mismatch");
    // Everything before the corrupt record is trusted; nothing after it
    // is, even though the third record's own CRC is fine.
    ASSERT_EQ(r.payloads.size(), 1u);
    EXPECT_EQ(r.payloads[0], "{\"a\": 1}");
    EXPECT_EQ(r.validBytes, first.size());
}

TEST(Wal, LegacyUnframedJsonLinesStillReplay)
{
    const std::string path = tempWal("wal_legacy");
    spit(path, "{\"event\": \"accepted\", \"id\": \"r1\"}\n" +
                   walFrame("{\"event\": \"done\", \"id\": \"r1\"}"));
    const WalReadResult r = readWal(path);
    EXPECT_FALSE(r.truncated);
    ASSERT_EQ(r.payloads.size(), 2u);
    EXPECT_EQ(r.payloads[0], "{\"event\": \"accepted\", \"id\": \"r1\"}");
}

TEST(Wal, UnrecognizedFramingIsTreatedAsATornTail)
{
    const std::string path = tempWal("wal_garbage");
    const std::string good = walFrame("{\"a\": 1}");
    spit(path, good + "!notahexcrc {\"b\": 2}\n");
    const WalReadResult r = readWal(path);
    EXPECT_TRUE(r.truncated);
    ASSERT_EQ(r.payloads.size(), 1u);
    EXPECT_EQ(r.validBytes, good.size());
}

TEST(Wal, EmptyLinesAreSkippedButCountedValid)
{
    const std::string path = tempWal("wal_blank");
    const std::string body = walFrame("{\"a\": 1}") + "\n" +
                             walFrame("{\"b\": 2}");
    spit(path, body);
    const WalReadResult r = readWal(path);
    EXPECT_FALSE(r.truncated);
    EXPECT_EQ(r.payloads.size(), 2u);
    EXPECT_EQ(r.validBytes, body.size());
}

} // namespace
} // namespace dscoh::svc
