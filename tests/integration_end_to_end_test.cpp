// Cross-module integration tests: translator output feeding the simulated
// allocator, multi-kernel pipelines, CPU<->GPU round trips under both
// schemes, and the full workload runner.
#include <gtest/gtest.h>

#include "core/system.h"
#include "translate/translator.h"
#include "workloads/runner.h"

namespace dscoh {
namespace {

SystemConfig cfg(CoherenceMode mode)
{
    SystemConfig c = SystemConfig::paper(mode);
    c.numSms = 4;
    return c;
}

// ---------------------------------------------------------------------------
// Translator -> simulator: the addresses the source translator assigns are
// directly usable as MAP_FIXED mappings, and a program using them runs with
// full verification under direct store.
// ---------------------------------------------------------------------------
TEST(Integration, TranslatedAllocationsDriveTheSimulator)
{
    const char* source = R"cuda(
#define N 2048
__global__ void consume(float* data);
int main() {
    float* data;
    data = (float*)malloc(N * sizeof(float));
    consume<<<8, 256>>>(data);
}
)cuda";
    xlate::SourceTranslator translator;
    const auto result = translator.translateSource(source);
    ASSERT_EQ(result.allocations.size(), 1u);
    const auto& alloc = result.allocations[0];
    ASSERT_TRUE(alloc.sizeKnown);
    ASSERT_EQ(alloc.bytes, 2048u * 4);

    System sys(cfg(CoherenceMode::kDirectStore));
    // MAP_FIXED at the translator-assigned address.
    const Addr va = sys.addressSpace().dsMmapFixed(alloc.address, alloc.bytes);
    ASSERT_TRUE(inDsRegion(va));

    CpuProgram produce;
    for (std::uint32_t i = 0; i < 2048; ++i)
        produce.push_back(cpuStore(va + i * 4ull, producedValue(va + i * 4ull), 4));
    produce.push_back(cpuFence());

    KernelDesc k;
    k.name = "consume";
    k.blocks = 8;
    k.threadsPerBlock = 256;
    k.body = [va](ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
        const std::uint32_t i = b * 256 + tid;
        t.ldCheck(va + i * 4ull, producedValue(va + i * 4ull), 4);
    };

    sys.runCpuProgram(produce, [&] { sys.launchKernel(k, [] {}); });
    sys.simulate();
    EXPECT_EQ(sys.metrics().checkFailures, 0u);
    EXPECT_GT(sys.metrics().dsFills, 0u);
}

// ---------------------------------------------------------------------------
// Ping-pong: CPU produce -> kernel A transforms -> kernel B verifies A's
// output -> CPU reads the final result, under both schemes.
// ---------------------------------------------------------------------------
TEST(Integration, MultiKernelPipelineBothModes)
{
    for (const CoherenceMode mode :
         {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}) {
        System sys(cfg(mode));
        constexpr std::uint32_t kN = 1024;
        const Addr a = sys.allocateArray(kN * 4, true);
        const Addr b = sys.allocateArray(kN * 4, true);

        CpuProgram produce;
        for (std::uint32_t i = 0; i < kN; ++i)
            produce.push_back(cpuStore(a + i * 4ull, i + 7, 4));
        produce.push_back(cpuFence());

        KernelDesc ka;
        ka.name = "transform";
        ka.blocks = 4;
        ka.threadsPerBlock = 256;
        ka.body = [a, b](ThreadBuilder& t, std::uint32_t blk, std::uint32_t tid) {
            const std::uint32_t i = blk * 256 + tid;
            t.ldCheck(a + i * 4ull, i + 7, 4);
            t.compute(2);
            t.st(b + i * 4ull, (i + 7) * 2ull, 4);
        };
        KernelDesc kb;
        kb.name = "verify";
        kb.blocks = 4;
        kb.threadsPerBlock = 256;
        kb.body = [b](ThreadBuilder& t, std::uint32_t blk, std::uint32_t tid) {
            const std::uint32_t i = blk * 256 + tid;
            t.ldCheck(b + i * 4ull, (i + 7) * 2ull, 4);
        };

        CpuProgram readBack;
        for (std::uint32_t i = 0; i < kN; i += 128)
            readBack.push_back(cpuLoadCheck(b + i * 4ull, (i + 7) * 2ull, 4));

        sys.runCpuProgram(produce, [&] {
            sys.launchKernel(ka, [&] {
                sys.launchKernel(kb, [&] {
                    sys.runCpuProgram(readBack, [] {});
                });
            });
        });
        sys.simulate();
        EXPECT_EQ(sys.metrics().checkFailures, 0u) << to_string(mode);
        const auto violations = sys.checkCoherenceInvariants();
        EXPECT_TRUE(violations.empty())
            << to_string(mode) << ": " << violations.front();
    }
}

// ---------------------------------------------------------------------------
// The workload runner end to end, on representative registry entries.
// ---------------------------------------------------------------------------
TEST(Integration, RunnerExecutesRepresentativeWorkloads)
{
    for (const char* code : {"VA", "PT", "BF"}) {
        const auto cmp =
            compareModes(WorkloadRegistry::instance().get(code),
                         InputSize::kSmall);
        EXPECT_EQ(cmp.ccsm.metrics.checkFailures, 0u) << code;
        EXPECT_EQ(cmp.directStore.metrics.checkFailures, 0u) << code;
        EXPECT_TRUE(cmp.ccsm.violations.empty()) << code;
        EXPECT_TRUE(cmp.directStore.violations.empty()) << code;
        EXPECT_GT(cmp.ccsm.metrics.gpuL2Accesses, 0u) << code;
    }
}

TEST(Integration, DirectStoreWinsOnStreamingLosesNothingOnPt)
{
    const auto va = compareModes(WorkloadRegistry::instance().get("VA"),
                                 InputSize::kSmall);
    EXPECT_GT(va.speedup(), 1.05) << "VA must gain well over 5%";

    const auto pt = compareModes(WorkloadRegistry::instance().get("PT"),
                                 InputSize::kSmall);
    EXPECT_NEAR(pt.speedup(), 1.0, 0.02)
        << "PT has no CPU-produced GPU data: speedup ~0, and no harm";
}

TEST(Integration, UncachedCpuReadsSeeGpuWrites)
{
    // DS region is never CPU-cached; CPU loads round-trip to the slice.
    System sys(cfg(CoherenceMode::kDirectStore));
    const Addr arr = sys.allocateArray(256 * 4, true);
    KernelDesc k;
    k.name = "writer";
    k.blocks = 1;
    k.threadsPerBlock = 256;
    k.body = [arr](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        t.st(arr + tid * 4ull, tid ^ 0x5a, 4);
    };
    CpuProgram readBack;
    for (std::uint32_t i = 0; i < 256; ++i)
        readBack.push_back(cpuLoadCheck(arr + i * 4ull, i ^ 0x5a, 4));
    sys.launchKernel(k, [&] { sys.runCpuProgram(readBack, [] {}); });
    sys.simulate();
    EXPECT_EQ(sys.metrics().checkFailures, 0u);
    EXPECT_GT(sys.stats().counter("cpu.core.uc_reads"), 0u);
    EXPECT_EQ(sys.cpuCache().stateOf(
                  sys.addressSpace().translate(arr).paddr),
              CohState::kI)
        << "the DS region must never be cached on the CPU";
}

TEST(Integration, MixedHeapAndDsTrafficStaysCoherent)
{
    System sys(cfg(CoherenceMode::kDirectStore));
    const Addr heap = sys.allocateArray(16 * 1024, false); // CPU-private
    const Addr shared = sys.allocateArray(16 * 1024, true);

    CpuProgram prog;
    for (std::uint32_t i = 0; i < 2048; ++i) {
        prog.push_back(cpuStore(heap + (i % 512) * 4ull, i, 4));
        prog.push_back(cpuStore(shared + i * 4ull, i * 5ull, 4));
    }
    prog.push_back(cpuFence());
    for (std::uint32_t i = 0; i < 2048; i += 97) {
        prog.push_back(cpuLoadCheck(shared + i * 4ull, i * 5ull, 4));
    }

    KernelDesc k;
    k.name = "consume_shared";
    k.blocks = 8;
    k.threadsPerBlock = 256;
    k.body = [shared](ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
        const std::uint32_t i = b * 256 + tid;
        t.ldCheck(shared + i * 4ull, i * 5ull, 4);
    };

    sys.runCpuProgram(prog, [&] { sys.launchKernel(k, [] {}); });
    sys.simulate();
    EXPECT_EQ(sys.metrics().checkFailures, 0u);
    const auto violations = sys.checkCoherenceInvariants();
    EXPECT_TRUE(violations.empty()) << violations.front();
}

} // namespace
} // namespace dscoh
