// Observability pipeline: TraceSession must emit well-formed Chrome
// trace-event JSON with the advertised categories, honor category filters,
// and be deterministic run-to-run; the EpochSampler must produce a monotone
// time series without changing when the simulation ends.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "core/system.h"
#include "obs/epoch_sampler.h"
#include "obs/json_lite.h"
#include "workloads/workload.h"

namespace dscoh {
namespace {

/// Runs the VA workload on a System we keep, with tracing enabled for
/// @p mask, and returns the serialized trace JSON. When @p sampler is
/// given, it is started before the run.
std::string runTraced(CoherenceMode mode, std::uint32_t mask,
                      std::function<void(System&)> beforeRun = {},
                      std::function<void(System&)> afterRun = {})
{
    const Workload& w = WorkloadRegistry::instance().get("VA");
    SystemConfig cfg;
    cfg.mode = mode;
    System sys(cfg);
    sys.enableTracing(mask);
    if (beforeRun)
        beforeRun(sys);

    Workload::ArrayMap mem;
    for (const auto& spec : w.arrays(InputSize::kSmall))
        mem[spec.name] = sys.allocateArray(spec.bytes, spec.gpuShared);
    const CpuProgram produce = w.cpuProduce(InputSize::kSmall, mem);
    const auto kernels = w.kernels(InputSize::kSmall, mem);
    std::size_t next = 0;
    std::function<void()> launchNext = [&] {
        if (next < kernels.size())
            sys.launchKernel(kernels[next++], [&] { launchNext(); });
    };
    sys.runCpuProgram(produce, [&] { launchNext(); });
    sys.simulate();
    if (afterRun)
        afterRun(sys);

    std::ostringstream os;
    sys.trace()->writeJson(os);
    return os.str();
}

jsonlite::ValuePtr parseOrDie(const std::string& text)
{
    std::string error;
    jsonlite::ValuePtr v = jsonlite::parse(text, error);
    EXPECT_NE(v, nullptr) << error;
    return v;
}

TEST(TraceFilter, ParsesSingleAndMultipleCategories)
{
    std::uint32_t mask = 0;
    std::string error;
    ASSERT_TRUE(parseTraceFilter("net", mask, error)) << error;
    EXPECT_EQ(mask, traceCatBit(TraceCat::kNet));
    ASSERT_TRUE(parseTraceFilter("coherence,dram,kernel", mask, error));
    EXPECT_EQ(mask, traceCatBit(TraceCat::kCoherence) |
                        traceCatBit(TraceCat::kDram) |
                        traceCatBit(TraceCat::kKernel));
    ASSERT_TRUE(parseTraceFilter("mshr", mask, error));
    EXPECT_EQ(mask, traceCatBit(TraceCat::kMshr));
}

TEST(TraceFilter, RejectsGarbageDeterministically)
{
    std::uint32_t mask = 0;
    std::string error;
    EXPECT_FALSE(parseTraceFilter("", mask, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseTraceFilter("net,", mask, error));
    EXPECT_FALSE(parseTraceFilter(",net", mask, error));
    EXPECT_FALSE(parseTraceFilter("bogus", mask, error));
    EXPECT_NE(error.find("bogus"), std::string::npos);
    EXPECT_FALSE(parseTraceFilter("NET", mask, error)); // names are exact
}

TEST(TraceSession, DisabledByDefaultAndZeroStorage)
{
    SystemConfig cfg;
    System sys(cfg);
    EXPECT_EQ(sys.trace(), nullptr);
}

TEST(TraceSession, EmitsWellFormedJsonWithExpectedCategories)
{
    const std::string json =
        runTraced(CoherenceMode::kDirectStore, kAllTraceCats);
    const jsonlite::ValuePtr root = parseOrDie(json);
    ASSERT_NE(root, nullptr);
    const jsonlite::Value* events = root->get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->array.empty());

    std::uint32_t seen = 0;
    std::size_t metadata = 0;
    for (const auto& ev : events->array) {
        const jsonlite::Value* ph = ev->get("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "M") {
            ++metadata;
            continue;
        }
        const jsonlite::Value* cat = ev->get("cat");
        ASSERT_NE(cat, nullptr);
        ASSERT_TRUE(cat->isString());
        if (cat->string == "coherence")
            seen |= traceCatBit(TraceCat::kCoherence);
        else if (cat->string == "net")
            seen |= traceCatBit(TraceCat::kNet);
        else if (cat->string == "dram")
            seen |= traceCatBit(TraceCat::kDram);
        else if (cat->string == "mshr")
            seen |= traceCatBit(TraceCat::kMshr);
        else if (cat->string == "kernel")
            seen |= traceCatBit(TraceCat::kKernel);
        ASSERT_NE(ev->get("ts"), nullptr);
        ASSERT_NE(ev->get("name"), nullptr);
    }
    EXPECT_GT(metadata, 0u) << "thread_name metadata must name the tracks";
    // The acceptance bar: protocol transitions, network messages and DRAM
    // accesses must all be present in a full-category DS-mode trace.
    EXPECT_TRUE(seen & traceCatBit(TraceCat::kCoherence));
    EXPECT_TRUE(seen & traceCatBit(TraceCat::kNet));
    EXPECT_TRUE(seen & traceCatBit(TraceCat::kDram));
    EXPECT_TRUE(seen & traceCatBit(TraceCat::kKernel));
}

TEST(TraceSession, TransitionEventsCarryFromToArgs)
{
    const std::string json = runTraced(
        CoherenceMode::kCcsm, traceCatBit(TraceCat::kCoherence));
    const jsonlite::ValuePtr root = parseOrDie(json);
    const jsonlite::Value* events = root->get("traceEvents");
    ASSERT_NE(events, nullptr);
    bool sawTransition = false;
    for (const auto& ev : events->array) {
        const jsonlite::Value* ph = ev->get("ph");
        if (ph == nullptr || ph->string == "M")
            continue;
        const jsonlite::Value* args = ev->get("args");
        if (args != nullptr && args->get("from") != nullptr) {
            EXPECT_NE(args->get("to"), nullptr);
            EXPECT_NE(args->get("addr"), nullptr);
            sawTransition = true;
        }
    }
    EXPECT_TRUE(sawTransition);
}

TEST(TraceSession, CategoryFilterExcludesEverythingElse)
{
    const std::string json =
        runTraced(CoherenceMode::kDirectStore, traceCatBit(TraceCat::kNet));
    const jsonlite::ValuePtr root = parseOrDie(json);
    const jsonlite::Value* events = root->get("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t netEvents = 0;
    for (const auto& ev : events->array) {
        const jsonlite::Value* ph = ev->get("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "M")
            continue;
        const jsonlite::Value* cat = ev->get("cat");
        ASSERT_NE(cat, nullptr);
        EXPECT_EQ(cat->string, "net");
        ++netEvents;
    }
    EXPECT_GT(netEvents, 0u);
}

TEST(TraceSession, IdenticalRunsProduceIdenticalTraces)
{
    const std::string a = runTraced(CoherenceMode::kDirectStore, kAllTraceCats);
    const std::string b = runTraced(CoherenceMode::kDirectStore, kAllTraceCats);
    EXPECT_EQ(a, b);
}

TEST(EpochSampler, ProducesMonotoneTimeSeriesAndJson)
{
    std::unique_ptr<EpochSampler> sampler;
    runTraced(
        CoherenceMode::kDirectStore, traceCatBit(TraceCat::kKernel),
        [&](System& sys) {
            EpochSampler::Params p;
            p.epochTicks = 500;
            sampler = std::make_unique<EpochSampler>(sys.queue(), sys.stats(),
                                                     p);
            sampler->start();
        },
        [&](System&) {
            ASSERT_GE(sampler->samples().size(), 2u);
            ASSERT_FALSE(sampler->names().empty());
            const auto& samples = sampler->samples();
            EXPECT_EQ(samples.front().tick, 0u);
            for (std::size_t i = 1; i < samples.size(); ++i) {
                EXPECT_EQ(samples[i].tick, samples[i - 1].tick + 500);
                ASSERT_EQ(samples[i].values.size(),
                          sampler->names().size());
                for (std::size_t j = 0; j < samples[i].values.size(); ++j)
                    EXPECT_GE(samples[i].values[j], samples[i - 1].values[j])
                        << sampler->names()[j] << " went backwards";
            }
            std::ostringstream os;
            sampler->writeJson(os);
            parseOrDie("{\"epochs\": " + os.str() + "}");
        });
}

TEST(EpochSampler, SelectorsRestrictTheCounterSet)
{
    const Workload& w = WorkloadRegistry::instance().get("VA");
    SystemConfig cfg;
    System sys(cfg);
    EpochSampler::Params p;
    p.epochTicks = 1000;
    p.selectors = {"dram."};
    EpochSampler sampler(sys.queue(), sys.stats(), p);

    Workload::ArrayMap mem;
    for (const auto& spec : w.arrays(InputSize::kSmall))
        mem[spec.name] = sys.allocateArray(spec.bytes, spec.gpuShared);
    const CpuProgram produce = w.cpuProduce(InputSize::kSmall, mem);
    const auto kernels = w.kernels(InputSize::kSmall, mem);
    std::size_t next = 0;
    std::function<void()> launchNext = [&] {
        if (next < kernels.size())
            sys.launchKernel(kernels[next++], [&] { launchNext(); });
    };
    sys.runCpuProgram(produce, [&] { launchNext(); });
    sampler.start();
    sys.simulate();

    ASSERT_FALSE(sampler.names().empty());
    for (const std::string& name : sampler.names())
        EXPECT_EQ(name.rfind("dram.", 0), 0u) << name;
}

TEST(EpochSampler, DisabledSamplerTakesNoSamples)
{
    SystemConfig cfg;
    System sys(cfg);
    EpochSampler sampler(sys.queue(), sys.stats(), {});
    sampler.start();
    sys.simulate();
    EXPECT_TRUE(sampler.samples().empty());
}

TEST(JsonLite, RejectsMalformedDocuments)
{
    std::string error;
    EXPECT_EQ(jsonlite::parse("{", error), nullptr);
    EXPECT_NE(error.find("offset"), std::string::npos);
    EXPECT_EQ(jsonlite::parse("{} trailing", error), nullptr);
    EXPECT_EQ(jsonlite::parse("[1,]", error), nullptr);
    EXPECT_EQ(jsonlite::parse("{\"a\":}", error), nullptr);
    EXPECT_NE(jsonlite::parse("{\"a\": [1, 2, {\"b\": \"c\\n\"}]}", error),
              nullptr);
}

} // namespace
} // namespace dscoh
