// Corpus regression: every scenario in tests/corpus/ must parse, run clean
// under the oracle in both modes, and agree across modes on the output
// array. Shrunk reproducers of future protocol bugs get added here once
// fixed, turning each incident into a permanent regression test.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.h"

namespace dscoh {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpusFiles()
{
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(DSCOH_CORPUS_DIR))
        if (entry.path().extension() == ".scn")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(FuzzCorpus, DirectoryHasSeeds)
{
    EXPECT_GE(corpusFiles().size(), 5u);
}

TEST(FuzzCorpus, EveryScenarioParsesAndRoundTrips)
{
    for (const fs::path& path : corpusFiles()) {
        std::ifstream in(path);
        ASSERT_TRUE(in) << path;
        std::ostringstream text;
        text << in.rdbuf();
        FuzzScenario sc;
        std::string error;
        ASSERT_TRUE(parseScenario(text.str(), sc, error))
            << path << ": " << error;
        FuzzScenario back;
        ASSERT_TRUE(parseScenario(serializeScenario(sc), back, error))
            << path << ": " << error;
        EXPECT_EQ(serializeScenario(back), serializeScenario(sc)) << path;
    }
}

TEST(FuzzCorpus, EveryScenarioRunsCleanUnderOracle)
{
    for (const fs::path& path : corpusFiles()) {
        std::ifstream in(path);
        std::ostringstream text;
        text << in.rdbuf();
        FuzzScenario sc;
        std::string error;
        ASSERT_TRUE(parseScenario(text.str(), sc, error))
            << path << ": " << error;
        ASSERT_EQ(sc.bug, InjectedBug::kNone)
            << path << ": corpus seeds must be clean scenarios";
        const DifferentialReport d = runDifferential(sc);
        EXPECT_FALSE(d.failed()) << path << ":\n"
                                 << (d.ccsm.violations.empty()
                                         ? ""
                                         : d.ccsm.violations.front())
                                 << (d.directStore.violations.empty()
                                         ? ""
                                         : d.directStore.violations.front());
        EXPECT_EQ(d.ccsm.outWords, d.directStore.outWords) << path;
    }
}

} // namespace
} // namespace dscoh
