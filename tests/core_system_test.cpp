#include <gtest/gtest.h>

#include <sstream>

#include "core/system.h"

namespace dscoh {
namespace {

TEST(SystemConfig, PaperDefaultsMatchTableI)
{
    const SystemConfig cfg = SystemConfig::paper(CoherenceMode::kCcsm);
    EXPECT_EQ(cfg.cpuCores, 1u);
    EXPECT_EQ(cfg.cpuL1dSize, 64u * 1024);
    EXPECT_EQ(cfg.cpuL1dWays, 2u);
    EXPECT_EQ(cfg.cpuL2Size, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.cpuL2Ways, 8u);
    EXPECT_EQ(cfg.numSms, 16u);
    EXPECT_EQ(cfg.lanesPerSm, 32u);
    EXPECT_EQ(cfg.gpuL1Size, 16u * 1024);
    EXPECT_EQ(cfg.gpuL2Size, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.gpuL2Ways, 16u);
    EXPECT_EQ(cfg.gpuL2Slices, 4u);
    EXPECT_EQ(cfg.memBytes, 2ull * 1024 * 1024 * 1024);
    EXPECT_EQ(cfg.dram.ranks, 2u);
    EXPECT_EQ(cfg.dram.banksPerRank, 8u);
}

TEST(SystemConfig, TablePrintContainsKeyRows)
{
    std::ostringstream os;
    SystemConfig::paper(CoherenceMode::kDirectStore).printTable(os);
    const std::string t = os.str();
    EXPECT_NE(t.find("DirectStore"), std::string::npos);
    EXPECT_NE(t.find("64KB, 2 ways"), std::string::npos);
    EXPECT_NE(t.find("16 - 32 lanes per SM @ 1.4GHz"), std::string::npos);
    EXPECT_NE(t.find("2 ranks, 8 banks @ 1GHz"), std::string::npos);
}

TEST(System, AllocationPolicyFollowsMode)
{
    SystemConfig ccsm = SystemConfig::paper(CoherenceMode::kCcsm);
    ccsm.numSms = 1;
    System sysCcsm(ccsm);
    EXPECT_FALSE(inDsRegion(sysCcsm.allocateArray(1024, true)));
    EXPECT_FALSE(inDsRegion(sysCcsm.allocateArray(1024, false)));

    SystemConfig ds = SystemConfig::paper(CoherenceMode::kDirectStore);
    ds.numSms = 1;
    System sysDs(ds);
    EXPECT_TRUE(inDsRegion(sysDs.allocateArray(1024, true)));
    EXPECT_FALSE(inDsRegion(sysDs.allocateArray(1024, false)));
}

TEST(System, SliceInterleavingCoversAllSlices)
{
    SystemConfig cfg = SystemConfig::paper(CoherenceMode::kCcsm);
    cfg.numSms = 1;
    System sys(cfg);
    std::vector<int> hits(cfg.gpuL2Slices, 0);
    for (Addr line = 0; line < 64; ++line) {
        const NodeId node = sys.sliceNodeOf(line * kLineSize);
        ASSERT_GE(node, System::kFirstSliceNode);
        ASSERT_LT(node, System::kFirstSliceNode + cfg.gpuL2Slices);
        ++hits[node - System::kFirstSliceNode];
    }
    for (const int h : hits)
        EXPECT_EQ(h, 16);
}

TEST(System, FreshSystemMetricsAreZero)
{
    SystemConfig cfg = SystemConfig::paper(CoherenceMode::kCcsm);
    cfg.numSms = 1;
    System sys(cfg);
    const RunMetrics m = sys.metrics();
    EXPECT_EQ(m.gpuL2Accesses, 0u);
    EXPECT_EQ(m.gpuL2Misses, 0u);
    EXPECT_EQ(m.checkFailures, 0u);
    EXPECT_EQ(m.ticks, 0u);
}

TEST(System, InvariantCheckerPassesOnFreshSystem)
{
    SystemConfig cfg = SystemConfig::paper(CoherenceMode::kCcsm);
    cfg.numSms = 1;
    System sys(cfg);
    EXPECT_TRUE(sys.checkCoherenceInvariants().empty());
}

TEST(System, StatsRegistryExposesComponentCounters)
{
    SystemConfig cfg = SystemConfig::paper(CoherenceMode::kCcsm);
    cfg.numSms = 2;
    System sys(cfg);
    EXPECT_TRUE(sys.stats().hasCounter("dram.ch0.reads"));
    EXPECT_TRUE(sys.stats().hasCounter("cpu.core.loads"));
    EXPECT_TRUE(sys.stats().hasCounter("gpu.l2.slice0.demand_misses"));
    EXPECT_TRUE(sys.stats().hasCounter("gpu.sm0.global_loads"));
    EXPECT_TRUE(sys.stats().hasCounter("net.ds.messages"));
    EXPECT_TRUE(sys.stats().hasCounter("home.transactions"));
}

} // namespace
} // namespace dscoh
