// Fuzzer infrastructure: scenario generation and runs are deterministic,
// the replay format round-trips, the differential harness agrees across
// modes on correct protocol, and shrinking only ever simplifies.
#include <gtest/gtest.h>

#include <string>

#include "check/fuzz.h"

namespace dscoh {
namespace {

TEST(FuzzScenarios, GenerationIsDeterministic)
{
    for (const std::uint64_t seed : {0ull, 7ull, 123ull}) {
        const FuzzScenario a = generateScenario(seed);
        const FuzzScenario b = generateScenario(seed);
        EXPECT_EQ(serializeScenario(a), serializeScenario(b));
    }
    EXPECT_NE(serializeScenario(generateScenario(1)),
              serializeScenario(generateScenario(2)));
}

TEST(FuzzScenarios, RunsAreDeterministic)
{
    const FuzzScenario sc = generateScenario(5);
    for (const CoherenceMode mode :
         {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}) {
        const FuzzReport a = runScenario(sc, mode);
        const FuzzReport b = runScenario(sc, mode);
        EXPECT_EQ(a.completed, b.completed);
        EXPECT_EQ(a.ticks, b.ticks);
        EXPECT_EQ(a.outWords, b.outWords);
        EXPECT_EQ(a.violations, b.violations);
    }
}

TEST(FuzzScenarios, TieBreakShuffleChangesScheduleNotResults)
{
    // Perturbing event-queue tie-breaks is the whole point of the fuzzer's
    // schedule exploration: timing may move, results may not.
    FuzzScenario sc = generateScenario(8);
    sc.tieBreakSeed = 0;
    const FuzzReport base = runScenario(sc, CoherenceMode::kDirectStore);
    ASSERT_TRUE(base.completed);
    bool anyScheduleMoved = false;
    for (const std::uint64_t tie : {0x1111ull, 0xabcdefull}) {
        sc.tieBreakSeed = tie;
        const FuzzReport r = runScenario(sc, CoherenceMode::kDirectStore);
        EXPECT_TRUE(r.completed);
        EXPECT_TRUE(r.violations.empty());
        EXPECT_EQ(r.outWords, base.outWords);
        anyScheduleMoved |= r.ticks != base.ticks;
    }
    // Not guaranteed for any single seed, but across two perturbations of
    // a contended scenario a fully rigid schedule would be suspicious.
    static_cast<void>(anyScheduleMoved);
}

TEST(FuzzScenarios, SerializeParsesBackIdentically)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        FuzzScenario sc = generateScenario(seed);
        sc.bug = seed % 2 == 0 ? InjectedBug::kNone
                               : InjectedBug::kSkipSnoopInvalidate;
        const std::string text = serializeScenario(sc);
        FuzzScenario back;
        std::string error;
        ASSERT_TRUE(parseScenario(text, back, error)) << error;
        EXPECT_EQ(serializeScenario(back), text);
    }
}

TEST(FuzzScenarios, ParseRejectsMalformedInput)
{
    FuzzScenario out;
    std::string error;
    EXPECT_FALSE(parseScenario("", out, error));
    EXPECT_FALSE(parseScenario("not a scenario\n", out, error));
    // Valid header but no arrays.
    EXPECT_FALSE(parseScenario("# dscoh-fuzz-scenario-v1\nseed 1\n", out,
                               error));
    // Unknown key.
    std::string text = serializeScenario(generateScenario(0));
    EXPECT_FALSE(parseScenario(text + "mystery 4\n", out, error));
}

TEST(FuzzScenarios, DifferentialPassesOnCorrectProtocol)
{
    for (std::uint64_t seed = 100; seed < 110; ++seed) {
        const DifferentialReport d = runDifferential(generateScenario(seed));
        EXPECT_FALSE(d.failed()) << "seed " << seed;
        EXPECT_FALSE(d.ccsm.outWords.empty());
        EXPECT_EQ(d.ccsm.outWords, d.directStore.outWords);
    }
}

TEST(FuzzScenarios, ShrinkOnlySimplifies)
{
    FuzzScenario sc = generateScenario(6);
    sc.bug = InjectedBug::kDropWbAck;
    // Use a coarse predicate so this test does not depend on which seeds
    // trigger the planted bug: "still has the bug field set" is monotone
    // under every shrinking transformation.
    const auto stillFails = [](const FuzzScenario& c) {
        return c.bug == InjectedBug::kDropWbAck;
    };
    const FuzzScenario minimal = shrinkScenario(sc, stillFails, 64);
    EXPECT_LE(minimal.arrays.size(), sc.arrays.size());
    EXPECT_LE(minimal.phases, sc.phases);
    EXPECT_LE(minimal.blocks, sc.blocks);
    EXPECT_LE(minimal.threadsPerBlock, sc.threadsPerBlock);
    EXPECT_EQ(minimal.phases, 1u);
    EXPECT_EQ(minimal.arrays.size(), 1u);
    EXPECT_EQ(minimal.bug, InjectedBug::kDropWbAck);
}

TEST(FuzzScenarios, ScenarioConfigMapsGeometry)
{
    const FuzzScenario sc = generateScenario(4);
    const SystemConfig cfg = scenarioConfig(sc, CoherenceMode::kDirectStore);
    EXPECT_EQ(cfg.mode, CoherenceMode::kDirectStore);
    EXPECT_EQ(cfg.gpuL2Slices, sc.slices);
    EXPECT_EQ(cfg.numSms, sc.sms);
    EXPECT_EQ(cfg.injectBug, sc.bug);
    EXPECT_EQ(cfg.eventTieBreakSeed, sc.tieBreakSeed);
}

} // namespace
} // namespace dscoh
