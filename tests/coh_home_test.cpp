// Directed tests of the home controller: per-line serialization, the owner
// registry (stale-writeback filtering), exclusive grants, and quiescence
// bookkeeping. Uses the same two-agent harness as coh_protocol_test but
// observes the home side.
#include <gtest/gtest.h>

#include <memory>

#include "coherence/cache_agent.h"
#include "coherence/home_controller.h"
#include "coherence/home_map.h"
#include "mem/dram.h"
#include "net/network.h"
#include "sim/sim_context.h"

namespace dscoh {
namespace {

constexpr NodeId kAgentA = 0;
constexpr NodeId kAgentB = 1;
constexpr NodeId kHome = 2;

struct HomeFixture : ::testing::Test {
    SimContext ctx;
    EventQueue& queue = ctx.queue;
    BackingStore store{1 << 20};
    Dram dram{"dram", ctx, store};
    Network req{"req", ctx, NetworkParams{10, 32}};
    Network fwd{"fwd", ctx, NetworkParams{10, 32}};
    Network resp{"resp", ctx, NetworkParams{10, 32}};
    StatRegistry stats;

    std::unique_ptr<HomeController> home;
    std::unique_ptr<CacheAgent> a;
    std::unique_ptr<CacheAgent> b;

    void SetUp() override
    {
        HomeController::Params hp;
        hp.self = kHome;
        hp.requestNet = &req;
        hp.forwardNet = &fwd;
        hp.responseNet = &resp;
        hp.dram = &dram;
        hp.store = &store;
        hp.peersOf = [](Addr) { return std::vector<NodeId>{kAgentA, kAgentB}; };
        home = std::make_unique<HomeController>("home", ctx, std::move(hp));

        CacheAgent::Params p;
        p.geometry.sizeBytes = 1024; // 4 sets x 2 ways: evictions are easy
        p.geometry.ways = 2;
        p.mshrs = 8;
        p.writebackEntries = 4;
        p.home = kHome;
        p.requestNet = &req;
        p.forwardNet = &fwd;
        p.responseNet = &resp;
        p.self = kAgentA;
        a = std::make_unique<CacheAgent>("agentA", ctx, p);
        p.self = kAgentB;
        b = std::make_unique<CacheAgent>("agentB", ctx, p);

        req.connect(kHome, [this](const Message& m) { home->handleRequest(m); });
        resp.connect(kHome, [this](const Message& m) { home->handleResponse(m); });
        fwd.connect(kAgentA, [this](const Message& m) { a->handleForward(m); });
        resp.connect(kAgentA, [this](const Message& m) { a->handleResponse(m); });
        fwd.connect(kAgentB, [this](const Message& m) { b->handleForward(m); });
        resp.connect(kAgentB, [this](const Message& m) { b->handleResponse(m); });
        home->regStats(stats);
    }

    void store8(CacheAgent& agent, Addr addr, std::uint64_t value)
    {
        agent.access(addr, true, [addr, value](CacheAgent::Line& line) {
            line.data.write(lineOffset(addr), value, 8);
        });
    }
};

TEST_F(HomeFixture, OwnerRegistryTracksGetX)
{
    EXPECT_EQ(home->registeredOwner(0x100), kInvalidNode);
    store8(*a, 0x100, 1);
    queue.run();
    EXPECT_EQ(home->registeredOwner(0x100), kAgentA);
    store8(*b, 0x100, 2);
    queue.run();
    EXPECT_EQ(home->registeredOwner(0x100), kAgentB);
}

TEST_F(HomeFixture, OwnerClearsOnAcceptedWriteback)
{
    store8(*a, 0x0, 7);
    queue.run();
    // Conflict-fill the set to evict line 0 (4 sets -> stride 4 lines).
    const Addr stride = 4 * kLineSize;
    store8(*a, stride, 8);
    store8(*a, 2 * stride, 9);
    queue.run();
    EXPECT_EQ(stats.counter("home.puts_accepted"), 1u);
    // One of {0x0, stride} was evicted; its owner entry must be cleared.
    const bool cleared = home->registeredOwner(0x0) == kInvalidNode ||
                         home->registeredOwner(stride) == kInvalidNode;
    EXPECT_TRUE(cleared);
    EXPECT_TRUE(home->quiescent());
}

TEST_F(HomeFixture, StaleWritebackIsDroppedNotWritten)
{
    // a owns the line dirty, then evicts while b concurrently takes
    // ownership: whichever Put loses the race at home must be dropped and
    // memory must end consistent with b's newer data.
    const Addr stride = 4 * kLineSize;
    store8(*a, 0x0, 0xaaaa);
    queue.run();
    // Trigger a's eviction of 0x0 and b's GetX at the same time.
    store8(*a, stride, 1);
    store8(*a, 2 * stride, 2);
    store8(*b, 0x0, 0xbbbb);
    queue.run();
    EXPECT_TRUE(home->quiescent());
    EXPECT_EQ(b->stateOf(0x0), CohState::kMM);
    // Drain b's dirty copy through a forced eviction and check memory.
    store8(*b, stride, 3);
    store8(*b, 2 * stride, 4);
    store8(*b, 3 * stride, 5);
    queue.run();
    // Wherever the line ended up, a fresh read must see 0xbbbb.
    std::uint64_t seen = 0;
    a->access(0x0, false, [&seen](CacheAgent::Line& line) {
        seen = line.data.read(0, 8);
    });
    queue.run();
    EXPECT_EQ(seen, 0xbbbbu);
}

TEST_F(HomeFixture, PerLineSerializationQueuesConcurrentRequests)
{
    for (int i = 0; i < 6; ++i) {
        auto& agent = i % 2 == 0 ? *a : *b;
        store8(agent, 0x200, static_cast<std::uint64_t>(i));
    }
    queue.run();
    EXPECT_GT(stats.counter("home.queued_requests"), 0u)
        << "same-line requests must serialize through the busy queue";
    EXPECT_TRUE(home->quiescent());
}

TEST_F(HomeFixture, MemoryDataOnlyWhenNoCacheSupplies)
{
    // Cold read: memory supplies. Second agent's read: owner supplies and
    // home must NOT send a second (stale) data message.
    std::uint64_t v1 = 0;
    a->access(0x300, false, [&v1](CacheAgent::Line& l) { v1 = l.data.read(0, 8); });
    queue.run();
    EXPECT_EQ(stats.counter("home.mem_data_sent"), 1u);
    std::uint64_t v2 = 0;
    b->access(0x300, false, [&v2](CacheAgent::Line& l) { v2 = l.data.read(0, 8); });
    queue.run();
    EXPECT_EQ(stats.counter("home.mem_data_sent"), 1u)
        << "the M-state owner supplied; memory data must be suppressed";
}

TEST_F(HomeFixture, ExclusiveGrantOnlyWhenNoSharer)
{
    a->access(0x400, false, [](CacheAgent::Line&) {});
    queue.run();
    EXPECT_EQ(a->stateOf(0x400), CohState::kM) << "cold read earns M";
    b->access(0x400, false, [](CacheAgent::Line&) {});
    queue.run();
    EXPECT_EQ(b->stateOf(0x400), CohState::kS)
        << "second reader must not be granted exclusivity";
}

TEST_F(HomeFixture, SnoopCountsMatchBroadcastSet)
{
    a->access(0x500, false, [](CacheAgent::Line&) {});
    queue.run();
    // One other agent in the broadcast set -> exactly one snoop.
    EXPECT_EQ(stats.counter("home.snoops_sent"), 1u);
    EXPECT_EQ(stats.counter("home.transactions"), 1u);
}

TEST(HomeMapPolicies, SingleShardHomesEverythingAtZero)
{
    for (const ShardPolicy p :
         {ShardPolicy::kPage, ShardPolicy::kLine, ShardPolicy::kRange}) {
        const HomeMap map(1, p);
        EXPECT_EQ(map.homeOf(0), 0u);
        EXPECT_EQ(map.homeOf(0xdead'beef), 0u);
    }
    // shards == 0 degenerates to the single-GPU map instead of dividing
    // by zero.
    EXPECT_EQ(HomeMap(0, ShardPolicy::kPage).shards(), 1u);
}

TEST(HomeMapPolicies, PageInterleavesByPageNumber)
{
    const HomeMap map(4, ShardPolicy::kPage);
    for (std::uint64_t page = 0; page < 16; ++page) {
        const Addr base = page * kPageSize;
        const std::uint32_t home = map.homeOf(base);
        EXPECT_EQ(home, page % 4);
        // Every line of a page shares its home.
        EXPECT_EQ(map.homeOf(base + kLineSize), home);
        EXPECT_EQ(map.homeOf(base + kPageSize - 1), home);
    }
}

TEST(HomeMapPolicies, LineInterleavesByLineNumber)
{
    const HomeMap map(2, ShardPolicy::kLine);
    EXPECT_EQ(map.homeOf(0), 0u);
    EXPECT_EQ(map.homeOf(kLineSize), 1u);
    EXPECT_EQ(map.homeOf(2 * kLineSize), 0u);
    // Sub-line offsets never change the home.
    EXPECT_EQ(map.homeOf(kLineSize + kLineSize - 1), 1u);
}

TEST(HomeMapPolicies, RangeKeepsContiguousPageRunsTogether)
{
    const HomeMap map(2, ShardPolicy::kRange);
    const Addr rangeBytes = HomeMap::kRangePages * kPageSize;
    EXPECT_EQ(map.homeOf(0), 0u);
    EXPECT_EQ(map.homeOf(rangeBytes - 1), 0u);
    EXPECT_EQ(map.homeOf(rangeBytes), 1u);
    EXPECT_EQ(map.homeOf(2 * rangeBytes - 1), 1u);
    EXPECT_EQ(map.homeOf(2 * rangeBytes), 0u);
}

TEST(HomeMapPolicies, ParseShardPolicyRoundTrips)
{
    ShardPolicy p = ShardPolicy::kPage;
    for (const ShardPolicy want :
         {ShardPolicy::kLine, ShardPolicy::kRange, ShardPolicy::kPage}) {
        EXPECT_TRUE(parseShardPolicy(to_string(want), p));
        EXPECT_EQ(p, want);
    }
    EXPECT_FALSE(parseShardPolicy("diagonal", p));
    EXPECT_EQ(p, ShardPolicy::kPage) << "failed parse must not write";
}

TEST_F(HomeFixture, QuiescentReflectsInFlightTransactions)
{
    EXPECT_TRUE(home->quiescent());
    a->access(0x600, false, [](CacheAgent::Line&) {});
    // Before the event loop runs the transaction cannot have completed.
    queue.runUntil(queue.curTick() + 15);
    EXPECT_FALSE(home->quiescent());
    queue.run();
    EXPECT_TRUE(home->quiescent());
}

} // namespace
} // namespace dscoh
