#include <gtest/gtest.h>

#include "mem/dram.h"
#include "sim/sim_context.h"

namespace dscoh {
namespace {

struct DramFixture : ::testing::Test {
    SimContext ctx;
    EventQueue& queue = ctx.queue;
    BackingStore store{64ull << 20};
    DramTiming timing{};
    Dram dram{"dram", ctx, store, timing};
};

TEST_F(DramFixture, ReadCompletesWithRowMissLatency)
{
    Tick done = 0;
    dram.read(0x1000, [&] { done = queue.curTick(); });
    queue.run();
    // Closed bank: tRCD + tCAS + burst.
    EXPECT_EQ(done, timing.tRcd + timing.tCas + timing.tBurst);
}

TEST_F(DramFixture, RowHitIsFasterThanRowMiss)
{
    Tick first = 0;
    Tick second = 0;
    dram.read(0x0, [&] { first = queue.curTick(); });
    queue.run();
    const Tick start = queue.curTick();
    dram.read(kLineSize * 16, [&] { second = queue.curTick(); }); // same bank+row? ensure same bank:
    queue.run();
    // Same bank requires line % 16 == 0 -> line 16 maps to bank 0, row 0
    // (row covers rowBytes*banks bytes).
    EXPECT_LT(second - start, first) << "open-row access should be faster";
}

TEST_F(DramFixture, WriteIsVisibleAtCompletion)
{
    DataBlock d;
    d.write(0, 0xabcdef, 4);
    bool wrote = false;
    dram.write(0x2000, d, [&] { wrote = true; });
    queue.run();
    EXPECT_TRUE(wrote);
    EXPECT_EQ(store.readLine(0x2000).read(0, 4), 0xabcdefu);
}

TEST_F(DramFixture, MaskedWriteMergesIntoExistingLine)
{
    DataBlock base;
    base.write(0, 0x11111111, 4);
    base.write(4, 0x22222222, 4);
    store.writeLine(0x3000, base);

    DataBlock update;
    update.write(4, 0x33333333, 4);
    ByteMask mask;
    mask.set(4, 4);
    dram.writeMasked(0x3000, update, mask);
    queue.run();
    EXPECT_EQ(store.readLine(0x3000).read(0, 4), 0x11111111u);
    EXPECT_EQ(store.readLine(0x3000).read(4, 4), 0x33333333u);
}

TEST_F(DramFixture, BankConflictsSerialize)
{
    // Two reads to the same bank, different rows: the second waits for the
    // first and pays a precharge.
    Tick firstDone = 0;
    Tick secondDone = 0;
    const Addr sameBankFarRow =
        static_cast<Addr>(timing.ranks) * timing.banksPerRank *
        timing.rowBytes * 4;
    dram.read(0, [&] { firstDone = queue.curTick(); });
    dram.read(sameBankFarRow, [&] { secondDone = queue.curTick(); });
    queue.run();
    EXPECT_GT(secondDone, firstDone);
    EXPECT_GE(secondDone - firstDone, timing.tRp);
}

TEST_F(DramFixture, DifferentBanksOverlap)
{
    Tick firstDone = 0;
    Tick secondDone = 0;
    dram.read(0, [&] { firstDone = queue.curTick(); });
    dram.read(kLineSize, [&] { secondDone = queue.curTick(); }); // next bank
    queue.run();
    // Bank access overlaps; only the shared data bus serializes, so the
    // second finishes one burst later, not a full access later.
    EXPECT_EQ(secondDone - firstDone, timing.tBurst);
}

TEST_F(DramFixture, StatsCountAccesses)
{
    StatRegistry reg;
    dram.regStats(reg);
    dram.read(0, [] {});
    DataBlock d;
    dram.write(0x100, d, nullptr);
    queue.run();
    EXPECT_EQ(reg.counter("dram.reads"), 1u);
    EXPECT_EQ(reg.counter("dram.writes"), 1u);
    EXPECT_EQ(reg.counter("dram.row_hits") + reg.counter("dram.row_misses"), 2u);
}

} // namespace
} // namespace dscoh
