#include <gtest/gtest.h>

#include "mem/mshr.h"

namespace dscoh {
namespace {

struct Target {
    int id;
};

TEST(Mshr, AllocateFindRelease)
{
    MshrFile<Target> mshr(4);
    EXPECT_EQ(mshr.find(0x1000), nullptr);
    auto& entry = mshr.allocate(0x1000 + 12); // line-aligned internally
    entry.targets.push_back({1});
    EXPECT_EQ(entry.base, 0x1000u);

    auto* found = mshr.find(0x1000 + 100);
    ASSERT_NE(found, nullptr);
    found->targets.push_back({2});

    const auto targets = mshr.release(0x1000);
    EXPECT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0].id, 1);
    EXPECT_EQ(targets[1].id, 2);
    EXPECT_EQ(mshr.find(0x1000), nullptr);
}

TEST(Mshr, CapacityTracksFull)
{
    MshrFile<Target> mshr(2);
    EXPECT_FALSE(mshr.full());
    mshr.allocate(0x0);
    mshr.allocate(0x80);
    EXPECT_TRUE(mshr.full());
    EXPECT_EQ(mshr.size(), 2u);
    mshr.release(0x0);
    EXPECT_FALSE(mshr.full());
}

TEST(Mshr, DistinctLinesAreIndependent)
{
    MshrFile<Target> mshr(8);
    mshr.allocate(0x0).targets.push_back({10});
    mshr.allocate(0x80).targets.push_back({20});
    EXPECT_EQ(mshr.find(0x0)->targets[0].id, 10);
    EXPECT_EQ(mshr.find(0x80)->targets[0].id, 20);
}

} // namespace
} // namespace dscoh
