// Fault-injection layer: the seeded FaultInjector's decision stream, its
// integration into Network::send (drop / duplicate / corrupt / delay /
// link-down), determinism and snapshot round-trips of the fault schedule,
// config-hash coverage of the fault fields, and the zero-cost-when-disabled
// contract (no injector => no fault counters anywhere in the registry).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/config_io.h"
#include "core/system.h"
#include "fault/fault_injector.h"
#include "net/network.h"
#include "sim/sim_context.h"
#include "snap/serializer.h"

namespace dscoh {
namespace {

struct FaultNetFixture : ::testing::Test {
    SimContext ctx;
    EventQueue& queue = ctx.queue;
    NetworkParams params{20, 32};
    Network net{"net", ctx, params};

    std::vector<Message> receivedAt1;
    std::vector<Tick> arrivalTicks;

    void SetUp() override
    {
        net.connect(0, [](const Message&) {});
        net.connect(1, [this](const Message& m) {
            receivedAt1.push_back(m);
            arrivalTicks.push_back(queue.curTick());
        });
    }

    Message mkMsg(MsgType t, NodeId src, NodeId dst, Addr addr = 0x80)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        m.addr = addr;
        return m;
    }
};

TEST_F(FaultNetFixture, CertainDropNeverDelivers)
{
    FaultConfig fc;
    fc.dropPpm = 1'000'000;
    FaultInjector inj("net.fault", ctx, fc);
    net.attachFaultInjector(&inj);

    StatRegistry reg;
    net.regStats(reg);
    inj.regStats(reg);

    net.send(mkMsg(MsgType::kDsPutX, 0, 1));
    net.send(mkMsg(MsgType::kDsPutX, 0, 1));
    queue.run();

    EXPECT_TRUE(receivedAt1.empty());
    EXPECT_EQ(inj.drops(), 2u);
    // A dropped message never reaches the wire accounting.
    EXPECT_EQ(net.messagesSent(), 0u);
    EXPECT_EQ(reg.counter("net.fault.drops"), 2u);
}

TEST_F(FaultNetFixture, LinkDownWindowDropsDeterministically)
{
    FaultConfig fc;
    fc.linkDownFrom = 100;
    fc.linkDownUntil = 200;
    FaultInjector inj("net.fault", ctx, fc);
    net.attachFaultInjector(&inj);

    // Before, inside, and after the outage window.
    net.send(mkMsg(MsgType::kDsPutX, 0, 1, 0x100));
    queue.schedule(150, [this] {
        net.send(mkMsg(MsgType::kDsPutX, 0, 1, 0x200));
    });
    queue.schedule(250, [this] {
        net.send(mkMsg(MsgType::kDsPutX, 0, 1, 0x300));
    });
    queue.run();

    ASSERT_EQ(receivedAt1.size(), 2u);
    EXPECT_EQ(receivedAt1[0].addr, 0x100u);
    EXPECT_EQ(receivedAt1[1].addr, 0x300u);
    EXPECT_EQ(inj.linkDownDrops(), 1u);
    EXPECT_FALSE(inj.linkDownNow(50));
    EXPECT_TRUE(inj.linkDownNow(150));
    EXPECT_FALSE(inj.linkDownNow(200));
}

TEST_F(FaultNetFixture, DuplicateDeliversTwiceAndPreservesFifo)
{
    FaultConfig fc;
    fc.dupPpm = 1'000'000;
    FaultInjector inj("net.fault", ctx, fc);
    net.attachFaultInjector(&inj);

    for (std::uint64_t i = 0; i < 4; ++i) {
        Message m = mkMsg(MsgType::kDsPutX, 0, 1);
        m.txn = i + 1;
        net.send(m);
    }
    queue.run();

    ASSERT_EQ(receivedAt1.size(), 8u);
    EXPECT_EQ(inj.duplicates(), 4u);
    // Wire echo: each original is immediately followed by its copy, and the
    // per-(src,dst) order of distinct messages is untouched.
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(receivedAt1[i].txn, i / 2 + 1);
    for (std::size_t i = 1; i < 8; ++i)
        EXPECT_GT(arrivalTicks[i], arrivalTicks[i - 1]);
}

TEST_F(FaultNetFixture, CorruptionIsDetectableByChecksum)
{
    FaultConfig fc;
    fc.corruptPpm = 1'000'000;
    FaultInjector inj("net.fault", ctx, fc);
    net.attachFaultInjector(&inj);

    Message m = mkMsg(MsgType::kDsPutX, 0, 1, 0x1200);
    for (std::uint32_t i = 0; i < kLineSize; i += 8)
        m.data.write(i, 0xabcd0000ull + i, 8);
    m.mask.set(0, kLineSize);
    m.hasData = true;
    net.send(m);
    queue.run();

    ASSERT_EQ(receivedAt1.size(), 1u);
    EXPECT_EQ(inj.corruptions(), 1u);
    // send() stamped the checksum before the flip, so the receiver can tell.
    EXPECT_NE(receivedAt1[0].checksum, messageChecksum(receivedAt1[0]));
}

TEST_F(FaultNetFixture, DelayFaultDefersButNeverReorders)
{
    FaultConfig fc;
    fc.delayPpm = 1'000'000;
    fc.delayTicks = 500;
    FaultInjector inj("net.fault", ctx, fc);
    net.attachFaultInjector(&inj);

    for (std::uint64_t i = 0; i < 8; ++i) {
        Message m = mkMsg(MsgType::kDsPutX, 0, 1);
        m.txn = i;
        net.send(m);
    }
    queue.run();

    ASSERT_EQ(receivedAt1.size(), 8u);
    EXPECT_EQ(inj.delays(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(receivedAt1[i].txn, i);
    // The first arrival carries its extra delay on top of hop + 5 ticks of
    // serialization for a 136-byte data message.
    EXPECT_GT(arrivalTicks[0], params.hopLatency + 5);
}

TEST_F(FaultNetFixture, TickWindowGatesProbabilisticFaults)
{
    FaultConfig fc;
    fc.dropPpm = 1'000'000;
    fc.windowStart = 100;
    fc.windowEnd = 200;
    FaultInjector inj("net.fault", ctx, fc);
    net.attachFaultInjector(&inj);

    net.send(mkMsg(MsgType::kDsPutX, 0, 1, 0x100)); // tick 0: outside
    queue.schedule(150, [this] {
        net.send(mkMsg(MsgType::kDsPutX, 0, 1, 0x200)); // inside
    });
    queue.schedule(300, [this] {
        net.send(mkMsg(MsgType::kDsPutX, 0, 1, 0x300)); // outside again
    });
    queue.run();

    ASSERT_EQ(receivedAt1.size(), 2u);
    EXPECT_EQ(receivedAt1[0].addr, 0x100u);
    EXPECT_EQ(receivedAt1[1].addr, 0x300u);
}

TEST_F(FaultNetFixture, SrcDstTargetingSparesOtherPairs)
{
    net.connect(2, [](const Message&) {});
    FaultConfig fc;
    fc.dropPpm = 1'000'000;
    fc.srcFilter = 0;
    fc.dstFilter = 2;
    FaultInjector inj("net.fault", ctx, fc);
    net.attachFaultInjector(&inj);

    net.send(mkMsg(MsgType::kDsPutX, 0, 1)); // (0,1): spared
    net.send(mkMsg(MsgType::kDsPutX, 0, 2)); // (0,2): dropped
    queue.run();

    EXPECT_EQ(receivedAt1.size(), 1u);
    EXPECT_EQ(inj.drops(), 1u);
}

TEST(FaultInjector, SameSeedSameSchedule)
{
    SimContext ctx;
    FaultConfig fc;
    fc.dropPpm = 300'000;
    fc.dupPpm = 200'000;
    fc.seed = 42;

    FaultInjector a("a", ctx, fc);
    FaultInjector b("b", ctx, fc);
    for (int i = 0; i < 500; ++i) {
        const FaultDecision da = a.decide(0, 1, 1000);
        const FaultDecision db = b.decide(0, 1, 1000);
        EXPECT_EQ(da.drop, db.drop);
        EXPECT_EQ(da.duplicate, db.duplicate);
    }
    EXPECT_EQ(a.drops(), b.drops());
    EXPECT_GT(a.drops(), 0u);
    EXPECT_LT(a.drops(), 500u);

    // A per-network seed salt decorrelates the streams.
    FaultInjector salted("c", ctx, fc, /*seedSalt=*/3);
    std::uint64_t diverged = 0;
    FaultInjector fresh("d", ctx, fc);
    for (int i = 0; i < 500; ++i) {
        if (salted.decide(0, 1, 1000).drop != fresh.decide(0, 1, 1000).drop)
            ++diverged;
    }
    EXPECT_GT(diverged, 0u);
}

TEST(FaultInjector, RngStreamSurvivesSnapshot)
{
    SimContext ctx;
    FaultConfig fc;
    fc.dropPpm = 400'000;
    fc.corruptPpm = 100'000;

    FaultInjector a("f", ctx, fc);
    for (int i = 0; i < 100; ++i)
        a.decide(0, 1, 50);

    const std::string path = testing::TempDir() + "fault_rng.snap";
    {
        snap::SnapWriter w(/*tick=*/50, /*configHash=*/0);
        w.beginSection("f");
        a.snapSave(w);
        w.endSection();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << w.finish();
    }

    // Continue the original stream, then replay it from the snapshot.
    std::vector<FaultDecision> cont;
    for (int i = 0; i < 100; ++i)
        cont.push_back(a.decide(0, 1, 50));

    FaultInjector b("f", ctx, fc);
    snap::SnapReader r(path);
    r.openSection("f");
    b.snapRestore(r);
    r.closeSection();
    for (int i = 0; i < 100; ++i) {
        const FaultDecision d = b.decide(0, 1, 50);
        EXPECT_EQ(d.drop, cont[static_cast<std::size_t>(i)].drop);
        EXPECT_EQ(d.corrupt, cont[static_cast<std::size_t>(i)].corrupt);
    }
    std::remove(path.c_str());
}

TEST(FaultConfigHash, EveryFaultFieldIsHashed)
{
    const SystemConfig base;
    const std::uint64_t h0 = configHashOf(base);

    const auto differs = [&](auto&& mutate) {
        SystemConfig c = base;
        mutate(c);
        return configHashOf(c) != h0;
    };
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.dropPpm = 1; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.dupPpm = 1; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.corruptPpm = 1; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.delayPpm = 1; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.delayTicks = 99; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.windowStart = 7; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.windowEnd = 7; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.srcFilter = 1; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.dstFilter = 1; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.linkDownFrom = 5; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.linkDownUntil = 5; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faults.seed = 123; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.faultNets = kFaultNetGpu; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.dsAckTimeout = 1000; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.dsMaxRetries = 9; }));
    EXPECT_TRUE(differs([](SystemConfig& c) { c.dsInFlightMax = 3; }));
}

TEST(FaultZeroCost, DisabledFaultsRegisterNoCounters)
{
    // The acceptance contract: with faults off and hardening off, the stat
    // registry's name set is exactly the pre-fault-layer one — no injector
    // counters, no hardening counters, no DsNack message counter.
    System sys(SystemConfig::paper(CoherenceMode::kDirectStore));
    for (const std::string& name : sys.stats().counterNames()) {
        EXPECT_EQ(name.find("fault"), std::string::npos) << name;
        EXPECT_EQ(name.find("ds_retries"), std::string::npos) << name;
        EXPECT_EQ(name.find("ds_timeouts"), std::string::npos) << name;
        EXPECT_EQ(name.find("ds_fallback"), std::string::npos) << name;
        EXPECT_EQ(name.find("ds_duplicates_squashed"), std::string::npos)
            << name;
        EXPECT_EQ(name.find("ds_nacks"), std::string::npos) << name;
        EXPECT_EQ(name.find("DsNack"), std::string::npos) << name;
    }
}

TEST(FaultZeroCost, EnabledFaultsRegisterTheCounters)
{
    SystemConfig cfg = SystemConfig::paper(CoherenceMode::kDirectStore);
    cfg.faults.dropPpm = 10'000;
    cfg.dsAckTimeout = 4000;
    System sys(cfg);
    ASSERT_NE(sys.dsFaultInjector(), nullptr);
    // Presence probes: counter() throws on unknown names.
    EXPECT_EQ(sys.stats().counter("net.ds.fault.drops"), 0u);
    EXPECT_EQ(sys.stats().counter("cpu.core.ds_retries"), 0u);
    EXPECT_EQ(sys.stats().counter("cpu.core.ds_fallback_stores"), 0u);
    EXPECT_EQ(sys.stats().counter("gpu.l2.slice0.ds_duplicates_squashed"),
              0u);
    EXPECT_EQ(sys.stats().counter("gpu.l2.slice0.ds_nacks"), 0u);
}

} // namespace
} // namespace dscoh
