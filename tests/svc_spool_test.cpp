// Spool-intake edge cases: files a slow or crashed writer leaves behind.
// A complete drop is admitted exactly once per appearance; an incomplete
// one (empty, or missing its terminal newline) gets a grace period to
// finish growing and is then quarantined as .rejected + .error; transient
// rejections (backpressure) leave the file for a later scan instead of
// quarantining a good request.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "svc/request.h"
#include "svc/service.h"

namespace dscoh::svc {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
public:
    explicit ScratchDir(const std::string& name)
        : path_(testing::TempDir() + name)
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void spit(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
}

ServiceOptions spoolOpts(const ScratchDir& dir)
{
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    opts.spoolQuarantineScans = 1; // tight grace period for test speed
    return opts;
}

std::string goodRequestText()
{
    SweepRequest r;
    r.tenant = "spooler";
    r.codes = {"VA"};
    r.modes = {CoherenceMode::kCcsm};
    return renderRequestJson(r) + "\n";
}

TEST(SpoolIntake, ZeroByteFileAgesOutToQuarantine)
{
    ScratchDir dir("svc_spool_zero");
    SweepService svc(spoolOpts(dir));
    const std::string path = dir.path() + "/spool/empty.json";
    spit(path, "");

    // One scan of grace (the writer may still be coming), then quarantine.
    EXPECT_EQ(svc.scanSpool(), 0u);
    EXPECT_TRUE(fs::exists(path));
    EXPECT_EQ(svc.scanSpool(), 0u);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".rejected"));
    EXPECT_EQ(slurp(path + ".error"), "empty file\n");
}

TEST(SpoolIntake, MissingTerminalNewlineAgesOutToQuarantine)
{
    ScratchDir dir("svc_spool_noeol");
    SweepService svc(spoolOpts(dir));
    const std::string path = dir.path() + "/spool/torn.json";
    const std::string text = goodRequestText();
    spit(path, text.substr(0, text.size() - 1)); // perfect, minus the '\n'

    EXPECT_EQ(svc.scanSpool(), 0u);
    EXPECT_EQ(svc.scanSpool(), 0u);
    EXPECT_TRUE(fs::exists(path + ".rejected"));
    EXPECT_EQ(slurp(path + ".error"),
              "incomplete submission (no terminal newline)\n");
}

TEST(SpoolIntake, FileThatFinishesGrowingIsAdmittedNotQuarantined)
{
    ScratchDir dir("svc_spool_grow");
    SweepService svc(spoolOpts(dir));
    const std::string path = dir.path() + "/spool/slow.json";
    const std::string text = goodRequestText();
    spit(path, text.substr(0, 10));

    EXPECT_EQ(svc.scanSpool(), 0u);
    // The writer made progress: the size change restarts the aging clock.
    spit(path, text.substr(0, text.size() - 1));
    EXPECT_EQ(svc.scanSpool(), 0u);
    // And finished: the complete file is admitted on the next scan.
    spit(path, text);
    EXPECT_EQ(svc.scanSpool(), 1u);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".rejected"));
    svc.drain();
}

TEST(SpoolIntake, SameBasenameIsAdmittedAgainAfterConsumption)
{
    ScratchDir dir("svc_spool_dup");
    SweepService svc(spoolOpts(dir));
    const std::string path = dir.path() + "/spool/runme.json";

    spit(path, goodRequestText());
    EXPECT_EQ(svc.scanSpool(), 1u);
    EXPECT_FALSE(fs::exists(path));

    // A fresh drop under the same name is a new request, not a replay.
    spit(path, goodRequestText());
    EXPECT_EQ(svc.scanSpool(), 1u);
    svc.drain();

    std::string status, error;
    EXPECT_TRUE(svc.statusJson("r000001", &status, &error)) << error;
    EXPECT_TRUE(svc.statusJson("r000002", &status, &error)) << error;
}

TEST(SpoolIntake, UnparseableRequestRoundTripsThroughRejectedAndError)
{
    ScratchDir dir("svc_spool_bad");
    SweepService svc(spoolOpts(dir));
    const std::string path = dir.path() + "/spool/nope.json";
    spit(path, "{\"codes\": [\"NOPE\"]}\n");

    EXPECT_EQ(svc.scanSpool(), 0u);
    EXPECT_TRUE(fs::exists(path + ".rejected"));
    // The note names the precise reason, so the submitter can fix and
    // re-drop; the .rejected file preserves the original bytes.
    EXPECT_NE(slurp(path + ".error").find("NOPE"), std::string::npos);
    EXPECT_EQ(slurp(path + ".rejected"), "{\"codes\": [\"NOPE\"]}\n");
}

TEST(SpoolIntake, BackpressureLeavesTheFileForALaterScan)
{
    ScratchDir dir("svc_spool_shed");
    ServiceOptions opts = spoolOpts(dir);
    opts.maxQueuedJobs = 1; // any multi-job request is shed
    SweepService svc(opts);

    SweepRequest big;
    big.tenant = "spooler";
    big.codes = {"VA", "BL"};
    big.modes = {CoherenceMode::kCcsm};
    const std::string path = dir.path() + "/spool/big.json";
    spit(path, renderRequestJson(big) + "\n");

    // Shed is transient: the request is valid, the queue is just full —
    // repeated scans neither consume nor quarantine the file.
    EXPECT_EQ(svc.scanSpool(), 0u);
    EXPECT_EQ(svc.scanSpool(), 0u);
    EXPECT_EQ(svc.scanSpool(), 0u);
    EXPECT_TRUE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".rejected"));
}

TEST(SpoolIntake, MissingQuarantineNoteIsSelfHealed)
{
    ScratchDir dir("svc_spool_heal");
    SweepService svc(spoolOpts(dir));
    // A crash between the quarantine rename and its .error note leaves a
    // .rejected with no explanation; the next scan repairs it.
    const std::string path = dir.path() + "/spool/orphan.json";
    spit(path + ".rejected", "half a requ");

    EXPECT_EQ(svc.scanSpool(), 0u);
    EXPECT_EQ(slurp(path + ".error"),
              "quarantined (reason lost to a crash)\n");

    // An existing note is left alone.
    spit(path + ".error", "original reason\n");
    EXPECT_EQ(svc.scanSpool(), 0u);
    EXPECT_EQ(slurp(path + ".error"), "original reason\n");
}

} // namespace
} // namespace dscoh::svc
