// Edge paths of the CPU core: fence semantics with mixed local/remote
// stores, store-buffer backpressure, RSB partial-coverage loads (the
// uncached-read ordering path), and TLB-walk latency visibility.
#include <gtest/gtest.h>

#include "core/system.h"

namespace dscoh {
namespace {

SystemConfig cfg(CoherenceMode mode)
{
    SystemConfig c = SystemConfig::paper(mode);
    c.numSms = 1;
    return c;
}

Tick run(System& sys, const CpuProgram& prog)
{
    bool done = false;
    sys.runCpuProgram(prog, [&done] { done = true; });
    const Tick t = sys.simulate();
    EXPECT_TRUE(done);
    return t;
}

TEST(CpuCoreEdge, FenceDrainsMixedLocalAndRemoteStores)
{
    System sys(cfg(CoherenceMode::kDirectStore));
    const Addr localArr = sys.allocateArray(4096, false);
    const Addr remoteArr = sys.allocateArray(4096, true);

    CpuProgram prog;
    for (std::uint32_t i = 0; i < 64; ++i) {
        prog.push_back(cpuStore(localArr + i * 4ull, i, 4));
        prog.push_back(cpuStore(remoteArr + i * 4ull, i * 2ull, 4));
    }
    prog.push_back(cpuFence());
    // After the fence everything is globally performed: checked loads.
    for (std::uint32_t i = 0; i < 64; i += 7) {
        prog.push_back(cpuLoadCheck(localArr + i * 4ull, i, 4));
        prog.push_back(cpuLoadCheck(remoteArr + i * 4ull, i * 2ull, 4));
    }
    run(sys, prog);
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
    EXPECT_GT(sys.cpu().remoteStores(), 0u);
}

TEST(CpuCoreEdge, StoreBufferBackpressureStallsButCompletes)
{
    SystemConfig c = cfg(CoherenceMode::kCcsm);
    c.storeBufferEntries = 2; // tiny buffer: force stalls
    System sys(c);
    const Addr arr = sys.allocateArray(64 * kLineSize, false);

    CpuProgram prog;
    // Every store hits a different line: each needs its own buffer entry.
    for (std::uint32_t i = 0; i < 64; ++i)
        prog.push_back(cpuStore(arr + static_cast<Addr>(i) * kLineSize, i, 4));
    prog.push_back(cpuFence());
    for (std::uint32_t i = 0; i < 64; i += 5)
        prog.push_back(
            cpuLoadCheck(arr + static_cast<Addr>(i) * kLineSize, i, 4));
    run(sys, prog);
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
}

TEST(CpuCoreEdge, PartiallyCoveredUncachedLoadDrainsTheRsbFirst)
{
    System sys(cfg(CoherenceMode::kDirectStore));
    const Addr arr = sys.allocateArray(4096, true);

    CpuProgram prog;
    // One 4-byte store sits in the write-combining buffer; the 4-byte load
    // at a *different* offset of the same line is only partially covered,
    // which must flush the entry and then read through the slice.
    prog.push_back(cpuStore(arr + 0, 0x11, 4));
    prog.push_back(cpuLoadCheck(arr + 8, 0, 4)); // untouched bytes are zero
    prog.push_back(cpuLoadCheck(arr + 0, 0x11, 4));
    run(sys, prog);
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
    EXPECT_GE(sys.stats().counter("cpu.core.uc_reads"), 1u);
}

TEST(CpuCoreEdge, TlbWalksShowUpInTime)
{
    SystemConfig fast = cfg(CoherenceMode::kCcsm);
    fast.tlb.walkLatency = 0;
    SystemConfig slow = cfg(CoherenceMode::kCcsm);
    slow.tlb.walkLatency = 500;

    const auto timeOf = [](SystemConfig c) {
        System sys(c);
        // 16 pages touched once each: 16 walks.
        const Addr arr = sys.allocateArray(16 * kPageSize, false);
        CpuProgram prog;
        for (std::uint32_t p = 0; p < 16; ++p)
            prog.push_back(cpuStore(arr + static_cast<Addr>(p) * kPageSize, p, 4));
        prog.push_back(cpuFence());
        bool done = false;
        sys.runCpuProgram(prog, [&done] { done = true; });
        const Tick t = sys.simulate();
        EXPECT_TRUE(done);
        return t;
    };
    const Tick tFast = timeOf(fast);
    const Tick tSlow = timeOf(slow);
    EXPECT_GE(tSlow, tFast + 16 * 500 - 500)
        << "each first touch of a page pays the walk";
}

TEST(CpuCoreEdge, RemoteStoreSmallSizesCombineCorrectly)
{
    System sys(cfg(CoherenceMode::kDirectStore));
    const Addr arr = sys.allocateArray(kLineSize * 4, true);
    CpuProgram prog;
    // Mixed 1/2/4-byte stores across one line, then verify each byte view.
    prog.push_back(cpuStore(arr + 0, 0xaa, 1));
    prog.push_back(cpuStore(arr + 1, 0xbb, 1));
    prog.push_back(cpuStore(arr + 2, 0xcdef, 2));
    prog.push_back(cpuStore(arr + 4, 0x11223344, 4));
    prog.push_back(cpuFence());
    prog.push_back(cpuLoadCheck(arr + 0, 0xaa, 1));
    prog.push_back(cpuLoadCheck(arr + 1, 0xbb, 1));
    prog.push_back(cpuLoadCheck(arr + 2, 0xcdef, 2));
    prog.push_back(cpuLoadCheck(arr + 4, 0x11223344, 4));
    run(sys, prog);
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
}

TEST(CpuCoreEdge, BackToBackProgramsReuseTheCore)
{
    System sys(cfg(CoherenceMode::kCcsm));
    const Addr arr = sys.allocateArray(1024, false);
    CpuProgram first;
    first.push_back(cpuStore(arr, 1, 4));
    first.push_back(cpuFence());
    CpuProgram second;
    second.push_back(cpuLoadCheck(arr, 1, 4));

    int done = 0;
    sys.runCpuProgram(first, [&] {
        ++done;
        sys.runCpuProgram(second, [&] { ++done; });
    });
    sys.simulate();
    EXPECT_EQ(done, 2);
    EXPECT_TRUE(sys.cpu().idle());
    EXPECT_EQ(sys.cpu().checkFailures(), 0u);
}

} // namespace
} // namespace dscoh
