// Transaction-level latency attribution: the TxnProfiler must attribute
// hop intervals to the right critical-path buckets, keep a deterministic
// top-K, survive snapshot/restore byte-identically, stay inert for span id
// 0 and closed spans, and — end to end — show the direct-store push path
// skipping the directory/DRAM stages the CCSM pull path pays.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "obs/json_lite.h"
#include "obs/trace_session.h"
#include "obs/txn_profiler.h"
#include "snap/serializer.h"
#include "workloads/runner.h"

namespace dscoh {
namespace {

std::size_t bucket(StageBucket b)
{
    return static_cast<std::size_t>(b);
}

std::string profileJson(const TxnProfiler& p)
{
    std::ostringstream os;
    p.writeJson(os);
    return os.str();
}

TEST(TxnProfiler, AttributesIntervalsToTheLaterHopsBucket)
{
    TxnProfiler p;
    const std::uint64_t id = p.begin(TxnKind::kGetS, 0x1000, "req", 100);
    ASSERT_GE(id, 1u);
    p.hop(id, TxnStage::kHomeArrive, "home", 140); // 40 ticks of network
    p.hop(id, TxnStage::kDramDone, "home", 200);   // 60 ticks of dram
    p.end(id, 240);                                // 40 ticks to kDone

    const TxnProfiler::KindStats& ks = p.kindStats(TxnKind::kGetS);
    EXPECT_EQ(ks.count, 1u);
    EXPECT_EQ(ks.stageTicks[bucket(StageBucket::kNetwork)], 40u);
    EXPECT_EQ(ks.stageTicks[bucket(StageBucket::kDram)], 60u);
    EXPECT_EQ(ks.stageTicks[bucket(StageBucket::kInstall)], 40u);
    EXPECT_EQ(ks.stageTicks[bucket(StageBucket::kQueue)], 0u);
    EXPECT_EQ(p.begun(), 1u);
    EXPECT_EQ(p.completed(), 1u);
    EXPECT_EQ(p.openCount(), 0u);
}

TEST(TxnProfiler, IdZeroAndClosedSpansAreNoOps)
{
    TxnProfiler p;
    p.hop(0, TxnStage::kHomeArrive, "home", 10); // unprofiled message
    p.end(0, 20);
    EXPECT_EQ(p.begun(), 0u);
    EXPECT_EQ(p.completed(), 0u);

    const std::uint64_t id = p.begin(TxnKind::kDsPush, 0x40, "cpu", 0);
    p.end(id, 50);
    // A duplicate ack arriving after the span closed must change nothing.
    p.hop(id, TxnStage::kAckArrive, "cpu", 60);
    p.end(id, 70);
    EXPECT_EQ(p.completed(), 1u);
    EXPECT_EQ(p.kindStats(TxnKind::kDsPush).count, 1u);
}

TEST(TxnProfiler, TopKKeepsSlowestSortedByLatencyThenId)
{
    TxnProfiler::Params params;
    params.topK = 2;
    TxnProfiler p(params);
    const std::uint64_t a = p.begin(TxnKind::kGetS, 0x0, "t", 0);
    p.end(a, 10); // latency 10 — evicted
    const std::uint64_t b = p.begin(TxnKind::kGetS, 0x40, "t", 0);
    p.end(b, 30);
    const std::uint64_t c = p.begin(TxnKind::kGetS, 0x80, "t", 0);
    p.end(c, 30); // ties break toward the earlier id

    ASSERT_EQ(p.slowest().size(), 2u);
    EXPECT_EQ(p.slowest()[0].id, b);
    EXPECT_EQ(p.slowest()[1].id, c);
    EXPECT_EQ(p.slowest()[0].latency(), 30u);
}

TEST(TxnProfiler, RegionCountersTrackPushOutcomesAndGpuDemand)
{
    TxnProfiler p; // regionShift 12: one 4 KiB page per counter row
    const Addr page0 = 0x100;
    const std::uint64_t push = p.begin(TxnKind::kDsPush, page0, "cpu", 0);
    p.hop(push, TxnStage::kInstall, "slice", 30);
    p.end(push, 40);
    const std::uint64_t uc = p.begin(TxnKind::kUcRead, page0, "cpu", 50);
    p.end(uc, 90);
    const std::uint64_t pull = p.begin(TxnKind::kGetS, page0, "slice", 100);
    p.end(pull, 160);
    p.noteGpuDemand(page0, true);
    p.noteGpuDemand(page0 + 0x40, false);

    ASSERT_EQ(p.regions().size(), 1u);
    const TxnProfiler::RegionStats& r = p.regions().begin()->second;
    EXPECT_EQ(r.pushes, 1u);
    EXPECT_EQ(r.installs, 1u);
    EXPECT_EQ(r.bypasses, 0u);
    EXPECT_EQ(r.ucReads, 1u);
    EXPECT_EQ(r.pulls, 1u);
    EXPECT_EQ(r.gpuAccesses, 2u);
    EXPECT_EQ(r.gpuMisses, 1u);
    EXPECT_EQ(r.completed, 3u);
    EXPECT_EQ(r.latencyTicks, 40u + 40u + 60u);
}

TEST(TxnProfiler, WriteJsonIsWellFormedAndVersioned)
{
    TxnProfiler p;
    const std::uint64_t id = p.begin(TxnKind::kUpgrade, 0x2000, "cpu", 5);
    p.hop(id, TxnStage::kHomeArrive, "home", 25);
    p.end(id, 45);

    std::string error;
    const jsonlite::ValuePtr doc = jsonlite::parse(profileJson(p), error);
    ASSERT_NE(doc, nullptr) << error;
    const jsonlite::Value* schema = doc->get("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, "dscoh-txnprof-v1");
    const jsonlite::Value* kinds = doc->get("kinds");
    ASSERT_NE(kinds, nullptr);
    EXPECT_EQ(kinds->array.size(), kTxnKindCount);
    ASSERT_NE(doc->get("slowest"), nullptr);
    ASSERT_NE(doc->get("regions"), nullptr);
}

TEST(TxnProfiler, SnapshotRoundTripReproducesTheProfileByteForByte)
{
    TxnProfiler a;
    for (int i = 0; i < 5; ++i) {
        const std::uint64_t id = a.begin(
            TxnKind::kDsPush, static_cast<Addr>(i) * 0x40, "cpu", 10);
        a.hop(id, TxnStage::kSliceArrive, "slice", 20);
        a.hop(id, TxnStage::kInstall, "slice", 25);
        a.end(id, static_cast<Tick>(30 + i));
    }
    const std::string path = testing::TempDir() + "txnprof_roundtrip.snap";
    snap::SnapWriter w(0, 0);
    w.beginSection("obs.txnprof");
    a.snapSave(w);
    w.endSection();
    w.writeFile(path);

    TxnProfiler b;
    snap::SnapReader r(path);
    r.openSection("obs.txnprof");
    b.snapRestore(r);
    r.closeSection();
    std::remove(path.c_str());

    EXPECT_EQ(profileJson(b), profileJson(a));
    // The id counter travels too: the next span gets the same id either way.
    EXPECT_EQ(b.begin(TxnKind::kGetS, 0, "x", 0),
              a.begin(TxnKind::kGetS, 0, "x", 0));
}

TEST(TxnProfiler, SnapshotWithOpenSpansThrows)
{
    TxnProfiler p;
    (void)p.begin(TxnKind::kGetS, 0x0, "t", 0);
    snap::SnapWriter w(0, 0);
    w.beginSection("obs.txnprof");
    EXPECT_THROW(p.snapSave(w), snap::SnapError);
}

TEST(TxnProfiler, EmitsFlowChainsOnlyWhenTheTxnCategoryRecords)
{
    const auto flowTrace = [](std::uint32_t mask) {
        TraceSession trace(mask);
        TxnProfiler p;
        p.attachTrace(&trace);
        const std::uint64_t id = p.begin(TxnKind::kGetX, 0x80, "req", 0);
        p.hop(id, TxnStage::kHomeArrive, "home", 10);
        p.end(id, 20);
        std::ostringstream os;
        trace.writeJson(os);
        return os.str();
    };

    const std::string with =
        flowTrace(1u << static_cast<std::uint32_t>(TraceCat::kTxn));
    EXPECT_NE(with.find("\"ph\": \"s\""), std::string::npos);
    EXPECT_NE(with.find("\"ph\": \"f\""), std::string::npos);
    EXPECT_NE(with.find("\"bp\": \"e\""), std::string::npos);
    EXPECT_NE(with.find("\"cat\": \"txn\""), std::string::npos);

    const std::string without =
        flowTrace(1u << static_cast<std::uint32_t>(TraceCat::kNet));
    EXPECT_EQ(without.find("\"cat\": \"txn\""), std::string::npos);
}

/// Runs @p code with the profiler attached and returns the owning run (the
/// profiler lives in the System).
std::unique_ptr<WorkloadRun> runProfiled(const char* code, CoherenceMode mode)
{
    const Workload& w = WorkloadRegistry::instance().get(code);
    auto run = std::make_unique<WorkloadRun>(w, InputSize::kSmall, mode);
    run->system().enableTxnProfiler();
    run->run();
    return run;
}

TEST(TxnProfilerIntegration, DsPushSkipsTheDirectoryAndDramStagesCcsmPays)
{
    auto ccsm = runProfiled("VA", CoherenceMode::kCcsm);
    auto ds = runProfiled("VA", CoherenceMode::kDirectStore);
    TxnProfiler* pc = ccsm->system().txnProfiler();
    TxnProfiler* pd = ds->system().txnProfiler();
    ASSERT_NE(pc, nullptr);
    ASSERT_NE(pd, nullptr);

    // Every transaction completes: open spans at the end of a run would
    // mean a leaked span id (or a protocol hang).
    EXPECT_EQ(pc->openCount(), 0u);
    EXPECT_EQ(pd->openCount(), 0u);
    EXPECT_GT(pc->completed(), 0u);
    EXPECT_EQ(pc->begun(), pc->completed());
    EXPECT_EQ(pd->begun(), pd->completed());

    // CCSM: the produce->consume path is coherence pulls that pay DRAM at
    // the ordering point. No direct-store pushes exist in this mode.
    const TxnProfiler::KindStats& gets = pc->kindStats(TxnKind::kGetS);
    EXPECT_GT(gets.count, 0u);
    EXPECT_GT(gets.stageTicks[bucket(StageBucket::kDram)] +
                  pc->kindStats(TxnKind::kGetX)
                      .stageTicks[bucket(StageBucket::kDram)],
              0u);
    EXPECT_EQ(pc->kindStats(TxnKind::kDsPush).count, 0u);

    // Direct store: pushes flow producer -> slice with zero directory and
    // zero DRAM involvement — the paper's Fig. 4 mechanism, per stage.
    const TxnProfiler::KindStats& push = pd->kindStats(TxnKind::kDsPush);
    ASSERT_GT(push.count, 0u);
    EXPECT_EQ(push.stageTicks[bucket(StageBucket::kDirectory)], 0u);
    EXPECT_EQ(push.stageTicks[bucket(StageBucket::kDram)], 0u);
    EXPECT_GT(push.stageTicks[bucket(StageBucket::kNetwork)], 0u);

    // And the GPU's loads stop missing to DRAM: the pushed lines are
    // already in the L2 slices.
    const TxnProfiler::KindStats& ccsmLoad = pc->kindStats(TxnKind::kGpuLoad);
    const TxnProfiler::KindStats& dsLoad = pd->kindStats(TxnKind::kGpuLoad);
    ASSERT_GT(ccsmLoad.count, 0u);
    ASSERT_GT(dsLoad.count, 0u);
    EXPECT_LT(dsLoad.latency.mean(), ccsmLoad.latency.mean());
}

TEST(TxnProfilerIntegration, ProfilingDoesNotPerturbTheSimulation)
{
    const Workload& w = WorkloadRegistry::instance().get("VA");
    WorkloadRun plain(w, InputSize::kSmall, CoherenceMode::kDirectStore);
    const WorkloadRunResult ref = plain.run();
    WorkloadRun profiled(w, InputSize::kSmall, CoherenceMode::kDirectStore);
    profiled.system().enableTxnProfiler();
    const WorkloadRunResult got = profiled.run();
    EXPECT_EQ(got.metrics.ticks, ref.metrics.ticks);
    EXPECT_EQ(got.statCounters, ref.statCounters);
}

TEST(TxnProfilerIntegration, RestoredRunReproducesTheProfileByteForByte)
{
    const Workload& w = WorkloadRegistry::instance().get("VA");
    const CoherenceMode mode = CoherenceMode::kDirectStore;

    auto ref = runProfiled("VA", mode);
    const std::string refJson = profileJson(*ref->system().txnProfiler());

    const std::string path = testing::TempDir() + "txnprof_restore.snap";
    WorkloadRunOptions saveOpts;
    saveOpts.checkpointOut = path;
    saveOpts.checkpointAtPhase = 0;
    WorkloadRun save(w, InputSize::kSmall, mode, SystemConfig{}, saveOpts);
    save.system().enableTxnProfiler();
    save.run();
    EXPECT_EQ(profileJson(*save.system().txnProfiler()), refJson)
        << "checkpointing must not perturb the profile";

    WorkloadRunOptions restoreOpts;
    restoreOpts.restoreFrom = path;
    WorkloadRun restored(w, InputSize::kSmall, mode, SystemConfig{},
                         restoreOpts);
    restored.system().enableTxnProfiler();
    restored.run();
    EXPECT_EQ(profileJson(*restored.system().txnProfiler()), refJson);
    std::remove(path.c_str());
}

} // namespace
} // namespace dscoh
