#include <gtest/gtest.h>

#include <fstream>

#include "core/config_io.h"

namespace dscoh {
namespace {

TEST(ConfigIo, AppliesKeysAndComments)
{
    SystemConfig cfg;
    std::string error;
    const char* text = R"(
# experiment: tiny GPU
num-sms = 4
gpu-l2-size = 0x100000   # 1 MB
mode = dsonly
ds-hop-latency = 80
replacement = tree-plru
)";
    ASSERT_TRUE(applyConfigText(text, &cfg, &error)) << error;
    EXPECT_EQ(cfg.numSms, 4u);
    EXPECT_EQ(cfg.gpuL2Size, 1u << 20);
    EXPECT_EQ(cfg.mode, CoherenceMode::kDirectStoreOnly);
    EXPECT_EQ(cfg.dsNet.hopLatency, 80u);
    EXPECT_EQ(cfg.replacement, ReplacementKind::kTreePlru);
}

TEST(ConfigIo, RejectsUnknownKeyWithLineNumber)
{
    SystemConfig cfg;
    std::string error;
    EXPECT_FALSE(applyConfigText("num-sms = 4\nbogus-key = 1\n", &cfg, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos);
    EXPECT_NE(error.find("bogus-key"), std::string::npos);
}

TEST(ConfigIo, RejectsBadValues)
{
    SystemConfig cfg;
    std::string error;
    EXPECT_FALSE(applyConfigText("num-sms = lots\n", &cfg, &error));
    EXPECT_FALSE(applyConfigText("mode = turbo\n", &cfg, &error));
    EXPECT_FALSE(applyConfigText("just a line\n", &cfg, &error));
}

TEST(ConfigIo, DumpRoundTrips)
{
    SystemConfig original;
    original.numSms = 8;
    original.mode = CoherenceMode::kDirectStore;
    original.gpuL2PrefetchDepth = 3;
    original.dsMinBytes = 4096;
    original.coherenceNet.hopLatency = 55;
    original.replacement = ReplacementKind::kRandom;

    const std::string text = dumpConfig(original);
    SystemConfig restored;
    std::string error;
    ASSERT_TRUE(applyConfigText(text, &restored, &error)) << error;
    EXPECT_EQ(restored.numSms, original.numSms);
    EXPECT_EQ(restored.mode, original.mode);
    EXPECT_EQ(restored.gpuL2PrefetchDepth, original.gpuL2PrefetchDepth);
    EXPECT_EQ(restored.dsMinBytes, original.dsMinBytes);
    EXPECT_EQ(restored.coherenceNet.hopLatency,
              original.coherenceNet.hopLatency);
    EXPECT_EQ(restored.replacement, original.replacement);
}

TEST(ConfigIo, LoadsFromFile)
{
    const std::string path = "/tmp/dscoh_test_config.cfg";
    {
        std::ofstream out(path);
        out << "num-sms = 2\nmem-channels = 2\n";
    }
    SystemConfig cfg;
    std::string error;
    ASSERT_TRUE(loadConfigFile(path, &cfg, &error)) << error;
    EXPECT_EQ(cfg.numSms, 2u);
    EXPECT_EQ(cfg.memChannels, 2u);
    EXPECT_FALSE(loadConfigFile("/no/such/file.cfg", &cfg, &error));
}

TEST(ConfigIo, MultiGpuKeysRoundTrip)
{
    SystemConfig original;
    original.numGpus = 4;
    original.cpuCores = 2;
    original.shardPolicy = ShardPolicy::kRange;
    original.dsTopology = DsTopology::kRing;
    original.tsLeaseTicks = 50'000;

    const std::string text = dumpConfig(original);
    SystemConfig restored;
    std::string error;
    ASSERT_TRUE(applyConfigText(text, &restored, &error)) << error;
    EXPECT_EQ(restored.numGpus, 4u);
    EXPECT_EQ(restored.cpuCores, 2u);
    EXPECT_EQ(restored.shardPolicy, ShardPolicy::kRange);
    EXPECT_EQ(restored.dsTopology, DsTopology::kRing);
    EXPECT_EQ(restored.tsLeaseTicks, 50'000u);

    SystemConfig cfg;
    EXPECT_FALSE(applyConfigText("shard-policy = spiral\n", &cfg, &error));
    EXPECT_FALSE(applyConfigText("ds-topology = mesh\n", &cfg, &error));
}

TEST(ConfigIo, MultiGpuFieldsFlipTheConfigHash)
{
    // Single-GPU defaults must hash exactly as before the scale-out fields
    // existed (old snapshots stay loadable), while every multi-GPU setting
    // produces a distinct hash so a restore cannot cross configurations.
    const std::uint64_t base = configHashOf(SystemConfig{});
    SystemConfig cfg;
    cfg.numGpus = 2;
    const std::uint64_t twoGpus = configHashOf(cfg);
    EXPECT_NE(twoGpus, base);
    cfg.shardPolicy = ShardPolicy::kLine;
    const std::uint64_t lineShards = configHashOf(cfg);
    EXPECT_NE(lineShards, twoGpus);
    cfg.dsTopology = DsTopology::kRing;
    const std::uint64_t ring = configHashOf(cfg);
    EXPECT_NE(ring, lineShards);
    cfg.tsLeaseTicks = 1000;
    EXPECT_NE(configHashOf(cfg), ring);
    SystemConfig cores;
    cores.cpuCores = 2;
    EXPECT_NE(configHashOf(cores), base);
}

TEST(ConfigIo, DumpedDefaultsBuildTableISystem)
{
    SystemConfig cfg;
    std::string error;
    ASSERT_TRUE(applyConfigText(dumpConfig(SystemConfig{}), &cfg, &error));
    EXPECT_EQ(cfg.cpuL2Size, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.numSms, 16u);
    EXPECT_EQ(cfg.gpuL2Slices, 4u);
}

} // namespace
} // namespace dscoh
