#include <gtest/gtest.h>

#include <fstream>

#include "core/config_io.h"

namespace dscoh {
namespace {

TEST(ConfigIo, AppliesKeysAndComments)
{
    SystemConfig cfg;
    std::string error;
    const char* text = R"(
# experiment: tiny GPU
num-sms = 4
gpu-l2-size = 0x100000   # 1 MB
mode = dsonly
ds-hop-latency = 80
replacement = tree-plru
)";
    ASSERT_TRUE(applyConfigText(text, &cfg, &error)) << error;
    EXPECT_EQ(cfg.numSms, 4u);
    EXPECT_EQ(cfg.gpuL2Size, 1u << 20);
    EXPECT_EQ(cfg.mode, CoherenceMode::kDirectStoreOnly);
    EXPECT_EQ(cfg.dsNet.hopLatency, 80u);
    EXPECT_EQ(cfg.replacement, ReplacementKind::kTreePlru);
}

TEST(ConfigIo, RejectsUnknownKeyWithLineNumber)
{
    SystemConfig cfg;
    std::string error;
    EXPECT_FALSE(applyConfigText("num-sms = 4\nbogus-key = 1\n", &cfg, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos);
    EXPECT_NE(error.find("bogus-key"), std::string::npos);
}

TEST(ConfigIo, RejectsBadValues)
{
    SystemConfig cfg;
    std::string error;
    EXPECT_FALSE(applyConfigText("num-sms = lots\n", &cfg, &error));
    EXPECT_FALSE(applyConfigText("mode = turbo\n", &cfg, &error));
    EXPECT_FALSE(applyConfigText("just a line\n", &cfg, &error));
}

TEST(ConfigIo, DumpRoundTrips)
{
    SystemConfig original;
    original.numSms = 8;
    original.mode = CoherenceMode::kDirectStore;
    original.gpuL2PrefetchDepth = 3;
    original.dsMinBytes = 4096;
    original.coherenceNet.hopLatency = 55;
    original.replacement = ReplacementKind::kRandom;

    const std::string text = dumpConfig(original);
    SystemConfig restored;
    std::string error;
    ASSERT_TRUE(applyConfigText(text, &restored, &error)) << error;
    EXPECT_EQ(restored.numSms, original.numSms);
    EXPECT_EQ(restored.mode, original.mode);
    EXPECT_EQ(restored.gpuL2PrefetchDepth, original.gpuL2PrefetchDepth);
    EXPECT_EQ(restored.dsMinBytes, original.dsMinBytes);
    EXPECT_EQ(restored.coherenceNet.hopLatency,
              original.coherenceNet.hopLatency);
    EXPECT_EQ(restored.replacement, original.replacement);
}

TEST(ConfigIo, LoadsFromFile)
{
    const std::string path = "/tmp/dscoh_test_config.cfg";
    {
        std::ofstream out(path);
        out << "num-sms = 2\nmem-channels = 2\n";
    }
    SystemConfig cfg;
    std::string error;
    ASSERT_TRUE(loadConfigFile(path, &cfg, &error)) << error;
    EXPECT_EQ(cfg.numSms, 2u);
    EXPECT_EQ(cfg.memChannels, 2u);
    EXPECT_FALSE(loadConfigFile("/no/such/file.cfg", &cfg, &error));
}

TEST(ConfigIo, DumpedDefaultsBuildTableISystem)
{
    SystemConfig cfg;
    std::string error;
    ASSERT_TRUE(applyConfigText(dumpConfig(SystemConfig{}), &cfg, &error));
    EXPECT_EQ(cfg.cpuL2Size, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.numSms, 16u);
    EXPECT_EQ(cfg.gpuL2Slices, 4u);
}

} // namespace
} // namespace dscoh
