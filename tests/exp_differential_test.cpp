// Differential guard for the event-engine refactor: the results.json bytes
// for a Fig.4 configuration are a pure function of the configuration. Two
// independent engine runs of the same jobs must serialize to the identical
// byte string — any nondeterminism in event ordering, stat accounting or
// JSON formatting breaks the equality. Also pins the equality under the
// fuzzer's tie-break shuffle entry point (System-level ordering freedom
// must not leak into the metrics).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment_engine.h"

namespace dscoh {
namespace {

std::string resultsBytes(const std::vector<ExperimentJob>& jobs)
{
    ExperimentEngine engine(1);
    const std::vector<ExperimentResult> results = engine.run(jobs);
    for (const ExperimentResult& r : results) {
        EXPECT_TRUE(r.ok) << r.error;
    }
    std::ostringstream os;
    writeResultsJson(os, results);
    return os.str();
}

// Two representative Fig.4 sweep configurations: a regular streaming
// benchmark and an irregular one, each in both coherence modes.
TEST(DifferentialResults, VaByteIdenticalAcrossRuns)
{
    const auto jobs = makeSweepJobs({"VA"}, {InputSize::kSmall},
                                    {CoherenceMode::kCcsm,
                                     CoherenceMode::kDirectStore});
    const std::string first = resultsBytes(jobs);
    const std::string second = resultsBytes(jobs);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(DifferentialResults, BfsByteIdenticalAcrossRuns)
{
    const auto jobs = makeSweepJobs({"BF"}, {InputSize::kSmall},
                                    {CoherenceMode::kCcsm,
                                     CoherenceMode::kDirectStore});
    const std::string first = resultsBytes(jobs);
    const std::string second = resultsBytes(jobs);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace dscoh
