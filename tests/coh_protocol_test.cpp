// Directed tests of the Hammer-style MOESI protocol using two plain cache
// agents and a home controller, covering the stable-state transitions of
// the paper's Fig. 3 and the transient races the implementation must
// survive.
#include <gtest/gtest.h>

#include <memory>

#include "coherence/cache_agent.h"
#include "coherence/home_controller.h"
#include "mem/dram.h"
#include "net/network.h"
#include "sim/sim_context.h"

namespace dscoh {
namespace {

constexpr NodeId kAgentA = 0;
constexpr NodeId kAgentB = 1;
constexpr NodeId kHome = 2;

struct ProtoFixture : ::testing::Test {
    SimContext ctx;
    EventQueue& queue = ctx.queue;
    BackingStore store{1 << 20};
    Dram dram{"dram", ctx, store};
    Network req{"req", ctx, NetworkParams{10, 32}};
    Network fwd{"fwd", ctx, NetworkParams{10, 32}};
    Network resp{"resp", ctx, NetworkParams{10, 32}};

    std::unique_ptr<HomeController> home;
    std::unique_ptr<CacheAgent> a;
    std::unique_ptr<CacheAgent> b;

    void SetUp() override
    {
        HomeController::Params hp;
        hp.self = kHome;
        hp.requestNet = &req;
        hp.forwardNet = &fwd;
        hp.responseNet = &resp;
        hp.dram = &dram;
        hp.store = &store;
        hp.peersOf = [](Addr) {
            return std::vector<NodeId>{kAgentA, kAgentB};
        };
        home = std::make_unique<HomeController>("home", ctx, std::move(hp));

        a = std::make_unique<CacheAgent>("agentA", ctx, agentParams(kAgentA));
        b = std::make_unique<CacheAgent>("agentB", ctx, agentParams(kAgentB));

        req.connect(kHome, [this](const Message& m) { home->handleRequest(m); });
        resp.connect(kHome, [this](const Message& m) { home->handleResponse(m); });
        fwd.connect(kAgentA, [this](const Message& m) { a->handleForward(m); });
        resp.connect(kAgentA, [this](const Message& m) { a->handleResponse(m); });
        fwd.connect(kAgentB, [this](const Message& m) { b->handleForward(m); });
        resp.connect(kAgentB, [this](const Message& m) { b->handleResponse(m); });
    }

    CacheAgent::Params agentParams(NodeId self)
    {
        CacheAgent::Params p;
        p.geometry.sizeBytes = 2 * 1024; // 16 lines: 8 sets x 2 ways
        p.geometry.ways = 2;
        p.mshrs = 8;
        p.writebackEntries = 4;
        p.self = self;
        p.home = kHome;
        p.requestNet = &req;
        p.forwardNet = &fwd;
        p.responseNet = &resp;
        return p;
    }

    /// Issues a blocking-style load; returns the loaded 8-byte value via out.
    void load(CacheAgent& agent, Addr addr, std::uint64_t* out = nullptr)
    {
        agent.access(addr, false, [addr, out](CacheAgent::Line& line) {
            if (out != nullptr)
                *out = line.data.read(lineOffset(addr), 8);
        });
    }

    void storeWord(CacheAgent& agent, Addr addr, std::uint64_t value)
    {
        agent.access(addr, true, [addr, value](CacheAgent::Line& line) {
            line.data.write(lineOffset(addr), value, 8);
        });
    }
};

TEST_F(ProtoFixture, ColdLoadGetsExclusiveCleanM)
{
    store.line(0x1000).write(0, 42, 8);
    std::uint64_t v = 0;
    load(*a, 0x1000, &v);
    queue.run();
    EXPECT_EQ(v, 42u);
    EXPECT_EQ(a->stateOf(0x1000), CohState::kM);
    EXPECT_EQ(b->stateOf(0x1000), CohState::kI);
    EXPECT_TRUE(home->quiescent());
}

TEST_F(ProtoFixture, SecondReaderDowngradesOwnerToO)
{
    store.line(0x1000).write(0, 7, 8);
    load(*a, 0x1000);
    queue.run();
    std::uint64_t v = 0;
    load(*b, 0x1000, &v);
    queue.run();
    EXPECT_EQ(v, 7u);
    EXPECT_EQ(a->stateOf(0x1000), CohState::kO);
    EXPECT_EQ(b->stateOf(0x1000), CohState::kS);
}

TEST_F(ProtoFixture, ColdStoreBecomesMM)
{
    storeWord(*a, 0x2000, 0xbeef);
    queue.run();
    EXPECT_EQ(a->stateOf(0x2000), CohState::kMM);
    std::uint64_t v = 0;
    load(*a, 0x2000, &v);
    queue.run();
    EXPECT_EQ(v, 0xbeefu);
}

TEST_F(ProtoFixture, StoreToSharedUpgradesAndInvalidatesSharer)
{
    load(*a, 0x3000);
    queue.run();
    load(*b, 0x3000);
    queue.run();
    ASSERT_EQ(b->stateOf(0x3000), CohState::kS);

    storeWord(*b, 0x3000, 0x11);
    queue.run();
    EXPECT_EQ(b->stateOf(0x3000), CohState::kMM);
    EXPECT_EQ(a->stateOf(0x3000), CohState::kI);
}

TEST_F(ProtoFixture, StoresNotAllowedInMUpgradeViaGetX)
{
    // The paper: "Stores are not allowed in state M" — a store to an
    // M (exclusive clean) line must re-request exclusivity.
    load(*a, 0x4000);
    queue.run();
    ASSERT_EQ(a->stateOf(0x4000), CohState::kM);
    StatRegistry reg;
    a->regStats(reg);
    const auto beforeGetX = reg.counter("agentA.getx_issued");
    storeWord(*a, 0x4000, 5);
    queue.run();
    EXPECT_EQ(a->stateOf(0x4000), CohState::kMM);
    EXPECT_EQ(reg.counter("agentA.getx_issued"), beforeGetX + 1);
}

TEST_F(ProtoFixture, DirtyDataForwardedToNewOwner)
{
    storeWord(*a, 0x5000, 0xabcdef);
    queue.run();
    std::uint64_t v = 0;
    load(*b, 0x5000, &v);
    queue.run();
    EXPECT_EQ(v, 0xabcdefu) << "owner must supply its dirty data";
    EXPECT_EQ(a->stateOf(0x5000), CohState::kO);
    EXPECT_EQ(b->stateOf(0x5000), CohState::kS);
}

TEST_F(ProtoFixture, GetXTransfersDirtyOwnership)
{
    storeWord(*a, 0x6000, 0x111);
    queue.run();
    std::uint64_t v = 0;
    b->access(0x6000, true, [&v](CacheAgent::Line& line) {
        v = line.data.read(0, 8);
        line.data.write(0, 0x222, 8);
    });
    queue.run();
    EXPECT_EQ(v, 0x111u) << "new owner sees previous dirty data before writing";
    EXPECT_EQ(b->stateOf(0x6000), CohState::kMM);
    EXPECT_EQ(a->stateOf(0x6000), CohState::kI);
}

TEST_F(ProtoFixture, EvictionWritesBackDirtyData)
{
    // 8 sets x 2 ways; lines 0x0 + k*setsize collide in set 0.
    const Addr stride = 8 * kLineSize;
    storeWord(*a, 0 * stride, 100);
    storeWord(*a, 1 * stride, 101);
    queue.run();
    storeWord(*a, 2 * stride, 102); // evicts one of the first two
    queue.run();
    EXPECT_TRUE(home->quiescent());
    // Exactly one of the first two lines was written back to memory.
    const std::uint64_t m0 = store.readLine(0).read(0, 8);
    const std::uint64_t m1 = store.readLine(stride).read(0, 8);
    EXPECT_TRUE((m0 == 100) != (m1 == 101))
        << "exactly one victim written back, got " << m0 << "/" << m1;
    EXPECT_EQ(a->writebacks(), 1u);
}

TEST_F(ProtoFixture, ReloadAfterWritebackReadsMemoryValue)
{
    const Addr stride = 8 * kLineSize;
    for (int i = 0; i < 3; ++i)
        storeWord(*a, static_cast<Addr>(i) * stride, 200 + static_cast<std::uint64_t>(i));
    queue.run();
    // All three were stored; at least one was evicted. Loading each back
    // must return the stored value regardless of where it now lives.
    for (int i = 0; i < 3; ++i) {
        std::uint64_t v = 0;
        load(*a, static_cast<Addr>(i) * stride, &v);
        queue.run();
        EXPECT_EQ(v, 200u + static_cast<std::uint64_t>(i));
    }
}

TEST_F(ProtoFixture, CrossAgentReadAfterEviction)
{
    const Addr stride = 8 * kLineSize;
    for (int i = 0; i < 4; ++i)
        storeWord(*a, static_cast<Addr>(i) * stride, 300 + static_cast<std::uint64_t>(i));
    queue.run();
    for (int i = 0; i < 4; ++i) {
        std::uint64_t v = 0;
        load(*b, static_cast<Addr>(i) * stride, &v);
        queue.run();
        EXPECT_EQ(v, 300u + static_cast<std::uint64_t>(i));
    }
}

TEST_F(ProtoFixture, ConcurrentStoresSerializeToOneOwner)
{
    storeWord(*a, 0x7000, 0xaaaa);
    storeWord(*b, 0x7000, 0xbbbb);
    queue.run();
    const CohState sa = a->stateOf(0x7000);
    const CohState sb = b->stateOf(0x7000);
    EXPECT_TRUE((sa == CohState::kMM && sb == CohState::kI) ||
                (sa == CohState::kI && sb == CohState::kMM))
        << "exactly one winner, got " << to_string(sa) << "/" << to_string(sb);
    // The final value is whichever store serialized last.
    std::uint64_t v = 0;
    load(*a, 0x7000, &v);
    queue.run();
    EXPECT_TRUE(v == 0xaaaa || v == 0xbbbb);
}

TEST_F(ProtoFixture, ConcurrentLoadAndStoreBothComplete)
{
    store.line(0x8000).write(0, 0x42, 8);
    std::uint64_t loaded = 0;
    load(*a, 0x8000, &loaded);
    storeWord(*b, 0x8000, 0x99);
    queue.run();
    EXPECT_TRUE(loaded == 0x42 || loaded == 0x99);
    EXPECT_EQ(b->stateOf(0x8000), CohState::kMM);
    EXPECT_TRUE(home->quiescent());
}

TEST_F(ProtoFixture, MshrMergesSecondaryLoads)
{
    store.line(0x9000).write(0, 5, 8);
    std::uint64_t v1 = 0;
    std::uint64_t v2 = 0;
    load(*a, 0x9000, &v1);
    load(*a, 0x9000 + 8, &v2); // same line, while miss outstanding
    queue.run();
    EXPECT_EQ(v1, 5u);
    EXPECT_EQ(v2, 0u);
    StatRegistry reg;
    a->regStats(reg);
    EXPECT_EQ(reg.counter("agentA.gets_issued"), 1u)
        << "second load must merge, not issue a new GetS";
}

TEST_F(ProtoFixture, StoreMergedIntoLoadMissUpgradesAfterFill)
{
    std::uint64_t loaded = 0;
    load(*a, 0xa000, &loaded);
    storeWord(*a, 0xa000, 0x77); // queued behind the GetS
    queue.run();
    EXPECT_EQ(a->stateOf(0xa000), CohState::kMM);
    std::uint64_t v = 0;
    load(*a, 0xa000, &v);
    queue.run();
    EXPECT_EQ(v, 0x77u);
}

TEST_F(ProtoFixture, OwnerEvictionRaceWithRemoteGetX)
{
    // a holds MM, then evicts (Put in flight) while b requests exclusive.
    // Whatever the interleaving, b must end with the data and memory must
    // not be corrupted afterwards.
    const Addr stride = 8 * kLineSize;
    storeWord(*a, 0, 0x1234);
    queue.run();
    // Force eviction of line 0 by filling set 0.
    storeWord(*a, stride, 1);
    storeWord(*a, 2 * stride, 2); // one of these evicts line 0
    std::uint64_t v = 0;
    b->access(0, true, [&v](CacheAgent::Line& line) {
        v = line.data.read(0, 8);
        line.data.write(0, 0x5678, 8);
    });
    queue.run();
    EXPECT_EQ(v, 0x1234u);
    EXPECT_EQ(b->stateOf(0), CohState::kMM);
    EXPECT_TRUE(home->quiescent());
    // b's MM copy is the truth; a later writeback from b must win.
    std::uint64_t v2 = 0;
    load(*a, 0, &v2);
    queue.run();
    EXPECT_EQ(v2, 0x5678u);
}

TEST_F(ProtoFixture, SnoopDuringWritebackSuppliesData)
{
    const Addr stride = 8 * kLineSize;
    storeWord(*a, 0, 0x42);
    storeWord(*a, stride, 0x43);
    queue.run();
    storeWord(*a, 2 * stride, 0x44); // evict one MM line -> Put in flight
    std::uint64_t v = 0;
    load(*b, 0, &v); // may snoop the writeback buffer
    queue.run();
    EXPECT_EQ(v, 0x42u);
    EXPECT_TRUE(home->quiescent());
}

TEST_F(ProtoFixture, QuiescentAfterMixedTraffic)
{
    for (int i = 0; i < 20; ++i) {
        const Addr addr = static_cast<Addr>(i % 5) * kLineSize;
        if (i % 2 == 0)
            storeWord(*a, addr, static_cast<std::uint64_t>(i));
        else
            load(*b, addr);
    }
    queue.run();
    EXPECT_TRUE(home->quiescent());
    // Every line must be in a stable state at both agents.
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(isStable(a->stateOf(static_cast<Addr>(i) * kLineSize)));
        EXPECT_TRUE(isStable(b->stateOf(static_cast<Addr>(i) * kLineSize)));
    }
}

} // namespace
} // namespace dscoh
