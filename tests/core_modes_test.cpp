// Tests for the SIII-H operating modes: direct store as a full CCSM
// replacement (kDirectStoreOnly) and the hybrid size-threshold policy.
#include <gtest/gtest.h>

#include "core/system.h"
#include "workloads/runner.h"

namespace dscoh {
namespace {

SystemConfig smallCfg(CoherenceMode mode)
{
    SystemConfig cfg = SystemConfig::paper(mode);
    cfg.numSms = 4;
    return cfg;
}

TEST(ReplacementMode, SharedDataAlwaysInDsRegion)
{
    SystemConfig cfg = smallCfg(CoherenceMode::kDirectStoreOnly);
    cfg.dsMinBytes = 1 << 30; // threshold must be ignored: no CCSM fallback
    System sys(cfg);
    EXPECT_TRUE(inDsRegion(sys.allocateArray(64, true)));
    EXPECT_FALSE(inDsRegion(sys.allocateArray(64, false)));
}

TEST(ReplacementMode, ProducerConsumerWorksWithoutSnooping)
{
    System sys(smallCfg(CoherenceMode::kDirectStoreOnly));
    constexpr std::uint32_t kWords = 2048;
    const Addr arr = sys.allocateArray(kWords * 4, true);

    CpuProgram produce;
    for (std::uint32_t i = 0; i < kWords; ++i)
        produce.push_back(cpuStore(arr + i * 4ull, producedValue(arr + i * 4ull), 4));
    produce.push_back(cpuFence());

    KernelDesc k;
    k.name = "consume";
    k.blocks = 8;
    k.threadsPerBlock = 256;
    k.body = [arr](ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
        const std::uint32_t i = b * 256 + tid;
        t.ldCheck(arr + i * 4ull, producedValue(arr + i * 4ull), 4);
    };
    sys.runCpuProgram(produce, [&] { sys.launchKernel(k, [] {}); });
    sys.simulate();
    EXPECT_EQ(sys.metrics().checkFailures, 0u);
    EXPECT_TRUE(sys.checkCoherenceInvariants().empty());
    // The whole point: no snoops ever crossed the chip.
    EXPECT_EQ(sys.stats().counter("home.snoops_sent"), 0u);
}

TEST(ReplacementMode, RunsEveryWorkloadVerified)
{
    for (const char* code : {"VA", "NN", "PT", "BF", "HT"}) {
        const auto r = runWorkload(WorkloadRegistry::instance().get(code),
                                   InputSize::kSmall,
                                   CoherenceMode::kDirectStoreOnly);
        EXPECT_EQ(r.metrics.checkFailures, 0u) << code;
        EXPECT_TRUE(r.violations.empty()) << code;
    }
}

TEST(ReplacementMode, FewerCoherenceMessagesThanCcsm)
{
    const auto& w = WorkloadRegistry::instance().get("VA");
    const auto ccsm = runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm);
    const auto only =
        runWorkload(w, InputSize::kSmall, CoherenceMode::kDirectStoreOnly);
    EXPECT_LT(only.metrics.coherenceMessages + only.metrics.dsNetworkMessages,
              ccsm.metrics.coherenceMessages)
        << "SIII-H: simpler protocol must mean fewer messages";
}

TEST(ReplacementMode, PerformanceComparableToDirectStore)
{
    const auto& w = WorkloadRegistry::instance().get("NN");
    const auto ds =
        runWorkload(w, InputSize::kSmall, CoherenceMode::kDirectStore);
    const auto only =
        runWorkload(w, InputSize::kSmall, CoherenceMode::kDirectStoreOnly);
    EXPECT_LT(static_cast<double>(only.metrics.ticks),
              static_cast<double>(ds.metrics.ticks) * 1.05);
}

TEST(HybridPolicy, ThresholdSplitsAllocations)
{
    SystemConfig cfg = smallCfg(CoherenceMode::kDirectStore);
    cfg.dsMinBytes = 64 * 1024;
    System sys(cfg);
    EXPECT_FALSE(inDsRegion(sys.allocateArray(4 * 1024, true)))
        << "small shared arrays stay on CCSM under the hybrid policy";
    EXPECT_TRUE(inDsRegion(sys.allocateArray(256 * 1024, true)));
    EXPECT_FALSE(inDsRegion(sys.allocateArray(256 * 1024, false)))
        << "private arrays never move regardless of size";
}

TEST(HybridPolicy, MixedAllocationRunsVerified)
{
    SystemConfig cfg;
    cfg.dsMinBytes = 64 * 1024; // BP: weights (384 KB) pushed, input (6 KB) not
    const auto r = runWorkload(WorkloadRegistry::instance().get("BP"),
                               InputSize::kSmall, CoherenceMode::kDirectStore,
                               cfg);
    EXPECT_EQ(r.metrics.checkFailures, 0u);
    EXPECT_GT(r.metrics.dsFills, 0u) << "the big array must still be pushed";
}

TEST(HybridPolicy, LargeThresholdDegradesToCcsm)
{
    SystemConfig cfg;
    cfg.dsMinBytes = 1ull << 30;
    const auto ds = runWorkload(WorkloadRegistry::instance().get("VA"),
                                InputSize::kSmall, CoherenceMode::kDirectStore,
                                cfg);
    const auto ccsm = runWorkload(WorkloadRegistry::instance().get("VA"),
                                  InputSize::kSmall, CoherenceMode::kCcsm);
    EXPECT_EQ(ds.metrics.dsFills, 0u);
    EXPECT_EQ(ds.metrics.ticks, ccsm.metrics.ticks)
        << "nothing crosses the threshold: both runs are the same machine";
}

TEST(ModeNames, AllPrintable)
{
    EXPECT_STREQ(to_string(CoherenceMode::kCcsm), "CCSM");
    EXPECT_STREQ(to_string(CoherenceMode::kDirectStore), "DirectStore");
    EXPECT_STREQ(to_string(CoherenceMode::kDirectStoreOnly), "DirectStoreOnly");
}

} // namespace
} // namespace dscoh
