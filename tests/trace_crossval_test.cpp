// Cross-validation: a trace-DSL replica of the built-in VA model must show
// the same behaviour (hit/miss structure and speedup ballpark) as the C++
// model — evidence that the DSL frontend and the native workloads drive the
// simulator identically.
#include <gtest/gtest.h>

#include "trace/trace_format.h"
#include "workloads/runner.h"

namespace dscoh {
namespace {

// The same structure as workloads/sdk_standalone.cpp's VectorAdd (small):
// 50000 floats per array, a and b produced, grid-stride add into c.
const char* kVaReplica = R"(
name va_replica
shared-memory no

array a 200000 shared produced
array b 200000 shared produced
array c 200000 shared

cpu:
  produce a
  produce b
  fence
end

kernel add blocks 196 tpb 256
  when ($gid < 50000) ldc a ($gid * 4) 4
  when ($gid < 50000) ldc b ($gid * 4) 4
  compute 1
  when ($gid < 50000) st c ($gid * 4) 4 ($gid)
end
)";

TEST(TraceCrossVal, ReplicaMatchesBuiltInVaShape)
{
    const auto replica = trace::parseTrace(kVaReplica);
    const auto replicaCmp = compareModes(*replica, InputSize::kSmall);
    const auto builtinCmp = compareModes(
        WorkloadRegistry::instance().get("VA"), InputSize::kSmall);

    // Identical data volumes -> identical GPU L2 demand structure.
    EXPECT_EQ(replicaCmp.ccsm.metrics.gpuL2Accesses,
              builtinCmp.ccsm.metrics.gpuL2Accesses);
    EXPECT_EQ(replicaCmp.ccsm.metrics.gpuL2Misses,
              builtinCmp.ccsm.metrics.gpuL2Misses);
    EXPECT_EQ(replicaCmp.directStore.metrics.dsFills,
              builtinCmp.directStore.metrics.dsFills);

    // Same speedup ballpark (the replica's produce loop differs only in
    // per-store compute, so allow a loose band).
    const double replicaSpeedup = replicaCmp.speedup();
    const double builtinSpeedup = builtinCmp.speedup();
    EXPECT_GT(replicaSpeedup, 1.10);
    EXPECT_NEAR(replicaSpeedup, builtinSpeedup, 0.15);
}

TEST(TraceCrossVal, ReplicaIsDeterministic)
{
    const auto replica = trace::parseTrace(kVaReplica);
    const auto a =
        runWorkload(*replica, InputSize::kSmall, CoherenceMode::kDirectStore);
    const auto b =
        runWorkload(*replica, InputSize::kSmall, CoherenceMode::kDirectStore);
    EXPECT_EQ(a.metrics.ticks, b.metrics.ticks);
}

} // namespace
} // namespace dscoh
