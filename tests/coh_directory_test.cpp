// Directory-mode home controller: correctness under the same scenarios as
// the Hammer tests, plus the mode's defining properties (no broadcast to
// non-holders, no speculative memory reads when an owner supplies, graceful
// handling of stale entries after silent drops).
#include <gtest/gtest.h>

#include "core/system.h"
#include "sim/rng.h"
#include "workloads/runner.h"

namespace dscoh {
namespace {

SystemConfig directoryCfg(CoherenceMode mode)
{
    SystemConfig cfg = SystemConfig::paper(mode);
    cfg.directoryHome = true;
    cfg.numSms = 4;
    return cfg;
}

TEST(DirectoryHome, ProducerConsumerVerifiedBothSchemes)
{
    for (const CoherenceMode mode :
         {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}) {
        SystemConfig cfg = directoryCfg(mode);
        const auto r = runWorkload(WorkloadRegistry::instance().get("VA"),
                                   InputSize::kSmall, mode, cfg);
        EXPECT_EQ(r.metrics.checkFailures, 0u) << to_string(mode);
        EXPECT_TRUE(r.violations.empty()) << to_string(mode);
    }
}

TEST(DirectoryHome, RepresentativeWorkloadsStayCoherent)
{
    for (const char* code : {"BF", "NW", "HT", "PT", "BS"}) {
        SystemConfig cfg = directoryCfg(CoherenceMode::kCcsm);
        const auto r = runWorkload(WorkloadRegistry::instance().get(code),
                                   InputSize::kSmall, CoherenceMode::kCcsm,
                                   cfg);
        EXPECT_EQ(r.metrics.checkFailures, 0u) << code;
        EXPECT_TRUE(r.violations.empty()) << code;
    }
}

TEST(DirectoryHome, FewerSnoopsThanHammer)
{
    const auto snoopsWith = [](bool directory) {
        SystemConfig cfg = SystemConfig::paper(CoherenceMode::kCcsm);
        cfg.directoryHome = directory;
        System sys(cfg);
        // GPU-only traffic: Hammer still snoops the (idle) CPU on every
        // miss; the directory knows better.
        const Addr arr = sys.allocateArray(256 * kLineSize, true);
        KernelDesc k;
        k.name = "reader";
        k.blocks = 8;
        k.threadsPerBlock = 32;
        k.body = [arr](ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
            t.ld(arr + (static_cast<Addr>(b) * 32 + tid) * kLineSize, 4);
        };
        sys.launchKernel(k, [] {});
        sys.simulate();
        return sys.stats().counter("home.snoops_sent");
    };
    const std::uint64_t hammer = snoopsWith(false);
    const std::uint64_t directory = snoopsWith(true);
    EXPECT_GT(hammer, 0u);
    EXPECT_EQ(directory, 0u)
        << "nobody holds these lines; the directory must not snoop anyone";
}

TEST(DirectoryHome, NoSpeculativeMemoryReadWhenOwnerSupplies)
{
    const auto dramReads = [](bool directory) {
        SystemConfig cfg = SystemConfig::paper(CoherenceMode::kCcsm);
        cfg.directoryHome = directory;
        cfg.numSms = 2;
        System sys(cfg);
        const Addr arr = sys.allocateArray(64 * kLineSize, true);
        // CPU produces (owns dirty), then the GPU pulls every line: Hammer
        // reads DRAM speculatively per pull, the directory must not.
        CpuProgram produce;
        for (std::uint32_t i = 0; i < 64; ++i)
            produce.push_back(
                cpuStore(arr + static_cast<Addr>(i) * kLineSize, i, 4));
        produce.push_back(cpuFence());
        KernelDesc k;
        k.name = "pull";
        k.blocks = 2;
        k.threadsPerBlock = 32;
        k.body = [arr](ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
            t.ldCheck(arr + (static_cast<Addr>(b) * 32 + tid) * kLineSize,
                      b * 32 + tid, 4);
        };
        std::uint64_t beforeKernel = 0;
        sys.runCpuProgram(produce, [&] {
            beforeKernel = sys.metrics().dramReads;
            sys.launchKernel(k, [] {});
        });
        sys.simulate();
        EXPECT_EQ(sys.metrics().checkFailures, 0u);
        return sys.metrics().dramReads - beforeKernel;
    };
    const std::uint64_t hammer = dramReads(false);
    const std::uint64_t directory = dramReads(true);
    EXPECT_GE(hammer, 64u) << "Hammer reads memory speculatively per miss";
    EXPECT_LT(directory, 8u)
        << "the directory forwards to the owner without touching DRAM";
}

TEST(DirectoryHome, StaleEntryAfterSilentDropFallsBackToMemory)
{
    SystemConfig cfg = directoryCfg(CoherenceMode::kCcsm);
    cfg.numSms = 2;
    System sys(cfg);
    const Addr arr = sys.allocateArray(4 * kLineSize, false);

    // CPU cold-load -> M (directory: owner = CPU). Force the CPU to
    // silently drop the clean line via conflict evictions, then let the GPU
    // read it: the directory snoops the stale owner, learns nothing, and
    // must fall back to DRAM with the correct value.
    CpuProgram prog;
    prog.push_back(cpuStore(arr, 0x42, 4));
    prog.push_back(cpuFence());
    sys.runCpuProgram(prog, [] {});
    sys.simulate();

    // Evict via strided stores over the CPU L2 set (2048-set stride).
    const Addr big = sys.allocateArray(20ull * 2048 * kLineSize, false);
    CpuProgram evict;
    for (std::uint32_t i = 0; i < 16; ++i)
        evict.push_back(cpuStore(
            big + (sys.addressSpace().translate(arr).paddr % (2048 * kLineSize)) +
                static_cast<Addr>(i) * 2048 * kLineSize,
            i, 4));
    evict.push_back(cpuFence());
    sys.runCpuProgram(evict, [] {});
    sys.simulate();

    KernelDesc k;
    k.name = "verify";
    k.blocks = 1;
    k.threadsPerBlock = 32;
    k.body = [arr](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        if (tid == 0)
            t.ldCheck(arr, 0x42, 4);
    };
    sys.launchKernel(k, [] {});
    sys.simulate();
    EXPECT_EQ(sys.metrics().checkFailures, 0u);
    EXPECT_TRUE(sys.checkCoherenceInvariants().empty());
}

TEST(DirectoryHome, RandomizedContentionStaysCoherent)
{
    // The property sweep from integration_property_test, directory flavour.
    Rng rng(99);
    SystemConfig cfg = directoryCfg(CoherenceMode::kDirectStore);
    System sys(cfg);
    const Addr shared = sys.allocateArray(2048 * 4, true);
    CpuProgram produce;
    for (std::uint32_t i = 0; i < 2048; ++i)
        produce.push_back(
            cpuStore(shared + i * 4ull, producedValue(shared + i * 4ull), 4));
    produce.push_back(cpuFence());

    KernelDesc k;
    k.name = "mix";
    k.blocks = 8;
    k.threadsPerBlock = 128;
    const std::uint64_t seed = rng.next();
    k.body = [shared, seed](ThreadBuilder& t, std::uint32_t b,
                            std::uint32_t tid) {
        Rng laneRng(seed + b * 1024 + tid);
        for (int i = 0; i < 3; ++i) {
            const std::uint32_t idx =
                static_cast<std::uint32_t>(laneRng.below(2048));
            t.ldCheck(shared + idx * 4ull,
                      producedValue(shared + idx * 4ull), 4);
        }
    };
    sys.runCpuProgram(produce, [&] { sys.launchKernel(k, [] {}); });
    sys.simulate();
    EXPECT_EQ(sys.metrics().checkFailures, 0u);
    EXPECT_TRUE(sys.checkCoherenceInvariants().empty());
}

} // namespace
} // namespace dscoh
