#include <gtest/gtest.h>

#include <sstream>

#include "sim/sim_context.h"

namespace dscoh {
namespace {

TEST(Log, DisabledComponentsProduceNothing)
{
    LogSink sink;
    std::ostringstream out;
    sink.streamTo(out);
    DSCOH_LOG_TO(sink, "coherence", "should not appear " << 42);
    EXPECT_TRUE(out.str().empty());
}

TEST(Log, EnabledComponentLogsWithTick)
{
    EventQueue q;
    LogSink sink;
    sink.enable("proto");
    sink.attachQueue(&q);
    std::ostringstream out;
    sink.streamTo(out);
    q.schedule(123, [&sink] { DSCOH_LOG_TO(sink, "proto", "hello " << 7); });
    q.run();
    EXPECT_NE(out.str().find("[123]"), std::string::npos);
    EXPECT_NE(out.str().find("proto: hello 7"), std::string::npos);
}

TEST(Log, WildcardEnablesEverything)
{
    LogSink sink;
    sink.enable("*");
    std::ostringstream out;
    sink.streamTo(out);
    DSCOH_LOG_TO(sink, "anything", "msg");
    EXPECT_NE(out.str().find("anything: msg"), std::string::npos);
}

TEST(Log, StreamExpressionNotEvaluatedWhenDisabled)
{
    LogSink sink;
    int evaluations = 0;
    const auto sideEffect = [&evaluations] {
        ++evaluations;
        return 1;
    };
    DSCOH_LOG_TO(sink, "off", "value " << sideEffect());
    EXPECT_EQ(evaluations, 0) << "logging must be free when disabled";
}

TEST(Log, SinksAreIndependent)
{
    // The old Log was a process-wide singleton; enabling a component in one
    // simulation leaked into every other. Sinks are now per-context.
    LogSink a;
    LogSink b;
    a.enable("coherence");
    std::ostringstream outA;
    std::ostringstream outB;
    a.streamTo(outA);
    b.streamTo(outB);
    DSCOH_LOG_TO(a, "coherence", "only in a");
    DSCOH_LOG_TO(b, "coherence", "never in b");
    EXPECT_NE(outA.str().find("only in a"), std::string::npos);
    EXPECT_TRUE(outB.str().empty());
}

TEST(Log, SimContextWiresQueueIntoSink)
{
    SimContext ctx;
    ctx.log.enable("x");
    std::ostringstream out;
    ctx.log.streamTo(out);
    ctx.queue.schedule(77, [&ctx] { DSCOH_LOG_TO(ctx.log, "x", "at77"); });
    ctx.queue.run();
    EXPECT_NE(out.str().find("[77]"), std::string::npos);
    EXPECT_NE(out.str().find("x: at77"), std::string::npos);
}

TEST(Log, DisableAllTurnsOffPreviouslyEnabled)
{
    LogSink sink;
    sink.enable("a");
    sink.disableAll();
    std::ostringstream out;
    sink.streamTo(out);
    DSCOH_LOG_TO(sink, "a", "gone");
    EXPECT_TRUE(out.str().empty());
}

} // namespace
} // namespace dscoh
