#include <gtest/gtest.h>

#include <sstream>

#include "sim/log.h"

namespace dscoh {
namespace {

/// Captures std::clog for the duration of a test.
class ClogCapture {
public:
    ClogCapture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
    ~ClogCapture() { std::clog.rdbuf(old_); }
    std::string text() const { return buffer_.str(); }

private:
    std::ostringstream buffer_;
    std::streambuf* old_;
};

TEST(Log, DisabledComponentsProduceNothing)
{
    Log::instance().disableAll();
    ClogCapture capture;
    DSCOH_LOG("coherence", "should not appear " << 42);
    EXPECT_TRUE(capture.text().empty());
}

TEST(Log, EnabledComponentLogsWithTick)
{
    Log::instance().disableAll();
    Log::instance().enable("proto");
    EventQueue q;
    Log::instance().attachQueue(&q);
    ClogCapture capture;
    q.schedule(123, [] { DSCOH_LOG("proto", "hello " << 7); });
    q.run();
    const std::string out = capture.text();
    EXPECT_NE(out.find("[123]"), std::string::npos);
    EXPECT_NE(out.find("proto: hello 7"), std::string::npos);
    Log::instance().disableAll();
    Log::instance().attachQueue(nullptr);
}

TEST(Log, WildcardEnablesEverything)
{
    Log::instance().disableAll();
    Log::instance().enable("*");
    ClogCapture capture;
    DSCOH_LOG("anything", "msg");
    EXPECT_NE(capture.text().find("anything: msg"), std::string::npos);
    Log::instance().disableAll();
}

TEST(Log, StreamExpressionNotEvaluatedWhenDisabled)
{
    Log::instance().disableAll();
    int evaluations = 0;
    const auto sideEffect = [&evaluations] {
        ++evaluations;
        return 1;
    };
    DSCOH_LOG("off", "value " << sideEffect());
    EXPECT_EQ(evaluations, 0) << "logging must be free when disabled";
}

} // namespace
} // namespace dscoh
