// Registry metadata tests: Table II must be reproduced faithfully.
#include <gtest/gtest.h>

#include <set>

#include "workloads/workload.h"

namespace dscoh {
namespace {

TEST(Registry, Has22WorkloadsInTableOrder)
{
    const auto& reg = WorkloadRegistry::instance();
    const std::vector<std::string> expected{
        "BP", "BF", "GA", "HT", "KM", "LV", "LU", "NN", "NW", "PT", "SR",
        "ST", "GC", "FW", "MS", "SP", "BL", "VA", "BS", "MM", "MT", "CH"};
    EXPECT_EQ(reg.codes(), expected);
    EXPECT_EQ(reg.size(), 22u);
}

TEST(Registry, SharedMemoryFlagsMatchTableII)
{
    const auto& reg = WorkloadRegistry::instance();
    const std::set<std::string> sharedYes{"BP", "GA", "HT", "KM", "LV",
                                          "LU", "NW", "PT", "SR", "ST"};
    for (const auto& code : reg.codes()) {
        const bool expectShared = sharedYes.count(code) != 0;
        EXPECT_EQ(reg.get(code).info().usesSharedMemory, expectShared)
            << code;
    }
}

TEST(Registry, SuitesMatchTableII)
{
    const auto& reg = WorkloadRegistry::instance();
    const std::map<std::string, std::string> suites{
        {"BP", "Rodinia"},    {"BF", "Rodinia"}, {"GA", "Rodinia"},
        {"HT", "Rodinia"},    {"KM", "Rodinia"}, {"LV", "Rodinia"},
        {"LU", "Rodinia"},    {"NN", "Rodinia"}, {"NW", "Rodinia"},
        {"PT", "Rodinia"},    {"SR", "Rodinia"}, {"ST", "Parboil"},
        {"GC", "Pannotia"},   {"FW", "Pannotia"}, {"MS", "Pannotia"},
        {"SP", "Pannotia"},   {"BL", "NVIDIA SDK"}, {"VA", "NVIDIA SDK"},
        {"BS", "[24]"},       {"MM", "[25]"},    {"MT", "[25]"},
        {"CH", "[26]"}};
    for (const auto& [code, suite] : suites)
        EXPECT_EQ(reg.get(code).info().suite, suite) << code;
}

TEST(Registry, InputSizeLabelsMatchTableII)
{
    const auto& reg = WorkloadRegistry::instance();
    EXPECT_EQ(reg.get("BP").info().smallInput, "1536");
    EXPECT_EQ(reg.get("BP").info().bigInput, "10000");
    EXPECT_EQ(reg.get("KM").info().smallInput, "2000, 34 feat");
    EXPECT_EQ(reg.get("ST").info().smallInput, "128x128x32");
    EXPECT_EQ(reg.get("GC").info().bigInput, "delaunay-n15");
    EXPECT_EQ(reg.get("BS").info().smallInput, "262144");
    EXPECT_EQ(reg.get("MT").info().bigInput, "1600x1600");
}

TEST(Registry, UnknownCodeThrows)
{
    EXPECT_THROW(WorkloadRegistry::instance().get("XX"), std::out_of_range);
    EXPECT_FALSE(WorkloadRegistry::instance().has("XX"));
    EXPECT_TRUE(WorkloadRegistry::instance().has("VA"));
}

TEST(Registry, EveryWorkloadHasArraysAndKernels)
{
    const auto& reg = WorkloadRegistry::instance();
    for (const auto& code : reg.codes()) {
        const Workload& w = reg.get(code);
        for (const InputSize size : {InputSize::kSmall, InputSize::kBig}) {
            const auto arrays = w.arrays(size);
            EXPECT_FALSE(arrays.empty()) << code;
            Workload::ArrayMap mem;
            Addr fake = 0x10000000;
            for (const auto& a : arrays) {
                EXPECT_GT(a.bytes, 0u) << code << "." << a.name;
                mem[a.name] = fake;
                fake += (a.bytes + kPageSize) & ~static_cast<Addr>(kPageSize - 1);
            }
            EXPECT_FALSE(w.kernels(size, mem).empty()) << code;
        }
    }
}

TEST(Registry, BigFootprintIsLargerThanSmall)
{
    const auto& reg = WorkloadRegistry::instance();
    for (const auto& code : reg.codes()) {
        const Workload& w = reg.get(code);
        std::uint64_t small = 0;
        std::uint64_t big = 0;
        for (const auto& a : w.arrays(InputSize::kSmall))
            small += a.bytes;
        for (const auto& a : w.arrays(InputSize::kBig))
            big += a.bytes;
        EXPECT_GT(big, small) << code;
    }
}

TEST(Registry, EveryWorkloadDocumentsItsScaling)
{
    const auto& reg = WorkloadRegistry::instance();
    for (const auto& code : reg.codes())
        EXPECT_FALSE(reg.get(code).info().scalingNote.empty()) << code;
}

TEST(Registry, PathfinderHasNoCpuProducedSharedData)
{
    // §IV-D: "in this benchmark the CPU does not store any data that will
    // later be used by GPU".
    const Workload& pt = WorkloadRegistry::instance().get("PT");
    for (const auto& a : pt.arrays(InputSize::kSmall))
        EXPECT_FALSE(a.cpuProduced) << a.name;
}

TEST(ProducedValue, DeterministicAndSpread)
{
    EXPECT_EQ(producedValue(0x1000), producedValue(0x1000));
    EXPECT_NE(producedValue(0x1000), producedValue(0x1008));
    // Cheap avalanche check: neighbouring addresses differ in many bits.
    const std::uint64_t x = producedValue(0x2000) ^ producedValue(0x2008);
    EXPECT_GT(__builtin_popcountll(x), 10);
}

} // namespace
} // namespace dscoh
