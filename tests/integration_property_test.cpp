// Property-based whole-system tests: randomized producer/consumer programs
// must be functionally identical under CCSM and direct store, leave the
// system coherent, and be bit-deterministic.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/system.h"
#include "sim/rng.h"
#include "workloads/runner.h"
#include "workloads/workload.h" // producedValue

namespace dscoh {
namespace {

struct RandomScenario {
    std::uint64_t seed;
};

class SystemProperty : public ::testing::TestWithParam<RandomScenario> {};

struct ScenarioResult {
    RunMetrics metrics;
    std::vector<std::string> violations;
};

/// Builds and runs a random scenario: a few shared arrays, a CPU produce
/// phase covering a random subset, a GPU kernel with random reads (checked
/// where safe) and disjoint writes, then a CPU read-back of the results.
ScenarioResult runScenario(std::uint64_t seed, CoherenceMode mode)
{
    Rng rng(seed);
    SystemConfig cfg = SystemConfig::paper(mode);
    cfg.numSms = 4;
    System sys(cfg);

    const std::uint32_t numArrays = 2 + static_cast<std::uint32_t>(rng.below(3));
    std::vector<Addr> arrays;
    std::vector<std::uint32_t> words;
    for (std::uint32_t a = 0; a < numArrays; ++a) {
        const std::uint32_t n =
            256u + static_cast<std::uint32_t>(rng.below(2048));
        arrays.push_back(sys.allocateArray(n * 4ull, true));
        words.push_back(n);
    }
    // The last array is the kernel's output (CPU does not produce it).
    const Addr out = arrays.back();
    const std::uint32_t outWords = words.back();

    CpuProgram produce;
    for (std::uint32_t a = 0; a + 1 < numArrays; ++a) {
        for (std::uint32_t i = 0; i < words[a]; ++i) {
            const Addr va = arrays[a] + i * 4ull;
            produce.push_back(cpuStore(va, producedValue(va), 4));
            if (rng.chance(0.1))
                produce.push_back(cpuCompute(rng.below(8)));
        }
    }
    produce.push_back(cpuFence());

    KernelDesc k;
    k.name = "random_consumer";
    k.threadsPerBlock = 128;
    k.blocks = 4 + static_cast<std::uint32_t>(rng.below(8));
    const std::uint32_t totalThreads = k.blocks * k.threadsPerBlock;
    // Per-thread behaviour must be a pure function of (block, thread) so
    // both modes and reruns produce identical op streams.
    const std::uint64_t bodySeed = rng.next();
    const std::uint32_t inputs = numArrays - 1;
    auto arraysCopy = arrays;
    auto wordsCopy = words;
    k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
        // SIMT lockstep: per-warp decisions (op count, compute mix) come
        // from a warp-seeded RNG so every lane emits the same op sequence;
        // only addresses vary per lane.
        Rng warpRng(bodySeed ^ (static_cast<std::uint64_t>(b) << 32) ^
                    (tid / 32));
        Rng laneRng(bodySeed * 31 + b * 131071 + tid);
        const std::uint32_t ops =
            1 + static_cast<std::uint32_t>(warpRng.below(6));
        for (std::uint32_t op = 0; op < ops; ++op) {
            const std::uint32_t a =
                static_cast<std::uint32_t>(warpRng.below(inputs));
            const std::uint32_t i =
                static_cast<std::uint32_t>(laneRng.below(wordsCopy[a]));
            const Addr va = arraysCopy[a] + i * 4ull;
            t.ldCheck(va, producedValue(va), 4);
            if (warpRng.chance(0.5))
                t.compute(static_cast<std::uint32_t>(warpRng.below(6)) + 1);
        }
        // Disjoint output slot per global thread id.
        const std::uint32_t gid = b * 128 + tid;
        if (gid < outWords)
            t.st(out + gid * 4ull, gid * 11ull + 3, 4);
    };

    CpuProgram readBack;
    const std::uint32_t checked =
        std::min(outWords, totalThreads);
    for (std::uint32_t gid = 0; gid < checked;
         gid += 1 + static_cast<std::uint32_t>(rng.below(32)))
        readBack.push_back(cpuLoadCheck(out + gid * 4ull, gid * 11ull + 3, 4));

    sys.runCpuProgram(produce, [&] {
        sys.launchKernel(k, [&] { sys.runCpuProgram(readBack, [] {}); });
    });
    sys.simulate();

    ScenarioResult result;
    result.metrics = sys.metrics();
    result.violations = sys.checkCoherenceInvariants();
    return result;
}

TEST_P(SystemProperty, FunctionallyCorrectUnderBothSchemes)
{
    const auto ccsm = runScenario(GetParam().seed, CoherenceMode::kCcsm);
    EXPECT_EQ(ccsm.metrics.checkFailures, 0u);
    EXPECT_TRUE(ccsm.violations.empty())
        << (ccsm.violations.empty() ? "" : ccsm.violations.front());

    const auto ds = runScenario(GetParam().seed, CoherenceMode::kDirectStore);
    EXPECT_EQ(ds.metrics.checkFailures, 0u);
    EXPECT_TRUE(ds.violations.empty())
        << (ds.violations.empty() ? "" : ds.violations.front());
}

TEST_P(SystemProperty, DirectStoreDoesNotHurt)
{
    const auto ccsm = runScenario(GetParam().seed, CoherenceMode::kCcsm);
    const auto ds = runScenario(GetParam().seed, CoherenceMode::kDirectStore);
    // The paper's headline robustness claim, with 3% modelling noise.
    EXPECT_LT(static_cast<double>(ds.metrics.ticks),
              static_cast<double>(ccsm.metrics.ticks) * 1.03);
}

TEST_P(SystemProperty, RunsAreBitDeterministic)
{
    const auto first = runScenario(GetParam().seed, CoherenceMode::kDirectStore);
    const auto second = runScenario(GetParam().seed, CoherenceMode::kDirectStore);
    EXPECT_EQ(first.metrics.ticks, second.metrics.ticks);
    EXPECT_EQ(first.metrics.gpuL2Misses, second.metrics.gpuL2Misses);
    EXPECT_EQ(first.metrics.coherenceMessages,
              second.metrics.coherenceMessages);
    EXPECT_EQ(first.metrics.dsFills, second.metrics.dsFills);
}

// ---------------------------------------------------------------------------
// Stat-counter invariants: the StatRegistry snapshots of a run must be
// internally consistent (conservation laws of the direct-store pipeline)
// and consistent across modes (same program, same demand).

std::uint64_t counter(const std::map<std::string, std::uint64_t>& stats,
                      const std::string& name)
{
    const auto it = stats.find(name);
    EXPECT_NE(it, stats.end()) << "missing counter " << name;
    return it == stats.end() ? 0 : it->second;
}

std::uint64_t sliceSum(const std::map<std::string, std::uint64_t>& stats,
                       std::uint32_t slices, const std::string& leaf)
{
    std::uint64_t sum = 0;
    for (std::uint32_t s = 0; s < slices; ++s)
        sum += counter(stats,
                       "gpu.l2.slice" + std::to_string(s) + "." + leaf);
    return sum;
}

class StatInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(StatInvariants, CountersObeyConservationAcrossModes)
{
    const Workload& w = WorkloadRegistry::instance().get(GetParam());
    const auto ccsm = runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm);
    const auto ds =
        runWorkload(w, InputSize::kSmall, CoherenceMode::kDirectStore);
    const std::uint32_t slices = SystemConfig::paper(CoherenceMode::kCcsm)
                                     .gpuL2Slices;

    // Direct-store conservation: every remote store the CPU issued arrives
    // at exactly one slice, as exactly one DsPutX on the DS network, and is
    // resolved as either an L2 fill or an occupancy bypass.
    const auto& d = ds.statCounters;
    const std::uint64_t putx = counter(d, "cpu.core.ds_putx_sent");
    EXPECT_EQ(putx, counter(d, "net.ds.msg.DsPutX"));
    EXPECT_EQ(putx, sliceSum(d, slices, "ds_stores"));
    EXPECT_EQ(sliceSum(d, slices, "ds_stores"),
              sliceSum(d, slices, "ds_fills") +
                  sliceSum(d, slices, "ds_bypassed"));
    EXPECT_LE(sliceSum(d, slices, "ds_merges"),
              sliceSum(d, slices, "ds_fills"));
    // remote_stores counts DS-routed store *ops*; the RSB write-combines
    // them into whole-line DsPutX flushes, so ops bound flushes from above.
    EXPECT_GE(counter(d, "cpu.core.remote_stores"), putx);
    EXPECT_GT(putx, 0u);

    // CCSM never touches the direct-store machinery.
    const auto& c = ccsm.statCounters;
    EXPECT_EQ(counter(c, "cpu.core.ds_putx_sent"), 0u);
    EXPECT_EQ(counter(c, "cpu.core.remote_stores"), 0u);
    EXPECT_EQ(counter(c, "net.ds.msg.DsPutX"), 0u);
    EXPECT_EQ(sliceSum(c, slices, "ds_stores"), 0u);
    EXPECT_EQ(sliceSum(c, slices, "ds_fills"), 0u);

    // Same program in both modes: identical demand at the CPU core (a
    // DS-routed store op is counted as a remote_store instead of a store,
    // so the mode split must re-add to the CCSM total), and no functional
    // check may fail in either.
    EXPECT_EQ(counter(c, "cpu.core.loads"), counter(d, "cpu.core.loads"));
    EXPECT_EQ(counter(c, "cpu.core.stores"),
              counter(d, "cpu.core.stores") +
                  counter(d, "cpu.core.remote_stores"));
    EXPECT_EQ(counter(c, "cpu.core.check_failures"), 0u);
    EXPECT_EQ(counter(d, "cpu.core.check_failures"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, StatInvariants,
                         ::testing::Values("VA", "BP", "NN"),
                         [](const ::testing::TestParamInfo<const char*>& p) {
                             return p.param;
                         });

INSTANTIATE_TEST_SUITE_P(Seeds, SystemProperty,
                         ::testing::Values(RandomScenario{11},
                                           RandomScenario{22},
                                           RandomScenario{33},
                                           RandomScenario{44},
                                           RandomScenario{55},
                                           RandomScenario{66}),
                         [](const ::testing::TestParamInfo<RandomScenario>& p) {
                             return "seed" + std::to_string(p.param.seed);
                         });

} // namespace
} // namespace dscoh
