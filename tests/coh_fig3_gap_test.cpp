// Fig. 3 gap report: sweep workloads plus directed scenarios, then compare
// the recorded transition coverage against the canonical edge table in
// coherence/fig3_edges.h. Failure output lists exactly the edges nothing
// exercised, so a protocol change that makes an edge unreachable (or adds
// an untested one) is reported by name instead of passing silently.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "coherence/fig3_edges.h"
#include "coherence/transition_coverage.h"
#include "core/system.h"
#include "workloads/runner.h"

namespace dscoh {
namespace {

// CPU L2 in the paper config: 2 MB / 8 ways / 128 B lines = 2048 sets.
constexpr std::uint32_t kCpuWays = 8;
constexpr Addr kCpuSetStride = 2048ull * kLineSize;

class Fig3GapReport : public ::testing::Test {
protected:
    void SetUp() override
    {
        TransitionCoverage::instance().reset();
        TransitionCoverage::instance().enable();
    }
    void TearDown() override
    {
        TransitionCoverage::instance().disable();
        TransitionCoverage::instance().reset();
    }
};

/// Cold misses, fills, hits and upgrades on a single agent.
void runBaselineScenario()
{
    System sys(SystemConfig::paper(CoherenceMode::kCcsm));
    const Addr a = sys.allocateArray(4 * kLineSize, false);
    CpuProgram prog;
    prog.push_back(cpuStore(a, 1, 4));            // I -> IM_D -> MM
    prog.push_back(cpuFence());
    prog.push_back(cpuStore(a + 4, 2, 4));        // MM write hit
    prog.push_back(cpuFence());
    prog.push_back(cpuLoadCheck(a, 1, 4));        // MM read hit
    prog.push_back(cpuLoad(a + kLineSize, 4));    // I -> IS_D -> M
    prog.push_back(cpuLoad(a + kLineSize, 4));    // M read hit
    prog.push_back(cpuStore(a + kLineSize, 3, 4)); // M -> SM_D -> MM
    prog.push_back(cpuFence());
    sys.runCpuProgram(prog, [] {});
    sys.simulate();
}

/// CPU and GPU contending: sharer fills, snoop downgrades/invalidations,
/// upgrades out of S and O.
void runContentionScenario()
{
    System sys(SystemConfig::paper(CoherenceMode::kCcsm));
    // Lines 0..31 are CPU-produced, 32..63 GPU-produced, 64.. untouched
    // (so cold CPU loads of them land M, not S).
    const Addr arr = sys.allocateArray(80 * kLineSize, true);
    const auto lineVa = [arr](std::uint32_t i) {
        return arr + static_cast<Addr>(i) * kLineSize;
    };

    CpuProgram produce; // MM at the CPU for lines 0..31
    for (std::uint32_t i = 0; i < 32; ++i)
        produce.push_back(cpuStore(lineVa(i), i, 4));
    produce.push_back(cpuFence());

    KernelDesc consume; // lines 0..15 read (CPU MM -> O), 16..31 written
    consume.name = "consume";
    consume.blocks = 1;
    consume.threadsPerBlock = 32;
    consume.body = [lineVa](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        if (tid < 16)
            t.ld(lineVa(tid), 4); // SnpGetS against MM
        else
            t.st(lineVa(tid), tid, 4); // SnpGetX against MM
    };

    KernelDesc produceGpu; // lines 32..63 become slice-owned
    produceGpu.name = "produceGpu";
    produceGpu.blocks = 1;
    produceGpu.threadsPerBlock = 32;
    produceGpu.body = [lineVa](ThreadBuilder& t, std::uint32_t,
                               std::uint32_t tid) {
        t.st(lineVa(32 + tid), tid, 4);
    };

    CpuProgram mixCpu;
    // Owner hits and an owner upgrade (lines the GPU only read).
    mixCpu.push_back(cpuLoad(lineVa(0), 4));   // O read hit
    mixCpu.push_back(cpuStore(lineVa(1), 7, 4)); // O -> SM_D -> MM
    mixCpu.push_back(cpuFence());
    // Shared fills from the slice-owned lines, then S hits and an upgrade.
    for (std::uint32_t i = 32; i < 40; ++i)
        mixCpu.push_back(cpuLoad(lineVa(i), 4)); // IS_D -> S
    mixCpu.push_back(cpuLoad(lineVa(32), 4));    // S read hit
    mixCpu.push_back(cpuStore(lineVa(33), 9, 4)); // S -> SM_D -> MM
    mixCpu.push_back(cpuFence());
    // Cold loads of untouched lines land clean-exclusive M; the GPU then
    // reads one (M -> SnpGetS -> O) and writes the other (M -> SnpGetX -> I).
    mixCpu.push_back(cpuLoad(lineVa(64), 4));
    mixCpu.push_back(cpuLoad(lineVa(65), 4));

    KernelDesc invalidate; // snoops against S (34), O (2) and M (64/65)
    invalidate.name = "invalidate";
    invalidate.blocks = 1;
    invalidate.threadsPerBlock = 32;
    invalidate.body = [lineVa](ThreadBuilder& t, std::uint32_t,
                               std::uint32_t tid) {
        if (tid == 0)
            t.st(lineVa(34), 1, 4);
        else if (tid == 1)
            t.st(lineVa(2), 1, 4);
        else if (tid == 2)
            t.ld(lineVa(64), 4);
        else if (tid == 3)
            t.st(lineVa(65), 1, 4);
    };

    sys.runCpuProgram(produce, [&] {
        sys.launchKernel(consume, [&] {
            sys.launchKernel(produceGpu, [&] {
                sys.runCpuProgram(mixCpu, [&] {
                    sys.launchKernel(invalidate, [] {});
                });
            });
        });
    });
    sys.simulate();
}

/// Replacement out of every stable state: silent drops of S and M, dirty
/// writebacks out of MM and O, and their acks — plus the owner self-loop
/// O --SnpGetS--> O when a re-reader finds the evicted-then-refetched line.
void runEvictionScenario()
{
    System sys(SystemConfig::paper(CoherenceMode::kCcsm));
    // One CPU set, kCpuWays + 1 conflicting lines per wave.
    const std::uint32_t lines = kCpuWays + 1;
    const Addr arr =
        sys.allocateArray(static_cast<Addr>(4 * lines) * kCpuSetStride, true);
    const auto wave = [arr](std::uint32_t w, std::uint32_t i) {
        return arr + static_cast<Addr>(w * lines + i) * kCpuSetStride;
    };

    // Wave 0: CPU dirties the set past capacity -> MM Evict MI_A, WbAck.
    CpuProgram dirty;
    for (std::uint32_t i = 0; i < lines; ++i)
        dirty.push_back(cpuStore(wave(0, i), i, 4));
    dirty.push_back(cpuFence());

    // Wave 1: CPU dirties, the GPU reads (CPU MM -> O), then CPU cold-loads
    // the rest of the set -> O Evict OI_A, WbAck; the loads themselves land
    // M and overflow -> M Evict I.
    CpuProgram own;
    for (std::uint32_t i = 0; i < 2; ++i)
        own.push_back(cpuStore(wave(1, i), i, 4));
    own.push_back(cpuFence());
    KernelDesc reader;
    reader.name = "reader";
    reader.blocks = 1;
    reader.threadsPerBlock = 32;
    reader.body = [&wave](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        if (tid < 2)
            t.ld(wave(1, tid), 4);
    };
    CpuProgram coldFill;
    for (std::uint32_t i = 2; i < lines; ++i)
        coldFill.push_back(cpuLoad(wave(1, i), 4));
    for (std::uint32_t i = 0; i < lines; ++i)
        coldFill.push_back(cpuLoad(wave(2, i), 4));

    // Wave 3: the GPU owns a line (slice MM -> O once the CPU reads it);
    // evicting the CPU's S copy and re-reading makes the slice supply again
    // from O (O --SnpGetS--> O at the slice), and the S copies overflowing
    // the set cover S Evict I.
    KernelDesc gpuProduce;
    gpuProduce.name = "gpuProduce";
    gpuProduce.blocks = 1;
    gpuProduce.threadsPerBlock = 32;
    gpuProduce.body = [&wave](ThreadBuilder& t, std::uint32_t,
                              std::uint32_t tid) {
        if (tid < kCpuWays + 1)
            t.st(wave(3, tid), tid, 4);
    };
    CpuProgram shareIn; // fills land S (slice stays owner)
    for (std::uint32_t i = 0; i < lines; ++i)
        shareIn.push_back(cpuLoad(wave(3, i), 4));
    CpuProgram reRead; // the evicted victim refetches from the slice's O copy
    reRead.push_back(cpuLoad(wave(3, 0), 4));

    sys.runCpuProgram(dirty, [&] {
        sys.runCpuProgram(own, [&] {
            sys.launchKernel(reader, [&] {
                sys.runCpuProgram(coldFill, [&] {
                    sys.launchKernel(gpuProduce, [&] {
                        sys.runCpuProgram(shareIn, [&] {
                            sys.runCpuProgram(reRead, [] {});
                        });
                    });
                });
            });
        });
    });
    sys.simulate();
}

/// The direct-store extension: CPU-side remote-store edges out of every
/// stable state and the slice-side install/merge edges.
void runDirectStoreScenario()
{
    System sys(SystemConfig::paper(CoherenceMode::kDirectStore));
    const Addr ds = sys.allocateArray(8 * kLineSize, true);

    CpuProgram produce; // full lines install at the slice; CPU stays I
    for (std::uint32_t i = 0; i < 8 * kLineSize / 4; ++i)
        produce.push_back(cpuStore(ds + i * 4ull, i, 4));
    produce.push_back(cpuFence());
    produce.push_back(cpuStore(ds + 4, 0x99, 4)); // partial -> slice merge
    produce.push_back(cpuFence());
    sys.runCpuProgram(produce, [] {});
    sys.simulate();

    // The defensive CPU-side edges (S/M/MM/O -> I) need the CPU to hold a
    // copy, and in direct-store mode a shared allocation is DS-mapped (the
    // CPU never caches it). prepareRemoteStore is an agent-level method, so
    // set the states up in a CCSM system and drive it directly there.
    System ccsm(SystemConfig::paper(CoherenceMode::kCcsm));
    const Addr heap = ccsm.allocateArray(8 * kLineSize, true);
    CpuProgram setup;
    setup.push_back(cpuStore(heap, 1, 4)); // line 0 -> MM
    setup.push_back(cpuStore(heap + kLineSize, 1, 4)); // line 1 -> MM -> O
    setup.push_back(cpuFence());
    setup.push_back(cpuLoad(heap + 2 * kLineSize, 4)); // line 2 -> M
    KernelDesc touch; // line 1: CPU -> O; line 3: slice-owned for the S fill
    touch.name = "touch";
    touch.blocks = 1;
    touch.threadsPerBlock = 32;
    touch.body = [heap](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        if (tid == 0)
            t.ld(heap + kLineSize, 4);
        else if (tid == 1)
            t.st(heap + 3 * kLineSize, 5, 4);
    };
    CpuProgram shareIn; // line 3 -> S at the CPU
    shareIn.push_back(cpuLoad(heap + 3 * kLineSize, 4));
    ccsm.runCpuProgram(setup, [&] {
        ccsm.launchKernel(touch, [&] {
            ccsm.runCpuProgram(shareIn, [] {});
        });
    });
    ccsm.simulate();

    const auto pa = [&ccsm, heap](std::uint32_t line) {
        return ccsm.addressSpace()
            .translate(heap + static_cast<Addr>(line) * kLineSize)
            .paddr;
    };
    ASSERT_EQ(ccsm.cpuCache().stateOf(pa(0)), CohState::kMM);
    ASSERT_EQ(ccsm.cpuCache().stateOf(pa(1)), CohState::kO);
    ASSERT_EQ(ccsm.cpuCache().stateOf(pa(2)), CohState::kM);
    ASSERT_EQ(ccsm.cpuCache().stateOf(pa(3)), CohState::kS);
    int ready = 0;
    for (std::uint32_t line = 0; line < 4; ++line)
        ccsm.cpuCache().prepareRemoteStore(pa(line), [&ready] { ++ready; });
    ccsm.simulate();
    ASSERT_EQ(ready, 4);
}

/// The delivery-hardening edges (PROTOCOL.md "Delivery hardening"): a
/// whole-run DS outage degrades every push to the pull path
/// (I --FallbackStore--> MM), a corrupted push is nacked in place
/// (I --CorruptPush--> I), and a retransmit crossing a lost ack is squashed
/// at the slice as an already-served duplicate (MM --DupPush--> MM).
void runHardenedDeliveryScenario()
{
    const auto pushLines = [](SystemConfig cfg) {
        System sys(std::move(cfg));
        const Addr ds = sys.allocateArray(2 * kLineSize, true);
        CpuProgram p;
        for (std::uint32_t i = 0; i < 2 * kLineSize / 4; ++i)
            p.push_back(cpuStore(ds + i * 4ull, i, 4));
        p.push_back(cpuFence());
        sys.runCpuProgram(p, [] {});
        sys.simulate();
    };

    // DS network down for the whole run: pushes never go on the wire and
    // degrade straight to the coherent fallback store.
    SystemConfig outage = SystemConfig::paper(CoherenceMode::kDirectStore);
    outage.faults.linkDownFrom = 0;
    outage.faults.linkDownUntil = 2'000'000'000;
    outage.dsAckTimeout = 2000;
    outage.dsMaxRetries = 1;
    pushLines(outage);

    // Half the DS messages are corrupted in flight: the slice's checksum
    // check rejects them until a clean retransmit lands.
    SystemConfig corrupt = SystemConfig::paper(CoherenceMode::kDirectStore);
    corrupt.faults.corruptPpm = 500'000;
    corrupt.dsAckTimeout = 4000;
    pushLines(corrupt);

    // Every CPU-bound message (i.e. every DsAck) is dropped early on: the
    // slice serves the push, the ack vanishes, and the CPU's retransmit
    // arrives as a duplicate of an already-served transaction — squashed,
    // with the ack replayed once the outage window has passed.
    SystemConfig lostAcks = SystemConfig::paper(CoherenceMode::kDirectStore);
    lostAcks.faults.dropPpm = 1'000'000;
    lostAcks.faults.dstFilter =
        System::kFirstSliceNode + lostAcks.gpuL2Slices + 1; // the CPU core
    lostAcks.faults.windowStart = 0;
    lostAcks.faults.windowEnd = 6000;
    lostAcks.dsAckTimeout = 20'000;
    pushLines(lostAcks);
}

/// The multi-GPU edges: cross-shard request routing (RemoteGetS/RemoteGetX)
/// and the timestamp fast path (TsGrant out of M and MM, TsFill, TsExpire,
/// TsFallback, and the write hold against an active lease).
void runMultiGpuScenario()
{
    SystemConfig cfg = SystemConfig::paper(CoherenceMode::kDirectStore);
    cfg.numGpus = 2;
    cfg.shardPolicy = ShardPolicy::kPage;
    cfg.tsLeaseTicks = 100'000;
    System sys(cfg);

    // One page homed at GPU 0; GPU 1 is the remote reader throughout.
    const Addr arr = sys.allocateArrayHomed(kPageSize, 0);
    const auto lineVa = [arr](std::uint32_t i) {
        return arr + static_cast<Addr>(i) * kLineSize;
    };

    CpuProgram produce; // full-line pushes: lines 0..1 -> MM at GPU0's slice
    for (std::uint32_t i = 0; i < 2 * kLineSize / 4; ++i)
        produce.push_back(cpuStore(arr + i * 4ull, i, 4));
    produce.push_back(cpuFence());

    KernelDesc warm; // GPU0 cold-loads line 2 -> clean-exclusive M locally
    warm.name = "warm";
    warm.blocks = 1;
    warm.threadsPerBlock = 32;
    warm.gpu = 0;
    warm.body = [lineVa](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        if (tid == 0)
            t.ld(lineVa(2), 4);
        else
            t.nop();
    };

    KernelDesc lease; // GPU1: leases out of MM and M, a NACKed line, and a
    lease.name = "lease"; // remote store miss
    lease.blocks = 1;
    lease.threadsPerBlock = 32;
    lease.gpu = 1;
    lease.body = [lineVa](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        if (tid == 0)
            t.ld(lineVa(0), 4); // MM --TsGrant--> MM, I --TsFill--> I
        else if (tid == 1)
            t.ld(lineVa(2), 4); // M --TsGrant--> M
        else if (tid == 2)
            t.ld(lineVa(3), 4); // home slice I: TsFallback + RemoteGetS
        else if (tid == 3)
            t.st(lineVa(4), 9, 4); // I --RemoteGetX--> IM_D
        else
            t.nop();
    };

    KernelDesc hold; // GPU0 writes line 0 while GPU1's lease is live:
    hold.name = "hold"; // MM --LeaseHold--> MM, applied at lease expiry
    hold.blocks = 1;
    hold.threadsPerBlock = 32;
    hold.gpu = 0;
    hold.body = [lineVa](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        if (tid == 0)
            t.st(lineVa(0), 7, 4);
        else
            t.nop();
    };

    KernelDesc expire; // GPU1 re-reads after the hold drained past expiry:
    expire.name = "expire"; // I --TsExpire--> I, then a fresh pull
    expire.blocks = 1;
    expire.threadsPerBlock = 32;
    expire.gpu = 1;
    expire.body = [lineVa](ThreadBuilder& t, std::uint32_t,
                           std::uint32_t tid) {
        if (tid == 0)
            t.ldCheck(lineVa(0), 7, 4);
        else
            t.nop();
    };

    sys.runCpuProgram(produce, [&] {
        sys.launchKernel(warm, [&] {
            sys.launchKernel(lease, [&] {
                sys.launchKernel(hold, [&] {
                    sys.launchKernel(expire, [] {});
                });
            });
        });
    });
    sys.simulate();
    EXPECT_EQ(sys.metrics().checkFailures, 0u);
    EXPECT_TRUE(sys.checkCoherenceInvariants().empty());
}

TEST_F(Fig3GapReport, AllStableEdgesCovered)
{
    // Real workloads first (broad, incidental coverage)...
    runWorkload(WorkloadRegistry::instance().get("VA"), InputSize::kSmall,
                CoherenceMode::kCcsm);
    runWorkload(WorkloadRegistry::instance().get("VA"), InputSize::kSmall,
                CoherenceMode::kDirectStore);
    // ...then directed scenarios for the edges workloads rarely take.
    runBaselineScenario();
    runContentionScenario();
    runEvictionScenario();
    runDirectStoreScenario();
    runHardenedDeliveryScenario();
    runMultiGpuScenario();

    const TransitionCoverage& cov = TransitionCoverage::instance();
    std::vector<const Fig3Edge*> gaps;
    for (const Fig3Edge& e : kFig3StableEdges)
        if (!cov.covered(e.from, e.event, e.to))
            gaps.push_back(&e);

    std::ostringstream report;
    report << "uncovered Fig. 3 edges (" << gaps.size() << "/"
           << kFig3StableEdgeCount << "):\n";
    for (const Fig3Edge* e : gaps)
        report << "  " << to_string(e->from) << " --" << to_string(e->event)
               << "--> " << to_string(e->to) << "  (" << e->note << ")\n";
    EXPECT_TRUE(gaps.empty()) << report.str();
}

TEST_F(Fig3GapReport, TableIsWellFormed)
{
    // Every table entry must be unique; the race list must not duplicate
    // the stable list.
    std::vector<std::tuple<CohState, CohEvent, CohState>> seen;
    const auto add = [&seen](const Fig3Edge& e) {
        const auto key = std::make_tuple(e.from, e.event, e.to);
        for (const auto& k : seen)
            if (k == key)
                return false;
        seen.push_back(key);
        return true;
    };
    for (const Fig3Edge& e : kFig3StableEdges)
        EXPECT_TRUE(add(e)) << "duplicate stable edge: " << to_string(e.from)
                            << " --" << to_string(e.event) << "--> "
                            << to_string(e.to);
    for (const Fig3Edge& e : kRaceEdges)
        EXPECT_TRUE(add(e)) << "race edge duplicates a stable edge: "
                            << to_string(e.from) << " --"
                            << to_string(e.event) << "--> " << to_string(e.to);
}

} // namespace
} // namespace dscoh
