// SM and GPU-device behaviour, driven through a full System so the memory
// backend is real: coalescing, warp padding, shared-memory ops, kernel
// completion including store draining, and multi-kernel sequencing.
#include <gtest/gtest.h>

#include "core/system.h"

namespace dscoh {
namespace {

SystemConfig tinyGpuConfig()
{
    SystemConfig cfg = SystemConfig::paper(CoherenceMode::kCcsm);
    cfg.numSms = 2;
    return cfg;
}

TEST(GpuSm, CoalescedWarpLoadIsOneTransactionPerLine)
{
    System sys(tinyGpuConfig());
    const Addr arr = sys.allocateArray(32 * 4, true); // one warp, 4B each

    KernelDesc k;
    k.name = "coalesced";
    k.blocks = 1;
    k.threadsPerBlock = 32;
    k.body = [arr](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        t.ld(arr + tid * 4ull, 4); // 32 lanes x 4B = exactly one 128B line
    };
    sys.launchKernel(k, [] {});
    sys.simulate();

    // 32 lane-loads, one coalesced transaction.
    EXPECT_EQ(sys.stats().counter("gpu.sm0.global_loads"), 32u);
    EXPECT_EQ(sys.stats().counter("gpu.sm0.coalesced_transactions"), 1u);
}

TEST(GpuSm, UncoalescedWarpLoadFansOut)
{
    System sys(tinyGpuConfig());
    const Addr arr = sys.allocateArray(32 * kLineSize, true);

    KernelDesc k;
    k.name = "strided";
    k.blocks = 1;
    k.threadsPerBlock = 32;
    k.body = [arr](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        t.ld(arr + static_cast<Addr>(tid) * kLineSize, 4); // one line per lane
    };
    sys.launchKernel(k, [] {});
    sys.simulate();
    EXPECT_EQ(sys.stats().counter("gpu.sm0.coalesced_transactions"), 32u);
}

TEST(GpuSm, DivergentLaneStreamsArePadded)
{
    System sys(tinyGpuConfig());
    const Addr arr = sys.allocateArray(64 * 4, true);
    bool done = false;
    KernelDesc k;
    k.name = "divergent";
    k.blocks = 1;
    k.threadsPerBlock = 32;
    k.body = [arr](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        // Lanes emit different op counts; the SM pads with nops.
        for (std::uint32_t i = 0; i <= tid % 4; ++i)
            t.st(arr + (tid * 4ull), tid, 4);
    };
    sys.launchKernel(k, [&done] { done = true; });
    sys.simulate();
    EXPECT_TRUE(done);
    EXPECT_EQ(sys.sm(0).checkFailures() + sys.sm(1).checkFailures(), 0u);
}

TEST(GpuSm, SharedMemoryOpsGenerateNoL2Traffic)
{
    System sys(tinyGpuConfig());
    KernelDesc k;
    k.name = "smem_only";
    k.blocks = 2;
    k.threadsPerBlock = 64;
    k.usesSharedMemory = true;
    k.body = [](ThreadBuilder& t, std::uint32_t, std::uint32_t) {
        for (int i = 0; i < 8; ++i) {
            t.smemSt();
            t.smemLd();
            t.compute(2);
        }
    };
    sys.launchKernel(k, [] {});
    sys.simulate();
    RunMetrics m = sys.metrics();
    EXPECT_EQ(m.gpuL2Accesses, 0u);
    EXPECT_GT(sys.stats().sumCounters("gpu.sm"), 0u);
}

TEST(GpuSm, KernelCompletionWaitsForStoreAcks)
{
    System sys(tinyGpuConfig());
    const Addr arr = sys.allocateArray(4096 * 4, true);
    bool done = false;
    KernelDesc k;
    k.name = "store_heavy";
    k.blocks = 16; // 16 x 256 threads cover all 4096 slots
    k.threadsPerBlock = 256;
    k.body = [arr](ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
        const std::uint32_t i = b * 256 + tid;
        if (i < 4096)
            t.st(arr + i * 4ull, i, 4);
    };
    sys.launchKernel(k, [&done] { done = true; });
    sys.simulate();
    ASSERT_TRUE(done);
    // Every store must be globally performed: read the values back.
    CpuProgram verify;
    for (std::uint32_t i = 0; i < 4096; i += 37)
        verify.push_back(cpuLoadCheck(arr + i * 4ull, i, 4));
    sys.runCpuProgram(verify, [] {});
    sys.simulate();
    EXPECT_EQ(sys.metrics().checkFailures, 0u);
}

TEST(GpuSm, BlocksDistributeAcrossSms)
{
    System sys(tinyGpuConfig());
    const Addr arr = sys.allocateArray(64 * 1024, true);
    KernelDesc k;
    k.name = "spread";
    k.blocks = 16;
    k.threadsPerBlock = 64;
    k.body = [arr](ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
        t.ld(arr + (static_cast<Addr>(b) * 64 + tid) * 4, 4);
    };
    sys.launchKernel(k, [] {});
    sys.simulate();
    EXPECT_GT(sys.stats().counter("gpu.sm0.blocks"), 0u);
    EXPECT_GT(sys.stats().counter("gpu.sm1.blocks"), 0u);
    EXPECT_EQ(sys.stats().counter("gpu.sm0.blocks") +
                  sys.stats().counter("gpu.sm1.blocks"),
              16u);
    EXPECT_EQ(sys.stats().counter("gpu.device.blocks_dispatched"), 16u);
}

TEST(GpuSm, SequentialKernelsFlashInvalidateL1)
{
    System sys(tinyGpuConfig());
    const Addr arr = sys.allocateArray(1024, true);
    KernelDesc k;
    k.name = "reader";
    k.blocks = 1;
    k.threadsPerBlock = 32;
    k.body = [arr](ThreadBuilder& t, std::uint32_t, std::uint32_t tid) {
        t.ld(arr + tid * 4ull, 4);
    };
    int kernelsDone = 0;
    sys.launchKernel(k, [&] {
        ++kernelsDone;
        sys.launchKernel(k, [&] { ++kernelsDone; });
    });
    sys.simulate();
    EXPECT_EQ(kernelsDone, 2);
    // Two launches on the SM that got the block -> two flash invalidates on
    // every SM (all participate in beginKernel).
    EXPECT_EQ(sys.stats().counter("gpu.sm0.l1.flash_invalidates"), 2u);
}

TEST(GpuSm, WarpLatencyHidingOverlapsMisses)
{
    // With many warps, total time must be far below the serial sum of miss
    // latencies (the latency-hiding property the paper leans on).
    System sys(tinyGpuConfig());
    const Addr arr = sys.allocateArray(512 * kLineSize, true);
    KernelDesc k;
    k.name = "parallel_misses";
    k.blocks = 8;
    k.threadsPerBlock = 64;
    k.body = [arr](ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
        t.ld(arr + (static_cast<Addr>(b) * 64 + tid) * kLineSize, 4);
    };
    sys.launchKernel(k, [] {});
    const Tick total = sys.simulate();
    // 512 misses x ~300 ticks serial would be ~150k; overlap must crush it.
    EXPECT_LT(total, 40000u);
}

} // namespace
} // namespace dscoh
