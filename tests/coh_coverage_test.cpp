// Fig. 3 transition coverage: prove the implementation actually exercises
// every stable-state edge of the paper's diagram, including the bold
// remote-store transitions and the blue slice-install transition.
#include <gtest/gtest.h>

#include <sstream>

#include "coherence/transition_coverage.h"
#include "core/system.h"
#include "workloads/runner.h"

namespace dscoh {
namespace {

class Fig3Coverage : public ::testing::Test {
protected:
    void SetUp() override
    {
        TransitionCoverage::instance().reset();
        TransitionCoverage::instance().enable();
    }
    void TearDown() override
    {
        TransitionCoverage::instance().disable();
        TransitionCoverage::instance().reset();
    }

    static bool covered(CohState from, CohEvent e, CohState to)
    {
        return TransitionCoverage::instance().covered(from, e, to);
    }
};

TEST_F(Fig3Coverage, BaselineProtocolEdges)
{
    // Directed CPU sequences cover the conventional MOESI edges.
    System sys(SystemConfig::paper(CoherenceMode::kCcsm));
    const Addr a = sys.allocateArray(8 * kLineSize, false);

    CpuProgram prog;
    // Cold store: I -> IM_D -> MM; then a later store and load hit MM.
    prog.push_back(cpuStore(a, 1, 4));
    prog.push_back(cpuFence());
    prog.push_back(cpuStore(a + 4, 2, 4));
    prog.push_back(cpuFence());
    prog.push_back(cpuLoadCheck(a, 1, 4));
    // Cold load of an untouched line: I -> IS_D -> M (exclusive grant),
    // then a store to it must upgrade (stores are not allowed in M).
    prog.push_back(cpuLoad(a + kLineSize, 4));
    prog.push_back(cpuStore(a + kLineSize, 3, 4));
    prog.push_back(cpuFence());
    sys.runCpuProgram(prog, [] {});
    sys.simulate();

    // Misses out of I.
    EXPECT_TRUE(covered(CohState::kI, CohEvent::kLoad, CohState::kIS_D));
    EXPECT_TRUE(covered(CohState::kI, CohEvent::kStore, CohState::kIM_D));
    // Fills.
    EXPECT_TRUE(covered(CohState::kIS_D, CohEvent::kFill, CohState::kM));
    EXPECT_TRUE(covered(CohState::kIM_D, CohEvent::kFill, CohState::kMM));
    // Hits (the Fig. 3 self-loops).
    EXPECT_TRUE(covered(CohState::kMM, CohEvent::kLoad, CohState::kMM));
    EXPECT_TRUE(covered(CohState::kMM, CohEvent::kStore, CohState::kMM));
    // The paper's "stores are not allowed in M": M upgrades through GetX.
    EXPECT_TRUE(covered(CohState::kM, CohEvent::kStore, CohState::kSM_D));
    EXPECT_TRUE(covered(CohState::kSM_D, CohEvent::kFill, CohState::kMM));
}

TEST_F(Fig3Coverage, SnoopAndWritebackEdges)
{
    // Two agents fighting over lines: covers owner downgrades,
    // invalidations and the writeback path.
    System sys(SystemConfig::paper(CoherenceMode::kCcsm));
    const Addr arr = sys.allocateArray(64 * kLineSize, true);

    // CPU produces (MM at CPU), GPU reads (MM --SnpGetS--> O at CPU), GPU
    // writes (O --SnpGetX--> I at CPU), CPU reads back (S at CPU after the
    // slice supplies), CPU writes again (S --Store--> SM_D upgrade).
    CpuProgram produce;
    for (std::uint32_t i = 0; i < 64; ++i)
        produce.push_back(
            cpuStore(arr + static_cast<Addr>(i) * kLineSize, i, 4));
    produce.push_back(cpuFence());

    KernelDesc k;
    k.name = "touch";
    k.blocks = 2;
    k.threadsPerBlock = 32;
    k.body = [arr](ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
        const std::uint32_t i = b * 32 + tid;
        t.ld(arr + static_cast<Addr>(i) * kLineSize, 4);
        t.st(arr + static_cast<Addr>(i) * kLineSize, i + 1, 4);
    };

    CpuProgram readBack;
    for (std::uint32_t i = 0; i < 64; ++i)
        readBack.push_back(cpuLoad(arr + static_cast<Addr>(i) * kLineSize, 4));
    CpuProgram writeAgain;
    for (std::uint32_t i = 0; i < 64; ++i)
        writeAgain.push_back(
            cpuStore(arr + static_cast<Addr>(i) * kLineSize, i + 2, 4));
    writeAgain.push_back(cpuFence());

    sys.runCpuProgram(produce, [&] {
        sys.launchKernel(k, [&] {
            sys.runCpuProgram(readBack, [&] {
                sys.runCpuProgram(writeAgain, [] {});
            });
        });
    });
    sys.simulate();

    EXPECT_TRUE(covered(CohState::kMM, CohEvent::kSnpGetS, CohState::kO));
    EXPECT_TRUE(covered(CohState::kMM, CohEvent::kSnpGetX, CohState::kI) ||
                covered(CohState::kO, CohEvent::kSnpGetX, CohState::kI));
    EXPECT_TRUE(covered(CohState::kS, CohEvent::kStore, CohState::kSM_D) ||
                covered(CohState::kO, CohEvent::kStore, CohState::kSM_D));
}

TEST_F(Fig3Coverage, EvictionAndWritebackAckEdges)
{
    // Conflict misses on a tiny system flush dirty lines through MI_A.
    System sys(SystemConfig::paper(CoherenceMode::kCcsm));
    // Stride by the CPU L2 set count so one set overflows: 2 MB / 8 ways /
    // 128 B = 2048 sets; 32 strides span 8 MB.
    const Addr arr = sys.allocateArray(33ull * 2048 * kLineSize, false);
    CpuProgram prog;
    for (std::uint32_t i = 0; i < 32; ++i)
        prog.push_back(
            cpuStore(arr + static_cast<Addr>(i) * 2048 * kLineSize, i, 4));
    prog.push_back(cpuFence());
    sys.runCpuProgram(prog, [] {});
    sys.simulate();

    EXPECT_TRUE(covered(CohState::kMM, CohEvent::kEvict, CohState::kMI_A));
    EXPECT_TRUE(covered(CohState::kMI_A, CohEvent::kWbAck, CohState::kI));
}

TEST_F(Fig3Coverage, RemoteStoreEdges)
{
    // The paper's bold edges: remote stores leave the CPU in I from every
    // starting state; the blue edge installs at the slice.
    System sys(SystemConfig::paper(CoherenceMode::kDirectStore));
    const Addr ds = sys.allocateArray(16 * kLineSize, true);

    CpuProgram produce;
    for (std::uint32_t i = 0; i < 16 * kLineSize / 4; ++i)
        produce.push_back(cpuStore(ds + i * 4ull, i, 4));
    produce.push_back(cpuFence());
    // A partial line afterwards exercises the fetch-merge path.
    produce.push_back(cpuStore(ds + 4, 0x99, 4));
    produce.push_back(cpuFence());
    sys.runCpuProgram(produce, [] {});
    sys.simulate();

    // CPU side: I --RemoteStore--> I (DS region is never CPU-cached).
    EXPECT_TRUE(covered(CohState::kI, CohEvent::kRemoteStore, CohState::kI));
    // Slice side: the install (blue edge; M in our write-through variant)
    // and the merge ending MM.
    EXPECT_TRUE(covered(CohState::kI, CohEvent::kRemoteStore, CohState::kM));
    EXPECT_TRUE(covered(CohState::kMM, CohEvent::kRemoteStore, CohState::kMM));

    // The defensive CPU-side transitions (S/M/MM -> I): drive the agent
    // directly, since translated programs never cache the DS region.
    const Addr heap = sys.allocateArray(4 * kLineSize, false);
    CpuProgram cpuOps;
    cpuOps.push_back(cpuStore(heap, 1, 4)); // -> MM at the CPU agent
    cpuOps.push_back(cpuFence());
    cpuOps.push_back(cpuLoad(heap + kLineSize, 4)); // -> M at the CPU agent
    sys.runCpuProgram(cpuOps, [] {});
    sys.simulate();

    const Addr paMm = sys.addressSpace().translate(heap).paddr;
    const Addr paM = sys.addressSpace().translate(heap + kLineSize).paddr;
    ASSERT_EQ(sys.cpuCache().stateOf(paMm), CohState::kMM);
    ASSERT_EQ(sys.cpuCache().stateOf(paM), CohState::kM);
    int ready = 0;
    sys.cpuCache().prepareRemoteStore(paMm, [&ready] { ++ready; });
    sys.cpuCache().prepareRemoteStore(paM, [&ready] { ++ready; });
    sys.simulate();
    EXPECT_EQ(ready, 2);
    EXPECT_TRUE(covered(CohState::kMM, CohEvent::kRemoteStore, CohState::kI));
    EXPECT_TRUE(covered(CohState::kM, CohEvent::kRemoteStore, CohState::kI));
    EXPECT_EQ(sys.cpuCache().stateOf(paMm), CohState::kI);
    EXPECT_EQ(sys.cpuCache().stateOf(paM), CohState::kI);
}

TEST_F(Fig3Coverage, DumpListsTransitions)
{
    runWorkload(WorkloadRegistry::instance().get("VA"), InputSize::kSmall,
                CoherenceMode::kDirectStore);
    std::ostringstream os;
    TransitionCoverage::instance().dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("I --RemoteStore--> M"), std::string::npos);
    EXPECT_GT(TransitionCoverage::instance().distinctTransitions(), 5u);
}

} // namespace
} // namespace dscoh
