// Property-based protocol validation: random access streams from two agents
// must leave the system coherent — single owner, exclusivity, no invented
// values, and program order within one agent on private lines.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "coherence/cache_agent.h"
#include "coherence/home_controller.h"
#include "mem/dram.h"
#include "net/network.h"
#include "sim/sim_context.h"
#include "sim/rng.h"

namespace dscoh {
namespace {

constexpr NodeId kAgentA = 0;
constexpr NodeId kAgentB = 1;
constexpr NodeId kHome = 2;

struct Harness {
    SimContext ctx;
    EventQueue& queue = ctx.queue;
    BackingStore store{1 << 20};
    Dram dram{"dram", ctx, store};
    Network req{"req", ctx, NetworkParams{10, 32}};
    Network fwd{"fwd", ctx, NetworkParams{10, 32}};
    Network resp{"resp", ctx, NetworkParams{10, 32}};
    std::unique_ptr<HomeController> home;
    std::vector<std::unique_ptr<CacheAgent>> agents;

    Harness()
    {
        HomeController::Params hp;
        hp.self = kHome;
        hp.requestNet = &req;
        hp.forwardNet = &fwd;
        hp.responseNet = &resp;
        hp.dram = &dram;
        hp.store = &store;
        hp.peersOf = [](Addr) { return std::vector<NodeId>{kAgentA, kAgentB}; };
        home = std::make_unique<HomeController>("home", ctx, std::move(hp));

        for (NodeId id : {kAgentA, kAgentB}) {
            CacheAgent::Params p;
            p.geometry.sizeBytes = 1024; // tiny: 4 sets x 2 ways, forces evictions
            p.geometry.ways = 2;
            p.mshrs = 6;
            p.writebackEntries = 3;
            p.self = id;
            p.home = kHome;
            p.requestNet = &req;
            p.forwardNet = &fwd;
            p.responseNet = &resp;
            agents.push_back(std::make_unique<CacheAgent>(
                "agent" + std::to_string(id), ctx, p));
            CacheAgent* agent = agents.back().get();
            fwd.connect(id, [agent](const Message& m) { agent->handleForward(m); });
            resp.connect(id, [agent](const Message& m) { agent->handleResponse(m); });
        }
        req.connect(kHome, [this](const Message& m) { home->handleRequest(m); });
        resp.connect(kHome, [this](const Message& m) { home->handleResponse(m); });
    }

    /// Final observable value of a line's first word: owner copy wins, then
    /// any S copy, then memory.
    std::uint64_t finalWord(Addr base)
    {
        for (auto& agent : agents) {
            const CohState s = agent->stateOf(base);
            if (isOwner(s)) {
                std::uint64_t v = 0;
                agent->forEachLine([&](const CacheAgent::Line& line) {
                    if (line.base == base)
                        v = line.data.read(0, 8);
                });
                return v;
            }
        }
        return store.readLine(base).read(0, 8);
    }
};

struct RandomParam {
    std::uint64_t seed;
    int ops;
};

class CohRandom : public ::testing::TestWithParam<RandomParam> {};

TEST_P(CohRandom, ContendedLinesStayCoherent)
{
    Harness h;
    Rng rng(GetParam().seed);
    constexpr int kLines = 12;
    std::map<Addr, std::set<std::uint64_t>> writtenValues;
    std::uint64_t nextValue = 1;

    for (int i = 0; i < GetParam().ops; ++i) {
        const Addr base = rng.below(kLines) * kLineSize;
        auto& agent = *h.agents[rng.below(2)];
        if (rng.chance(0.5)) {
            const std::uint64_t value = nextValue++;
            writtenValues[base].insert(value);
            h.queue.scheduleAfter(rng.below(200), [&agent, base, value] {
                agent.access(base, true, [value](CacheAgent::Line& line) {
                    line.data.write(0, value, 8);
                });
            });
        } else {
            h.queue.scheduleAfter(rng.below(200), [&agent, base] {
                agent.access(base, false, [](CacheAgent::Line&) {});
            });
        }
    }
    h.queue.run();

    ASSERT_TRUE(h.home->quiescent());
    for (int l = 0; l < kLines; ++l) {
        const Addr base = static_cast<Addr>(l) * kLineSize;
        const CohState sa = h.agents[0]->stateOf(base);
        const CohState sb = h.agents[1]->stateOf(base);
        EXPECT_TRUE(isStable(sa)) << to_string(sa);
        EXPECT_TRUE(isStable(sb)) << to_string(sb);
        // Single-owner and exclusivity invariants.
        EXPECT_FALSE(isOwner(sa) && isOwner(sb)) << "two owners for line " << l;
        if (sa == CohState::kMM || sa == CohState::kM) {
            EXPECT_EQ(sb, CohState::kI);
        }
        if (sb == CohState::kMM || sb == CohState::kM) {
            EXPECT_EQ(sa, CohState::kI);
        }
        // No invented data: the final word is zero (never written) or one of
        // the values some store actually wrote.
        const std::uint64_t final = h.finalWord(base);
        if (writtenValues[base].empty()) {
            EXPECT_EQ(final, 0u);
        } else {
            EXPECT_TRUE(writtenValues[base].count(final) == 1)
                << "line " << l << " holds invented value " << final;
        }
    }
}

TEST_P(CohRandom, PrivateLinesPreserveProgramOrder)
{
    Harness h;
    Rng rng(GetParam().seed * 7919 + 13);
    constexpr int kLines = 8;
    // Line l belongs to agent l%2: single-writer, so the last store issued
    // (in schedule order at one agent, which executes in order of issue
    // because deferrals replay FIFO per line... we serialize per line by
    // spacing issues) must be the final value.
    std::map<Addr, std::uint64_t> lastWritten;
    Tick when = 0;
    for (int i = 0; i < GetParam().ops; ++i) {
        const int l = static_cast<int>(rng.below(kLines));
        const Addr base = static_cast<Addr>(l) * kLineSize;
        auto& agent = *h.agents[static_cast<std::size_t>(l % 2)];
        const std::uint64_t value = 1000 + static_cast<std::uint64_t>(i);
        when += rng.below(2000); // spaced: each store completes before next
        lastWritten[base] = value;
        h.queue.schedule(when, [&agent, base, value] {
            agent.access(base, true, [value](CacheAgent::Line& line) {
                line.data.write(0, value, 8);
            });
        });
    }
    h.queue.run();
    ASSERT_TRUE(h.home->quiescent());
    for (const auto& [base, value] : lastWritten)
        EXPECT_EQ(h.finalWord(base), value) << "line base " << base;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CohRandom,
                         ::testing::Values(RandomParam{1, 150},
                                           RandomParam{2, 150},
                                           RandomParam{3, 300},
                                           RandomParam{4, 300},
                                           RandomParam{5, 500},
                                           RandomParam{6, 500},
                                           RandomParam{7, 800},
                                           RandomParam{8, 800}),
                         [](const ::testing::TestParamInfo<RandomParam>& pinfo) {
                             return "seed" + std::to_string(pinfo.param.seed) +
                                    "_ops" + std::to_string(pinfo.param.ops);
                         });

TEST(CohDeterminism, IdenticalRunsProduceIdenticalFinalStates)
{
    auto run = [] {
        Harness h;
        Rng rng(42);
        for (int i = 0; i < 300; ++i) {
            const Addr base = rng.below(10) * kLineSize;
            auto& agent = *h.agents[rng.below(2)];
            const bool isStore = rng.chance(0.5);
            const std::uint64_t value = static_cast<std::uint64_t>(i);
            h.queue.scheduleAfter(rng.below(100), [&agent, base, isStore, value] {
                agent.access(base, isStore, [isStore, value](CacheAgent::Line& l) {
                    if (isStore)
                        l.data.write(0, value, 8);
                });
            });
        }
        h.queue.run();
        std::vector<std::uint64_t> snapshot;
        for (int l = 0; l < 10; ++l)
            snapshot.push_back(h.finalWord(static_cast<Addr>(l) * kLineSize));
        snapshot.push_back(h.queue.curTick());
        return snapshot;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace dscoh
