// FairScheduler: the service's entire multi-tenant policy, pinned as a
// pure dispatch-sequence oracle (the scheduler is deliberately lock-free
// and deterministic so these tests ARE the policy spec).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "svc/scheduler.h"

namespace dscoh::svc {
namespace {

/// Drains the scheduler, returning "<requestId>" per dispatch in order.
std::vector<std::string> drainIds(FairScheduler& s)
{
    std::vector<std::string> out;
    while (const std::optional<JobUnit> u = s.next())
        out.push_back(u->requestId);
    return out;
}

TEST(FairScheduler, SingleRequestDispatchesFifo)
{
    FairScheduler s;
    std::string error;
    ASSERT_TRUE(s.enqueue("r1", "a", 0, 1, 3, &error)) << error;
    for (std::size_t i = 0; i < 3; ++i) {
        const std::optional<JobUnit> u = s.next();
        ASSERT_TRUE(u.has_value());
        EXPECT_EQ(u->requestId, "r1");
        EXPECT_EQ(u->jobIndex, i);
    }
    EXPECT_FALSE(s.next().has_value());
}

TEST(FairScheduler, EqualWeightsAlternateBetweenTenants)
{
    FairScheduler s;
    std::string error;
    ASSERT_TRUE(s.enqueue("ra", "alice", 0, 1, 4, &error));
    ASSERT_TRUE(s.enqueue("rb", "bob", 0, 1, 4, &error));
    // alice starts (name tie-break), then strict alternation: each
    // dispatch pushes that tenant's virtual time ahead of the other's.
    EXPECT_EQ(drainIds(s),
              (std::vector<std::string>{"ra", "rb", "ra", "rb", "ra", "rb",
                                        "ra", "rb"}));
}

TEST(FairScheduler, WeightsSkewTheInterleaveProportionally)
{
    FairScheduler s;
    std::string error;
    ASSERT_TRUE(s.enqueue("ra", "alice", 0, 3, 9, &error));
    ASSERT_TRUE(s.enqueue("rb", "bob", 0, 1, 3, &error));
    // Over any window alice (weight 3) gets ~3x bob's dispatches.
    std::map<std::string, int> inFirstEight;
    for (int i = 0; i < 8; ++i)
        ++inFirstEight[s.next()->requestId];
    EXPECT_EQ(inFirstEight["ra"], 6);
    EXPECT_EQ(inFirstEight["rb"], 2);
}

TEST(FairScheduler, PriorityOrdersRequestsWithinOneTenant)
{
    FairScheduler s;
    std::string error;
    ASSERT_TRUE(s.enqueue("low", "a", 0, 1, 2, &error));
    ASSERT_TRUE(s.enqueue("high", "a", 5, 1, 2, &error));
    ASSERT_TRUE(s.enqueue("mid", "a", 2, 1, 1, &error));
    EXPECT_EQ(drainIds(s), (std::vector<std::string>{"high", "high", "mid",
                                                     "low", "low"}));
}

TEST(FairScheduler, EqualPriorityKeepsAdmissionOrder)
{
    FairScheduler s;
    std::string error;
    ASSERT_TRUE(s.enqueue("first", "a", 1, 1, 1, &error));
    ASSERT_TRUE(s.enqueue("second", "a", 1, 1, 1, &error));
    EXPECT_EQ(drainIds(s), (std::vector<std::string>{"first", "second"}));
}

TEST(FairScheduler, IdleTenantDoesNotBankCredit)
{
    FairScheduler s;
    std::string error;
    // alice runs alone for a while...
    ASSERT_TRUE(s.enqueue("ra", "alice", 0, 1, 10, &error));
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(s.next().has_value());
    // ...then bob shows up. Without the virtual-clock catch-up bob would
    // monopolize dispatch for 10 units; with it the two alternate.
    ASSERT_TRUE(s.enqueue("ra2", "alice", 0, 1, 4, &error));
    ASSERT_TRUE(s.enqueue("rb", "bob", 0, 1, 4, &error));
    std::map<std::string, int> firstFour;
    for (int i = 0; i < 4; ++i)
        ++firstFour[s.next()->requestId];
    EXPECT_EQ(firstFour["ra2"], 2);
    EXPECT_EQ(firstFour["rb"], 2);
}

TEST(FairScheduler, BoundedQueueRejectsWholeRequests)
{
    FairScheduler s(5);
    std::string error;
    ASSERT_TRUE(s.enqueue("r1", "a", 0, 1, 3, &error));
    // 3 queued; another 3 would make 6 > 5 — rejected atomically.
    EXPECT_FALSE(s.enqueue("r2", "b", 0, 1, 3, &error));
    EXPECT_NE(error.find("queue full"), std::string::npos);
    EXPECT_EQ(s.queuedJobs(), 3u);
    // A request that fits is still admitted.
    ASSERT_TRUE(s.enqueue("r3", "b", 0, 1, 2, &error));
    EXPECT_EQ(s.queuedJobs(), 5u);
    // Draining frees capacity.
    ASSERT_TRUE(s.next().has_value());
    ASSERT_TRUE(s.enqueue("r4", "c", 0, 1, 1, &error));
}

TEST(FairScheduler, ZeroJobRequestsAreRejected)
{
    FairScheduler s;
    std::string error;
    EXPECT_FALSE(s.enqueue("r1", "a", 0, 1, 0, &error));
}

TEST(FairScheduler, CancelDropsOnlyThatRequest)
{
    FairScheduler s;
    std::string error;
    ASSERT_TRUE(s.enqueue("ra", "alice", 0, 1, 3, &error));
    ASSERT_TRUE(s.enqueue("rb", "alice", 0, 1, 2, &error));
    EXPECT_EQ(s.cancel("ra"), 3u);
    EXPECT_EQ(s.queuedJobs(), 2u);
    EXPECT_EQ(drainIds(s), (std::vector<std::string>{"rb", "rb"}));
    // Cancelling an unknown or drained request drops nothing.
    EXPECT_EQ(s.cancel("ra"), 0u);
}

TEST(FairScheduler, SharesReportQueueAndDispatchCounts)
{
    FairScheduler s;
    std::string error;
    ASSERT_TRUE(s.enqueue("ra", "alice", 0, 2, 3, &error));
    ASSERT_TRUE(s.enqueue("rb", "bob", 0, 1, 1, &error));
    ASSERT_TRUE(s.next().has_value());
    const std::vector<FairScheduler::TenantShare> shares = s.shares();
    ASSERT_EQ(shares.size(), 2u);
    EXPECT_EQ(shares[0].tenant, "alice");
    EXPECT_EQ(shares[0].weight, 2u);
    EXPECT_EQ(shares[0].queued + shares[1].queued, 3u);
    EXPECT_EQ(shares[0].dispatched + shares[1].dispatched, 1u);
}

TEST(FairScheduler, PredicateSkipsIneligibleTenantWithoutCostingItShare)
{
    FairScheduler s;
    std::string error;
    ASSERT_TRUE(s.enqueue("ra", "alice", 0, 1, 4, &error));
    ASSERT_TRUE(s.enqueue("rb", "bob", 0, 1, 4, &error));

    // While alice is over budget only bob's units dispatch...
    const auto onlyBob = [](const std::string& t) { return t == "bob"; };
    for (int i = 0; i < 2; ++i) {
        const std::optional<JobUnit> u = s.next(onlyBob);
        ASSERT_TRUE(u.has_value());
        EXPECT_EQ(u->requestId, "rb");
    }
    // ...and nothing dispatches when nobody is eligible, without losing
    // the queued work.
    EXPECT_FALSE(s.next([](const std::string&) { return false; }).has_value());
    EXPECT_EQ(s.queuedJobs(), 6u);

    // Once alice is eligible again she was not charged for the skipped
    // rounds: her backlog drains first until virtual times equalize.
    std::map<std::string, int> nextFour;
    for (int i = 0; i < 4; ++i) {
        const std::optional<JobUnit> u = s.next();
        ASSERT_TRUE(u.has_value());
        ++nextFour[u->requestId];
    }
    EXPECT_EQ(nextFour["ra"], 3);
    EXPECT_EQ(nextFour["rb"], 1);
}

} // namespace
} // namespace dscoh::svc
