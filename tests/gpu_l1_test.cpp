#include <gtest/gtest.h>

#include "gpu/gpu_l1.h"

namespace dscoh {
namespace {

CacheGeometry l1Geom()
{
    CacheGeometry g;
    g.sizeBytes = 16 * 1024; // Table I GPU L1
    g.ways = 4;
    return g;
}

TEST(GpuL1, MissThenHitAfterFill)
{
    GpuL1 l1(l1Geom());
    EXPECT_EQ(l1.lookup(0x1000), nullptr);
    DataBlock d;
    d.write(0, 42, 8);
    l1.fill(0x1000, d);
    auto* line = l1.lookup(0x1000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->data.read(0, 8), 42u);
    EXPECT_EQ(l1.hits(), 1u);
    EXPECT_EQ(l1.misses(), 1u);
}

TEST(GpuL1, FillReplacesWhenSetFull)
{
    GpuL1 l1(l1Geom());
    // 32 sets x 4 ways; these five addresses collide in one set.
    const Addr stride = 32 * kLineSize;
    DataBlock d;
    for (int i = 0; i < 5; ++i)
        l1.fill(static_cast<Addr>(i) * stride, d);
    int present = 0;
    for (int i = 0; i < 5; ++i)
        present += l1.lookup(static_cast<Addr>(i) * stride) != nullptr ? 1 : 0;
    EXPECT_EQ(present, 4) << "exactly one victim must have been replaced";
}

TEST(GpuL1, StoreUpdateOnlyWhenPresent)
{
    GpuL1 l1(l1Geom());
    DataBlock update;
    update.write(8, 0x77, 8);
    ByteMask mask;
    mask.set(8, 8);

    // Absent: no-allocate, nothing happens.
    l1.storeUpdate(0x2000, update, mask);
    EXPECT_EQ(l1.lookup(0x2000), nullptr);

    // Present: bytes merge.
    DataBlock base;
    base.write(0, 0x11, 8);
    l1.fill(0x3000, base);
    l1.storeUpdate(0x3000, update, mask);
    auto* line = l1.lookup(0x3000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->data.read(0, 8), 0x11u);
    EXPECT_EQ(line->data.read(8, 8), 0x77u);
}

TEST(GpuL1, FlashInvalidateEmptiesCache)
{
    GpuL1 l1(l1Geom());
    DataBlock d;
    for (int i = 0; i < 16; ++i)
        l1.fill(static_cast<Addr>(i) * kLineSize, d);
    l1.flashInvalidate();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(l1.lookup(static_cast<Addr>(i) * kLineSize), nullptr);
}

TEST(GpuL1, FillOfPresentLineUpdatesData)
{
    GpuL1 l1(l1Geom());
    DataBlock first;
    first.write(0, 1, 8);
    DataBlock second;
    second.write(0, 2, 8);
    l1.fill(0x4000, first);
    l1.fill(0x4000, second);
    auto* line = l1.lookup(0x4000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->data.read(0, 8), 2u);
}

TEST(GpuL1, StatsRegistered)
{
    GpuL1 l1(l1Geom());
    StatRegistry reg;
    l1.regStats(reg, "gpu.sm0.l1");
    l1.lookup(0);
    l1.flashInvalidate();
    EXPECT_EQ(reg.counter("gpu.sm0.l1.misses"), 1u);
    EXPECT_EQ(reg.counter("gpu.sm0.l1.flash_invalidates"), 1u);
}

} // namespace
} // namespace dscoh
