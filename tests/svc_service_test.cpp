// SweepService end-to-end: the PR's acceptance criteria, in-process.
//
//  - two tenants with overlapping sweep configs: the shared produce-phase
//    cache serves the overlap (visible in the cache-hit counter) and both
//    tenants' requests complete with byte-identical results;
//  - weighted fair sharing keeps a late small request from starving behind
//    an earlier large one (WAL terminal-event order proves it);
//  - stop/restart mid-queue: a new service on the same state dir resumes
//    every unfinished request and publishes results.json byte-identical to
//    an uninterrupted run (the SIGKILL variant of this lives in
//    scripts/svc_kill_resume_check.sh / CI, which kills a real daemon).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "fault/io_fault.h"
#include "obs/json_lite.h"
#include "svc/protocol.h"
#include "svc/service.h"

namespace dscoh::svc {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
public:
    explicit ScratchDir(const std::string& name)
        : path_(testing::TempDir() + name)
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string stateOf(const SweepService& svc, const std::string& id)
{
    std::string status, error;
    if (!svc.statusJson(id, &status, &error))
        return "unknown";
    std::string parseError;
    const jsonlite::ValuePtr v = jsonlite::parse(status, parseError);
    const jsonlite::Value* state =
        v != nullptr ? v->get("state") : nullptr;
    return state != nullptr ? state->string : "unparsed";
}

void waitTerminal(const SweepService& svc, const std::string& id)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::minutes(3);
    for (;;) {
        const std::string s = stateOf(svc, id);
        if (s == "done" || s == "failed" || s == "cancelled")
            return;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << id << " stuck in state " << s;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

std::uint64_t cacheHitsOf(const SweepService& svc)
{
    std::string parseError;
    const jsonlite::ValuePtr v =
        jsonlite::parse(svc.statsJson(), parseError);
    return v->get("produceCache")->get("hits")->asUint();
}

TEST(SweepService, OverlappingTenantsShareTheProduceCache)
{
    ScratchDir dir("svc_e2e_cache");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1; // serialize so the second tenant must hit the cache
    SweepService svc(opts);

    SweepRequest alice;
    alice.tenant = "alice";
    alice.codes = {"VA"};
    SweepRequest bob = alice;
    bob.tenant = "bob"; // identical work, different tenant

    std::string aliceId, bobId, error;
    ASSERT_TRUE(svc.submit(alice, &aliceId, &error)) << error;
    waitTerminal(svc, aliceId);
    const std::uint64_t hitsAfterAlice = cacheHitsOf(svc);

    ASSERT_TRUE(svc.submit(bob, &bobId, &error)) << error;
    waitTerminal(svc, bobId);

    EXPECT_EQ(stateOf(svc, aliceId), "done");
    EXPECT_EQ(stateOf(svc, bobId), "done");
    // Bob's produce phases were served from alice's snapshots: the
    // cross-tenant dedup counter moved.
    EXPECT_GT(cacheHitsOf(svc), hitsAfterAlice);
    // Identical requests publish byte-identical results regardless of who
    // submitted them or what the cache served.
    const std::string aliceResults =
        slurp(svc.requestDir(aliceId) + "/results.json");
    const std::string bobResults =
        slurp(svc.requestDir(bobId) + "/results.json");
    ASSERT_FALSE(aliceResults.empty());
    EXPECT_EQ(aliceResults, bobResults);
}

TEST(SweepService, FairShareKeepsASmallTenantFromStarving)
{
    ScratchDir dir("svc_e2e_fair");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1; // one worker makes the dispatch order the whole story
    SweepService svc(opts);

    SweepRequest big;
    big.tenant = "alice";
    big.codes = {"VA", "NN", "BP"}; // 6 jobs
    SweepRequest small;
    small.tenant = "bob";
    small.codes = {"VA"}; // 2 jobs

    std::string bigId, smallId, error;
    ASSERT_TRUE(svc.submit(big, &bigId, &error)) << error;
    ASSERT_TRUE(svc.submit(small, &smallId, &error)) << error;
    waitTerminal(svc, bigId);
    waitTerminal(svc, smallId);

    // Fair sharing interleaves the tenants, so bob's 2-job request goes
    // terminal before alice's 6-job request — WAL terminal-event order is
    // the persistent proof. FIFO would have finished alice first.
    const std::string wal = slurp(dir.path() + "/svc.journal");
    const std::size_t bobDone =
        wal.find("{\"event\": \"done\", \"id\": \"" + smallId + "\"}");
    const std::size_t aliceDone =
        wal.find("{\"event\": \"done\", \"id\": \"" + bigId + "\"}");
    ASSERT_NE(bobDone, std::string::npos);
    ASSERT_NE(aliceDone, std::string::npos);
    EXPECT_LT(bobDone, aliceDone);
}

TEST(SweepService, RestartMidQueueRepublishesByteIdenticalResults)
{
    ScratchDir dir("svc_e2e_restart");
    ScratchDir freshDir("svc_e2e_restart_fresh");

    SweepRequest req;
    req.tenant = "alice";
    req.codes = {"VA", "NN", "BP"};

    // Reference: the same request on a fresh, uninterrupted service.
    std::string freshResults;
    {
        ServiceOptions opts;
        opts.stateDir = freshDir.path();
        opts.workers = 2;
        SweepService svc(opts);
        std::string id, error;
        ASSERT_TRUE(svc.submit(req, &id, &error)) << error;
        waitTerminal(svc, id);
        freshResults = slurp(svc.requestDir(id) + "/results.json");
        ASSERT_FALSE(freshResults.empty());
    }

    // Interrupted: stop the service after the first job completes. The
    // destructor finishes in-flight jobs but queued ones stay owed — the
    // WAL has no terminal event for the request.
    std::string id;
    {
        ServiceOptions opts;
        opts.stateDir = dir.path();
        opts.workers = 1;
        SweepService svc(opts);
        std::string error;
        ASSERT_TRUE(svc.submit(req, &id, &error)) << error;
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::minutes(3);
        while (!std::ifstream(svc.requestDir(id) + "/journal").good()) {
            ASSERT_LT(std::chrono::steady_clock::now(), deadline);
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        svc.beginShutdown();
    }
    ASSERT_FALSE(fs::exists(dir.path() + "/jobs/" + id + "/results.json"));

    // Restart on the same state dir: recovery replays the journal, runs
    // what is still owed, and publishes.
    {
        ServiceOptions opts;
        opts.stateDir = dir.path();
        opts.workers = 2;
        SweepService svc(opts);
        waitTerminal(svc, id);
        EXPECT_EQ(stateOf(svc, id), "done");
    }
    EXPECT_EQ(slurp(dir.path() + "/jobs/" + id + "/results.json"),
              freshResults);
}

TEST(SweepService, RecoversACrashBetweenLastJobAndPublication)
{
    // The narrowest crash window: every job journaled, results.json never
    // written, no WAL terminal line. Recovery must publish from the
    // journal alone, without re-running anything.
    ScratchDir dir("svc_e2e_window");
    ScratchDir refDir("svc_e2e_window_ref");

    SweepRequest req;
    req.tenant = "alice";
    req.codes = {"VA"};
    req.id = "r000001";

    // Build the reference results and the journal with the plain engine —
    // the service's journal format IS the engine's.
    std::vector<ExperimentJob> jobs;
    std::string error;
    ASSERT_TRUE(expandJobs(req, &jobs, &error)) << error;
    const std::string jobDir = dir.path() + "/jobs/r000001";
    fs::create_directories(jobDir);
    EngineRunOptions engineOpts;
    engineOpts.journalPath = jobDir + "/journal";
    const ExperimentEngine engine(2);
    const std::vector<ExperimentResult> results =
        engine.run(jobs, engineOpts);
    writeResultsJsonAtomic(refDir.path() + "/expected.json", results);

    // Hand-write the WAL as the killed daemon would have left it.
    {
        std::ofstream wal(dir.path() + "/svc.journal");
        wal << "{\"event\": \"accepted\", \"id\": \"r000001\", "
               "\"request\": \""
            << jsonEscape(renderRequestJson(req)) << "\"}\n";
    }

    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    SweepService svc(opts); // recovery publishes during construction
    EXPECT_EQ(stateOf(svc, "r000001"), "done");
    EXPECT_EQ(slurp(jobDir + "/results.json"),
              slurp(refDir.path() + "/expected.json"));
    // The journal is finalized (deleted on success) and the WAL now has
    // the terminal line, so a second restart changes nothing.
    EXPECT_FALSE(fs::exists(jobDir + "/journal"));
    EXPECT_NE(slurp(dir.path() + "/svc.journal")
                  .find("{\"event\": \"done\", \"id\": \"r000001\"}"),
              std::string::npos);
}

TEST(SweepService, CancelDropsQueuedWorkAndPublishesNoResults)
{
    ScratchDir dir("svc_e2e_cancel");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    SweepService svc(opts);

    SweepRequest req;
    req.tenant = "alice";
    req.codes = {"VA", "NN", "BP"};
    std::string id, error;
    ASSERT_TRUE(svc.submit(req, &id, &error)) << error;
    ASSERT_TRUE(svc.cancel(id, &error)) << error;
    EXPECT_EQ(stateOf(svc, id), "cancelled");
    // A second cancel is an error, as is cancelling the unknown.
    EXPECT_FALSE(svc.cancel(id, &error));
    EXPECT_FALSE(svc.cancel("r999999", &error));

    svc.drain(); // lets any in-flight job finish
    EXPECT_EQ(stateOf(svc, id), "cancelled");
    EXPECT_FALSE(fs::exists(svc.requestDir(id) + "/results.json"));
    EXPECT_NE(slurp(dir.path() + "/svc.journal")
                  .find("{\"event\": \"cancelled\", \"id\": \"" + id +
                        "\"}"),
              std::string::npos);
}

TEST(SweepService, BackpressureRejectsOversizedRequests)
{
    ScratchDir dir("svc_e2e_backpressure");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    opts.maxQueuedJobs = 1;
    SweepService svc(opts);

    SweepRequest req;
    req.codes = {"VA"}; // expands to 2 jobs > the 1-job queue bound
    std::string id, error;
    EXPECT_FALSE(svc.submit(req, &id, &error));
    EXPECT_NE(error.find("queue full"), std::string::npos);
    // Nothing was admitted: no WAL line, no request dir.
    EXPECT_EQ(slurp(dir.path() + "/svc.journal").find("accepted"),
              std::string::npos);
}

TEST(SweepService, ShedSubmitReportsRetryAfter)
{
    ScratchDir dir("svc_e2e_shed");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    opts.maxQueuedJobs = 1;
    SweepService svc(opts);

    SweepRequest req;
    req.codes = {"VA"}; // 2 jobs > the 1-job queue bound
    std::string id, error;
    SubmitInfo info;
    EXPECT_FALSE(svc.submit(req, &id, &error, &info));
    EXPECT_TRUE(info.shed);
    EXPECT_FALSE(info.degraded);
    EXPECT_GE(info.retryAfterMs, 250u);
    EXPECT_LE(info.retryAfterMs, 60000u);
    EXPECT_NE(svc.statsJson().find("\"shedSubmits\": 1"),
              std::string::npos);
}

TEST(SweepService, DegradedStorageRejectsThenRecovers)
{
    ScratchDir dir("svc_e2e_degraded");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    SweepService svc(opts);

    // Break the disk under the live service: every durable write inside
    // the state dir fails with ENOSPC from here on.
    fault::IoFaultConfig io;
    io.enospcPpm = 1'000'000;
    io.pathFilter = dir.path();
    fault::installIoFaults(io);

    SweepRequest req;
    req.codes = {"VA"};
    req.modes = {CoherenceMode::kCcsm};
    std::string id, error;
    SubmitInfo info;
    EXPECT_FALSE(svc.submit(req, &id, &error, &info));
    EXPECT_TRUE(info.degraded);
    EXPECT_NE(error.find("storage failure"), std::string::npos);
    EXPECT_TRUE(svc.degraded());

    // While degraded, rejection is immediate — no further disk traffic
    // needed to refuse, and the flag is visible in stats for monitoring.
    info = SubmitInfo{};
    EXPECT_FALSE(svc.submit(req, &id, &error, &info));
    EXPECT_TRUE(info.degraded);
    EXPECT_NE(svc.statsJson().find("\"degraded\": true"),
              std::string::npos);

    // The probe keeps failing while the disk is sick...
    svc.tick();
    EXPECT_TRUE(svc.degraded());

    // ...and clears the moment it heals; service resumes accepting.
    fault::clearIoFaults();
    svc.tick();
    EXPECT_FALSE(svc.degraded());
    ASSERT_TRUE(svc.submit(req, &id, &error, &info)) << error;
    waitTerminal(svc, id);
    EXPECT_EQ(stateOf(svc, id), "done");
}

TEST(SweepService, DeadlineExpiryCancelsAQueuedRequest)
{
    ScratchDir dir("svc_e2e_deadline");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 1;
    SweepService svc(opts);

    // Fill the single worker with a higher-priority request of the same
    // tenant, so the deadlined one is still queued when its budget ends.
    SweepRequest big;
    big.tenant = "alice";
    big.priority = 1;
    big.codes = {"VA", "NN", "BP", "BL"};
    std::string bigId, id, error;
    ASSERT_TRUE(svc.submit(big, &bigId, &error)) << error;

    SweepRequest doomed;
    doomed.tenant = "alice";
    doomed.priority = 0;
    doomed.codes = {"VA"};
    doomed.modes = {CoherenceMode::kCcsm};
    doomed.deadlineMs = 1;
    ASSERT_TRUE(svc.submit(doomed, &id, &error)) << error;

    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    svc.tick(); // the deadline sweep runs here, not on a worker
    EXPECT_EQ(stateOf(svc, id), "cancelled");
    EXPECT_FALSE(fs::exists(svc.requestDir(id) + "/results.json"));
    EXPECT_NE(svc.statsJson().find("\"deadlineCancels\": 1"),
              std::string::npos);

    waitTerminal(svc, bigId);
    EXPECT_EQ(stateOf(svc, bigId), "done"); // bystander unharmed
}

TEST(SweepService, TenantMemoryBudgetThrottlesWithoutWedging)
{
    ScratchDir dir("svc_e2e_membudget");
    ServiceOptions opts;
    opts.stateDir = dir.path();
    opts.workers = 2;
    // A budget smaller than any single job: the soft cap still lets an
    // idle tenant run one job at a time, so everything completes.
    opts.tenantMemBudgetBytes = 1;
    SweepService svc(opts);

    SweepRequest req;
    req.tenant = "alice";
    req.codes = {"VA", "BL"};
    std::string id, error;
    ASSERT_TRUE(svc.submit(req, &id, &error)) << error;
    waitTerminal(svc, id);
    EXPECT_EQ(stateOf(svc, id), "done");
    // All in-flight accounting unwound.
    EXPECT_NE(svc.statsJson().find("\"runningBytes\": 0"),
              std::string::npos);
}

} // namespace
} // namespace dscoh::svc
