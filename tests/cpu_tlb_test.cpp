#include <gtest/gtest.h>

#include "cpu/tlb.h"
#include "sim/sim_context.h"
#include "vm/address_space.h"

namespace dscoh {
namespace {

struct TlbFixture : ::testing::Test {
    SimContext ctx;
    AddressSpace space{64ull << 20};
    Tlb::Params params{4, 80}; // tiny TLB to exercise eviction
    Tlb tlb{"tlb", ctx, space, params};
};

TEST_F(TlbFixture, MissThenHit)
{
    const Addr va = space.heapAlloc(kPageSize);
    const TlbResult miss = tlb.translate(va);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.latency, params.walkLatency);
    const TlbResult hit = tlb.translate(va + 8);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.latency, 0u);
    EXPECT_EQ(hit.translation.paddr, miss.translation.paddr + 8);
}

TEST_F(TlbFixture, DetectsDsRegionHighOrderBits)
{
    const Addr heap = space.heapAlloc(kPageSize);
    const Addr ds = space.dsMmap(kPageSize);
    EXPECT_FALSE(tlb.translate(heap).translation.dsRegion);
    EXPECT_TRUE(tlb.translate(ds).translation.dsRegion);
    StatRegistry reg;
    tlb.regStats(reg);
    EXPECT_EQ(reg.counter("tlb.ds_detections"), 1u);
}

TEST_F(TlbFixture, LruEvictionAtCapacity)
{
    const Addr va = space.heapAlloc(6 * kPageSize);
    for (int p = 0; p < 4; ++p)
        tlb.translate(va + static_cast<Addr>(p) * kPageSize);
    // Touch page 0 so page 1 is LRU, then insert a 5th page.
    EXPECT_TRUE(tlb.translate(va).hit);
    tlb.translate(va + 4 * kPageSize); // evicts page 1
    EXPECT_TRUE(tlb.translate(va).hit);
    EXPECT_FALSE(tlb.translate(va + kPageSize).hit) << "page 1 was evicted";
    // Re-inserting page 1 evicted page 2 (the then-LRU); page 3 survived.
    EXPECT_TRUE(tlb.translate(va + 3 * kPageSize).hit);
}

TEST_F(TlbFixture, FlushDropsEverything)
{
    const Addr va = space.heapAlloc(kPageSize);
    tlb.translate(va);
    tlb.flush();
    EXPECT_FALSE(tlb.translate(va).hit);
}

TEST_F(TlbFixture, UnmappedAddressPropagatesThrow)
{
    EXPECT_THROW(tlb.translate(0xdeadbeef000), std::out_of_range);
}

TEST_F(TlbFixture, HitAndMissCountersTrack)
{
    const Addr va = space.heapAlloc(kPageSize);
    tlb.translate(va);
    tlb.translate(va);
    tlb.translate(va + 100);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.hits(), 2u);
}

} // namespace
} // namespace dscoh
