#include <gtest/gtest.h>

#include "mem/dram_pool.h"
#include "sim/sim_context.h"

namespace dscoh {
namespace {

TEST(DramPool, RejectsNonPowerOfTwoChannels)
{
    SimContext ctx;
    BackingStore store(1 << 20);
    EXPECT_THROW(DramPool("d", ctx, store, DramTiming{}, 3),
                 std::invalid_argument);
    EXPECT_THROW(DramPool("d", ctx, store, DramTiming{}, 0),
                 std::invalid_argument);
}

TEST(DramPool, RoutesByLineInterleave)
{
    SimContext ctx;
    BackingStore store(1 << 20);
    DramPool pool("d", ctx, store, DramTiming{}, 4);
    EXPECT_EQ(&pool.channelOf(0 * kLineSize), &pool.channel(0));
    EXPECT_EQ(&pool.channelOf(1 * kLineSize), &pool.channel(1));
    EXPECT_EQ(&pool.channelOf(5 * kLineSize), &pool.channel(1));
    EXPECT_EQ(&pool.channelOf(7 * kLineSize), &pool.channel(3));
    // Same line, any offset -> same channel.
    EXPECT_EQ(&pool.channelOf(kLineSize + 7), &pool.channel(1));
}

TEST(DramPool, WritesLandInBackingStore)
{
    SimContext ctx;
    EventQueue& q = ctx.queue;
    BackingStore store(1 << 20);
    DramPool pool("d", ctx, store, DramTiming{}, 2);
    DataBlock d;
    d.write(0, 0x1234, 4);
    bool done = false;
    pool.write(3 * kLineSize, d, [&done] { done = true; });
    q.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(store.readLine(3 * kLineSize).read(0, 4), 0x1234u);
}

TEST(DramPool, MoreChannelsIncreaseStreamBandwidth)
{
    auto run = [](std::uint32_t channels) {
        SimContext ctx;
        EventQueue& q = ctx.queue;
        BackingStore store(16 << 20);
        DramPool pool("d", ctx, store, DramTiming{}, channels);
        int done = 0;
        for (int i = 0; i < 1024; ++i)
            pool.read(static_cast<Addr>(i) * kLineSize, [&done] { ++done; });
        const Tick end = q.run();
        EXPECT_EQ(done, 1024);
        return end;
    };
    const Tick one = run(1);
    const Tick four = run(4);
    EXPECT_LT(four, one) << "four channels must stream faster than one";
}

TEST(DramPool, StatsPerChannel)
{
    SimContext ctx;
    EventQueue& q = ctx.queue;
    BackingStore store(1 << 20);
    DramPool pool("dram", ctx, store, DramTiming{}, 2);
    StatRegistry reg;
    pool.regStats(reg);
    pool.read(0, [] {});             // channel 0
    pool.read(kLineSize, [] {});     // channel 1
    pool.read(2 * kLineSize, [] {}); // channel 0
    q.run();
    EXPECT_EQ(reg.counter("dram.ch0.reads"), 2u);
    EXPECT_EQ(reg.counter("dram.ch1.reads"), 1u);
}

} // namespace
} // namespace dscoh
