#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace dscoh {
namespace {

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); }, EventPriority::kCore);
    q.schedule(5, [&] { order.push_back(0); }, EventPriority::kMessageDelivery);
    q.schedule(5, [&] { order.push_back(3); }, EventPriority::kCore);
    q.schedule(5, [&] { order.push_back(1); }, EventPriority::kController);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleAfter(4, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.curTick(), 5u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(7, [&] { seen = q.curTick(); });
    });
    q.run();
    EXPECT_EQ(seen, 107u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.clear();
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.executedEvents(), 5u);
}

TEST(EventQueue, ManyEventsStressDeterministic)
{
    // Two identical runs must execute callbacks in the identical order.
    auto run = [] {
        EventQueue q;
        std::vector<int> order;
        for (int i = 0; i < 1000; ++i) {
            q.schedule(static_cast<Tick>((i * 37) % 101), [&order, i] {
                order.push_back(i);
            });
        }
        q.run();
        return order;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace dscoh
