// Behavioural checks on the Table II workload models: every model runs
// verified under both schemes, direct store never hurts beyond noise, the
// paper's qualitative groups hold, and runs are deterministic.
#include <gtest/gtest.h>

#include "workloads/runner.h"

namespace dscoh {
namespace {

class EveryWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryWorkload, SmallInputRunsVerifiedUnderBothSchemes)
{
    // runWorkload throws on any value mismatch or coherence violation.
    const auto cmp = compareModes(WorkloadRegistry::instance().get(GetParam()),
                                  InputSize::kSmall);
    EXPECT_EQ(cmp.ccsm.metrics.checkFailures, 0u);
    EXPECT_EQ(cmp.directStore.metrics.checkFailures, 0u);
    EXPECT_GT(cmp.ccsm.metrics.ticks, 0u);
}

TEST_P(EveryWorkload, DirectStoreNeverHurtsSmall)
{
    const auto cmp = compareModes(WorkloadRegistry::instance().get(GetParam()),
                                  InputSize::kSmall);
    // "we find that even when tested applications do not benefit ... their
    // performance does not decrease" — allow 2% modelling noise.
    EXPECT_GT(cmp.speedup(), 0.98) << GetParam();
}

TEST_P(EveryWorkload, ReplacementModeRunsVerifiedSmall)
{
    // SIII-H: direct store as the only CPU-GPU mechanism must run every
    // benchmark correctly and no slower than CCSM (within noise).
    SystemConfig cfg;
    const auto only =
        runWorkload(WorkloadRegistry::instance().get(GetParam()),
                    InputSize::kSmall, CoherenceMode::kDirectStoreOnly, cfg);
    const auto ccsm =
        runWorkload(WorkloadRegistry::instance().get(GetParam()),
                    InputSize::kSmall, CoherenceMode::kCcsm, cfg);
    EXPECT_EQ(only.metrics.checkFailures, 0u);
    EXPECT_LT(static_cast<double>(only.metrics.ticks),
              static_cast<double>(ccsm.metrics.ticks) * 1.02)
        << GetParam();
}

TEST_P(EveryWorkload, MissRateNotWorseThanBaselineSmall)
{
    const auto cmp = compareModes(WorkloadRegistry::instance().get(GetParam()),
                                  InputSize::kSmall);
    // DS may slightly shift rates (the paper's MM/MT see increases when
    // accesses drop more than misses); bound the increase.
    EXPECT_LT(cmp.directStore.metrics.gpuL2MissRate,
              cmp.ccsm.metrics.gpuL2MissRate + 0.05)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    TableII, EveryWorkload,
    ::testing::ValuesIn(WorkloadRegistry::instance().codes()),
    [](const ::testing::TestParamInfo<std::string>& pinfo) {
        return pinfo.param;
    });

TEST(WorkloadBehavior, StreamingGroupGainsOver10Percent)
{
    // Fig. 4 top: NN, BL, VA, MM, MT are the >10% small-input group.
    for (const char* code : {"NN", "BL", "VA"}) {
        const auto cmp = compareModes(
            WorkloadRegistry::instance().get(code), InputSize::kSmall);
        EXPECT_GT(cmp.speedup(), 1.10) << code;
    }
    for (const char* code : {"MM", "MT"}) {
        const auto cmp = compareModes(
            WorkloadRegistry::instance().get(code), InputSize::kSmall);
        EXPECT_GT(cmp.speedup(), 1.08) << code;
    }
}

TEST(WorkloadBehavior, ZeroGroupStaysNearZeroSmall)
{
    // Fig. 4 ignores GA, KM, LV, PT, SR, ST, MS as zero-speedup benchmarks.
    for (const char* code : {"GA", "KM", "PT", "ST"}) {
        const auto cmp = compareModes(
            WorkloadRegistry::instance().get(code), InputSize::kSmall);
        EXPECT_NEAR(cmp.speedup(), 1.0, 0.05) << code;
    }
}

TEST(WorkloadBehavior, BigInputsShrinkTheStreamingGroupGains)
{
    // Fig. 4 bottom: MM and MT collapse when the input exceeds the L2.
    for (const char* code : {"MM", "MT"}) {
        const auto& w = WorkloadRegistry::instance().get(code);
        const auto small = compareModes(w, InputSize::kSmall);
        const auto big = compareModes(w, InputSize::kBig);
        EXPECT_LT(big.speedup() - 1.0, (small.speedup() - 1.0) * 0.8) << code;
    }
}

TEST(WorkloadBehavior, MissRateReductionShowsUpWhereThePaperSaysSmall)
{
    // Fig. 5 top: BP, BF, HT, NN, NW among the reduced set.
    for (const char* code : {"BP", "BF", "HT", "NN", "NW"}) {
        const auto cmp = compareModes(
            WorkloadRegistry::instance().get(code), InputSize::kSmall);
        EXPECT_LT(cmp.directStore.metrics.gpuL2MissRate,
                  cmp.ccsm.metrics.gpuL2MissRate)
            << code;
    }
}

TEST(WorkloadBehavior, PathfinderPushesNothing)
{
    const auto r = runWorkload(WorkloadRegistry::instance().get("PT"),
                               InputSize::kSmall, CoherenceMode::kDirectStore);
    EXPECT_EQ(r.metrics.dsFills, 0u)
        << "PT's CPU produces no GPU data; nothing should be pushed";
}

TEST(WorkloadBehavior, DeterministicAcrossRuns)
{
    const auto& w = WorkloadRegistry::instance().get("BF");
    const auto a = runWorkload(w, InputSize::kSmall, CoherenceMode::kDirectStore);
    const auto b = runWorkload(w, InputSize::kSmall, CoherenceMode::kDirectStore);
    EXPECT_EQ(a.metrics.ticks, b.metrics.ticks);
    EXPECT_EQ(a.metrics.gpuL2Misses, b.metrics.gpuL2Misses);
}

TEST(WorkloadBehavior, FootprintsMatchArraySpecs)
{
    const auto& w = WorkloadRegistry::instance().get("VA");
    const auto r = runWorkload(w, InputSize::kSmall, CoherenceMode::kCcsm);
    EXPECT_EQ(r.footprintBytes, 3ull * 50000 * 4);
}

} // namespace
} // namespace dscoh
