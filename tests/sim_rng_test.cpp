#include <gtest/gtest.h>

#include <set>

#include "sim/rng.h"

namespace dscoh {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values appear
}

TEST(Rng, UnitInHalfOpenInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.unit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(42);
    const auto first = rng.next();
    rng.next();
    rng.reseed(42);
    EXPECT_EQ(rng.next(), first);
}

} // namespace
} // namespace dscoh
