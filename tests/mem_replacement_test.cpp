#include <gtest/gtest.h>

#include "mem/replacement.h"

namespace dscoh {
namespace {

std::vector<bool> all(std::uint32_t ways) { return std::vector<bool>(ways, true); }

TEST(Replacement, KindParsing)
{
    EXPECT_EQ(replacementKindFromString("lru"), ReplacementKind::kLru);
    EXPECT_EQ(replacementKindFromString("tree-plru"), ReplacementKind::kTreePlru);
    EXPECT_EQ(replacementKindFromString("random"), ReplacementKind::kRandom);
    EXPECT_THROW(replacementKindFromString("mru"), std::invalid_argument);
    EXPECT_EQ(to_string(ReplacementKind::kLru), "lru");
}

TEST(Lru, EvictsOldest)
{
    LruPolicy lru(1, 4);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(0, 2);
    lru.touch(0, 3);
    EXPECT_EQ(lru.victim(0, all(4)), 0u);
    lru.touch(0, 0);
    EXPECT_EQ(lru.victim(0, all(4)), 1u);
}

TEST(Lru, RespectsCandidateMask)
{
    LruPolicy lru(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.touch(0, w);
    std::vector<bool> mask{false, false, true, true};
    EXPECT_EQ(lru.victim(0, mask), 2u);
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy lru(2, 2);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(1, 1);
    lru.touch(1, 0);
    EXPECT_EQ(lru.victim(0, all(2)), 0u);
    EXPECT_EQ(lru.victim(1, all(2)), 1u);
}

TEST(TreePlru, RequiresPowerOfTwoWays)
{
    EXPECT_THROW(TreePlruPolicy p(1, 3), std::invalid_argument);
    EXPECT_THROW(TreePlruPolicy p(1, 1), std::invalid_argument);
    EXPECT_NO_THROW(TreePlruPolicy p(1, 8));
}

TEST(TreePlru, VictimAvoidsRecentlyTouched)
{
    TreePlruPolicy plru(1, 4);
    // Touch everything, then re-touch way 2; the victim must not be 2.
    for (std::uint32_t w = 0; w < 4; ++w)
        plru.touch(0, w);
    plru.touch(0, 2);
    EXPECT_NE(plru.victim(0, all(4)), 2u);
}

TEST(TreePlru, FallsBackWhenChoicePinned)
{
    TreePlruPolicy plru(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        plru.touch(0, w);
    // Only way 3 is a candidate; whatever the tree says, we must get 3.
    std::vector<bool> mask{false, false, false, true};
    EXPECT_EQ(plru.victim(0, mask), 3u);
}

TEST(TreePlru, NeverPicksNonCandidate)
{
    TreePlruPolicy plru(4, 8);
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const auto set = static_cast<std::uint32_t>(rng.below(4));
        plru.touch(set, static_cast<std::uint32_t>(rng.below(8)));
        std::vector<bool> mask(8, false);
        const auto cand = static_cast<std::uint32_t>(rng.below(8));
        mask[cand] = true;
        EXPECT_EQ(plru.victim(set, mask), cand);
    }
}

TEST(Random, DeterministicForSeedAndUniformish)
{
    RandomPolicy a(1, 4, 99);
    RandomPolicy b(1, 4, 99);
    std::vector<std::uint32_t> counts(4, 0);
    for (int i = 0; i < 400; ++i) {
        const auto va = a.victim(0, all(4));
        EXPECT_EQ(va, b.victim(0, all(4)));
        ++counts[va];
    }
    for (const auto c : counts)
        EXPECT_GT(c, 50u); // roughly uniform
}

TEST(Random, HonorsCandidates)
{
    RandomPolicy p(1, 4, 5);
    std::vector<bool> mask{false, true, false, false};
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(p.victim(0, mask), 1u);
}

TEST(Factory, CreatesRequestedKind)
{
    auto lru = ReplacementPolicy::create(ReplacementKind::kLru, 2, 4);
    auto plru = ReplacementPolicy::create(ReplacementKind::kTreePlru, 2, 4);
    auto rnd = ReplacementPolicy::create(ReplacementKind::kRandom, 2, 4, 7);
    EXPECT_NE(dynamic_cast<LruPolicy*>(lru.get()), nullptr);
    EXPECT_NE(dynamic_cast<TreePlruPolicy*>(plru.get()), nullptr);
    EXPECT_NE(dynamic_cast<RandomPolicy*>(rnd.get()), nullptr);
}

} // namespace
} // namespace dscoh
