#include <gtest/gtest.h>

#include "vm/address_space.h"

namespace dscoh {
namespace {

TEST(AddressSpace, HeapAllocationsAreDisjointAndMapped)
{
    AddressSpace space(64ull << 20);
    const Addr a = space.heapAlloc(1000);
    const Addr b = space.heapAlloc(1000);
    EXPECT_GE(b, a + 1000);
    EXPECT_TRUE(space.isMapped(a));
    EXPECT_TRUE(space.isMapped(b + 999));
    EXPECT_FALSE(inDsRegion(a));
}

TEST(AddressSpace, TranslationIsConsistentWithinPage)
{
    AddressSpace space(64ull << 20);
    const Addr va = space.heapAlloc(kPageSize);
    const Translation t0 = space.translate(va);
    const Translation t1 = space.translate(va + 100);
    EXPECT_EQ(t1.paddr, t0.paddr + 100);
    EXPECT_FALSE(t0.dsRegion);
}

TEST(AddressSpace, DistinctPagesGetDistinctFrames)
{
    AddressSpace space(64ull << 20);
    const Addr va = space.heapAlloc(3 * kPageSize);
    const Addr pa0 = space.translate(va).paddr;
    const Addr pa1 = space.translate(va + kPageSize).paddr;
    const Addr pa2 = space.translate(va + 2 * kPageSize).paddr;
    EXPECT_NE(pa0, pa1);
    EXPECT_NE(pa1, pa2);
}

TEST(AddressSpace, UnmappedTranslationThrows)
{
    AddressSpace space(64ull << 20);
    EXPECT_THROW(space.translate(0xdead0000), std::out_of_range);
}

TEST(AddressSpace, DsMmapLandsInDsRegion)
{
    AddressSpace space(64ull << 20);
    const Addr va = space.dsMmap(4096);
    EXPECT_TRUE(inDsRegion(va));
    EXPECT_TRUE(space.translate(va).dsRegion);
    EXPECT_EQ(va, kDsRegionBase);
}

TEST(AddressSpace, SequentialDsMmapsDoNotOverlap)
{
    // Mirrors the translator: consecutive variables get increasing fixed
    // addresses with no overlap.
    AddressSpace space(64ull << 20);
    const Addr a = space.dsMmap(10000);
    const Addr b = space.dsMmap(10000);
    EXPECT_GE(b, a + 10000);
    EXPECT_TRUE(inDsRegion(b));
}

TEST(AddressSpace, DsMmapFixedRejectsOverlapAndWrongRegion)
{
    AddressSpace space(64ull << 20);
    const Addr va = space.dsMmapFixed(kDsRegionBase + 0x100000, 8192);
    EXPECT_EQ(va, kDsRegionBase + 0x100000);
    EXPECT_THROW(space.dsMmapFixed(kDsRegionBase + 0x100000, 16),
                 std::invalid_argument);
    EXPECT_THROW(space.dsMmapFixed(0x5000, 16), std::invalid_argument);
}

TEST(AddressSpace, ZeroByteAllocationsRejected)
{
    AddressSpace space(64ull << 20);
    EXPECT_THROW(space.heapAlloc(0), std::invalid_argument);
    EXPECT_THROW(space.dsMmap(0), std::invalid_argument);
}

TEST(AddressSpace, PhysicalExhaustionThrows)
{
    AddressSpace space(4 * kPageSize);
    space.heapAlloc(2 * kPageSize); // +1 reserved page 0 -> 3 used
    EXPECT_THROW(space.heapAlloc(4 * kPageSize), std::runtime_error);
}

TEST(AddressSpace, HeapAndDsRegionTranslateToDisjointFrames)
{
    AddressSpace space(64ull << 20);
    const Addr h = space.heapAlloc(kPageSize);
    const Addr d = space.dsMmap(kPageSize);
    EXPECT_NE(space.translate(h).paddr, space.translate(d).paddr);
}

TEST(DsRegionHelpers, BitDetection)
{
    EXPECT_TRUE(inDsRegion(kDsRegionBase));
    EXPECT_TRUE(inDsRegion(kDsRegionBase + 0x123456));
    EXPECT_FALSE(inDsRegion(0x123456));
}

} // namespace
} // namespace dscoh
