// sweep — run all 22 Table II benchmarks under both schemes and print
// the speedup/miss-rate table (the development view of Fig. 4 + Fig. 5).
//
//   dscoh_sweep [small|big] [--jobs N] [--only BP,VA,...] [--json FILE]
//               [--resume] [--fork-produce] [--snap-dir DIR]
//               [--progress-json FILE]
//
// Runs shard across a thread pool (default: all hardware threads; also
// settable via DSCOH_JOBS). Every simulation is fully self-contained, so
// the table is bit-identical for any --jobs value. Alongside the printed
// table the tool writes machine-readable results (default: results.json).
//
// A completed-job journal (<json>.journal) and rolling per-job checkpoints
// make a killed sweep cheap to finish: --resume replays journaled jobs and
// restarts interrupted ones from their last phase boundary, producing the
// exact results.json an uninterrupted sweep would have written. A fully
// successful sweep deletes the journal once the results file is published;
// a sweep with failed jobs keeps it as <json>.journal.failed so the
// failure set stays replayable. --fork-produce shares the CPU produce
// phase across runs through a snapshot cache in --snap-dir.
//
// --progress-json FILE publishes live progress for dashboards: after every
// completed job the file is atomically replaced with one small
// "dscoh-progress-v2" object (jobs done/failed, throughput, ETA; the same
// document the sweep service serves for its requests), so a poller never
// reads a torn document.
//
// --server SOCKET turns the tool into a thin client of a running
// dscoh_svc daemon: the same sweep is submitted as one request (tenant,
// priority and fair-share weight settable), progress is relayed, and the
// daemon's results.json — byte-identical to embedded execution — is
// copied to --json and printed as the usual table.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/options.h"
#include "core/config_io.h"
#include "exp/experiment_engine.h"
#include "exp/progress.h"
#include "obs/json_lite.h"
#include "sim/errors.h"
#include "snap/serializer.h"
#include "svc/client.h"
#include "svc/request.h"

using namespace dscoh;

namespace {

std::vector<std::string> splitCodes(const std::string& csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/// One daemon round trip; returns the parsed reply object or nullptr with
/// a message on stderr (transport failures and ok:false replies alike).
jsonlite::ValuePtr svcCall(const svc::SvcClient& client,
                           const std::string& line)
{
    std::string reply, error;
    if (!client.call(line, &reply, &error)) {
        std::cerr << "dscoh_sweep: " << error << "\n";
        return nullptr;
    }
    std::string parseError;
    jsonlite::ValuePtr v = jsonlite::parse(reply, parseError);
    if (v == nullptr || !v->isObject()) {
        std::cerr << "dscoh_sweep: bad daemon reply: " << reply << "\n";
        return nullptr;
    }
    if (const jsonlite::Value* ok = v->get("ok");
        ok == nullptr || ok->kind != jsonlite::Kind::kBool || !ok->boolean) {
        const jsonlite::Value* err = v->get("error");
        std::cerr << "dscoh_sweep: daemon error: "
                  << (err != nullptr && err->isString() ? err->string : reply)
                  << "\n";
        return nullptr;
    }
    return v;
}

/// Thin-client mode: submit the sweep to a dscoh_svc daemon, relay
/// progress, copy its results.json to @p jsonPath, print the table.
int runServerMode(const std::string& socketPath, const std::string& tenant,
                  int priority, unsigned weight, InputSize size,
                  const std::vector<std::string>& codes,
                  const SystemConfig& base, const std::string& jsonPath,
                  const std::string& progressPath)
{
    svc::SweepRequest req;
    req.tenant = tenant;
    req.priority = priority;
    req.weight = weight;
    req.size = size;
    req.codes = codes;
    req.modes = {CoherenceMode::kCcsm, CoherenceMode::kDirectStore};
    // dumpConfig round-trips every field, so the daemon simulates exactly
    // the config the embedded path would have.
    req.configText = dumpConfig(base);

    const svc::SvcClient client(socketPath);
    const jsonlite::ValuePtr submitted = svcCall(
        client, "{\"op\": \"submit\", \"request\": \"" +
                    svc::jsonEscape(svc::renderRequestJson(req)) + "\"}");
    if (submitted == nullptr)
        return kExitIo;
    const jsonlite::Value* idVal = submitted->get("id");
    const jsonlite::Value* dirVal = submitted->get("dir");
    if (idVal == nullptr || dirVal == nullptr) {
        std::cerr << "dscoh_sweep: malformed submit reply\n";
        return kExitFailure;
    }
    const std::string id = idVal->string;
    const std::string dir = dirVal->string;
    std::fprintf(stderr, "sweep: submitted as %s (tenant %s) to %s\n",
                 id.c_str(), tenant.c_str(), socketPath.c_str());

    std::string state;
    std::string lastPrinted;
    while (state != "done" && state != "failed" && state != "cancelled") {
        const jsonlite::ValuePtr v = svcCall(
            client, "{\"op\": \"status\", \"id\": \"" + id + "\"}");
        if (v == nullptr)
            return kExitIo;
        const jsonlite::Value* st = v->get("status");
        if (st == nullptr || !st->isObject()) {
            std::cerr << "dscoh_sweep: malformed status reply\n";
            return kExitFailure;
        }
        const jsonlite::Value* stateVal = st->get("state");
        state = stateVal != nullptr ? stateVal->string : "";
        const auto count = [&](const char* key) -> std::uint64_t {
            const jsonlite::Value* c = st->get(key);
            return c != nullptr ? static_cast<std::uint64_t>(c->number) : 0;
        };
        std::ostringstream lineOs;
        lineOs << "  [" << count("jobsDone") << "/" << count("jobsTotal")
               << "] " << state;
        if (count("jobsFailed") != 0)
            lineOs << " (" << count("jobsFailed") << " failed)";
        if (lineOs.str() != lastPrinted) {
            std::fprintf(stderr, "%s\n", lineOs.str().c_str());
            lastPrinted = lineOs.str();
        }
        // The daemon publishes the identical dscoh-progress-v2 document in
        // the request dir; mirror it to --progress-json for local pollers.
        if (!progressPath.empty()) {
            std::ifstream in(dir + "/status.json", std::ios::binary);
            std::ostringstream doc;
            doc << in.rdbuf();
            if (in && !doc.str().empty()) {
                try {
                    snap::atomicWriteFile(progressPath, doc.str());
                } catch (const std::exception&) {
                }
            }
        }
        if (state != "done" && state != "failed" && state != "cancelled")
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    if (state == "cancelled") {
        std::cerr << "dscoh_sweep: request " << id << " was cancelled\n";
        return kExitFailure;
    }

    std::ifstream in(dir + "/results.json", std::ios::binary);
    std::ostringstream doc;
    doc << in.rdbuf();
    if (!in || doc.str().empty()) {
        std::cerr << "dscoh_sweep: cannot read " << dir << "/results.json\n";
        return kExitIo;
    }
    if (!jsonPath.empty()) {
        try {
            snap::atomicWriteFile(jsonPath, doc.str());
        } catch (const std::exception& e) {
            std::cerr << "dscoh_sweep: cannot write " << jsonPath << ": "
                      << e.what() << "\n";
            return kExitIo;
        }
    }

    std::string parseError;
    const jsonlite::ValuePtr results = jsonlite::parse(doc.str(), parseError);
    const jsonlite::Value* arr =
        results != nullptr ? results->get("results") : nullptr;
    if (arr == nullptr || !arr->isArray()) {
        std::cerr << "dscoh_sweep: malformed results.json: " << parseError
                  << "\n";
        return kExitFailure;
    }
    int failures = 0;
    int exitClass = kExitOk;
    std::printf("%-4s %10s %10s %8s %8s %8s\n", "code", "ccsm", "ds",
                "speedup%", "mrCCSM", "mrDS");
    for (std::size_t i = 0; i + 1 < arr->array.size(); i += 2) {
        const jsonlite::Value& ccsm = *arr->array[i];
        const jsonlite::Value& ds = *arr->array[i + 1];
        const auto okOf = [](const jsonlite::Value& r) {
            const jsonlite::Value* ok = r.get("ok");
            return ok != nullptr && ok->kind == jsonlite::Kind::kBool &&
                   ok->boolean;
        };
        if (!okOf(ccsm) || !okOf(ds)) {
            ++failures;
            const jsonlite::Value& bad = !okOf(ccsm) ? ccsm : ds;
            const jsonlite::Value* err = bad.get("error");
            const jsonlite::Value* cls = bad.get("errorClass");
            if (exitClass == kExitOk)
                exitClass = cls != nullptr && cls->number != 0
                                ? static_cast<int>(cls->number)
                                : kExitFailure;
            std::printf("%-4s FAILED: %s\n",
                        ccsm.get("code") != nullptr
                            ? ccsm.get("code")->string.c_str()
                            : "?",
                        err != nullptr ? err->string.c_str() : "");
            continue;
        }
        const jsonlite::Value* mc = ccsm.get("metrics");
        const jsonlite::Value* md = ds.get("metrics");
        const double tc = mc->get("ticks")->number;
        const double td = md->get("ticks")->number;
        const double speedup = td == 0.0 ? 0.0 : tc / td - 1.0;
        std::printf("%-4s %10llu %10llu %8.1f %8.3f %8.3f\n",
                    ccsm.get("code")->string.c_str(),
                    static_cast<unsigned long long>(tc),
                    static_cast<unsigned long long>(td), speedup * 100.0,
                    mc->get("gpuL2MissRate")->number,
                    md->get("gpuL2MissRate")->number);
    }
    return failures == 0 ? kExitOk : exitClass;
}

} // namespace

int main(int argc, char** argv)
{
    std::string jobsText;
    std::string only;
    std::string jsonPath = "results.json";
    std::string logLevelText;
    cli::OptionParser parser(
        "dscoh_sweep",
        "run the Table II benchmarks under CCSM and direct store");
    parser.addString("jobs", "worker threads (default: hardware threads, or "
                             "DSCOH_JOBS)", &jobsText);
    parser.addString("log-level", "error|warn|info|debug (default: "
                     "$DSCOH_LOG_LEVEL or info)", &logLevelText);
    parser.addString("only", "comma-separated benchmark codes (default: all)",
                     &only);
    parser.addString("json", "write machine-readable results here "
                             "(default: results.json)", &jsonPath);
    bool resume = false;
    bool forkProduce = false;
    std::string snapDir;
    parser.addFlag("resume", "replay completed jobs from <json>.journal and "
                   "restart interrupted ones from their last checkpoint",
                   &resume);
    parser.addFlag("fork-produce", "share the CPU produce phase across runs "
                   "via a snapshot cache (needs --snap-dir)", &forkProduce);
    parser.addString("snap-dir", "directory for produce-cache and per-job "
                     "checkpoint snapshots (default: <json>.snapdir)",
                     &snapDir);
    std::string progressPath;
    parser.addString("progress-json", "atomically publish live progress "
                     "here after every completed job (dscoh-progress-v2: "
                     "done/failed counts, jobs/second, ETA)", &progressPath);
    std::string serverSocket;
    std::string tenant = "default";
    std::string priorityText = "0";
    std::uint64_t weight = 1;
    parser.addString("server", "submit to a dscoh_svc daemon at this socket "
                     "instead of running embedded", &serverSocket);
    parser.addString("tenant", "server mode: tenant name (default: default)",
                     &tenant);
    parser.addString("priority", "server mode: priority within the tenant "
                     "(default 0)", &priorityText);
    parser.addUint("weight", "server mode: tenant fair-share weight "
                   "(default 1)", &weight);
    std::uint64_t gpus = 0;
    std::uint64_t cpuCores = 0;
    std::uint64_t tsLeaseTicks = 0;
    std::string shardPolicy;
    std::string dsTopology;
    parser.addUint("gpus", "GPUs sharing the DS region (multi-GPU "
                   "scale-out; 0 = keep config default)", &gpus);
    parser.addUint("cpu-cores", "CPU cores (0 = keep config default)",
                   &cpuCores);
    parser.addString("shard-policy", "page|line|range — which GPU homes a "
                     "DS line (multi-GPU)", &shardPolicy);
    parser.addString("ds-topology", "crossbar|ring — DS network shape",
                     &dsTopology);
    parser.addUint("ts-lease-ticks", "timestamp fast-path lease length for "
                   "remotely-homed reads (0 = off)", &tsLeaseTicks);
    if (!parser.parse(argc, argv, std::cerr))
        return kExitUsage;

    InputSize size = InputSize::kSmall;
    for (const std::string& arg : parser.positional()) {
        if (arg == "big") {
            size = InputSize::kBig;
        } else if (arg != "small") {
            std::cerr << "dscoh_sweep: unknown input size '" << arg
                      << "' (expected small or big)\n";
            return kExitUsage;
        }
    }

    unsigned jobs = 0;
    std::string error;
    if (!cli::resolveJobs(jobsText, jobs, error)) {
        std::cerr << "dscoh_sweep: " << error << "\n";
        return kExitUsage;
    }

    SystemConfig base;
    if (!cli::resolveLogLevel(logLevelText, base.logLevel, error)) {
        std::cerr << "dscoh_sweep: " << error << "\n";
        return kExitUsage;
    }
    if (gpus != 0)
        base.numGpus = static_cast<std::uint32_t>(gpus);
    if (cpuCores != 0)
        base.cpuCores = static_cast<std::uint32_t>(cpuCores);
    if (tsLeaseTicks != 0)
        base.tsLeaseTicks = tsLeaseTicks;
    if (!shardPolicy.empty() &&
        !parseShardPolicy(shardPolicy, base.shardPolicy)) {
        std::cerr << "dscoh_sweep: bad --shard-policy '" << shardPolicy
                  << "' (page|line|range)\n";
        return kExitUsage;
    }
    if (!dsTopology.empty() && !parseDsTopology(dsTopology, base.dsTopology)) {
        std::cerr << "dscoh_sweep: bad --ds-topology '" << dsTopology
                  << "' (crossbar|ring)\n";
        return kExitUsage;
    }

    std::vector<std::string> codes = only.empty()
                                         ? WorkloadRegistry::instance().codes()
                                         : splitCodes(only);
    for (const std::string& code : codes) {
        if (!WorkloadRegistry::instance().has(code)) {
            std::cerr << "dscoh_sweep: unknown benchmark '" << code << "'\n";
            return kExitUsage;
        }
    }

    if (!serverSocket.empty()) {
        if (resume || forkProduce) {
            std::cerr << "dscoh_sweep: --resume/--fork-produce are the "
                         "daemon's business in --server mode\n";
            return kExitUsage;
        }
        return runServerMode(
            serverSocket, tenant,
            static_cast<int>(std::strtol(priorityText.c_str(), nullptr, 10)),
            static_cast<unsigned>(weight), size, codes, base, jsonPath,
            progressPath);
    }

    const std::vector<ExperimentJob> batch = makeSweepJobs(
        codes, {size}, {CoherenceMode::kCcsm, CoherenceMode::kDirectStore},
        base);

    EngineRunOptions engineOpts;
    if (!jsonPath.empty()) {
        engineOpts.journalPath = jsonPath + ".journal";
        engineOpts.resume = resume;
        engineOpts.snapDir = snapDir.empty() ? jsonPath + ".snapdir" : snapDir;
        engineOpts.forkProduce = forkProduce;
        engineOpts.jobCheckpoints = true;
        std::error_code ec;
        std::filesystem::create_directories(engineOpts.snapDir, ec);
        if (ec) {
            std::cerr << "dscoh_sweep: cannot create snapshot dir "
                      << engineOpts.snapDir << ": " << ec.message() << "\n";
            return kExitIo;
        }
        if (!resume)
            std::remove(engineOpts.journalPath.c_str());
    } else if (resume || forkProduce) {
        std::cerr << "dscoh_sweep: --resume/--fork-produce need --json\n";
        return kExitUsage;
    }

    // Live progress file: published before the first job (so pollers find
    // it immediately), after every completed job, and once more after the
    // batch. An unwritable path is a startup error; a later publish
    // failure only warns — losing one update must not kill the sweep.
    const auto sweepStart = std::chrono::steady_clock::now();
    const auto elapsed = [sweepStart] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - sweepStart)
            .count();
    };
    ProgressPublisher progress(progressPath);
    std::size_t failedJobs = 0;
    if (!progressPath.empty()) {
        try {
            ProgressSnapshot first;
            first.total = batch.size();
            progress.publish(first);
        } catch (const std::exception& e) {
            std::cerr << "dscoh_sweep: cannot write progress file "
                      << progressPath << ": " << e.what() << "\n";
            return kExitIo;
        }
    }

    ExperimentEngine engine(jobs);
    // onProgress calls are serialized by the engine, so the counters need
    // no further locking.
    engine.onProgress([&](const ExperimentResult& r, std::size_t done,
                          std::size_t total) {
        std::fprintf(stderr, "  [%zu/%zu] %s %s %s %s(%.1fs)\n", done, total,
                     r.job.code.c_str(), to_string(r.job.size),
                     to_string(r.job.mode), r.ok ? "" : "FAILED ",
                     r.wallSeconds);
        if (!r.ok)
            ++failedJobs;
        if (progressPath.empty())
            return;
        try {
            ProgressSnapshot s;
            s.total = total;
            s.done = done;
            s.failed = failedJobs;
            s.elapsedSeconds = elapsed();
            progress.publish(s);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "dscoh_sweep: progress publish failed: %s\n",
                         e.what());
        }
    });
    std::fprintf(stderr, "sweep: %zu runs on %u threads\n", batch.size(),
                 engine.threads());
    const std::vector<ExperimentResult> results =
        engine.run(batch, engineOpts);

    if (!progressPath.empty()) {
        std::size_t failed = 0;
        for (const ExperimentResult& r : results)
            failed += r.ok ? 0 : 1;
        try {
            ProgressSnapshot fin;
            fin.total = results.size();
            fin.done = results.size();
            fin.failed = failed;
            fin.elapsedSeconds = elapsed();
            progress.publish(fin);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "dscoh_sweep: progress publish failed: %s\n",
                         e.what());
        }
    }

    std::size_t replayed = 0;
    unsigned long long produceSaved = 0;
    for (const ExperimentResult& r : results) {
        replayed += r.fromJournal ? 1 : 0;
        produceSaved += r.produceTicksSaved;
    }
    if (replayed != 0)
        std::fprintf(stderr, "sweep: %zu of %zu jobs replayed from %s\n",
                     replayed, results.size(),
                     engineOpts.journalPath.c_str());
    if (forkProduce)
        std::fprintf(stderr, "sweep: fork-produce saved %llu simulated "
                             "produce ticks\n", produceSaved);

    // Pair up (ccsm, ds) per code — makeSweepJobs keeps them adjacent.
    // The table (and results.json) contain only simulation outputs, so both
    // are bit-identical for any --jobs value; wall time goes to stderr.
    int failures = 0;
    int exitClass = kExitOk;
    std::printf("%-4s %10s %10s %8s %8s %8s\n", "code", "ccsm", "ds",
                "speedup%", "mrCCSM", "mrDS");
    for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
        const ExperimentResult& ccsm = results[i];
        const ExperimentResult& ds = results[i + 1];
        if (!ccsm.ok || !ds.ok) {
            ++failures;
            const ExperimentResult& failed = !ccsm.ok ? ccsm : ds;
            // The process exit code reports the first failure's class
            // (kExitDeadlock / kExitIo / kExitOracle / kExitFailure).
            if (exitClass == kExitOk)
                exitClass = failed.errorClass != 0 ? failed.errorClass
                                                   : kExitFailure;
            std::printf("%-4s FAILED: %s\n", ccsm.job.code.c_str(),
                        failed.error.c_str());
            continue;
        }
        const double speedup =
            ds.run.metrics.ticks == 0
                ? 0.0
                : static_cast<double>(ccsm.run.metrics.ticks) /
                          static_cast<double>(ds.run.metrics.ticks) -
                      1.0;
        std::printf("%-4s %10llu %10llu %8.1f %8.3f %8.3f\n",
                    ccsm.job.code.c_str(),
                    static_cast<unsigned long long>(ccsm.run.metrics.ticks),
                    static_cast<unsigned long long>(ds.run.metrics.ticks),
                    speedup * 100.0, ccsm.run.metrics.gpuL2MissRate,
                    ds.run.metrics.gpuL2MissRate);
    }

    if (!jsonPath.empty()) {
        try {
            writeResultsJsonAtomic(jsonPath, results);
        } catch (const std::exception& e) {
            std::cerr << "dscoh_sweep: cannot write " << jsonPath << ": "
                      << e.what() << "\n";
            return kExitIo;
        }
        // The results file is published. A clean sweep's crash-recovery
        // journal is obsolete and deleted; one with failed jobs is kept as
        // <journal>.failed so the failure set stays replayable. The snap
        // dir keeps any produce-cache entries (they accelerate the next
        // sweep) but goes away when empty.
        finalizeJournal(engineOpts.journalPath, failures != 0);
        std::error_code ec;
        std::filesystem::remove(engineOpts.snapDir, ec);
    }
    return failures == 0 ? kExitOk : exitClass;
}
