// sweep — run all 22 Table II benchmarks under both schemes and print
// the speedup/miss-rate table (the development view of Fig. 4 + Fig. 5).
//   dscoh_sweep [small|big]
#include <cstdio>
#include <chrono>
#include "workloads/runner.h"
int main(int argc, char** argv) {
    using namespace dscoh;
    const InputSize size = (argc > 1 && std::string(argv[1]) == "big") ? InputSize::kBig : InputSize::kSmall;
    std::printf("%-4s %10s %10s %8s %8s %8s %7s\n", "code", "ccsm", "ds", "speedup%", "mrCCSM", "mrDS", "wall");
    for (const auto& code : WorkloadRegistry::instance().codes()) {
        auto t0 = std::chrono::steady_clock::now();
        const auto cmp = compareModes(WorkloadRegistry::instance().get(code), size);
        auto t1 = std::chrono::steady_clock::now();
        std::printf("%-4s %10llu %10llu %8.1f %8.3f %8.3f %6.1fs\n", code.c_str(),
            static_cast<unsigned long long>(cmp.ccsm.metrics.ticks),
            static_cast<unsigned long long>(cmp.directStore.metrics.ticks),
            (cmp.speedup() - 1.0) * 100.0,
            cmp.ccsm.metrics.gpuL2MissRate, cmp.directStore.metrics.gpuL2MissRate,
            std::chrono::duration<double>(t1 - t0).count());
        std::fflush(stdout);
    }
    return 0;
}
