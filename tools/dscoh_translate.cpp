// dscoh_translate — the SIII-C source-to-source translator as a tool.
//
//   dscoh_translate a.cu b.cu --out-dir translated/
//   dscoh_translate kernel.cu --print         # rewritten source to stdout
//
// Reads the given CUDA-like sources, captures kernel arguments across the
// whole set, rewrites their allocations into fixed-address ds_mmap calls,
// and writes the results (unchanged files are copied through so the output
// directory is a complete, compilable project).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cli/options.h"
#include "translate/translator.h"

using namespace dscoh;

int main(int argc, char** argv)
{
    std::string outDir;
    bool print = false;
    bool quiet = false;
    std::uint64_t fallbackBytes = 0;

    cli::OptionParser parser("dscoh_translate",
                             "move kernel-referenced allocations into the "
                             "direct-store region");
    parser.addString("out-dir", "write translated files here", &outDir);
    parser.addFlag("print", "print rewritten sources to stdout", &print);
    parser.addFlag("quiet", "suppress the allocation report", &quiet);
    parser.addUint("fallback-bytes",
                   "reservation for sizes that cannot be evaluated", &fallbackBytes);
    if (!parser.parse(argc, argv, std::cerr))
        return 2;
    if (parser.positional().empty()) {
        std::cerr << "no input files (--help for usage)\n";
        return 2;
    }

    try {
        std::map<std::string, std::string> files;
        for (const std::string& path : parser.positional()) {
            std::ifstream in(path);
            if (!in) {
                std::cerr << "cannot read " << path << "\n";
                return 1;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            files.emplace(path, buffer.str());
        }

        xlate::TranslateOptions options;
        if (fallbackBytes != 0)
            options.fallbackBytes = fallbackBytes;
        xlate::SourceTranslator translator(options);
        const xlate::TranslateResult result = translator.translateProject(files);

        if (!quiet) {
            for (const auto& launch : result.launches) {
                std::cerr << "kernel " << launch.kernel << "(";
                for (std::size_t i = 0; i < launch.arguments.size(); ++i)
                    std::cerr << (i ? ", " : "") << launch.arguments[i];
                std::cerr << ") in " << launch.file << "\n";
            }
            for (const auto& alloc : result.allocations)
                std::cerr << "moved " << alloc.variable << " -> 0x" << std::hex
                          << alloc.address << std::dec << " (" << alloc.bytes
                          << " bytes" << (alloc.sizeKnown ? "" : ", fallback")
                          << ")\n";
            for (const auto& diag : result.diagnostics)
                std::cerr << "note: " << diag << "\n";
        }

        if (print) {
            for (const auto& [path, text] : result.outputs)
                std::cout << "// ===== " << path << " =====\n" << text << "\n";
        }
        if (!outDir.empty()) {
            namespace fs = std::filesystem;
            fs::create_directories(outDir);
            for (const auto& [path, text] : result.outputs) {
                const fs::path dst =
                    fs::path(outDir) / fs::path(path).filename();
                std::ofstream out(dst);
                if (!out)
                    throw std::runtime_error("cannot write " + dst.string());
                out << text;
            }
            if (!quiet)
                std::cerr << "wrote " << result.outputs.size() << " file(s) to "
                          << outDir << "\n";
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
