// trace_stats — offline analyzer for dscoh trace-event files.
//
//   dscoh_run --workload VA --mode ds --trace-out t.json
//   trace_stats t.json
//
// Parses a Chrome trace-event JSON file (as written by --trace-out),
// validates its shape, and prints per-category event counts plus latency
// percentiles for the span categories (net, dram, mshr, kernel). Flow
// events ('s'/'t'/'f' — the arrows --txn-profile interleaves under the txn
// category) are tallied in their own column. Phases this tool does not
// know are counted under "other" and reported; --strict turns them into a
// hard error instead, the old behavior. Uses the same strict JSON reader
// the observability tests use, so a file this tool accepts is a file
// Perfetto will load.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli/options.h"
#include "obs/json_lite.h"
#include "sim/stats.h"

using namespace dscoh;

namespace {

/// Per-category tally: event counts by phase plus a latency histogram over
/// the completed spans.
struct CategoryStats {
    std::uint64_t instants = 0;
    std::uint64_t spans = 0;
    std::uint64_t flows = 0; ///< 's'/'t'/'f' flow-arrow events
    std::uint64_t other = 0; ///< phases this tool does not model
    std::vector<std::uint64_t> durations;
};

/// Builds a histogram sized to the sample range so the interpolated
/// percentiles stay tight even for long-tailed categories.
Histogram buildHistogram(const std::vector<std::uint64_t>& durations)
{
    std::uint64_t maxDur = 0;
    for (const std::uint64_t d : durations)
        maxDur = std::max(maxDur, d);
    const std::size_t buckets = 64;
    const std::uint64_t width = maxDur / buckets + 1;
    Histogram h(width, buckets);
    for (const std::uint64_t d : durations)
        h.sample(d);
    return h;
}

int analyze(const std::string& path, bool strict)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "trace_stats: cannot open " << path << "\n";
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string error;
    const jsonlite::ValuePtr root = jsonlite::parse(buf.str(), error);
    if (!root) {
        std::cerr << "trace_stats: " << path << ": " << error << "\n";
        return 1;
    }
    const jsonlite::Value* events = root->get("traceEvents");
    if (events == nullptr || !events->isArray()) {
        std::cerr << "trace_stats: " << path
                  << ": missing \"traceEvents\" array\n";
        return 1;
    }

    std::map<std::string, CategoryStats> byCat;
    std::map<std::string, std::string> tracks; ///< tid -> thread_name
    std::uint64_t metadata = 0;
    for (const jsonlite::ValuePtr& ev : events->array) {
        const jsonlite::Value* ph = ev->get("ph");
        if (ph == nullptr || !ph->isString()) {
            std::cerr << "trace_stats: event without \"ph\" phase\n";
            return 1;
        }
        if (ph->string == "M") {
            ++metadata;
            const jsonlite::Value* name = ev->get("name");
            const jsonlite::Value* args = ev->get("args");
            const jsonlite::Value* tid = ev->get("tid");
            if (name != nullptr && name->string == "thread_name" &&
                args != nullptr && tid != nullptr) {
                if (const jsonlite::Value* n = args->get("name"))
                    tracks[std::to_string(tid->asUint())] = n->string;
            }
            continue;
        }
        const jsonlite::Value* cat = ev->get("cat");
        if (cat == nullptr || !cat->isString()) {
            std::cerr << "trace_stats: non-metadata event without \"cat\"\n";
            return 1;
        }
        CategoryStats& s = byCat[cat->string];
        if (ph->string == "X") {
            ++s.spans;
            const jsonlite::Value* dur = ev->get("dur");
            s.durations.push_back(dur != nullptr ? dur->asUint() : 0);
        } else if (ph->string == "s" || ph->string == "t" ||
                   ph->string == "f") {
            ++s.flows;
        } else if (ph->string == "i" || ph->string == "C") {
            ++s.instants;
        } else if (strict) {
            std::cerr << "trace_stats: unknown event phase \""
                      << ph->string << "\" (category " << cat->string
                      << ")\n";
            return 1;
        } else {
            ++s.other;
        }
    }

    std::printf("%s: %zu events (%llu metadata), %zu tracks\n", path.c_str(),
                events->array.size(),
                static_cast<unsigned long long>(metadata), tracks.size());
    std::uint64_t unknown = 0;
    std::printf("%-10s %10s %10s %8s %8s %8s %8s %8s\n", "category",
                "instants", "spans", "flows", "p50", "p90", "p99", "max");
    for (auto& [name, s] : byCat) {
        unknown += s.other;
        if (s.durations.empty()) {
            std::printf("%-10s %10llu %10llu %8llu %8s %8s %8s %8s\n",
                        name.c_str(),
                        static_cast<unsigned long long>(s.instants),
                        static_cast<unsigned long long>(s.spans),
                        static_cast<unsigned long long>(s.flows), "-", "-",
                        "-", "-");
            continue;
        }
        const Histogram h = buildHistogram(s.durations);
        std::printf("%-10s %10llu %10llu %8llu %8.0f %8.0f %8.0f %8llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(s.instants),
                    static_cast<unsigned long long>(s.spans),
                    static_cast<unsigned long long>(s.flows),
                    h.percentile(50.0), h.percentile(90.0),
                    h.percentile(99.0),
                    static_cast<unsigned long long>(h.max()));
    }
    if (unknown != 0)
        std::printf("(%llu event(s) with phases this tool does not model; "
                    "--strict rejects them)\n",
                    static_cast<unsigned long long>(unknown));
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    bool strict = false;
    cli::OptionParser parser("trace_stats",
                             "summarize a dscoh --trace-out JSON file");
    parser.addFlag("strict", "error out on event phases this tool does not "
                   "model instead of counting them as \"other\"", &strict);
    if (!parser.parse(argc, argv, std::cerr))
        return 2;
    if (parser.positional().size() != 1) {
        std::cerr << "usage: trace_stats TRACE.json (--help for details)\n";
        return 2;
    }
    try {
        return analyze(parser.positional().front(), strict);
    } catch (const std::exception& e) {
        std::cerr << "trace_stats: " << e.what() << "\n";
        return 1;
    }
}
