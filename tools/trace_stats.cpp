// trace_stats — offline analyzer for dscoh trace-event files.
//
//   dscoh_run --workload VA --mode ds --trace-out t.json
//   trace_stats t.json
//
// Parses a Chrome trace-event JSON file (as written by --trace-out),
// validates its shape, and prints per-category event counts plus latency
// percentiles for the span categories (net, dram, mshr, kernel). Uses the
// same strict JSON reader the observability tests use, so a file this tool
// accepts is a file Perfetto will load.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli/options.h"
#include "obs/json_lite.h"
#include "sim/stats.h"

using namespace dscoh;

namespace {

/// Per-category tally: event counts by phase plus a latency histogram over
/// the completed spans.
struct CategoryStats {
    std::uint64_t instants = 0;
    std::uint64_t spans = 0;
    std::vector<std::uint64_t> durations;
};

/// Builds a histogram sized to the sample range so the interpolated
/// percentiles stay tight even for long-tailed categories.
Histogram buildHistogram(const std::vector<std::uint64_t>& durations)
{
    std::uint64_t maxDur = 0;
    for (const std::uint64_t d : durations)
        maxDur = std::max(maxDur, d);
    const std::size_t buckets = 64;
    const std::uint64_t width = maxDur / buckets + 1;
    Histogram h(width, buckets);
    for (const std::uint64_t d : durations)
        h.sample(d);
    return h;
}

int analyze(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "trace_stats: cannot open " << path << "\n";
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string error;
    const jsonlite::ValuePtr root = jsonlite::parse(buf.str(), error);
    if (!root) {
        std::cerr << "trace_stats: " << path << ": " << error << "\n";
        return 1;
    }
    const jsonlite::Value* events = root->get("traceEvents");
    if (events == nullptr || !events->isArray()) {
        std::cerr << "trace_stats: " << path
                  << ": missing \"traceEvents\" array\n";
        return 1;
    }

    std::map<std::string, CategoryStats> byCat;
    std::map<std::string, std::string> tracks; ///< tid -> thread_name
    std::uint64_t metadata = 0;
    for (const jsonlite::ValuePtr& ev : events->array) {
        const jsonlite::Value* ph = ev->get("ph");
        if (ph == nullptr || !ph->isString()) {
            std::cerr << "trace_stats: event without \"ph\" phase\n";
            return 1;
        }
        if (ph->string == "M") {
            ++metadata;
            const jsonlite::Value* name = ev->get("name");
            const jsonlite::Value* args = ev->get("args");
            const jsonlite::Value* tid = ev->get("tid");
            if (name != nullptr && name->string == "thread_name" &&
                args != nullptr && tid != nullptr) {
                if (const jsonlite::Value* n = args->get("name"))
                    tracks[std::to_string(tid->asUint())] = n->string;
            }
            continue;
        }
        const jsonlite::Value* cat = ev->get("cat");
        if (cat == nullptr || !cat->isString()) {
            std::cerr << "trace_stats: non-metadata event without \"cat\"\n";
            return 1;
        }
        CategoryStats& s = byCat[cat->string];
        if (ph->string == "X") {
            ++s.spans;
            const jsonlite::Value* dur = ev->get("dur");
            s.durations.push_back(dur != nullptr ? dur->asUint() : 0);
        } else {
            ++s.instants;
        }
    }

    std::printf("%s: %zu events (%llu metadata), %zu tracks\n", path.c_str(),
                events->array.size(),
                static_cast<unsigned long long>(metadata), tracks.size());
    std::printf("%-10s %10s %10s %8s %8s %8s %8s\n", "category", "instants",
                "spans", "p50", "p90", "p99", "max");
    for (auto& [name, s] : byCat) {
        if (s.durations.empty()) {
            std::printf("%-10s %10llu %10llu %8s %8s %8s %8s\n", name.c_str(),
                        static_cast<unsigned long long>(s.instants),
                        static_cast<unsigned long long>(s.spans), "-", "-",
                        "-", "-");
            continue;
        }
        const Histogram h = buildHistogram(s.durations);
        std::printf("%-10s %10llu %10llu %8.0f %8.0f %8.0f %8llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(s.instants),
                    static_cast<unsigned long long>(s.spans),
                    h.percentile(50.0), h.percentile(90.0),
                    h.percentile(99.0),
                    static_cast<unsigned long long>(h.max()));
    }
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    cli::OptionParser parser("trace_stats",
                             "summarize a dscoh --trace-out JSON file");
    if (!parser.parse(argc, argv, std::cerr))
        return 2;
    if (parser.positional().size() != 1) {
        std::cerr << "usage: trace_stats TRACE.json (--help for details)\n";
        return 2;
    }
    try {
        return analyze(parser.positional().front());
    } catch (const std::exception& e) {
        std::cerr << "trace_stats: " << e.what() << "\n";
        return 1;
    }
}
