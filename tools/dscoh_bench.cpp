// dscoh_bench — the tracked performance baseline of the simulator itself.
//
//   dscoh_bench [--quick] [--reps N] [--out FILE] [--compare FILE]
//               [--max-regress-pct P] [--only BP,VA,...]
//
// Runs the Fig. 4 sweep workloads (CCSM and direct store, small inputs)
// single-threaded and reports, per run and in aggregate, the engine's
// throughput: executed events per wall second, simulated ticks per wall
// second, and wall-clock time. The aggregate goes to --out as JSON in the
// stable "dscoh-bench-v1" schema; the committed BENCH_1.json at the repo
// root is exactly such a file and serves as the reference point.
//
// --compare FILE loads a previous output and gates on it: the aggregate
// events/sec over the (code, mode) runs present in BOTH files must not fall
// more than --max-regress-pct percent (default 15) below the baseline, or
// the tool exits 1. CI runs `dscoh_bench --quick --compare BENCH_1.json`
// on every push; comparing over the intersection is what lets the quick
// subset gate against the committed full sweep.
//
// Runs are timed one at a time on purpose: parallel workers would share
// memory bandwidth and turn the wall-clock numbers into noise. --reps N
// repeats each run and keeps the fastest repetition (the standard way to
// strip scheduler noise from a throughput number); simulation outputs are
// deterministic, so repetitions differ only in wall time.
//
// --service-overhead N additionally measures the sweep-service tax: N
// back-to-back small VA sweeps submitted to an in-process daemon over its
// Unix socket vs. the same N sweeps run directly on the engine. The
// amortized daemon wall time must stay within --max-service-overhead-pct
// (default 5) of embedded or the tool exits 1; the measurement lands in
// the report's "service" member.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/options.h"
#include "exp/experiment_engine.h"
#include "obs/json_lite.h"
#include "sim/errors.h"
#include "svc/client.h"
#include "svc/request.h"
#include "svc/server.h"
#include "svc/service.h"
#include "workloads/runner.h"

using namespace dscoh;

namespace {

struct BenchRun {
    std::string code;
    CoherenceMode mode = CoherenceMode::kCcsm;
    std::uint64_t events = 0;
    std::uint64_t ticks = 0;
    double wallSeconds = 0.0;

    double eventsPerSecond() const
    {
        return wallSeconds > 0.0 ? static_cast<double>(events) / wallSeconds
                                 : 0.0;
    }
    double ticksPerSecond() const
    {
        return wallSeconds > 0.0 ? static_cast<double>(ticks) / wallSeconds
                                 : 0.0;
    }
};

std::vector<std::string> splitCodes(const std::string& csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

const char* modeName(CoherenceMode m)
{
    return m == CoherenceMode::kCcsm ? "ccsm" : "ds";
}

/// One timed workload run with the queue's own counters enabled, repeated
/// @p reps times keeping the fastest wall time.
BenchRun timeRun(const std::string& code, CoherenceMode mode,
                 std::uint64_t reps)
{
    const Workload& w = WorkloadRegistry::instance().get(code);
    SystemConfig cfg;
    cfg.logLevel = LogLevel::kError; // logging off the hot path
    BenchRun best;
    best.code = code;
    best.mode = mode;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
        WorkloadRun run(w, InputSize::kSmall, mode, cfg);
        run.options().beforeFirstPhase = [](System& sys) {
            sys.enableQueueStats();
        };
        const auto start = std::chrono::steady_clock::now();
        const WorkloadRunResult res = run.run();
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;
        const auto it = res.statCounters.find("queue.executed_events");
        const std::uint64_t events =
            it == res.statCounters.end() ? 0 : it->second;
        if (rep == 0 || wall.count() < best.wallSeconds) {
            best.events = events;
            best.ticks = res.metrics.ticks;
            best.wallSeconds = wall.count();
        }
    }
    return best;
}

/// Daemon-vs-embedded measurement of --service-overhead.
struct ServiceBench {
    std::uint64_t sweeps = 0;
    std::uint64_t jobsPerSweep = 0;
    double embeddedSeconds = 0.0;
    double serviceSeconds = 0.0;

    double overheadPct() const
    {
        return embeddedSeconds > 0.0
                   ? (serviceSeconds / embeddedSeconds - 1.0) * 100.0
                   : 0.0;
    }
};

/// Runs @p sweeps identical small VA sweeps two ways — directly on the
/// engine, and submitted through an in-process daemon over its socket —
/// and fills @p out with the amortized wall times. The two paths
/// ALTERNATE, one embedded batch then one daemon batch per rep, fastest
/// of each kept: run back to back instead, the later phase measures the
/// thermal state the earlier one left behind (observed as a phantom
/// 10-20%% "overhead" that reverses with the phase order), not the
/// daemon. Returns an exit code; nonzero when the daemon path cannot be
/// driven at all.
int benchServiceOverhead(std::uint64_t sweeps, std::uint64_t reps,
                         ServiceBench* out)
{
    const std::vector<ExperimentJob> jobs = makeSweepJobs(
        {"VA"}, {InputSize::kSmall},
        {CoherenceMode::kCcsm, CoherenceMode::kDirectStore});
    out->sweeps = sweeps;
    out->jobsPerSweep = jobs.size();

    // Warm allocators and page cache once, untimed, so neither path pays
    // first-run costs the other does not.
    ExperimentEngine(1).run(jobs);

    // The daemon path: a real SweepService behind a real socket loop, one
    // worker so the engine-side work matches the single-threaded embedded
    // runs. The produce cache is off — on, the daemon would win outright
    // on repeated sweeps and hide the per-request machinery this measures.
    namespace fs = std::filesystem;
    const std::string stateDir =
        (fs::temp_directory_path() / "dscoh_bench_svc").string();
    fs::remove_all(stateDir);
    svc::ServiceOptions svcOpts;
    svcOpts.stateDir = stateDir;
    svcOpts.workers = 1;
    svcOpts.forkProduce = false;
    svc::SweepService service(svcOpts);
    svc::ServerOptions serverOpts;
    serverOpts.socketPath = stateDir + "/svc.sock";
    serverOpts.pollMs = 20;
    std::atomic<bool> stop{false};
    int serveExit = kExitOk;
    std::thread server([&] {
        serveExit = svc::serveSocket(service, serverOpts, stop);
    });

    const svc::SvcClient client(serverOpts.socketPath);
    std::string reply;
    std::string error;
    bool up = false;
    for (int i = 0; i < 200 && !up; ++i) {
        up = client.call("{\"op\": \"ping\"}", &reply, &error);
        if (!up)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!up) {
        std::cerr << "dscoh_bench: daemon never answered: " << error << "\n";
        stop = true;
        server.join();
        fs::remove_all(stateDir);
        return kExitIo;
    }

    svc::SweepRequest req;
    req.tenant = "bench";
    req.codes = {"VA"};
    const std::string submitLine =
        "{\"op\": \"submit\", \"request\": \"" +
        svc::jsonEscape(svc::renderRequestJson(req)) + "\"}";
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
        auto start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < sweeps; ++i)
            ExperimentEngine(1).run(jobs);
        const double embeddedWall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (rep == 0 || embeddedWall < out->embeddedSeconds)
            out->embeddedSeconds = embeddedWall;

        start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < sweeps; ++i) {
            if (!client.call(submitLine, &reply, &error) ||
                reply.find("\"ok\": true") == std::string::npos) {
                std::cerr << "dscoh_bench: submit failed: " << error
                          << reply << "\n";
                stop = true;
                server.join();
                fs::remove_all(stateDir);
                return kExitIo;
            }
        }
        if (!client.call("{\"op\": \"drain\"}", &reply, &error)) {
            std::cerr << "dscoh_bench: drain failed: " << error << "\n";
            stop = true;
            server.join();
            fs::remove_all(stateDir);
            return kExitIo;
        }
        const double serviceWall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (rep == 0 || serviceWall < out->serviceSeconds)
            out->serviceSeconds = serviceWall;
    }

    client.call("{\"op\": \"shutdown\"}", &reply, &error);
    stop = true;
    server.join();
    fs::remove_all(stateDir);
    return serveExit;
}

void writeJson(std::ostream& os, const std::vector<BenchRun>& runs,
               bool quick, std::uint64_t reps, const ServiceBench* service)
{
    std::uint64_t events = 0;
    std::uint64_t ticks = 0;
    double wall = 0.0;
    for (const BenchRun& r : runs) {
        events += r.events;
        ticks += r.ticks;
        wall += r.wallSeconds;
    }
    char buf[64];
    os << "{\n";
    os << "  \"schema\": \"dscoh-bench-v1\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"size\": \"small\",\n";
    os << "  \"reps\": " << reps << ",\n";
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const BenchRun& r = runs[i];
        os << "    {\"code\": \"" << r.code << "\", \"mode\": \""
           << modeName(r.mode) << "\", \"ticks\": " << r.ticks
           << ", \"events\": " << r.events;
        std::snprintf(buf, sizeof buf, "%.6f", r.wallSeconds);
        os << ", \"wall_seconds\": " << buf;
        std::snprintf(buf, sizeof buf, "%.1f", r.eventsPerSecond());
        os << ", \"events_per_second\": " << buf;
        std::snprintf(buf, sizeof buf, "%.1f", r.ticksPerSecond());
        os << ", \"sim_ticks_per_second\": " << buf << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"totals\": {\"ticks\": " << ticks << ", \"events\": " << events;
    std::snprintf(buf, sizeof buf, "%.6f", wall);
    os << ", \"wall_seconds\": " << buf;
    std::snprintf(buf, sizeof buf, "%.1f",
                  wall > 0.0 ? static_cast<double>(events) / wall : 0.0);
    os << ", \"events_per_second\": " << buf;
    std::snprintf(buf, sizeof buf, "%.1f",
                  wall > 0.0 ? static_cast<double>(ticks) / wall : 0.0);
    os << ", \"sim_ticks_per_second\": " << buf << "}";
    if (service != nullptr) {
        os << ",\n  \"service\": {\"sweeps\": " << service->sweeps
           << ", \"jobs_per_sweep\": " << service->jobsPerSweep;
        std::snprintf(buf, sizeof buf, "%.6f", service->embeddedSeconds);
        os << ", \"embedded_wall_seconds\": " << buf;
        std::snprintf(buf, sizeof buf, "%.6f", service->serviceSeconds);
        os << ", \"service_wall_seconds\": " << buf;
        std::snprintf(buf, sizeof buf, "%.2f", service->overheadPct());
        os << ", \"overhead_pct\": " << buf << "}";
    }
    os << "\n}\n";
}

/// Compares this invocation's runs against a baseline file over their
/// (code, mode) intersection. Returns the exit code.
int compareAgainst(const std::string& path, const std::vector<BenchRun>& runs,
                   double maxRegressPct)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "dscoh_bench: cannot open baseline " << path << "\n";
        return kExitIo;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string error;
    const jsonlite::ValuePtr doc = jsonlite::parse(ss.str(), error);
    if (doc == nullptr || !doc->isObject()) {
        std::cerr << "dscoh_bench: bad baseline " << path << ": " << error
                  << "\n";
        return kExitIo;
    }
    const jsonlite::Value* baseRuns = doc->get("runs");
    if (baseRuns == nullptr || !baseRuns->isArray()) {
        std::cerr << "dscoh_bench: baseline " << path << " has no runs\n";
        return kExitIo;
    }

    // Sum the baseline over the runs this invocation also executed.
    std::uint64_t baseEvents = 0;
    double baseWall = 0.0;
    std::uint64_t curEvents = 0;
    double curWall = 0.0;
    std::size_t matched = 0;
    for (const auto& entry : baseRuns->array) {
        const jsonlite::Value* code = entry->get("code");
        const jsonlite::Value* mode = entry->get("mode");
        const jsonlite::Value* events = entry->get("events");
        const jsonlite::Value* wall = entry->get("wall_seconds");
        if (code == nullptr || mode == nullptr || events == nullptr ||
            wall == nullptr)
            continue;
        for (const BenchRun& r : runs) {
            if (r.code == code->string && modeName(r.mode) == mode->string) {
                baseEvents += events->asUint();
                baseWall += wall->number;
                curEvents += r.events;
                curWall += r.wallSeconds;
                ++matched;
                break;
            }
        }
    }
    if (matched == 0 || baseWall <= 0.0 || curWall <= 0.0) {
        std::cerr << "dscoh_bench: no comparable runs in " << path << "\n";
        return kExitIo;
    }
    const double baseRate = static_cast<double>(baseEvents) / baseWall;
    const double curRate = static_cast<double>(curEvents) / curWall;
    const double deltaPct = (curRate / baseRate - 1.0) * 100.0;
    std::fprintf(stderr,
                 "compare: %zu shared runs, baseline %.0f events/s, "
                 "now %.0f events/s (%+.1f%%)\n",
                 matched, baseRate, curRate, deltaPct);
    if (deltaPct < -maxRegressPct) {
        std::fprintf(stderr,
                     "dscoh_bench: events/sec regressed %.1f%% "
                     "(limit %.0f%%) vs %s\n",
                     -deltaPct, maxRegressPct, path.c_str());
        return kExitFailure;
    }
    return kExitOk;
}

} // namespace

int main(int argc, char** argv)
{
    bool quick = false;
    std::uint64_t reps = 1;
    std::string outPath;
    std::string comparePath;
    std::uint64_t maxRegressPct = 15;
    std::string only;
    std::uint64_t serviceSweeps = 0;
    std::uint64_t maxServiceOverheadPct = 5;
    cli::OptionParser parser("dscoh_bench",
                             "engine throughput baseline over the Fig. 4 "
                             "sweep (events/sec, ticks/sec, wall-clock)");
    parser.addFlag("quick", "small representative subset (the CI gate)",
                   &quick);
    parser.addUint("reps", "repetitions per run, fastest kept (default 1)",
                   &reps);
    parser.addString("out", "write the JSON report here", &outPath);
    parser.addString("compare", "baseline JSON (e.g. BENCH_1.json); exit 1 "
                     "on a >--max-regress-pct events/sec drop over the "
                     "shared runs", &comparePath);
    parser.addUint("max-regress-pct", "allowed events/sec regression in "
                   "percent (default 15)", &maxRegressPct);
    parser.addString("only", "comma-separated benchmark codes (default: "
                     "all, or the quick subset)", &only);
    parser.addUint("service-overhead", "also time N sweeps through the "
                   "daemon vs embedded; exit 1 when the daemon is more "
                   "than --max-service-overhead-pct slower", &serviceSweeps);
    parser.addUint("max-service-overhead-pct", "allowed daemon overhead in "
                   "percent (default 5)", &maxServiceOverheadPct);
    if (!parser.parse(argc, argv, std::cerr))
        return kExitUsage;
    if (reps == 0)
        reps = 1;

    std::vector<std::string> codes;
    if (!only.empty())
        codes = splitCodes(only);
    else if (quick)
        codes = {"VA", "MM", "BP"};
    else
        codes = WorkloadRegistry::instance().codes();
    for (const std::string& code : codes) {
        if (!WorkloadRegistry::instance().has(code)) {
            std::cerr << "dscoh_bench: unknown benchmark '" << code << "'\n";
            return kExitUsage;
        }
    }

    std::vector<BenchRun> runs;
    runs.reserve(codes.size() * 2);
    std::printf("%-4s %-4s %12s %12s %9s %12s %12s\n", "code", "mode",
                "events", "ticks", "wall_s", "events/s", "ticks/s");
    for (const std::string& code : codes) {
        for (const CoherenceMode mode :
             {CoherenceMode::kCcsm, CoherenceMode::kDirectStore}) {
            BenchRun r;
            try {
                r = timeRun(code, mode, reps);
            } catch (const std::exception& e) {
                std::cerr << "dscoh_bench: " << code << " ("
                          << modeName(mode) << "): " << e.what() << "\n";
                return kExitFailure;
            }
            std::printf("%-4s %-4s %12llu %12llu %9.3f %12.0f %12.0f\n",
                        r.code.c_str(), modeName(r.mode),
                        static_cast<unsigned long long>(r.events),
                        static_cast<unsigned long long>(r.ticks),
                        r.wallSeconds, r.eventsPerSecond(),
                        r.ticksPerSecond());
            runs.push_back(r);
        }
    }

    std::uint64_t events = 0;
    std::uint64_t ticks = 0;
    double wall = 0.0;
    for (const BenchRun& r : runs) {
        events += r.events;
        ticks += r.ticks;
        wall += r.wallSeconds;
    }
    std::printf("%-4s %-4s %12llu %12llu %9.3f %12.0f %12.0f\n", "all", "-",
                static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(ticks), wall,
                wall > 0.0 ? static_cast<double>(events) / wall : 0.0,
                wall > 0.0 ? static_cast<double>(ticks) / wall : 0.0);

    ServiceBench service;
    if (serviceSweeps > 0) {
        const int rc = benchServiceOverhead(serviceSweeps, reps, &service);
        if (rc != kExitOk)
            return rc;
        std::printf("service: %llu sweeps x %llu jobs, embedded %.3fs, "
                    "daemon %.3fs (%+.1f%%)\n",
                    static_cast<unsigned long long>(service.sweeps),
                    static_cast<unsigned long long>(service.jobsPerSweep),
                    service.embeddedSeconds, service.serviceSeconds,
                    service.overheadPct());
    }

    if (!outPath.empty()) {
        std::ofstream out(outPath);
        if (!out) {
            std::cerr << "dscoh_bench: cannot write " << outPath << "\n";
            return kExitIo;
        }
        writeJson(out, runs, quick, reps,
                  serviceSweeps > 0 ? &service : nullptr);
        std::fprintf(stderr, "wrote %s\n", outPath.c_str());
    }

    if (!comparePath.empty()) {
        const int rc = compareAgainst(comparePath, runs,
                                      static_cast<double>(maxRegressPct));
        if (rc != kExitOk)
            return rc;
    }
    if (serviceSweeps > 0 &&
        service.overheadPct() >
            static_cast<double>(maxServiceOverheadPct)) {
        std::fprintf(stderr,
                     "dscoh_bench: daemon overhead %.1f%% exceeds the "
                     "%llu%% budget\n",
                     service.overheadPct(),
                     static_cast<unsigned long long>(maxServiceOverheadPct));
        return kExitFailure;
    }
    return kExitOk;
}
