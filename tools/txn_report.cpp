// txn_report — offline analyzer for dscoh transaction profiles.
//
//   dscoh_run --workload VA --mode ccsm --txn-profile va.ccsm.json
//   dscoh_run --workload VA --mode ds   --txn-profile va.ds.json
//   txn_report va.ccsm.json va.ds.json
//
// Reads one or more "dscoh-txnprof-v1" files (as written by
// dscoh_run/dscoh_fuzz --txn-profile) and prints, per file,
//
//   - the per-kind latency table (count, mean, p50/p95/p99),
//   - the stage-attribution table: for every transaction kind, how its
//     total latency splits across the critical-path buckets (queueing,
//     network, directory occupancy, DRAM, data supply, install, merge,
//     retry, backoff), in ticks and percent, and
//   - the --top K slowest transactions with their full hop timelines
//     (stage @ +delta-since-begin on which track).
//
// With two or more files it closes with a side-by-side per-kind summary —
// the view that shows the direct-store push path skipping the directory
// and DRAM stages the CCSM pull path pays.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/options.h"
#include "obs/json_lite.h"
#include "sim/errors.h"

using namespace dscoh;

namespace {

constexpr std::size_t kBuckets = 9;
const char* const kBucketNames[kBuckets] = {
    "queue", "network", "directory", "dram", "supply",
    "install", "merge", "retry", "backoff",
};

struct KindRow {
    std::string kind;
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::uint64_t stageTicks[kBuckets] = {};

    std::uint64_t totalStageTicks() const
    {
        std::uint64_t t = 0;
        for (const std::uint64_t s : stageTicks)
            t += s;
        return t;
    }
};

struct Profile {
    std::string path;
    std::uint64_t begun = 0;
    std::uint64_t completed = 0;
    std::uint64_t open = 0;
    std::vector<KindRow> kinds; ///< only kinds with count > 0
    const jsonlite::Value* slowest = nullptr;
    jsonlite::ValuePtr doc; ///< keeps `slowest` alive
};

bool loadProfile(const std::string& path, Profile& out, std::string& error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    out.doc = jsonlite::parse(buf.str(), error);
    if (out.doc == nullptr) {
        error = path + ": " + error;
        return false;
    }
    const jsonlite::Value* schema = out.doc->get("schema");
    if (schema == nullptr || schema->string != "dscoh-txnprof-v1") {
        error = path + ": not a dscoh-txnprof-v1 file";
        return false;
    }
    out.path = path;
    if (const jsonlite::Value* spans = out.doc->get("spans")) {
        if (const jsonlite::Value* v = spans->get("begun"))
            out.begun = v->asUint();
        if (const jsonlite::Value* v = spans->get("completed"))
            out.completed = v->asUint();
        if (const jsonlite::Value* v = spans->get("open"))
            out.open = v->asUint();
    }
    const jsonlite::Value* kinds = out.doc->get("kinds");
    if (kinds == nullptr || !kinds->isArray()) {
        error = path + ": missing \"kinds\" array";
        return false;
    }
    for (const jsonlite::ValuePtr& k : kinds->array) {
        KindRow row;
        if (const jsonlite::Value* v = k->get("kind"))
            row.kind = v->string;
        if (const jsonlite::Value* v = k->get("count"))
            row.count = v->asUint();
        if (row.count == 0)
            continue;
        if (const jsonlite::Value* lat = k->get("latency")) {
            if (const jsonlite::Value* v = lat->get("mean"))
                row.mean = v->number;
            if (const jsonlite::Value* v = lat->get("p50"))
                row.p50 = v->number;
            if (const jsonlite::Value* v = lat->get("p95"))
                row.p95 = v->number;
            if (const jsonlite::Value* v = lat->get("p99"))
                row.p99 = v->number;
        }
        if (const jsonlite::Value* stages = k->get("stages")) {
            for (std::size_t b = 0; b < kBuckets; ++b)
                if (const jsonlite::Value* v = stages->get(kBucketNames[b]))
                    row.stageTicks[b] = v->asUint();
        }
        out.kinds.push_back(row);
    }
    out.slowest = out.doc->get("slowest");
    return true;
}

void printLatencyTable(const Profile& p)
{
    std::printf("%-10s %8s %10s %10s %10s %10s\n", "kind", "count", "mean",
                "p50", "p95", "p99");
    for (const KindRow& k : p.kinds)
        std::printf("%-10s %8llu %10.1f %10.1f %10.1f %10.1f\n",
                    k.kind.c_str(), static_cast<unsigned long long>(k.count),
                    k.mean, k.p50, k.p95, k.p99);
}

void printStageTable(const Profile& p)
{
    std::printf("%-10s", "kind");
    for (const char* const b : kBucketNames)
        std::printf(" %9s", b);
    std::printf("\n");
    for (const KindRow& k : p.kinds) {
        const std::uint64_t total = k.totalStageTicks();
        std::printf("%-10s", k.kind.c_str());
        for (const std::uint64_t t : k.stageTicks)
            std::printf(" %9llu", static_cast<unsigned long long>(t));
        std::printf("\n");
        std::printf("%-10s", "");
        for (const std::uint64_t t : k.stageTicks) {
            if (total == 0) {
                std::printf(" %9s", "-");
            } else {
                const double pct = 100.0 * static_cast<double>(t) /
                                   static_cast<double>(total);
                char buf[16];
                std::snprintf(buf, sizeof buf, "%.1f%%", pct);
                std::printf(" %9s", buf);
            }
        }
        std::printf("\n");
    }
}

void printSlowest(const Profile& p, std::uint64_t top)
{
    if (p.slowest == nullptr || !p.slowest->isArray())
        return;
    std::uint64_t shown = 0;
    for (const jsonlite::ValuePtr& rec : p.slowest->array) {
        if (shown++ == top)
            break;
        const jsonlite::Value* id = rec->get("id");
        const jsonlite::Value* kind = rec->get("kind");
        const jsonlite::Value* addr = rec->get("addr");
        const jsonlite::Value* begin = rec->get("begin");
        const jsonlite::Value* latency = rec->get("latency");
        const jsonlite::Value* track = rec->get("track");
        std::printf("  #%llu %s %s latency=%llu from %s\n",
                    static_cast<unsigned long long>(
                        id != nullptr ? id->asUint() : 0),
                    kind != nullptr ? kind->string.c_str() : "?",
                    addr != nullptr ? addr->string.c_str() : "?",
                    static_cast<unsigned long long>(
                        latency != nullptr ? latency->asUint() : 0),
                    track != nullptr ? track->string.c_str() : "?");
        const jsonlite::Value* hops = rec->get("hops");
        if (hops == nullptr || !hops->isArray() || begin == nullptr)
            continue;
        std::printf("    ");
        bool first = true;
        for (const jsonlite::ValuePtr& hop : hops->array) {
            const jsonlite::Value* stage = hop->get("stage");
            const jsonlite::Value* at = hop->get("at");
            const jsonlite::Value* htrack = hop->get("track");
            std::printf("%s%s@+%llu(%s)", first ? "" : " -> ",
                        stage != nullptr ? stage->string.c_str() : "?",
                        static_cast<unsigned long long>(
                            at != nullptr ? at->asUint() - begin->asUint()
                                          : 0),
                        htrack != nullptr ? htrack->string.c_str() : "?");
            first = false;
        }
        std::printf("\n");
    }
}

/// Side-by-side per-kind view over all loaded files: count, p50, and the
/// bucket that dominates the kind's critical path in each profile.
void printComparison(const std::vector<Profile>& profiles)
{
    std::printf("\n=== comparison ===\n");
    std::printf("%-10s", "kind");
    for (const Profile& p : profiles)
        std::printf("  %28s", p.path.size() > 28
                                  ? p.path.substr(p.path.size() - 28).c_str()
                                  : p.path.c_str());
    std::printf("\n");
    std::vector<std::string> kinds;
    for (const Profile& p : profiles)
        for (const KindRow& k : p.kinds)
            if (std::find(kinds.begin(), kinds.end(), k.kind) == kinds.end())
                kinds.push_back(k.kind);
    for (const std::string& kind : kinds) {
        std::printf("%-10s", kind.c_str());
        for (const Profile& p : profiles) {
            const KindRow* row = nullptr;
            for (const KindRow& k : p.kinds)
                if (k.kind == kind)
                    row = &k;
            if (row == nullptr) {
                std::printf("  %28s", "-");
                continue;
            }
            std::size_t topBucket = 0;
            for (std::size_t b = 1; b < kBuckets; ++b)
                if (row->stageTicks[b] > row->stageTicks[topBucket])
                    topBucket = b;
            char buf[64];
            std::snprintf(buf, sizeof buf, "n=%llu p50=%.0f top=%s",
                          static_cast<unsigned long long>(row->count),
                          row->p50,
                          row->totalStageTicks() == 0
                              ? "-"
                              : kBucketNames[topBucket]);
            std::printf("  %28s", buf);
        }
        std::printf("\n");
    }
}

} // namespace

int main(int argc, char** argv)
{
    std::uint64_t top = 5;
    cli::OptionParser parser(
        "txn_report",
        "summarize dscoh --txn-profile files: per-kind latency percentiles, "
        "stage-by-stage critical-path attribution, slowest-transaction hop "
        "timelines; multiple files get a side-by-side comparison");
    parser.addUint("top", "slowest transactions to print per file "
                   "(default 5)", &top);
    if (!parser.parse(argc, argv, std::cerr))
        return kExitUsage;
    if (parser.positional().empty()) {
        std::cerr << "usage: txn_report PROFILE.json [MORE.json ...] "
                     "(--help for details)\n";
        return kExitUsage;
    }

    std::vector<Profile> profiles;
    for (const std::string& path : parser.positional()) {
        Profile p;
        std::string error;
        if (!loadProfile(path, p, error)) {
            std::cerr << "txn_report: " << error << "\n";
            return kExitIo;
        }
        profiles.push_back(std::move(p));
    }

    for (const Profile& p : profiles) {
        std::printf("=== %s ===\n", p.path.c_str());
        std::printf("spans: %llu begun, %llu completed, %llu open\n",
                    static_cast<unsigned long long>(p.begun),
                    static_cast<unsigned long long>(p.completed),
                    static_cast<unsigned long long>(p.open));
        if (p.kinds.empty()) {
            std::printf("(no completed transactions)\n\n");
            continue;
        }
        printLatencyTable(p);
        std::printf("\nstage attribution (ticks, %% of kind total):\n");
        printStageTable(p);
        if (top > 0) {
            std::printf("\nslowest %llu:\n",
                        static_cast<unsigned long long>(top));
            printSlowest(p, top);
        }
        std::printf("\n");
    }
    if (profiles.size() > 1)
        printComparison(profiles);
    return kExitOk;
}
