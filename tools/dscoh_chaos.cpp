// dscoh_chaos: deterministic storage-fault / crash chaos harness for the
// sweep daemon.
//
//   dscoh_chaos --state DIR [--seed N] [--ops N] [--svc PATH] [--keep]
//
// Drives a real dscoh_svc daemon (fork/exec, its own process) through a
// seeded schedule of interleaved operations — submits over the socket,
// spool file drops (including deliberately incomplete ones), status polls,
// cancels, SIGKILLs with restart — while the daemon runs with storage-fault
// injection armed (--iofault): torn writes, ENOSPC, EIO, fsync failures,
// and crash-before/after-rename, each incarnation on its own derived seed
// with a fault cap so restarts always make progress. A final incarnation
// runs fault-free, drains the queue, and shuts down cleanly.
//
// Then the harness audits the wreckage:
//
//   1. No acknowledged submit lost: every id the daemon replied ok to
//      appears in the WAL exactly once as "accepted".
//   2. No duplication: no id has more than one accepted record; accepted
//      ids the driver never got (reply lost to a crash) are bounded by the
//      number of transport-failed submit attempts.
//   3. Every accepted request terminates: exactly one terminal WAL record
//      ("done" / "failed" / "cancelled") per accepted id.
//   4. Fault-free equivalence: every "done" request's results.json is
//      byte-identical to an in-process fault-free reference run of the
//      same request. "failed" terminals are chaos failures (every request
//      the driver submits is valid).
//   5. Spool hygiene: every complete spool drop is consumed (admitted);
//      every deliberately incomplete drop is quarantined as .rejected with
//      a .error note.
//
// Exit 0 when every invariant holds, 1 otherwise. The whole run is
// deterministic in --seed: the op schedule, request shapes, and each
// incarnation's fault schedule all derive from it.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cli/options.h"
#include "exp/experiment_engine.h"
#include "obs/json_lite.h"
#include "sim/errors.h"
#include "sim/rng.h"
#include "svc/client.h"
#include "svc/request.h"
#include "svc/wal.h"

namespace {

using namespace dscoh;

std::string readWholeFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool fileExists(const std::string& path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

void sleepMs(unsigned ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// The daemon under test plus the lifecycle the chaos schedule needs:
/// spawn with a per-incarnation fault spec, detect death, SIGKILL, respawn.
class Daemon {
public:
    Daemon(std::string svcPath, std::string stateDir, std::uint64_t seed)
        : svcPath_(std::move(svcPath)), stateDir_(std::move(stateDir)),
          seed_(seed)
    {
    }

    const std::string& socketPath() const { return socket_; }
    unsigned incarnations() const { return incarnation_; }

    /// Spawns a fresh incarnation (faulty or clean) and waits until it
    /// answers ping. Returns false when it cannot be brought up at all.
    bool start(bool withFaults)
    {
        ++incarnation_;
        socket_ = stateDir_ + "/svc.sock";
        std::vector<std::string> argvStore = {
            svcPath_,  "--state", stateDir_, "--socket",
            socket_,   "--jobs",  "2",
        };
        if (withFaults) {
            // Moderate rates with a hard cap: each incarnation injects at
            // most 6 faults and then behaves, so recovery always converges
            // even when a crash fault fires during recovery itself.
            std::ostringstream spec;
            spec << "torn-write-ppm=20000,enospc-ppm=10000,eio-ppm=10000,"
                    "fsync-fail-ppm=10000,crash-before-rename-ppm=5000,"
                    "crash-after-rename-ppm=5000,max-faults=6,seed="
                 << (seed_ * 1000 + incarnation_);
            argvStore.push_back("--iofault");
            argvStore.push_back(spec.str());
        }
        const pid_t pid = ::fork();
        if (pid < 0)
            return false;
        if (pid == 0) {
            const int logFd =
                ::open((stateDir_ + "/daemon.log").c_str(),
                       O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
            if (logFd >= 0) {
                ::dup2(logFd, 1);
                ::dup2(logFd, 2);
            }
            std::vector<char*> argv;
            argv.reserve(argvStore.size() + 1);
            for (std::string& s : argvStore)
                argv.push_back(s.data());
            argv.push_back(nullptr);
            ::execv(svcPath_.c_str(), argv.data());
            ::_exit(127);
        }
        pid_ = pid;
        // Wait for the socket to answer; the daemon may crash during
        // recovery (injected faults) — the caller restarts on false.
        const svc::SvcClient client(socket_);
        for (int i = 0; i < 200; ++i) {
            std::string reply, error;
            if (client.call("{\"op\": \"ping\"}", &reply, &error))
                return true;
            if (!aliveNow())
                return false;
            sleepMs(25);
        }
        kill();
        return false;
    }

    /// Reaps the daemon if it has exited; true while it is still running.
    bool aliveNow()
    {
        if (pid_ <= 0)
            return false;
        int status = 0;
        const pid_t r = ::waitpid(pid_, &status, WNOHANG);
        if (r == pid_) {
            pid_ = -1;
            lastStatus_ = status;
            return false;
        }
        return r == 0;
    }

    void kill()
    {
        if (pid_ <= 0)
            return;
        ::kill(pid_, SIGKILL);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        lastStatus_ = status;
        pid_ = -1;
    }

    /// Waits for a voluntary exit (after the shutdown op) and returns the
    /// exit code, or -1 on signal death / timeout.
    int waitExit()
    {
        if (pid_ <= 0)
            return WIFEXITED(lastStatus_) ? WEXITSTATUS(lastStatus_) : -1;
        for (int i = 0; i < 600; ++i) {
            if (!aliveNow())
                return WIFEXITED(lastStatus_) ? WEXITSTATUS(lastStatus_)
                                              : -1;
            sleepMs(100);
        }
        kill();
        return -1;
    }

private:
    std::string svcPath_;
    std::string stateDir_;
    std::string socket_;
    std::uint64_t seed_ = 1;
    pid_t pid_ = -1;
    int lastStatus_ = 0;
    unsigned incarnation_ = 0;
};

/// What the driver remembers about its own traffic, for the audit.
struct ChaosLedger {
    std::set<std::string> okIds;       ///< submit replies with ok: true
    std::size_t lostSubmitReplies = 0; ///< submits whose reply never came
    std::vector<std::string> goodSpoolFiles;
    std::vector<std::string> badSpoolFiles;
    std::size_t restarts = 0;  ///< SIGKILLs + crash-fault deaths
    std::size_t shed = 0;      ///< submits rejected with shed: true
    std::size_t degraded = 0;  ///< submits rejected with degraded: true
};

struct ChaosOptions {
    std::string stateDir;
    std::string svcPath;
    std::uint64_t seed = 1;
    std::uint64_t ops = 200;
};

/// One request from the seeded shape pool: small, one code, one mode, so
/// individual jobs stay cheap and the schedule stays dense.
svc::SweepRequest makeRequest(Rng& rng)
{
    static const char* kCodes[] = {"VA", "BL", "MT", "NN"};
    static const char* kTenants[] = {"alice", "bob", "carol"};
    svc::SweepRequest r;
    r.tenant = kTenants[rng.below(3)];
    r.priority = static_cast<int>(rng.below(3));
    r.weight = 1 + static_cast<unsigned>(rng.below(3));
    r.size = InputSize::kSmall;
    r.codes = {kCodes[rng.below(4)]};
    r.modes = {rng.below(2) == 0 ? CoherenceMode::kCcsm
                                 : CoherenceMode::kDirectStore};
    if (rng.below(8) == 0)
        r.deadlineMs = 30000; // long: usually finishes, occasionally expires
    return r;
}

/// One socket round trip with crash handling: restarts the daemon when the
/// call failed because it died. Returns nullptr when no reply was obtained
/// (the daemon was restarted; the caller decides whether to re-issue).
jsonlite::ValuePtr call(Daemon& daemon, const std::string& line,
                        ChaosLedger& ledger)
{
    for (int attempt = 0; attempt < 50; ++attempt) {
        const svc::SvcClient client(daemon.socketPath());
        std::string reply, error;
        if (client.call(line, &reply, &error)) {
            std::string parseError;
            jsonlite::ValuePtr v = jsonlite::parse(reply, parseError);
            if (v != nullptr && v->isObject())
                return v;
            return nullptr; // malformed reply: treat as lost
        }
        if (daemon.aliveNow()) {
            sleepMs(50); // transient (listen backlog, mid-accept); retry
            continue;
        }
        // The daemon died (crash fault or a SIGKILL landing between ops):
        // bring up the next incarnation and report the reply as lost.
        ++ledger.restarts;
        while (!daemon.start(true)) {
            if (daemon.incarnations() > 500) {
                std::cerr << "dscoh_chaos: daemon cannot be revived\n";
                std::exit(kExitFailure);
            }
        }
        return nullptr;
    }
    return nullptr;
}

void runSchedule(Daemon& daemon, const ChaosOptions& opts,
                 ChaosLedger& ledger)
{
    Rng rng(opts.seed);
    std::vector<std::string> knownIds;
    unsigned spoolCounter = 0;

    for (std::uint64_t op = 0; op < opts.ops; ++op) {
        const std::uint64_t dice = rng.below(100);
        if (dice < 40) {
            // Socket submit.
            const svc::SweepRequest r = makeRequest(rng);
            const std::string line =
                "{\"op\": \"submit\", \"request\": \"" +
                svc::jsonEscape(svc::renderRequestJson(r)) + "\"}";
            const jsonlite::ValuePtr v = call(daemon, line, ledger);
            if (v == nullptr) {
                ++ledger.lostSubmitReplies;
                continue;
            }
            const jsonlite::Value* ok = v->get("ok");
            if (ok != nullptr && ok->kind == jsonlite::Kind::kBool &&
                ok->boolean) {
                if (const jsonlite::Value* id = v->get("id");
                    id != nullptr && id->isString()) {
                    ledger.okIds.insert(id->string);
                    knownIds.push_back(id->string);
                }
            } else if (const jsonlite::Value* shed = v->get("shed");
                       shed != nullptr && shed->boolean) {
                ++ledger.shed;
            } else if (const jsonlite::Value* deg = v->get("degraded");
                       deg != nullptr && deg->boolean) {
                ++ledger.degraded;
            }
        } else if (dice < 50) {
            // Spool drop — mostly complete (atomic tmp+rename), sometimes
            // deliberately broken to exercise quarantine.
            const std::string base = opts.stateDir + "/spool/chaos-" +
                                     std::to_string(spoolCounter++);
            if (rng.below(4) == 0) {
                // Incomplete: empty, or missing the terminal newline.
                std::ofstream out(base + ".json", std::ios::binary);
                if (rng.below(2) == 0) {
                    svc::SweepRequest r = makeRequest(rng);
                    r.tenant = "spool";
                    out << svc::renderRequestJson(r); // no '\n'
                }
                out.close();
                ledger.badSpoolFiles.push_back(base + ".json");
            } else {
                svc::SweepRequest r = makeRequest(rng);
                r.tenant = "spool";
                std::ofstream out(base + ".tmp", std::ios::binary);
                out << svc::renderRequestJson(r) << "\n";
                out.close();
                std::rename((base + ".tmp").c_str(),
                            (base + ".json").c_str());
                ledger.goodSpoolFiles.push_back(base + ".json");
            }
        } else if (dice < 62 && !knownIds.empty()) {
            // Status poll of a random past request (terminal ids answer
            // "unknown" after a restart; both replies are legal).
            const std::string& id = knownIds[rng.below(knownIds.size())];
            call(daemon, "{\"op\": \"status\", \"id\": \"" + id + "\"}",
                 ledger);
        } else if (dice < 70 && !knownIds.empty()) {
            const std::string& id = knownIds[rng.below(knownIds.size())];
            call(daemon, "{\"op\": \"cancel\", \"id\": \"" + id + "\"}",
                 ledger);
        } else if (dice < 78) {
            call(daemon, "{\"op\": \"stats\"}", ledger);
        } else if (dice < 84) {
            // SIGKILL + restart: the crash the WAL exists for.
            daemon.kill();
            ++ledger.restarts;
            while (!daemon.start(true)) {
                if (daemon.incarnations() > 500) {
                    std::cerr << "dscoh_chaos: daemon cannot be revived\n";
                    std::exit(kExitFailure);
                }
            }
        } else {
            sleepMs(5 + static_cast<unsigned>(rng.below(35)));
        }
    }
}

/// Waits until the spool holds no live .json files (everything admitted or
/// quarantined). The daemon scans on every poll tick.
bool awaitSpoolClean(const std::string& stateDir, Daemon& daemon,
                     ChaosLedger& ledger)
{
    for (int i = 0; i < 600; ++i) {
        bool live = false;
        for (const std::string& f : ledger.goodSpoolFiles)
            live = live || fileExists(f);
        for (const std::string& f : ledger.badSpoolFiles)
            live = live || fileExists(f);
        if (!live)
            return true;
        // Keep the daemon honest: a crash here must still be survived.
        if (!daemon.aliveNow()) {
            ++ledger.restarts;
            if (!daemon.start(false))
                return false;
        }
        (void)stateDir;
        sleepMs(100);
    }
    return false;
}

/// Fault-free reference results for one accepted request, cached across
/// identical requests. Returns false when the reference itself fails
/// (cannot happen for requests this driver generates).
bool referenceResults(const svc::SweepRequest& req, std::string* bytes,
                      std::map<std::string, std::string>& cache)
{
    svc::SweepRequest key = req;
    key.id.clear();
    const std::string keyStr = svc::renderRequestJson(key);
    if (const auto it = cache.find(keyStr); it != cache.end()) {
        *bytes = it->second;
        return true;
    }
    std::vector<ExperimentJob> jobs;
    std::string error;
    if (!svc::expandJobs(req, &jobs, &error))
        return false;
    const ExperimentEngine engine(2);
    const std::vector<ExperimentResult> results = engine.run(jobs);
    for (const ExperimentResult& r : results)
        if (!r.ok)
            return false;
    std::ostringstream os;
    writeResultsJson(os, results);
    cache.emplace(keyStr, os.str());
    *bytes = cache[keyStr];
    return true;
}

int audit(const ChaosOptions& opts, const ChaosLedger& ledger)
{
    std::size_t failures = 0;
    const auto fail = [&failures](const std::string& what) {
        std::cerr << "dscoh_chaos: INVARIANT VIOLATED: " << what << "\n";
        ++failures;
    };

    // The WAL is the daemon's statement of record; replay it the way
    // recovery does.
    const svc::WalReadResult wal =
        svc::readWal(opts.stateDir + "/svc.journal");
    if (wal.truncated)
        fail("final WAL still has a torn tail (" + wal.reason + ")");

    std::map<std::string, std::size_t> acceptedCount;
    std::map<std::string, svc::SweepRequest> acceptedReq;
    std::map<std::string, std::vector<std::string>> terminals;
    for (const std::string& payload : wal.payloads) {
        std::string err;
        const jsonlite::ValuePtr v = jsonlite::parse(payload, err);
        if (v == nullptr || !v->isObject())
            continue;
        const jsonlite::Value* ev = v->get("event");
        const jsonlite::Value* id = v->get("id");
        if (ev == nullptr || !ev->isString() || id == nullptr ||
            !id->isString())
            continue;
        if (ev->string == "accepted") {
            ++acceptedCount[id->string];
            if (const jsonlite::Value* reqVal = v->get("request");
                reqVal != nullptr && reqVal->isString()) {
                svc::SweepRequest r;
                std::string reqErr;
                if (svc::parseRequestJson(reqVal->string, &r, &reqErr))
                    acceptedReq[id->string] = std::move(r);
            }
        } else {
            terminals[id->string].push_back(ev->string);
        }
    }

    // 1. No acknowledged submit lost, none duplicated.
    for (const std::string& id : ledger.okIds) {
        const auto it = acceptedCount.find(id);
        if (it == acceptedCount.end())
            fail("acknowledged submit " + id + " has no accepted record");
        else if (it->second != 1)
            fail("request " + id + " accepted " +
                 std::to_string(it->second) + " times");
    }
    for (const auto& [id, count] : acceptedCount)
        if (count != 1)
            fail("request " + id + " accepted " + std::to_string(count) +
                 " times");

    // 2. Ghost accepts (reply lost to a crash) are bounded by the submits
    //    whose replies the driver never saw. Spool intake is at-least-once
    //    by design (a kill between WAL append and file removal re-admits
    //    the file), so spool-tenant ghosts are unbounded but harmless.
    std::size_t socketGhosts = 0;
    for (const auto& [id, req] : acceptedReq)
        if (req.tenant != "spool" && ledger.okIds.count(id) == 0)
            ++socketGhosts;
    if (socketGhosts > ledger.lostSubmitReplies)
        fail(std::to_string(socketGhosts) +
             " unacknowledged socket accepts but only " +
             std::to_string(ledger.lostSubmitReplies) +
             " submits lost their reply");

    // 3. Exactly one terminal record per accepted request.
    for (const auto& [id, count] : acceptedCount) {
        const auto t = terminals.find(id);
        if (t == terminals.end())
            fail("request " + id + " never reached a terminal state");
        else if (t->second.size() != 1)
            fail("request " + id + " has " +
                 std::to_string(t->second.size()) + " terminal records");
    }
    for (const auto& [id, evs] : terminals)
        if (acceptedCount.count(id) == 0)
            fail("terminal record for never-accepted request " + id);

    // 4. Fault-free equivalence for every completed request.
    std::map<std::string, std::string> referenceCache;
    std::size_t compared = 0;
    for (const auto& [id, evs] : terminals) {
        if (evs.empty())
            continue;
        const std::string& state = evs.front();
        if (state == "cancelled")
            continue; // no publication owed
        if (state == "failed") {
            fail("request " + id + " terminally failed (all chaos "
                 "requests are valid)");
            continue;
        }
        const std::string published = readWholeFile(
            opts.stateDir + "/jobs/" + id + "/results.json");
        if (published.empty()) {
            fail("done request " + id + " has no results.json");
            continue;
        }
        const auto req = acceptedReq.find(id);
        if (req == acceptedReq.end()) {
            fail("done request " + id + " has no parseable request");
            continue;
        }
        std::string expect;
        if (!referenceResults(req->second, &expect, referenceCache)) {
            fail("reference run for " + id + " failed");
            continue;
        }
        if (published != expect)
            fail("request " + id +
                 " results.json differs from the fault-free reference");
        else
            ++compared;
    }

    // 5. Spool hygiene.
    for (const std::string& f : ledger.goodSpoolFiles) {
        if (fileExists(f))
            fail("complete spool drop " + f + " was never consumed");
        if (fileExists(f + ".rejected"))
            fail("complete spool drop " + f + " was quarantined");
    }
    for (const std::string& f : ledger.badSpoolFiles) {
        if (!fileExists(f + ".rejected") || !fileExists(f + ".error"))
            fail("incomplete spool drop " + f +
                 " was not quarantined as .rejected + .error");
    }

    std::cout << "dscoh_chaos: seed " << opts.seed << ", " << opts.ops
              << " ops, " << ledger.restarts << " daemon restarts, "
              << acceptedCount.size() << " accepted ("
              << ledger.okIds.size() << " acked, " << ledger.shed
              << " shed, " << ledger.degraded << " degraded-rejected), "
              << compared << " results byte-verified, " << failures
              << " invariant violations\n";
    return failures == 0 ? kExitOk : kExitFailure;
}

} // namespace

int main(int argc, char** argv)
{
    ChaosOptions opts;
    std::string seedText = "1", opsText = "200";
    bool keep = false;

    cli::OptionParser parser(
        "dscoh_chaos",
        "Deterministic chaos harness: drives a live dscoh_svc daemon "
        "through seeded submits/cancels/kills with storage faults armed, "
        "then audits the WAL and published artifacts for lost, duplicated, "
        "or corrupted requests.");
    parser.addString("state", "scratch state directory (required; reused "
                              "as the daemon's --state)",
                     &opts.stateDir);
    parser.addString("svc", "path to the dscoh_svc binary (default: next "
                            "to this binary)",
                     &opts.svcPath);
    parser.addString("seed", "schedule seed (default 1)", &seedText);
    parser.addString("ops", "operations to drive (default 200)", &opsText);
    parser.addFlag("keep", "keep the state directory afterwards", &keep);
    if (!parser.parse(argc, argv, std::cerr))
        return kExitUsage;
    if (opts.stateDir.empty()) {
        std::cerr << "dscoh_chaos: --state is required\n";
        return kExitUsage;
    }
    opts.seed = std::strtoull(seedText.c_str(), nullptr, 10);
    opts.ops = std::strtoull(opsText.c_str(), nullptr, 10);
    if (opts.svcPath.empty()) {
        std::string self = argv[0];
        const std::size_t slash = self.rfind('/');
        opts.svcPath =
            (slash == std::string::npos ? std::string(".")
                                        : self.substr(0, slash)) +
            "/dscoh_svc";
    }

    if (fileExists(opts.stateDir + "/svc.journal")) {
        // A used state dir would make the audit count every prior run's
        // accepts as ghosts; the harness owns a fresh scratch dir only.
        std::cerr << "dscoh_chaos: " << opts.stateDir
                  << " holds a previous run's state; pass a fresh "
                     "directory\n";
        return kExitUsage;
    }
    ::mkdir(opts.stateDir.c_str(), 0755);
    ::mkdir((opts.stateDir + "/spool").c_str(), 0755);

    Daemon daemon(opts.svcPath, opts.stateDir, opts.seed);
    if (!daemon.start(true)) {
        // Fault schedules can kill the very first incarnation; retry.
        bool up = false;
        for (int i = 0; i < 50 && !up; ++i)
            up = daemon.start(true);
        if (!up) {
            std::cerr << "dscoh_chaos: cannot start " << opts.svcPath
                      << "\n";
            return kExitIo;
        }
    }

    ChaosLedger ledger;
    runSchedule(daemon, opts, ledger);

    // Final incarnation: fault-free. Kill whatever is running the hard
    // way, recover, let the spool drain, finish every queued job, and
    // shut down voluntarily.
    daemon.kill();
    ++ledger.restarts;
    if (!daemon.start(false)) {
        std::cerr << "dscoh_chaos: fault-free restart failed\n";
        return kExitFailure;
    }
    if (!awaitSpoolClean(opts.stateDir, daemon, ledger)) {
        std::cerr << "dscoh_chaos: spool never drained\n";
        return kExitFailure;
    }
    {
        const svc::SvcClient client(daemon.socketPath());
        std::string reply, error;
        if (!client.call("{\"op\": \"drain\"}", &reply, &error)) {
            std::cerr << "dscoh_chaos: drain failed: " << error << "\n";
            return kExitFailure;
        }
        client.call("{\"op\": \"shutdown\"}", &reply, &error);
    }
    const int rc = daemon.waitExit();
    if (rc != 0) {
        std::cerr << "dscoh_chaos: clean shutdown exited " << rc << "\n";
        return kExitFailure;
    }

    const int verdict = audit(opts, ledger);
    if (verdict == kExitOk && !keep) {
        // Leave nothing behind on success unless asked to.
        std::error_code ignored;
        std::filesystem::remove_all(opts.stateDir, ignored);
    }
    return verdict;
}
