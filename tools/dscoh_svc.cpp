// dscoh_svc: the persistent sweep daemon.
//
// Runs the ExperimentEngine resident, accepting sweep requests from any
// number of tenants over a Unix-domain socket (dscoh-svc-v1, see
// src/svc/protocol.h) and from a spool directory
// (<state>/spool/*.json, for environments with no socket access). Work is
// shared fairly across tenants, the CPU produce phase is deduplicated
// through a shared snapshot cache, and a write-ahead journal makes the
// queue survive SIGKILL: restart the daemon on the same --state dir and
// every unfinished request resumes, publishing results byte-identical to
// an uninterrupted run.
//
// Exit codes: 0 clean shutdown (op or SIGTERM/SIGINT), 2 usage,
// 4 socket/state-dir I/O failure.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>

#include "cli/options.h"
#include "fault/io_fault.h"
#include "sim/errors.h"
#include "svc/server.h"

namespace {

std::atomic<bool> g_stop{false};

void onSignal(int)
{
    g_stop.store(true);
}

} // namespace

int main(int argc, char** argv)
{
    using namespace dscoh;

    std::string stateDir;
    std::string socketPath;
    std::string jobsText;
    std::uint64_t maxQueuedJobs = 0;
    std::uint64_t cacheMaxMb = 0;
    std::uint64_t tenantMemBudgetMb = 0;
    std::uint64_t defaultDeadlineMs = 0;
    bool noForkProduce = false;
    bool jobCheckpoints = false;
    std::string ioFaultSpec;

    cli::OptionParser parser(
        "dscoh_svc",
        "Persistent multi-tenant sweep daemon (dscoh-svc-v1 socket + spool "
        "intake). State, results, and the recovery journal live under "
        "--state; kill it any way you like and restart on the same dir.");
    parser.addString("state", "state directory (required; created if absent)",
                     &stateDir);
    parser.addString("socket",
                     "socket path (default: <state>/svc.sock)", &socketPath);
    parser.addString("jobs", "worker threads (default: DSCOH_JOBS or all cores)",
                     &jobsText);
    parser.addUint("max-queued-jobs",
                   "backpressure: max queued jobs across tenants (0 = unbounded)",
                   &maxQueuedJobs);
    parser.addUint("cache-max-mb",
                   "produce-phase snapshot cache budget in MiB (0 = unbounded)",
                   &cacheMaxMb);
    parser.addFlag("no-fork-produce",
                   "disable the shared produce-phase snapshot cache",
                   &noForkProduce);
    parser.addFlag("job-checkpoints",
                   "write per-job produce checkpoints (resumes the one job "
                   "a crash interrupted, at a snapshot write per job)",
                   &jobCheckpoints);
    parser.addUint("tenant-mem-budget-mb",
                   "soft per-tenant in-flight memory budget in MiB "
                   "(0 = unbounded)",
                   &tenantMemBudgetMb);
    parser.addUint("default-deadline-ms",
                   "deadline for requests that carry none, ms (0 = none)",
                   &defaultDeadlineMs);
    parser.addString("iofault",
                     "storage-fault injection spec (key=value[,...]: "
                     "torn-write-ppm, enospc-ppm, eio-ppm, fsync-fail-ppm, "
                     "crash-before/after-rename-ppm, short-write-ppm, "
                     "torn-offset-pct, op-start, op-end, max-faults, path, "
                     "seed) — chaos testing only",
                     &ioFaultSpec);
    if (!parser.parse(argc, argv, std::cerr))
        return kExitUsage;
    if (stateDir.empty()) {
        std::cerr << "dscoh_svc: --state is required\n";
        return kExitUsage;
    }
    if (!ioFaultSpec.empty()) {
        fault::IoFaultConfig ioCfg;
        std::string specError;
        if (!fault::parseIoFaultSpec(ioFaultSpec, &ioCfg, &specError)) {
            std::cerr << "dscoh_svc: " << specError << "\n";
            return kExitUsage;
        }
        fault::installIoFaults(ioCfg);
    }

    unsigned workers = 0;
    std::string error;
    if (!cli::resolveJobs(jobsText, workers, error)) {
        std::cerr << "dscoh_svc: " << error << "\n";
        return kExitUsage;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    svc::ServiceOptions opts;
    opts.stateDir = stateDir;
    opts.workers = workers;
    opts.maxQueuedJobs = maxQueuedJobs;
    opts.forkProduce = !noForkProduce;
    opts.cacheMaxBytes = cacheMaxMb * 1024 * 1024;
    opts.jobCheckpoints = jobCheckpoints;
    opts.tenantMemBudgetBytes = tenantMemBudgetMb * 1024 * 1024;
    opts.defaultDeadlineMs = defaultDeadlineMs;

    try {
        svc::SweepService service(opts);
        svc::ServerOptions serverOpts;
        serverOpts.socketPath =
            socketPath.empty() ? stateDir + "/svc.sock" : socketPath;
        std::fprintf(stderr, "dscoh_svc: %u workers, state %s, socket %s\n",
                     service.workers(), stateDir.c_str(),
                     serverOpts.socketPath.c_str());
        const int rc = serveSocket(service, serverOpts, g_stop);
        if (rc != kExitOk) {
            std::cerr << "dscoh_svc: cannot listen on "
                      << serverOpts.socketPath << "\n";
            return rc;
        }
        // ~SweepService finishes in-flight jobs; queued work stays in the
        // journal for the next start.
    } catch (const std::exception& e) {
        std::cerr << "dscoh_svc: " << e.what() << "\n";
        return kExitIo;
    }
    return kExitOk;
}
