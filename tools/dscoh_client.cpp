// dscoh_client: command-line client for the dscoh_svc daemon.
//
//   dscoh_client --socket S ping
//   dscoh_client --socket S submit [--tenant T] [--priority P] [--weight W]
//                [--size small|big] [--only VA,NN] [--modes ccsm,ds]
//                [--config FILE] [--request FILE] [--watch]
//   dscoh_client --socket S status ID
//   dscoh_client --socket S watch ID
//   dscoh_client --socket S cancel ID
//   dscoh_client --socket S list | stats | drain | shutdown
//
// submit prints the assigned request id and directory; --watch then polls
// until the request is terminal (exit 0 done, 1 failed/cancelled). watch
// does the same for an existing id. All other commands print the daemon's
// reply document.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "cli/options.h"
#include "obs/json_lite.h"
#include "sim/errors.h"
#include "svc/client.h"
#include "svc/request.h"

namespace {

using namespace dscoh;

bool readFile(const std::string& path, std::string* out, std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *error = "cannot read " + path;
        return false;
    }
    std::ostringstream os;
    os << in.rdbuf();
    *out = os.str();
    return true;
}

std::vector<std::string> splitCommas(const std::string& s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/// One round trip; exits on transport failure, returns the parsed reply.
jsonlite::ValuePtr call(const svc::SvcClient& client,
                        const std::string& line, std::string* rawReply)
{
    std::string reply, error;
    if (!client.call(line, &reply, &error)) {
        std::cerr << "dscoh_client: " << error << "\n";
        std::exit(kExitIo);
    }
    std::string parseError;
    jsonlite::ValuePtr v = jsonlite::parse(reply, parseError);
    if (v == nullptr || !v->isObject()) {
        std::cerr << "dscoh_client: bad reply: " << reply << "\n";
        std::exit(kExitFailure);
    }
    if (const jsonlite::Value* ok = v->get("ok");
        ok == nullptr || ok->kind != jsonlite::Kind::kBool || !ok->boolean) {
        const jsonlite::Value* err = v->get("error");
        std::cerr << "dscoh_client: daemon error: "
                  << (err != nullptr && err->isString() ? err->string
                                                        : reply)
                  << "\n";
        // Overload/degraded rejections get their own exit codes so shell
        // callers can implement backoff without parsing the reply.
        if (const jsonlite::Value* shed = v->get("shed");
            shed != nullptr && shed->kind == jsonlite::Kind::kBool &&
            shed->boolean) {
            if (const jsonlite::Value* retry = v->get("retryAfterMs");
                retry != nullptr && retry->isNumber())
                std::cerr << "dscoh_client: retry after "
                          << static_cast<std::uint64_t>(retry->number)
                          << " ms\n";
            std::exit(kExitShed);
        }
        if (const jsonlite::Value* deg = v->get("degraded");
            deg != nullptr && deg->kind == jsonlite::Kind::kBool &&
            deg->boolean)
            std::exit(kExitDegraded);
        std::exit(kExitFailure);
    }
    if (rawReply != nullptr)
        *rawReply = reply;
    return v;
}

/// Polls status until terminal. Returns the process exit code.
int watch(const svc::SvcClient& client, const std::string& id)
{
    std::string last;
    for (;;) {
        const jsonlite::ValuePtr v = call(
            client, "{\"op\": \"status\", \"id\": \"" + id + "\"}", nullptr);
        const jsonlite::Value* st = v->get("status");
        if (st == nullptr || !st->isObject()) {
            std::cerr << "dscoh_client: malformed status reply\n";
            return kExitFailure;
        }
        const jsonlite::Value* state = st->get("state");
        const jsonlite::Value* done = st->get("jobsDone");
        const jsonlite::Value* total = st->get("jobsTotal");
        const jsonlite::Value* failed = st->get("jobsFailed");
        std::ostringstream lineOs;
        lineOs << id << " " << (state != nullptr ? state->string : "?")
               << " "
               << (done != nullptr ? static_cast<std::uint64_t>(done->number)
                                   : 0)
               << "/"
               << (total != nullptr
                       ? static_cast<std::uint64_t>(total->number)
                       : 0);
        if (failed != nullptr && failed->number > 0)
            lineOs << " (" << static_cast<std::uint64_t>(failed->number)
                   << " failed)";
        const std::string lineStr = lineOs.str();
        if (lineStr != last) {
            std::cout << lineStr << "\n" << std::flush;
            last = lineStr;
        }
        const std::string s = state != nullptr ? state->string : "";
        if (s == "done")
            return kExitOk;
        if (s == "failed" || s == "cancelled")
            return kExitFailure;
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
}

} // namespace

int main(int argc, char** argv)
{
    std::string socketPath;
    std::string tenant = "default";
    std::string priorityText = "0";
    std::uint64_t weight = 1;
    std::string sizeText = "small";
    std::string only;
    std::string modesText;
    std::string configFile;
    std::string requestFile;
    std::uint64_t deadlineMs = 0;
    bool watchFlag = false;

    cli::OptionParser parser(
        "dscoh_client",
        "Client for the dscoh_svc daemon. Commands: ping, submit, status ID, "
        "watch ID, cancel ID, list, stats, drain, shutdown.");
    parser.addString("socket", "daemon socket path (required)", &socketPath);
    parser.addString("tenant", "submit: tenant name (default: default)",
                     &tenant);
    parser.addString("priority",
                     "submit: priority within the tenant (default 0)",
                     &priorityText);
    parser.addUint("weight", "submit: tenant fair-share weight (default 1)",
                   &weight);
    parser.addString("size", "submit: input size, small|big", &sizeText);
    parser.addString("only", "submit: comma-separated benchmark codes",
                     &only);
    parser.addString("modes", "submit: comma-separated modes (ccsm,ds,dsonly)",
                     &modesText);
    parser.addString("config", "submit: config file (key = value lines)",
                     &configFile);
    parser.addString("request",
                     "submit: raw request JSON file (overrides other flags)",
                     &requestFile);
    parser.addUint("deadline-ms",
                   "submit: cancel the request if not finished in this many "
                   "ms (0 = no deadline)",
                   &deadlineMs);
    parser.addFlag("watch", "submit: poll until the request is terminal",
                   &watchFlag);
    if (!parser.parse(argc, argv, std::cerr))
        return kExitUsage;
    if (socketPath.empty() || parser.positional().empty()) {
        std::cerr << "dscoh_client: need --socket and a command "
                     "(ping|submit|status|watch|cancel|list|stats|drain|"
                     "shutdown)\n";
        return kExitUsage;
    }

    const svc::SvcClient client(socketPath);
    const std::string& cmd = parser.positional()[0];
    std::string raw;

    if (cmd == "ping" || cmd == "list" || cmd == "stats" || cmd == "drain" ||
        cmd == "shutdown") {
        call(client, "{\"op\": \"" + cmd + "\"}", &raw);
        std::cout << raw << "\n";
        return kExitOk;
    }

    if (cmd == "status" || cmd == "cancel" || cmd == "watch") {
        if (parser.positional().size() < 2) {
            std::cerr << "dscoh_client: " << cmd << " needs a request id\n";
            return kExitUsage;
        }
        const std::string& id = parser.positional()[1];
        if (cmd == "watch")
            return watch(client, id);
        call(client,
             "{\"op\": \"" + cmd + "\", \"id\": \"" + id + "\"}", &raw);
        std::cout << raw << "\n";
        return kExitOk;
    }

    if (cmd != "submit") {
        std::cerr << "dscoh_client: unknown command '" << cmd << "'\n";
        return kExitUsage;
    }

    std::string requestJson;
    std::string error;
    if (!requestFile.empty()) {
        if (!readFile(requestFile, &requestJson, &error)) {
            std::cerr << "dscoh_client: " << error << "\n";
            return kExitUsage;
        }
        // Validate locally so mistakes fail with a line-precise message
        // before touching the daemon.
        svc::SweepRequest check;
        if (!svc::parseRequestJson(requestJson, &check, &error)) {
            std::cerr << "dscoh_client: " << requestFile << ": " << error
                      << "\n";
            return kExitUsage;
        }
        requestJson = svc::renderRequestJson(check);
    } else {
        svc::SweepRequest r;
        r.tenant = tenant;
        r.priority = static_cast<int>(std::strtol(priorityText.c_str(),
                                                  nullptr, 10));
        r.weight = static_cast<unsigned>(weight);
        if (sizeText != "small" && sizeText != "big") {
            std::cerr << "dscoh_client: --size must be small or big\n";
            return kExitUsage;
        }
        r.size = sizeText == "big" ? InputSize::kBig : InputSize::kSmall;
        r.codes = splitCommas(only);
        for (const std::string& m : splitCommas(modesText)) {
            if (m == "ccsm")
                r.modes.push_back(CoherenceMode::kCcsm);
            else if (m == "ds")
                r.modes.push_back(CoherenceMode::kDirectStore);
            else if (m == "dsonly")
                r.modes.push_back(CoherenceMode::kDirectStoreOnly);
            else {
                std::cerr << "dscoh_client: unknown mode '" << m
                          << "' (ccsm|ds|dsonly)\n";
                return kExitUsage;
            }
        }
        if (!configFile.empty() &&
            !readFile(configFile, &r.configText, &error)) {
            std::cerr << "dscoh_client: " << error << "\n";
            return kExitUsage;
        }
        r.deadlineMs = deadlineMs;
        requestJson = svc::renderRequestJson(r);
    }

    const jsonlite::ValuePtr v =
        call(client,
             "{\"op\": \"submit\", \"request\": \"" +
                 svc::jsonEscape(requestJson) + "\"}",
             &raw);
    const jsonlite::Value* id = v->get("id");
    const jsonlite::Value* dir = v->get("dir");
    std::cout << (id != nullptr ? id->string : "?") << " "
              << (dir != nullptr ? dir->string : "?") << "\n";
    if (watchFlag && id != nullptr)
        return watch(client, id->string);
    return kExitOk;
}
