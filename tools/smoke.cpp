// smoke — quick one-benchmark CCSM-vs-DS comparison for development.
//   dscoh_smoke <CODE> [small|big]
#include <cstdio>
#include <chrono>
#include "workloads/runner.h"
int main(int argc, char** argv) {
    using namespace dscoh;
    const std::string code = argc > 1 ? argv[1] : "VA";
    const InputSize size = (argc > 2 && std::string(argv[2]) == "big") ? InputSize::kBig : InputSize::kSmall;
    const auto& w = WorkloadRegistry::instance().get(code);
    auto t0 = std::chrono::steady_clock::now();
    const auto cmp = compareModes(w, size);
    auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    std::printf("%s %s: ccsm=%llu ds=%llu speedup=%.3f  missrate ccsm=%.4f ds=%.4f  comp ccsm=%llu ds=%llu  wall=%.2fs\n",
                code.c_str(), size == InputSize::kSmall ? "small" : "big",
                static_cast<unsigned long long>(cmp.ccsm.metrics.ticks),
                static_cast<unsigned long long>(cmp.directStore.metrics.ticks),
                cmp.speedup(),
                cmp.ccsm.metrics.gpuL2MissRate, cmp.directStore.metrics.gpuL2MissRate,
                static_cast<unsigned long long>(cmp.ccsm.metrics.gpuL2Compulsory),
                static_cast<unsigned long long>(cmp.directStore.metrics.gpuL2Compulsory),
                wall);
    return 0;
}
