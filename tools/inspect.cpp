// inspect — run one benchmark in one mode, print the produce/kernel phase
// breakdown, and dump the full stats registry to /tmp/stats_<code>_<mode>.txt.
//   dscoh_inspect <CODE> [small|big] [ccsm|ds]
// Or dump a snapshot file's header and section table (CRC-validated):
//   dscoh_inspect --snapshot file.snap     (also: a positional *.snap path)
#include <cstdio>
#include <cstring>
#include <fstream>
#include "snap/serializer.h"
#include "workloads/runner.h"
using namespace dscoh;

// Prints a snapshot's header: format version, tick, config hash, and the
// per-component section table. The CRC and structure are fully validated by
// readSnapshotHeader, so "inspect succeeded" doubles as an integrity check.
static int inspectSnapshot(const char* path) {
    try {
        const snap::SnapshotHeader h = snap::readSnapshotHeader(path);
        std::printf("%s: dscoh snapshot v%u (%llu bytes, CRC ok)\n", path,
                    h.formatVersion,
                    static_cast<unsigned long long>(h.fileBytes));
        std::printf("  tick        %llu\n",
                    static_cast<unsigned long long>(h.tick));
        std::printf("  config hash 0x%016llx\n",
                    static_cast<unsigned long long>(h.configHash));
        std::printf("  sections    %zu\n", h.sections.size());
        for (const snap::SectionInfo& s : h.sections)
            std::printf("    %-16s %10llu bytes\n", s.name.c_str(),
                        static_cast<unsigned long long>(s.bytes));
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "dscoh_inspect: %s\n", e.what());
        return 1;
    }
}

// Runs one workload in one mode and dumps all stats to a file.
int main(int argc, char** argv) {
    if (argc > 2 && std::strcmp(argv[1], "--snapshot") == 0)
        return inspectSnapshot(argv[2]);
    if (argc > 1) {
        const std::size_t len = std::strlen(argv[1]);
        if (len > 5 && std::strcmp(argv[1] + len - 5, ".snap") == 0)
            return inspectSnapshot(argv[1]);
    }
    const std::string code = argc > 1 ? argv[1] : "SR";
    const InputSize size = (argc > 2 && std::string(argv[2]) == "big") ? InputSize::kBig : InputSize::kSmall;
    const bool ds = argc > 3 && std::string(argv[3]) == "ds";
    SystemConfig cfg;
    cfg.mode = ds ? CoherenceMode::kDirectStore : CoherenceMode::kCcsm;
    System sys(cfg);
    const Workload& w = WorkloadRegistry::instance().get(code);
    Workload::ArrayMap mem;
    for (const auto& a : w.arrays(size)) mem[a.name] = sys.allocateArray(a.bytes, a.gpuShared);
    const CpuProgram produce = w.cpuProduce(size, mem);
    const auto kernels = w.kernels(size, mem);
    Tick produceDone = 0;
    std::vector<Tick> kdone;
    std::size_t next = 0;
    std::function<void()> launchNext = [&]() {
        if (next >= kernels.size()) return;
        sys.launchKernel(kernels[next++], [&]{
            kdone.push_back(sys.queue().curTick());
            std::uint64_t miss = 0, acc = 0;
            for (std::size_t sl = 0; sl < sys.sliceCount(); ++sl) {
                miss += sys.slice(sl).demandMisses();
                acc += sys.slice(sl).demandAccesses();
            }
            std::printf("  [kernel %zu done: cumMiss=%llu cumAcc=%llu]\n", next,
                        static_cast<unsigned long long>(miss), static_cast<unsigned long long>(acc));
            launchNext();
        });
    };
    sys.runCpuProgram(produce, [&]{ produceDone = sys.queue().curTick(); launchNext(); });
    sys.simulate();
    std::printf("%s %s %s: produce=%llu", code.c_str(), size==InputSize::kSmall?"small":"big", ds?"DS":"CCSM",
                static_cast<unsigned long long>(produceDone));
    Tick prev = produceDone;
    for (auto t : kdone) { std::printf(" k+%llu", static_cast<unsigned long long>(t - prev)); prev = t; }
    std::printf(" total=%llu\n", static_cast<unsigned long long>(sys.queue().curTick()));
    std::ofstream f(std::string("/tmp/stats_") + code + (ds ? "_ds" : "_ccsm") + ".txt");
    sys.stats().dump(f);
    return 0;
}
