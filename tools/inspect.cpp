// inspect — run one benchmark in one mode, print the produce/kernel phase
// breakdown, and dump the full stats registry to /tmp/stats_<code>_<mode>.txt.
//   dscoh_inspect <CODE> [small|big] [ccsm|ds]
#include <cstdio>
#include <fstream>
#include "workloads/runner.h"
using namespace dscoh;
// Runs one workload in one mode and dumps all stats to a file.
int main(int argc, char** argv) {
    const std::string code = argc > 1 ? argv[1] : "SR";
    const InputSize size = (argc > 2 && std::string(argv[2]) == "big") ? InputSize::kBig : InputSize::kSmall;
    const bool ds = argc > 3 && std::string(argv[3]) == "ds";
    SystemConfig cfg;
    cfg.mode = ds ? CoherenceMode::kDirectStore : CoherenceMode::kCcsm;
    System sys(cfg);
    const Workload& w = WorkloadRegistry::instance().get(code);
    Workload::ArrayMap mem;
    for (const auto& a : w.arrays(size)) mem[a.name] = sys.allocateArray(a.bytes, a.gpuShared);
    const CpuProgram produce = w.cpuProduce(size, mem);
    const auto kernels = w.kernels(size, mem);
    Tick produceDone = 0;
    std::vector<Tick> kdone;
    std::size_t next = 0;
    std::function<void()> launchNext = [&]() {
        if (next >= kernels.size()) return;
        sys.launchKernel(kernels[next++], [&]{
            kdone.push_back(sys.queue().curTick());
            std::uint64_t miss = 0, acc = 0;
            for (std::size_t sl = 0; sl < sys.sliceCount(); ++sl) {
                miss += sys.slice(sl).demandMisses();
                acc += sys.slice(sl).demandAccesses();
            }
            std::printf("  [kernel %zu done: cumMiss=%llu cumAcc=%llu]\n", next,
                        static_cast<unsigned long long>(miss), static_cast<unsigned long long>(acc));
            launchNext();
        });
    };
    sys.runCpuProgram(produce, [&]{ produceDone = sys.queue().curTick(); launchNext(); });
    sys.simulate();
    std::printf("%s %s %s: produce=%llu", code.c_str(), size==InputSize::kSmall?"small":"big", ds?"DS":"CCSM",
                static_cast<unsigned long long>(produceDone));
    Tick prev = produceDone;
    for (auto t : kdone) { std::printf(" k+%llu", static_cast<unsigned long long>(t - prev)); prev = t; }
    std::printf(" total=%llu\n", static_cast<unsigned long long>(sys.queue().curTick()));
    std::ofstream f(std::string("/tmp/stats_") + code + (ds ? "_ds" : "_ccsm") + ".txt");
    sys.stats().dump(f);
    return 0;
}
