// dscoh_run — the command-line front door to the simulator.
//
//   dscoh_run --workload VA --size small --mode both
//   dscoh_run --trace examples/traces/vector_add.trace --mode ds --stats s.txt
//   dscoh_run --workload MM --mode both --csv        # one CSV row
//   dscoh_run --workload NN --mode ccsm --prefetch 4 --ds-hop 80
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "cli/options.h"
#include "core/config_io.h"
#include "fault/io_fault.h"
#include "obs/epoch_sampler.h"
#include "obs/trace_session.h"
#include "sim/errors.h"
#include "snap/serializer.h"
#include "trace/trace_format.h"
#include "workloads/runner.h"

using namespace dscoh;

namespace {

void printRun(const char* label, const WorkloadRunResult& r)
{
    std::printf("%-12s ticks=%llu l2acc=%llu l2miss=%llu missrate=%.2f%% "
                "compulsory=%llu dsFills=%llu cohMsgs=%llu\n",
                label, static_cast<unsigned long long>(r.metrics.ticks),
                static_cast<unsigned long long>(r.metrics.gpuL2Accesses),
                static_cast<unsigned long long>(r.metrics.gpuL2Misses),
                r.metrics.gpuL2MissRate * 100,
                static_cast<unsigned long long>(r.metrics.gpuL2Compulsory),
                static_cast<unsigned long long>(r.metrics.dsFills),
                static_cast<unsigned long long>(r.metrics.coherenceMessages));
}

/// Observability outputs requested on the command line. Paths are empty
/// when the corresponding output is off.
struct ObsOptions {
    std::string statsPath;    ///< text stats dump (--stats)
    std::string statsJson;    ///< JSON stats dump (--stats-json)
    std::string traceOut;     ///< Chrome trace-event file (--trace-out)
    std::string txnProfile;   ///< dscoh-txnprof-v1 JSON file (--txn-profile)
    std::uint32_t traceMask = kAllTraceCats; ///< --trace-filter
    Tick epochTicks = 0;      ///< --epoch-ticks (0 = no sampling)
    bool queueStats = false;  ///< --queue-stats

    bool any() const
    {
        return !statsPath.empty() || !statsJson.empty() ||
               !traceOut.empty() || !txnProfile.empty() || epochTicks != 0 ||
               queueStats;
    }

    /// "s.json" -> "s.json.ccsm" for --mode both, matching the historical
    /// --stats behavior.
    ObsOptions withSuffix(const std::string& suffix) const
    {
        ObsOptions o = *this;
        if (!o.statsPath.empty())
            o.statsPath += suffix;
        if (!o.statsJson.empty())
            o.statsJson += suffix;
        if (!o.traceOut.empty())
            o.traceOut += suffix;
        if (!o.txnProfile.empty())
            o.txnProfile += suffix;
        return o;
    }
};

/// Runs one workload through WorkloadRun (checkpoint/restore/watchdog
/// aware) and writes whatever observability outputs were requested. Stats
/// dumps are published atomically (temp + rename), so a killed process
/// never leaves a torn stats file next to a valid snapshot.
WorkloadRunResult runOnce(const Workload& w, InputSize size, CoherenceMode mode,
                          const SystemConfig& cfg, const ObsOptions& obs,
                          WorkloadRunOptions runOpts)
{
    WorkloadRun run(w, size, mode, cfg, std::move(runOpts));
    System& sys = run.system();

    if (!obs.traceOut.empty())
        sys.enableTracing(obs.traceMask);
    if (obs.queueStats)
        sys.enableQueueStats();
    if (!obs.txnProfile.empty())
        sys.enableTxnProfiler();
    if (obs.epochTicks != 0) {
        EpochSampler::Params epochParams;
        epochParams.epochTicks = obs.epochTicks;
        sys.enableEpochSampler(std::move(epochParams));
        // start() schedules the first sampling event; that must happen
        // after a restore (which requires an empty queue, and freezes a
        // restored sampler), so defer it to the first phase boundary.
        run.options().beforeFirstPhase = [](System& s) {
            s.epochSampler()->start();
        };
    }

    const WorkloadRunResult r = run.run();

    if (!obs.statsPath.empty()) {
        std::ostringstream out;
        sys.stats().dump(out);
        snap::atomicWriteFile(obs.statsPath, out.str());
    }
    if (!obs.statsJson.empty()) {
        std::ostringstream out;
        std::string extra;
        if (sys.epochSampler() != nullptr) {
            std::ostringstream epochs;
            sys.epochSampler()->writeJson(epochs);
            extra = "\"epochs\": " + epochs.str();
        }
        sys.stats().dumpJson(out, extra);
        snap::atomicWriteFile(obs.statsJson, out.str());
    }
    if (!obs.traceOut.empty()) {
        std::ostringstream out;
        sys.trace()->writeJson(out);
        snap::atomicWriteFile(obs.traceOut, out.str());
    }
    if (!obs.txnProfile.empty()) {
        std::ostringstream out;
        sys.txnProfiler()->writeJson(out);
        snap::atomicWriteFile(obs.txnProfile, out.str());
    }
    return r;
}

/// "--checkpoint-at" syntax: a bare tick number, "phase:produce-done", or
/// "phase:kernel<N>-done" (N is 1-based). Fills the matching trigger.
bool parseCheckpointAt(const std::string& text, WorkloadRunOptions* opts,
                       std::string* error)
{
    if (text.rfind("phase:", 0) == 0) {
        const std::string phase = text.substr(6);
        if (phase == "produce-done") {
            opts->checkpointAtPhase = 0;
            return true;
        }
        if (phase.rfind("kernel", 0) == 0 && phase.size() > 11 &&
            phase.substr(phase.size() - 5) == "-done") {
            const std::string num = phase.substr(6, phase.size() - 11);
            try {
                const int n = std::stoi(num);
                if (n >= 1) {
                    opts->checkpointAtPhase = n; // kernel N completes phase N
                    return true;
                }
            } catch (const std::exception&) {
            }
        }
        *error = "bad --checkpoint-at phase '" + phase +
                 "' (produce-done or kernel<N>-done, N >= 1)";
        return false;
    }
    try {
        opts->checkpointAtTick = std::stoull(text);
    } catch (const std::exception&) {
        *error = "bad --checkpoint-at '" + text +
                 "' (tick number or phase:...)";
        return false;
    }
    if (opts->checkpointAtTick == 0) {
        *error = "--checkpoint-at tick must be > 0";
        return false;
    }
    return true;
}

} // namespace

int main(int argc, char** argv)
{
    std::string workload;
    std::string tracePath;
    std::string sizeName = "small";
    std::string modeName = "both";
    std::string statsPath;
    std::string statsJsonPath;
    std::string traceOutPath;
    std::string txnProfilePath;
    std::string traceFilter;
    std::string logLevelText;
    std::string configPath;
    bool csv = false;
    bool dumpCfg = false;
    std::uint64_t dsHop = 0;
    std::uint64_t prefetch = 0;
    std::uint64_t dsMinBytes = 0;
    std::uint64_t seed = 0;
    std::uint64_t epochTicks = 0;
    std::uint64_t gpus = 0;
    std::uint64_t cpuCores = 0;
    std::uint64_t tsLeaseTicks = 0;
    std::string shardPolicy;
    std::string dsTopology;
    std::string checkpointAt;
    std::string checkpointOut;
    std::string restorePath;
    std::uint64_t maxIdleTicks = 0;

    cli::OptionParser parser("dscoh_run",
                             "simulate a workload under the paper's schemes");
    parser.addString("workload", "Table II code (BP..CH)", &workload);
    parser.addString("trace", "run a .trace file instead", &tracePath);
    parser.addString("size", "small|big", &sizeName);
    parser.addString("mode", "ccsm|ds|dsonly|both", &modeName);
    parser.addString("stats", "dump the full stats registry to this file",
                     &statsPath);
    parser.addString("stats-json", "dump the stats registry as JSON to this "
                     "file", &statsJsonPath);
    parser.addString("trace-out", "write a Chrome trace-event JSON file "
                     "(open in Perfetto)", &traceOutPath);
    parser.addString("trace-filter", "comma-separated trace categories "
                     "(coherence,net,dram,mshr,kernel,txn)", &traceFilter);
    parser.addString("txn-profile", "write per-transaction latency "
                     "attribution (dscoh-txnprof-v1 JSON; feed to "
                     "txn_report)", &txnProfilePath);
    parser.addUint("epoch-ticks", "sample counters every N ticks into the "
                   "stats JSON", &epochTicks);
    bool queueStats = false;
    parser.addFlag("queue-stats", "add the event engine's own counters "
                   "(queue.*) to the stat registry; use consistently across "
                   "a checkpoint/restore pair", &queueStats);
    parser.addString("log-level", "error|warn|info|debug (default: "
                     "$DSCOH_LOG_LEVEL or info)", &logLevelText);
    parser.addString("config", "key=value config file (see --dump-config)",
                     &configPath);
    parser.addFlag("dump-config", "print the default configuration and exit",
                   &dumpCfg);
    parser.addFlag("csv", "print one machine-readable CSV row", &csv);
    bool check = false;
    parser.addFlag("check", "attach the live CoherenceChecker oracle; any "
                   "violation fails the run (exit 5)", &check);
    parser.addUint("ds-hop", "dedicated-network hop latency override", &dsHop);
    parser.addUint("prefetch", "GPU L2 next-line prefetch depth", &prefetch);
    parser.addUint("ds-min-bytes", "hybrid policy: push only arrays >= this",
                   &dsMinBytes);
    parser.addUint("seed", "replacement-policy seed", &seed);
    parser.addUint("gpus", "GPUs sharing the DS region (multi-GPU "
                   "scale-out; 0 = keep config default)", &gpus);
    parser.addUint("cpu-cores", "CPU cores (0 = keep config default)",
                   &cpuCores);
    parser.addString("shard-policy", "page|line|range — which GPU homes a "
                     "DS line (multi-GPU)", &shardPolicy);
    parser.addString("ds-topology", "crossbar|ring — DS network shape",
                     &dsTopology);
    parser.addUint("ts-lease-ticks", "timestamp fast-path lease length for "
                   "remotely-homed reads (0 = off)", &tsLeaseTicks);
    parser.addString("checkpoint-at", "safe point to checkpoint at: a tick "
                     "(first phase boundary at/after it), phase:produce-done "
                     "or phase:kernel<N>-done", &checkpointAt);
    parser.addString("checkpoint-out", "snapshot file written at the "
                     "--checkpoint-at safe point", &checkpointOut);
    parser.addString("restore", "resume from a snapshot written by "
                     "--checkpoint-out (same workload/size/mode/config)",
                     &restorePath);
    parser.addUint("max-idle-ticks", "abort when this many ticks pass with "
                   "no event executing (deadlock watchdog, 0 = off)",
                   &maxIdleTicks);
    std::string ioFaultSpec;
    parser.addString("iofault",
                     "storage-fault injection spec for this process's "
                     "snapshot/journal writes (key=value[,...]; see "
                     "src/fault/io_fault.h) — testing only",
                     &ioFaultSpec);
    if (!parser.parse(argc, argv, std::cerr))
        return kExitUsage;
    if (dumpCfg) {
        std::printf("%s", dumpConfig(SystemConfig{}).c_str());
        return kExitOk;
    }

    try {
        std::unique_ptr<Workload> traced;
        const Workload* w = nullptr;
        if (!tracePath.empty()) {
            traced = trace::loadTraceFile(tracePath);
            w = traced.get();
        } else if (!workload.empty()) {
            if (!WorkloadRegistry::instance().has(workload)) {
                std::cerr << "unknown workload '" << workload << "'\n";
                return kExitUsage;
            }
            w = &WorkloadRegistry::instance().get(workload);
        } else {
            std::cerr << "need --workload <code> or --trace <file> "
                         "(--help for usage)\n";
            return kExitUsage;
        }

        if (sizeName != "small" && sizeName != "big") {
            std::cerr << "--size must be small or big\n";
            return kExitUsage;
        }
        if (modeName != "ccsm" && modeName != "ds" && modeName != "dsonly" &&
            modeName != "both") {
            std::cerr << "bad --mode (ccsm|ds|dsonly|both)\n";
            return kExitUsage;
        }
        const InputSize size =
            sizeName == "big" ? InputSize::kBig : InputSize::kSmall;

        SystemConfig cfg;
        if (!configPath.empty()) {
            std::string error;
            if (!loadConfigFile(configPath, &cfg, &error)) {
                std::cerr << "dscoh_run: " << error << "\n";
                return kExitUsage;
            }
        }
        // Arm storage-fault injection from the flag or from iofault-* keys
        // in the config file (flag wins). Injection applies to this
        // process's own durable writes — checkpoints, journals.
        if (!ioFaultSpec.empty()) {
            std::string error;
            if (!fault::parseIoFaultSpec(ioFaultSpec, &cfg.ioFaults,
                                         &error)) {
                std::cerr << "dscoh_run: " << error << "\n";
                return kExitUsage;
            }
        }
        if (cfg.ioFaults.enabled())
            fault::installIoFaults(cfg.ioFaults);
        {
            std::string error;
            if (!cli::resolveLogLevel(logLevelText, cfg.logLevel, error)) {
                std::cerr << "dscoh_run: " << error << "\n";
                return kExitUsage;
            }
        }
        ObsOptions obs;
        obs.statsPath = statsPath;
        obs.statsJson = statsJsonPath;
        obs.traceOut = traceOutPath;
        obs.txnProfile = txnProfilePath;
        obs.epochTicks = epochTicks;
        obs.queueStats = queueStats;
        if (!traceFilter.empty()) {
            std::string error;
            if (!parseTraceFilter(traceFilter, obs.traceMask, error)) {
                std::cerr << "dscoh_run: --trace-filter: " << error << "\n";
                return kExitUsage;
            }
        }
        if (dsHop != 0)
            cfg.dsNet.hopLatency = dsHop;
        cfg.gpuL2PrefetchDepth = static_cast<std::uint32_t>(prefetch);
        cfg.dsMinBytes = dsMinBytes;
        if (seed != 0)
            cfg.seed = seed;
        if (gpus != 0)
            cfg.numGpus = static_cast<std::uint32_t>(gpus);
        if (cpuCores != 0)
            cfg.cpuCores = static_cast<std::uint32_t>(cpuCores);
        if (tsLeaseTicks != 0)
            cfg.tsLeaseTicks = tsLeaseTicks;
        if (!shardPolicy.empty() &&
            !parseShardPolicy(shardPolicy, cfg.shardPolicy)) {
            std::cerr << "dscoh_run: bad --shard-policy '" << shardPolicy
                      << "' (page|line|range)\n";
            return kExitUsage;
        }
        if (!dsTopology.empty() &&
            !parseDsTopology(dsTopology, cfg.dsTopology)) {
            std::cerr << "dscoh_run: bad --ds-topology '" << dsTopology
                      << "' (crossbar|ring)\n";
            return kExitUsage;
        }

        WorkloadRunOptions runOpts;
        runOpts.restoreFrom = restorePath;
        runOpts.checkpointOut = checkpointOut;
        runOpts.maxIdleTicks = maxIdleTicks;
        runOpts.oracle = check;
        if (!checkpointAt.empty()) {
            if (checkpointOut.empty()) {
                std::cerr << "dscoh_run: --checkpoint-at needs "
                             "--checkpoint-out <file>\n";
                return kExitUsage;
            }
            std::string error;
            if (!parseCheckpointAt(checkpointAt, &runOpts, &error)) {
                std::cerr << "dscoh_run: " << error << "\n";
                return kExitUsage;
            }
        } else if (!checkpointOut.empty()) {
            std::cerr << "dscoh_run: --checkpoint-out needs "
                         "--checkpoint-at <trigger>\n";
            return kExitUsage;
        }
        if (modeName == "both" &&
            (!restorePath.empty() || !checkpointOut.empty())) {
            std::cerr << "dscoh_run: checkpoint/restore needs a single "
                         "--mode (a snapshot belongs to one mode)\n";
            return kExitUsage;
        }

        const auto modeOf = [](const std::string& m) {
            return m == "ccsm" ? CoherenceMode::kCcsm
                 : m == "ds"   ? CoherenceMode::kDirectStore
                               : CoherenceMode::kDirectStoreOnly;
        };

        if (modeName == "both") {
            const auto ccsm = runOnce(*w, size, CoherenceMode::kCcsm, cfg,
                                      obs.withSuffix(".ccsm"), runOpts);
            const auto ds = runOnce(*w, size, CoherenceMode::kDirectStore, cfg,
                                    obs.withSuffix(".ds"), runOpts);
            const double speedup =
                (static_cast<double>(ccsm.metrics.ticks) /
                     static_cast<double>(ds.metrics.ticks) -
                 1.0) *
                100.0;
            if (csv) {
                std::printf("%s,%s,%llu,%llu,%.4f,%.4f,%.4f\n",
                            w->info().code.c_str(), sizeName.c_str(),
                            static_cast<unsigned long long>(ccsm.metrics.ticks),
                            static_cast<unsigned long long>(ds.metrics.ticks),
                            speedup, ccsm.metrics.gpuL2MissRate,
                            ds.metrics.gpuL2MissRate);
            } else {
                std::printf("%s (%s)\n", w->info().code.c_str(),
                            sizeName.c_str());
                printRun("ccsm", ccsm);
                printRun("directstore", ds);
                std::printf("speedup: %.1f%%\n", speedup);
            }
        } else {
            const auto r = runOnce(*w, size, modeOf(modeName), cfg, obs,
                                   runOpts);
            if (csv) {
                std::printf("%s,%s,%s,%llu,%.4f\n", w->info().code.c_str(),
                            sizeName.c_str(), modeName.c_str(),
                            static_cast<unsigned long long>(r.metrics.ticks),
                            r.metrics.gpuL2MissRate);
            } else {
                printRun(modeName.c_str(), r);
            }
        }
        return kExitOk;
    } catch (const DeadlockError& e) {
        std::cerr << "deadlock: " << e.what() << "\n";
        return kExitDeadlock;
    } catch (const OracleError& e) {
        std::cerr << "oracle: " << e.what() << "\n";
        return kExitOracle;
    } catch (const snap::SnapError& e) {
        std::cerr << "io: " << e.what() << "\n";
        return kExitIo;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitFailure;
    }
}
