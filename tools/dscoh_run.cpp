// dscoh_run — the command-line front door to the simulator.
//
//   dscoh_run --workload VA --size small --mode both
//   dscoh_run --trace examples/traces/vector_add.trace --mode ds --stats s.txt
//   dscoh_run --workload MM --mode both --csv        # one CSV row
//   dscoh_run --workload NN --mode ccsm --prefetch 4 --ds-hop 80
#include <fstream>
#include <iostream>
#include <sstream>

#include "cli/options.h"
#include "core/config_io.h"
#include "obs/epoch_sampler.h"
#include "obs/trace_session.h"
#include "trace/trace_format.h"
#include "workloads/runner.h"

using namespace dscoh;

namespace {

void printRun(const char* label, const WorkloadRunResult& r)
{
    std::printf("%-12s ticks=%llu l2acc=%llu l2miss=%llu missrate=%.2f%% "
                "compulsory=%llu dsFills=%llu cohMsgs=%llu\n",
                label, static_cast<unsigned long long>(r.metrics.ticks),
                static_cast<unsigned long long>(r.metrics.gpuL2Accesses),
                static_cast<unsigned long long>(r.metrics.gpuL2Misses),
                r.metrics.gpuL2MissRate * 100,
                static_cast<unsigned long long>(r.metrics.gpuL2Compulsory),
                static_cast<unsigned long long>(r.metrics.dsFills),
                static_cast<unsigned long long>(r.metrics.coherenceMessages));
}

/// Observability outputs requested on the command line. Paths are empty
/// when the corresponding output is off.
struct ObsOptions {
    std::string statsPath;    ///< text stats dump (--stats)
    std::string statsJson;    ///< JSON stats dump (--stats-json)
    std::string traceOut;     ///< Chrome trace-event file (--trace-out)
    std::uint32_t traceMask = kAllTraceCats; ///< --trace-filter
    Tick epochTicks = 0;      ///< --epoch-ticks (0 = no sampling)

    bool any() const
    {
        return !statsPath.empty() || !statsJson.empty() ||
               !traceOut.empty() || epochTicks != 0;
    }

    /// "s.json" -> "s.json.ccsm" for --mode both, matching the historical
    /// --stats behavior.
    ObsOptions withSuffix(const std::string& suffix) const
    {
        ObsOptions o = *this;
        if (!o.statsPath.empty())
            o.statsPath += suffix;
        if (!o.statsJson.empty())
            o.statsJson += suffix;
        if (!o.traceOut.empty())
            o.traceOut += suffix;
        return o;
    }
};

std::ofstream openOut(const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write file: " + path);
    return out;
}

/// Runs and writes whatever observability outputs were requested.
WorkloadRunResult runOnce(const Workload& w, InputSize size, CoherenceMode mode,
                          const SystemConfig& cfg, const ObsOptions& obs)
{
    if (!obs.any())
        return runWorkload(w, size, mode, cfg);

    // Re-run through a System we keep, so the registry/trace can be dumped.
    SystemConfig c = cfg;
    c.mode = mode;
    System sys(c);
    if (!obs.traceOut.empty())
        sys.enableTracing(obs.traceMask);
    EpochSampler::Params epochParams;
    epochParams.epochTicks = obs.epochTicks;
    EpochSampler sampler(sys.queue(), sys.stats(), epochParams);

    Workload::ArrayMap mem;
    for (const auto& spec : w.arrays(size))
        mem[spec.name] = sys.allocateArray(spec.bytes, spec.gpuShared);
    const CpuProgram produce = w.cpuProduce(size, mem);
    const auto kernels = w.kernels(size, mem);
    std::size_t next = 0;
    std::function<void()> launchNext = [&] {
        if (next < kernels.size())
            sys.launchKernel(kernels[next++], [&] { launchNext(); });
    };
    sys.runCpuProgram(produce, [&] { launchNext(); });
    sampler.start();
    sys.simulate();

    if (!obs.statsPath.empty()) {
        std::ofstream out = openOut(obs.statsPath);
        sys.stats().dump(out);
    }
    if (!obs.statsJson.empty()) {
        std::ofstream out = openOut(obs.statsJson);
        std::string extra;
        if (obs.epochTicks != 0) {
            std::ostringstream epochs;
            sampler.writeJson(epochs);
            extra = "\"epochs\": " + epochs.str();
        }
        sys.stats().dumpJson(out, extra);
    }
    if (!obs.traceOut.empty()) {
        std::ofstream out = openOut(obs.traceOut);
        sys.trace()->writeJson(out);
    }

    WorkloadRunResult r;
    r.code = w.info().code;
    r.size = size;
    r.mode = mode;
    r.metrics = sys.metrics();
    r.violations = sys.checkCoherenceInvariants();
    return r;
}

} // namespace

int main(int argc, char** argv)
{
    std::string workload;
    std::string tracePath;
    std::string sizeName = "small";
    std::string modeName = "both";
    std::string statsPath;
    std::string statsJsonPath;
    std::string traceOutPath;
    std::string traceFilter;
    std::string logLevelText;
    std::string configPath;
    bool csv = false;
    bool dumpCfg = false;
    std::uint64_t dsHop = 0;
    std::uint64_t prefetch = 0;
    std::uint64_t dsMinBytes = 0;
    std::uint64_t seed = 0;
    std::uint64_t epochTicks = 0;

    cli::OptionParser parser("dscoh_run",
                             "simulate a workload under the paper's schemes");
    parser.addString("workload", "Table II code (BP..CH)", &workload);
    parser.addString("trace", "run a .trace file instead", &tracePath);
    parser.addString("size", "small|big", &sizeName);
    parser.addString("mode", "ccsm|ds|dsonly|both", &modeName);
    parser.addString("stats", "dump the full stats registry to this file",
                     &statsPath);
    parser.addString("stats-json", "dump the stats registry as JSON to this "
                     "file", &statsJsonPath);
    parser.addString("trace-out", "write a Chrome trace-event JSON file "
                     "(open in Perfetto)", &traceOutPath);
    parser.addString("trace-filter", "comma-separated trace categories "
                     "(coherence,net,dram,mshr,kernel)", &traceFilter);
    parser.addUint("epoch-ticks", "sample counters every N ticks into the "
                   "stats JSON", &epochTicks);
    parser.addString("log-level", "error|warn|info|debug (default: "
                     "$DSCOH_LOG_LEVEL or info)", &logLevelText);
    parser.addString("config", "key=value config file (see --dump-config)",
                     &configPath);
    parser.addFlag("dump-config", "print the default configuration and exit",
                   &dumpCfg);
    parser.addFlag("csv", "print one machine-readable CSV row", &csv);
    parser.addUint("ds-hop", "dedicated-network hop latency override", &dsHop);
    parser.addUint("prefetch", "GPU L2 next-line prefetch depth", &prefetch);
    parser.addUint("ds-min-bytes", "hybrid policy: push only arrays >= this",
                   &dsMinBytes);
    parser.addUint("seed", "replacement-policy seed", &seed);
    if (!parser.parse(argc, argv, std::cerr))
        return 2;
    if (dumpCfg) {
        std::printf("%s", dumpConfig(SystemConfig{}).c_str());
        return 0;
    }

    try {
        std::unique_ptr<Workload> traced;
        const Workload* w = nullptr;
        if (!tracePath.empty()) {
            traced = trace::loadTraceFile(tracePath);
            w = traced.get();
        } else if (!workload.empty()) {
            if (!WorkloadRegistry::instance().has(workload)) {
                std::cerr << "unknown workload '" << workload << "'\n";
                return 2;
            }
            w = &WorkloadRegistry::instance().get(workload);
        } else {
            std::cerr << "need --workload <code> or --trace <file> "
                         "(--help for usage)\n";
            return 2;
        }

        if (sizeName != "small" && sizeName != "big") {
            std::cerr << "--size must be small or big\n";
            return 2;
        }
        const InputSize size =
            sizeName == "big" ? InputSize::kBig : InputSize::kSmall;

        SystemConfig cfg;
        if (!configPath.empty()) {
            std::string error;
            if (!loadConfigFile(configPath, &cfg, &error))
                throw std::runtime_error(error);
        }
        {
            std::string error;
            if (!cli::resolveLogLevel(logLevelText, cfg.logLevel, error)) {
                std::cerr << "dscoh_run: " << error << "\n";
                return 2;
            }
        }
        ObsOptions obs;
        obs.statsPath = statsPath;
        obs.statsJson = statsJsonPath;
        obs.traceOut = traceOutPath;
        obs.epochTicks = epochTicks;
        if (!traceFilter.empty()) {
            std::string error;
            if (!parseTraceFilter(traceFilter, obs.traceMask, error)) {
                std::cerr << "dscoh_run: --trace-filter: " << error << "\n";
                return 2;
            }
        }
        if (dsHop != 0)
            cfg.dsNet.hopLatency = dsHop;
        cfg.gpuL2PrefetchDepth = static_cast<std::uint32_t>(prefetch);
        cfg.dsMinBytes = dsMinBytes;
        if (seed != 0)
            cfg.seed = seed;

        const auto modeOf = [](const std::string& m) {
            if (m == "ccsm")
                return CoherenceMode::kCcsm;
            if (m == "ds")
                return CoherenceMode::kDirectStore;
            if (m == "dsonly")
                return CoherenceMode::kDirectStoreOnly;
            throw std::runtime_error("bad --mode (ccsm|ds|dsonly|both)");
        };

        if (modeName == "both") {
            const auto ccsm = runOnce(*w, size, CoherenceMode::kCcsm, cfg,
                                      obs.withSuffix(".ccsm"));
            const auto ds = runOnce(*w, size, CoherenceMode::kDirectStore, cfg,
                                    obs.withSuffix(".ds"));
            const double speedup =
                (static_cast<double>(ccsm.metrics.ticks) /
                     static_cast<double>(ds.metrics.ticks) -
                 1.0) *
                100.0;
            if (csv) {
                std::printf("%s,%s,%llu,%llu,%.4f,%.4f,%.4f\n",
                            w->info().code.c_str(), sizeName.c_str(),
                            static_cast<unsigned long long>(ccsm.metrics.ticks),
                            static_cast<unsigned long long>(ds.metrics.ticks),
                            speedup, ccsm.metrics.gpuL2MissRate,
                            ds.metrics.gpuL2MissRate);
            } else {
                std::printf("%s (%s)\n", w->info().code.c_str(),
                            sizeName.c_str());
                printRun("ccsm", ccsm);
                printRun("directstore", ds);
                std::printf("speedup: %.1f%%\n", speedup);
            }
        } else {
            const auto r = runOnce(*w, size, modeOf(modeName), cfg, obs);
            if (csv) {
                std::printf("%s,%s,%s,%llu,%.4f\n", w->info().code.c_str(),
                            sizeName.c_str(), modeName.c_str(),
                            static_cast<unsigned long long>(r.metrics.ticks),
                            r.metrics.gpuL2MissRate);
            } else {
                printRun(modeName.c_str(), r);
            }
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
