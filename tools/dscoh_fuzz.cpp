// Deterministic coherence-protocol fuzzer driver.
//
//   dscoh_fuzz --seeds 0:200 --check          # fuzz a seed range
//   dscoh_fuzz --replay repro_seed7.scn       # re-run a saved reproducer
//   dscoh_fuzz --replay r.scn --txn-profile p.json  # + latency attribution
//   dscoh_fuzz --seeds 0:50 --inject-bug skip-remote-store-inval
//   dscoh_fuzz --seeds 0:60 --check --faults  # randomized DS-network faults
//
// Each seed expands to a randomized scenario (see src/check/fuzz.h) which
// runs under CCSM and direct store; with --check the CoherenceChecker
// oracle is attached and the final output arrays of the two modes are
// compared word-by-word. Failing scenarios are automatically shrunk to a
// minimal reproducer and written next to --out as a --replay file.
//
// --txn-profile FILE attaches the transaction profiler and writes the
// dscoh-txnprof-v1 latency attribution (see txn_report). With --mode both
// the two runs land in FILE.ccsm and FILE.ds; when fuzzing a seed range
// the file is rewritten per seed, so it is mainly useful with --replay or
// a single-seed range. Profiling never alters simulation behavior, so a
// replayed reproducer fails identically with it on.
//
// Exit codes: 0 all seeds clean, 1 at least one failure, 2 usage error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "check/fuzz.h"
#include "cli/options.h"

namespace {

using namespace dscoh;

enum class RunMode { kBoth, kCcsm, kDirectStore };

struct FuzzRunConfig {
    RunMode mode = RunMode::kBoth;
    FuzzOptions options;
};

struct Outcome {
    bool failed = false;
    std::string detail;
};

Outcome runOnce(const FuzzScenario& sc, const FuzzRunConfig& rc)
{
    Outcome o;
    const auto describe = [](const char* label, const FuzzReport& r) {
        std::ostringstream os;
        if (!r.failed())
            return std::string();
        os << "  [" << label << "] completed=" << (r.completed ? 1 : 0)
           << " checkFailures=" << r.checkFailures << " violations="
           << r.violations.size() << " ticks=" << r.ticks << "\n";
        for (const std::string& v : r.violations)
            os << "    " << v << "\n";
        return os.str();
    };
    if (rc.mode == RunMode::kBoth) {
        const DifferentialReport diff = runDifferential(sc, rc.options);
        o.failed = diff.failed();
        std::ostringstream os;
        os << describe("ccsm", diff.ccsm)
           << describe("direct-store", diff.directStore);
        if (!diff.divergentWords.empty()) {
            os << "  [differential] " << diff.divergentWords.size()
               << " output words differ between modes (first: word "
               << diff.divergentWords.front() << ")\n";
        }
        o.detail = os.str();
        return o;
    }
    const CoherenceMode mode = rc.mode == RunMode::kCcsm
                                   ? CoherenceMode::kCcsm
                                   : CoherenceMode::kDirectStore;
    const FuzzReport r = runScenario(sc, mode, rc.options);
    o.failed = r.failed();
    o.detail =
        describe(rc.mode == RunMode::kCcsm ? "ccsm" : "direct-store", r);
    return o;
}

bool parseSeedRange(const std::string& text, std::uint64_t& lo,
                    std::uint64_t& hi)
{
    const auto colon = text.find(':');
    if (colon == std::string::npos)
        return false;
    std::istringstream a(text.substr(0, colon));
    std::istringstream b(text.substr(colon + 1));
    return static_cast<bool>(a >> lo) && a.eof() &&
           static_cast<bool>(b >> hi) && b.eof() && lo < hi;
}

} // namespace

int main(int argc, char** argv)
{
    std::string seeds = "0:50";
    std::string mode = "both";
    std::string replay;
    std::string injectBug = "none";
    std::string outDir = ".";
    bool check = false;
    bool noShrink = false;
    bool faults = false;
    bool faultDropsOnly = false;
    std::uint64_t maxTicks = 50'000'000;
    std::uint64_t shrinkBudget = 96;
    std::uint64_t forceGpus = 0;
    std::string txnProfile;

    cli::OptionParser parser(
        "dscoh_fuzz",
        "Deterministic coherence-protocol fuzzer: randomized scenarios under "
        "the invariant oracle, with differential CCSM/direct-store "
        "comparison and automatic failing-case shrinking.");
    parser.addString("seeds", "seed range lo:hi (half-open), default 0:50",
                     &seeds);
    parser.addFlag("check", "attach the CoherenceChecker oracle", &check);
    parser.addString("mode", "both|ccsm|ds (default both: differential run)",
                     &mode);
    parser.addString("replay", "re-run a saved scenario file and exit",
                     &replay);
    parser.addString("inject-bug",
                     "none|skip-remote-store-inval|skip-snoop-inval|"
                     "drop-wback|cross-shard-order (oracle validation)",
                     &injectBug);
    parser.addUint("gpus", "force every generated scenario to this many "
                   "GPUs (0 = let the seed decide; >1 shards the DS "
                   "directory)", &forceGpus);
    parser.addString("out", "directory for shrunk reproducer files", &outDir);
    parser.addFlag("no-shrink", "report failures without shrinking them",
                   &noShrink);
    parser.addFlag("faults", "inject randomized DS-network faults (drops, "
                   "duplicates, corruption, delays, link outages) with the "
                   "delivery hardening armed", &faults);
    parser.addFlag("fault-drops-only", "with --faults: drop every DsPutX and "
                   "disarm the retransmit hardening — every seed MUST fail "
                   "(fault-calibration check that the harness can see a real "
                   "delivery bug)", &faultDropsOnly);
    parser.addUint("max-ticks", "per-run hang cut-off (simulated ticks)",
                   &maxTicks);
    parser.addUint("shrink-budget", "max candidate runs while shrinking",
                   &shrinkBudget);
    parser.addString("txn-profile", "write per-transaction latency "
                     "attribution (dscoh-txnprof-v1; .ccsm/.ds suffixes "
                     "with --mode both; feed to txn_report)", &txnProfile);
    if (!parser.parse(argc, argv, std::cerr))
        return 2;

    FuzzRunConfig rc;
    if (mode == "both")
        rc.mode = RunMode::kBoth;
    else if (mode == "ccsm")
        rc.mode = RunMode::kCcsm;
    else if (mode == "ds")
        rc.mode = RunMode::kDirectStore;
    else {
        std::cerr << "dscoh_fuzz: unknown --mode '" << mode << "'\n";
        return 2;
    }
    rc.options.oracle = check;
    rc.options.maxTicks = maxTicks;
    rc.options.txnProfilePath = txnProfile;
    if (faultDropsOnly && !faults) {
        std::cerr << "dscoh_fuzz: --fault-drops-only needs --faults\n";
        return 2;
    }

    bool bugOk = false;
    InjectedBug bug = InjectedBug::kNone;
    for (const InjectedBug b :
         {InjectedBug::kNone, InjectedBug::kSkipRemoteStoreInval,
          InjectedBug::kSkipSnoopInvalidate, InjectedBug::kDropWbAck,
          InjectedBug::kCrossShardOrder}) {
        if (injectBug == to_string(b)) {
            bug = b;
            bugOk = true;
        }
    }
    if (!bugOk) {
        std::cerr << "dscoh_fuzz: unknown --inject-bug '" << injectBug
                  << "'\n";
        return 2;
    }

    if (!replay.empty()) {
        std::ifstream in(replay);
        if (!in) {
            std::cerr << "dscoh_fuzz: cannot open replay file '" << replay
                      << "'\n";
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        FuzzScenario sc;
        std::string error;
        if (!parseScenario(text.str(), sc, error)) {
            std::cerr << "dscoh_fuzz: " << replay << ": " << error << "\n";
            return 2;
        }
        if (bug != InjectedBug::kNone)
            sc.bug = bug;
        const Outcome o = runOnce(sc, rc);
        if (o.failed) {
            std::cout << "replay " << replay << ": FAIL\n" << o.detail;
            return 1;
        }
        std::cout << "replay " << replay << ": ok\n";
        return 0;
    }

    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    if (!parseSeedRange(seeds, lo, hi)) {
        std::cerr << "dscoh_fuzz: bad --seeds '" << seeds
                  << "' (expected lo:hi with lo < hi)\n";
        return 2;
    }

    std::uint64_t failures = 0;
    for (std::uint64_t seed = lo; seed < hi; ++seed) {
        FuzzScenario sc =
            faults ? generateFaultScenario(seed) : generateScenario(seed);
        sc.bug = bug;
        if (forceGpus != 0)
            sc.gpus = static_cast<std::uint32_t>(forceGpus);
        if (bug == InjectedBug::kCrossShardOrder && !faults) {
            // The planted bug drops the lease-hold ordering protections, so
            // give every seed the surface it needs: at least two GPUs, the
            // timestamp fast path armed with a lease long enough to span a
            // produce phase (the bug lets those pushes land mid-lease), and
            // enough phases for the leasing GPU to come back around and
            // re-read its now-stale lease (kernels rotate over devices).
            if (sc.gpus < 2)
                sc.gpus = 2;
            sc.tsLeaseTicks = 1'000'000;
            if (sc.phases < 3)
                sc.phases = 3;
        }
        if (faultDropsOnly) {
            // Calibration inversion: every DsPutX/UcRead vanishes and the
            // retransmit machinery is disarmed, so every seed must fail. A
            // clean seed here means the harness cannot see a real delivery
            // bug either.
            sc.faultDropPpm = 1'000'000;
            sc.faultDupPpm = 0;
            sc.faultCorruptPpm = 0;
            sc.faultDelayPpm = 0;
            sc.faultLinkDownFrom = 0;
            sc.faultLinkDownUntil = 0;
            sc.dsAckTimeout = 0;
        }
        const Outcome o = runOnce(sc, rc);
        if (!o.failed)
            continue;
        ++failures;
        std::cout << "seed " << seed << ": FAIL\n" << o.detail;

        FuzzScenario minimal = sc;
        if (!noShrink) {
            minimal = shrinkScenario(
                sc,
                [&rc](const FuzzScenario& c) { return runOnce(c, rc).failed; },
                shrinkBudget);
            std::cout << "  shrunk to " << minimal.arrays.size()
                      << " array(s), " << minimal.phases << " phase(s), "
                      << minimal.blocks << "x" << minimal.threadsPerBlock
                      << " threads\n";
        }
        const std::string path =
            outDir + "/repro_seed" + std::to_string(seed) + ".scn";
        std::ofstream repro(path);
        if (repro) {
            serializeScenario(minimal, repro);
            std::cout << "  reproducer written to " << path
                      << " (dscoh_fuzz --replay " << path << ")\n";
        } else {
            std::cout << "  could not write reproducer to " << path << "\n";
        }
    }

    std::cout << "dscoh_fuzz: " << (hi - lo) << " seeds, " << failures
              << " failure(s)" << (check ? " [oracle on]" : "") << "\n";
    if (faultDropsOnly) {
        // Inverted exit: success means every planted fault was caught.
        if (failures == hi - lo) {
            std::cout << "fault calibration ok: every seed failed as "
                         "planted\n";
            return 0;
        }
        std::cout << "fault calibration FAILED: " << (hi - lo - failures)
                  << " seed(s) completed despite 100% DsPutX drops with the "
                     "hardening disarmed\n";
        return 1;
    }
    return failures == 0 ? 0 : 1;
}
