// bench_compare — diff two or more dscoh_bench reports.
//
//   dscoh_bench --reps 3 --out BENCH_2.json
//   bench_compare BENCH_1.json BENCH_2.json
//
// Loads "dscoh-bench-v1" files (the first is the baseline), matches runs by
// (code, mode), and prints the per-run events/sec delta against the
// baseline plus the geometric-mean throughput ratio per file. A run whose
// events/sec fell more than --max-regress-pct percent (default 10) below
// the baseline is flagged; any flagged run makes the tool exit 1, so it can
// gate CI the same way dscoh_bench --compare does but across full saved
// reports instead of a live run.
//
// Wall-clock numbers are host-machine measurements: comparing files
// recorded on different machines tells you about the machines, not the
// code. The per-run ticks/events columns, in contrast, are simulation
// outputs and must match exactly between any two reports of the same
// revision — a mismatch there is flagged as a determinism warning.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/options.h"
#include "obs/json_lite.h"
#include "sim/errors.h"

using namespace dscoh;

namespace {

struct BenchRun {
    std::string code;
    std::string mode;
    std::uint64_t events = 0;
    std::uint64_t ticks = 0;
    double eventsPerSecond = 0.0;
};

struct BenchFile {
    std::string path;
    std::vector<BenchRun> runs;

    const BenchRun* find(const std::string& code,
                         const std::string& mode) const
    {
        for (const BenchRun& r : runs)
            if (r.code == code && r.mode == mode)
                return &r;
        return nullptr;
    }
};

bool loadBench(const std::string& path, BenchFile& out, std::string& error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const jsonlite::ValuePtr doc = jsonlite::parse(buf.str(), error);
    if (doc == nullptr) {
        error = path + ": " + error;
        return false;
    }
    const jsonlite::Value* schema = doc->get("schema");
    if (schema == nullptr || schema->string != "dscoh-bench-v1") {
        error = path + ": not a dscoh-bench-v1 file";
        return false;
    }
    const jsonlite::Value* runs = doc->get("runs");
    if (runs == nullptr || !runs->isArray()) {
        error = path + ": missing \"runs\" array";
        return false;
    }
    out.path = path;
    for (const jsonlite::ValuePtr& entry : runs->array) {
        BenchRun r;
        const jsonlite::Value* code = entry->get("code");
        const jsonlite::Value* mode = entry->get("mode");
        if (code == nullptr || mode == nullptr)
            continue;
        r.code = code->string;
        r.mode = mode->string;
        if (const jsonlite::Value* v = entry->get("events"))
            r.events = v->asUint();
        if (const jsonlite::Value* v = entry->get("ticks"))
            r.ticks = v->asUint();
        if (const jsonlite::Value* v = entry->get("events_per_second"))
            r.eventsPerSecond = v->number;
        out.runs.push_back(std::move(r));
    }
    if (out.runs.empty()) {
        error = path + ": no usable runs";
        return false;
    }
    return true;
}

} // namespace

int main(int argc, char** argv)
{
    std::uint64_t maxRegressPct = 10;
    cli::OptionParser parser(
        "bench_compare",
        "diff dscoh-bench-v1 reports against the first (baseline) file: "
        "per-run events/sec delta, geomean ratio, regression flags");
    parser.addUint("max-regress-pct", "flag runs whose events/sec dropped "
                   "more than this percent below the baseline (default 10)",
                   &maxRegressPct);
    if (!parser.parse(argc, argv, std::cerr))
        return kExitUsage;
    if (parser.positional().size() < 2) {
        std::cerr << "usage: bench_compare BASELINE.json NEW.json [MORE...] "
                     "(--help for details)\n";
        return kExitUsage;
    }

    std::vector<BenchFile> files;
    for (const std::string& path : parser.positional()) {
        BenchFile f;
        std::string error;
        if (!loadBench(path, f, error)) {
            std::cerr << "bench_compare: " << error << "\n";
            return kExitIo;
        }
        files.push_back(std::move(f));
    }

    const BenchFile& base = files.front();
    const double limit = -static_cast<double>(maxRegressPct);
    bool regressed = false;
    bool determinismWarned = false;
    for (std::size_t f = 1; f < files.size(); ++f) {
        const BenchFile& cur = files[f];
        std::printf("=== %s vs %s ===\n", cur.path.c_str(),
                    base.path.c_str());
        std::printf("%-4s %-4s %14s %14s %9s\n", "code", "mode", "base ev/s",
                    "new ev/s", "delta%");
        double logRatioSum = 0.0;
        std::size_t matched = 0;
        for (const BenchRun& b : base.runs) {
            const BenchRun* c = cur.find(b.code, b.mode);
            if (c == nullptr)
                continue;
            if (b.eventsPerSecond <= 0.0 || c->eventsPerSecond <= 0.0)
                continue;
            const double ratio = c->eventsPerSecond / b.eventsPerSecond;
            const double deltaPct = (ratio - 1.0) * 100.0;
            const bool flag = deltaPct < limit;
            std::printf("%-4s %-4s %14.0f %14.0f %+8.1f%%%s\n",
                        b.code.c_str(), b.mode.c_str(), b.eventsPerSecond,
                        c->eventsPerSecond, deltaPct,
                        flag ? "  REGRESSION" : "");
            if (flag)
                regressed = true;
            if (b.ticks != c->ticks || b.events != c->events) {
                std::printf("     (determinism warning: %s %s simulated "
                            "ticks/events differ — different revisions?)\n",
                            b.code.c_str(), b.mode.c_str());
                determinismWarned = true;
            }
            logRatioSum += std::log(ratio);
            ++matched;
        }
        if (matched == 0) {
            std::cerr << "bench_compare: no comparable runs between "
                      << base.path << " and " << cur.path << "\n";
            return kExitIo;
        }
        const double geomean =
            std::exp(logRatioSum / static_cast<double>(matched));
        std::printf("geomean events/sec ratio over %zu shared runs: %.3f "
                    "(%+.1f%%)\n\n",
                    matched, geomean, (geomean - 1.0) * 100.0);
    }
    if (determinismWarned)
        std::printf("note: simulated counters differed on some runs; the "
                    "wall-clock deltas above mix code and machine effects\n");
    if (regressed) {
        std::fprintf(stderr,
                     "bench_compare: at least one run regressed more than "
                     "%llu%%\n",
                     static_cast<unsigned long long>(maxRegressPct));
        return kExitFailure;
    }
    return kExitOk;
}
