#include "check/fuzz.h"

#include <algorithm>
#include <functional>
#include <ostream>
#include <sstream>
#include <utility>

#include "check/coherence_checker.h"
#include "core/system.h"
#include "sim/rng.h"
#include "snap/serializer.h"
#include "workloads/workload.h" // producedValue

namespace dscoh {

namespace {

template <typename T, std::size_t N>
T pick(Rng& rng, const T (&choices)[N])
{
    return choices[rng.below(N)];
}

/// Final value of the 4-byte word at @p va, viewed through the coherence
/// hierarchy: the owner's copy when a cache owns the line, else memory.
std::uint64_t readGlobalWord(System& sys, Addr va)
{
    const Addr pa = sys.addressSpace().translate(va).paddr;
    const auto ownedCopy = [pa](CacheAgent& agent) -> const DataBlock* {
        return isOwner(agent.stateOf(pa)) ? agent.peekLine(pa) : nullptr;
    };
    const DataBlock* block = ownedCopy(sys.cpuCache());
    for (std::size_t s = 0; block == nullptr && s < sys.sliceCount(); ++s)
        block = ownedCopy(sys.slice(s));
    if (block == nullptr)
        block = &sys.backingStore().readLine(pa);
    return block->read(lineOffset(pa), 4);
}

/// The canonical value phase @p p's kernel writes to output word @p gid.
constexpr std::uint64_t outValue(std::uint32_t gid, std::uint32_t p)
{
    return gid * 11ull + 3 + p;
}

} // namespace

FuzzScenario generateScenario(std::uint64_t seed)
{
    Rng rng(seed * 0x2545F4914F6CDD1Dull + 0x9E3779B97F4A7C15ull);
    FuzzScenario sc;
    sc.seed = seed;

    const std::uint32_t sliceChoices[] = {1, 2, 4};
    const std::uint32_t cpuKbChoices[] = {64, 256, 2048};
    const std::uint32_t gpuKbChoices[] = {128, 512, 2048};
    const std::uint32_t mshrChoices[] = {4, 8, 16};
    const std::uint32_t wbChoices[] = {4, 8, 32};

    sc.slices = pick(rng, sliceChoices);
    sc.sms = 1 + static_cast<std::uint32_t>(rng.below(4));
    sc.cpuL2KB = pick(rng, cpuKbChoices);
    sc.gpuL2KB = pick(rng, gpuKbChoices);
    sc.mshrs = pick(rng, mshrChoices);
    sc.wbEntries = pick(rng, wbChoices);
    sc.cohHop = 10 + rng.below(70);
    sc.dsHop = 10 + rng.below(70);
    sc.gpuHop = 4 + rng.below(16);
    sc.directory = rng.chance(0.25);

    sc.phases = 1 + static_cast<std::uint32_t>(rng.below(3));
    sc.blocks = 1 + static_cast<std::uint32_t>(rng.below(8));
    sc.threadsPerBlock = 32 * (1 + static_cast<std::uint32_t>(rng.below(4)));
    sc.opsPerThread = 1 + static_cast<std::uint32_t>(rng.below(6));
    sc.dsMinWords = rng.chance(0.3) ? 256 : 0;
    sc.tieBreakSeed = rng.chance(0.5) ? (rng.next() | 1) : 0;

    const std::uint32_t numArrays =
        2 + static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t a = 0; a < numArrays; ++a) {
        FuzzArray arr;
        arr.words = 16 + static_cast<std::uint32_t>(rng.below(1024));
        arr.gpuShared = rng.chance(0.8);
        arr.cpuPretouch = rng.chance(0.25);
        sc.arrays.push_back(arr);
    }

    // Multi-GPU scale-out, drawn strictly after everything above so a
    // single-GPU expansion of any historical seed is unchanged up to the
    // new draws. Roughly a third of scenarios scale out.
    if (rng.chance(1.0 / 3)) {
        sc.gpus = 2 + static_cast<std::uint32_t>(rng.below(3)); // 2..4
        sc.shardPolicy = static_cast<std::uint32_t>(rng.below(3));
        sc.tsLeaseTicks = rng.chance(0.5) ? 1024 + rng.below(7169) : 0;
        sc.dsTopology = rng.chance(0.3) ? 1 : 0; // ring less common
    }
    return sc;
}

FuzzScenario generateFaultScenario(std::uint64_t seed)
{
    FuzzScenario sc = generateScenario(seed);
    Rng rng(seed * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull);

    // The faults live on the DS network; give them traffic to hit.
    bool anyShared = false;
    for (const FuzzArray& arr : sc.arrays)
        anyShared = anyShared || arr.gpuShared;
    if (!anyShared)
        sc.arrays.front().gpuShared = true;
    sc.dsMinWords = 0; // no hybrid threshold: every shared array is pushed
    // The timestamp fast path carries no delivery hardening (PROTOCOL.md:
    // leases assume a fault-free DS network), so fault scenarios keep it
    // off. Multi-GPU shapes themselves stay — per-shard hardening is
    // exactly what fault fuzzing must exercise.
    sc.tsLeaseTicks = 0;

    // Hardening must be armed: a drop with no retransmit story is a hang by
    // construction (that inversion is the CI calibration check, not a fuzz
    // scenario).
    sc.dsAckTimeout = 2000 + rng.below(6000);
    sc.dsMaxRetries = 3 + static_cast<std::uint32_t>(rng.below(4));
    sc.faultSeed = rng.next() | 1;

    sc.faultDropPpm = rng.chance(0.7)
        ? 20'000 + static_cast<std::uint32_t>(rng.below(180'000)) : 0;
    sc.faultDupPpm = rng.chance(0.5)
        ? 10'000 + static_cast<std::uint32_t>(rng.below(90'000)) : 0;
    sc.faultCorruptPpm = rng.chance(0.4)
        ? 5'000 + static_cast<std::uint32_t>(rng.below(45'000)) : 0;
    sc.faultDelayPpm = rng.chance(0.6)
        ? 50'000 + static_cast<std::uint32_t>(rng.below(300'000)) : 0;
    sc.faultDelayTicks = 50 + rng.below(1450);
    if (rng.chance(0.25)) {
        sc.faultLinkDownFrom = 1000 + rng.below(50'000);
        sc.faultLinkDownUntil =
            sc.faultLinkDownFrom + 2000 + rng.below(30'000);
    }
    if (!sc.faultsEnabled())
        sc.faultDropPpm = 50'000; // at least one fault class is always on
    return sc;
}

SystemConfig scenarioConfig(const FuzzScenario& sc, CoherenceMode mode)
{
    SystemConfig cfg = SystemConfig::paper(mode);
    cfg.numSms = sc.sms;
    cfg.gpuL2Slices = sc.slices;
    cfg.cpuL2Size = sc.cpuL2KB * 1024ull;
    cfg.gpuL2Size = sc.gpuL2KB * 1024ull;
    cfg.agentMshrs = sc.mshrs;
    cfg.gpuL2Mshrs = sc.mshrs * 4ull;
    cfg.writebackEntries = sc.wbEntries;
    cfg.coherenceNet.hopLatency = sc.cohHop;
    cfg.dsNet.hopLatency = sc.dsHop;
    cfg.gpuNet.hopLatency = sc.gpuHop;
    cfg.directoryHome = sc.directory;
    cfg.numGpus = sc.gpus;
    cfg.shardPolicy = static_cast<ShardPolicy>(sc.shardPolicy);
    cfg.tsLeaseTicks = sc.tsLeaseTicks;
    cfg.dsTopology = static_cast<DsTopology>(sc.dsTopology);
    cfg.dsMinBytes = sc.dsMinWords * 4;
    cfg.eventTieBreakSeed = sc.tieBreakSeed;
    cfg.injectBug = sc.bug;
    cfg.seed = sc.seed + 1; // replacement-policy seeds
    cfg.faults.dropPpm = sc.faultDropPpm;
    cfg.faults.dupPpm = sc.faultDupPpm;
    cfg.faults.corruptPpm = sc.faultCorruptPpm;
    cfg.faults.delayPpm = sc.faultDelayPpm;
    cfg.faults.delayTicks = sc.faultDelayTicks;
    cfg.faults.linkDownFrom = sc.faultLinkDownFrom;
    cfg.faults.linkDownUntil = sc.faultLinkDownUntil;
    cfg.faults.seed = sc.faultSeed;
    cfg.dsAckTimeout = sc.dsAckTimeout;
    cfg.dsMaxRetries = sc.dsMaxRetries;
    return cfg;
}

FuzzReport runScenario(const FuzzScenario& sc, CoherenceMode mode,
                       const FuzzOptions& options)
{
    FuzzReport report;
    if (sc.arrays.empty() || sc.phases == 0)
        return report;

    System sys(scenarioConfig(sc, mode));
    CoherenceChecker* checker = nullptr;
    if (options.oracle) {
        CoherenceChecker::Params cp;
        cp.maxViolations = options.maxViolations;
        checker = &sys.enableChecker(cp);
    }
    if (!options.txnProfilePath.empty())
        sys.enableTxnProfiler();

    std::vector<Addr> bases;
    std::vector<std::uint32_t> words;
    for (const FuzzArray& arr : sc.arrays) {
        bases.push_back(sys.allocateArray(arr.words * 4ull, arr.gpuShared));
        words.push_back(arr.words);
    }
    const Addr out = bases.back();
    const std::uint32_t outWords = words.back();
    const std::uint32_t inputs =
        static_cast<std::uint32_t>(sc.arrays.size()) - 1;

    // Pre-touch: pull the first lines of selected arrays into the CPU's
    // coherent L2 (driving the agent directly, below the TLB's DS-region
    // routing). This seeds the CPU-holds-a-copy states every kRemoteStore
    // edge of Fig. 3 starts from — without it a DS-mode run never exercises
    // the CPU-side invalidation the protocol (and the injected
    // kSkipRemoteStoreInval bug) hinges on.
    const bool restoring = options.phased && !options.restorePath.empty();
    Rng touchRng(sc.seed ^ 0xA5A5A5A500000001ull);
    for (std::uint32_t a = 0; !restoring && a < sc.arrays.size(); ++a) {
        if (!sc.arrays[a].cpuPretouch)
            continue;
        const bool exclusive = touchRng.chance(0.5);
        const std::uint32_t lines = std::min<std::uint32_t>(
            4, (sc.arrays[a].words * 4 + kLineSize - 1) / kLineSize);
        for (std::uint32_t l = 0; l < lines; ++l) {
            const Addr pa =
                sys.addressSpace()
                    .translate(bases[a] + static_cast<Addr>(l) * kLineSize)
                    .paddr;
            sys.cpuCache().access(pa, exclusive, [](CacheAgent::Line&) {});
        }
    }
    if (!restoring)
        sys.simulate(); // pre-touch effects are inside the snapshot otherwise

    // Build every phase up front; storage must outlive the run.
    struct Phase {
        CpuProgram produce;
        KernelDesc kernel;
        CpuProgram readBack;
    };
    std::vector<Phase> phases(sc.phases);
    Rng rng(sc.seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
    const std::uint32_t totalThreads = sc.blocks * sc.threadsPerBlock;
    for (std::uint32_t p = 0; p < sc.phases; ++p) {
        Phase& phase = phases[p];
        for (std::uint32_t a = 0; a < inputs; ++a) {
            for (std::uint32_t i = 0; i < words[a]; ++i) {
                const Addr va = bases[a] + i * 4ull;
                phase.produce.push_back(
                    cpuStore(va, producedValue(va) + p, 4));
                if (rng.chance(0.05))
                    phase.produce.push_back(cpuCompute(rng.below(8)));
            }
        }
        phase.produce.push_back(cpuFence());

        KernelDesc& k = phase.kernel;
        k.name = "fuzz_phase" + std::to_string(p);
        k.blocks = sc.blocks;
        k.threadsPerBlock = sc.threadsPerBlock;
        k.gpu = sc.gpus > 1 ? p % sc.gpus : 0; // rotate phases over devices
        const std::uint64_t bodySeed = rng.next();
        const std::uint32_t tpb = sc.threadsPerBlock;
        const std::uint32_t maxOps = sc.opsPerThread;
        const auto basesCopy = bases;
        const auto wordsCopy = words;
        k.body = [=](ThreadBuilder& t, std::uint32_t b, std::uint32_t tid) {
            // SIMT lockstep: warp-uniform decisions from a warp-seeded RNG,
            // per-lane addresses from a lane-seeded one.
            Rng warpRng(bodySeed ^ (static_cast<std::uint64_t>(b) << 32) ^
                        (tid / 32));
            Rng laneRng(bodySeed * 31 + b * 131071 + tid);
            const std::uint32_t ops =
                1 + static_cast<std::uint32_t>(warpRng.below(maxOps));
            for (std::uint32_t op = 0; op < ops; ++op) {
                if (inputs == 0) {
                    t.compute(1 +
                              static_cast<std::uint32_t>(warpRng.below(4)));
                    continue;
                }
                const std::uint32_t a =
                    static_cast<std::uint32_t>(warpRng.below(inputs));
                const std::uint32_t i =
                    static_cast<std::uint32_t>(laneRng.below(wordsCopy[a]));
                const Addr va = basesCopy[a] + i * 4ull;
                t.ldCheck(va, producedValue(va) + p, 4);
                if (warpRng.chance(0.4))
                    t.compute(
                        1 + static_cast<std::uint32_t>(warpRng.below(6)));
            }
            const std::uint32_t gid = b * tpb + tid;
            if (gid < outWords)
                t.st(out + gid * 4ull, outValue(gid, p), 4);
        };

        const std::uint32_t checked = std::min(outWords, totalThreads);
        const std::uint32_t stride =
            1 + static_cast<std::uint32_t>((sc.seed + p) % 7);
        for (std::uint32_t gid = 0; gid < checked; gid += stride)
            phase.readBack.push_back(
                cpuLoadCheck(out + gid * 4ull, outValue(gid, p), 4));
    }

    // Sliced run loop: the horizon always advances, so a wedged system
    // cannot spin this loop, and the checker's no-progress watchdog fires
    // between slices.
    constexpr Tick kSlice = 200'000;
    Tick horizon = 0;
    bool watchdogFired = false;
    const auto drainSliced = [&] {
        while (!sys.queue().empty() && horizon < options.maxTicks) {
            horizon += kSlice;
            sys.queue().runUntil(horizon);
            if (checker != nullptr &&
                !checker->checkProgress(sys.queue().curTick())) {
                watchdogFired = true;
                return;
            }
        }
    };

    std::uint32_t phasesDone = 0;
    if (!options.phased) {
        std::function<void(std::uint32_t)> runPhase = [&](std::uint32_t p) {
            sys.runCpuProgram(phases[p].produce, [&, p] {
                sys.launchKernel(phases[p].kernel, [&, p] {
                    sys.runCpuProgram(phases[p].readBack, [&, p] {
                        ++phasesDone;
                        if (p + 1 < sc.phases)
                            runPhase(p + 1);
                    });
                });
            });
        };
        runPhase(0);
        drainSliced();
    } else {
        // Phased: each round (produce -> kernel -> readback) drains fully
        // before the next starts, so every round boundary is a safe point.
        std::uint32_t startRound = 0;
        if (restoring) {
            sys.snapshotRestore(options.restorePath,
                                [&startRound](snap::SnapReader& r) {
                                    startRound = r.u32();
                                });
            phasesDone = startRound;
            horizon = sys.queue().curTick();
        }
        for (std::uint32_t p = startRound;
             p < sc.phases && !watchdogFired && horizon < options.maxTicks;
             ++p) {
            sys.runCpuProgram(phases[p].produce, [&, p] {
                sys.launchKernel(phases[p].kernel, [&, p] {
                    sys.runCpuProgram(phases[p].readBack,
                                      [&phasesDone] { ++phasesDone; });
                });
            });
            drainSliced();
            if (phasesDone == p + 1 && !options.snapshotPath.empty() &&
                options.snapshotAfterRound == p + 1)
                sys.snapshotSave(options.snapshotPath,
                                 [p](snap::SnapWriter& w) { w.u32(p + 1); });
        }
    }

    report.ticks = sys.queue().curTick();
    report.completed =
        phasesDone == sc.phases && sys.queue().empty() && !watchdogFired;
    report.checkFailures = sys.metrics().checkFailures;
    if (!report.completed)
        report.violations.push_back(
            "[hang] run did not complete: " + std::to_string(phasesDone) +
            "/" + std::to_string(sc.phases) + " phases, " +
            std::to_string(sys.queue().pending()) + " events pending at tick " +
            std::to_string(report.ticks));
    if (checker != nullptr) {
        checker->finalize(report.ticks);
        const auto& v = checker->violations();
        report.violations.insert(report.violations.end(), v.begin(), v.end());
    }
    if (report.completed) {
        const auto quiesced = sys.checkCoherenceInvariants();
        report.violations.insert(report.violations.end(), quiesced.begin(),
                                 quiesced.end());
    }

    report.outWords.reserve(outWords);
    for (std::uint32_t gid = 0; gid < outWords; ++gid)
        report.outWords.push_back(static_cast<std::uint32_t>(
            readGlobalWord(sys, out + gid * 4ull)));

    if (!options.txnProfilePath.empty()) {
        std::ostringstream prof;
        sys.txnProfiler()->writeJson(prof);
        snap::atomicWriteFile(options.txnProfilePath, prof.str());
    }
    return report;
}

DifferentialReport runDifferential(const FuzzScenario& sc,
                                   const FuzzOptions& options)
{
    DifferentialReport diff;
    // Both modes run with the same options; the profile output (one file
    // per run) gets a per-mode suffix so the second run cannot clobber the
    // first.
    FuzzOptions ccsmOpts = options;
    FuzzOptions dsOpts = options;
    if (!options.txnProfilePath.empty()) {
        ccsmOpts.txnProfilePath += ".ccsm";
        dsOpts.txnProfilePath += ".ds";
    }
    diff.ccsm = runScenario(sc, CoherenceMode::kCcsm, ccsmOpts);
    diff.directStore = runScenario(sc, CoherenceMode::kDirectStore, dsOpts);
    const std::size_t n =
        std::min(diff.ccsm.outWords.size(), diff.directStore.outWords.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (diff.ccsm.outWords[i] != diff.directStore.outWords[i])
            diff.divergentWords.push_back(static_cast<std::uint32_t>(i));
    }
    return diff;
}

// --------------------------------------------------------------- replay --

namespace {
constexpr const char* kHeader = "# dscoh-fuzz-scenario-v1";

InjectedBug bugFromName(const std::string& name, bool& ok)
{
    ok = true;
    for (const InjectedBug b :
         {InjectedBug::kNone, InjectedBug::kSkipRemoteStoreInval,
          InjectedBug::kSkipSnoopInvalidate, InjectedBug::kDropWbAck,
          InjectedBug::kCrossShardOrder}) {
        if (name == to_string(b))
            return b;
    }
    ok = false;
    return InjectedBug::kNone;
}
} // namespace

void serializeScenario(const FuzzScenario& sc, std::ostream& os)
{
    os << kHeader << "\n"
       << "seed " << sc.seed << "\n"
       << "slices " << sc.slices << "\n"
       << "sms " << sc.sms << "\n"
       << "cpuL2KB " << sc.cpuL2KB << "\n"
       << "gpuL2KB " << sc.gpuL2KB << "\n"
       << "mshrs " << sc.mshrs << "\n"
       << "wbEntries " << sc.wbEntries << "\n"
       << "cohHop " << sc.cohHop << "\n"
       << "dsHop " << sc.dsHop << "\n"
       << "gpuHop " << sc.gpuHop << "\n"
       << "directory " << (sc.directory ? 1 : 0) << "\n"
       << "phases " << sc.phases << "\n"
       << "blocks " << sc.blocks << "\n"
       << "threadsPerBlock " << sc.threadsPerBlock << "\n"
       << "opsPerThread " << sc.opsPerThread << "\n"
       << "dsMinWords " << sc.dsMinWords << "\n"
       << "tieBreakSeed " << sc.tieBreakSeed << "\n"
       << "bug " << to_string(sc.bug) << "\n";
    // The multi-GPU block only appears when something scales out, so
    // single-GPU scenario files (and existing corpora) stay byte-identical.
    if (sc.multiGpu())
        os << "gpus " << sc.gpus << "\n"
           << "shardPolicy " << sc.shardPolicy << "\n"
           << "tsLeaseTicks " << sc.tsLeaseTicks << "\n"
           << "dsTopology " << sc.dsTopology << "\n";
    // The fault block only appears when something is armed, so fault-free
    // scenario files (and existing corpora) stay byte-identical.
    if (sc.faultsEnabled() || sc.dsAckTimeout != 0)
        os << "faultDropPpm " << sc.faultDropPpm << "\n"
           << "faultDupPpm " << sc.faultDupPpm << "\n"
           << "faultCorruptPpm " << sc.faultCorruptPpm << "\n"
           << "faultDelayPpm " << sc.faultDelayPpm << "\n"
           << "faultDelayTicks " << sc.faultDelayTicks << "\n"
           << "faultLinkDownFrom " << sc.faultLinkDownFrom << "\n"
           << "faultLinkDownUntil " << sc.faultLinkDownUntil << "\n"
           << "faultSeed " << sc.faultSeed << "\n"
           << "dsAckTimeout " << sc.dsAckTimeout << "\n"
           << "dsMaxRetries " << sc.dsMaxRetries << "\n";
    for (const FuzzArray& arr : sc.arrays)
        os << "array " << arr.words << ' ' << (arr.gpuShared ? 1 : 0) << ' '
           << (arr.cpuPretouch ? 1 : 0) << "\n";
}

std::string serializeScenario(const FuzzScenario& sc)
{
    std::ostringstream os;
    serializeScenario(sc, os);
    return os.str();
}

bool parseScenario(const std::string& text, FuzzScenario& out,
                   std::string& error)
{
    std::istringstream in(text);
    std::string line;
    bool sawHeader = false;
    FuzzScenario sc;
    sc.arrays.clear();
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        if (!sawHeader) {
            if (line != kHeader) {
                error = "line 1: expected '" + std::string(kHeader) + "'";
                return false;
            }
            sawHeader = true;
            continue;
        }
        if (line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        const auto fail = [&](const std::string& what) {
            error = "line " + std::to_string(lineNo) + ": " + what;
            return false;
        };
        const auto readU64 = [&ls](std::uint64_t& v) -> bool {
            return static_cast<bool>(ls >> v);
        };
        const auto readU32 = [&ls](std::uint32_t& v) -> bool {
            return static_cast<bool>(ls >> v);
        };
        const auto readBool = [&ls](bool& v) -> bool {
            int i = 0;
            if (!(ls >> i) || (i != 0 && i != 1))
                return false;
            v = i == 1;
            return true;
        };
        bool ok = true;
        if (key == "seed")
            ok = readU64(sc.seed);
        else if (key == "slices")
            ok = readU32(sc.slices);
        else if (key == "sms")
            ok = readU32(sc.sms);
        else if (key == "cpuL2KB")
            ok = readU32(sc.cpuL2KB);
        else if (key == "gpuL2KB")
            ok = readU32(sc.gpuL2KB);
        else if (key == "mshrs")
            ok = readU32(sc.mshrs);
        else if (key == "wbEntries")
            ok = readU32(sc.wbEntries);
        else if (key == "cohHop")
            ok = readU64(sc.cohHop);
        else if (key == "dsHop")
            ok = readU64(sc.dsHop);
        else if (key == "gpuHop")
            ok = readU64(sc.gpuHop);
        else if (key == "directory")
            ok = readBool(sc.directory);
        else if (key == "phases")
            ok = readU32(sc.phases);
        else if (key == "blocks")
            ok = readU32(sc.blocks);
        else if (key == "threadsPerBlock")
            ok = readU32(sc.threadsPerBlock);
        else if (key == "opsPerThread")
            ok = readU32(sc.opsPerThread);
        else if (key == "dsMinWords")
            ok = readU64(sc.dsMinWords);
        else if (key == "tieBreakSeed")
            ok = readU64(sc.tieBreakSeed);
        else if (key == "gpus")
            ok = readU32(sc.gpus);
        else if (key == "shardPolicy")
            ok = readU32(sc.shardPolicy);
        else if (key == "tsLeaseTicks")
            ok = readU64(sc.tsLeaseTicks);
        else if (key == "dsTopology")
            ok = readU32(sc.dsTopology);
        else if (key == "faultDropPpm")
            ok = readU32(sc.faultDropPpm);
        else if (key == "faultDupPpm")
            ok = readU32(sc.faultDupPpm);
        else if (key == "faultCorruptPpm")
            ok = readU32(sc.faultCorruptPpm);
        else if (key == "faultDelayPpm")
            ok = readU32(sc.faultDelayPpm);
        else if (key == "faultDelayTicks")
            ok = readU64(sc.faultDelayTicks);
        else if (key == "faultLinkDownFrom")
            ok = readU64(sc.faultLinkDownFrom);
        else if (key == "faultLinkDownUntil")
            ok = readU64(sc.faultLinkDownUntil);
        else if (key == "faultSeed")
            ok = readU64(sc.faultSeed);
        else if (key == "dsAckTimeout")
            ok = readU64(sc.dsAckTimeout);
        else if (key == "dsMaxRetries")
            ok = readU32(sc.dsMaxRetries);
        else if (key == "bug") {
            std::string name;
            ls >> name;
            sc.bug = bugFromName(name, ok);
            if (!ok)
                return fail("unknown bug name '" + name + "'");
        } else if (key == "array") {
            FuzzArray arr;
            ok = readU32(arr.words) && readBool(arr.gpuShared) &&
                 readBool(arr.cpuPretouch);
            if (ok)
                sc.arrays.push_back(arr);
        } else {
            return fail("unknown key '" + key + "'");
        }
        if (!ok)
            return fail("malformed value for '" + key + "'");
    }
    if (!sawHeader) {
        error = "empty scenario file";
        return false;
    }
    if (sc.arrays.empty()) {
        error = "scenario has no arrays";
        return false;
    }
    if (sc.phases == 0 || sc.blocks == 0 || sc.threadsPerBlock == 0 ||
        sc.slices == 0 || sc.sms == 0 || sc.opsPerThread == 0 ||
        sc.mshrs == 0 || sc.wbEntries == 0 || sc.cpuL2KB == 0 ||
        sc.gpuL2KB == 0 || sc.gpus == 0) {
        error = "scenario has a zero-sized field";
        return false;
    }
    if (sc.shardPolicy > 2 || sc.dsTopology > 1) {
        error = "scenario has an out-of-range enum field";
        return false;
    }
    out = std::move(sc);
    return true;
}

// -------------------------------------------------------------- shrinking --

FuzzScenario
shrinkScenario(const FuzzScenario& failing,
               const std::function<bool(const FuzzScenario&)>& stillFails,
               std::size_t maxAttempts)
{
    FuzzScenario current = failing;
    std::size_t attempts = 0;

    // Every transformation strictly simplifies the scenario, so greedy
    // fixpoint iteration terminates even without the attempt bound.
    const auto candidates = [](const FuzzScenario& sc) {
        std::vector<FuzzScenario> out;
        // Drop one array (the cheapest big win; keeps at least one).
        for (std::size_t a = 0; sc.arrays.size() > 1 && a < sc.arrays.size();
             ++a) {
            FuzzScenario c = sc;
            c.arrays.erase(c.arrays.begin() + static_cast<std::ptrdiff_t>(a));
            out.push_back(std::move(c));
        }
        if (sc.phases > 1) {
            FuzzScenario c = sc;
            c.phases = 1;
            out.push_back(std::move(c));
        }
        if (sc.blocks > 1) {
            FuzzScenario c = sc;
            c.blocks = std::max(1u, sc.blocks / 2);
            out.push_back(std::move(c));
        }
        if (sc.threadsPerBlock > 32) {
            FuzzScenario c = sc;
            c.threadsPerBlock = std::max(32u, sc.threadsPerBlock / 2);
            out.push_back(std::move(c));
        }
        if (sc.opsPerThread > 1) {
            FuzzScenario c = sc;
            c.opsPerThread = std::max(1u, sc.opsPerThread / 2);
            out.push_back(std::move(c));
        }
        for (std::size_t a = 0; a < sc.arrays.size(); ++a) {
            if (sc.arrays[a].words > 4) {
                FuzzScenario c = sc;
                c.arrays[a].words = std::max(4u, sc.arrays[a].words / 2);
                out.push_back(std::move(c));
            }
        }
        for (std::size_t a = 0; a < sc.arrays.size(); ++a) {
            if (sc.arrays[a].cpuPretouch) {
                FuzzScenario c = sc;
                c.arrays[a].cpuPretouch = false;
                out.push_back(std::move(c));
            }
        }
        if (sc.tieBreakSeed != 0) {
            FuzzScenario c = sc;
            c.tieBreakSeed = 0;
            out.push_back(std::move(c));
        }
        if (sc.directory) {
            FuzzScenario c = sc;
            c.directory = false;
            out.push_back(std::move(c));
        }
        if (sc.dsMinWords != 0) {
            FuzzScenario c = sc;
            c.dsMinWords = 0;
            out.push_back(std::move(c));
        }
        // Multi-GPU simplifications: try collapsing back to the original
        // single-GPU machine first (the biggest win), then peel the axes
        // off one at a time.
        if (sc.multiGpu()) {
            FuzzScenario c = sc;
            c.gpus = 1;
            c.shardPolicy = 0;
            c.tsLeaseTicks = 0;
            c.dsTopology = 0;
            out.push_back(std::move(c));
        }
        if (sc.gpus > 2) {
            FuzzScenario c = sc;
            c.gpus = 2;
            out.push_back(std::move(c));
        }
        if (sc.tsLeaseTicks != 0) {
            FuzzScenario c = sc;
            c.tsLeaseTicks = 0;
            out.push_back(std::move(c));
        }
        if (sc.dsTopology != 0) {
            FuzzScenario c = sc;
            c.dsTopology = 0;
            out.push_back(std::move(c));
        }
        if (sc.gpus > 1 && sc.shardPolicy != 0) {
            FuzzScenario c = sc;
            c.shardPolicy = 0;
            out.push_back(std::move(c));
        }
        // Faults shrink one class at a time; the hardening itself is only
        // offered for removal once no fault class remains that needs it
        // (otherwise the candidate hangs by construction and the shrink
        // would chase a different failure).
        if (sc.faultDupPpm != 0) {
            FuzzScenario c = sc;
            c.faultDupPpm = 0;
            out.push_back(std::move(c));
        }
        if (sc.faultDelayPpm != 0) {
            FuzzScenario c = sc;
            c.faultDelayPpm = 0;
            out.push_back(std::move(c));
        }
        if (sc.faultDropPpm != 0) {
            FuzzScenario c = sc;
            c.faultDropPpm = 0;
            out.push_back(std::move(c));
        }
        if (sc.faultCorruptPpm != 0) {
            FuzzScenario c = sc;
            c.faultCorruptPpm = 0;
            out.push_back(std::move(c));
        }
        if (sc.faultLinkDownUntil != 0) {
            FuzzScenario c = sc;
            c.faultLinkDownFrom = 0;
            c.faultLinkDownUntil = 0;
            out.push_back(std::move(c));
        }
        if (sc.dsAckTimeout != 0 && sc.faultDropPpm == 0 &&
            sc.faultCorruptPpm == 0 && sc.faultLinkDownUntil == 0) {
            FuzzScenario c = sc;
            c.dsAckTimeout = 0;
            out.push_back(std::move(c));
        }
        if (sc.sms > 1) {
            FuzzScenario c = sc;
            c.sms = std::max(1u, sc.sms / 2);
            out.push_back(std::move(c));
        }
        if (sc.slices > 1) {
            FuzzScenario c = sc;
            c.slices = std::max(1u, sc.slices / 2);
            out.push_back(std::move(c));
        }
        return out;
    };

    bool improved = true;
    while (improved && attempts < maxAttempts) {
        improved = false;
        for (FuzzScenario& c : candidates(current)) {
            if (attempts >= maxAttempts)
                break;
            ++attempts;
            if (stillFails(c)) {
                current = std::move(c);
                improved = true;
                break; // restart from the simplified scenario
            }
        }
    }
    return current;
}

} // namespace dscoh
