// Live coherence invariant oracle.
//
// A CoherenceChecker attaches to a SimContext (System::enableChecker) the
// same way a TraceSession does: null by default, one pointer test per hook
// when off, so a checker-less simulation is byte-identical to a build
// without the subsystem. When on, every protocol transition re-validates
// the lines involved:
//
//  - single-writer / multiple-reader: at most one owner (MM/M/O, or a
//    writeback draining as MI_A/OI_A) per line across the CPU agent and
//    every GPU L2 slice, and an exclusive (MM/M) copy never coexists with
//    another readable copy;
//  - data-value consistency: a ground-truth mirror of every store applied
//    at a coherent agent (the linearization points) is compared byte-wise
//    against each readable copy on every transition, and against the
//    owner-copy-else-backing-store view of memory at finalize();
//  - MSHR hygiene: double allocation, release-without-allocate and
//    end-of-run leaks are caught even in NDEBUG builds where the MshrFile
//    asserts compile away;
//  - no-progress watchdog: a driver (the fuzzer, or any test) runs the
//    event queue in slices and calls checkProgress() between them; a slice
//    with zero protocol activity while transactions, writebacks or network
//    messages are outstanding is reported as a deadlock/livelock, and
//    finalize() itemizes every stuck resource once the queue drains.
//
// The checker talks to the agents through type-erased AgentView probes so
// this header depends only on protocol/state vocabulary, never on the agent
// classes themselves (SimContext includes this header).
//
// The data mirror assumes data-race-free programs (conflicting same-line
// writes ordered by fences / completion callbacks), which is the contract
// every scenario the fuzzer generates obeys.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "coherence/protocol.h"
#include "coherence/transition_coverage.h"
#include "mem/data_block.h"
#include "sim/types.h"
#include "snap/snapshot.h"

namespace dscoh {

class BackingStore;

class CoherenceChecker {
public:
    struct Params {
        /// Violations recorded before further ones are only counted.
        std::size_t maxViolations = 64;
        /// Maintain the store mirror and compare data values (the dominant
        /// cost; protocol-state invariants alone are nearly free).
        bool trackData = true;
    };

    using LineFn = std::function<void(Addr base, CohState state,
                                      const DataBlock& data)>;

    /// Type-erased probe into one coherent agent (CPU hierarchy or a GPU
    /// L2 slice). Registered by System::enableChecker().
    struct AgentView {
        std::string name;
        /// Protocol state of a line (kI when absent; writeback-buffer
        /// entries report their transient state).
        std::function<CohState(Addr)> stateOf;
        /// The line's bytes (array or writeback buffer), or nullptr.
        std::function<const DataBlock*(Addr)> dataOf;
        std::function<std::size_t()> mshrInFlight;
        std::function<std::size_t()> writebackEntries;
        std::function<std::size_t()> blockedThunks;
        /// Every valid line: cache array first, then writeback buffer.
        std::function<void(const LineFn&)> forEachLine;
    };

    CoherenceChecker();
    explicit CoherenceChecker(const Params& params);

    // --- registration (System::enableChecker) ----------------------------
    void addAgent(AgentView view);
    void setHomeProbe(std::function<std::size_t()> busyLines);
    void setBackingStore(const BackingStore* store);

    // --- hooks (hot paths; every caller guards with `if (checking())`) ---
    void onTransition(const std::string& agent, Addr base, CohState from,
                      CohEvent event, CohState to, Tick now);
    void onMshrAllocate(const std::string& agent, Addr base, Tick now);
    void onMshrRelease(const std::string& agent, Addr base, Tick now);
    /// A store's bytes were applied at a coherent agent (the global
    /// linearization point for that line). Updates the ground-truth mirror.
    void onStoreApplied(Addr base, const DataBlock& data, const ByteMask& mask);
    /// Timestamp fast path (multi-GPU): a home slice granted a lease on
    /// @p base until @p expiry. Epoch validity: the grant must lie in the
    /// future and the grantor must hold the line in an owner state.
    void onLeaseGrant(const std::string& agent, Addr base, Tick expiry,
                      Tick now);
    /// A leaseholder served @p data for @p base under a lease expiring at
    /// @p expiry. Serves must strictly precede expiry, and (with data
    /// tracking) the served bytes must match the ground-truth mirror —
    /// this is what turns a skipped lease hold into a reported violation
    /// rather than just a wrong workload result.
    void onLeaseServe(const std::string& agent, Addr base,
                      const DataBlock& data, Tick expiry, Tick now);
    /// A component detected a structural violation itself (misrouted
    /// direct store, request at the wrong directory shard). Recorded like
    /// any invariant breach.
    void reportExternal(const std::string& agent, const std::string& what,
                        Tick now);
    void onMessageSent() { ++inFlight_; ++activity_; }
    void onMessageDelivered()
    {
        if (inFlight_ > 0)
            --inFlight_;
        ++activity_;
    }

    // --- driver API -------------------------------------------------------
    /// Call between event-queue slices. Returns false (and records a
    /// deadlock violation) when no protocol activity happened since the
    /// previous call while work was outstanding.
    bool checkProgress(Tick now);

    /// Call once the queue drained: itemizes stuck resources, re-validates
    /// every cached line, and compares the store mirror against the
    /// owner-copy-else-backing-store view of memory.
    void finalize(Tick now);

    bool clean() const { return violations_.empty(); }
    const std::vector<std::string>& violations() const { return violations_; }
    std::uint64_t transitionsChecked() const { return transitions_; }
    std::uint64_t storesMirrored() const { return storesMirrored_; }
    std::uint64_t suppressedViolations() const { return suppressed_; }
    std::size_t inFlightMessages() const { return inFlight_; }

    void dump(std::ostream& os) const;

    /// Oracle shadow state: the ground-truth store mirror, accumulated
    /// violations and hook counters. MSHR live-sets and in-flight-message
    /// counts must be zero at a safe point (checked, not saved). Restoring
    /// keeps the oracle live across a checkpoint with full history.
    void snapSave(snap::SnapWriter& w) const;
    void snapRestore(snap::SnapReader& r);

private:
    struct MirrorLine {
        DataBlock data;
        ByteMask valid;
    };

    void record(const char* category, const std::string& what, Tick now);
    /// Re-validates one line across every agent; @p when labels the report.
    void checkLine(Addr base, const char* when, Tick now);
    bool outstandingWork(std::string* detail) const;
    /// The line's current global value: owner (or draining-writeback) copy
    /// if one exists, else backing store. @p source names where it came from.
    const DataBlock* globalLineValue(Addr base, std::string* source) const;

    Params params_;
    std::vector<AgentView> agents_;
    std::function<std::size_t()> homeBusyLines_;
    const BackingStore* store_ = nullptr;

    std::unordered_map<Addr, MirrorLine> mirror_;
    std::map<std::string, std::set<Addr>> mshrLive_; ///< per-agent live misses

    std::vector<std::string> violations_;
    std::uint64_t suppressed_ = 0;
    std::uint64_t transitions_ = 0;
    std::uint64_t storesMirrored_ = 0;
    std::uint64_t activity_ = 0; ///< bumped by every hook (progress signal)
    std::uint64_t lastActivity_ = 0;
    bool progressArmed_ = false;
    std::size_t inFlight_ = 0; ///< network messages sent but not delivered
};

} // namespace dscoh
