#include "check/coherence_checker.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "mem/backing_store.h"

namespace dscoh {

namespace {

std::string hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

/// May this state's copy coexist with an exclusive (MM/M) copy elsewhere?
/// IS_D/IM_D hold no data yet; II_A already supplied its data to the new
/// owner (so its stale buffer is dead weight, not a protocol copy).
bool conflictsWithExclusive(CohState s)
{
    switch (s) {
    case CohState::kS:
    case CohState::kO:
    case CohState::kM:
    case CohState::kMM:
    case CohState::kSM_D:
    case CohState::kMI_A:
    case CohState::kOI_A:
        return true;
    default:
        return false;
    }
}

/// Does this state's copy carry protocol-valid (readable or
/// writeback-pending) data that must agree with the ground truth?
bool holdsValidData(CohState s)
{
    return canRead(s) || s == CohState::kMI_A || s == CohState::kOI_A;
}

/// Is this agent the line's current owner for value purposes (the copy
/// memory will eventually reflect)?
bool ownsValue(CohState s)
{
    return isOwner(s) || s == CohState::kMI_A || s == CohState::kOI_A;
}

} // namespace

CoherenceChecker::CoherenceChecker() : CoherenceChecker(Params{}) {}

CoherenceChecker::CoherenceChecker(const Params& params) : params_(params) {}

void CoherenceChecker::addAgent(AgentView view)
{
    agents_.push_back(std::move(view));
}

void CoherenceChecker::setHomeProbe(std::function<std::size_t()> busyLines)
{
    homeBusyLines_ = std::move(busyLines);
}

void CoherenceChecker::setBackingStore(const BackingStore* store)
{
    store_ = store;
}

void CoherenceChecker::record(const char* category, const std::string& what,
                              Tick now)
{
    if (violations_.size() >= params_.maxViolations) {
        ++suppressed_;
        return;
    }
    std::string v;
    v.reserve(what.size() + 32);
    v += '[';
    v += category;
    v += "] tick ";
    v += std::to_string(now);
    v += ": ";
    v += what;
    violations_.push_back(std::move(v));
}

void CoherenceChecker::onTransition(const std::string& agent, Addr base,
                                    CohState from, CohEvent event, CohState to,
                                    Tick now)
{
    static_cast<void>(agent);
    static_cast<void>(from);
    static_cast<void>(event);
    ++transitions_;
    ++activity_;
    // Transitions that end in I or a dataless transient cannot create a new
    // violation on their own, but the cheap full-line re-check keeps the
    // reporting immediate, so run it unconditionally.
    checkLine(base, to_string(event), now);
    static_cast<void>(to);
}

void CoherenceChecker::onMshrAllocate(const std::string& agent, Addr base,
                                      Tick now)
{
    ++activity_;
    auto& live = mshrLive_[agent];
    if (!live.insert(lineAlign(base)).second)
        record("mshr", agent + " double-allocated an MSHR for line " +
                           hexAddr(lineAlign(base)),
               now);
}

void CoherenceChecker::onMshrRelease(const std::string& agent, Addr base,
                                     Tick now)
{
    ++activity_;
    auto& live = mshrLive_[agent];
    if (live.erase(lineAlign(base)) == 0)
        record("mshr", agent + " released an MSHR it never allocated for line " +
                           hexAddr(lineAlign(base)),
               now);
}

void CoherenceChecker::onStoreApplied(Addr base, const DataBlock& data,
                                      const ByteMask& mask)
{
    ++activity_;
    if (!params_.trackData)
        return;
    ++storesMirrored_;
    MirrorLine& line = mirror_[lineAlign(base)];
    mask.apply(line.data, data);
    line.valid.merge(mask);
}

void CoherenceChecker::onLeaseGrant(const std::string& agent, Addr base,
                                    Tick expiry, Tick now)
{
    ++activity_;
    if (expiry <= now)
        record("lease", agent + " granted an already-expired lease on line " +
                            hexAddr(base) + " (expiry tick " +
                            std::to_string(expiry) + ")",
               now);
    for (const AgentView& v : agents_) {
        if (v.name != agent)
            continue;
        const CohState s = v.stateOf(base);
        if (!isOwner(s))
            record("lease", agent + " granted a lease on line " +
                                hexAddr(base) + " it does not own (state " +
                                to_string(s) + ")",
                   now);
        break;
    }
}

void CoherenceChecker::onLeaseServe(const std::string& agent, Addr base,
                                    const DataBlock& data, Tick expiry,
                                    Tick now)
{
    ++activity_;
    if (now >= expiry) {
        record("lease", agent + " served line " + hexAddr(base) +
                            " from a lease that expired at tick " +
                            std::to_string(expiry),
               now);
        return;
    }
    if (!params_.trackData)
        return;
    const auto it = mirror_.find(lineAlign(base));
    if (it == mirror_.end())
        return;
    for (std::uint32_t i = 0; i < kLineSize; ++i) {
        if (!it->second.valid.test(i))
            continue;
        if (data.read(i, 1) != it->second.data.read(i, 1)) {
            record("lease",
                   agent + " served stale leased data for line " +
                       hexAddr(base) + ": byte " + std::to_string(i) +
                       " is " + std::to_string(data.read(i, 1)) +
                       ", ground truth " +
                       std::to_string(it->second.data.read(i, 1)) +
                       " (lease expiry tick " + std::to_string(expiry) + ")",
                   now);
            break;
        }
    }
}

void CoherenceChecker::reportExternal(const std::string& agent,
                                      const std::string& what, Tick now)
{
    ++activity_;
    record("shard", agent + ": " + what, now);
}

void CoherenceChecker::checkLine(Addr base, const char* when, Tick now)
{
    struct Copy {
        const AgentView* view;
        CohState state;
        const DataBlock* data;
    };
    std::vector<Copy> copies;
    copies.reserve(agents_.size());
    int owners = 0;
    int exclusives = 0;
    for (const AgentView& v : agents_) {
        const CohState s = v.stateOf(base);
        if (s == CohState::kI)
            continue;
        copies.push_back(Copy{&v, s, v.dataOf(base)});
        if (ownsValue(s))
            ++owners;
        if (s == CohState::kM || s == CohState::kMM)
            ++exclusives;
    }
    if (copies.empty())
        return;

    const auto roster = [&copies]() {
        std::string r;
        for (const Copy& c : copies) {
            if (!r.empty())
                r += ", ";
            r += c.view->name + ":" + to_string(c.state);
        }
        return r;
    };

    if (owners > 1)
        record("single-writer", "line " + hexAddr(base) + " has " +
                                    std::to_string(owners) + " owners (" +
                                    roster() + ") after " + when,
               now);
    if (exclusives > 0 && copies.size() > 1) {
        for (const Copy& c : copies) {
            if (c.state != CohState::kM && c.state != CohState::kMM &&
                conflictsWithExclusive(c.state)) {
                record("single-writer",
                       "line " + hexAddr(base) +
                           " exclusive elsewhere but also held as " +
                           std::string(to_string(c.state)) + " at " +
                           c.view->name + " (" + roster() + ") after " + when,
                       now);
                break;
            }
        }
    }

    if (!params_.trackData)
        return;
    const auto it = mirror_.find(base);
    if (it == mirror_.end())
        return;
    const MirrorLine& truth = it->second;
    for (const Copy& c : copies) {
        if (!holdsValidData(c.state) || c.data == nullptr)
            continue;
        for (std::uint32_t i = 0; i < kLineSize; ++i) {
            if (!truth.valid.test(i))
                continue;
            if (c.data->read(i, 1) != truth.data.read(i, 1)) {
                record("data-value",
                       "line " + hexAddr(base) + " at " + c.view->name + " (" +
                           to_string(c.state) + ") byte " + std::to_string(i) +
                           " is " + std::to_string(c.data->read(i, 1)) +
                           ", ground truth " +
                           std::to_string(truth.data.read(i, 1)) + " after " +
                           when,
                       now);
                break;
            }
        }
    }
}

bool CoherenceChecker::outstandingWork(std::string* detail) const
{
    bool any = false;
    std::ostringstream os;
    for (const AgentView& v : agents_) {
        const std::size_t mshrs = v.mshrInFlight();
        const std::size_t wbs = v.writebackEntries();
        const std::size_t blocked = v.blockedThunks();
        if (mshrs + wbs + blocked == 0)
            continue;
        any = true;
        os << ' ' << v.name << "{mshr=" << mshrs << ",wb=" << wbs
           << ",blocked=" << blocked << "}";
    }
    if (homeBusyLines_) {
        if (const std::size_t busy = homeBusyLines_()) {
            any = true;
            os << " home{busy=" << busy << "}";
        }
    }
    if (inFlight_ > 0) {
        any = true;
        os << " net{inflight=" << inFlight_ << "}";
    }
    if (detail != nullptr)
        *detail = os.str();
    return any;
}

bool CoherenceChecker::checkProgress(Tick now)
{
    std::string detail;
    const bool outstanding = outstandingWork(&detail);
    const bool stalled =
        progressArmed_ && outstanding && activity_ == lastActivity_;
    if (stalled)
        record("deadlock",
               "no protocol activity across a whole event-queue slice while "
               "work is outstanding:" +
                   detail,
               now);
    lastActivity_ = activity_;
    progressArmed_ = true;
    return !stalled;
}

const DataBlock* CoherenceChecker::globalLineValue(Addr base,
                                                   std::string* source) const
{
    for (const AgentView& v : agents_) {
        const CohState s = v.stateOf(base);
        if (!ownsValue(s))
            continue;
        if (const DataBlock* d = v.dataOf(base)) {
            if (source != nullptr)
                *source = v.name + ":" + to_string(s);
            return d;
        }
    }
    if (store_ == nullptr)
        return nullptr;
    if (source != nullptr)
        *source = "memory";
    return &store_->readLine(base);
}

void CoherenceChecker::finalize(Tick now)
{
    // 1. Stuck resources: a drained queue with any of these alive means the
    //    protocol (or the program driving it) wedged.
    std::string detail;
    if (outstandingWork(&detail))
        record("stuck", "resources still busy after the queue drained:" + detail,
               now);
    for (const auto& [agent, live] : mshrLive_) {
        if (live.empty())
            continue;
        std::string lines;
        for (const Addr a : live) {
            if (!lines.empty())
                lines += ", ";
            lines += hexAddr(a);
        }
        record("mshr-leak", agent + " never released MSHRs for: " + lines, now);
    }

    // 2. Full sweep: every line any agent still holds must satisfy the
    //    protocol invariants, and no transient state may survive quiesce.
    std::set<Addr> bases;
    for (const AgentView& v : agents_) {
        v.forEachLine([&bases, &v, &now, this](Addr base, CohState s,
                                               const DataBlock&) {
            bases.insert(base);
            if (!isStable(s))
                record("stuck",
                       "line " + hexAddr(base) + " still " + to_string(s) +
                           " at " + v.name + " in a quiesced system",
                       now);
        });
    }
    for (const Addr base : bases)
        checkLine(base, "finalize", now);

    // 3. Ground truth: every byte ever stored through a coherent agent must
    //    be what the line's owner (or memory, when unowned) now holds.
    if (params_.trackData) {
        for (const auto& [base, truth] : mirror_) {
            std::string source;
            const DataBlock* value = globalLineValue(base, &source);
            if (value == nullptr)
                continue;
            for (std::uint32_t i = 0; i < kLineSize; ++i) {
                if (!truth.valid.test(i))
                    continue;
                if (value->read(i, 1) != truth.data.read(i, 1)) {
                    record("data-value",
                           "line " + hexAddr(base) + " final value (" + source +
                               ") byte " + std::to_string(i) + " is " +
                               std::to_string(value->read(i, 1)) +
                               ", ground truth " +
                               std::to_string(truth.data.read(i, 1)),
                           now);
                    break;
                }
            }
        }
    }
}

void CoherenceChecker::dump(std::ostream& os) const
{
    os << "CoherenceChecker: " << transitions_ << " transitions checked, "
       << storesMirrored_ << " stores mirrored, " << mirror_.size()
       << " lines tracked, " << violations_.size() << " violations";
    if (suppressed_ > 0)
        os << " (+" << suppressed_ << " suppressed)";
    os << "\n";
    for (const std::string& v : violations_)
        os << "  " << v << "\n";
}

void CoherenceChecker::snapSave(snap::SnapWriter& w) const
{
    if (inFlight_ != 0)
        throw snap::SnapError("checker: " + std::to_string(inFlight_) +
                              " network messages in flight at snapshot");
    for (const auto& [agent, live] : mshrLive_)
        if (!live.empty())
            throw snap::SnapError("checker: agent '" + agent +
                                  "' has live MSHR entries at snapshot");
    std::vector<Addr> bases;
    bases.reserve(mirror_.size());
    for (const auto& [base, line] : mirror_)
        bases.push_back(base);
    std::sort(bases.begin(), bases.end());
    w.u64(bases.size());
    for (const Addr base : bases) {
        const MirrorLine& line = mirror_.at(base);
        w.u64(base);
        w.bytes(line.data.data(), kLineSize);
        for (std::size_t i = 0; i < ByteMask::kWords; ++i)
            w.u64(line.valid.word(i));
    }
    w.u64(violations_.size());
    for (const std::string& v : violations_)
        w.str(v);
    w.u64(suppressed_);
    w.u64(transitions_);
    w.u64(storesMirrored_);
    w.u64(activity_);
    w.u64(lastActivity_);
    w.u8(progressArmed_ ? 1 : 0);
}

void CoherenceChecker::snapRestore(snap::SnapReader& r)
{
    mirror_.clear();
    mshrLive_.clear();
    const std::uint64_t lines = r.u64();
    for (std::uint64_t i = 0; i < lines; ++i) {
        const Addr base = r.u64();
        MirrorLine& line = mirror_[base];
        r.bytes(line.data.data(), kLineSize);
        for (std::size_t word = 0; word < ByteMask::kWords; ++word)
            line.valid.setWord(word, r.u64());
    }
    violations_.clear();
    const std::uint64_t nViolations = r.u64();
    for (std::uint64_t i = 0; i < nViolations; ++i)
        violations_.push_back(r.str());
    suppressed_ = r.u64();
    transitions_ = r.u64();
    storesMirrored_ = r.u64();
    activity_ = r.u64();
    lastActivity_ = r.u64();
    progressArmed_ = r.u8() != 0;
    inFlight_ = 0;
}

} // namespace dscoh
