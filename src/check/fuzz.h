// Deterministic protocol fuzzer.
//
// A FuzzScenario is a small, fully serializable description of one
// randomized producer/consumer experiment: array layout, produce/consume
// phases, cache geometry, network latencies, an optional event-queue
// tie-break perturbation seed and an optional injected protocol bug.
// generateScenario(seed) expands a seed into a scenario; runScenario() is a
// pure function of (scenario, mode) — same inputs, bit-identical simulation
// — executed under the CoherenceChecker oracle with a no-progress watchdog.
// runDifferential() runs the same scenario under CCSM and direct store and
// compares the placement-independent output array word-by-word.
//
// Failing scenarios shrink: shrinkScenario() greedily applies
// scenario-simplifying transformations (drop arrays, collapse phases,
// halve footprints, disable perturbations) while the caller-supplied
// predicate keeps failing, and the result round-trips through
// serializeScenario()/parseScenario() as a --replay file.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "coherence/protocol.h"
#include "core/config.h"
#include "sim/types.h"

namespace dscoh {

struct FuzzArray {
    std::uint32_t words = 64;  ///< 4-byte words
    bool gpuShared = true;     ///< kernel-referenced (DS region candidate)
    bool cpuPretouch = false;  ///< CPU caches the first lines before phase 0
};

struct FuzzScenario {
    std::uint64_t seed = 0;

    // Machine shape.
    std::uint32_t slices = 4;
    std::uint32_t sms = 2;
    std::uint32_t cpuL2KB = 2048;
    std::uint32_t gpuL2KB = 2048;
    std::uint32_t mshrs = 16;       ///< CPU agent; slices get 4x
    std::uint32_t wbEntries = 32;
    std::uint64_t cohHop = 40;      ///< coherence-vnet hop latency
    std::uint64_t dsHop = 40;       ///< dedicated DS network hop latency
    std::uint64_t gpuHop = 12;      ///< SM<->slice network hop latency
    bool directory = false;         ///< directory home instead of Hammer

    // Program shape.
    std::uint32_t phases = 1; ///< produce -> kernel -> readback rounds
    std::uint32_t blocks = 4;
    std::uint32_t threadsPerBlock = 64;
    std::uint32_t opsPerThread = 3;
    std::uint64_t dsMinWords = 0; ///< hybrid §III-H threshold, in words

    // Multi-GPU scale-out. All-default = the original single-GPU machine;
    // the scenario file then carries no multi-GPU block, keeping
    // pre-multi-GPU corpora byte-identical.
    std::uint32_t gpus = 1;        ///< GPUs sharing the DS region
    std::uint32_t shardPolicy = 0; ///< ShardPolicy enum value (page/line/range)
    std::uint64_t tsLeaseTicks = 0; ///< timestamp fast-path lease (0 = off)
    std::uint32_t dsTopology = 0;  ///< DsTopology enum value (crossbar/ring)

    bool multiGpu() const
    {
        return gpus > 1 || shardPolicy != 0 || tsLeaseTicks != 0 ||
               dsTopology != 0;
    }

    // Perturbation / bug injection.
    std::uint64_t tieBreakSeed = 0; ///< EventQueue::setTieBreakShuffle
    InjectedBug bug = InjectedBug::kNone;

    // Fault injection on the direct-store network plus the delivery
    // hardening that must absorb it (PROTOCOL.md "Delivery hardening").
    // All zero = no faults, hardening off — the scenario file then carries
    // no fault block, keeping pre-fault corpora byte-identical.
    std::uint32_t faultDropPpm = 0;
    std::uint32_t faultDupPpm = 0;
    std::uint32_t faultCorruptPpm = 0;
    std::uint32_t faultDelayPpm = 0;
    std::uint64_t faultDelayTicks = 200;
    std::uint64_t faultLinkDownFrom = 0;
    std::uint64_t faultLinkDownUntil = 0; ///< 0 = no outage
    std::uint64_t faultSeed = 1;
    std::uint64_t dsAckTimeout = 0; ///< 0 = delivery hardening off
    std::uint32_t dsMaxRetries = 4;

    bool faultsEnabled() const
    {
        return faultDropPpm != 0 || faultDupPpm != 0 || faultCorruptPpm != 0 ||
               faultDelayPpm != 0 || faultLinkDownUntil != 0;
    }

    std::vector<FuzzArray> arrays; ///< last array is the kernel output
};

/// Expands @p seed into a randomized scenario (pure function of the seed).
FuzzScenario generateScenario(std::uint64_t seed);

/// Like generateScenario(), but layers randomized DS-network faults (drops,
/// duplicates, corruption, delays, an optional link outage) on top and arms
/// the delivery hardening (ACK/timeout/retransmit) that must absorb them.
/// Always routes at least one array through the DS region so the faults
/// have traffic to hit.
FuzzScenario generateFaultScenario(std::uint64_t seed);

struct FuzzOptions {
    bool oracle = true;          ///< attach the CoherenceChecker
    Tick maxTicks = 50'000'000;  ///< hang cut-off for the sliced run loop
    std::size_t maxViolations = 64;

    /// Drain the event queue completely between rounds (produce -> kernel
    /// -> readback) instead of chaining every round in one event cascade.
    /// Round boundaries become safe points, enabling the two fields below.
    /// Phased and chained runs are both deterministic but tick-shifted
    /// relative to each other, so compare like with like.
    bool phased = false;
    /// With phased: snapshot (System::snapshotSave) after this many rounds
    /// completed (1-based). 0 = never.
    std::uint32_t snapshotAfterRound = 0;
    std::string snapshotPath;
    /// With phased: restore this snapshot (same scenario/mode/options) and
    /// run only the remaining rounds. The oracle's shadow state travels
    /// with the snapshot, so a restored run keeps full checking history.
    std::string restorePath;

    /// When non-empty, attach a TxnProfiler to the run and atomically
    /// publish its dscoh-txnprof-v1 JSON here afterwards (feed the file to
    /// txn_report). The profiler state rides in snapshots, so a
    /// snapshot/restore pair reproduces the uninterrupted run's profile
    /// byte for byte.
    std::string txnProfilePath;
};

struct FuzzReport {
    bool completed = false; ///< all phases ran and the queue drained in time
    Tick ticks = 0;
    std::uint64_t checkFailures = 0; ///< ldCheck/cpuLoadCheck mismatches
    std::vector<std::string> violations; ///< oracle + quiesced-state sweeps
    /// Final 4-byte values of the output array (placement-independent, so
    /// directly comparable across modes).
    std::vector<std::uint32_t> outWords;

    bool failed() const
    {
        return !completed || checkFailures != 0 || !violations.empty();
    }
};

/// Runs @p scenario under @p mode. Deterministic: equal (scenario, mode,
/// options) means an equal report.
FuzzReport runScenario(const FuzzScenario& scenario, CoherenceMode mode,
                       const FuzzOptions& options = {});

struct DifferentialReport {
    FuzzReport ccsm;
    FuzzReport directStore;
    /// Output-array words that differ between the two modes' final memory.
    std::vector<std::uint32_t> divergentWords;

    bool failed() const
    {
        return ccsm.failed() || directStore.failed() ||
               !divergentWords.empty();
    }
};

/// Runs @p scenario under kCcsm and kDirectStore and compares the final
/// output array across modes. With options.txnProfilePath set, the two
/// runs' profiles land in "<path>.ccsm" and "<path>.ds".
DifferentialReport runDifferential(const FuzzScenario& scenario,
                                   const FuzzOptions& options = {});

/// Writes the replayable text form (dscoh-fuzz-scenario-v1).
void serializeScenario(const FuzzScenario& scenario, std::ostream& os);
std::string serializeScenario(const FuzzScenario& scenario);

/// Parses the text form back. Returns false (and fills @p error) on
/// malformed input; accepts exactly what serializeScenario writes.
bool parseScenario(const std::string& text, FuzzScenario& out,
                   std::string& error);

/// Greedily minimizes @p failing while @p stillFails holds, bounded by
/// @p maxAttempts candidate evaluations. Returns the smallest reproducer
/// found (at worst the input itself).
FuzzScenario
shrinkScenario(const FuzzScenario& failing,
               const std::function<bool(const FuzzScenario&)>& stillFails,
               std::size_t maxAttempts = 128);

/// The SystemConfig a scenario maps to (exposed so tests can reuse the
/// exact machine the fuzzer builds).
SystemConfig scenarioConfig(const FuzzScenario& scenario, CoherenceMode mode);

} // namespace dscoh
