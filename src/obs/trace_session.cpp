#include "obs/trace_session.h"

namespace dscoh {

const char* to_string(TraceCat c)
{
    switch (c) {
    case TraceCat::kCoherence: return "coherence";
    case TraceCat::kNet: return "net";
    case TraceCat::kDram: return "dram";
    case TraceCat::kMshr: return "mshr";
    case TraceCat::kKernel: return "kernel";
    case TraceCat::kTxn: return "txn";
    }
    return "?";
}

bool parseTraceFilter(const std::string& text, std::uint32_t& mask,
                      std::string& error)
{
    if (text.empty()) {
        error = "trace filter is empty";
        return false;
    }
    std::uint32_t out = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(start, comma - start);
        start = comma + 1;
        if (item.empty()) {
            error = "trace filter '" + text + "' has an empty category";
            return false;
        }
        bool known = false;
        for (std::size_t c = 0; c < kTraceCatCount; ++c) {
            if (item == to_string(static_cast<TraceCat>(c))) {
                out |= 1u << c;
                known = true;
                break;
            }
        }
        if (!known) {
            error = "unknown trace category '" + item +
                    "' (expected coherence|net|dram|mshr|kernel|txn)";
            return false;
        }
    }
    if (out == 0) {
        error = "trace filter '" + text + "' selects no category";
        return false;
    }
    mask = out;
    return true;
}

TraceSession::TraceEvent& TraceSession::push(TraceCat cat, char ph,
                                             const std::string& track,
                                             const char* name, Tick ts,
                                             Tick dur)
{
    TraceEvent e;
    e.name = name;
    e.ts = ts;
    e.dur = dur;
    e.track = trackId(track);
    e.cat = cat;
    e.ph = ph;
    events_.push_back(e);
    return events_.back();
}

std::uint32_t TraceSession::trackId(const std::string& name)
{
    const auto it = trackIds_.find(name);
    if (it != trackIds_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(trackNames_.size());
    trackNames_.push_back(name);
    trackIds_.emplace(name, id);
    return id;
}

void TraceSession::writeJson(std::ostream& os) const
{
    os << "{\"traceEvents\": [\n";
    bool first = true;
    const auto sep = [&os, &first] {
        if (!first)
            os << ",\n";
        first = false;
    };
    sep();
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"args\": {\"name\": \"dscoh\"}}";
    for (std::size_t t = 0; t < trackNames_.size(); ++t) {
        sep();
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
              "\"tid\": " << t << ", \"args\": {\"name\": \""
           << trackNames_[t] << "\"}}";
    }
    for (const TraceEvent& e : events_) {
        sep();
        os << "{\"name\": \"" << e.name << "\", \"cat\": \""
           << to_string(e.cat) << "\", \"ph\": \"" << e.ph
           << "\", \"pid\": 0, \"tid\": " << e.track << ", \"ts\": " << e.ts;
        if (e.ph == 'X')
            os << ", \"dur\": " << e.dur;
        if (e.ph == 'i')
            os << ", \"s\": \"t\"";
        if (e.isFlow) {
            os << ", \"id\": " << e.value;
            // Bind the finish point to the enclosing slice's end, the
            // convention Perfetto expects for terminating arrows.
            if (e.ph == 'f')
                os << ", \"bp\": \"e\"";
        }
        const bool hasArgs =
            e.hasAddr || e.from != nullptr || e.valueKey != nullptr;
        if (hasArgs) {
            os << ", \"args\": {";
            bool argFirst = true;
            const auto argSep = [&os, &argFirst] {
                if (!argFirst)
                    os << ", ";
                argFirst = false;
            };
            if (e.hasAddr) {
                argSep();
                os << "\"addr\": \"0x" << std::hex << e.addr << std::dec
                   << "\"";
            }
            if (e.from != nullptr) {
                argSep();
                os << "\"from\": \"" << e.from << "\", \"to\": \"" << e.to
                   << "\"";
            }
            if (e.valueKey != nullptr) {
                argSep();
                os << "\"" << e.valueKey << "\": " << e.value;
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

} // namespace dscoh
