// Structured event tracing for one simulation.
//
// A TraceSession records typed spans and instants — protocol transitions,
// network messages, DRAM accesses, MSHR lifetimes, kernel launches — and
// serializes them as Chrome trace-event JSON, viewable in Perfetto or
// chrome://tracing. Each simulated component appears as its own named track.
//
// The session is owned by the SimContext (see sim/sim_context.h): tracing is
// strictly per-simulation, so concurrent runs under the ExperimentEngine
// never share trace state. When no session is attached — the common case —
// every hot-path hook reduces to one pointer load and branch; no event
// storage is touched and nothing allocates.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.h"

namespace dscoh {

/// Event categories. Each maps to a Chrome trace-event "cat" string and can
/// be enabled independently (--trace-filter).
enum class TraceCat : std::uint8_t {
    kCoherence, ///< protocol transitions (state, event) -> state
    kNet,       ///< messages on every network, incl. the dedicated DS net
    kDram,      ///< DRAM channel accesses
    kMshr,      ///< MSHR allocate -> release lifetimes
    kKernel,    ///< kernel launch / retire
    kTxn,       ///< transaction-span flow arrows (TxnProfiler)
};
constexpr std::size_t kTraceCatCount = 6;

const char* to_string(TraceCat c);

constexpr std::uint32_t traceCatBit(TraceCat c)
{
    return 1u << static_cast<std::uint32_t>(c);
}

constexpr std::uint32_t kAllTraceCats =
    (1u << kTraceCatCount) - 1;

/// Parses a comma-separated category list ("net,dram") into a mask.
/// Strict: an empty list, empty element or unknown category name fails with
/// a deterministic message in @p error.
bool parseTraceFilter(const std::string& text, std::uint32_t& mask,
                      std::string& error);

class TraceSession {
public:
    /// Records only categories present in @p catMask.
    explicit TraceSession(std::uint32_t catMask = kAllTraceCats)
        : mask_(catMask)
    {
    }

    TraceSession(const TraceSession&) = delete;
    TraceSession& operator=(const TraceSession&) = delete;

    bool enabled(TraceCat c) const { return (mask_ & traceCatBit(c)) != 0; }
    std::uint32_t categoryMask() const { return mask_; }

    /// An instantaneous event on @p track at @p ts. @p name (and the
    /// optional from/to/valueKey strings passed to the overloads below) must
    /// be string literals or otherwise outlive the session: events store the
    /// pointers, not copies, to keep recording allocation-light.
    void instant(TraceCat cat, const std::string& track, const char* name,
                 Tick ts)
    {
        push(cat, 'i', track, name, ts, 0);
    }

    void instant(TraceCat cat, const std::string& track, const char* name,
                 Tick ts, Addr addr)
    {
        TraceEvent& e = push(cat, 'i', track, name, ts, 0);
        e.addr = addr;
        e.hasAddr = true;
    }

    /// A protocol transition: an instant whose args carry from/to states.
    void transition(const std::string& track, const char* eventName,
                    const char* from, const char* to, Tick ts, Addr addr)
    {
        TraceEvent& e = push(TraceCat::kCoherence, 'i', track, eventName, ts, 0);
        e.addr = addr;
        e.hasAddr = true;
        e.from = from;
        e.to = to;
    }

    /// A completed span [start, end] on @p track.
    void span(TraceCat cat, const std::string& track, const char* name,
              Tick start, Tick end)
    {
        push(cat, 'X', track, name, start, end - start);
    }

    void span(TraceCat cat, const std::string& track, const char* name,
              Tick start, Tick end, Addr addr)
    {
        TraceEvent& e = push(cat, 'X', track, name, start, end - start);
        e.addr = addr;
        e.hasAddr = true;
    }

    /// Span with one extra numeric argument (e.g. "blocks": 64).
    void span(TraceCat cat, const std::string& track, const char* name,
              Tick start, Tick end, const char* valueKey, std::uint64_t value)
    {
        TraceEvent& e = push(cat, 'X', track, name, start, end - start);
        e.valueKey = valueKey;
        e.value = value;
    }

    /// One point of a flow-event arrow chain: @p ph is 's' (start), 't'
    /// (step) or 'f' (finish), and @p id binds the points of one flow
    /// together (the TxnProfiler passes its span id). Rendered by Perfetto
    /// as arrows following the transaction across component tracks.
    void flow(TraceCat cat, const std::string& track, const char* name,
              Tick ts, char ph, std::uint64_t id)
    {
        TraceEvent& e = push(cat, ph, track, name, ts, 0);
        e.value = id;
        e.isFlow = true;
    }

    std::size_t eventCount() const { return events_.size(); }

    /// Writes the whole session as a Chrome trace-event JSON object:
    /// {"traceEvents": [...]} with one thread_name metadata record per
    /// track. Valid JSON; loadable by Perfetto and chrome://tracing.
    void writeJson(std::ostream& os) const;

private:
    struct TraceEvent {
        const char* name = "";
        const char* from = nullptr;     ///< optional "from" arg
        const char* to = nullptr;       ///< optional "to" arg
        const char* valueKey = nullptr; ///< optional numeric arg key
        std::uint64_t value = 0;
        Tick ts = 0;
        Tick dur = 0;
        Addr addr = 0;
        std::uint32_t track = 0;
        TraceCat cat = TraceCat::kCoherence;
        char ph = 'i';
        bool hasAddr = false;
        bool isFlow = false; ///< value is the flow id, not an arg
    };

    TraceEvent& push(TraceCat cat, char ph, const std::string& track,
                     const char* name, Tick ts, Tick dur);
    std::uint32_t trackId(const std::string& name);

    std::uint32_t mask_;
    std::vector<TraceEvent> events_;
    std::vector<std::string> trackNames_; ///< index == tid
    std::unordered_map<std::string, std::uint32_t> trackIds_;
};

} // namespace dscoh
