#include "obs/json_lite.h"

#include <cctype>
#include <cstdlib>

namespace dscoh::jsonlite {

namespace {

class Parser {
public:
    Parser(const std::string& text, std::string& error)
        : text_(text), error_(error)
    {
    }

    ValuePtr run()
    {
        ValuePtr v = parseValue();
        if (v == nullptr)
            return nullptr;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            return nullptr;
        }
        return v;
    }

private:
    void fail(const std::string& what)
    {
        if (error_.empty())
            error_ = what + " at offset " + std::to_string(pos_);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    ValuePtr parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return nullptr;
        }
        switch (text_[pos_]) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return parseString();
        case 't':
        case 'f': return parseBool();
        case 'n': return parseNull();
        default: return parseNumber();
        }
    }

    bool literal(const char* word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0) {
            fail(std::string("bad literal (expected '") + word + "')");
            return false;
        }
        pos_ += n;
        return true;
    }

    ValuePtr parseBool()
    {
        auto v = std::make_shared<Value>();
        v->kind = Kind::kBool;
        if (text_[pos_] == 't') {
            if (!literal("true"))
                return nullptr;
            v->boolean = true;
        } else {
            if (!literal("false"))
                return nullptr;
            v->boolean = false;
        }
        return v;
    }

    ValuePtr parseNull()
    {
        if (!literal("null"))
            return nullptr;
        auto v = std::make_shared<Value>();
        v->kind = Kind::kNull;
        return v;
    }

    ValuePtr parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) {
            fail("expected a value");
            return nullptr;
        }
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            pos_ = start;
            fail("malformed number '" + token + "'");
            return nullptr;
        }
        auto v = std::make_shared<Value>();
        v->kind = Kind::kNumber;
        v->number = d;
        return v;
    }

    ValuePtr parseString()
    {
        ++pos_; // opening quote
        auto v = std::make_shared<Value>();
        v->kind = Kind::kString;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return nullptr;
            }
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v->string += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
                return nullptr;
            }
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': v->string += '"'; break;
            case '\\': v->string += '\\'; break;
            case '/': v->string += '/'; break;
            case 'b': v->string += '\b'; break;
            case 'f': v->string += '\f'; break;
            case 'n': v->string += '\n'; break;
            case 'r': v->string += '\r'; break;
            case 't': v->string += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return nullptr;
                }
                const std::string hex = text_.substr(pos_, 4);
                char* end = nullptr;
                const long code = std::strtol(hex.c_str(), &end, 16);
                if (end == nullptr || *end != '\0') {
                    fail("bad \\u escape '" + hex + "'");
                    return nullptr;
                }
                pos_ += 4;
                // Sufficient for this codebase's output: escaped control
                // characters are all < 0x80, so one byte round-trips.
                v->string += static_cast<char>(code);
                break;
            }
            default:
                fail(std::string("unknown escape '\\") + esc + "'");
                return nullptr;
            }
        }
    }

    ValuePtr parseArray()
    {
        ++pos_; // '['
        auto v = std::make_shared<Value>();
        v->kind = Kind::kArray;
        if (consume(']'))
            return v;
        while (true) {
            ValuePtr elem = parseValue();
            if (elem == nullptr)
                return nullptr;
            v->array.push_back(std::move(elem));
            if (consume(']'))
                return v;
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                return nullptr;
            }
        }
    }

    ValuePtr parseObject()
    {
        ++pos_; // '{'
        auto v = std::make_shared<Value>();
        v->kind = Kind::kObject;
        if (consume('}'))
            return v;
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected a string key in object");
                return nullptr;
            }
            ValuePtr key = parseString();
            if (key == nullptr)
                return nullptr;
            if (!consume(':')) {
                fail("expected ':' after object key");
                return nullptr;
            }
            ValuePtr val = parseValue();
            if (val == nullptr)
                return nullptr;
            v->object[key->string] = std::move(val);
            if (consume('}'))
                return v;
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                return nullptr;
            }
        }
    }

    const std::string& text_;
    std::string& error_;
    std::size_t pos_ = 0;
};

} // namespace

ValuePtr parse(const std::string& text, std::string& error)
{
    error.clear();
    Parser p(text, error);
    ValuePtr v = p.run();
    if (v == nullptr && error.empty())
        error = "parse failed";
    return v;
}

} // namespace dscoh::jsonlite
