#include "obs/txn_profiler.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/trace_session.h"
#include "snap/serializer.h"

namespace dscoh {

const char* to_string(TxnKind k)
{
    switch (k) {
    case TxnKind::kGetS: return "GetS";
    case TxnKind::kGetX: return "GetX";
    case TxnKind::kUpgrade: return "Upgrade";
    case TxnKind::kWriteback: return "Writeback";
    case TxnKind::kDsPush: return "DsPush";
    case TxnKind::kUcRead: return "UcRead";
    case TxnKind::kGpuLoad: return "GpuLoad";
    }
    return "?";
}

const char* to_string(TxnStage s)
{
    switch (s) {
    case TxnStage::kIssue: return "issue";
    case TxnStage::kBacklog: return "backlog";
    case TxnStage::kHomeArrive: return "home-arrive";
    case TxnStage::kHomeStart: return "home-start";
    case TxnStage::kSnpSend: return "snoop-send";
    case TxnStage::kSnpArrive: return "snoop-arrive";
    case TxnStage::kSupplySend: return "supply-send";
    case TxnStage::kSnpRespArrive: return "snoop-resp-arrive";
    case TxnStage::kDramIssue: return "dram-issue";
    case TxnStage::kDramDone: return "dram-done";
    case TxnStage::kDataSend: return "data-send";
    case TxnStage::kDataArrive: return "data-arrive";
    case TxnStage::kSliceArrive: return "slice-arrive";
    case TxnStage::kDramWrite: return "dram-write";
    case TxnStage::kMerge: return "merge";
    case TxnStage::kInstall: return "install";
    case TxnStage::kAckSend: return "ack-send";
    case TxnStage::kAckArrive: return "ack-arrive";
    case TxnStage::kRetry: return "retry";
    case TxnStage::kFallbackArm: return "fallback-arm";
    case TxnStage::kFallback: return "fallback";
    case TxnStage::kDone: return "done";
    }
    return "?";
}

const char* to_string(StageBucket b)
{
    switch (b) {
    case StageBucket::kQueue: return "queue";
    case StageBucket::kNetwork: return "network";
    case StageBucket::kDirectory: return "directory";
    case StageBucket::kDram: return "dram";
    case StageBucket::kSupply: return "supply";
    case StageBucket::kInstall: return "install";
    case StageBucket::kMerge: return "merge";
    case StageBucket::kRetry: return "retry";
    case StageBucket::kBackoff: return "backoff";
    }
    return "?";
}

TxnProfiler::TxnProfiler() : TxnProfiler(Params{}) {}

TxnProfiler::TxnProfiler(Params params) : params_(params)
{
    for (KindStats& k : kinds_)
        k.latency = Histogram(params_.histBucketTicks, params_.histBuckets);
}

std::uint32_t TxnProfiler::trackId(const std::string& name)
{
    const auto it = trackIds_.find(name);
    if (it != trackIds_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(trackNames_.size());
    trackNames_.push_back(name);
    trackIds_.emplace(name, id);
    return id;
}

std::uint64_t TxnProfiler::begin(TxnKind kind, Addr addr,
                                 const std::string& track, Tick now)
{
    const std::uint64_t id = nextSpan_++;
    ++begun_;
    SpanRecord& rec = open_[id];
    rec.id = id;
    rec.kind = kind;
    rec.addr = addr;
    rec.beginTick = now;
    rec.beginTrack = trackId(track);

    RegionStats& region = regionOf(addr);
    switch (kind) {
    case TxnKind::kDsPush: ++region.pushes; break;
    case TxnKind::kUcRead: ++region.ucReads; break;
    case TxnKind::kGetS:
    case TxnKind::kGetX:
    case TxnKind::kUpgrade: ++region.pulls; break;
    default: break;
    }
    return id;
}

void TxnProfiler::hop(std::uint64_t id, TxnStage stage,
                      const std::string& track, Tick now)
{
    if (id == 0)
        return;
    const auto it = open_.find(id);
    if (it == open_.end())
        return; // already closed (duplicate/replayed ack) — inert
    it->second.hops.push_back(Hop{stage, now, trackId(track)});
}

void TxnProfiler::end(std::uint64_t id, Tick now)
{
    if (id == 0)
        return;
    const auto it = open_.find(id);
    if (it == open_.end())
        return;
    SpanRecord rec = std::move(it->second);
    open_.erase(it);
    rec.endTick = now;
    const std::uint32_t doneTrack =
        rec.hops.empty() ? rec.beginTrack : rec.hops.back().track;
    rec.hops.push_back(Hop{TxnStage::kDone, now, doneTrack});

    KindStats& ks = kinds_[static_cast<std::size_t>(rec.kind)];
    ++ks.count;
    ks.latency.sample(rec.latency());
    Tick prev = rec.beginTick;
    for (const Hop& h : rec.hops) {
        const auto bucket = static_cast<std::size_t>(bucketOf(h.stage));
        ks.stageTicks[bucket] += h.at - prev;
        prev = h.at;
    }

    RegionStats& region = regionOf(rec.addr);
    ++region.completed;
    region.latencyTicks += rec.latency();
    if (rec.kind == TxnKind::kDsPush) {
        for (const Hop& h : rec.hops) {
            switch (h.stage) {
            case TxnStage::kInstall: ++region.installs; break;
            case TxnStage::kDramWrite: ++region.bypasses; break;
            case TxnStage::kMerge: ++region.merges; break;
            case TxnStage::kFallback: ++region.fallbacks; break;
            default: break;
            }
        }
    } else if (rec.kind == TxnKind::kUcRead) {
        for (const Hop& h : rec.hops)
            if (h.stage == TxnStage::kFallback)
                ++region.fallbacks;
    }

    ++completed_;
    emitFlow(rec);
    insertTopK(std::move(rec));
}

void TxnProfiler::noteGpuDemand(Addr addr, bool miss)
{
    RegionStats& region = regionOf(addr);
    ++region.gpuAccesses;
    if (miss)
        ++region.gpuMisses;
}

void TxnProfiler::insertTopK(SpanRecord&& rec)
{
    if (params_.topK == 0)
        return;
    const auto worse = [](const SpanRecord& a, const SpanRecord& b) {
        if (a.latency() != b.latency())
            return a.latency() > b.latency();
        return a.id < b.id;
    };
    if (slowest_.size() >= params_.topK && !worse(rec, slowest_.back()))
        return;
    const auto pos =
        std::lower_bound(slowest_.begin(), slowest_.end(), rec, worse);
    slowest_.insert(pos, std::move(rec));
    if (slowest_.size() > params_.topK)
        slowest_.pop_back();
}

void TxnProfiler::emitFlow(const SpanRecord& rec) const
{
    if (trace_ == nullptr || !trace_->enabled(TraceCat::kTxn))
        return;
    const char* name = to_string(rec.kind);
    trace_->flow(TraceCat::kTxn, trackNames_[rec.beginTrack], name,
                 rec.beginTick, 's', rec.id);
    for (std::size_t i = 0; i < rec.hops.size(); ++i) {
        const Hop& h = rec.hops[i];
        const char ph = i + 1 == rec.hops.size() ? 'f' : 't';
        trace_->flow(TraceCat::kTxn, trackNames_[h.track], name, h.at, ph,
                     rec.id);
    }
}

namespace {

/// Deterministic fixed-point double rendering for the JSON output.
std::string fmt1(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return buf;
}

} // namespace

void TxnProfiler::writeJson(std::ostream& os) const
{
    os << "{\n  \"schema\": \"dscoh-txnprof-v1\",\n";
    os << "  \"spans\": {\"begun\": " << begun_ << ", \"completed\": "
       << completed_ << ", \"open\": " << open_.size() << "},\n";

    os << "  \"kinds\": [\n";
    for (std::size_t k = 0; k < kTxnKindCount; ++k) {
        const KindStats& ks = kinds_[k];
        os << "    {\"kind\": \"" << to_string(static_cast<TxnKind>(k))
           << "\", \"count\": " << ks.count;
        os << ", \"latency\": {\"mean\": " << fmt1(ks.latency.mean())
           << ", \"min\": " << ks.latency.min()
           << ", \"max\": " << ks.latency.max()
           << ", \"p50\": " << fmt1(ks.latency.percentile(50.0))
           << ", \"p95\": " << fmt1(ks.latency.percentile(95.0))
           << ", \"p99\": " << fmt1(ks.latency.percentile(99.0)) << "}";
        os << ", \"stages\": {";
        for (std::size_t b = 0; b < kStageBucketCount; ++b)
            os << (b == 0 ? "" : ", ") << "\""
               << to_string(static_cast<StageBucket>(b))
               << "\": " << ks.stageTicks[b];
        os << "}}" << (k + 1 < kTxnKindCount ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"slowest\": [\n";
    for (std::size_t i = 0; i < slowest_.size(); ++i) {
        const SpanRecord& rec = slowest_[i];
        os << "    {\"id\": " << rec.id << ", \"kind\": \""
           << to_string(rec.kind) << "\", \"addr\": \"0x" << std::hex
           << rec.addr << std::dec << "\", \"begin\": " << rec.beginTick
           << ", \"end\": " << rec.endTick
           << ", \"latency\": " << rec.latency() << ", \"track\": \""
           << trackNames_[rec.beginTrack] << "\", \"hops\": [";
        for (std::size_t h = 0; h < rec.hops.size(); ++h) {
            const Hop& hop = rec.hops[h];
            os << (h == 0 ? "" : ", ") << "{\"stage\": \""
               << to_string(hop.stage) << "\", \"at\": " << hop.at
               << ", \"track\": \"" << trackNames_[hop.track] << "\"}";
        }
        os << "]}" << (i + 1 < slowest_.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"regionShift\": " << params_.regionShift << ",\n";
    os << "  \"regions\": [\n";
    std::size_t i = 0;
    for (const auto& [page, r] : regions_) {
        os << "    {\"page\": \"0x" << std::hex
           << (page << params_.regionShift) << std::dec << "\""
           << ", \"pushes\": " << r.pushes << ", \"installs\": " << r.installs
           << ", \"bypasses\": " << r.bypasses << ", \"merges\": " << r.merges
           << ", \"fallbacks\": " << r.fallbacks
           << ", \"ucReads\": " << r.ucReads << ", \"pulls\": " << r.pulls
           << ", \"gpuAccesses\": " << r.gpuAccesses
           << ", \"gpuMisses\": " << r.gpuMisses
           << ", \"completed\": " << r.completed
           << ", \"latencyTicks\": " << r.latencyTicks << "}"
           << (++i < regions_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void TxnProfiler::snapSave(snap::SnapWriter& w) const
{
    if (!open_.empty())
        throw snap::SnapError(
            "snapshot off a safe point: txnprof has " +
            std::to_string(open_.size()) + " open span(s)");
    w.u64(params_.topK);
    w.u64(params_.histBucketTicks);
    w.u64(params_.histBuckets);
    w.u32(params_.regionShift);
    w.u64(nextSpan_);
    w.u64(begun_);
    w.u64(completed_);

    w.u64(trackNames_.size());
    for (const std::string& t : trackNames_)
        w.str(t);

    for (const KindStats& ks : kinds_) {
        w.u64(ks.count);
        ks.latency.snapSave(w);
        for (const std::uint64_t ticks : ks.stageTicks)
            w.u64(ticks);
    }

    w.u64(slowest_.size());
    for (const SpanRecord& rec : slowest_) {
        w.u64(rec.id);
        w.u8(static_cast<std::uint8_t>(rec.kind));
        w.u64(rec.addr);
        w.u64(rec.beginTick);
        w.u64(rec.endTick);
        w.u32(rec.beginTrack);
        w.u64(rec.hops.size());
        for (const Hop& h : rec.hops) {
            w.u8(static_cast<std::uint8_t>(h.stage));
            w.u64(h.at);
            w.u32(h.track);
        }
    }

    w.u64(regions_.size());
    for (const auto& [page, r] : regions_) {
        w.u64(page);
        w.u64(r.pushes);
        w.u64(r.installs);
        w.u64(r.bypasses);
        w.u64(r.merges);
        w.u64(r.fallbacks);
        w.u64(r.ucReads);
        w.u64(r.pulls);
        w.u64(r.gpuAccesses);
        w.u64(r.gpuMisses);
        w.u64(r.completed);
        w.u64(r.latencyTicks);
    }
}

void TxnProfiler::snapRestore(snap::SnapReader& r)
{
    const std::uint64_t topK = r.u64();
    const std::uint64_t bucketTicks = r.u64();
    const std::uint64_t buckets = r.u64();
    const std::uint32_t regionShift = r.u32();
    if (topK != params_.topK || bucketTicks != params_.histBucketTicks ||
        buckets != params_.histBuckets || regionShift != params_.regionShift)
        throw snap::SnapError("txnprof params differ from the snapshot's");
    nextSpan_ = r.u64();
    begun_ = r.u64();
    completed_ = r.u64();

    trackNames_.clear();
    trackIds_.clear();
    const std::uint64_t tracks = r.u64();
    for (std::uint64_t i = 0; i < tracks; ++i) {
        trackNames_.push_back(r.str());
        trackIds_.emplace(trackNames_.back(),
                          static_cast<std::uint32_t>(i));
    }

    for (KindStats& ks : kinds_) {
        ks.count = r.u64();
        ks.latency.snapRestore(r);
        for (std::uint64_t& ticks : ks.stageTicks)
            ticks = r.u64();
    }

    slowest_.clear();
    const std::uint64_t nSlow = r.u64();
    for (std::uint64_t i = 0; i < nSlow; ++i) {
        SpanRecord rec;
        rec.id = r.u64();
        rec.kind = static_cast<TxnKind>(r.u8());
        rec.addr = r.u64();
        rec.beginTick = r.u64();
        rec.endTick = r.u64();
        rec.beginTrack = r.u32();
        const std::uint64_t nHops = r.u64();
        rec.hops.reserve(nHops);
        for (std::uint64_t h = 0; h < nHops; ++h) {
            Hop hop;
            hop.stage = static_cast<TxnStage>(r.u8());
            hop.at = r.u64();
            hop.track = r.u32();
            rec.hops.push_back(hop);
        }
        slowest_.push_back(std::move(rec));
    }

    regions_.clear();
    const std::uint64_t nRegions = r.u64();
    for (std::uint64_t i = 0; i < nRegions; ++i) {
        const Addr page = r.u64();
        RegionStats& reg = regions_[page];
        reg.pushes = r.u64();
        reg.installs = r.u64();
        reg.bypasses = r.u64();
        reg.merges = r.u64();
        reg.fallbacks = r.u64();
        reg.ucReads = r.u64();
        reg.pulls = r.u64();
        reg.gpuAccesses = r.u64();
        reg.gpuMisses = r.u64();
        reg.completed = r.u64();
        reg.latencyTicks = r.u64();
    }
}

} // namespace dscoh
