#include "obs/epoch_sampler.h"

#include <utility>

namespace dscoh {

EpochSampler::EpochSampler(EventQueue& queue, const StatRegistry& stats,
                           Params params)
    : queue_(queue), stats_(stats), params_(std::move(params))
{
}

void EpochSampler::start()
{
    if (params_.epochTicks == 0 || restored_)
        return;
    const std::vector<std::string> all = stats_.counterNames();
    if (params_.selectors.empty()) {
        names_ = all;
    } else {
        for (const std::string& name : all) {
            for (const std::string& sel : params_.selectors) {
                if (name.compare(0, sel.size(), sel) == 0) {
                    names_.push_back(name);
                    break;
                }
            }
        }
    }
    takeSample();
    arm();
}

void EpochSampler::takeSample()
{
    Sample s;
    s.tick = queue_.curTick();
    s.values.reserve(names_.size());
    for (const std::string& name : names_)
        s.values.push_back(stats_.counter(name));
    samples_.push_back(std::move(s));
}

void EpochSampler::arm()
{
    queue_.scheduleAfterInline(params_.epochTicks,
                               [this] {
                                   takeSample();
                                   // Re-arm only while the simulation still
                                   // has work: a lone sampler event must not
                                   // keep the queue spinning forever after
                                   // the run drains.
                                   if (queue_.pending() > 0)
                                       arm();
                               },
                               EventPriority::kStats);
}

void EpochSampler::snapSave(snap::SnapWriter& w) const
{
    w.u64(params_.epochTicks);
    w.u64(names_.size());
    for (const std::string& name : names_)
        w.str(name);
    w.u64(samples_.size());
    for (const Sample& s : samples_) {
        w.u64(s.tick);
        for (const std::uint64_t v : s.values)
            w.u64(v);
    }
}

void EpochSampler::snapRestore(snap::SnapReader& r)
{
    const std::uint64_t epochTicks = r.u64();
    if (epochTicks != params_.epochTicks)
        throw snap::SnapError(
            "epoch sampler period differs from the snapshot's (" +
            std::to_string(params_.epochTicks) + " vs " +
            std::to_string(epochTicks) + ")");
    names_.clear();
    const std::uint64_t nNames = r.u64();
    for (std::uint64_t i = 0; i < nNames; ++i)
        names_.push_back(r.str());
    samples_.clear();
    const std::uint64_t nSamples = r.u64();
    for (std::uint64_t i = 0; i < nSamples; ++i) {
        Sample s;
        s.tick = r.u64();
        s.values.reserve(names_.size());
        for (std::size_t v = 0; v < names_.size(); ++v)
            s.values.push_back(r.u64());
        samples_.push_back(std::move(s));
    }
    restored_ = true;
}

void EpochSampler::writeJson(std::ostream& os) const
{
    os << "{\"epochTicks\": " << params_.epochTicks << ", \"names\": [";
    for (std::size_t i = 0; i < names_.size(); ++i)
        os << (i == 0 ? "" : ", ") << "\"" << names_[i] << "\"";
    os << "], \"samples\": [";
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << "    {\"tick\": " << samples_[i].tick
           << ", \"values\": [";
        for (std::size_t v = 0; v < samples_[i].values.size(); ++v)
            os << (v == 0 ? "" : ", ") << samples_[i].values[v];
        os << "]}";
    }
    os << "\n  ]}";
}

void EpochSampler::writeCsv(std::ostream& os) const
{
    os << "tick";
    for (const std::string& name : names_)
        os << ',' << name;
    os << '\n';
    for (const Sample& s : samples_) {
        os << s.tick;
        for (const std::uint64_t v : s.values)
            os << ',' << v;
        os << '\n';
    }
}

} // namespace dscoh
