#include "obs/epoch_sampler.h"

#include <utility>

namespace dscoh {

EpochSampler::EpochSampler(EventQueue& queue, const StatRegistry& stats,
                           Params params)
    : queue_(queue), stats_(stats), params_(std::move(params))
{
}

void EpochSampler::start()
{
    if (params_.epochTicks == 0)
        return;
    const std::vector<std::string> all = stats_.counterNames();
    if (params_.selectors.empty()) {
        names_ = all;
    } else {
        for (const std::string& name : all) {
            for (const std::string& sel : params_.selectors) {
                if (name.compare(0, sel.size(), sel) == 0) {
                    names_.push_back(name);
                    break;
                }
            }
        }
    }
    takeSample();
    arm();
}

void EpochSampler::takeSample()
{
    Sample s;
    s.tick = queue_.curTick();
    s.values.reserve(names_.size());
    for (const std::string& name : names_)
        s.values.push_back(stats_.counter(name));
    samples_.push_back(std::move(s));
}

void EpochSampler::arm()
{
    queue_.scheduleAfterInline(params_.epochTicks,
                               [this] {
                                   takeSample();
                                   // Re-arm only while the simulation still
                                   // has work: a lone sampler event must not
                                   // keep the queue spinning forever after
                                   // the run drains.
                                   if (queue_.pending() > 0)
                                       arm();
                               },
                               EventPriority::kStats);
}

void EpochSampler::writeJson(std::ostream& os) const
{
    os << "{\"epochTicks\": " << params_.epochTicks << ", \"names\": [";
    for (std::size_t i = 0; i < names_.size(); ++i)
        os << (i == 0 ? "" : ", ") << "\"" << names_[i] << "\"";
    os << "], \"samples\": [";
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << "    {\"tick\": " << samples_[i].tick
           << ", \"values\": [";
        for (std::size_t v = 0; v < samples_[i].values.size(); ++v)
            os << (v == 0 ? "" : ", ") << samples_[i].values[v];
        os << "]}";
    }
    os << "\n  ]}";
}

void EpochSampler::writeCsv(std::ostream& os) const
{
    os << "tick";
    for (const std::string& name : names_)
        os << ',' << name;
    os << '\n';
    for (const Sample& s : samples_) {
        os << s.tick;
        for (const std::uint64_t v : s.values)
            os << ',' << v;
        os << '\n';
    }
}

} // namespace dscoh
