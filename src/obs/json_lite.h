// A minimal strict JSON reader.
//
// Just enough JSON to validate and analyze the files this repository
// produces (trace-event traces, stats dumps, sweep results): objects,
// arrays, strings with the common escapes, numbers, booleans, null. Used by
// tools/trace_stats and by the observability tests to prove emitted output
// is well-formed. Not a general-purpose library — it favors smallness and
// deterministic error messages over speed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dscoh::jsonlite {

class Value;
using ValuePtr = std::shared_ptr<Value>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
public:
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<ValuePtr> array;
    std::map<std::string, ValuePtr> object;

    bool isObject() const { return kind == Kind::kObject; }
    bool isArray() const { return kind == Kind::kArray; }
    bool isString() const { return kind == Kind::kString; }
    bool isNumber() const { return kind == Kind::kNumber; }

    /// Object member, or nullptr when absent / not an object.
    const Value* get(const std::string& key) const
    {
        if (kind != Kind::kObject)
            return nullptr;
        const auto it = object.find(key);
        return it == object.end() ? nullptr : it->second.get();
    }

    std::uint64_t asUint() const { return static_cast<std::uint64_t>(number); }
};

/// Parses @p text. On failure returns nullptr and fills @p error with a
/// message that includes the byte offset of the problem. Trailing
/// non-whitespace after the document is an error.
ValuePtr parse(const std::string& text, std::string& error);

} // namespace dscoh::jsonlite
