// Epoch time-series sampling of StatRegistry counters.
//
// The bench/tool story for "why is mode X slower" needs time-resolved
// curves, not end-of-run totals: miss rate over the run, traffic per
// channel per epoch, and so on. An EpochSampler snapshots a selected set
// of counters every N simulated ticks into a deterministic time series.
//
// The sampler rides the simulation's own EventQueue at kStats priority (so
// it observes a tick *after* all real work at that tick) and re-arms itself
// only while other events remain pending — it therefore never keeps an
// otherwise-drained queue alive, and System::simulate() terminates exactly
// as before.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/stats.h"

namespace dscoh {

class EpochSampler {
public:
    struct Params {
        Tick epochTicks = 0; ///< sampling period; 0 disables the sampler
        /// Counter-name prefixes to sample ("gpu.l2.", "net.ds.messages").
        /// Empty = every registered counter.
        std::vector<std::string> selectors;
    };

    struct Sample {
        Tick tick = 0;
        std::vector<std::uint64_t> values; ///< parallel to names()
    };

    /// The registry must outlive the sampler. Counters are resolved at
    /// start(), so call it after every component registered its stats.
    EpochSampler(EventQueue& queue, const StatRegistry& stats, Params params);

    /// Takes the epoch-0 snapshot and arms the periodic event. No-op when
    /// epochTicks == 0, and after snapRestore(): the sampler's event always
    /// dies during the drain that precedes a safe point (it only re-arms
    /// while other work is pending), so a restored run's time series is
    /// complete in the snapshot — restarting it would sample epochs the
    /// uninterrupted run never saw.
    void start();

    const std::vector<std::string>& names() const { return names_; }
    const std::vector<Sample>& samples() const { return samples_; }
    Tick epochTicks() const { return params_.epochTicks; }

    /// One "epochs" JSON object: {"epochTicks": N, "names": [...],
    /// "samples": [{"tick": T, "values": [...]}, ...]}. Values are
    /// cumulative counter snapshots; consumers diff adjacent samples for
    /// per-epoch rates.
    void writeJson(std::ostream& os) const;

    /// Header row plus one CSV row per epoch, for quick plotting.
    void writeCsv(std::ostream& os) const;

    /// Serializes epochTicks (verified on restore), the resolved counter
    /// names and every sample taken so far. Safe points never have the
    /// sampling event armed, so there is no transient state to lose.
    void snapSave(snap::SnapWriter& w) const;
    /// Restores the series and freezes the sampler (see start()).
    void snapRestore(snap::SnapReader& r);
    bool restored() const { return restored_; }

private:
    void takeSample();
    void arm();

    EventQueue& queue_;
    const StatRegistry& stats_;
    Params params_;
    std::vector<std::string> names_;
    std::vector<Sample> samples_;
    bool restored_ = false;
};

} // namespace dscoh
