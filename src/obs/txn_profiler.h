// Transaction-level latency attribution.
//
// A TxnProfiler stamps every coherence transaction (GetS, GetX, upgrades,
// writebacks, direct-store pushes, uncached reads, GPU L1 fills) with a
// per-SimContext span id and per-hop timestamps as the message moves
// through the machine: issue -> network -> directory/ordering point ->
// DRAM -> response -> install, plus the hardened retry/backoff/fallback
// paths. From the closed spans it accumulates
//
//   - a latency histogram per transaction kind (p50/p95/p99),
//   - a stage-by-stage critical-path breakdown (queueing vs network vs
//     directory occupancy vs DRAM vs supply vs install vs retry/backoff),
//   - a deterministic top-K list of the slowest transactions with their
//     full hop timelines, and
//   - per-page reuse + latency counters keyed for the adaptive push/pull
//     predictor (ROADMAP).
//
// The profiler is owned by the SimContext (System::enableTxnProfiler) and
// follows the TraceSession gate discipline exactly: when none is attached
// every hook is one pointer load and branch, no message carries a live
// span id, and every default output stays byte-identical. When a
// TraceSession recording TraceCat::kTxn is also attached, each closed span
// is interleaved into the Chrome trace as a flow-event arrow chain.
//
// Span ids travel on Message::prof (excluded from the delivery checksum,
// like the timing fields); id 0 is inert, so hops on unprofiled messages —
// and duplicate acks arriving after a span closed — are no-ops. Open-span
// state is empty at every phase-boundary safe point (all transactions
// complete before the queue drains), so snapshots carry only the closed
// aggregate and restored runs reproduce byte-identical profiles.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.h"
#include "sim/types.h"

namespace dscoh {

class TraceSession;

/// Transaction kinds, one latency population each.
enum class TxnKind : std::uint8_t {
    kGetS,      ///< read miss on the coherence fabric
    kGetX,      ///< write miss, wants exclusive ownership
    kUpgrade,   ///< S -> M upgrade (GetX from a sharer)
    kWriteback, ///< dirty eviction Put -> WbAck
    kDsPush,    ///< direct store: RSB flush -> DsAck (or fallback)
    kUcRead,    ///< uncached CPU load of the DS region
    kGpuLoad,   ///< SM L1 miss -> slice -> L1LoadResp
};
constexpr std::size_t kTxnKindCount = 7;

const char* to_string(TxnKind k);

/// Per-hop stamps. The interval between consecutive hops is attributed to
/// the *later* hop's bucket (bucketOf), so each stage name describes what
/// the transaction was waiting on until that point.
enum class TxnStage : std::uint8_t {
    kIssue,         ///< request left its origin component
    kBacklog,       ///< DS push parked behind the in-flight window
    kHomeArrive,    ///< request reached the home / ordering point
    kHomeStart,     ///< home began processing (left the busy-line queue)
    kSnpSend,       ///< home issued the snoop round
    kSnpArrive,     ///< snoop reached the owning/sharing agent
    kSupplySend,    ///< owner read the line out and sent data
    kSnpRespArrive, ///< snoop response reached the home
    kDramIssue,     ///< home issued the memory read
    kDramDone,      ///< memory data returned to the home
    kDataSend,      ///< home (or owner) sent the data response
    kDataArrive,    ///< response reached the requester
    kSliceArrive,   ///< DS/GPU message reached the L2 slice
    kDramWrite,     ///< slice/home wrote memory (DS bypass, writeback)
    kMerge,         ///< DS push merged into a present line
    kInstall,       ///< line installed / store globally performed
    kAckSend,       ///< ack left the completing component
    kAckArrive,     ///< ack reached the requester
    kRetry,         ///< timeout/NACK retransmit fired
    kFallbackArm,   ///< hardened path armed the MSL drain window
    kFallback,      ///< degraded to the pull path
    kDone,          ///< span closed at the requester
};
constexpr std::size_t kTxnStageCount = 22;

const char* to_string(TxnStage s);

/// Critical-path buckets the stage intervals are summed into.
enum class StageBucket : std::uint8_t {
    kQueue,     ///< waiting to issue / behind a busy line / backlog
    kNetwork,   ///< on a virtual network link
    kDirectory, ///< home / ordering-point occupancy
    kDram,      ///< memory access
    kSupply,    ///< owner cache read-out and data supply
    kInstall,   ///< fill/install/ack at the destination
    kMerge,     ///< DS merge into a present line (includes the pull)
    kRetry,     ///< retransmit wait
    kBackoff,   ///< fallback arming and MSL drain
};
constexpr std::size_t kStageBucketCount = 9;

const char* to_string(StageBucket b);

constexpr StageBucket bucketOf(TxnStage s)
{
    switch (s) {
    case TxnStage::kIssue: return StageBucket::kQueue;
    case TxnStage::kBacklog: return StageBucket::kQueue;
    case TxnStage::kHomeArrive: return StageBucket::kNetwork;
    case TxnStage::kHomeStart: return StageBucket::kQueue;
    case TxnStage::kSnpSend: return StageBucket::kDirectory;
    case TxnStage::kSnpArrive: return StageBucket::kNetwork;
    case TxnStage::kSupplySend: return StageBucket::kSupply;
    case TxnStage::kSnpRespArrive: return StageBucket::kNetwork;
    case TxnStage::kDramIssue: return StageBucket::kDirectory;
    case TxnStage::kDramDone: return StageBucket::kDram;
    case TxnStage::kDataSend: return StageBucket::kDirectory;
    case TxnStage::kDataArrive: return StageBucket::kNetwork;
    case TxnStage::kSliceArrive: return StageBucket::kNetwork;
    case TxnStage::kDramWrite: return StageBucket::kDram;
    case TxnStage::kMerge: return StageBucket::kMerge;
    case TxnStage::kInstall: return StageBucket::kInstall;
    case TxnStage::kAckSend: return StageBucket::kInstall;
    case TxnStage::kAckArrive: return StageBucket::kNetwork;
    case TxnStage::kRetry: return StageBucket::kRetry;
    case TxnStage::kFallbackArm: return StageBucket::kBackoff;
    case TxnStage::kFallback: return StageBucket::kBackoff;
    case TxnStage::kDone: return StageBucket::kInstall;
    }
    return StageBucket::kInstall;
}

class TxnProfiler {
public:
    struct Params {
        /// Slowest closed spans kept with full hop timelines.
        std::size_t topK = 32;
        /// Latency histogram geometry (per kind).
        std::uint64_t histBucketTicks = 64;
        std::size_t histBuckets = 128;
        /// log2 of the region granularity for the per-page counters.
        std::uint32_t regionShift = 12; ///< 4 KiB pages
    };

    struct Hop {
        TxnStage stage = TxnStage::kDone;
        Tick at = 0;
        std::uint32_t track = 0; ///< index into trackNames()
    };

    /// One transaction's record. While open it accumulates hops; closed
    /// records survive only in the top-K list.
    struct SpanRecord {
        std::uint64_t id = 0;
        TxnKind kind = TxnKind::kGetS;
        Addr addr = 0;
        Tick beginTick = 0;
        Tick endTick = 0;
        std::uint32_t beginTrack = 0;
        std::vector<Hop> hops; ///< chronological; last is kDone once closed

        Tick latency() const { return endTick - beginTick; }
    };

    struct KindStats {
        std::uint64_t count = 0; ///< closed spans
        Histogram latency;
        std::array<std::uint64_t, kStageBucketCount> stageTicks{};
    };

    /// Reuse + latency counters per regionShift-sized page, the feature
    /// vector for the future push/pull predictor.
    struct RegionStats {
        std::uint64_t pushes = 0;     ///< DS pushes begun
        std::uint64_t installs = 0;   ///< pushes installed into a free way
        std::uint64_t bypasses = 0;   ///< pushes written around the cache
        std::uint64_t merges = 0;     ///< pushes merged into a present line
        std::uint64_t fallbacks = 0;  ///< pushes degraded to the pull path
        std::uint64_t ucReads = 0;    ///< uncached CPU loads begun
        std::uint64_t pulls = 0;      ///< coherence pulls begun (GetS/GetX)
        std::uint64_t gpuAccesses = 0;///< GPU L2 demand accesses
        std::uint64_t gpuMisses = 0;  ///< ... of which missed
        std::uint64_t completed = 0;  ///< closed spans touching the page
        std::uint64_t latencyTicks = 0; ///< summed latency of those spans
    };

    TxnProfiler(); ///< default Params
    explicit TxnProfiler(Params params);

    TxnProfiler(const TxnProfiler&) = delete;
    TxnProfiler& operator=(const TxnProfiler&) = delete;

    /// Interleave closed spans into @p trace as flow events (TraceCat::kTxn)
    /// — System::enableTracing/enableTxnProfiler cross-wire this in either
    /// enable order.
    void attachTrace(TraceSession* trace) { trace_ = trace; }

    /// Opens a span and returns its id (>= 1) to stamp onto Message::prof.
    std::uint64_t begin(TxnKind kind, Addr addr, const std::string& track,
                        Tick now);

    /// Stamps one hop. Id 0 — an unprofiled message — and ids of spans that
    /// already closed (duplicate/replayed acks) are no-ops.
    void hop(std::uint64_t id, TxnStage stage, const std::string& track,
             Tick now);

    /// Closes a span: attributes every hop interval to its stage bucket,
    /// samples the kind's latency histogram, updates the page counters and
    /// the top-K list, and emits the flow-event chain when a trace session
    /// recording TraceCat::kTxn is attached. No-op for id 0 / closed ids.
    void end(std::uint64_t id, Tick now);

    /// Page-counter hook for GPU L2 demand accesses (slice noteDemand).
    void noteGpuDemand(Addr addr, bool miss);

    std::uint64_t begun() const { return begun_; }
    std::uint64_t completed() const { return completed_; }
    std::size_t openCount() const { return open_.size(); }
    const Params& params() const { return params_; }
    const KindStats& kindStats(TxnKind k) const
    {
        return kinds_[static_cast<std::size_t>(k)];
    }
    /// Sorted by latency descending, span id ascending.
    const std::vector<SpanRecord>& slowest() const { return slowest_; }
    const std::map<Addr, RegionStats>& regions() const { return regions_; }
    const std::vector<std::string>& trackNames() const { return trackNames_; }

    /// Writes the whole profile as one versioned "dscoh-txnprof-v1" JSON
    /// object (see DESIGN.md for the schema).
    void writeJson(std::ostream& os) const;

    /// Serializes the closed aggregate (histograms, stage sums, top-K,
    /// regions, track table, id counters). Throws snap::SnapError when
    /// spans are still open — the caller is off a safe point.
    void snapSave(snap::SnapWriter& w) const;
    void snapRestore(snap::SnapReader& r);

private:
    std::uint32_t trackId(const std::string& name);
    void insertTopK(SpanRecord&& rec);
    void emitFlow(const SpanRecord& rec) const;
    RegionStats& regionOf(Addr addr)
    {
        return regions_[addr >> params_.regionShift];
    }

    Params params_;
    TraceSession* trace_ = nullptr;
    std::uint64_t nextSpan_ = 1;
    std::uint64_t begun_ = 0;
    std::uint64_t completed_ = 0;
    std::map<std::uint64_t, SpanRecord> open_;
    std::array<KindStats, kTxnKindCount> kinds_;
    std::vector<SpanRecord> slowest_;
    std::map<Addr, RegionStats> regions_;
    std::vector<std::string> trackNames_;
    std::unordered_map<std::string, std::uint32_t> trackIds_;
};

} // namespace dscoh
