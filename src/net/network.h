// Point-to-point interconnection network.
//
// Models what matters for the study: per-message latency, per-destination
// port serialization (bandwidth), per-(src,dst) FIFO ordering, and traffic
// statistics. All coherence virtual networks and the paper's dedicated
// direct-store network are instances of this class with different
// latency/bandwidth parameters.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/message.h"
#include "sim/sim_object.h"
#include "sim/stats.h"

namespace dscoh {

class FaultInjector;

struct NetworkParams {
    Tick hopLatency = 20;          ///< fixed traversal latency, ticks
    std::uint32_t bytesPerTick = 32; ///< per-destination-port bandwidth
};

class Network final : public SimObject {
public:
    using Handler = std::function<void(const Message&)>;

    Network(std::string name, SimContext& ctx, NetworkParams params);

    /// Registers @p handler as the receiver for node @p id. A node id may be
    /// registered once; ids are dense and assigned by the System builder.
    void connect(NodeId id, Handler handler);

    bool isConnected(NodeId id) const
    {
        return id < handlers_.size() && handlers_[id] != nullptr;
    }

    /// Sends @p msg; it is delivered to msg.dst after hop latency plus
    /// serialization at the destination port. Messages from any source to a
    /// given destination are delivered in increasing-time order, and two
    /// messages with one (src,dst) pair never reorder.
    void send(Message msg);

    const NetworkParams& params() const { return params_; }
    void setHopLatency(Tick l) { params_.hopLatency = l; }

    /// Attaches a fault injector consulted on every send. Must happen before
    /// regStats (the injector's presence decides which counters exist).
    /// Without one, send() costs a single null-pointer test extra.
    void attachFaultInjector(FaultInjector* f) { fault_ = f; }
    FaultInjector* faultInjector() const { return fault_; }

    void regStats(StatRegistry& registry) override;

    /// Messages never cross a safe point (delivery closures live in the
    /// event queue, which is drained), but the per-destination port
    /// reservations can extend past it and are timing state.
    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

    std::uint64_t messagesSent() const { return messages_.value(); }
    std::uint64_t bytesSent() const { return bytes_.value(); }
    std::uint64_t messagesOfType(MsgType t) const
    {
        return byType_[static_cast<std::size_t>(t)].value();
    }

private:
    /// The pre-fault send path: computes arrival (with @p extraDelay folded
    /// in before the port max, preserving per-destination monotonicity),
    /// accounts traffic, and schedules the handler.
    void deliver(Message msg, Tick extraDelay);

    NetworkParams params_;
    std::vector<Handler> handlers_;
    std::vector<Tick> portFreeAt_; ///< per-destination serialization point
    FaultInjector* fault_ = nullptr;

    Counter messages_;
    Counter bytes_;
    Counter dataMessages_;
    std::array<Counter, kMsgTypeCount> byType_; ///< indexed by MsgType
    Histogram deliveryLatency_{8, 32};
};

} // namespace dscoh
