// Point-to-point interconnection network.
//
// Models what matters for the study: per-message latency, per-destination
// port serialization (bandwidth), per-(src,dst) FIFO ordering, and traffic
// statistics. All coherence virtual networks and the paper's dedicated
// direct-store network are instances of this class with different
// latency/bandwidth parameters.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/message.h"
#include "sim/sim_object.h"
#include "sim/stats.h"

namespace dscoh {

class FaultInjector;

struct NetworkParams {
    Tick hopLatency = 20;          ///< fixed traversal latency, ticks
    std::uint32_t bytesPerTick = 32; ///< per-destination-port bandwidth
};

/// Shape of the dedicated DS network once several GPUs share it: a full
/// crossbar (every endpoint one hop from every other, the single-GPU
/// behavior) or a ring with latency proportional to the hop distance.
enum class DsTopology : std::uint8_t {
    kCrossbar = 0,
    kRing = 1,
};

constexpr const char* to_string(DsTopology t)
{
    return t == DsTopology::kRing ? "ring" : "crossbar";
}

/// Inverse of to_string, for --ds-topology style flags. Returns false on
/// anything but the exact names.
inline bool parseDsTopology(std::string_view text, DsTopology& out)
{
    if (text == "crossbar")
        out = DsTopology::kCrossbar;
    else if (text == "ring")
        out = DsTopology::kRing;
    else
        return false;
    return true;
}

class Network final : public SimObject {
public:
    /// Devirtualized receiver: a plain (function pointer, object) pair, so
    /// the per-message handler hop is one indirect call with no
    /// std::function dispatch or allocation. Controllers register through
    /// handlerFor<&T::method>; callables (tests, probes) go through the
    /// templated connect overload, which owns them.
    struct Handler {
        using Fn = void (*)(void*, const Message&);
        Fn fn = nullptr;
        void* obj = nullptr;

        void operator()(const Message& m) const { fn(obj, m); }
        explicit operator bool() const { return fn != nullptr; }
    };

    /// Binds a member function at compile time:
    /// `net.connect(id, Network::handlerFor<&HomeController::handleRequest>(home))`.
    template <auto Method, typename T>
    static Handler handlerFor(T* obj)
    {
        return Handler{[](void* o, const Message& m) {
                           (static_cast<T*>(o)->*Method)(m);
                       },
                       obj};
    }

    Network(std::string name, SimContext& ctx, NetworkParams params);

    /// Registers @p handler as the receiver for node @p id. A node id may be
    /// registered once; ids are dense and assigned by the System builder.
    void connect(NodeId id, Handler handler);

    /// Convenience overload for arbitrary callables: the network takes
    /// ownership of @p f and routes through a per-type thunk. Same delivery
    /// cost as a member-function handler.
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Handler>>>
    void connect(NodeId id, F&& f)
    {
        using D = std::decay_t<F>;
        auto holder = std::make_unique<Holder<D>>(std::forward<F>(f));
        const Handler h{&Holder<D>::call, holder.get()};
        owned_.push_back(std::move(holder));
        connect(id, h);
    }

    bool isConnected(NodeId id) const
    {
        return id < handlers_.size() && static_cast<bool>(handlers_[id]);
    }

    /// Sends @p msg; it is delivered to msg.dst after hop latency plus
    /// serialization at the destination port. Messages from any source to a
    /// given destination are delivered in increasing-time order, and two
    /// messages with one (src,dst) pair never reorder.
    void send(Message msg);

    const NetworkParams& params() const { return params_; }
    void setHopLatency(Tick l) { params_.hopLatency = l; }

    /// Lays the listed nodes out on a ring: a message between two ring
    /// members pays hopLatency per traversed link (shortest direction)
    /// instead of the flat crossbar hop. Nodes not on the ring (and every
    /// network without a ring) keep the single-hop behavior, so a
    /// crossbar-configured system is bit-identical to the pre-ring code.
    void setRing(const std::vector<NodeId>& order);

    /// Enables the per-type counters of the timestamp fast-path messages
    /// (kTsRead/kTsData/kTsNack). Like the fault injector's kDsNack rule,
    /// this must precede regStats: when the fast path is off the counters
    /// are never registered and the stats JSON stays byte-identical.
    void enableTsStats() { tsStats_ = true; }

    /// Attaches a fault injector consulted on every send. Must happen before
    /// regStats (the injector's presence decides which counters exist).
    /// Without one, send() costs a single null-pointer test extra.
    void attachFaultInjector(FaultInjector* f) { fault_ = f; }
    FaultInjector* faultInjector() const { return fault_; }

    void regStats(StatRegistry& registry) override;

    /// Messages never cross a safe point (delivery closures live in the
    /// event queue, which is drained), but the per-destination port
    /// reservations can extend past it and are timing state.
    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

    std::uint64_t messagesSent() const { return messages_.value(); }
    std::uint64_t bytesSent() const { return bytes_.value(); }
    std::uint64_t messagesOfType(MsgType t) const
    {
        return byType_[static_cast<std::size_t>(t)].value();
    }

private:
    struct HolderBase {
        virtual ~HolderBase() = default;
    };
    template <typename F>
    struct Holder final : HolderBase {
        explicit Holder(F f) : fn(std::move(f)) {}
        static void call(void* o, const Message& m)
        {
            static_cast<Holder*>(o)->fn(m);
        }
        F fn;
    };

    /// The pre-fault send path: computes arrival (with @p extraDelay folded
    /// in before the port max, preserving per-destination monotonicity),
    /// accounts traffic, and schedules the handler.
    void deliver(Message msg, Tick extraDelay);

    /// Extra links beyond the first between @p src and @p dst on the
    /// configured ring (0 when no ring is set or either node is off it).
    Tick ringExtraHops(NodeId src, NodeId dst) const;

    NetworkParams params_;
    std::vector<Handler> handlers_;
    std::vector<std::unique_ptr<HolderBase>> owned_;
    std::vector<Tick> portFreeAt_; ///< per-destination serialization point
    FaultInjector* fault_ = nullptr;
    std::vector<std::int32_t> ringPos_; ///< node -> ring index (-1 off-ring)
    std::size_t ringSize_ = 0;
    bool tsStats_ = false;

    Counter messages_;
    Counter bytes_;
    Counter dataMessages_;
    std::array<Counter, kMsgTypeCount> byType_; ///< indexed by MsgType
    Histogram deliveryLatency_{8, 32};
};

} // namespace dscoh
