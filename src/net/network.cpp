#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace dscoh {

const char* to_string(MsgType t)
{
    switch (t) {
    case MsgType::kGetS: return "GetS";
    case MsgType::kGetX: return "GetX";
    case MsgType::kPut: return "Put";
    case MsgType::kUnblock: return "Unblock";
    case MsgType::kSnpGetS: return "SnpGetS";
    case MsgType::kSnpGetX: return "SnpGetX";
    case MsgType::kWbAck: return "WbAck";
    case MsgType::kSnpResp: return "SnpResp";
    case MsgType::kData: return "Data";
    case MsgType::kAck: return "Ack";
    case MsgType::kDsPutX: return "DsPutX";
    case MsgType::kDsAck: return "DsAck";
    case MsgType::kUcRead: return "UcRead";
    case MsgType::kUcData: return "UcData";
    case MsgType::kL1Load: return "L1Load";
    case MsgType::kL1LoadResp: return "L1LoadResp";
    case MsgType::kL1Store: return "L1Store";
    case MsgType::kL1StoreAck: return "L1StoreAck";
    }
    return "?";
}

Network::Network(std::string name, SimContext& ctx, NetworkParams params)
    : SimObject(std::move(name), ctx), params_(params)
{
}

void Network::connect(NodeId id, Handler handler)
{
    if (id >= handlers_.size()) {
        handlers_.resize(id + 1);
        portFreeAt_.resize(id + 1, 0);
    }
    if (handlers_[id])
        throw std::logic_error(name() + ": node already connected: " +
                               std::to_string(id));
    handlers_[id] = std::move(handler);
}

void Network::send(Message msg)
{
    assert(isConnected(msg.dst) && "message sent to unconnected node");
    msg.sentAt = curTick();

    const Tick serialization =
        (msg.wireBytes() + params_.bytesPerTick - 1) / params_.bytesPerTick;
    Tick& portFree = portFreeAt_[msg.dst];
    const Tick arrival =
        std::max(curTick() + params_.hopLatency, portFree) + serialization;
    portFree = arrival;

    messages_.inc();
    bytes_.inc(msg.wireBytes());
    byType_[static_cast<std::size_t>(msg.type)].inc();
    if (carriesData(msg.type))
        dataMessages_.inc();
    deliveryLatency_.sample(arrival - curTick());

    if (TraceSession* t = tracing(TraceCat::kNet))
        t->span(TraceCat::kNet, name(), to_string(msg.type), curTick(),
                arrival, msg.addr);
    if (CoherenceChecker* c = checking())
        c->onMessageSent();

    queue().schedule(arrival,
                     [this, m = std::move(msg)] {
                         if (CoherenceChecker* c = checking())
                             c->onMessageDelivered();
                         handlers_[m.dst](m);
                     },
                     EventPriority::kMessageDelivery);
}

void Network::regStats(StatRegistry& registry)
{
    registry.registerCounter(statName("messages"), &messages_);
    registry.registerCounter(statName("bytes"), &bytes_);
    registry.registerCounter(statName("data_messages"), &dataMessages_);
    for (std::size_t t = 0; t < byType_.size(); ++t) {
        registry.registerCounter(
            statName(std::string("msg.") + to_string(static_cast<MsgType>(t))),
            &byType_[t]);
    }
    registry.registerHistogram(statName("delivery_latency"), &deliveryLatency_);
}

void Network::snapSave(snap::SnapWriter& w) const
{
    w.u64(portFreeAt_.size());
    for (const Tick t : portFreeAt_)
        w.u64(t);
}

void Network::snapRestore(snap::SnapReader& r)
{
    const std::uint64_t n = r.u64();
    if (n != portFreeAt_.size())
        throw snap::SnapError(name() + ": port count mismatch (snapshot " +
                              std::to_string(n) + ", this system " +
                              std::to_string(portFreeAt_.size()) + ")");
    for (auto& t : portFreeAt_)
        t = r.u64();
}

} // namespace dscoh
