#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "fault/fault_injector.h"

namespace dscoh {

const char* to_string(MsgType t)
{
    switch (t) {
    case MsgType::kGetS: return "GetS";
    case MsgType::kGetX: return "GetX";
    case MsgType::kPut: return "Put";
    case MsgType::kUnblock: return "Unblock";
    case MsgType::kSnpGetS: return "SnpGetS";
    case MsgType::kSnpGetX: return "SnpGetX";
    case MsgType::kWbAck: return "WbAck";
    case MsgType::kSnpResp: return "SnpResp";
    case MsgType::kData: return "Data";
    case MsgType::kAck: return "Ack";
    case MsgType::kDsPutX: return "DsPutX";
    case MsgType::kDsAck: return "DsAck";
    case MsgType::kUcRead: return "UcRead";
    case MsgType::kUcData: return "UcData";
    case MsgType::kL1Load: return "L1Load";
    case MsgType::kL1LoadResp: return "L1LoadResp";
    case MsgType::kL1Store: return "L1Store";
    case MsgType::kL1StoreAck: return "L1StoreAck";
    case MsgType::kDsNack: return "DsNack";
    case MsgType::kTsRead: return "TsRead";
    case MsgType::kTsData: return "TsData";
    case MsgType::kTsNack: return "TsNack";
    }
    return "?";
}

Network::Network(std::string name, SimContext& ctx, NetworkParams params)
    : SimObject(std::move(name), ctx), params_(params)
{
}

void Network::connect(NodeId id, Handler handler)
{
    if (id >= handlers_.size()) {
        handlers_.resize(id + 1);
        portFreeAt_.resize(id + 1, 0);
    }
    if (handlers_[id])
        throw std::logic_error(name() + ": node already connected: " +
                               std::to_string(id));
    handlers_[id] = handler;
}

void Network::send(Message msg)
{
    if (fault_ == nullptr) {
        deliver(std::move(msg), 0);
        return;
    }

    // Stamp before deciding so a corruption fault leaves the checksum stale
    // and the receiver can detect it.
    fault_->stampChecksum(msg);
    const FaultDecision d = fault_->decide(msg.src, msg.dst, curTick());
    if (d.drop) {
        // The message never existed as far as the network's traffic
        // accounting, the port reservations and the checker's in-flight
        // count are concerned: decide() already counted it under the
        // injector's own stats.
        if (TraceSession* t = tracing(TraceCat::kNet))
            t->instant(TraceCat::kNet, name(),
                       d.linkDown ? "fault.linkdown-drop" : "fault.drop",
                       curTick(), msg.addr);
        return;
    }
    if (d.corrupt) {
        fault_->corruptPayload(msg);
        if (TraceSession* t = tracing(TraceCat::kNet))
            t->instant(TraceCat::kNet, name(), "fault.corrupt", curTick(),
                       msg.addr);
    }
    if (d.extraDelay != 0) {
        if (TraceSession* t = tracing(TraceCat::kNet))
            t->instant(TraceCat::kNet, name(), "fault.delay", curTick(),
                       msg.addr);
    }
    if (d.duplicate) {
        // The echo is a real wire-level message: it consumes bandwidth and
        // is visible to the checker like any other.
        if (TraceSession* t = tracing(TraceCat::kNet))
            t->instant(TraceCat::kNet, name(), "fault.duplicate", curTick(),
                       msg.addr);
        deliver(msg, d.extraDelay);
    }
    deliver(std::move(msg), d.extraDelay);
}

void Network::setRing(const std::vector<NodeId>& order)
{
    ringPos_.clear();
    ringSize_ = order.size();
    for (std::size_t i = 0; i < order.size(); ++i) {
        const NodeId n = order[i];
        if (n >= ringPos_.size())
            ringPos_.resize(n + 1, -1);
        if (ringPos_[n] != -1)
            throw std::logic_error(name() + ": node on ring twice: " +
                                   std::to_string(n));
        ringPos_[n] = static_cast<std::int32_t>(i);
    }
}

Tick Network::ringExtraHops(NodeId src, NodeId dst) const
{
    if (ringSize_ < 2 || src >= ringPos_.size() || dst >= ringPos_.size())
        return 0;
    const std::int32_t a = ringPos_[src];
    const std::int32_t b = ringPos_[dst];
    if (a < 0 || b < 0)
        return 0;
    const std::size_t fwd = static_cast<std::size_t>(
        b >= a ? b - a : static_cast<std::int32_t>(ringSize_) + b - a);
    const std::size_t hops = std::min(fwd, ringSize_ - fwd);
    return hops > 1 ? static_cast<Tick>(hops - 1) : 0;
}

void Network::deliver(Message msg, Tick extraDelay)
{
    assert(isConnected(msg.dst) && "message sent to unconnected node");
    msg.sentAt = curTick();
    if (ringSize_ != 0)
        extraDelay += params_.hopLatency * ringExtraHops(msg.src, msg.dst);

    const Tick serialization =
        (msg.wireBytes() + params_.bytesPerTick - 1) / params_.bytesPerTick;
    Tick& portFree = portFreeAt_[msg.dst];
    // A fault's extra delay lengthens the hop, not the port: it still
    // partakes in the max against the port reservation, so deliveries to one
    // destination stay monotonic and per-(src,dst) FIFO holds even with
    // delay faults on.
    const Tick arrival =
        std::max(curTick() + params_.hopLatency + extraDelay, portFree) +
        serialization;
    portFree = arrival;

    messages_.inc();
    bytes_.inc(msg.wireBytes());
    byType_[static_cast<std::size_t>(msg.type)].inc();
    if (carriesData(msg.type))
        dataMessages_.inc();
    deliveryLatency_.sample(arrival - curTick());

    if (TraceSession* t = tracing(TraceCat::kNet))
        t->span(TraceCat::kNet, name(), to_string(msg.type), curTick(),
                arrival, msg.addr);
    if (CoherenceChecker* c = checking())
        c->onMessageSent();

    // Move the message into a pooled slot and capture only the pointer: the
    // delivery closure stays inline in the event entry and the message body
    // is written exactly once, with the slot recycled as soon as the handler
    // returns.
    Message* slot = context().msgPool.acquire();
    *slot = std::move(msg);
    queue().scheduleInline(
        arrival,
        [this, slot] {
            if (CoherenceChecker* c = checking())
                c->onMessageDelivered();
            handlers_[slot->dst](*slot);
            context().msgPool.release(slot);
        },
        EventPriority::kMessageDelivery);
}

void Network::regStats(StatRegistry& registry)
{
    registry.registerCounter(statName("messages"), &messages_);
    registry.registerCounter(statName("bytes"), &bytes_);
    registry.registerCounter(statName("data_messages"), &dataMessages_);
    for (std::size_t t = 0; t < byType_.size(); ++t) {
        // DsNack exists only under fault injection, and the timestamp
        // fast-path types only under a lease-enabled config; keep the
        // disabled stat set (and its JSON dump) byte-identical to what it
        // always was.
        const MsgType mt = static_cast<MsgType>(t);
        if (mt == MsgType::kDsNack && fault_ == nullptr)
            continue;
        if ((mt == MsgType::kTsRead || mt == MsgType::kTsData ||
             mt == MsgType::kTsNack) &&
            !tsStats_)
            continue;
        registry.registerCounter(
            statName(std::string("msg.") + to_string(static_cast<MsgType>(t))),
            &byType_[t]);
    }
    registry.registerHistogram(statName("delivery_latency"), &deliveryLatency_);
}

void Network::snapSave(snap::SnapWriter& w) const
{
    w.u64(portFreeAt_.size());
    for (const Tick t : portFreeAt_)
        w.u64(t);
}

void Network::snapRestore(snap::SnapReader& r)
{
    const std::uint64_t n = r.u64();
    if (n != portFreeAt_.size())
        throw snap::SnapError(name() + ": port count mismatch (snapshot " +
                              std::to_string(n) + ", this system " +
                              std::to_string(portFreeAt_.size()) + ")");
    for (auto& t : portFreeAt_)
        t = r.u64();
}

} // namespace dscoh
