// Coherence and memory-system message definitions.
//
// One message struct serves every virtual network; unused fields stay at
// their defaults. Messages carry real data bytes (DataBlock) plus a byte
// mask for partial-line writes (write-combining direct stores, GPU
// write-through stores).
#pragma once

#include <cstdint>
#include <string>

#include "mem/data_block.h"
#include "sim/types.h"

namespace dscoh {

enum class MsgType : std::uint8_t {
    // Requests: cache agent -> home (memory controller).
    kGetS,    ///< read miss, wants shared (or exclusive if unshared) copy
    kGetX,    ///< write miss / upgrade, wants exclusive ownership
    kPut,     ///< writeback of an owned (dirty) line, carries data
    kUnblock, ///< requester finished its fill; home clears the busy state

    // Forwards: home -> cache agents.
    kSnpGetS, ///< snoop on behalf of a GetS requester
    kSnpGetX, ///< snoop-invalidate on behalf of a GetX requester
    kWbAck,   ///< home accepted (or dropped, if stale) a writeback

    // Responses.
    kSnpResp, ///< snooped agent -> home: did it supply data? was it a sharer?
    kData,    ///< data to the requester (from owner cache or from memory)
    kAck,     ///< snooped agent -> requester: no data, invalidated/not present

    // Direct-store extension (dedicated CPU -> GPU-L2 network).
    kDsPutX, ///< remote store: data+mask pushed into the GPU L2 (I -> MM)
    kDsAck,  ///< slice -> CPU: remote store globally performed
    kUcRead, ///< uncached CPU load of the DS region, served by the slice
    kUcData, ///< reply to kUcRead

    // GPU-internal network (per-SM L1 <-> L2 slice).
    kL1Load,     ///< line fetch for an SM L1 miss
    kL1LoadResp, ///< line data back to the SM
    kL1Store,    ///< write-through store (data+mask)
    kL1StoreAck, ///< store globally performed at the slice

    // Delivery hardening (only ever sent when fault injection is on).
    kDsNack, ///< slice -> CPU: DsPutX rejected (checksum mismatch), resend

    // Multi-GPU timestamp fast path (slice <-> remote home slice over the
    // DS network; only ever sent when tsLeaseTicks is configured).
    kTsRead, ///< slice -> home slice: lease request for a remotely-homed line
    kTsData, ///< home slice -> slice: leased data, txn = expiry tick
    kTsNack, ///< home slice -> slice: no lease, take the pull path
};

inline constexpr std::size_t kMsgTypeCount = 22;

const char* to_string(MsgType t);

/// True for message types that carry a full or partial data payload (used for
/// link-occupancy modelling and traffic accounting).
constexpr bool carriesData(MsgType t)
{
    switch (t) {
    case MsgType::kPut:
    case MsgType::kData:
    case MsgType::kDsPutX:
    case MsgType::kUcData:
    case MsgType::kL1LoadResp:
    case MsgType::kL1Store:
    case MsgType::kTsData:
        return true;
    default:
        return false;
    }
}

struct Message {
    MsgType type = MsgType::kAck;
    Addr addr = 0;           ///< line-aligned address of the subject line
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    NodeId requester = kInvalidNode; ///< original requester (snoops, data)
    std::uint64_t txn = 0;           ///< requester-assigned id, for debugging

    DataBlock data;
    ByteMask mask;        ///< valid bytes for partial writes; full for kData
    bool hasData = false;

    // kData / kSnpResp bookkeeping.
    bool exclusive = false;    ///< kData: no other sharer exists, grantee may take M
    bool suppliedData = false; ///< kSnpResp: snooped agent sent data to requester
    bool wasSharer = false;    ///< kSnpResp: snooped agent held the line
    bool dirty = false;        ///< kPut/kData: payload differs from memory

    Tick sentAt = 0;

    /// TxnProfiler span id this message's transaction belongs to. 0 (the
    /// default, and always when no profiler is attached) is inert: every
    /// profiling hook ignores it. Excluded from messageChecksum like the
    /// timing fields — it is observability metadata, not protocol state.
    std::uint64_t prof = 0;

    /// End-to-end integrity check over the fields a corruption fault may
    /// touch. Zero (never stamped) when fault injection is off; receivers
    /// only verify it when hardening is on, so the field is otherwise inert.
    std::uint32_t checksum = 0;

    /// On-wire size: 8 B control header (+line payload when data-carrying).
    std::uint32_t wireBytes() const
    {
        return carriesData(type) ? 8 + kLineSize : 8;
    }
};

/// FNV-1a over the delivery-relevant identity and payload of @p msg,
/// folded to 32 bits. Excludes msg.checksum itself and timing fields.
inline std::uint32_t messageChecksum(const Message& msg)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(static_cast<std::uint64_t>(msg.type));
    mix(msg.addr);
    mix(msg.txn);
    for (std::size_t i = 0; i < kLineSize; ++i) {
        h ^= msg.data.data()[i];
        h *= 0x100000001b3ull;
    }
    for (std::size_t i = 0; i < ByteMask::kWords; ++i)
        mix(msg.mask.word(i));
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

} // namespace dscoh
