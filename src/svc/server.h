// Unix-domain socket front end for the sweep service.
//
// serveSocket() is the daemon's main loop: it listens on a stream socket,
// pumps dscoh-svc-v1 lines through handleRequestLine(), and between
// connections scans the spool directory so file-drop submission works with
// no client at all. Connections are handled one at a time — the protocol
// is strictly one-line-in / one-line-out, clients connect per call, and a
// short receive timeout bounds how long a stalled peer can hold the loop.
#pragma once

#include <atomic>
#include <string>

#include "svc/service.h"

namespace dscoh::svc {

struct ServerOptions {
    std::string socketPath;
    /// poll() timeout between accepts; each timeout runs a spool scan and
    /// a service tick (deadline expiry, degraded-storage probe).
    int pollMs = 500;
    /// Idle timeout between lines (a silent client gets dropped).
    int recvTimeoutMs = 30000;
    /// Stall deadline for one line: a client that starts a request but
    /// has not finished it this many ms later gets an error and the boot —
    /// a drip-feeding peer cannot monopolize the single-connection loop.
    int lineDeadlineMs = 10000;
};

/// Runs the accept loop until a shutdown op arrives or @p stop becomes
/// true (signal handlers set it). Replaces any stale socket file at
/// @p socketPath (the daemon owns that path). Returns 0 on a clean stop,
/// kExitIo when the socket cannot be created.
int serveSocket(SweepService& svc, const ServerOptions& options,
                const std::atomic<bool>& stop);

} // namespace dscoh::svc
