// Client side of the dscoh-svc-v1 socket protocol.
//
// Deliberately connectionless from the caller's view: every call() opens
// the socket, sends one line, reads one line, closes. That keeps the
// server's one-connection-at-a-time loop fair across tenants and makes
// the client trivially retry-safe (every op is idempotent or carries an
// id). `dscoh_client watch` is built on polling status here — the server
// has no push channel by design.
#pragma once

#include <string>

namespace dscoh::svc {

class SvcClient {
public:
    explicit SvcClient(std::string socketPath)
        : socketPath_(std::move(socketPath))
    {
    }

    /// Sends @p requestLine (one dscoh-svc-v1 object, no newline needed)
    /// and returns the reply line in @p reply. False + @p error when the
    /// daemon is unreachable or the connection drops mid-reply; protocol-
    /// level failures still return true (the reply carries ok:false).
    bool call(const std::string& requestLine, std::string* reply,
              std::string* error) const;

    const std::string& socketPath() const { return socketPath_; }

private:
    std::string socketPath_;
};

} // namespace dscoh::svc
