#include "svc/wal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "snap/serializer.h"

namespace dscoh::svc {

namespace {

bool parseHex32(const std::string& s, std::uint32_t* out)
{
    if (s.size() != 8)
        return false;
    std::uint32_t v = 0;
    for (const char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint32_t>(c - 'a' + 10);
        else
            return false;
    }
    *out = v;
    return true;
}

} // namespace

std::string walFrame(const std::string& payload)
{
    char crc[16];
    std::snprintf(crc, sizeof crc, "!%08x ",
                  snap::crc32(payload.data(), payload.size()));
    return crc + payload + "\n";
}

WalReadResult readWal(const std::string& path)
{
    WalReadResult r;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return r;
    std::ostringstream os;
    os << in.rdbuf();
    const std::string data = os.str();

    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::size_t nl = data.find('\n', pos);
        if (nl == std::string::npos) {
            // No terminator: the record was mid-append when the process
            // died. Cut here.
            r.truncated = true;
            r.reason = "incomplete final record";
            break;
        }
        const std::string line = data.substr(pos, nl - pos);
        if (line.empty()) {
            pos = nl + 1;
            r.validBytes = pos;
            continue;
        }
        if (line[0] == '!') {
            std::uint32_t want = 0;
            if (line.size() < 10 || line[9] != ' ' ||
                !parseHex32(line.substr(1, 8), &want)) {
                r.truncated = true;
                r.reason = "malformed record frame";
                break;
            }
            const std::string payload = line.substr(10);
            if (snap::crc32(payload.data(), payload.size()) != want) {
                r.truncated = true;
                r.reason = "record CRC mismatch";
                break;
            }
            r.payloads.push_back(payload);
        } else if (line[0] == '{') {
            // Legacy unframed record (pre-CRC logs).
            r.payloads.push_back(line);
        } else {
            r.truncated = true;
            r.reason = "unrecognized record framing";
            break;
        }
        pos = nl + 1;
        r.validBytes = pos;
    }
    return r;
}

bool truncateWal(const std::string& path, std::uint64_t validBytes,
                 std::string* error)
{
    const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0) {
        *error = "cannot open " + path + ": " + std::strerror(errno);
        return false;
    }
    if (::ftruncate(fd, static_cast<off_t>(validBytes)) != 0) {
        *error = "truncate " + path + " failed: " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (::fsync(fd) != 0) {
        *error = "fsync " + path + " failed: " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    ::close(fd);
    return true;
}

} // namespace dscoh::svc
