// Weighted fair scheduling of sweep jobs across tenants.
//
// The service schedules at INDIVIDUAL-JOB granularity, not whole requests:
// a 44-job sweep from tenant A does not block tenant B's 4-job request for
// its whole duration — the worker pool interleaves them so every tenant
// with queued work makes progress in proportion to its weight.
//
// The policy is classic stride scheduling over a virtual clock: each
// dispatched job advances its tenant's virtual time by 1/weight, and the
// next job always comes from the backlogged tenant with the smallest
// virtual time (ties broken by tenant name, so dispatch order is fully
// deterministic). A tenant that was idle re-enters at the global virtual
// clock rather than its stale time, so sitting out does not bank credit.
// Within one tenant, requests run by priority (higher first), then
// admission order; jobs within a request stay FIFO.
//
// The scheduler is NOT thread-safe — SweepService serializes access under
// its own state mutex. Keeping it lock-free makes the policy directly
// unit-testable: feed a dispatch sequence, assert the interleaving.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dscoh::svc {

/// One schedulable unit: job @p jobIndex of request @p requestId.
struct JobUnit {
    std::string requestId;
    std::size_t jobIndex = 0;
};

class FairScheduler {
public:
    /// @p maxQueuedJobs bounds the TOTAL queued-but-undispatched jobs
    /// across all tenants (the service's backpressure limit); 0 means
    /// unbounded.
    explicit FairScheduler(std::size_t maxQueuedJobs = 0)
        : maxQueuedJobs_(maxQueuedJobs)
    {
    }

    /// Admits @p jobCount job units for a request. Fails (false + @p error)
    /// when admission would exceed the queue bound; the queue is left
    /// untouched, so the caller can reject the request outright.
    bool enqueue(const std::string& requestId, const std::string& tenant,
                 int priority, unsigned weight, std::size_t jobCount,
                 std::string* error);

    /// Pops the next unit under the fairness policy, or nullopt when no
    /// work is queued. Never blocks.
    std::optional<JobUnit> next();

    /// Like next(), but only tenants for which @p eligible returns true
    /// compete. The service's memory-budget gate: a tenant whose running
    /// jobs exhaust its byte budget is passed over (its virtual time does
    /// not advance, so it loses no share — the work just waits). A null
    /// predicate admits everyone.
    std::optional<JobUnit>
    next(const std::function<bool(const std::string& tenant)>& eligible);

    /// Drops every still-queued unit of @p requestId; units already handed
    /// out by next() are the caller's problem (they run to completion).
    /// Returns how many units were dropped.
    std::size_t cancel(const std::string& requestId);

    std::size_t queuedJobs() const { return queuedJobs_; }

    /// Point-in-time share accounting for /stats.
    struct TenantShare {
        std::string tenant;
        unsigned weight = 1;
        std::size_t queued = 0;          ///< units awaiting dispatch
        std::uint64_t dispatched = 0;    ///< units handed out, lifetime
        double virtualTime = 0.0;
    };
    std::vector<TenantShare> shares() const;

private:
    struct PendingRequest {
        std::string id;
        int priority = 0;
        std::uint64_t seq = 0; ///< admission order within the tenant
        std::deque<std::size_t> jobs;
    };
    struct Tenant {
        unsigned weight = 1;
        double vtime = 0.0;
        std::uint64_t dispatched = 0;
        /// Kept sorted: priority desc, then seq asc.
        std::deque<PendingRequest> requests;
        std::size_t queued() const
        {
            std::size_t n = 0;
            for (const PendingRequest& r : requests)
                n += r.jobs.size();
            return n;
        }
    };

    std::size_t maxQueuedJobs_ = 0;
    std::size_t queuedJobs_ = 0;
    std::uint64_t nextSeq_ = 0;
    /// Virtual time of the most recent dispatch; idle tenants re-enter here.
    double globalVtime_ = 0.0;
    std::map<std::string, Tenant> tenants_;
};

} // namespace dscoh::svc
