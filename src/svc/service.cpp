#include "svc/service.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/config_io.h"
#include "obs/json_lite.h"
#include "snap/serializer.h"
#include "svc/wal.h"

namespace fs = std::filesystem;

namespace dscoh::svc {

namespace {

std::string readWholeFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/// Strips the trailing newline renderProgressJson() appends, for embedding
/// progress documents inside larger JSON values.
std::string chomp(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
    return s;
}

void histogramJson(std::ostringstream& os, const char* name,
                   const Histogram& h)
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "\"%s\": {\"samples\": %llu, \"mean\": %.1f, "
                  "\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, "
                  "\"max\": %llu}",
                  name, static_cast<unsigned long long>(h.samples()),
                  h.mean(), h.percentile(50.0), h.percentile(90.0),
                  h.percentile(99.0),
                  static_cast<unsigned long long>(h.max()));
    os << buf;
}

/// Modelled peak footprint of one job of the request: the largest
/// sum-of-arrays across its jobs (jobs run one at a time per unit, so the
/// per-tenant budget gates on per-job, not per-request, bytes).
std::uint64_t maxJobBytes(const std::vector<ExperimentJob>& jobs)
{
    std::uint64_t worst = 0;
    for (const ExperimentJob& j : jobs) {
        const Workload* w = j.workload;
        if (w == nullptr) {
            if (!WorkloadRegistry::instance().has(j.code))
                continue;
            w = &WorkloadRegistry::instance().get(j.code);
        }
        std::uint64_t total = 0;
        for (const ArraySpec& a : w->arrays(j.size))
            total += a.bytes;
        worst = std::max(worst, total);
    }
    return worst;
}

} // namespace

SweepService::SweepService(const ServiceOptions& options) : opts_(options)
{
    if (opts_.stateDir.empty())
        throw std::runtime_error("sweep service: stateDir is required");
    std::error_code ec;
    for (const std::string sub : {"", "/jobs", "/cache", "/spool"}) {
        fs::create_directories(opts_.stateDir + sub, ec);
        if (ec)
            throw std::runtime_error("sweep service: cannot create " +
                                     opts_.stateDir + sub + ": " +
                                     ec.message());
    }
    sched_ = FairScheduler(opts_.maxQueuedJobs);
    {
        const std::lock_guard<std::mutex> lock(mu_);
        recover();
    }
    engine_ = std::make_unique<ResidentEngine>(
        opts_.workers, [this] { return pullNext(); });
}

SweepService::~SweepService()
{
    beginShutdown();
    engine_.reset(); // joins the pool
}

unsigned SweepService::workers() const
{
    return engine_ ? engine_->threads() : 0;
}

std::string SweepService::requestDir(const std::string& id) const
{
    return opts_.stateDir + "/jobs/" + id;
}

std::string SweepService::journalPath(const std::string& id) const
{
    return requestDir(id) + "/journal";
}

void SweepService::walAppendLocked(const std::string& payload)
{
    // Durable CRC-framed append; a SnapError propagates to the caller,
    // which decides between rollback (admission) and degrade (terminal).
    snap::durableAppendLine(opts_.stateDir + "/svc.journal",
                            walFrame(payload));
}

void SweepService::degradeLocked(const std::string& reason)
{
    if (degraded_)
        return;
    degraded_ = true;
    degradedReason_ = reason;
}

std::uint64_t SweepService::retryAfterMsLocked() const
{
    // Backlog drain estimate: queued+running jobs x mean job latency over
    // the worker pool. With no samples yet there is nothing to extrapolate
    // from, so suggest the floor.
    const std::uint64_t backlog = sched_.queuedJobs() + inflight_;
    const unsigned pool = std::max(1u, engine_ ? engine_->threads() : 1u);
    const double meanMs =
        jobLatencyMs_.samples() != 0 ? std::max(1.0, jobLatencyMs_.mean())
                                     : 0.0;
    const double est = static_cast<double>(backlog) * meanMs /
                       static_cast<double>(pool);
    return std::clamp<std::uint64_t>(static_cast<std::uint64_t>(est), 250,
                                     60000);
}

void SweepService::recover()
{
    // Pass 0: validate the log's framing; a torn tail (the final record of
    // a killed write, or an injected torn append) is cut off so replay
    // only trusts complete records.
    const std::string walPath = opts_.stateDir + "/svc.journal";
    WalReadResult wal = readWal(walPath);
    if (wal.truncated) {
        std::string err;
        if (!truncateWal(walPath, wal.validBytes, &err))
            throw std::runtime_error("sweep service: WAL has a torn tail (" +
                                     wal.reason +
                                     ") that cannot be cut: " + err);
    }

    // Pass 1: find every accepted request and its latest terminal event.
    std::vector<SweepRequest> accepted; // WAL order
    std::map<std::string, std::string> terminal;
    for (const std::string& payload : wal.payloads) {
        std::string err;
        const jsonlite::ValuePtr v = jsonlite::parse(payload, err);
        if (v == nullptr || !v->isObject())
            continue; // legacy torn line (pre-CRC log) — ignore
        const jsonlite::Value* ev = v->get("event");
        const jsonlite::Value* id = v->get("id");
        if (ev == nullptr || !ev->isString() || id == nullptr ||
            !id->isString())
            continue;
        if (ev->string == "accepted") {
            const jsonlite::Value* reqVal = v->get("request");
            SweepRequest r;
            std::string reqErr;
            if (reqVal == nullptr)
                continue;
            // jsonlite has no serializer; the WAL stores the request
            // pre-rendered as a string field instead.
            if (!reqVal->isString() ||
                !parseRequestJson(reqVal->string, &r, &reqErr))
                continue;
            r.id = id->string;
            accepted.push_back(std::move(r));
        } else {
            terminal[id->string] = ev->string;
        }
    }

    // Pass 2: re-admit everything with no terminal record, in WAL order,
    // so ids and scheduling order replay deterministically.
    for (SweepRequest& r : accepted) {
        // Keep nextId_ ahead of every id ever issued, terminal or not.
        unsigned long long n = 0;
        if (r.id.size() > 1 &&
            std::sscanf(r.id.c_str(), "r%llu", &n) == 1)
            nextId_ = std::max<std::uint64_t>(nextId_, n + 1);
        if (terminal.count(r.id) != 0)
            continue;
        std::string idOut, err;
        if (!admitLocked(std::move(r), /*fromWal=*/true, &idOut, &err,
                         nullptr))
            // An unreplayable request (e.g. a benchmark removed between
            // versions) is terminally failed rather than wedged forever.
            walAppendLocked("{\"event\": \"failed\", \"id\": \"" +
                            jsonEscape(idOut) + "\"}");
    }
}

bool SweepService::submit(SweepRequest r, std::string* idOut,
                          std::string* error, SubmitInfo* info)
{
    const std::lock_guard<std::mutex> lock(mu_);
    if (degraded_) {
        *error = "service is degraded (storage failure: " + degradedReason_ +
                 "); submissions are rejected until the disk recovers";
        ++degradedRejects_;
        if (info != nullptr)
            info->degraded = true;
        return false;
    }
    if (stop_ || draining_) {
        *error = "service is shutting down";
        ++shedSubmits_;
        if (info != nullptr) {
            info->shed = true;
            info->retryAfterMs = retryAfterMsLocked();
        }
        return false;
    }
    r.id.clear(); // ids are assigned here, never by the client
    return admitLocked(std::move(r), /*fromWal=*/false, idOut, error, info);
}

bool SweepService::admitLocked(SweepRequest r, bool fromWal,
                               std::string* idOut, std::string* error,
                               SubmitInfo* info)
{
    RequestState rs;
    *idOut = r.id;
    if (!expandJobs(r, &rs.jobs, error))
        return false;
    if (r.id.empty()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "r%06llu",
                      static_cast<unsigned long long>(nextId_++));
        r.id = buf;
    }
    const std::string id = r.id;

    rs.hashes.reserve(rs.jobs.size());
    for (const ExperimentJob& j : rs.jobs)
        rs.hashes.push_back(configHashOf(j.config));
    rs.results.resize(rs.jobs.size());
    rs.jobMemBytes = maxJobBytes(rs.jobs);

    // Anything this request's journal already covers (recovery, or a crash
    // straight after the last job) is replayed, not re-simulated.
    const std::vector<std::size_t> pending =
        replayJournal(rs.jobs, rs.hashes, journalPath(id), &rs.results);
    rs.done = rs.jobs.size() - pending.size();
    for (const ExperimentResult& res : rs.results)
        if (res.fromJournal && !res.ok)
            ++rs.failed;
    rs.remaining = pending.size();
    rs.req = r;
    rs.admittedAt = std::chrono::steady_clock::now();
    const std::uint64_t deadline =
        r.deadlineMs != 0 ? r.deadlineMs : opts_.defaultDeadlineMs;
    if (deadline != 0)
        rs.deadlineAt = rs.admittedAt + std::chrono::milliseconds(deadline);
    rs.cancelFlag = std::make_shared<std::atomic<bool>>(false);

    if (!pending.empty()) {
        if (!sched_.enqueue(id, r.tenant, r.priority, r.weight,
                            pending.size(), error)) {
            // Backpressure: nothing recorded. This is load shedding, not a
            // client error — tell the client when to come back.
            ++shedSubmits_;
            if (info != nullptr) {
                info->shed = true;
                info->retryAfterMs = retryAfterMsLocked();
            }
            return false;
        }
        // enqueue() numbers units 0..n-1; map them back to job indices.
        // FairScheduler hands out unit k for this request exactly once, so
        // unit k IS pending[k].
    }

    std::error_code ec;
    fs::create_directories(requestDir(id), ec);
    if (!fromWal) {
        try {
            snap::atomicWriteFile(requestDir(id) + "/request.json",
                                  renderRequestJson(r) + "\n");
            walAppendLocked("{\"event\": \"accepted\", \"id\": \"" +
                            jsonEscape(id) + "\", \"request\": \"" +
                            jsonEscape(renderRequestJson(r)) + "\"}");
        } catch (const snap::SnapError& e) {
            // The request is NOT durably accepted; roll the queue back and
            // reject, and flip degraded so subsequent submits fail fast.
            // (The torn WAL tail, if any, is cut on the next recovery.)
            sched_.cancel(id);
            degradeLocked(e.what());
            ++degradedRejects_;
            *error = "cannot journal the request (storage failure: " +
                     std::string(e.what()) + ")";
            if (info != nullptr)
                info->degraded = true;
            return false;
        }
    }

    auto [it, inserted] = requests_.emplace(id, std::move(rs));
    RequestState& state = it->second;
    if (state.remaining == 0) {
        // Fully covered by the journal (crash between the last journal
        // line and publication): publish immediately.
        finishLocked(id, state);
    } else {
        publishStatusLocked(id, state);
    }
    *idOut = id;
    cv_.notify_all();
    return true;
}

std::optional<ResidentEngine::Admitted> SweepService::pullNext()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (stop_)
            return std::nullopt;
        // Memory-budget gate: a tenant whose running jobs exhaust its byte
        // budget is skipped (soft — an idle tenant always gets one job, so
        // a single job bigger than the whole budget still runs).
        const auto eligible = [this](const std::string& tenant) {
            if (opts_.tenantMemBudgetBytes == 0)
                return true;
            const auto it = tenantRunningBytes_.find(tenant);
            const std::uint64_t running =
                it == tenantRunningBytes_.end() ? 0 : it->second;
            return running == 0 || running < opts_.tenantMemBudgetBytes;
        };
        if (std::optional<JobUnit> unit = sched_.next(eligible)) {
            auto it = requests_.find(unit->requestId);
            if (it == requests_.end())
                continue; // cancelled between enqueue and dispatch
            RequestState& rs = it->second;
            // The scheduler numbers this request's units 0..n-1 in the
            // order enqueued — map unit k to the k-th pending job index.
            std::size_t jobIndex = 0, seen = 0;
            for (std::size_t i = 0; i < rs.results.size(); ++i) {
                if (rs.results[i].fromJournal)
                    continue;
                if (seen++ == unit->jobIndex) {
                    jobIndex = i;
                    break;
                }
            }
            if (rs.state == "queued") {
                rs.state = "running";
                try {
                    publishStatusLocked(unit->requestId, rs);
                } catch (const snap::SnapError& e) {
                    degradeLocked(e.what()); // status is advisory; run on
                }
            }
            ++inflight_;
            tenantRunningBytes_[rs.req.tenant] += rs.jobMemBytes;

            ResidentEngine::Admitted a;
            a.job = rs.jobs[jobIndex];
            a.configHash = rs.hashes[jobIndex];
            a.options.snapDir = requestDir(unit->requestId);
            a.options.produceCacheDir = opts_.stateDir + "/cache";
            a.options.forkProduce = opts_.forkProduce;
            a.options.produceCacheMaxBytes = opts_.cacheMaxBytes;
            a.options.jobCheckpoint = opts_.jobCheckpoints;
            a.options.resumeCheckpoint = opts_.jobCheckpoints;
            a.options.cancel = rs.cancelFlag.get();
            const std::string id = unit->requestId;
            a.done = [this, id, jobIndex](ExperimentResult&& r) {
                onJobDone(id, jobIndex, std::move(r));
            };
            return a;
        }
        cv_.wait(lock);
    }
}

void SweepService::onJobDone(const std::string& id, std::size_t jobIndex,
                             ExperimentResult&& r)
{
    const std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    auto it = requests_.find(id);
    if (it == requests_.end()) {
        cv_.notify_all();
        return;
    }
    RequestState& rs = it->second;
    auto tenantBytes = tenantRunningBytes_.find(rs.req.tenant);
    if (tenantBytes != tenantRunningBytes_.end()) {
        tenantBytes->second -=
            std::min(tenantBytes->second, rs.jobMemBytes);
        if (tenantBytes->second == 0)
            tenantRunningBytes_.erase(tenantBytes);
    }

    jobLatencyMs_.sample(static_cast<std::uint64_t>(r.wallSeconds * 1e3));
    if (opts_.forkProduce) {
        if (r.produceTicksSaved > 0)
            ++cacheHits_;
        else
            ++cacheMisses_;
    }

    rs.results[jobIndex] = std::move(r);
    try {
        // Same durable append-before-count discipline as the batch engine:
        // the journal gains the line before counters advance, so a kill
        // here replays the job instead of losing it.
        snap::durableAppendLine(
            journalPath(id),
            journalLine(rs.results[jobIndex], rs.hashes[jobIndex]));
    } catch (const snap::SnapError& e) {
        // The in-memory result is still good — the request can finish; only
        // crash-replay coverage of this job is lost. Degrade so no new work
        // is accepted while the disk misbehaves.
        degradeLocked(e.what());
    }
    ++rs.done;
    if (!rs.results[jobIndex].ok)
        ++rs.failed;
    --rs.remaining;

    if (rs.remaining == 0)
        finishLocked(id, rs);
    else {
        try {
            publishStatusLocked(id, rs);
        } catch (const snap::SnapError& e) {
            degradeLocked(e.what());
        }
    }
    cv_.notify_all();
}

void SweepService::finishLocked(const std::string& id, RequestState& rs)
{
    const bool cancelled = rs.state == "cancelled";
    try {
        if (!cancelled) {
            // Order matters for crash safety: publish results first, then
            // the WAL terminal record, then dispose of the journal. A kill
            // between any two steps re-runs only replay + republication,
            // which is byte-identical by engine determinism.
            writeResultsJsonAtomic(requestDir(id) + "/results.json",
                                   rs.results);
            rs.state = rs.failed != 0 ? "failed" : "done";
        }
        walAppendLocked("{\"event\": \"" + rs.state + "\", \"id\": \"" +
                        jsonEscape(id) + "\"}");
    } catch (const snap::SnapError& e) {
        // The publication is owed, not lost: park it and let tick() retry
        // once the storage probe succeeds. In-memory state stays
        // non-terminal-looking to recovery (no terminal WAL record), which
        // is exactly right — a restart would re-admit and re-publish.
        if (!cancelled)
            rs.state = "running";
        rs.finishPending = true;
        degradeLocked(e.what());
        return;
    }
    rs.finishPending = false;
    finalizeJournal(journalPath(id), rs.failed != 0);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - rs.admittedAt)
            .count();
    requestLatencyMs_.sample(static_cast<std::uint64_t>(ms));
    try {
        publishStatusLocked(id, rs);
    } catch (const snap::SnapError& e) {
        degradeLocked(e.what()); // results are published; status is advisory
    }
}

void SweepService::cancelLocked(const std::string& id, RequestState& rs)
{
    const std::size_t dropped = sched_.cancel(id);
    rs.remaining -= dropped;
    rs.state = "cancelled";
    if (rs.cancelFlag)
        rs.cancelFlag->store(true, std::memory_order_relaxed);
    if (rs.remaining == 0)
        finishLocked(id, rs); // nothing in flight: terminal now
    else {
        try {
            publishStatusLocked(id, rs); // in-flight jobs stop, then terminal
        } catch (const snap::SnapError& e) {
            degradeLocked(e.what());
        }
    }
    cv_.notify_all();
}

bool SweepService::cancel(const std::string& id, std::string* error)
{
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = requests_.find(id);
    if (it == requests_.end()) {
        *error = "unknown request id '" + id + "'";
        return false;
    }
    RequestState& rs = it->second;
    if (rs.state == "done" || rs.state == "failed" ||
        rs.state == "cancelled") {
        *error = "request " + id + " is already " + rs.state;
        return false;
    }
    cancelLocked(id, rs);
    return true;
}

void SweepService::tick()
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();

    // Deadline sweep: a request past its wall-clock budget is cancelled
    // exactly like a client cancel (queued jobs dropped, running jobs
    // flagged down).
    for (auto& [id, rs] : requests_) {
        if (!rs.deadlineAt || now < *rs.deadlineAt)
            continue;
        if (rs.state != "queued" && rs.state != "running")
            continue;
        ++deadlineCancels_;
        cancelLocked(id, rs);
    }

    if (!degraded_)
        return;
    // Storage probe: one small atomic write through the full hardened
    // path. While it fails the service stays read-only; once it succeeds,
    // clear the flag and retry every publication the failure interrupted.
    try {
        snap::atomicWriteFile(opts_.stateDir + "/.storage-probe", "ok\n");
    } catch (const snap::SnapError&) {
        return; // still sick
    }
    degraded_ = false;
    degradedReason_.clear();
    for (auto& [id, rs] : requests_) {
        if (!rs.finishPending)
            continue;
        finishLocked(id, rs);
        if (degraded_)
            return; // relapsed mid-retry; the rest wait for the next probe
    }
}

bool SweepService::degraded() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return degraded_;
}

ProgressSnapshot SweepService::snapshotLocked(const std::string& id,
                                              const RequestState& rs) const
{
    ProgressSnapshot s;
    s.total = rs.jobs.size();
    s.done = rs.done;
    s.failed = rs.failed;
    s.elapsedSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - rs.admittedAt)
                           .count();
    s.state = rs.state;
    s.id = id;
    s.tenant = rs.req.tenant;
    return s;
}

void SweepService::publishStatusLocked(const std::string& id,
                                       const RequestState& rs) const
{
    snap::atomicWriteFile(requestDir(id) + "/status.json",
                          renderProgressJson(snapshotLocked(id, rs)));
}

bool SweepService::statusJson(const std::string& id, std::string* out,
                              std::string* error) const
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = requests_.find(id);
    if (it == requests_.end()) {
        *error = "unknown request id '" + id + "'";
        return false;
    }
    *out = renderProgressJson(snapshotLocked(id, it->second));
    return true;
}

std::string SweepService::listJson() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "{\"schema\": \"dscoh-svc-list-v1\", \"requests\": [";
    bool first = true;
    for (const auto& [id, rs] : requests_) {
        os << (first ? "" : ", ")
           << chomp(renderProgressJson(snapshotLocked(id, rs)));
        first = false;
    }
    os << "]}";
    return os.str();
}

std::string SweepService::statsJson() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t queued = 0, running = 0, done = 0, failed = 0,
                cancelled = 0;
    for (const auto& [id, rs] : requests_) {
        if (rs.state == "queued")
            ++queued;
        else if (rs.state == "running")
            ++running;
        else if (rs.state == "done")
            ++done;
        else if (rs.state == "failed")
            ++failed;
        else if (rs.state == "cancelled")
            ++cancelled;
    }
    std::ostringstream os;
    os << "{\"schema\": \"dscoh-svc-stats-v1\", \"queuedJobs\": "
       << sched_.queuedJobs() << ", \"runningJobs\": " << inflight_
       << ", \"workers\": " << (engine_ ? engine_->threads() : 0)
       << ", \"degraded\": " << (degraded_ ? "true" : "false");
    if (degraded_)
        os << ", \"degradedReason\": \"" << jsonEscape(degradedReason_)
           << "\"";
    os << ", \"requests\": {\"total\": " << requests_.size()
       << ", \"queued\": " << queued << ", \"running\": " << running
       << ", \"done\": " << done << ", \"failed\": " << failed
       << ", \"cancelled\": " << cancelled << "}"
       << ", \"produceCache\": {\"hits\": " << cacheHits_
       << ", \"misses\": " << cacheMisses_ << "}"
       << ", \"overload\": {\"shedSubmits\": " << shedSubmits_
       << ", \"degradedRejects\": " << degradedRejects_
       << ", \"deadlineCancels\": " << deadlineCancels_
       << ", \"retryAfterMs\": " << retryAfterMsLocked() << "}";
    os << ", \"tenants\": [";
    bool first = true;
    for (const FairScheduler::TenantShare& s : sched_.shares()) {
        const auto rb = tenantRunningBytes_.find(s.tenant);
        os << (first ? "" : ", ") << "{\"tenant\": \""
           << jsonEscape(s.tenant) << "\", \"weight\": " << s.weight
           << ", \"queued\": " << s.queued
           << ", \"dispatched\": " << s.dispatched
           << ", \"runningBytes\": "
           << (rb == tenantRunningBytes_.end() ? 0 : rb->second) << "}";
        first = false;
    }
    os << "], ";
    histogramJson(os, "jobLatencyMs", jobLatencyMs_);
    os << ", ";
    histogramJson(os, "requestLatencyMs", requestLatencyMs_);
    os << "}";
    return os.str();
}

void SweepService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true; // rejects new submits while we wait
    cv_.wait(lock, [this] {
        return sched_.queuedJobs() == 0 && inflight_ == 0;
    });
    // Idle reached; the service accepts work again (a drain is a fence,
    // not a shutdown — dscoh_client drain between batches must not wedge
    // the daemon).
    draining_ = false;
}

void SweepService::beginShutdown()
{
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
}

std::size_t SweepService::scanSpool()
{
    const std::string spool = opts_.stateDir + "/spool";
    std::vector<std::string> files;
    std::vector<std::string> quarantined;
    std::error_code ec;
    for (const fs::directory_entry& e : fs::directory_iterator(spool, ec)) {
        const std::string name = e.path().filename().string();
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            files.push_back(e.path().string());
        else if (name.size() > 9 &&
                 name.compare(name.size() - 9, 9, ".rejected") == 0)
            quarantined.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());

    // Self-heal quarantine notes: the .error beside a .rejected is written
    // best-effort at quarantine time, so a crash right there can leave a
    // rejected file with no explanation. The original reason died with
    // that process; repair with a generic note so the quarantine contract
    // (.rejected implies .error) holds across crashes.
    for (const std::string& rej : quarantined) {
        const std::string errPath =
            rej.substr(0, rej.size() - 9) + ".error";
        if (fs::exists(errPath, ec))
            continue;
        try {
            snap::atomicWriteFile(errPath,
                                  "quarantined (reason lost to a crash)\n");
        } catch (const snap::SnapError&) {
            // Still advisory; a later healthy scan repairs it.
        }
    }

    std::size_t admitted = 0;
    std::map<std::string, std::pair<std::uint64_t, unsigned>> stillAging;
    for (const std::string& path : files) {
        const std::string contents = readWholeFile(path);
        // A writer mid-copy leaves a file without its terminal newline (or
        // empty). Give it spoolQuarantineScans unchanged scans to finish
        // before quarantining — losing a request to a slow cp would
        // violate "no accepted request lost", and absorbing a prefix would
        // be worse.
        if (contents.empty() || contents.back() != '\n') {
            auto [size, scans] = spoolAging_.count(path) != 0
                                     ? spoolAging_[path]
                                     : std::make_pair(std::uint64_t{0}, 0u);
            if (contents.size() != size)
                scans = 0; // still growing: restart the clock
            ++scans;
            if (scans <= opts_.spoolQuarantineScans) {
                stillAging[path] = {contents.size(), scans};
                continue;
            }
            fs::rename(path, path + ".rejected", ec);
            try {
                snap::atomicWriteFile(path + ".error",
                                      contents.empty()
                                          ? "empty file\n"
                                          : "incomplete submission (no "
                                            "terminal newline)\n");
            } catch (const snap::SnapError&) {
                // Quarantine note is advisory; the rename already happened.
            }
            continue;
        }
        SweepRequest r;
        std::string id, error;
        SubmitInfo info;
        const bool ok = parseRequestJson(contents, &r, &error) &&
                        submit(std::move(r), &id, &error, &info);
        if (ok) {
            ++admitted;
            fs::remove(path, ec);
        } else if (info.shed || info.degraded) {
            // Transient rejection: leave the file for a later scan rather
            // than quarantining a perfectly good request.
        } else {
            fs::rename(path, path + ".rejected", ec);
            try {
                snap::atomicWriteFile(path + ".error", error + "\n");
            } catch (const snap::SnapError&) {
            }
        }
    }
    spoolAging_ = std::move(stillAging);
    return admitted;
}

} // namespace dscoh::svc
