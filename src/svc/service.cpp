#include "svc/service.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/config_io.h"
#include "obs/json_lite.h"
#include "snap/serializer.h"

namespace fs = std::filesystem;

namespace dscoh::svc {

namespace {

std::string readWholeFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/// Strips the trailing newline renderProgressJson() appends, for embedding
/// progress documents inside larger JSON values.
std::string chomp(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
    return s;
}

void histogramJson(std::ostringstream& os, const char* name,
                   const Histogram& h)
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "\"%s\": {\"samples\": %llu, \"mean\": %.1f, "
                  "\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, "
                  "\"max\": %llu}",
                  name, static_cast<unsigned long long>(h.samples()),
                  h.mean(), h.percentile(50.0), h.percentile(90.0),
                  h.percentile(99.0),
                  static_cast<unsigned long long>(h.max()));
    os << buf;
}

} // namespace

SweepService::SweepService(const ServiceOptions& options) : opts_(options)
{
    if (opts_.stateDir.empty())
        throw std::runtime_error("sweep service: stateDir is required");
    std::error_code ec;
    for (const std::string sub : {"", "/jobs", "/cache", "/spool"}) {
        fs::create_directories(opts_.stateDir + sub, ec);
        if (ec)
            throw std::runtime_error("sweep service: cannot create " +
                                     opts_.stateDir + sub + ": " +
                                     ec.message());
    }
    sched_ = FairScheduler(opts_.maxQueuedJobs);
    {
        const std::lock_guard<std::mutex> lock(mu_);
        recover();
    }
    engine_ = std::make_unique<ResidentEngine>(
        opts_.workers, [this] { return pullNext(); });
}

SweepService::~SweepService()
{
    beginShutdown();
    engine_.reset(); // joins the pool
}

unsigned SweepService::workers() const
{
    return engine_ ? engine_->threads() : 0;
}

std::string SweepService::requestDir(const std::string& id) const
{
    return opts_.stateDir + "/jobs/" + id;
}

std::string SweepService::journalPath(const std::string& id) const
{
    return requestDir(id) + "/journal";
}

void SweepService::walAppendLocked(const std::string& line)
{
    std::ofstream out(opts_.stateDir + "/svc.journal", std::ios::app);
    out << line << "\n";
    out.flush();
}

void SweepService::recover()
{
    // Pass 1: find every accepted request and its latest terminal event.
    const std::string wal = readWholeFile(opts_.stateDir + "/svc.journal");
    std::vector<SweepRequest> accepted; // WAL order
    std::map<std::string, std::string> terminal;
    std::istringstream lines(wal);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        std::string err;
        const jsonlite::ValuePtr v = jsonlite::parse(line, err);
        if (v == nullptr || !v->isObject())
            continue; // torn final line from a kill — ignore
        const jsonlite::Value* ev = v->get("event");
        const jsonlite::Value* id = v->get("id");
        if (ev == nullptr || !ev->isString() || id == nullptr ||
            !id->isString())
            continue;
        if (ev->string == "accepted") {
            const jsonlite::Value* reqVal = v->get("request");
            SweepRequest r;
            // The request is embedded as an object; re-render it so the
            // existing parser applies (requests are tiny).
            std::string reqErr;
            if (reqVal == nullptr)
                continue;
            // jsonlite has no serializer; the WAL stores the request
            // pre-rendered as a string field instead.
            if (!reqVal->isString() ||
                !parseRequestJson(reqVal->string, &r, &reqErr))
                continue;
            r.id = id->string;
            accepted.push_back(std::move(r));
        } else {
            terminal[id->string] = ev->string;
        }
    }

    // Pass 2: re-admit everything with no terminal line, in WAL order, so
    // ids and scheduling order replay deterministically.
    for (SweepRequest& r : accepted) {
        // Keep nextId_ ahead of every id ever issued, terminal or not.
        unsigned long long n = 0;
        if (r.id.size() > 1 &&
            std::sscanf(r.id.c_str(), "r%llu", &n) == 1)
            nextId_ = std::max<std::uint64_t>(nextId_, n + 1);
        if (terminal.count(r.id) != 0)
            continue;
        std::string idOut, err;
        if (!admitLocked(std::move(r), /*fromWal=*/true, &idOut, &err))
            // An unreplayable request (e.g. a benchmark removed between
            // versions) is terminally failed rather than wedged forever.
            walAppendLocked("{\"event\": \"failed\", \"id\": \"" +
                            jsonEscape(idOut) + "\"}");
    }
}

bool SweepService::submit(SweepRequest r, std::string* idOut,
                          std::string* error)
{
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || draining_) {
        *error = "service is shutting down";
        return false;
    }
    r.id.clear(); // ids are assigned here, never by the client
    return admitLocked(std::move(r), /*fromWal=*/false, idOut, error);
}

bool SweepService::admitLocked(SweepRequest r, bool fromWal,
                               std::string* idOut, std::string* error)
{
    RequestState rs;
    *idOut = r.id;
    if (!expandJobs(r, &rs.jobs, error))
        return false;
    if (r.id.empty()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "r%06llu",
                      static_cast<unsigned long long>(nextId_++));
        r.id = buf;
    }
    const std::string id = r.id;

    rs.hashes.reserve(rs.jobs.size());
    for (const ExperimentJob& j : rs.jobs)
        rs.hashes.push_back(configHashOf(j.config));
    rs.results.resize(rs.jobs.size());

    // Anything this request's journal already covers (recovery, or a crash
    // straight after the last job) is replayed, not re-simulated.
    const std::vector<std::size_t> pending =
        replayJournal(rs.jobs, rs.hashes, journalPath(id), &rs.results);
    rs.done = rs.jobs.size() - pending.size();
    for (const ExperimentResult& res : rs.results)
        if (res.fromJournal && !res.ok)
            ++rs.failed;
    rs.remaining = pending.size();
    rs.req = r;
    rs.admittedAt = std::chrono::steady_clock::now();

    if (!pending.empty()) {
        if (!sched_.enqueue(id, r.tenant, r.priority, r.weight,
                            pending.size(), error))
            return false; // backpressure: nothing recorded
        // enqueue() numbers units 0..n-1; map them back to job indices.
        // FairScheduler hands out unit k for this request exactly once, so
        // unit k IS pending[k].
    }

    std::error_code ec;
    fs::create_directories(requestDir(id), ec);
    if (!fromWal) {
        snap::atomicWriteFile(requestDir(id) + "/request.json",
                              renderRequestJson(r) + "\n");
        walAppendLocked("{\"event\": \"accepted\", \"id\": \"" +
                        jsonEscape(id) + "\", \"request\": \"" +
                        jsonEscape(renderRequestJson(r)) + "\"}");
    }

    auto [it, inserted] = requests_.emplace(id, std::move(rs));
    RequestState& state = it->second;
    if (state.remaining == 0) {
        // Fully covered by the journal (crash between the last journal
        // line and publication): publish immediately.
        finishLocked(id, state);
    } else {
        publishStatusLocked(id, state);
    }
    *idOut = id;
    cv_.notify_all();
    return true;
}

std::optional<ResidentEngine::Admitted> SweepService::pullNext()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (stop_)
            return std::nullopt;
        if (std::optional<JobUnit> unit = sched_.next()) {
            auto it = requests_.find(unit->requestId);
            if (it == requests_.end())
                continue; // cancelled between enqueue and dispatch
            RequestState& rs = it->second;
            // The scheduler numbers this request's units 0..n-1 in the
            // order enqueued — map unit k to the k-th pending job index.
            std::size_t jobIndex = 0, seen = 0;
            for (std::size_t i = 0; i < rs.results.size(); ++i) {
                if (rs.results[i].fromJournal)
                    continue;
                if (seen++ == unit->jobIndex) {
                    jobIndex = i;
                    break;
                }
            }
            if (rs.state == "queued") {
                rs.state = "running";
                publishStatusLocked(unit->requestId, rs);
            }
            ++inflight_;

            ResidentEngine::Admitted a;
            a.job = rs.jobs[jobIndex];
            a.configHash = rs.hashes[jobIndex];
            a.options.snapDir = requestDir(unit->requestId);
            a.options.produceCacheDir = opts_.stateDir + "/cache";
            a.options.forkProduce = opts_.forkProduce;
            a.options.produceCacheMaxBytes = opts_.cacheMaxBytes;
            a.options.jobCheckpoint = opts_.jobCheckpoints;
            a.options.resumeCheckpoint = opts_.jobCheckpoints;
            const std::string id = unit->requestId;
            a.done = [this, id, jobIndex](ExperimentResult&& r) {
                onJobDone(id, jobIndex, std::move(r));
            };
            return a;
        }
        cv_.wait(lock);
    }
}

void SweepService::onJobDone(const std::string& id, std::size_t jobIndex,
                             ExperimentResult&& r)
{
    const std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    auto it = requests_.find(id);
    if (it == requests_.end()) {
        cv_.notify_all();
        return;
    }
    RequestState& rs = it->second;

    jobLatencyMs_.sample(static_cast<std::uint64_t>(r.wallSeconds * 1e3));
    if (opts_.forkProduce) {
        if (r.produceTicksSaved > 0)
            ++cacheHits_;
        else
            ++cacheMisses_;
    }

    rs.results[jobIndex] = std::move(r);
    {
        // Same append-and-flush discipline as the batch engine: the
        // journal gains the line before counters advance, so a kill here
        // replays the job instead of losing it.
        std::ofstream out(journalPath(id), std::ios::app);
        out << journalLine(rs.results[jobIndex], rs.hashes[jobIndex]);
        out.flush();
    }
    ++rs.done;
    if (!rs.results[jobIndex].ok)
        ++rs.failed;
    --rs.remaining;

    if (rs.remaining == 0)
        finishLocked(id, rs);
    else
        publishStatusLocked(id, rs);
    cv_.notify_all();
}

void SweepService::finishLocked(const std::string& id, RequestState& rs)
{
    const bool cancelled = rs.state == "cancelled";
    if (!cancelled) {
        // Order matters for crash safety: publish results first, then the
        // WAL terminal line, then dispose of the journal. A kill between
        // any two steps re-runs only replay + republication, which is
        // byte-identical by engine determinism.
        writeResultsJsonAtomic(requestDir(id) + "/results.json",
                               rs.results);
        rs.state = rs.failed != 0 ? "failed" : "done";
    }
    walAppendLocked("{\"event\": \"" + rs.state + "\", \"id\": \"" +
                    jsonEscape(id) + "\"}");
    finalizeJournal(journalPath(id), rs.failed != 0);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - rs.admittedAt)
            .count();
    requestLatencyMs_.sample(static_cast<std::uint64_t>(ms));
    publishStatusLocked(id, rs);
}

ProgressSnapshot SweepService::snapshotLocked(const std::string& id,
                                              const RequestState& rs) const
{
    ProgressSnapshot s;
    s.total = rs.jobs.size();
    s.done = rs.done;
    s.failed = rs.failed;
    s.elapsedSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - rs.admittedAt)
                           .count();
    s.state = rs.state;
    s.id = id;
    s.tenant = rs.req.tenant;
    return s;
}

void SweepService::publishStatusLocked(const std::string& id,
                                       const RequestState& rs) const
{
    snap::atomicWriteFile(requestDir(id) + "/status.json",
                          renderProgressJson(snapshotLocked(id, rs)));
}

bool SweepService::statusJson(const std::string& id, std::string* out,
                              std::string* error) const
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = requests_.find(id);
    if (it == requests_.end()) {
        *error = "unknown request id '" + id + "'";
        return false;
    }
    *out = renderProgressJson(snapshotLocked(id, it->second));
    return true;
}

std::string SweepService::listJson() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "{\"schema\": \"dscoh-svc-list-v1\", \"requests\": [";
    bool first = true;
    for (const auto& [id, rs] : requests_) {
        os << (first ? "" : ", ")
           << chomp(renderProgressJson(snapshotLocked(id, rs)));
        first = false;
    }
    os << "]}";
    return os.str();
}

bool SweepService::cancel(const std::string& id, std::string* error)
{
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = requests_.find(id);
    if (it == requests_.end()) {
        *error = "unknown request id '" + id + "'";
        return false;
    }
    RequestState& rs = it->second;
    if (rs.state == "done" || rs.state == "failed" ||
        rs.state == "cancelled") {
        *error = "request " + id + " is already " + rs.state;
        return false;
    }
    const std::size_t dropped = sched_.cancel(id);
    rs.remaining -= dropped;
    rs.state = "cancelled";
    if (rs.remaining == 0)
        finishLocked(id, rs); // nothing in flight: terminal now
    else
        publishStatusLocked(id, rs); // in-flight jobs finish, then terminal
    cv_.notify_all();
    return true;
}

std::string SweepService::statsJson() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t queued = 0, running = 0, done = 0, failed = 0,
                cancelled = 0;
    for (const auto& [id, rs] : requests_) {
        if (rs.state == "queued")
            ++queued;
        else if (rs.state == "running")
            ++running;
        else if (rs.state == "done")
            ++done;
        else if (rs.state == "failed")
            ++failed;
        else if (rs.state == "cancelled")
            ++cancelled;
    }
    std::ostringstream os;
    os << "{\"schema\": \"dscoh-svc-stats-v1\", \"queuedJobs\": "
       << sched_.queuedJobs() << ", \"runningJobs\": " << inflight_
       << ", \"workers\": " << (engine_ ? engine_->threads() : 0)
       << ", \"requests\": {\"total\": " << requests_.size()
       << ", \"queued\": " << queued << ", \"running\": " << running
       << ", \"done\": " << done << ", \"failed\": " << failed
       << ", \"cancelled\": " << cancelled << "}"
       << ", \"produceCache\": {\"hits\": " << cacheHits_
       << ", \"misses\": " << cacheMisses_ << "}";
    os << ", \"tenants\": [";
    bool first = true;
    for (const FairScheduler::TenantShare& s : sched_.shares()) {
        os << (first ? "" : ", ") << "{\"tenant\": \""
           << jsonEscape(s.tenant) << "\", \"weight\": " << s.weight
           << ", \"queued\": " << s.queued
           << ", \"dispatched\": " << s.dispatched << "}";
        first = false;
    }
    os << "], ";
    histogramJson(os, "jobLatencyMs", jobLatencyMs_);
    os << ", ";
    histogramJson(os, "requestLatencyMs", requestLatencyMs_);
    os << "}";
    return os.str();
}

void SweepService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true; // rejects new submits while we wait
    cv_.wait(lock, [this] {
        return sched_.queuedJobs() == 0 && inflight_ == 0;
    });
    // Idle reached; the service accepts work again (a drain is a fence,
    // not a shutdown — dscoh_client drain between batches must not wedge
    // the daemon).
    draining_ = false;
}

void SweepService::beginShutdown()
{
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
}

std::size_t SweepService::scanSpool()
{
    const std::string spool = opts_.stateDir + "/spool";
    std::vector<std::string> files;
    std::error_code ec;
    for (const fs::directory_entry& e : fs::directory_iterator(spool, ec)) {
        const std::string name = e.path().filename().string();
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());

    std::size_t admitted = 0;
    for (const std::string& path : files) {
        SweepRequest r;
        std::string id, error;
        const bool ok = parseRequestJson(readWholeFile(path), &r, &error) &&
                        submit(std::move(r), &id, &error);
        if (ok) {
            ++admitted;
            fs::remove(path, ec);
        } else {
            fs::rename(path, path + ".rejected", ec);
            snap::atomicWriteFile(path + ".error", error + "\n");
        }
    }
    return admitted;
}

} // namespace dscoh::svc
