// CRC-framed write-ahead-log records for the sweep service.
//
// Every service WAL record is one line:
//
//   !<8 hex digits of CRC-32 over the payload> <payload>\n
//
// The frame makes torn tails DETECTABLE instead of merely parseable-or-not:
// a record that lost its tail to a crash (or an injected torn write) fails
// its CRC, and replay truncates the log at the start of that record rather
// than erroring out or silently absorbing garbage. Everything before the
// first bad record is trusted; nothing after it can be (append order means
// later records were written later).
//
// Legacy logs (PR 9 wrote bare JSON lines) still replay: a line starting
// with '{' is accepted unframed. Only the tail-truncation guarantee is
// weaker for them, exactly as it was before this format existed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dscoh::svc {

/// Frames @p payload as one CRC'ed WAL line (with trailing newline).
std::string walFrame(const std::string& payload);

struct WalReadResult {
    /// Payloads of every valid record, in file order.
    std::vector<std::string> payloads;
    /// Bytes of the longest valid prefix (where a truncation would cut).
    std::uint64_t validBytes = 0;
    /// True when the file had a torn/corrupt tail past validBytes.
    bool truncated = false;
    /// Why the tail was rejected (empty when !truncated).
    std::string reason;
};

/// Reads and validates @p path. A missing file yields an empty, clean
/// result. Validation stops at the first bad record: incomplete final
/// line, CRC mismatch, or unrecognized framing.
WalReadResult readWal(const std::string& path);

/// Truncates @p path to @p validBytes and fsyncs it, discarding a torn
/// tail found by readWal(). Returns false (with @p error) on failure.
bool truncateWal(const std::string& path, std::uint64_t validBytes,
                 std::string* error);

} // namespace dscoh::svc
