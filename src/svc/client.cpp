#include "svc/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dscoh::svc {

bool SvcClient::call(const std::string& requestLine, std::string* reply,
                     std::string* error) const
{
    if (socketPath_.size() >= sizeof(sockaddr_un{}.sun_path)) {
        *error = "socket path too long: " + socketPath_;
        return false;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath_.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) < 0) {
        *error = "cannot reach daemon at " + socketPath_ + ": " +
                 std::strerror(errno);
        ::close(fd);
        return false;
    }

    const std::string line = requestLine + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            *error = std::string("send: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }

    reply->clear();
    char c = 0;
    for (;;) {
        const ssize_t n = ::recv(fd, &c, 1, 0);
        if (n <= 0) {
            *error = "connection dropped before a full reply";
            ::close(fd);
            return false;
        }
        if (c == '\n')
            break;
        reply->push_back(c);
    }
    ::close(fd);
    return true;
}

} // namespace dscoh::svc
