// The sweep service's unit of admission.
//
// A SweepRequest is what a tenant asks the daemon for: "run this set of
// benchmarks at this size under these modes with this config, at this
// priority, on my behalf". It is deliberately the same shape `dscoh_sweep`
// builds from its command line, so the batch CLI is a thin client: one
// request expands (expandJobs) into exactly the job list makeSweepJobs
// would produce, and the per-request results.json is byte-identical
// between embedded and daemon execution.
//
// Requests travel as single-line JSON — over the dscoh-svc-v1 socket
// protocol, in spool files, and embedded in the service's write-ahead
// journal — so render/parse round-trip exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment_engine.h"

namespace dscoh::svc {

struct SweepRequest {
    /// Assigned by the service at admission ("r000001", ...); empty in a
    /// not-yet-submitted request.
    std::string id;
    std::string tenant = "default";
    /// Higher runs first among a tenant's own queued requests.
    int priority = 0;
    /// This tenant's fair-share weight (>= 1): relative fraction of the
    /// worker pool while multiple tenants have queued work.
    unsigned weight = 1;
    InputSize size = InputSize::kSmall;
    /// Benchmark codes; empty = every registered benchmark.
    std::vector<std::string> codes;
    /// Coherence modes; empty = {ccsm, ds} (the Fig. 4/5 pair).
    std::vector<CoherenceMode> modes;
    /// "key = value" config lines applied over the Table I defaults
    /// (core/config_io); empty = defaults.
    std::string configText;
    /// Wall-clock budget from admission, milliseconds; past it the service
    /// cancels the request (queued jobs dropped, running jobs told to stop
    /// via their cooperative cancel flag). 0 = no deadline.
    std::uint64_t deadlineMs = 0;
};

/// One line of JSON (no trailing newline), deterministic field order;
/// parseRequestJson() round-trips it exactly.
std::string renderRequestJson(const SweepRequest& r);

/// Parses a request object (from a client, a spool file, or the WAL).
/// Unknown fields are ignored; a malformed document or field fails with a
/// deterministic message in @p error. Does NOT validate codes/config —
/// expandJobs() does, so admission can reject with a precise reason.
bool parseRequestJson(const std::string& text, SweepRequest* out,
                      std::string* error);

/// Expands the request into the engine's job list — the same cross
/// product, in the same order, as the batch sweep (makeSweepJobs). Fails
/// (false + @p error) on an unknown benchmark code or bad config text.
bool expandJobs(const SweepRequest& r, std::vector<ExperimentJob>* jobs,
                std::string* error);

/// Escapes @p s for embedding in a JSON string literal.
std::string jsonEscape(const std::string& s);

} // namespace dscoh::svc
