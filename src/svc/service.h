// The sweep service: a resident, multi-tenant front end to the
// ExperimentEngine.
//
// SweepService owns everything between "a tenant submitted a request" and
// "that request's results.json is published": admission (expansion +
// bounded-queue backpressure + overload shedding), scheduling
// (FairScheduler, per-job granularity, per-tenant memory budgets),
// execution (ResidentEngine worker pool with cooperative cancellation),
// the shared produce-phase snapshot cache, per-request crash journals, and
// a CRC-framed service write-ahead journal so a SIGKILLed daemon restarts
// into exactly the queue it was killed with.
//
// Durability contract (the PR 9 keystone, now storage-fault hardened):
// every admitted request eventually publishes a results.json byte-identical
// to what a fresh, uninterrupted run of the same request would publish — no
// matter how many times the daemon is killed and restarted in between, and
// no matter what the disk does short of losing fsync'ed data. The pieces:
//
//   1. Admission appends an "accepted" WAL record embedding the full
//      request BEFORE the request is queued; terminal states append "done"
//      / "failed" / "cancelled" AFTER results are published. Every record
//      is CRC-framed (svc/wal.h) and fsync'ed (snap::durableAppendLine);
//      recovery validates the log, truncates a torn tail, and re-admits
//      every request with no terminal record.
//   2. Each request has its own completed-job journal (jobs/<id>/journal,
//      the PR 4 format, durably appended); recovery replays it so finished
//      jobs are never re-simulated, and in-flight jobs restart from their
//      rolling phase checkpoint.
//   3. Engine determinism (results in submission order, bit-identical
//      across thread counts, restore-determinism for checkpoints) makes
//      the replayed+resumed result stream identical to the uninterrupted
//      one.
//
// Overload & failure behaviour: a persistent storage failure (ENOSPC,
// repeated EIO) flips the service DEGRADED instead of crashing it —
// submits are rejected with a "degraded" reply, status/list/stats keep
// answering from memory, and a periodic storage probe (tick()) restores
// full service (including any publication the failure interrupted) once
// the disk recovers. Queue-full and draining rejections carry an explicit
// retry-after hint sized from the live job-latency histogram.
//
// State directory layout:
//   <stateDir>/svc.journal        service WAL (CRC-framed JSON lines)
//   <stateDir>/jobs/<id>/         per-request: request.json, journal,
//                                 status.json, results.json
//   <stateDir>/cache/             shared produce-phase snapshot cache
//   <stateDir>/spool/             drop-a-file request intake
//
// Thread safety: every public method is safe to call from any thread
// (protocol handler, spool scanner, tests); internal state is guarded by
// one mutex, and job execution happens outside it on the worker pool.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exp/experiment_engine.h"
#include "exp/progress.h"
#include "sim/stats.h"
#include "svc/request.h"
#include "svc/scheduler.h"

namespace dscoh::svc {

struct ServiceOptions {
    std::string stateDir;
    /// Worker threads (0 = hardware concurrency).
    unsigned workers = 0;
    /// Backpressure: max queued-but-undispatched jobs across all tenants
    /// (0 = unbounded). Submits that would exceed it are shed with a
    /// retry-after hint.
    std::size_t maxQueuedJobs = 0;
    /// Share the CPU produce phase across tenants through the cache dir.
    bool forkProduce = true;
    /// Byte budget for that cache (0 = unbounded), LRU-evicted.
    std::uint64_t cacheMaxBytes = 0;
    /// Per-job produce checkpoints inside each request dir. The WAL plus
    /// the per-request journal already resume at job granularity; this
    /// only saves re-running the one job a crash interrupted, at a
    /// snapshot write per job — too slow to be the default.
    bool jobCheckpoints = false;
    /// Soft per-tenant in-flight memory budget, bytes (0 = unbounded): a
    /// tenant whose RUNNING jobs' modelled footprints reach it is passed
    /// over by the scheduler until one finishes. Soft: a tenant with
    /// nothing running always gets one job, so an oversized single job
    /// still executes rather than wedging.
    std::uint64_t tenantMemBudgetBytes = 0;
    /// Deadline applied to requests that do not carry their own (ms,
    /// 0 = none). Past its deadline a request is cancelled: queued jobs
    /// dropped, running jobs stopped through their cancel flag.
    std::uint64_t defaultDeadlineMs = 0;
    /// Spool scans an incomplete file (empty, or no terminal newline) must
    /// survive unchanged before it is quarantined as ".rejected" — gives a
    /// slow writer time to finish.
    unsigned spoolQuarantineScans = 3;
};

/// Why (and how) a submit was rejected, for protocol replies and clients.
struct SubmitInfo {
    /// Load shedding (queue full / draining): same request later is fine.
    bool shed = false;
    /// Storage-degraded: writes are failing, service is read-only.
    bool degraded = false;
    /// When shed: suggested client backoff, from live service latency.
    std::uint64_t retryAfterMs = 0;
};

class SweepService {
public:
    /// Creates the state directory tree, replays the WAL (truncating a
    /// torn tail, re-admitting every non-terminal request), and starts the
    /// worker pool. Throws std::runtime_error when the state dir cannot be
    /// created.
    explicit SweepService(const ServiceOptions& options);
    /// Finishes in-flight jobs (queued ones stay journaled for the next
    /// start), then joins the pool. Prefer drain() first for a clean stop.
    ~SweepService();

    SweepService(const SweepService&) = delete;
    SweepService& operator=(const SweepService&) = delete;

    /// Admits a request: validates (expandJobs), assigns the next id,
    /// journals it, queues its jobs. On success returns true and fills
    /// @p r.id (also echoed via @p idOut). Rejections (bad request, queue
    /// full, degraded, draining) leave the service untouched; when
    /// @p info is non-null it says whether the rejection was shedding or
    /// degradation and what backoff to suggest.
    bool submit(SweepRequest r, std::string* idOut, std::string* error,
                SubmitInfo* info = nullptr);

    /// One-line dscoh-progress-v2 document for the request, or false +
    /// @p error for an unknown id.
    bool statusJson(const std::string& id, std::string* out,
                    std::string* error) const;

    /// Every known request as a JSON array document (dscoh-svc-list-v1),
    /// ordered by id.
    std::string listJson() const;

    /// Drops the request's still-queued jobs and raises its cancel flag so
    /// running jobs stop at their next check; the request finishes
    /// "cancelled" and publishes no results. False for unknown or
    /// already-terminal ids.
    bool cancel(const std::string& id, std::string* error);

    /// Service counters: queue depth, per-tenant shares, produce-cache
    /// hits, job/request latency histograms, overload/degraded state
    /// (dscoh-svc-stats-v1).
    std::string statsJson() const;

    /// Periodic maintenance, called from the server's poll loop (and
    /// tests): expires request deadlines, probes the disk while degraded
    /// and, on recovery, finishes publications the failure interrupted.
    void tick();

    /// True while storage writes are failing (submits rejected).
    bool degraded() const;

    /// Stops admission and blocks until every queued and running job has
    /// finished. Safe to call repeatedly; submit() fails while draining.
    void drain();

    /// Stops handing out work (running jobs still complete; queued jobs
    /// remain journaled for the next start). Returns immediately; the
    /// destructor joins the pool.
    void beginShutdown();

    /// Scans <stateDir>/spool for "*.json" request files (sorted by name),
    /// submitting each and deleting it; malformed/rejected files are
    /// renamed "<name>.rejected" with the reason in "<name>.error".
    /// Incomplete files (empty, or missing the terminal newline) are given
    /// spoolQuarantineScans scans to finish before the same quarantine.
    /// Returns the number of requests admitted.
    std::size_t scanSpool();

    /// The request directory for @p id (where results.json lands).
    std::string requestDir(const std::string& id) const;

    unsigned workers() const;

private:
    struct RequestState {
        SweepRequest req;
        std::vector<ExperimentJob> jobs;
        std::vector<std::uint64_t> hashes;
        std::vector<ExperimentResult> results;
        std::size_t done = 0;   ///< completed jobs (replayed ones included)
        std::size_t failed = 0;
        /// Queued + running jobs still owed; terminal when it reaches 0.
        std::size_t remaining = 0;
        /// queued | running | done | failed | cancelled
        std::string state = "queued";
        std::chrono::steady_clock::time_point admittedAt;
        /// Deadline expiry (when the request or options set one).
        std::optional<std::chrono::steady_clock::time_point> deadlineAt;
        /// Raised on cancel/deadline; running jobs poll it between slices.
        /// shared_ptr: workers outlive the map entry on late completion.
        std::shared_ptr<std::atomic<bool>> cancelFlag;
        /// Modelled peak footprint of one job (max over the request's
        /// jobs), for the tenant memory budget.
        std::uint64_t jobMemBytes = 0;
        /// Terminal work (publish + WAL + journal disposal) is owed but
        /// failed on a degraded disk; retried by tick() on recovery.
        bool finishPending = false;
    };

    /// Re-admits every non-terminal WAL request (locked ctor context).
    void recover();
    /// Core admission; assumes @p mu_ is held. @p fromWal skips the WAL
    /// append (the record is already there) and preserves r.id.
    bool admitLocked(SweepRequest r, bool fromWal, std::string* idOut,
                     std::string* error, SubmitInfo* info);
    /// Marks terminal state, publishes results, appends the WAL terminal
    /// record, finalizes the journal. On storage failure the request is
    /// parked finishPending and the service degrades. Assumes @p mu_ held.
    void finishLocked(const std::string& id, RequestState& rs);
    void publishStatusLocked(const std::string& id,
                             const RequestState& rs) const;
    ProgressSnapshot snapshotLocked(const std::string& id,
                                    const RequestState& rs) const;
    void walAppendLocked(const std::string& payload);
    /// Flips the service degraded (idempotent). Assumes @p mu_ is held.
    void degradeLocked(const std::string& reason);
    /// Suggested client backoff from queue depth and live job latency.
    std::uint64_t retryAfterMsLocked() const;
    /// Cancel core shared by client cancels and deadline expiry.
    void cancelLocked(const std::string& id, RequestState& rs);
    std::optional<ResidentEngine::Admitted> pullNext();
    void onJobDone(const std::string& id, std::size_t jobIndex,
                   ExperimentResult&& r);
    std::string journalPath(const std::string& id) const;

    ServiceOptions opts_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    bool draining_ = false;
    std::uint64_t nextId_ = 1;
    std::size_t inflight_ = 0;
    FairScheduler sched_;
    std::map<std::string, RequestState> requests_;
    /// Modelled bytes of each tenant's RUNNING jobs (memory budget gate).
    std::map<std::string, std::uint64_t> tenantRunningBytes_;
    bool degraded_ = false;
    std::string degradedReason_;
    std::uint64_t shedSubmits_ = 0;    ///< submits rejected for load
    std::uint64_t deadlineCancels_ = 0;
    std::uint64_t degradedRejects_ = 0;
    /// Incomplete spool files: name -> (last size, unchanged-scan count).
    std::map<std::string, std::pair<std::uint64_t, unsigned>> spoolAging_;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t cacheMisses_ = 0;
    Histogram jobLatencyMs_{100, 64};     ///< per-job wall ms
    Histogram requestLatencyMs_{500, 64}; ///< admit-to-publish wall ms
    /// Last member: workers start pulling the moment this constructs.
    std::unique_ptr<ResidentEngine> engine_;
};

} // namespace dscoh::svc
