// The dscoh-svc-v1 wire protocol: line-delimited JSON over a Unix-domain
// stream socket.
//
// Each request is one JSON object on one line; each reply is one JSON
// object on one line. Replies always carry "ok" (bool); failures add
// "error" (string), successes add op-specific fields. Ops:
//
//   {"op": "ping"}                      -> {"ok": true, "schema": "dscoh-svc-v1", "workers": N}
//   {"op": "submit", "request": "..."}  -> {"ok": true, "id": "r000001", "dir": "<stateDir>/jobs/r000001"}
//       ("request" is a rendered SweepRequest object as a JSON string —
//        the same document renderRequestJson() produces / spool files hold)
//   {"op": "status", "id": "r000001"}   -> {"ok": true, "status": {<dscoh-progress-v2>}}
//   {"op": "list"}                      -> {"ok": true, "list": {<dscoh-svc-list-v1>}}
//   {"op": "cancel", "id": "r000001"}   -> {"ok": true, "id": "r000001"}
//   {"op": "stats"}                     -> {"ok": true, "stats": {<dscoh-svc-stats-v1>}}
//   {"op": "drain"}                     -> {"ok": true}   (blocks until idle)
//   {"op": "shutdown"}                  -> {"ok": true}   (server exits after replying)
//
// The handler is a pure function of (service, line) so protocol tests need
// no sockets; the socket server is a thin line pump around it.
#pragma once

#include <string>

#include "svc/service.h"

namespace dscoh::svc {

inline constexpr char kProtocolSchema[] = "dscoh-svc-v1";

/// Executes one protocol line against @p svc and returns the reply line
/// (no trailing newline). Malformed input yields an ok:false reply, never
/// a throw. Sets @p *shutdown (when non-null) on a shutdown op, after
/// calling svc.beginShutdown().
std::string handleRequestLine(SweepService& svc, const std::string& line,
                              bool* shutdown);

} // namespace dscoh::svc
