// The dscoh-svc-v1 wire protocol: line-delimited JSON over a Unix-domain
// stream socket.
//
// Each request is one JSON object on one line; each reply is one JSON
// object on one line. Replies always carry "ok" (bool); failures add
// "error" (string), successes add op-specific fields. Ops:
//
//   {"op": "ping"}                      -> {"ok": true, "schema": "dscoh-svc-v1", "workers": N}
//   {"op": "submit", "request": "..."}  -> {"ok": true, "id": "r000001", "dir": "<stateDir>/jobs/r000001"}
//       ("request" is a rendered SweepRequest object as a JSON string —
//        the same document renderRequestJson() produces / spool files hold)
//   {"op": "status", "id": "r000001"}   -> {"ok": true, "status": {<dscoh-progress-v2>}}
//   {"op": "list"}                      -> {"ok": true, "list": {<dscoh-svc-list-v1>}}
//   {"op": "cancel", "id": "r000001"}   -> {"ok": true, "id": "r000001"}
//   {"op": "stats"}                     -> {"ok": true, "stats": {<dscoh-svc-stats-v1>}}
//   {"op": "drain"}                     -> {"ok": true}   (blocks until idle)
//   {"op": "shutdown"}                  -> {"ok": true}   (server exits after replying)
//
// Overload/degraded rejections are distinguishable from client errors:
// a shed submit reply carries "shed": true and "retryAfterMs": N (back off
// and retry the identical request); a storage-degraded reply carries
// "degraded": true (the service is read-only until its disk recovers).
//
// The handler is a pure function of (service, line) so protocol tests need
// no sockets; the socket server is a thin line pump around it.
#pragma once

#include <string>

#include "svc/service.h"

namespace dscoh::svc {

inline constexpr char kProtocolSchema[] = "dscoh-svc-v1";

/// Upper bound on one protocol line (request or reply). Longer input is a
/// protocol violation, not a request — the reader rejects it without
/// buffering the rest, so an oversized (or endless) line cannot balloon
/// daemon memory.
inline constexpr std::size_t kMaxProtocolLineBytes = 1u << 20;

/// Incremental line assembler shared by the server's socket reader and the
/// protocol tests: feed bytes one at a time, get a complete line or a
/// typed protocol violation. A trailing '\r' is stripped (CRLF clients);
/// NUL and all other control bytes except '\t' are rejected — they never
/// appear in JSON protocol lines and are the signature of a confused or
/// malicious peer.
class LineFramer {
public:
    enum class Result {
        kNeedMore, ///< byte consumed, line not complete yet
        kLine,     ///< '\n' seen: @p line holds the complete line
        kTooLong,  ///< line exceeded kMaxProtocolLineBytes
        kBadByte,  ///< NUL or non-whitespace control byte
    };

    explicit LineFramer(std::size_t maxBytes = kMaxProtocolLineBytes)
        : maxBytes_(maxBytes)
    {
    }

    /// Consumes one byte. On kLine, moves the assembled line into @p line
    /// and resets. On kTooLong/kBadByte the framer also resets — the
    /// caller should reply with an error and drop the connection.
    Result push(char c, std::string* line);

    /// Bytes buffered toward the current (incomplete) line.
    std::size_t pending() const { return buf_.size(); }

    void reset() { buf_.clear(); }

private:
    std::size_t maxBytes_;
    std::string buf_;
};

/// Executes one protocol line against @p svc and returns the reply line
/// (no trailing newline). Malformed input (bad JSON, overlong line,
/// embedded control bytes) yields an ok:false reply, never a throw. Sets
/// @p *shutdown (when non-null) on a shutdown op, after calling
/// svc.beginShutdown().
std::string handleRequestLine(SweepService& svc, const std::string& line,
                              bool* shutdown);

} // namespace dscoh::svc
