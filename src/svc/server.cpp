#include "svc/server.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/errors.h"
#include "svc/protocol.h"

namespace dscoh::svc {

namespace {

int listenOn(const std::string& path)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    ::unlink(path.c_str()); // the daemon owns this path; replace stale files
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(fd, 16) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/// Reads bytes until '\n' or EOF; false on error/timeout/overlong line.
bool readLine(int fd, std::string* line)
{
    line->clear();
    char c = 0;
    while (line->size() < 1u << 20) {
        const ssize_t n = ::recv(fd, &c, 1, 0);
        if (n <= 0)
            return false;
        if (c == '\n')
            return true;
        line->push_back(c);
    }
    return false;
}

bool writeAll(int fd, const std::string& data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

int serveSocket(SweepService& svc, const ServerOptions& options,
                const std::atomic<bool>& stop)
{
    const int listenFd = listenOn(options.socketPath);
    if (listenFd < 0)
        return kExitIo;

    bool shutdown = false;
    while (!shutdown && !stop.load()) {
        pollfd pfd{listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, options.pollMs);
        if (ready < 0 && errno != EINTR)
            break;
        svc.scanSpool();
        if (ready <= 0 || (pfd.revents & POLLIN) == 0)
            continue;

        const int conn = ::accept(listenFd, nullptr, nullptr);
        if (conn < 0)
            continue;
        timeval tv{options.recvTimeoutMs / 1000,
                   (options.recvTimeoutMs % 1000) * 1000};
        ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

        std::string line;
        while (!shutdown && readLine(conn, &line)) {
            if (line.empty())
                continue;
            const std::string reply =
                handleRequestLine(svc, line, &shutdown);
            if (!writeAll(conn, reply + "\n"))
                break;
        }
        ::close(conn);
    }
    if (stop.load())
        svc.beginShutdown();
    ::close(listenFd);
    ::unlink(options.socketPath.c_str());
    return kExitOk;
}

} // namespace dscoh::svc
