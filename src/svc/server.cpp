#include "svc/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/errors.h"
#include "svc/protocol.h"

namespace dscoh::svc {

namespace {

int listenOn(const std::string& path)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    ::unlink(path.c_str()); // the daemon owns this path; replace stale files
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(fd, 16) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

enum class ReadStatus {
    kLine,    ///< a complete, clean line
    kClosed,  ///< EOF, error, or idle timeout between lines
    kTooLong, ///< line exceeded the protocol cap
    kBadByte, ///< NUL / control byte on the wire
    kStalled, ///< peer started a line but never finished it
};

/// Reads one framed line. Two distinct timeouts guard the loop: an idle
/// peer (no line started) gets recvTimeoutMs before the connection drops
/// silently; a SLOW-WRITING peer (line started, bytes trickling or
/// stopped) gets lineDeadlineMs from its first byte — a drip-feeding
/// client cannot hold the single-connection server hostage.
ReadStatus readLine(int fd, LineFramer& framer, const ServerOptions& opts,
                    std::string* line)
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    std::optional<Clock::time_point> lineStart;
    if (framer.pending() != 0)
        lineStart = start; // leftovers from the previous read count
    char c = 0;
    for (;;) {
        const ssize_t n = ::recv(fd, &c, 1, 0);
        if (n == 0)
            return ReadStatus::kClosed;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                return ReadStatus::kClosed;
            // recv timed out (SO_RCVTIMEO tick): check the deadlines.
            const auto now = Clock::now();
            if (lineStart &&
                now - *lineStart >=
                    std::chrono::milliseconds(opts.lineDeadlineMs))
                return ReadStatus::kStalled;
            if (!lineStart &&
                now - start >= std::chrono::milliseconds(opts.recvTimeoutMs))
                return ReadStatus::kClosed;
            continue;
        }
        if (!lineStart)
            lineStart = Clock::now();
        switch (framer.push(c, line)) {
        case LineFramer::Result::kLine:
            return ReadStatus::kLine;
        case LineFramer::Result::kTooLong:
            return ReadStatus::kTooLong;
        case LineFramer::Result::kBadByte:
            return ReadStatus::kBadByte;
        case LineFramer::Result::kNeedMore:
            break;
        }
    }
}

bool writeAll(int fd, const std::string& data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

int serveSocket(SweepService& svc, const ServerOptions& options,
                const std::atomic<bool>& stop)
{
    const int listenFd = listenOn(options.socketPath);
    if (listenFd < 0)
        return kExitIo;

    bool shutdown = false;
    while (!shutdown && !stop.load()) {
        pollfd pfd{listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, options.pollMs);
        if (ready < 0 && errno != EINTR)
            break;
        svc.scanSpool();
        svc.tick(); // deadlines expire / degraded probe, even while idle
        if (ready <= 0 || (pfd.revents & POLLIN) == 0)
            continue;

        const int conn = ::accept(listenFd, nullptr, nullptr);
        if (conn < 0)
            continue;
        // Short recv ticks, so the per-line stall deadline is checked at
        // this granularity regardless of how patient the idle timeout is.
        const int tickMs = std::min(1000, std::max(1, options.recvTimeoutMs));
        timeval tv{tickMs / 1000, (tickMs % 1000) * 1000};
        ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

        LineFramer framer;
        std::string line;
        bool alive = true;
        while (alive && !shutdown) {
            switch (readLine(conn, framer, options, &line)) {
            case ReadStatus::kLine:
                if (line.empty())
                    continue;
                alive = writeAll(
                    conn, handleRequestLine(svc, line, &shutdown) + "\n");
                continue;
            case ReadStatus::kTooLong:
                writeAll(conn, "{\"ok\": false, \"error\": \"protocol line "
                               "exceeds the size limit\"}\n");
                alive = false;
                continue;
            case ReadStatus::kBadByte:
                writeAll(conn, "{\"ok\": false, \"error\": \"protocol line "
                               "contains a control byte\"}\n");
                alive = false;
                continue;
            case ReadStatus::kStalled:
                writeAll(conn, "{\"ok\": false, \"error\": \"request line "
                               "not completed in time\"}\n");
                alive = false;
                continue;
            case ReadStatus::kClosed:
                alive = false;
                continue;
            }
        }
        ::close(conn);
    }
    if (stop.load())
        svc.beginShutdown();
    ::close(listenFd);
    ::unlink(options.socketPath.c_str());
    return kExitOk;
}

} // namespace dscoh::svc
