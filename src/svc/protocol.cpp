#include "svc/protocol.h"

#include "obs/json_lite.h"

namespace dscoh::svc {

namespace {

std::string fail(const std::string& error)
{
    return "{\"ok\": false, \"error\": \"" + jsonEscape(error) + "\"}";
}

} // namespace

std::string handleRequestLine(SweepService& svc, const std::string& line,
                              bool* shutdown)
{
    std::string parseError;
    const jsonlite::ValuePtr v = jsonlite::parse(line, parseError);
    if (v == nullptr || !v->isObject())
        return fail("bad protocol line: " +
                    (parseError.empty() ? "not an object" : parseError));
    const jsonlite::Value* op = v->get("op");
    if (op == nullptr || !op->isString())
        return fail("missing string field 'op'");

    if (op->string == "ping")
        return std::string("{\"ok\": true, \"schema\": \"") +
               kProtocolSchema +
               "\", \"workers\": " + std::to_string(svc.workers()) + "}";

    if (op->string == "submit") {
        const jsonlite::Value* reqVal = v->get("request");
        if (reqVal == nullptr || !reqVal->isString())
            return fail("submit needs a string field 'request' holding the "
                        "rendered request object");
        SweepRequest r;
        std::string error;
        if (!parseRequestJson(reqVal->string, &r, &error))
            return fail(error);
        std::string id;
        if (!svc.submit(std::move(r), &id, &error))
            return fail(error);
        return "{\"ok\": true, \"id\": \"" + jsonEscape(id) +
               "\", \"dir\": \"" + jsonEscape(svc.requestDir(id)) + "\"}";
    }

    if (op->string == "status" || op->string == "cancel") {
        const jsonlite::Value* id = v->get("id");
        if (id == nullptr || !id->isString())
            return fail(op->string + " needs a string field 'id'");
        std::string error;
        if (op->string == "status") {
            std::string status;
            if (!svc.statusJson(id->string, &status, &error))
                return fail(error);
            while (!status.empty() && status.back() == '\n')
                status.pop_back();
            return "{\"ok\": true, \"status\": " + status + "}";
        }
        if (!svc.cancel(id->string, &error))
            return fail(error);
        return "{\"ok\": true, \"id\": \"" + jsonEscape(id->string) + "\"}";
    }

    if (op->string == "list")
        return "{\"ok\": true, \"list\": " + svc.listJson() + "}";

    if (op->string == "stats")
        return "{\"ok\": true, \"stats\": " + svc.statsJson() + "}";

    if (op->string == "drain") {
        svc.drain();
        return "{\"ok\": true}";
    }

    if (op->string == "shutdown") {
        svc.beginShutdown();
        if (shutdown != nullptr)
            *shutdown = true;
        return "{\"ok\": true}";
    }

    return fail("unknown op '" + op->string + "'");
}

} // namespace dscoh::svc
