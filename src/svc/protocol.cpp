#include "svc/protocol.h"

#include "obs/json_lite.h"

namespace dscoh::svc {

namespace {

std::string fail(const std::string& error)
{
    return "{\"ok\": false, \"error\": \"" + jsonEscape(error) + "\"}";
}

/// Rejection reply for a shed/degraded submit: machine-readable flags so
/// clients can tell "back off and retry" from "your request is broken".
std::string failSubmit(const std::string& error, const SubmitInfo& info)
{
    std::string reply =
        "{\"ok\": false, \"error\": \"" + jsonEscape(error) + "\"";
    if (info.shed) {
        reply += ", \"shed\": true, \"retryAfterMs\": " +
                 std::to_string(info.retryAfterMs);
    }
    if (info.degraded)
        reply += ", \"degraded\": true";
    return reply + "}";
}

/// True when @p line is clean wire input: bounded and free of NUL /
/// non-whitespace control bytes. The socket reader enforces this per byte
/// (LineFramer); re-checking here keeps the guarantee for embedded callers
/// (tests, spool-style line sources) that bypass the framer.
bool validLine(const std::string& line, std::string* error)
{
    if (line.size() > kMaxProtocolLineBytes) {
        *error = "protocol line exceeds " +
                 std::to_string(kMaxProtocolLineBytes) + " bytes";
        return false;
    }
    for (const char c : line) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (u == 0 || (u < 0x20 && c != '\t')) {
            *error = "protocol line contains control byte 0x" +
                     std::string(1, "0123456789abcdef"[u >> 4]) +
                     std::string(1, "0123456789abcdef"[u & 0xf]);
            return false;
        }
    }
    return true;
}

} // namespace

LineFramer::Result LineFramer::push(char c, std::string* line)
{
    if (c == '\n') {
        if (!buf_.empty() && buf_.back() == '\r')
            buf_.pop_back();
        *line = std::move(buf_);
        buf_.clear();
        return Result::kLine;
    }
    const unsigned char u = static_cast<unsigned char>(c);
    if (u == 0 || (u < 0x20 && c != '\t' && c != '\r')) {
        buf_.clear();
        return Result::kBadByte;
    }
    if (buf_.size() >= maxBytes_) {
        buf_.clear();
        return Result::kTooLong;
    }
    buf_.push_back(c);
    return Result::kNeedMore;
}

std::string handleRequestLine(SweepService& svc, const std::string& line,
                              bool* shutdown)
{
    std::string lineError;
    if (!validLine(line, &lineError))
        return fail(lineError);
    std::string parseError;
    const jsonlite::ValuePtr v = jsonlite::parse(line, parseError);
    if (v == nullptr || !v->isObject())
        return fail("bad protocol line: " +
                    (parseError.empty() ? "not an object" : parseError));
    const jsonlite::Value* op = v->get("op");
    if (op == nullptr || !op->isString())
        return fail("missing string field 'op'");

    if (op->string == "ping")
        return std::string("{\"ok\": true, \"schema\": \"") +
               kProtocolSchema +
               "\", \"workers\": " + std::to_string(svc.workers()) + "}";

    if (op->string == "submit") {
        const jsonlite::Value* reqVal = v->get("request");
        if (reqVal == nullptr || !reqVal->isString())
            return fail("submit needs a string field 'request' holding the "
                        "rendered request object");
        SweepRequest r;
        std::string error;
        if (!parseRequestJson(reqVal->string, &r, &error))
            return fail(error);
        std::string id;
        SubmitInfo info;
        if (!svc.submit(std::move(r), &id, &error, &info))
            return failSubmit(error, info);
        return "{\"ok\": true, \"id\": \"" + jsonEscape(id) +
               "\", \"dir\": \"" + jsonEscape(svc.requestDir(id)) + "\"}";
    }

    if (op->string == "status" || op->string == "cancel") {
        const jsonlite::Value* id = v->get("id");
        if (id == nullptr || !id->isString())
            return fail(op->string + " needs a string field 'id'");
        std::string error;
        if (op->string == "status") {
            std::string status;
            if (!svc.statusJson(id->string, &status, &error))
                return fail(error);
            while (!status.empty() && status.back() == '\n')
                status.pop_back();
            return "{\"ok\": true, \"status\": " + status + "}";
        }
        if (!svc.cancel(id->string, &error))
            return fail(error);
        return "{\"ok\": true, \"id\": \"" + jsonEscape(id->string) + "\"}";
    }

    if (op->string == "list")
        return "{\"ok\": true, \"list\": " + svc.listJson() + "}";

    if (op->string == "stats")
        return "{\"ok\": true, \"stats\": " + svc.statsJson() + "}";

    if (op->string == "drain") {
        svc.drain();
        return "{\"ok\": true}";
    }

    if (op->string == "shutdown") {
        svc.beginShutdown();
        if (shutdown != nullptr)
            *shutdown = true;
        return "{\"ok\": true}";
    }

    return fail("unknown op '" + op->string + "'");
}

} // namespace dscoh::svc
