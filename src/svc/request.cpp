#include "svc/request.h"

#include <cstdio>
#include <sstream>

#include "core/config_io.h"
#include "obs/json_lite.h"

namespace dscoh::svc {

std::string jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string renderRequestJson(const SweepRequest& r)
{
    std::ostringstream os;
    os << "{";
    if (!r.id.empty())
        os << "\"id\": \"" << jsonEscape(r.id) << "\", ";
    os << "\"tenant\": \"" << jsonEscape(r.tenant) << "\""
       << ", \"priority\": " << r.priority << ", \"weight\": " << r.weight
       << ", \"size\": \"" << to_string(r.size) << "\"";
    os << ", \"codes\": [";
    for (std::size_t i = 0; i < r.codes.size(); ++i)
        os << (i == 0 ? "" : ", ") << "\"" << jsonEscape(r.codes[i]) << "\"";
    os << "], \"modes\": [";
    for (std::size_t i = 0; i < r.modes.size(); ++i)
        os << (i == 0 ? "" : ", ") << "\"" << to_string(r.modes[i]) << "\"";
    os << "], \"config\": \"" << jsonEscape(r.configText) << "\"";
    if (r.deadlineMs != 0)
        os << ", \"deadlineMs\": " << r.deadlineMs;
    os << "}";
    return os.str();
}

bool parseRequestJson(const std::string& text, SweepRequest* out,
                      std::string* error)
{
    std::string parseError;
    const jsonlite::ValuePtr v = jsonlite::parse(text, parseError);
    if (v == nullptr || !v->isObject()) {
        *error = "bad request JSON: " +
                 (parseError.empty() ? "not an object" : parseError);
        return false;
    }
    SweepRequest r;
    if (const jsonlite::Value* id = v->get("id"); id != nullptr) {
        if (!id->isString()) {
            *error = "request field 'id' must be a string";
            return false;
        }
        r.id = id->string;
    }
    if (const jsonlite::Value* t = v->get("tenant"); t != nullptr) {
        if (!t->isString() || t->string.empty()) {
            *error = "request field 'tenant' must be a non-empty string";
            return false;
        }
        r.tenant = t->string;
    }
    if (const jsonlite::Value* p = v->get("priority"); p != nullptr) {
        if (!p->isNumber()) {
            *error = "request field 'priority' must be a number";
            return false;
        }
        r.priority = static_cast<int>(p->number);
    }
    if (const jsonlite::Value* w = v->get("weight"); w != nullptr) {
        if (!w->isNumber() || w->number < 1.0) {
            *error = "request field 'weight' must be a number >= 1";
            return false;
        }
        r.weight = static_cast<unsigned>(w->number);
    }
    if (const jsonlite::Value* s = v->get("size"); s != nullptr) {
        if (!s->isString() ||
            (s->string != "small" && s->string != "big")) {
            *error = "request field 'size' must be \"small\" or \"big\"";
            return false;
        }
        r.size = s->string == "big" ? InputSize::kBig : InputSize::kSmall;
    }
    if (const jsonlite::Value* codes = v->get("codes"); codes != nullptr) {
        if (!codes->isArray()) {
            *error = "request field 'codes' must be an array of strings";
            return false;
        }
        for (const jsonlite::ValuePtr& c : codes->array) {
            if (!c->isString()) {
                *error = "request field 'codes' must be an array of strings";
                return false;
            }
            r.codes.push_back(c->string);
        }
    }
    if (const jsonlite::Value* modes = v->get("modes"); modes != nullptr) {
        if (!modes->isArray()) {
            *error = "request field 'modes' must be an array";
            return false;
        }
        for (const jsonlite::ValuePtr& m : modes->array) {
            bool known = false;
            if (m->isString()) {
                for (const CoherenceMode mode :
                     {CoherenceMode::kCcsm, CoherenceMode::kDirectStore,
                      CoherenceMode::kDirectStoreOnly}) {
                    if (m->string == to_string(mode)) {
                        r.modes.push_back(mode);
                        known = true;
                        break;
                    }
                }
                // Friendly lowercase aliases for hand-written requests.
                if (!known && m->string == "ccsm") {
                    r.modes.push_back(CoherenceMode::kCcsm);
                    known = true;
                } else if (!known && m->string == "ds") {
                    r.modes.push_back(CoherenceMode::kDirectStore);
                    known = true;
                }
            }
            if (!known) {
                *error = "request field 'modes' has an unknown mode '" +
                         m->string + "'";
                return false;
            }
        }
    }
    if (const jsonlite::Value* d = v->get("deadlineMs"); d != nullptr) {
        if (!d->isNumber() || d->number < 0.0) {
            *error = "request field 'deadlineMs' must be a number >= 0";
            return false;
        }
        r.deadlineMs = static_cast<std::uint64_t>(d->number);
    }
    if (const jsonlite::Value* cfg = v->get("config"); cfg != nullptr) {
        if (!cfg->isString()) {
            *error = "request field 'config' must be a string of "
                     "\"key = value\" lines";
            return false;
        }
        r.configText = cfg->string;
    }
    *out = std::move(r);
    return true;
}

bool expandJobs(const SweepRequest& r, std::vector<ExperimentJob>* jobs,
                std::string* error)
{
    std::vector<std::string> codes = r.codes;
    if (codes.empty())
        codes = WorkloadRegistry::instance().codes();
    for (const std::string& code : codes) {
        if (!WorkloadRegistry::instance().has(code)) {
            *error = "unknown benchmark '" + code + "'";
            return false;
        }
    }
    std::vector<CoherenceMode> modes = r.modes;
    if (modes.empty())
        modes = {CoherenceMode::kCcsm, CoherenceMode::kDirectStore};

    SystemConfig base;
    if (!r.configText.empty() &&
        !applyConfigText(r.configText, &base, error))
        return false;
    *jobs = makeSweepJobs(codes, {r.size}, modes, base);
    return true;
}

} // namespace dscoh::svc
