#include "svc/scheduler.h"

#include <algorithm>

namespace dscoh::svc {

bool FairScheduler::enqueue(const std::string& requestId,
                            const std::string& tenant, int priority,
                            unsigned weight, std::size_t jobCount,
                            std::string* error)
{
    if (jobCount == 0) {
        *error = "request expands to zero jobs";
        return false;
    }
    if (maxQueuedJobs_ != 0 && queuedJobs_ + jobCount > maxQueuedJobs_) {
        *error = "queue full (" + std::to_string(queuedJobs_) + " queued, " +
                 std::to_string(jobCount) + " requested, limit " +
                 std::to_string(maxQueuedJobs_) + ")";
        return false;
    }

    auto [it, inserted] = tenants_.try_emplace(tenant);
    Tenant& t = it->second;
    if (weight >= 1)
        t.weight = weight; // latest request sets the tenant's weight
    if (inserted || t.requests.empty()) {
        // Re-entering after idling: no banked credit from the idle period.
        t.vtime = std::max(t.vtime, globalVtime_);
    }

    PendingRequest req;
    req.id = requestId;
    req.priority = priority;
    req.seq = nextSeq_++;
    for (std::size_t i = 0; i < jobCount; ++i)
        req.jobs.push_back(i);

    const auto pos = std::find_if(
        t.requests.begin(), t.requests.end(),
        [&](const PendingRequest& r) { return r.priority < priority; });
    t.requests.insert(pos, std::move(req));
    queuedJobs_ += jobCount;
    return true;
}

std::optional<JobUnit> FairScheduler::next()
{
    return next(nullptr);
}

std::optional<JobUnit> FairScheduler::next(
    const std::function<bool(const std::string& tenant)>& eligible)
{
    Tenant* best = nullptr;
    for (auto& [name, t] : tenants_) {
        if (t.requests.empty())
            continue;
        if (eligible && !eligible(name))
            continue;
        // Map iteration is name-ordered, so strict < makes the name the
        // deterministic tie-break.
        if (best == nullptr || t.vtime < best->vtime)
            best = &t;
    }
    if (best == nullptr)
        return std::nullopt;

    PendingRequest& req = best->requests.front();
    JobUnit unit{req.id, req.jobs.front()};
    req.jobs.pop_front();
    if (req.jobs.empty())
        best->requests.pop_front();
    --queuedJobs_;
    ++best->dispatched;
    best->vtime += 1.0 / static_cast<double>(best->weight);
    globalVtime_ = std::max(globalVtime_, best->vtime);
    return unit;
}

std::size_t FairScheduler::cancel(const std::string& requestId)
{
    std::size_t dropped = 0;
    for (auto& [name, t] : tenants_) {
        for (auto it = t.requests.begin(); it != t.requests.end();) {
            if (it->id == requestId) {
                dropped += it->jobs.size();
                it = t.requests.erase(it);
            } else {
                ++it;
            }
        }
    }
    queuedJobs_ -= dropped;
    return dropped;
}

std::vector<FairScheduler::TenantShare> FairScheduler::shares() const
{
    std::vector<TenantShare> out;
    out.reserve(tenants_.size());
    for (const auto& [name, t] : tenants_) {
        TenantShare s;
        s.tenant = name;
        s.weight = t.weight;
        s.queued = t.queued();
        s.dispatched = t.dispatched;
        s.virtualTime = t.vtime;
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace dscoh::svc
