#include "translate/lexer.h"

#include <cctype>

namespace dscoh::xlate {

namespace {

bool isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators we care to keep glued ( <<< and >>> are
/// intentionally NOT glued: the scanner recognizes them as three tokens so
/// that legitimate shift operators do not confuse the lexer).
bool isPunct(char c)
{
    static const std::string kPunct = "<>(){}[];,=*&+-/%!~^?:.|#";
    return kPunct.find(c) != std::string::npos;
}

} // namespace

LexResult lex(const std::string& source)
{
    LexResult result;
    std::size_t i = 0;
    const std::size_t n = source.size();

    while (i < n) {
        const char c = source[i];

        // Whitespace.
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/'))
                ++i;
            i = i + 2 <= n ? i + 2 : n;
            continue;
        }

        // String / char literal (skipped entirely).
        if (c == '"' || c == '\'') {
            const char quote = c;
            ++i;
            while (i < n && source[i] != quote) {
                if (source[i] == '\\')
                    ++i;
                ++i;
            }
            if (i < n)
                ++i;
            continue;
        }

        // Preprocessor line: record object-like #define NAME VALUE, skip rest.
        if (c == '#') {
            std::size_t j = i + 1;
            while (j < n && std::isspace(static_cast<unsigned char>(source[j])) &&
                   source[j] != '\n')
                ++j;
            if (source.compare(j, 6, "define") == 0) {
                j += 6;
                while (j < n && (source[j] == ' ' || source[j] == '\t'))
                    ++j;
                std::size_t nameStart = j;
                while (j < n && isIdentChar(source[j]))
                    ++j;
                const std::string name = source.substr(nameStart, j - nameStart);
                // Function-like macros (NAME(...)) are not constants: skip.
                if (!name.empty() && (j >= n || source[j] != '(')) {
                    std::size_t valStart = j;
                    while (valStart < n &&
                           (source[valStart] == ' ' || source[valStart] == '\t'))
                        ++valStart;
                    std::size_t valEnd = valStart;
                    while (valEnd < n && source[valEnd] != '\n')
                        ++valEnd;
                    std::string value = source.substr(valStart, valEnd - valStart);
                    while (!value.empty() &&
                           std::isspace(static_cast<unsigned char>(value.back())))
                        value.pop_back();
                    if (!value.empty())
                        result.defines.emplace_back(name, value);
                }
            }
            while (i < n && source[i] != '\n') {
                // Honor line continuations inside directives.
                if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n')
                    ++i;
                ++i;
            }
            continue;
        }

        // Identifier / keyword.
        if (isIdentStart(c)) {
            std::size_t start = i;
            while (i < n && isIdentChar(source[i]))
                ++i;
            result.tokens.push_back(Token{TokKind::kIdent,
                                          source.substr(start, i - start), start,
                                          i - start});
            continue;
        }

        // Number (integers incl. hex and suffixes; floats lexed loosely).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = i;
            while (i < n && (isIdentChar(source[i]) || source[i] == '.'))
                ++i;
            result.tokens.push_back(Token{TokKind::kNumber,
                                          source.substr(start, i - start), start,
                                          i - start});
            continue;
        }

        // Punctuation, one char at a time (<<< becomes '<','<','<').
        if (isPunct(c)) {
            result.tokens.push_back(Token{TokKind::kPunct, std::string(1, c), i, 1});
            ++i;
            continue;
        }

        // Unknown byte: emit as punctuation so offsets stay monotonic.
        result.tokens.push_back(Token{TokKind::kPunct, std::string(1, c), i, 1});
        ++i;
    }

    result.tokens.push_back(Token{TokKind::kEof, "", n, 0});
    return result;
}

} // namespace dscoh::xlate
