// Runtime shim for translated programs (the `#include "ds_runtime.h"` line
// the translator prepends to every rewritten source file).
//
// On a real direct-store machine, ds_mmap reserves the fixed virtual range
// the translator assigned inside the direct-store region, exactly as
// SIII-D of the paper describes: mmap with MAP_FIXED at a high-order
// address, which the TLB later recognizes and routes to the GPU L2.
//
// Inside this repository the simulator provides the same contract through
// AddressSpace::dsMmapFixed; this header exists so the translator's output
// is complete, compilable C++ on a host with the kernel support the paper
// assumes.
#pragma once

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>

/// Maps @p bytes at the fixed direct-store address @p addr.
/// Returns the mapped pointer (== addr on success) or nullptr.
inline void* ds_mmap(std::uint64_t addr, std::uint64_t bytes)
{
    void* p = ::mmap(reinterpret_cast<void*>(addr), bytes,
                     PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1, 0);
    return p == MAP_FAILED ? nullptr : p;
}
#else
inline void* ds_mmap(std::uint64_t, std::uint64_t)
{
    return nullptr; // direct-store region requires OS support (SIII-D)
}
#endif

/// Multi-GPU variant: maps @p bytes at @p addr, tagged with the GPU that
/// should home the allocation. On a real machine the tag would steer the
/// range's physical pages to the named device's L2 (the driver picks frames
/// whose home-map entry is @p home_gpu); in the simulator the same policy
/// lives in System::allocateArrayHomed, which pads the direct-store cursor
/// until the allocation starts on a granule homed at the requested GPU.
/// The kernel-support fallback here simply ignores the tag — single-GPU
/// hosts degenerate to plain ds_mmap.
inline void* ds_mmap_homed(std::uint64_t addr, std::uint64_t bytes,
                           std::uint32_t home_gpu)
{
    (void)home_gpu;
    return ds_mmap(addr, bytes);
}

#ifndef __CUDACC__
// Hosts without CUDA headers still need the status type the rewritten
// CUDA_CHECK(cudaMalloc(...)) expression yields.
#ifndef cudaSuccess
enum ds_cudaError_t { cudaSuccess = 0 };
#endif
#endif
