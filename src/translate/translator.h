// Source-to-source translator (§III-C of the paper).
//
// Pipeline, exactly as the paper describes it:
//   1. scan every source file for kernel invocations
//      `kernel_name<<<Dg, Db, Ns, S>>>(x1, ..., xn)` and capture the
//      argument variables;
//   2. determine the amount of memory needed for each captured variable by
//      locating its allocation (`malloc`, `calloc`, `cudaMalloc`,
//      `cudaMallocManaged`, `cudaMallocHost`) and evaluating the size
//      expression (integer arithmetic, `sizeof(...)`, and object-like
//      `#define` constants);
//   3. rewrite each such allocation into a fixed-address `ds_mmap` in the
//      reserved direct-store region, incrementing the start address by each
//      variable's (page-aligned) size so no two variables overlap.
//
// The result compiles in the standard way against the ds_runtime shim; the
// simulator's AddressSpace::dsMmapFixed implements the same contract.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.h"
#include "vm/address_space.h"

namespace dscoh::xlate {

struct TranslateOptions {
    Addr dsBase = kDsRegionBase;
    /// Used when a size expression cannot be evaluated statically; the
    /// allocation still moves to the DS region with this reservation and a
    /// diagnostic is recorded.
    std::uint64_t fallbackBytes = 16ull << 20;
    /// Extra sizeof() values for project-specific types.
    std::map<std::string, std::uint64_t> extraSizeof;
    /// Include line prepended to every rewritten file.
    std::string runtimeInclude = "#include \"ds_runtime.h\"";
};

struct Allocation {
    std::string file;
    std::string variable;
    Addr address = 0;        ///< assigned fixed DS-region address
    std::uint64_t bytes = 0; ///< evaluated (or fallback) reservation
    bool sizeKnown = false;
    std::string sizeExpr; ///< original size expression text
    std::string original; ///< original statement text
};

struct KernelLaunch {
    std::string file;
    std::string kernel;
    std::vector<std::string> arguments; ///< captured variable names
};

struct TranslateResult {
    std::map<std::string, std::string> outputs; ///< file -> rewritten source
    std::vector<KernelLaunch> launches;
    std::vector<std::string> kernelVariables; ///< ordered, de-duplicated
    std::vector<Allocation> allocations;
    std::vector<std::string> diagnostics;

    bool changed(const std::string& file,
                 const std::map<std::string, std::string>& inputs) const
    {
        const auto out = outputs.find(file);
        const auto in = inputs.find(file);
        return out != outputs.end() && in != inputs.end() &&
               out->second != in->second;
    }
};

class SourceTranslator {
public:
    SourceTranslator() = default;
    explicit SourceTranslator(TranslateOptions options)
        : options_(std::move(options))
    {
    }

    /// Translates a whole program: kernel arguments are collected across
    /// every file, then each file's allocations are rewritten.
    TranslateResult translateProject(
        const std::map<std::string, std::string>& files) const;

    /// Single-file convenience wrapper.
    TranslateResult translateSource(const std::string& source) const
    {
        return translateProject({{"input.cu", source}});
    }

    /// Evaluates an integral size expression ("N * sizeof(float)") against
    /// the given #define table. Returns false when not statically known.
    /// Exposed for direct testing.
    bool evaluateSize(const std::string& expr,
                      const std::map<std::string, std::string>& defines,
                      std::uint64_t* out) const;

private:
    TranslateOptions options_;
};

} // namespace dscoh::xlate
