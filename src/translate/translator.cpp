#include "translate/translator.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "translate/lexer.h"

namespace dscoh::xlate {

namespace {

// ---------------------------------------------------------------------------
// Size-expression evaluation
// ---------------------------------------------------------------------------

class ExprEval {
public:
    ExprEval(const std::vector<Token>& tokens,
             const std::map<std::string, std::string>& defines,
             const std::map<std::string, std::uint64_t>& extraSizeof,
             int depth)
        : tokens_(tokens), defines_(defines), extraSizeof_(extraSizeof),
          depth_(depth)
    {
    }

    std::optional<std::uint64_t> run()
    {
        const auto v = parseExpr();
        if (!v || !atEnd())
            return std::nullopt;
        return v;
    }

private:
    const Token& cur() const { return tokens_[pos_]; }
    bool atEnd() const { return cur().kind == TokKind::kEof; }
    bool isPunct(const char* p) const
    {
        return cur().kind == TokKind::kPunct && cur().text == p;
    }
    /// Two adjacent same-character puncts (for << and >>).
    bool isDoublePunct(char c) const
    {
        return cur().kind == TokKind::kPunct && cur().text[0] == c &&
               tokens_[pos_ + 1].kind == TokKind::kPunct &&
               tokens_[pos_ + 1].text[0] == c &&
               tokens_[pos_ + 1].offset == cur().offset + 1;
    }

    std::optional<std::uint64_t> parseExpr() { return parseShift(); }

    std::optional<std::uint64_t> parseShift()
    {
        auto lhs = parseAdditive();
        if (!lhs)
            return std::nullopt;
        while (isDoublePunct('<') || isDoublePunct('>')) {
            const bool left = cur().text[0] == '<';
            pos_ += 2;
            const auto rhs = parseAdditive();
            if (!rhs || *rhs >= 64)
                return std::nullopt;
            *lhs = left ? (*lhs << *rhs) : (*lhs >> *rhs);
        }
        return lhs;
    }

    std::optional<std::uint64_t> parseAdditive()
    {
        auto lhs = parseTerm();
        if (!lhs)
            return std::nullopt;
        while (isPunct("+") || isPunct("-")) {
            const bool add = cur().text == "+";
            ++pos_;
            const auto rhs = parseTerm();
            if (!rhs)
                return std::nullopt;
            *lhs = add ? *lhs + *rhs : *lhs - *rhs;
        }
        return lhs;
    }

    std::optional<std::uint64_t> parseTerm()
    {
        auto lhs = parseUnary();
        if (!lhs)
            return std::nullopt;
        while (isPunct("*") || isPunct("/") || isPunct("%")) {
            const char op = cur().text[0];
            ++pos_;
            const auto rhs = parseUnary();
            if (!rhs)
                return std::nullopt;
            if (op == '*')
                *lhs *= *rhs;
            else if (*rhs == 0)
                return std::nullopt;
            else if (op == '/')
                *lhs /= *rhs;
            else
                *lhs %= *rhs;
        }
        return lhs;
    }

    std::optional<std::uint64_t> parseUnary()
    {
        if (isPunct("+")) {
            ++pos_;
            return parseUnary();
        }
        return parsePrimary();
    }

    std::optional<std::uint64_t> parsePrimary()
    {
        if (isPunct("(")) {
            ++pos_;
            auto v = parseExpr();
            if (!v || !isPunct(")"))
                return std::nullopt;
            ++pos_;
            return v;
        }
        if (cur().kind == TokKind::kNumber) {
            const auto v = parseNumber(cur().text);
            ++pos_;
            return v;
        }
        if (cur().kind == TokKind::kIdent) {
            if (cur().text == "sizeof")
                return parseSizeof();
            const std::string name = cur().text;
            ++pos_;
            // Expand an object-like #define, recursively but bounded.
            const auto it = defines_.find(name);
            if (it == defines_.end() || depth_ > 8)
                return std::nullopt;
            const LexResult sub = lex(it->second);
            return ExprEval(sub.tokens, defines_, extraSizeof_, depth_ + 1).run();
        }
        return std::nullopt;
    }

    std::optional<std::uint64_t> parseSizeof()
    {
        ++pos_; // 'sizeof'
        if (!isPunct("("))
            return std::nullopt;
        ++pos_;
        std::vector<std::string> words;
        bool pointer = false;
        while (!atEnd() && !isPunct(")")) {
            if (cur().kind == TokKind::kIdent)
                words.push_back(cur().text);
            else if (isPunct("*"))
                pointer = true;
            else
                return std::nullopt;
            ++pos_;
        }
        if (!isPunct(")"))
            return std::nullopt;
        ++pos_;
        return sizeofType(words, pointer);
    }

    std::optional<std::uint64_t> sizeofType(const std::vector<std::string>& words,
                                            bool pointer) const
    {
        if (pointer)
            return 8;
        const auto has = [&words](const char* w) {
            return std::find(words.begin(), words.end(), w) != words.end();
        };
        for (const auto& w : words) {
            const auto it = extraSizeof_.find(w);
            if (it != extraSizeof_.end())
                return it->second;
        }
        if (has("double"))
            return 8;
        if (has("float"))
            return 4;
        if (has("char") || has("bool") || has("int8_t") || has("uint8_t"))
            return 1;
        if (has("short") || has("int16_t") || has("uint16_t"))
            return 2;
        if (has("long") || has("size_t") || has("int64_t") || has("uint64_t") ||
            has("ptrdiff_t") || has("intptr_t") || has("uintptr_t"))
            return 8;
        if (has("int") || has("unsigned") || has("signed") || has("int32_t") ||
            has("uint32_t"))
            return 4;
        return std::nullopt;
    }

    static std::optional<std::uint64_t> parseNumber(const std::string& text)
    {
        std::string body = text;
        while (!body.empty() &&
               (body.back() == 'u' || body.back() == 'U' || body.back() == 'l' ||
                body.back() == 'L'))
            body.pop_back();
        if (body.empty())
            return std::nullopt;
        try {
            std::size_t used = 0;
            std::uint64_t value = 0;
            if (body.size() > 2 && body[0] == '0' &&
                (body[1] == 'x' || body[1] == 'X')) {
                value = std::stoull(body.substr(2), &used, 16);
                used += 2;
            } else {
                if (body.find('.') != std::string::npos)
                    return std::nullopt;
                value = std::stoull(body, &used, 10);
            }
            if (used != body.size())
                return std::nullopt;
            return value;
        } catch (const std::exception&) {
            return std::nullopt;
        }
    }

    const std::vector<Token>& tokens_;
    const std::map<std::string, std::string>& defines_;
    const std::map<std::string, std::uint64_t>& extraSizeof_;
    int depth_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Token-stream scanning helpers
// ---------------------------------------------------------------------------

bool punctIs(const Token& t, char c)
{
    return t.kind == TokKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

/// Index just past the matching ')' for the '(' at @p open.
std::size_t matchParen(const std::vector<Token>& toks, std::size_t open)
{
    int depth = 0;
    std::size_t i = open;
    for (; toks[i].kind != TokKind::kEof; ++i) {
        if (punctIs(toks[i], '('))
            ++depth;
        else if (punctIs(toks[i], ')')) {
            if (--depth == 0)
                return i + 1;
        }
    }
    return i;
}

/// Splits the token range (open+1 .. close-1) into top-level comma groups.
std::vector<std::pair<std::size_t, std::size_t>>
splitArgs(const std::vector<Token>& toks, std::size_t open, std::size_t closeIdx)
{
    std::vector<std::pair<std::size_t, std::size_t>> groups;
    int depth = 0;
    std::size_t start = open + 1;
    for (std::size_t i = open; i < closeIdx; ++i) {
        if (punctIs(toks[i], '(') || punctIs(toks[i], '['))
            ++depth;
        else if (punctIs(toks[i], ')') || punctIs(toks[i], ']'))
            --depth;
        else if (punctIs(toks[i], ',') && depth == 1) {
            groups.emplace_back(start, i);
            start = i + 1;
        }
    }
    if (closeIdx >= open + 2)
        groups.emplace_back(start, closeIdx - 1);
    return groups;
}

/// Extracts the variable name from an argument token range: strips a
/// leading cast and address-of/deref operators, then takes the first
/// identifier (so `(float*)&x[i]` -> x, `arr[i]` -> arr, `n` -> n).
std::string argVariable(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end)
{
    std::size_t i = begin;
    // Leading cast: '(' ... ')' followed by more tokens.
    if (i < end && punctIs(toks[i], '(')) {
        const std::size_t after = matchParen(toks, i);
        if (after < end)
            i = after;
    }
    while (i < end && (punctIs(toks[i], '&') || punctIs(toks[i], '*')))
        ++i;
    for (; i < end; ++i)
        if (toks[i].kind == TokKind::kIdent)
            return toks[i].text;
    return "";
}

std::string sourceSlice(const std::string& src, const Token& from,
                        const Token& to)
{
    return src.substr(from.offset, to.offset + to.length - from.offset);
}

/// A pending textual replacement [begin, end) -> text.
struct Edit {
    std::size_t begin;
    std::size_t end;
    std::string text;
};

std::string applyEdits(const std::string& src, std::vector<Edit> edits)
{
    std::sort(edits.begin(), edits.end(),
              [](const Edit& a, const Edit& b) { return a.begin < b.begin; });
    std::string out;
    std::size_t cursor = 0;
    for (const Edit& e : edits) {
        if (e.begin < cursor)
            continue; // overlapping edit: first one wins
        out.append(src, cursor, e.begin - cursor);
        out.append(e.text);
        cursor = e.end;
    }
    out.append(src, cursor, src.size() - cursor);
    return out;
}

std::string hexAddress(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a << "ull";
    return os.str();
}

bool isAllocFn(const std::string& name)
{
    return name == "cudaMalloc" || name == "cudaMallocManaged" ||
           name == "cudaMallocHost";
}

} // namespace

bool SourceTranslator::evaluateSize(
    const std::string& expr, const std::map<std::string, std::string>& defines,
    std::uint64_t* out) const
{
    const LexResult lexed = lex(expr);
    const auto v =
        ExprEval(lexed.tokens, defines, options_.extraSizeof, 0).run();
    if (!v)
        return false;
    *out = *v;
    return true;
}

TranslateResult SourceTranslator::translateProject(
    const std::map<std::string, std::string>& files) const
{
    TranslateResult result;
    std::map<std::string, LexResult> lexed;
    std::map<std::string, std::string> defines;
    for (const auto& [file, src] : files) {
        lexed.emplace(file, lex(src));
        for (const auto& [k, v] : lexed.at(file).defines)
            defines.emplace(k, v);
    }

    // ---- pass 1: kernel launches across all files -------------------------
    std::vector<std::string> kernelVars;
    const auto captureVar = [&kernelVars](const std::string& name) {
        if (name.empty())
            return;
        if (std::find(kernelVars.begin(), kernelVars.end(), name) ==
            kernelVars.end())
            kernelVars.push_back(name);
    };

    for (const auto& [file, src] : files) {
        const auto& toks = lexed.at(file).tokens;
        for (std::size_t i = 0; i + 6 < toks.size(); ++i) {
            if (toks[i].kind != TokKind::kIdent)
                continue;
            if (!(punctIs(toks[i + 1], '<') && punctIs(toks[i + 2], '<') &&
                  punctIs(toks[i + 3], '<')))
                continue;
            // Find the closing '>>>' (three consecutive '>' tokens).
            std::size_t j = i + 4;
            while (toks[j].kind != TokKind::kEof &&
                   !(punctIs(toks[j], '>') && punctIs(toks[j + 1], '>') &&
                     punctIs(toks[j + 2], '>')))
                ++j;
            if (toks[j].kind == TokKind::kEof)
                continue;
            std::size_t open = j + 3;
            if (!punctIs(toks[open], '('))
                continue;
            const std::size_t closeIdx = matchParen(toks, open);

            KernelLaunch launch;
            launch.file = file;
            launch.kernel = toks[i].text;
            for (const auto& [b, e] : splitArgs(toks, open, closeIdx)) {
                const std::string var = argVariable(toks, b, e);
                if (!var.empty()) {
                    launch.arguments.push_back(var);
                    captureVar(var);
                }
            }
            result.launches.push_back(std::move(launch));
            i = closeIdx;
        }
    }
    result.kernelVariables = kernelVars;

    const auto isKernelVar = [&kernelVars](const std::string& name) {
        return std::find(kernelVars.begin(), kernelVars.end(), name) !=
               kernelVars.end();
    };

    // ---- pass 2: rewrite allocations of captured variables ------------------
    Addr cursor = options_.dsBase;
    std::map<std::string, int> allocationsPerVar;
    const auto nextAddress = [&cursor](std::uint64_t bytes) {
        const Addr a = cursor;
        const std::uint64_t reserve =
            (bytes + kPageSize - 1) & ~static_cast<std::uint64_t>(kPageSize - 1);
        cursor += reserve == 0 ? kPageSize : reserve;
        return a;
    };

    for (const auto& [file, src] : files) {
        const auto& toks = lexed.at(file).tokens;
        std::vector<Edit> edits;

        // The explicit size guard matters: rewrite branches jump to a
        // matched ')' which may be the kEof slot, and the ++i would then
        // step past the token vector.
        for (std::size_t i = 0;
             i < toks.size() && toks[i].kind != TokKind::kEof; ++i) {
            // --- cudaMalloc((void**)&x, SIZE) family -------------------------
            if (toks[i].kind == TokKind::kIdent && isAllocFn(toks[i].text) &&
                punctIs(toks[i + 1], '(')) {
                const std::size_t open = i + 1;
                const std::size_t closeIdx = matchParen(toks, open);
                const auto args = splitArgs(toks, open, closeIdx);
                if (args.size() < 2) {
                    i = closeIdx;
                    continue;
                }
                const std::string var =
                    argVariable(toks, args[0].first, args[0].second);
                if (var.empty() || !isKernelVar(var)) {
                    i = closeIdx;
                    continue;
                }
                const std::string sizeExpr = sourceSlice(
                    src, toks[args[1].first], toks[args[1].second - 1]);

                Allocation alloc;
                alloc.file = file;
                alloc.variable = var;
                alloc.sizeExpr = sizeExpr;
                alloc.original =
                    sourceSlice(src, toks[i], toks[closeIdx - 1]);
                alloc.sizeKnown =
                    evaluateSize(sizeExpr, defines, &alloc.bytes);
                if (!alloc.sizeKnown) {
                    alloc.bytes = options_.fallbackBytes;
                    result.diagnostics.push_back(
                        file + ": size of '" + var +
                        "' not statically evaluable ('" + sizeExpr +
                        "'), reserving fallback");
                }
                alloc.address = nextAddress(alloc.bytes);
                if (++allocationsPerVar[var] > 1)
                    result.diagnostics.push_back(
                        file + ": variable '" + var +
                        "' allocated more than once; each site gets its own "
                        "region");

                // Rewrite the call expression only, preserving any wrapper
                // macro: the comma expression still yields cudaSuccess.
                std::ostringstream text;
                text << "(" << var << " = (decltype(" << var << "))ds_mmap("
                     << hexAddress(alloc.address) << ", " << sizeExpr
                     << "), cudaSuccess)";
                edits.push_back(Edit{toks[i].offset,
                                     toks[closeIdx - 1].offset +
                                         toks[closeIdx - 1].length,
                                     text.str()});
                result.allocations.push_back(std::move(alloc));
                i = closeIdx;
                continue;
            }

            // --- x = new T[COUNT] --------------------------------------------
            if (toks[i].kind == TokKind::kIdent && punctIs(toks[i + 1], '=') &&
                toks[i + 2].kind == TokKind::kIdent &&
                toks[i + 2].text == "new" && isKernelVar(toks[i].text)) {
                const std::string var = toks[i].text;
                // Collect the element type up to '['.
                std::size_t j = i + 3;
                std::string typeText;
                while (toks[j].kind == TokKind::kIdent ||
                       punctIs(toks[j], '*')) {
                    if (!typeText.empty())
                        typeText += ' ';
                    typeText += toks[j].text;
                    ++j;
                }
                if (!punctIs(toks[j], '[') || typeText.empty())
                    continue; // scalar new or something else: leave alone
                const std::size_t open = j;
                std::size_t closeIdx = j;
                int depth = 0;
                for (; toks[closeIdx].kind != TokKind::kEof; ++closeIdx) {
                    if (punctIs(toks[closeIdx], '['))
                        ++depth;
                    else if (punctIs(toks[closeIdx], ']') && --depth == 0)
                        break;
                }
                if (toks[closeIdx].kind == TokKind::kEof)
                    continue;
                const std::string countExpr =
                    open + 1 == closeIdx
                        ? std::string("0")
                        : sourceSlice(src, toks[open + 1], toks[closeIdx - 1]);
                const std::string sizeExpr =
                    "(" + countExpr + ") * sizeof(" + typeText + ")";

                Allocation alloc;
                alloc.file = file;
                alloc.variable = var;
                alloc.sizeExpr = sizeExpr;
                alloc.original = sourceSlice(src, toks[i], toks[closeIdx]);
                alloc.sizeKnown = evaluateSize(sizeExpr, defines, &alloc.bytes);
                if (!alloc.sizeKnown) {
                    alloc.bytes = options_.fallbackBytes;
                    result.diagnostics.push_back(
                        file + ": size of '" + var +
                        "' not statically evaluable ('" + sizeExpr +
                        "'), reserving fallback");
                }
                alloc.address = nextAddress(alloc.bytes);
                if (++allocationsPerVar[var] > 1)
                    result.diagnostics.push_back(
                        file + ": variable '" + var +
                        "' allocated more than once; each site gets its own "
                        "region");

                std::ostringstream text;
                text << var << " = (" << typeText << "*)ds_mmap("
                     << hexAddress(alloc.address) << ", " << sizeExpr << ")";
                edits.push_back(Edit{toks[i].offset,
                                     toks[closeIdx].offset +
                                         toks[closeIdx].length,
                                     text.str()});
                result.allocations.push_back(std::move(alloc));
                i = closeIdx;
                continue;
            }

            // --- x = (T*)malloc(SIZE) / calloc(N, SIZE) ----------------------
            if (toks[i].kind == TokKind::kIdent && punctIs(toks[i + 1], '=')) {
                const std::string var = toks[i].text;
                std::size_t j = i + 2;
                std::string castText;
                if (punctIs(toks[j], '(')) {
                    const std::size_t castEnd = matchParen(toks, j);
                    // Only treat it as a cast when a call follows.
                    if (toks[castEnd].kind == TokKind::kIdent &&
                        (toks[castEnd].text == "malloc" ||
                         toks[castEnd].text == "calloc")) {
                        castText = sourceSlice(src, toks[j], toks[castEnd - 1]);
                        j = castEnd;
                    }
                }
                if (toks[j].kind != TokKind::kIdent ||
                    (toks[j].text != "malloc" && toks[j].text != "calloc") ||
                    !punctIs(toks[j + 1], '(') || !isKernelVar(var)) {
                    continue;
                }
                const bool isCalloc = toks[j].text == "calloc";
                const std::size_t open = j + 1;
                const std::size_t closeIdx = matchParen(toks, open);
                const auto args = splitArgs(toks, open, closeIdx);

                std::string sizeExpr;
                if (isCalloc && args.size() == 2) {
                    sizeExpr = "(";
                    sizeExpr += sourceSlice(src, toks[args[0].first],
                                            toks[args[0].second - 1]);
                    sizeExpr += ") * (";
                    sizeExpr += sourceSlice(src, toks[args[1].first],
                                            toks[args[1].second - 1]);
                    sizeExpr += ")";
                } else if (!isCalloc && args.size() == 1) {
                    sizeExpr = sourceSlice(src, toks[args[0].first],
                                           toks[args[0].second - 1]);
                } else {
                    i = closeIdx;
                    continue;
                }

                Allocation alloc;
                alloc.file = file;
                alloc.variable = var;
                alloc.sizeExpr = sizeExpr;
                alloc.original = sourceSlice(src, toks[i], toks[closeIdx - 1]);
                alloc.sizeKnown = evaluateSize(sizeExpr, defines, &alloc.bytes);
                if (!alloc.sizeKnown) {
                    alloc.bytes = options_.fallbackBytes;
                    result.diagnostics.push_back(
                        file + ": size of '" + var +
                        "' not statically evaluable ('" + sizeExpr +
                        "'), reserving fallback");
                }
                alloc.address = nextAddress(alloc.bytes);
                if (++allocationsPerVar[var] > 1)
                    result.diagnostics.push_back(
                        file + ": variable '" + var +
                        "' allocated more than once; each site gets its own "
                        "region");

                std::ostringstream text;
                text << var << " = ";
                if (!castText.empty())
                    text << castText;
                else
                    text << "(decltype(" << var << "))";
                text << "ds_mmap(" << hexAddress(alloc.address) << ", "
                     << sizeExpr << ")";
                edits.push_back(Edit{toks[i].offset,
                                     toks[closeIdx - 1].offset +
                                         toks[closeIdx - 1].length,
                                     text.str()});
                result.allocations.push_back(std::move(alloc));
                i = closeIdx;
                continue;
            }
        }

        std::string output = applyEdits(src, std::move(edits));
        const bool rewritten = output != src;
        if (rewritten && !options_.runtimeInclude.empty())
            output = options_.runtimeInclude + "\n" + output;
        result.outputs.emplace(file, std::move(output));
    }

    // Kernel variables without any discovered allocation (scalars, stack
    // arrays, externally allocated buffers) are reported, as the paper's
    // translator would simply leave them untouched.
    for (const auto& var : kernelVars) {
        if (allocationsPerVar.count(var) == 0)
            result.diagnostics.push_back("no heap allocation found for kernel "
                                         "argument '" +
                                         var + "' (left untouched)");
    }
    return result;
}

} // namespace dscoh::xlate
