// Minimal C/CUDA tokenizer for the source-to-source translator.
//
// We do not parse C++; the translator (like the paper's) works on token
// patterns: kernel launches `name<<<...>>>(args)` and allocation statements
// `x = (T*)malloc(expr)` / `cudaMalloc((void**)&x, expr)`. The lexer skips
// comments, strings and preprocessor noise but records #define constants so
// size expressions can be evaluated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dscoh::xlate {

enum class TokKind : std::uint8_t {
    kIdent,
    kNumber,
    kPunct, ///< single or multi-char operator/punctuation
    kEof,
};

struct Token {
    TokKind kind = TokKind::kEof;
    std::string text;
    std::size_t offset = 0; ///< byte offset of the first character
    std::size_t length = 0; ///< byte length in the original source
};

struct LexResult {
    std::vector<Token> tokens; ///< ends with a kEof token
    /// Object-like macro definitions seen in the file: #define NAME VALUE.
    std::vector<std::pair<std::string, std::string>> defines;
};

/// Tokenizes @p source. Never throws: unknown bytes become kPunct tokens.
LexResult lex(const std::string& source);

} // namespace dscoh::xlate
