// Static DS-region sharding across GPUs.
//
// With N GPUs the shared (DS) address range is split into per-GPU homed
// sub-ranges: every physical line has exactly one home GPU whose L2 slice
// group installs direct-store pushes for it and whose directory shard
// orders coherence transactions on it. The map is a pure function of the
// address and the (gpu count, policy) pair, so every component — CPU cores,
// cache agents, slices, the fuzzer and the oracle — can evaluate it
// independently and must agree. A single-GPU map (shards == 1) returns
// home 0 for every address, reducing the system to the original 1-CPU/1-GPU
// shape bit for bit.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/types.h"

namespace dscoh {

enum class ShardPolicy : std::uint8_t {
    kPage = 0, ///< page number modulo GPU count (default)
    kLine = 1, ///< line number modulo GPU count (finest interleave)
    kRange = 2 ///< contiguous 16-page ranges round-robin across GPUs
};

constexpr const char* to_string(ShardPolicy p)
{
    switch (p) {
    case ShardPolicy::kPage: return "page";
    case ShardPolicy::kLine: return "line";
    case ShardPolicy::kRange: return "range";
    }
    return "?";
}

/// Inverse of to_string, for --shard-policy style flags. Returns false on
/// anything but the exact names.
inline bool parseShardPolicy(std::string_view text, ShardPolicy& out)
{
    if (text == "page")
        out = ShardPolicy::kPage;
    else if (text == "line")
        out = ShardPolicy::kLine;
    else if (text == "range")
        out = ShardPolicy::kRange;
    else
        return false;
    return true;
}

class HomeMap {
public:
    /// Pages per contiguous range under ShardPolicy::kRange.
    static constexpr std::uint64_t kRangePages = 16;

    HomeMap() = default;
    HomeMap(std::uint32_t shards, ShardPolicy policy)
        : shards_(shards == 0 ? 1 : shards), policy_(policy)
    {
    }

    std::uint32_t shards() const { return shards_; }
    ShardPolicy policy() const { return policy_; }

    /// Home GPU index of @p pa (0 <= result < shards()).
    std::uint32_t homeOf(Addr pa) const
    {
        if (shards_ <= 1)
            return 0;
        switch (policy_) {
        case ShardPolicy::kLine:
            return static_cast<std::uint32_t>(lineNumber(pa) % shards_);
        case ShardPolicy::kRange:
            return static_cast<std::uint32_t>(
                (pa / (kRangePages * kPageSize)) % shards_);
        case ShardPolicy::kPage:
            break;
        }
        return static_cast<std::uint32_t>((pa / kPageSize) % shards_);
    }

private:
    std::uint32_t shards_ = 1;
    ShardPolicy policy_ = ShardPolicy::kPage;
};

} // namespace dscoh
