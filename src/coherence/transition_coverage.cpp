#include "coherence/transition_coverage.h"

#include <atomic>
#include <mutex>

namespace dscoh {

namespace {

std::atomic<bool> g_processWide{false};

/// Leaky function-local singleton: worker threads flush from their
/// thread_local destructors, which may run during process teardown after
/// static destruction has begun — a heap-allocated aggregate is immune to
/// destruction-order problems.
struct Aggregate {
    std::mutex mutex;
    TransitionCoverage::Counts counts;
};

Aggregate& aggregate()
{
    static Aggregate* agg = new Aggregate;
    return *agg;
}

} // namespace

TransitionCoverage::~TransitionCoverage()
{
    if (processWideEnabled())
        flushToAggregate();
}

void TransitionCoverage::enableProcessWide()
{
    g_processWide.store(true, std::memory_order_relaxed);
}

void TransitionCoverage::disableProcessWide()
{
    g_processWide.store(false, std::memory_order_relaxed);
}

bool TransitionCoverage::processWideEnabled()
{
    return g_processWide.load(std::memory_order_relaxed);
}

void TransitionCoverage::flushToAggregate()
{
    if (counts_.empty())
        return;
    Aggregate& agg = aggregate();
    const std::lock_guard<std::mutex> lock(agg.mutex);
    for (const auto& [key, n] : counts_)
        agg.counts[key] += n;
    counts_.clear();
}

TransitionCoverage::Counts TransitionCoverage::aggregateSnapshot()
{
    Aggregate& agg = aggregate();
    Counts merged;
    {
        const std::lock_guard<std::mutex> lock(agg.mutex);
        merged = agg.counts;
    }
    for (const auto& [key, n] : instance().counts_)
        merged[key] += n;
    return merged;
}

void TransitionCoverage::resetAggregate()
{
    Aggregate& agg = aggregate();
    const std::lock_guard<std::mutex> lock(agg.mutex);
    agg.counts.clear();
}

const char* to_string(CohEvent e)
{
    switch (e) {
    case CohEvent::kLoad: return "Load";
    case CohEvent::kStore: return "Store";
    case CohEvent::kFill: return "Fill";
    case CohEvent::kSnpGetS: return "SnpGetS";
    case CohEvent::kSnpGetX: return "SnpGetX";
    case CohEvent::kEvict: return "Evict";
    case CohEvent::kRemoteStore: return "RemoteStore";
    case CohEvent::kWbAck: return "WbAck";
    case CohEvent::kFallbackStore: return "FallbackStore";
    case CohEvent::kDupPush: return "DupPush";
    case CohEvent::kCorruptPush: return "CorruptPush";
    case CohEvent::kRemoteGetS: return "RemoteGetS";
    case CohEvent::kRemoteGetX: return "RemoteGetX";
    case CohEvent::kTsGrant: return "TsGrant";
    case CohEvent::kTsFill: return "TsFill";
    case CohEvent::kTsExpire: return "TsExpire";
    case CohEvent::kTsFallback: return "TsFallback";
    case CohEvent::kLeaseHold: return "LeaseHold";
    }
    return "?";
}

void TransitionCoverage::dump(std::ostream& os) const
{
    for (const auto& [key, n] : counts_) {
        os << to_string(std::get<0>(key)) << " --"
           << to_string(std::get<1>(key)) << "--> "
           << to_string(std::get<2>(key)) << "  x" << n << "\n";
    }
}

} // namespace dscoh
