#include "coherence/transition_coverage.h"

namespace dscoh {

const char* to_string(CohEvent e)
{
    switch (e) {
    case CohEvent::kLoad: return "Load";
    case CohEvent::kStore: return "Store";
    case CohEvent::kFill: return "Fill";
    case CohEvent::kSnpGetS: return "SnpGetS";
    case CohEvent::kSnpGetX: return "SnpGetX";
    case CohEvent::kEvict: return "Evict";
    case CohEvent::kRemoteStore: return "RemoteStore";
    case CohEvent::kWbAck: return "WbAck";
    }
    return "?";
}

void TransitionCoverage::dump(std::ostream& os) const
{
    for (const auto& [key, n] : counts_) {
        os << to_string(std::get<0>(key)) << " --"
           << to_string(std::get<1>(key)) << "--> "
           << to_string(std::get<2>(key)) << "  x" << n << "\n";
    }
}

} // namespace dscoh
