// Protocol transition coverage: a global, zero-cost-when-unused recorder of
// (state, event) -> state edges taken by the cache agents. The test suite
// uses it to prove the implementation exercises every stable transition of
// the paper's Fig. 3, including the remote-store extension.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <tuple>

#include "coherence/protocol.h"

namespace dscoh {

enum class CohEvent : std::uint8_t {
    kLoad,        ///< local load request
    kStore,       ///< local store request
    kFill,        ///< data arrived for an outstanding request
    kSnpGetS,     ///< snooped by a reader
    kSnpGetX,     ///< snooped by a writer
    kEvict,       ///< replacement victim
    kRemoteStore, ///< the paper's direct-store transitions (Fig. 3 bold/blue)
    kWbAck,       ///< writeback acknowledged

    // Delivery-hardening edges (fault injection; PROTOCOL.md "Delivery
    // hardening").
    kFallbackStore, ///< DS push abandoned, store re-done via the pull path
    kDupPush,       ///< duplicate DsPutX squashed at the slice
    kCorruptPush,   ///< DsPutX failed its checksum at the slice, NACKed

    // Multi-GPU cross-shard edges (directory sharding + timestamp fast
    // path; PROTOCOL.md "Directory sharding across GPUs").
    kRemoteGetS,  ///< slice misses a remotely-homed line, pulls via its home
    kRemoteGetX,  ///< slice writes a remotely-homed line, GetX via its home
    kTsGrant,     ///< home slice granted a timestamp lease on its copy
    kTsFill,      ///< requesting slice installed leased data (epoch buffer)
    kTsExpire,    ///< leased copy self-invalidated at epoch expiry
    kTsFallback,  ///< lease NACKed, requester took the home-directory pull
    kLeaseHold,   ///< write on the home GPU stalled until lease expiry
};

const char* to_string(CohEvent e);

/// Per-thread transition recorder. Disabled (and free) unless a test or
/// tool enables it; the simulator's hot paths only pay a branch.
///
/// instance() is thread_local rather than process-wide: a simulation records
/// into the recorder of the thread it runs on, so concurrent simulations
/// (ExperimentEngine workers) never contend or race on coverage state. Tests
/// drive the simulation on their own thread and observe the same instance
/// they enabled, exactly as before.
///
/// enable() is therefore invisible to ExperimentEngine workers with
/// --jobs > 1: each worker thread has its own (disabled) instance. To
/// collect coverage across a parallel sweep, call enableProcessWide()
/// instead: every thread's instance then records locally (still
/// contention-free), and each worker flushes its counts into a mutex-guarded
/// process aggregate when the thread exits — ExperimentEngine joins its
/// workers inside run(), so aggregateSnapshot() is complete as soon as
/// run() returns. The snapshot also merges the calling thread's live
/// counts, covering the single-threaded (run-on-caller) path.
class TransitionCoverage {
public:
    using Key = std::tuple<CohState, CohEvent, CohState>;
    using Counts = std::map<Key, std::uint64_t>;

    static TransitionCoverage& instance()
    {
        static thread_local TransitionCoverage coverage;
        return coverage;
    }

    ~TransitionCoverage();

    void enable() { enabled_ = true; }
    void disable() { enabled_ = false; }
    void reset() { counts_.clear(); }

    /// Makes every thread's instance record (ExperimentEngine --jobs > 1
    /// included) and arms the exit-time flush into the process aggregate.
    static void enableProcessWide();
    static void disableProcessWide();
    static bool processWideEnabled();
    /// Aggregate of all flushed (exited) threads plus the calling thread's
    /// live counts. Call after ExperimentEngine::run() returns.
    static Counts aggregateSnapshot();
    static void resetAggregate();
    /// Moves this thread's counts into the aggregate now (also done
    /// automatically when the thread exits while process-wide is enabled).
    void flushToAggregate();

    void record(CohState from, CohEvent event, CohState to)
    {
        if (!enabled_ && !processWideEnabled())
            return;
        ++counts_[std::make_tuple(from, event, to)];
    }

    std::uint64_t count(CohState from, CohEvent event, CohState to) const
    {
        const auto it = counts_.find(std::make_tuple(from, event, to));
        return it == counts_.end() ? 0 : it->second;
    }

    bool covered(CohState from, CohEvent event, CohState to) const
    {
        return count(from, event, to) > 0;
    }

    std::size_t distinctTransitions() const { return counts_.size(); }

    void dump(std::ostream& os) const;

private:
    TransitionCoverage() = default;
    bool enabled_ = false;
    Counts counts_;
};

/// Shorthand used at the transition sites.
inline void recordTransition(CohState from, CohEvent event, CohState to)
{
    TransitionCoverage::instance().record(from, event, to);
}

} // namespace dscoh
