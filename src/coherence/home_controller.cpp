#include "coherence/home_controller.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "check/coherence_checker.h"
#include "sim/log.h"

namespace dscoh {

HomeController::HomeController(std::string name, SimContext& ctx, Params params)
    : SimObject(std::move(name), ctx), params_(std::move(params))
{
    assert(params_.requestNet && params_.forwardNet && params_.responseNet);
    assert(params_.dram && params_.store && params_.peersOf);
}

void HomeController::handleRequest(const Message& msg)
{
    if (params_.shardOf && params_.shardOf(msg.addr) != params_.shardId) {
        if (CoherenceChecker* c = checking())
            c->reportExternal(name(),
                              "request " + std::string(to_string(msg.type)) +
                                  " for a line this shard does not order "
                                  "(shard " + std::to_string(params_.shardId) +
                                  ")",
                              curTick());
    }
    LineState& ls = line(msg.addr);

    if (msg.type == MsgType::kUnblock) {
        assert(ls.busy && "unblock without an active transaction");
        assert(msg.src == ls.req.src && "unblock from a non-requester");
        ls.unblockReceived = true;
        // `exclusive` on an Unblock means "I am now the owner (MM)".
        if (msg.exclusive)
            ls.owner = msg.src;
        maybeComplete(msg.addr, ls);
        return;
    }

    if (TxnProfiler* p = profiling())
        p->hop(msg.prof, TxnStage::kHomeArrive, name(), curTick());

    if (ls.busy) {
        queued_.inc();
        ls.pending.push_back(msg);
        return;
    }
    process(msg, ls);
}

void HomeController::process(const Message& msg, LineState& ls)
{
    if (TxnProfiler* p = profiling())
        p->hop(msg.prof, TxnStage::kHomeStart, name(), curTick());
    DSCOH_LOG("home", name() << ' ' << to_string(msg.type) << " 0x"
                             << std::hex << msg.addr << std::dec << " from "
                             << msg.src);
    switch (msg.type) {
    case MsgType::kGetS:
    case MsgType::kGetX:
        startTransaction(msg, ls);
        break;
    case MsgType::kPut:
        processPut(msg, ls);
        break;
    default:
        assert(false && "unexpected request type");
    }
}

std::vector<NodeId> HomeController::snoopTargets(const Message& msg,
                                                 const LineState& ls)
{
    std::vector<NodeId> targets;
    if (!params_.directoryMode) {
        // Hammer: broadcast to every peer that may hold the line (with this
        // topology that is at most one other agent).
        for (const NodeId peer : params_.peersOf(msg.addr))
            if (peer != msg.src)
                targets.push_back(peer);
        return targets;
    }
    // Directory: only believed holders. GetS needs just the owner (sharers
    // keep their copies); GetX must reach the owner and every sharer.
    if (ls.owner != kInvalidNode && ls.owner != msg.src)
        targets.push_back(ls.owner);
    if (msg.type == MsgType::kGetX) {
        for (const NodeId sharer : ls.sharers)
            if (sharer != msg.src && sharer != ls.owner)
                targets.push_back(sharer);
    }
    return targets;
}

void HomeController::issueMemRead(Addr addr, LineState& ls)
{
    ls.memReadIssued = true;
    if (TxnProfiler* p = profiling())
        p->hop(ls.req.prof, TxnStage::kDramIssue, name(), curTick());
    params_.dram->read(addr, [this, addr, txn = ls.activeTxn] {
        onMemData(addr, txn);
    });
}

void HomeController::startTransaction(const Message& msg, LineState& ls)
{
    transactions_.inc();
    ls.busy = true;
    ls.req = msg;
    ls.activeTxn = txnSeq_++;
    ls.snpOutstanding = 0;
    ls.anySharer = false;
    ls.dataSupplied = false;
    ls.memDataReady = false;
    ls.memReadIssued = false;
    ls.responded = false;
    ls.unblockReceived = false;

    for (const NodeId peer : snoopTargets(msg, ls)) {
        Message snp;
        snp.type = msg.type == MsgType::kGetS ? MsgType::kSnpGetS
                                              : MsgType::kSnpGetX;
        snp.addr = msg.addr;
        snp.src = params_.self;
        snp.dst = peer;
        snp.requester = msg.src;
        snp.txn = msg.txn;
        snp.prof = msg.prof;
        params_.forwardNet->send(std::move(snp));
        snoopsSent_.inc();
        ++ls.snpOutstanding;
    }
    if (ls.snpOutstanding > 0) {
        if (TxnProfiler* p = profiling())
            p->hop(msg.prof, TxnStage::kSnpSend, name(), curTick());
    }

    // Hammer reads DRAM speculatively in parallel with the snoops. The
    // directory reads it up front only when no owner should supply (a
    // stale-owner miss falls back in handleResponse/maybeRespond).
    if (!params_.directoryMode || ls.owner == kInvalidNode ||
        ls.owner == msg.src)
        issueMemRead(msg.addr, ls);

    maybeRespond(msg.addr, ls);
}

void HomeController::handleResponse(const Message& msg)
{
    assert(msg.type == MsgType::kSnpResp);
    LineState& ls = line(msg.addr);
    assert(ls.busy && ls.snpOutstanding > 0);
    if (TxnProfiler* p = profiling())
        p->hop(msg.prof, TxnStage::kSnpRespArrive, name(), curTick());
    --ls.snpOutstanding;
    ls.anySharer = ls.anySharer || msg.wasSharer;
    ls.dataSupplied = ls.dataSupplied || msg.suppliedData;
    maybeRespond(msg.addr, ls);
    maybeComplete(msg.addr, ls);
}

void HomeController::onMemData(Addr addr, std::uint64_t txn)
{
    LineState& ls = line(addr);
    if (!ls.busy || ls.activeTxn != txn)
        return; // transaction already finished off cache-supplied data
    ls.memDataReady = true;
    if (TxnProfiler* p = profiling())
        p->hop(ls.req.prof, TxnStage::kDramDone, name(), curTick());
    maybeRespond(addr, ls);
}

void HomeController::maybeRespond(Addr addr, LineState& ls)
{
    // Memory responds only when every snoop reported back, none of them
    // supplied data, and the DRAM read finished.
    if (ls.responded || ls.dataSupplied || ls.snpOutstanding > 0)
        return;
    if (!ls.memDataReady) {
        // Directory mode skipped the speculative read expecting the owner
        // to supply; a stale entry (silent M drop) means nobody did.
        if (!ls.memReadIssued)
            issueMemRead(addr, ls);
        return;
    }
    ls.responded = true;

    Message data;
    data.type = MsgType::kData;
    data.addr = addr;
    data.src = params_.self;
    data.dst = ls.req.src;
    data.requester = ls.req.src;
    data.data = params_.store->readLine(addr);
    data.mask.set(0, kLineSize);
    data.hasData = true;
    data.dirty = false;
    // GetX always grants exclusivity; GetS grants M (conventional E) when no
    // peer held the line. The directory additionally consults its sharer
    // list, since an unsnooped sharer never sends a SnpResp.
    bool anySharer = ls.anySharer;
    if (params_.directoryMode) {
        for (const NodeId sharer : ls.sharers)
            anySharer = anySharer || sharer != ls.req.src;
    }
    data.exclusive = ls.req.type == MsgType::kGetX || !anySharer;
    data.txn = ls.req.txn;
    data.prof = ls.req.prof;
    if (TxnProfiler* p = profiling())
        p->hop(ls.req.prof, TxnStage::kDataSend, name(), curTick());
    params_.responseNet->send(std::move(data));
    memDataSent_.inc();
}

void HomeController::maybeComplete(Addr addr, LineState& ls)
{
    if (!ls.unblockReceived || ls.snpOutstanding > 0)
        return;
    updateDirectoryOnComplete(ls);
    ls.busy = false;
    ls.activeTxn = 0;
    popPending(addr, ls);
}

void HomeController::processPut(const Message& msg, LineState& ls)
{
    // Accept the writeback only when it cannot be stale: it comes from the
    // registered owner, or no owner is registered (covers lines that became
    // MM through a direct-store install, which home never sees).
    if (ls.owner == msg.src || ls.owner == kInvalidNode) {
        putsAccepted_.inc();
        ls.owner = kInvalidNode;
        ls.busy = true;
        params_.dram->write(msg.addr, msg.data, [this, msg] {
            if (TxnProfiler* p = profiling()) {
                p->hop(msg.prof, TxnStage::kDramWrite, name(), curTick());
                p->hop(msg.prof, TxnStage::kAckSend, name(), curTick());
            }
            Message ack;
            ack.type = MsgType::kWbAck;
            ack.addr = msg.addr;
            ack.src = params_.self;
            ack.dst = msg.src;
            ack.txn = msg.txn;
            ack.prof = msg.prof;
            params_.forwardNet->send(std::move(ack));
            LineState& state = line(msg.addr);
            state.busy = false;
            popPending(msg.addr, state);
        });
    } else {
        // Stale: a snoop already moved ownership elsewhere; drop the data.
        putsStale_.inc();
        if (TxnProfiler* p = profiling())
            p->hop(msg.prof, TxnStage::kAckSend, name(), curTick());
        Message ack;
        ack.type = MsgType::kWbAck;
        ack.addr = msg.addr;
        ack.src = params_.self;
        ack.dst = msg.src;
        ack.txn = msg.txn;
        ack.prof = msg.prof;
        params_.forwardNet->send(std::move(ack));
    }
}

void HomeController::updateDirectoryOnComplete(LineState& ls)
{
    if (!params_.directoryMode)
        return;
    if (ls.req.type == MsgType::kGetX) {
        // New exclusive owner; everyone else was invalidated.
        ls.owner = ls.req.src;
        ls.sharers.clear();
        return;
    }
    // GetS: the requester joins as a sharer, unless it was granted
    // exclusivity (no prior holders) — then it is the new owner.
    bool othersHold = ls.dataSupplied || ls.anySharer;
    othersHold = othersHold ||
                 (ls.owner != kInvalidNode && ls.owner != ls.req.src);
    for (const NodeId sharer : ls.sharers)
        othersHold = othersHold || sharer != ls.req.src;
    if (othersHold) {
        ls.sharers.insert(ls.req.src);
    } else {
        ls.owner = ls.req.src; // exclusive-clean (M) grant
        ls.sharers.clear();
    }
}

void HomeController::popPending(Addr addr, LineState& ls)
{
    static_cast<void>(addr);
    if (ls.pending.empty())
        return;
    const Message next = ls.pending.front();
    ls.pending.pop_front();
    process(next, ls);
}

NodeId HomeController::registeredOwner(Addr addr) const
{
    const auto it = lines_.find(lineAlign(addr));
    return it == lines_.end() ? kInvalidNode : it->second.owner;
}

bool HomeController::quiescent() const
{
    for (const auto& [addr, ls] : lines_) {
        static_cast<void>(addr);
        if (ls.busy || !ls.pending.empty())
            return false;
    }
    return true;
}

std::size_t HomeController::busyLines() const
{
    std::size_t busy = 0;
    for (const auto& [addr, ls] : lines_) {
        static_cast<void>(addr);
        if (ls.busy || !ls.pending.empty())
            ++busy;
    }
    return busy;
}

void HomeController::regStats(StatRegistry& registry)
{
    registry.registerCounter(statName("transactions"), &transactions_);
    registry.registerCounter(statName("snoops_sent"), &snoopsSent_);
    registry.registerCounter(statName("mem_data_sent"), &memDataSent_);
    registry.registerCounter(statName("puts_accepted"), &putsAccepted_);
    registry.registerCounter(statName("puts_stale"), &putsStale_);
    registry.registerCounter(statName("queued_requests"), &queued_);
}

void HomeController::snapSave(snap::SnapWriter& w) const
{
    requireQuiesced(quiescent(), name() + " has in-flight transactions");
    // Only entries with persistent content survive (owner registered or
    // directory sharers remembered); emitted in address order so the file
    // does not depend on hash-map iteration order.
    std::vector<Addr> bases;
    for (const auto& [base, ls] : lines_)
        if (ls.owner != kInvalidNode || !ls.sharers.empty())
            bases.push_back(base);
    std::sort(bases.begin(), bases.end());
    w.u64(txnSeq_);
    w.u64(bases.size());
    for (const Addr base : bases) {
        const LineState& ls = lines_.at(base);
        w.u64(base);
        w.u64(ls.owner);
        w.u64(ls.sharers.size());
        for (const NodeId sharer : ls.sharers)
            w.u64(sharer);
    }
}

void HomeController::snapRestore(snap::SnapReader& r)
{
    lines_.clear();
    txnSeq_ = r.u64();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr base = r.u64();
        LineState& ls = lines_[base];
        ls.owner = static_cast<NodeId>(r.u64());
        const std::uint64_t sharers = r.u64();
        for (std::uint64_t s = 0; s < sharers; ++s)
            ls.sharers.insert(static_cast<NodeId>(r.u64()));
    }
}

} // namespace dscoh
