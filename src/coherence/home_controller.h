// Home (memory-side) controller: the per-line ordering point.
//
// Two operating modes:
//
//  * Hammer (default, the paper's baseline): broadcast snoops to every peer
//    that may hold the line and read DRAM speculatively in parallel. A
//    small owner registry (the moral equivalent of gem5 MOESI_hammer's
//    probe filter "Dir" state) exists solely to drop stale writebacks that
//    lost a race with a snoop.
//
//  * Directory: precise owner+sharer tracking per line. Snoops go only to
//    caches the directory believes hold the line, and DRAM is read only
//    when no owner can supply. Fewer messages and no wasted memory reads,
//    at the cost of directory state — the classic trade-off, exposed here
//    so the direct-store win can be measured against a stronger baseline
//    (bench/ablation_protocol). Directory entries may be stale after
//    silent S/M drops; snooped non-holders simply answer "not sharer" and
//    the entry is corrected.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/dram.h"
#include "net/network.h"
#include "sim/sim_object.h"

namespace dscoh {

class HomeController final : public SimObject {
public:
    /// Returns every cache agent that may cache @p addr (the CPU agent and
    /// the owning GPU L2 slice in the full system).
    using PeersOf = std::function<std::vector<NodeId>(Addr)>;

    struct Params {
        NodeId self = kInvalidNode;
        Network* requestNet = nullptr;
        Network* forwardNet = nullptr;
        Network* responseNet = nullptr;
        MemoryInterface* dram = nullptr;
        BackingStore* store = nullptr;
        PeersOf peersOf;
        /// Directory mode: snoop only believed holders instead of
        /// broadcasting, and skip the speculative DRAM read when an owner
        /// should supply.
        bool directoryMode = false;
        /// Sharded directory (multi-GPU): this controller's shard index,
        /// and the address->shard map. When shardOf is set, a request for
        /// an address this shard does not order is reported to the
        /// attached checker (misroute detection) — it is still processed,
        /// so the divergence is observable rather than fatal.
        std::uint32_t shardId = 0;
        std::function<std::uint32_t(Addr)> shardOf;
    };

    HomeController(std::string name, SimContext& ctx, Params params);

    void handleRequest(const Message& msg);  ///< GetS/GetX/Put/Unblock
    void handleResponse(const Message& msg); ///< SnpResp

    void regStats(StatRegistry& registry) override;

    /// Debug/verification: current registered owner (kInvalidNode if none).
    NodeId registeredOwner(Addr addr) const;

    /// Debug/verification: no line is mid-transaction.
    bool quiescent() const;

    /// Debug/verification: lines currently mid-transaction or with queued
    /// requests (the CoherenceChecker's home-side outstanding-work probe).
    std::size_t busyLines() const;

    /// Persistent cross-transaction state: the owner registry, directory
    /// sharer sets and the transaction-id counter. Requires quiescent()
    /// (no busy line, nothing queued) — active-transaction bookkeeping is
    /// transient and never serialized.
    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

private:
    struct LineState {
        bool busy = false;
        std::deque<Message> pending;
        NodeId owner = kInvalidNode;
        std::set<NodeId> sharers; ///< directory mode only (may be stale)

        // Active transaction bookkeeping.
        std::uint64_t activeTxn = 0;
        Message req;
        std::uint32_t snpOutstanding = 0;
        bool anySharer = false;
        bool dataSupplied = false;
        bool memDataReady = false;
        bool memReadIssued = false;
        bool responded = false;
        bool unblockReceived = false;
    };

    void process(const Message& msg, LineState& ls);
    void startTransaction(const Message& msg, LineState& ls);
    void issueMemRead(Addr addr, LineState& ls);
    std::vector<NodeId> snoopTargets(const Message& msg, const LineState& ls);
    void updateDirectoryOnComplete(LineState& ls);
    void processPut(const Message& msg, LineState& ls);
    void onMemData(Addr addr, std::uint64_t txn);
    void maybeRespond(Addr addr, LineState& ls);
    void maybeComplete(Addr addr, LineState& ls);
    void popPending(Addr addr, LineState& ls);
    LineState& line(Addr addr) { return lines_[lineAlign(addr)]; }

    Params params_;
    std::unordered_map<Addr, LineState> lines_;
    std::uint64_t txnSeq_ = 1;

    Counter transactions_;
    Counter snoopsSent_;
    Counter memDataSent_;
    Counter putsAccepted_;
    Counter putsStale_;
    Counter queued_;
};

} // namespace dscoh
