// A coherent cache agent: one node of the Hammer-style MOESI protocol.
//
// The CPU cache hierarchy (L1D filtered, L2 coherent) and each GPU L2 slice
// are CacheAgents. The agent owns a set-associative array whose per-line
// metadata is the protocol state, an MSHR file that merges concurrent local
// requests, and a writeback buffer holding evicted dirty lines until the
// home controller acknowledges their Put.
//
// Front side: access(addr, exclusive, done) — resolves locally on a hit or
// starts a GetS/GetX transaction; `done` runs (possibly immediately) when the
// line is readable/writable, with a reference to the filled line.
//
// Network side: handleForward (snoops, writeback acks, from home) and
// handleResponse (data). Wired up by the System builder.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "coherence/home_map.h"
#include "coherence/protocol.h"
#include "coherence/transition_coverage.h"
#include "mem/cache_array.h"
#include "mem/mshr.h"
#include "net/network.h"
#include "sim/sim_object.h"

namespace dscoh {

class CacheAgent : public SimObject {
public:
    using Line = CacheArray<CohMeta>::Line;
    using AccessDone = std::function<void(Line&)>;

    struct Params {
        CacheGeometry geometry;
        std::size_t mshrs = 16;
        std::size_t writebackEntries = 8;
        NodeId self = kInvalidNode;
        /// Node id of directory shard 0. With a sharded directory the shard
        /// nodes are contiguous from here and homeMap picks the one that
        /// orders a given line; a default (single-shard) map makes this the
        /// lone home for every address, exactly the pre-sharding behavior.
        NodeId home = kInvalidNode;
        HomeMap homeMap{};
        Network* requestNet = nullptr;  ///< agent -> home (GetS/GetX/Put/Unblock)
        Network* forwardNet = nullptr;  ///< home -> agent (snoops, WbAck)
        Network* responseNet = nullptr; ///< data / acks / snoop responses
        /// Tag-check latency charged before a snoop is processed.
        Tick snoopTagLatency = 0;
        /// Extra latency when a snoop is answered with data: reading the
        /// line out of the hierarchy and injecting it into the response
        /// network (the slow cache-to-cache leg of the CCSM pull path).
        Tick dataSupplyLatency = 0;
        /// Initiation interval between successive data supplies (a single
        /// read port on the supplying cache): back-to-back snoop hits
        /// serialize, which is what keeps massively parallel consumers from
        /// hiding the pull latency.
        Tick dataSupplyInterval = 0;
        /// Deliberate protocol mis-implementation for checker validation
        /// (tests and the fuzzer only).
        InjectedBug injectBug = InjectedBug::kNone;
    };

    CacheAgent(std::string name, SimContext& ctx, const Params& params);

    /// Requests read (exclusive=false) or write (exclusive=true) permission
    /// on @p addr's line. Always accepted; internally defers on resource
    /// pressure. @p done runs with the line in a satisfying state. For
    /// writes the callback must write the line's bytes itself (and the state
    /// is already MM).
    void access(Addr addr, bool exclusive, AccessDone done);

    /// Would @p addr hit right now (stable state satisfying @p exclusive)?
    /// Used by the front ends for hit/miss statistics and latency choice.
    bool probeHit(Addr addr, bool exclusive) const;

    /// Has this line ever been filled into this cache? (compulsory-miss
    /// classification; direct-store fills count.)
    bool everFilled(Addr addr) const
    {
        return everFilled_.count(lineNumber(addr)) != 0;
    }

    // -- network entry points ------------------------------------------------
    void handleForward(const Message& msg);
    void handleResponse(const Message& msg);

    void regStats(StatRegistry& registry) override;

    NodeId nodeId() const { return params_.self; }

    /// Debug/verification: invokes @p fn for every valid line (stable or
    /// transient) in the array.
    void forEachLine(const std::function<void(const Line&)>& fn) const;

    /// Debug/verification: protocol state for a line (kI if absent and not
    /// in the writeback buffer; writeback-buffer entries report their
    /// transient state).
    CohState stateOf(Addr addr) const;

    /// Debug/verification: the line's data if this agent holds any copy of
    /// it (array first, then the writeback buffer), else nullptr.
    const DataBlock* peekLine(Addr addr) const;

    /// Debug/verification: invokes @p fn for every parked writeback-buffer
    /// entry (MI_A/OI_A/II_A) — these hold data outside the array.
    void forEachWriteback(
        const std::function<void(Addr, CohState, const DataBlock&)>& fn) const;

    std::size_t mshrInFlight() const { return mshr_.size(); }
    std::size_t writebackBufferEntries() const { return wbb_.size(); }
    std::size_t blockedRequests() const { return blocked_.size(); }

    std::uint64_t fills() const { return fills_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }

    /// Line states and data, replacement state, the compulsory-miss filter,
    /// the transaction-id counter and the data-supply port reservation.
    /// Transient structures (MSHRs, writeback buffer, deferred requests)
    /// must be empty — a safe point has no transaction in flight.
    void snapSave(snap::SnapWriter& w) const override;
    void snapRestore(snap::SnapReader& r) override;

protected:
    /// Hook: a line was filled (protocol fill or direct-store install).
    virtual void onFill(Line& line) { static_cast<void>(line); }
    /// Hook: a line is leaving the array (eviction or snoop-invalidate);
    /// upper non-coherent levels (CPU L1 filter) must drop their copy.
    virtual void onInvalidate(Addr base) { static_cast<void>(base); }
    /// Hook: latest tick until which @p base is frozen by a granted
    /// timestamp lease (multi-GPU fast path): snoops wait and eviction
    /// skips the line until then. 0 / past ticks mean no hold.
    virtual Tick holdUntil(Addr base) const
    {
        static_cast<void>(base);
        return 0;
    }

    /// Directory shard ordering @p base (params().home + homeMap lookup).
    NodeId homeFor(Addr base) const
    {
        return params_.home + params_.homeMap.homeOf(base);
    }

    CacheArray<CohMeta>& array() { return array_; }
    const CacheArray<CohMeta>& array() const { return array_; }

    /// Frees a way in @p addr's set, evicting (and writing back) a victim if
    /// necessary. Returns nullptr when every way is pinned by an in-flight
    /// transaction (caller defers).
    Line* makeRoom(Addr addr);

    bool inWriteback(Addr addr) const
    {
        return wbb_.count(lineAlign(addr)) != 0;
    }

    /// Defers a thunk until a resource frees up (WbAck, fill, MSHR release).
    void deferUntilResourceFree(std::function<void()> thunk)
    {
        blocked_.push_back(std::move(thunk));
    }

    void noteFilled(Addr addr) { everFilled_.insert(lineNumber(addr)); }

    /// Sends a Put (writeback) for an MM/O line's data and parks it in the
    /// writeback buffer. Precondition: !inWriteback(base) and WBB not full.
    void issueWriteback(Addr base, const DataBlock& data, CohState fromState);

    bool writebackBufferFull() const
    {
        return wbb_.size() >= params_.writebackEntries;
    }

    const Params& params() const { return params_; }

    /// Replays every deferred request (cheap; deferral is rare).
    void replayBlocked();

    /// Records a protocol transition into the thread-local
    /// TransitionCoverage, (when enabled) this context's TraceSession and
    /// (when attached) the context's CoherenceChecker — every transition
    /// site in the agent and its subclasses goes through here.
    void noteTransition(CohState from, CohEvent event, CohState to,
                        Addr base);

private:
    struct MshrTarget {
        bool exclusive = false;
        AccessDone done;
    };

    struct WbEntry {
        CohState state = CohState::kMI_A; ///< kMI_A, kOI_A or kII_A
        DataBlock data;
    };

    static bool satisfies(CohState s, bool exclusive)
    {
        return exclusive ? canWrite(s) : canRead(s);
    }

    void startTransaction(Line* existing, Addr base, bool exclusive,
                          AccessDone done);
    void handleSnoop(const Message& msg);
    void handleData(const Message& msg);
    void sendToHome(MsgType type, Addr base, bool ownerFlag = false,
                    std::uint64_t prof = 0);
    void sendDataTo(NodeId dst, Addr base, const DataBlock& data, bool dirty,
                    bool exclusive, std::uint64_t txn, std::uint64_t prof = 0);

    Params params_;
    CacheArray<CohMeta> array_;
    MshrFile<MshrTarget> mshr_;
    std::unordered_map<Addr, WbEntry> wbb_;
    std::deque<std::function<void()>> blocked_;
    std::unordered_set<Addr> everFilled_; ///< line numbers ever present here
    std::uint64_t nextTxn_ = 1;
    Tick supplyPortFreeAt_ = 0;

    Counter getsIssued_;
    Counter getxIssued_;
    Counter upgrades_;
    Counter fills_;
    Counter writebacks_;
    Counter snoops_;
    Counter dataSupplied_;
    Counter deferrals_;
};

} // namespace dscoh
